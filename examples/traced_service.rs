//! Observability walkthrough: attach a recorder to the pool, stream a
//! bursty tracker workload through the staged scheduler, export the
//! schedule as a Chrome trace, and fold the event stream into latency
//! and calibration metrics — all without perturbing a single simulated
//! timestamp (see `tests/observability.rs` for the proof).
//!
//! ```sh
//! cargo run --release --example traced_service
//! ```

use std::sync::Arc;

use multidouble_ls::obs::{metrics::Metrics, trace, Event, Recorder};
use multidouble_ls::pipeline::{
    jobs_for_shapes, latency_summary, solve_stream_staged, DevicePool, DispatchPolicy, JobOutcome,
    JobShape, MicrobatchConfig, StageSchedConfig,
};
use multidouble_ls::sim::Gpu;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. a pool with an observer attached — the one extra line a
    //    service needs; with no observer, no event is even constructed
    let recorder = Arc::new(Recorder::new());
    let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::p100()]);
    pool.attach_observer(recorder.clone());

    // 2. a burst-coherent tracker mix: bursts of 6 jobs every 40 ms,
    //    each burst against one system shape — four loose predictors
    //    (priority 0, fusable) and two deep deadline-tagged correctors
    //    (priority 1, refinement plans) — through the staged scheduler
    let jobs = {
        let mut rng = StdRng::seed_from_u64(7);
        let shapes: Vec<JobShape> = (0..48)
            .map(|i| {
                let cols = [8, 12, 16, 24, 10, 6][(i / 6) % 6];
                JobShape {
                    rows: cols + [0, 4][(i / 6) % 2],
                    cols,
                    target_digits: if i % 6 >= 4 { 90 } else { 12 },
                }
            })
            .collect();
        let mut jobs = jobs_for_shapes(&shapes, &mut rng);
        for (i, job) in jobs.iter_mut().enumerate() {
            let release = (i / 6) as f64 * 40.0;
            job.release_ms = Some(release);
            if i % 6 >= 4 {
                job.priority = 1;
                job.deadline_ms = Some(release + 80.0);
            }
        }
        jobs
    };
    let outs: Vec<JobOutcome> = solve_stream_staged(
        &mut pool,
        jobs,
        DispatchPolicy::ShortestExpectedCompletion,
        6,
        MicrobatchConfig::default(),
        // structural booking + online re-booking: early-certifying
        // correctors leave a reclaimable tail, visible as refunds
        StageSchedConfig {
            book_expected: false,
            ..StageSchedConfig::staged()
        },
    )
    .collect();
    let lat = latency_summary(&outs);
    println!(
        "{} jobs drained, makespan {:.1} ms; turnaround p50 {:.1} / p99 {:.1} ms, \
         {} deadline misses",
        outs.len(),
        pool.makespan_ms(),
        lat.p50_ms,
        lat.p99_ms,
        lat.deadline_misses,
    );

    // 3. the recording: every planner, scheduler and pool decision,
    //    settled once per job in submission order
    let events = recorder.events();
    let settled = events
        .iter()
        .filter(|e| matches!(e, Event::JobSettled { .. }))
        .count();
    assert_eq!(settled, outs.len(), "one settlement per job");
    println!("{} events recorded ({} settlements)", events.len(), settled);

    // 4. export the schedule as a Chrome trace: one process per device
    //    with a `prep` and a `compute` track each — stage bookings as
    //    duration slices, refunds / holds / extensions as instants
    let doc = trace::chrome_trace(&events);
    let slices = trace::validate_trace(&doc, pool.len()).expect("trace must validate");
    let path = std::path::Path::new("target").join("traced_service.json");
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write(&path, &doc).expect("write trace");
    println!(
        "{slices} duration slices written to {} — open in chrome://tracing or ui.perfetto.dev",
        path.display()
    );

    // 5. metrics: the same stream folded into per-priority latency
    //    histograms, scheduler counters and cost-model calibration
    let m = Metrics::from_events(&events);
    for (prio, h) in &m.latency {
        println!(
            "priority {prio}: {} jobs, turnaround p50 {:.1} ms / p99 {:.1} ms / max {:.1} ms",
            h.count(),
            h.p50(),
            h.p99(),
            h.max()
        );
    }
    println!(
        "{} fused groups, {} refunds ({:.1} ms reclaimed), {} pass extensions, \
         plan cache {} hits / {} misses",
        m.fused_groups,
        m.refunds,
        m.refunded_ms,
        m.extensions,
        m.plan_cache_hits,
        m.plan_cache_misses
    );
    for c in m.calibration().iter().take(3) {
        println!(
            "calibration d{} {}x{} {} {}: booked {:.3} ms vs settled {:.3} ms (bias {:.2})",
            c.device,
            c.rows,
            c.cols,
            c.kind.label(),
            c.rung,
            c.predicted_ms,
            c.settled_ms,
            c.bias()
        );
    }
}
