//! Padé approximants for the holomorphic embedding load flow method —
//! the paper's second motivating application (§1.1, references [27], [28]).
//!
//! The holomorphic embedding method expands the steady state of a power
//! system as a power series in the embedding parameter and evaluates it
//! through Padé approximants. The Padé denominator coefficients solve a
//! Toeplitz linear system that becomes violently ill conditioned as the
//! approximation order grows — "multiprecision arithmetic adds
//! significant value" [22].
//!
//! This example builds the `[m/m]` Padé approximant of a series with a
//! known closed form (`f(z) = log(1+z)/z`, poles on the negative real
//! axis like a load flow voltage series), solving the Toeplitz system
//! with the simulated-GPU least squares solver in each precision, and
//! evaluates the approximant against the exact function.
//!
//! ```sh
//! cargo run --release --example power_flow
//! ```

use multidouble_ls::matrix::HostMat;
use multidouble_ls::md::{Dd, MdReal, MdScalar, Od, Qd};
use multidouble_ls::sim::{ExecMode, Gpu};
use multidouble_ls::solver::{lstsq, LstsqOptions};

const M: usize = 20; // [20/20] Padé: the Toeplitz system is savagely ill conditioned

/// Series coefficients of log(1+z)/z: c_k = (-1)^k / (k+1).
fn series_coeff<S: MdScalar>(k: usize) -> S {
    let c = S::one().unscale(<S::Real as MdReal>::from_f64((k + 1) as f64));
    if k % 2 == 1 {
        -c
    } else {
        c
    }
}

/// Solve the Padé denominator system and return (denominator b, numerator a).
fn pade<S: MdScalar>() -> (Vec<S>, Vec<S>) {
    // Toeplitz system: sum_{j=1..m} c_{m-j+i} b_j = -c_{m+i}, i = 1..m
    let t = HostMat::<S>::from_fn(M, M, |i, j| series_coeff::<S>(M - (j + 1) + (i + 1)));
    let rhs: Vec<S> = (0..M).map(|i| -series_coeff::<S>(M + i + 1)).collect();
    let opts = LstsqOptions {
        tiles: 4,
        tile_size: M / 4,
        mode: ExecMode::Parallel,
    };
    let run = lstsq(&Gpu::v100(), &t, &rhs, &opts);
    let b = run.x; // b_1 .. b_m
                   // numerator by convolution: a_i = c_i + sum_{j=1..min(i,m)} b_j c_{i-j}
    let mut a = vec![S::zero(); M + 1];
    for (i, ai) in a.iter_mut().enumerate() {
        let mut acc = series_coeff::<S>(i);
        for j in 1..=i.min(M) {
            acc += b[j - 1] * series_coeff::<S>(i - j);
        }
        *ai = acc;
    }
    (b, a)
}

/// Evaluate the [m/m] approximant at a real point (in precision `S`).
fn eval_pade<S: MdScalar>(b: &[S], a: &[S], z: f64) -> S {
    let zs = S::from_f64(z);
    let mut num = S::zero();
    for ai in a.iter().rev() {
        num = num * zs + *ai;
    }
    let mut den = S::zero();
    for bj in b.iter().rev() {
        den = den * zs + *bj;
    }
    den = den * zs + S::one();
    num / den
}

fn exact(z: f64) -> f64 {
    (1.0 + z).ln() / z
}

fn main() {
    println!("[{M}/{M}] Pade approximant of log(1+z)/z via the GPU least squares solver\n");
    let zs = [0.5, 1.0, 2.0, 4.0, 8.0];

    let (b1, a1) = pade::<f64>();
    let (b2, a2) = pade::<Dd>();
    let (b4, a4) = pade::<Qd>();
    let (b8, a8) = pade::<Od>();

    println!(
        "{:<6} {:>13} {:>13} {:>13} {:>13}",
        "z", "1d error", "2d error", "4d error", "8d error"
    );
    println!("{}", "-".repeat(62));
    for z in zs {
        let want = exact(z);
        let e1 = (eval_pade(&b1, &a1, z) - want).abs();
        let e2 = (eval_pade(&b2, &a2, z).to_f64() - want).abs();
        let e4 = (eval_pade(&b4, &a4, z).to_f64() - want).abs();
        let e8 = (eval_pade(&b8, &a8, z).to_f64() - want).abs();
        println!("{z:<6} {e1:>13.3e} {e2:>13.3e} {e4:>13.3e} {e8:>13.3e}");
    }
    println!("\nthe Pade Toeplitz system is ill conditioned: the approximant built");
    println!("in hardware doubles degrades visibly away from the expansion point,");
    println!("while the multiple double builds stay at the truncation error of the");
    println!("[{M}/{M}] approximant — the holomorphic embedding use case of the paper.");
}
