//! Quickstart: solve a dense linear system in the least squares sense in
//! quad double precision on a simulated V100, and inspect the residual
//! and the kernel-level profile.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use multidouble_ls::matrix::HostMat;
use multidouble_ls::md::Qd;
use multidouble_ls::sim::{ExecMode, Gpu};
use multidouble_ls::solver::{lstsq, LstsqOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2022);

    // a 256 x 256 system with a known solution, in quad double
    let opts = LstsqOptions {
        tiles: 8,
        tile_size: 32,
        mode: ExecMode::Parallel,
    };
    let n = opts.cols();
    let a = HostMat::<Qd>::random(n, n, &mut rng);
    let x_true: Vec<Qd> = (0..n).map(|i| Qd::from_f64(1.0 + i as f64 / 7.0)).collect();
    let b = a.matvec(&x_true);

    let gpu = Gpu::v100();
    println!(
        "solving a {n} x {n} quad double system on a simulated {}",
        gpu.name
    );
    let run = lstsq(&gpu, &a, &b, &opts);

    // accuracy: the residual lands at quad double roundoff (~1e-64)
    let residual = a.residual(&run.x, &b);
    let err = multidouble_ls::matrix::norms::vec_diff_norm2(&run.x, &x_true);
    println!("  |b - A x|_2          = {:.3e}", residual.to_f64());
    println!("  |x - x_true|_2       = {:.3e}", err.to_f64());
    assert!(
        residual.to_f64() < 1e-50,
        "quad double accuracy not reached"
    );

    // the modeled device profile, split as in the paper's Table 11
    println!(
        "\nmodeled timing on the {} (paper's conventions):",
        gpu.name
    );
    println!(
        "  QR  : {:8.2} ms kernels, {:8.2} ms wall, {:7.1} GF",
        run.qr_profile.all_kernels_ms(),
        run.qr_profile.wall_ms(),
        run.qr_profile.kernel_gflops()
    );
    println!(
        "  BS  : {:8.2} ms kernels, {:8.2} ms wall, {:7.1} GF",
        run.bs_profile.all_kernels_ms(),
        run.bs_profile.wall_ms(),
        run.bs_profile.kernel_gflops()
    );
    println!("\nQR stage breakdown (ms):");
    for s in run.qr_profile.stages() {
        println!(
            "  {:<12} {:9.3}  ({} launches)",
            s.name, s.kernel_ms, s.launches
        );
    }
}
