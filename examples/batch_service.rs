//! The batched solve service under load: thousands of randomized
//! power-flow-shaped jobs streamed through a heterogeneous multi-GPU
//! pool, solved *functionally* (real multiple double arithmetic, real
//! residuals) while the pool books simulated device time.
//!
//! ```sh
//! cargo run --release --example batch_service
//! ```

use multidouble_ls::pipeline::{
    power_flow_jobs, solve_batch, solve_batch_policy, solve_stream_with, tracker_jobs, DevicePool,
    DispatchPolicy, JobOutcome, Precision,
};
use multidouble_ls::sim::Gpu;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let jobs = {
        let mut rng = StdRng::seed_from_u64(2022);
        power_flow_jobs(2000, &mut rng)
    };
    let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::v100(), Gpu::a100(), Gpu::p100()]);
    println!(
        "batch service: {} power-flow jobs over {} pooled devices",
        jobs.len(),
        pool.len()
    );

    // analyze::allow(wall-clock-in-sim): host-side demo timing of the
    // simulator itself — this measures the harness, not simulated time.
    let host_start = std::time::Instant::now();
    let report = solve_batch(&mut pool, &jobs);
    let host_ms = host_start.elapsed().as_secs_f64() * 1.0e3;

    // every job solved to its accuracy target
    let mut worst = (0u64, 0.0f64, 0u32);
    for (job, out) in jobs.iter().zip(&report.outcomes) {
        let margin = out.residual * 10f64.powi(job.target_digits as i32);
        if margin > worst.1 {
            worst = (job.id, margin, job.target_digits);
        }
        assert!(
            margin < 1.0,
            "job {} missed its {}-digit target: residual {:e}",
            job.id,
            job.target_digits,
            out.residual
        );
    }
    println!(
        "all {} residuals meet their targets (worst margin: job {} at {:.1e} of its {}-digit budget)",
        report.outcomes.len(),
        worst.0,
        worst.1,
        worst.2
    );

    // precision-ladder mix the planner chose
    for rung in Precision::LADDER {
        let n = report
            .outcomes
            .iter()
            .filter(|o| o.x.precision() == rung)
            .count();
        if n > 0 {
            println!("  {:>4} jobs solved in {}", n, rung.tag());
        }
    }
    // staged-plan mix: how many jobs ran mixed-precision refinement
    // (factor cheap, residual one rung up, correct) instead of a
    // direct deep-rung solve
    let refined: Vec<&multidouble_ls::pipeline::JobOutcome> = report
        .outcomes
        .iter()
        .filter(|o| !o.plan.is_direct())
        .collect();
    if !refined.is_empty() {
        let passes: usize = refined.iter().map(|o| o.plan.corrections()).sum();
        let spare = refined
            .iter()
            .map(|o| o.achieved_digits - o.plan.target_digits as f64)
            .fold(f64::INFINITY, f64::min);
        println!(
            "  {:>4} jobs ran refinement plans ({:.1} passes avg, e.g. {}; worst digit margin {:+.1})",
            refined.len(),
            passes as f64 / refined.len() as f64,
            refined[0].plan.summary(),
            spare
        );
    }
    let (promo_hits, promo_misses) = multidouble_ls::pipeline::promoted_cache_stats();
    println!(
        "  {} distinct plans memoized; promoted-matrix cache {promo_hits} hits / {promo_misses} misses",
        report.distinct_plans
    );

    println!("\nper-device simulated throughput:");
    println!(
        "{:<4} {:<8} {:>7} {:>12} {:>7} {:>10} {:>12}",
        "id", "model", "solves", "busy ms", "util", "kernel GF", "solves/sec"
    );
    for s in &report.device_stats {
        println!(
            "{:<4} {:<8} {:>7} {:>12.1} {:>6.0}% {:>10.0} {:>12.1}",
            s.id,
            s.name,
            s.solves,
            s.busy_ms,
            100.0 * s.utilization,
            s.kernel_gflops,
            s.solves_per_busy_sec
        );
    }
    println!(
        "\nbatch makespan {:.1} ms simulated, {:.1} solves/sec aggregate \
         (host wall clock: {:.0} ms)",
        report.makespan_ms, report.solves_per_sec, host_ms
    );

    // dispatch-policy selection: on this mixed pool the shortest-
    // expected-completion policy stops parking long deep-precision
    // solves on whatever device happens to be idle
    pool.reset();
    let sect = solve_batch_policy(&mut pool, &jobs, DispatchPolicy::ShortestExpectedCompletion);
    println!(
        "\ndispatch policy A/B on this pool: greedy {:.1} ms vs sect {:.1} ms ({:+.1}%)",
        report.makespan_ms,
        sect.makespan_ms,
        100.0 * (report.makespan_ms - sect.makespan_ms) / report.makespan_ms
    );
    assert_eq!(
        report.outcomes.iter().map(|o| &o.x).collect::<Vec<_>>(),
        sect.outcomes.iter().map(|o| &o.x).collect::<Vec<_>>(),
        "policies may move jobs, never change bits"
    );

    // power-series workload: one embedding matrix re-solved against a
    // fresh right hand side per series step — the repeated-matrix case
    // the promoted-matrix cache exists for (promote f64 → rung once,
    // not once per step)
    let steps = 200usize;
    let series_jobs: Vec<_> = {
        let mut rng = StdRng::seed_from_u64(2024);
        let template = power_flow_jobs(1, &mut rng).remove(0);
        (0..steps as u64)
            .map(|id| {
                let b: Vec<f64> = template
                    .b
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v + (id as f64 + 1.0) * 1e-3 * (i as f64 + 1.0))
                    .collect();
                multidouble_ls::pipeline::Job::new(id, template.a.clone(), b, 50)
            })
            .collect()
    };
    let (h0, m0) = multidouble_ls::pipeline::promoted_cache_stats();
    pool.reset();
    let series = solve_batch(&mut pool, &series_jobs);
    let (h1, m1) = multidouble_ls::pipeline::promoted_cache_stats();
    println!(
        "\npower series: {} steps on one {}x{} matrix — promotion cache {} hits, {} misses \
         (cached on second sighting per rung, then reused)",
        series.outcomes.len(),
        series_jobs[0].rows(),
        series_jobs[0].cols(),
        h1 - h0,
        m1 - m0
    );
    // per rung the cache spends one probation miss (entries land on a
    // matrix's *second* sighting) and promotion happens outside the
    // lock, so up to one more miss per host worker can race in before
    // the insert lands — bound the assertion accordingly. Lookup count
    // comes from the plans actually chosen (a direct plan promotes at
    // one rung, a refinement plan at two), so a future cost-model tweak
    // that flips this shape to a direct plan cannot break the check.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4) as u64;
    // f64 promotions bypass the cache entirely, so count only the
    // multi-limb rungs each plan actually promotes at
    let lookups: u64 = series
        .outcomes
        .iter()
        .map(|o| {
            u64::from(o.plan.factor_precision() != Precision::D1)
                + u64::from(!o.plan.is_direct() && o.plan.solution_precision() != Precision::D1)
        })
        .sum();
    assert!(
        h1 - h0 >= lookups.saturating_sub(2 * (1 + workers.min(steps as u64))),
        "cache missed repeated matrix: {} hits / {} misses over {lookups} lookups",
        h1 - h0,
        m1 - m0
    );

    // priority streaming: a path tracker's corrector solves (priority 1,
    // deadline-tagged) overtake speculative predictor solves inside the
    // stream's reorder window
    let tracker = {
        let mut rng = StdRng::seed_from_u64(2023);
        tracker_jobs(60, &mut rng)
    };
    let correctors: Vec<u64> = tracker
        .iter()
        .filter(|j| j.priority > 0)
        .map(|j| j.id)
        .collect();
    pool.reset();
    let drained: Vec<JobOutcome> = solve_stream_with(
        &mut pool,
        tracker,
        DispatchPolicy::ShortestExpectedCompletion,
        16,
    )
    .collect();
    let lead: Vec<bool> = drained
        .iter()
        .take(8)
        .map(|o| correctors.contains(&o.job_id))
        .collect();
    println!(
        "priority stream: first 8 of {} drained jobs corrector? {:?}",
        drained.len(),
        lead
    );
    assert!(lead[0], "a corrector must drain first");
}
