//! The batched solve service under load: thousands of randomized
//! power-flow-shaped jobs streamed through a heterogeneous multi-GPU
//! pool, solved *functionally* (real multiple double arithmetic, real
//! residuals) while the pool books simulated device time.
//!
//! ```sh
//! cargo run --release --example batch_service
//! ```

use multidouble_ls::pipeline::{
    power_flow_jobs, solve_batch, solve_batch_policy, solve_stream_with, tracker_jobs, DevicePool,
    DispatchPolicy, JobOutcome, Precision,
};
use multidouble_ls::sim::Gpu;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let jobs = {
        let mut rng = StdRng::seed_from_u64(2022);
        power_flow_jobs(2000, &mut rng)
    };
    let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::v100(), Gpu::a100(), Gpu::p100()]);
    println!(
        "batch service: {} power-flow jobs over {} pooled devices",
        jobs.len(),
        pool.len()
    );

    let host_start = std::time::Instant::now();
    let report = solve_batch(&mut pool, &jobs);
    let host_ms = host_start.elapsed().as_secs_f64() * 1.0e3;

    // every job solved to its accuracy target
    let mut worst = (0u64, 0.0f64, 0u32);
    for (job, out) in jobs.iter().zip(&report.outcomes) {
        let margin = out.residual * 10f64.powi(job.target_digits as i32);
        if margin > worst.1 {
            worst = (job.id, margin, job.target_digits);
        }
        assert!(
            margin < 1.0,
            "job {} missed its {}-digit target: residual {:e}",
            job.id,
            job.target_digits,
            out.residual
        );
    }
    println!(
        "all {} residuals meet their targets (worst margin: job {} at {:.1e} of its {}-digit budget)",
        report.outcomes.len(),
        worst.0,
        worst.1,
        worst.2
    );

    // precision-ladder mix the planner chose
    for rung in Precision::LADDER {
        let n = report
            .outcomes
            .iter()
            .filter(|o| o.x.precision() == rung)
            .count();
        if n > 0 {
            println!("  {:>4} jobs solved in {}", n, rung.tag());
        }
    }
    println!("  {} distinct plans memoized", report.distinct_plans);

    println!("\nper-device simulated throughput:");
    println!(
        "{:<4} {:<8} {:>7} {:>12} {:>7} {:>10} {:>12}",
        "id", "model", "solves", "busy ms", "util", "kernel GF", "solves/sec"
    );
    for s in &report.device_stats {
        println!(
            "{:<4} {:<8} {:>7} {:>12.1} {:>6.0}% {:>10.0} {:>12.1}",
            s.id,
            s.name,
            s.solves,
            s.busy_ms,
            100.0 * s.utilization,
            s.kernel_gflops,
            s.solves_per_busy_sec
        );
    }
    println!(
        "\nbatch makespan {:.1} ms simulated, {:.1} solves/sec aggregate \
         (host wall clock: {:.0} ms)",
        report.makespan_ms, report.solves_per_sec, host_ms
    );

    // dispatch-policy selection: on this mixed pool the shortest-
    // expected-completion policy stops parking long deep-precision
    // solves on whatever device happens to be idle
    pool.reset();
    let sect = solve_batch_policy(&mut pool, &jobs, DispatchPolicy::ShortestExpectedCompletion);
    println!(
        "\ndispatch policy A/B on this pool: greedy {:.1} ms vs sect {:.1} ms ({:+.1}%)",
        report.makespan_ms,
        sect.makespan_ms,
        100.0 * (report.makespan_ms - sect.makespan_ms) / report.makespan_ms
    );
    assert_eq!(
        report.outcomes.iter().map(|o| &o.x).collect::<Vec<_>>(),
        sect.outcomes.iter().map(|o| &o.x).collect::<Vec<_>>(),
        "policies may move jobs, never change bits"
    );

    // priority streaming: a path tracker's corrector solves (priority 1,
    // deadline-tagged) overtake speculative predictor solves inside the
    // stream's reorder window
    let tracker = {
        let mut rng = StdRng::seed_from_u64(2023);
        tracker_jobs(60, &mut rng)
    };
    let correctors: Vec<u64> = tracker
        .iter()
        .filter(|j| j.priority > 0)
        .map(|j| j.id)
        .collect();
    pool.reset();
    let drained: Vec<JobOutcome> = solve_stream_with(
        &mut pool,
        tracker,
        DispatchPolicy::ShortestExpectedCompletion,
        16,
    )
    .collect();
    let lead: Vec<bool> = drained
        .iter()
        .take(8)
        .map(|o| correctors.contains(&o.job_id))
        .collect();
    println!(
        "priority stream: first 8 of {} drained jobs corrector? {:?}",
        drained.len(),
        lead
    );
    assert!(lead[0], "a corrector must drain first");
}
