//! Power series path tracking — the paper's motivating application.
//!
//! The paper develops its least squares solver for a polynomial homotopy
//! path tracker (§1.1): the Newton step for power series solutions of a
//! homotopy solves a *lower triangular block Toeplitz* system whose
//! diagonal blocks are the Jacobian at the current point. Because roundoff
//! propagates from the leading series coefficients into all later ones,
//! the leading coefficients must be computed at a precision higher than
//! hardware doubles.
//!
//! This example tracks the series solution `x(t)` of
//!
//! ```text
//! A(t) x(t) = b(t),   A(t) = A0 + A1 t,   b(t) = b0 + b1 t
//! ```
//!
//! by block forward substitution on the Toeplitz system
//!
//! ```text
//! A0 x_k = (b_k) - A1 x_{k-1},
//! ```
//!
//! solving every diagonal step with the GPU least squares solver. Octo
//! double coefficients serve as ground truth for the lower precisions,
//! showing the error growth per series order that motivates the paper.
//!
//! ```sh
//! cargo run --release --example path_tracking
//! ```

use multidouble_ls::matrix::HostMat;
use multidouble_ls::md::{Dd, MdScalar, Od, Qd};
use multidouble_ls::sim::{ExecMode, Gpu};
use multidouble_ls::solver::{lstsq, LstsqOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 16; // system dimension
const ORDER: usize = 12; // series truncation order

/// Compute the series coefficients x_0 .. x_{ORDER-1} in precision `S`.
///
/// The problem data is drawn as exact doubles so every precision tracks
/// the *same* system (multiple double draws would consume different
/// amounts of the RNG stream per precision).
fn track_series<S: MdScalar>(seed: u64) -> Vec<Vec<S>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = HostMat::<f64>::random(DIM, DIM, &mut rng);
    let a0 = HostMat::<S>::from_fn(DIM, DIM, |i, j| {
        S::from_f64(f.get(i, j) + if i == j { 4.0 } else { 0.0 })
    });
    let f1 = HostMat::<f64>::random(DIM, DIM, &mut rng);
    let a1 = HostMat::<S>::from_fn(DIM, DIM, |i, j| S::from_f64(f1.get(i, j)));
    let bf: Vec<f64> = multidouble_ls::matrix::random_vector(DIM, &mut rng);
    let b0: Vec<S> = bf.iter().map(|v| S::from_f64(*v)).collect();
    let bf1: Vec<f64> = multidouble_ls::matrix::random_vector(DIM, &mut rng);
    let b1: Vec<S> = bf1.iter().map(|v| S::from_f64(*v)).collect();

    let opts = LstsqOptions {
        tiles: 2,
        tile_size: DIM / 2,
        mode: ExecMode::Parallel,
    };
    let gpu = Gpu::v100();

    let mut coeffs: Vec<Vec<S>> = Vec::with_capacity(ORDER);
    for k in 0..ORDER {
        // rhs_k = b_k - A1 * x_{k-1}
        let mut rhs = match k {
            0 => b0.clone(),
            1 => b1.clone(),
            _ => vec![S::zero(); DIM],
        };
        if k > 0 {
            let prev = a1.matvec(&coeffs[k - 1]);
            for (r, p) in rhs.iter_mut().zip(prev.iter()) {
                *r -= *p;
            }
        }
        // the diagonal block solve: the paper's accelerated least squares
        let run = lstsq(&gpu, &a0, &rhs, &opts);
        coeffs.push(run.x);
    }
    coeffs
}

fn main() {
    println!("power series path tracking: A(t) x(t) = b(t), dim {DIM}, order {ORDER}");
    println!("each Toeplitz step solved by the simulated-GPU least squares solver\n");

    // octo double ground truth, then the same track in 2d and 4d
    let truth = track_series::<Od>(77);
    let dd = track_series::<Dd>(77);
    let qd = track_series::<Qd>(77);

    println!(
        "{:<8} {:>16} {:>16} {:>14}",
        "order", "2d error", "4d error", "|x_k| (truth)"
    );
    println!("{}", "-".repeat(58));
    for k in 0..ORDER {
        let norm_k: f64 = truth[k]
            .iter()
            .map(|v| v.norm_sqr().to_f64())
            .sum::<f64>()
            .sqrt();
        let err = |widen: &dyn Fn(usize) -> Od| {
            let mut acc = 0.0f64;
            for i in 0..DIM {
                let d = widen(i) - truth[k][i];
                acc += d.norm_sqr().to_f64();
            }
            acc.sqrt()
        };
        let e2 = err(&|i| Od::from_dd(dd[k][i]));
        let e4 = err(&|i| Od::from_qd(qd[k][i]));
        println!("{k:<8} {e2:>16.3e} {e4:>16.3e} {norm_k:>14.3e}");
    }

    println!("\nroundoff seeded in the leading coefficients is amplified order by");
    println!("order; quad double keeps the full series usable where double double");
    println!("has already lost digits — the error analysis that drives the paper.");
}
