//! Survey the five simulated devices: Table 2 characteristics, roofline
//! ridge points and the dimension at which the double double QR crosses
//! one teraflops on each device.
//!
//! ```sh
//! cargo run --release --example device_survey
//! ```

use multidouble_ls::md::Dd;
use multidouble_ls::qr::{qr_model_profile, QrOptions};
use multidouble_ls::sim::Gpu;

fn main() {
    println!("simulated device registry (paper Table 2 + model constants)\n");
    println!(
        "{:<10} {:>5} {:>4} {:>9} {:>7} {:>6} {:>9} {:>8} {:>7}",
        "GPU", "CUDA", "#MP", "cores/MP", "#cores", "GHz", "peak GF", "BW GB/s", "ridge"
    );
    for g in Gpu::all() {
        println!(
            "{:<10} {:>5} {:>4} {:>9} {:>7} {:>6.2} {:>9.0} {:>8.0} {:>7.2}",
            g.name,
            g.cuda_capability,
            g.multiprocessors,
            g.cores_per_mp,
            g.cores(),
            g.ghz,
            g.peak_dp_gflops,
            g.mem_bw_gbs,
            g.ridge_point()
        );
    }

    println!("\nsmallest dimension with >= 1 TFLOPS double double QR (tiles of 128):");
    for g in Gpu::all() {
        let mut found = None;
        for tiles in 1..=16 {
            let dim = tiles * 128;
            let p = qr_model_profile::<Dd>(
                &g,
                dim,
                &QrOptions {
                    tiles,
                    tile_size: 128,
                },
            );
            if p.kernel_gflops() >= 1000.0 {
                found = Some((dim, p.kernel_gflops()));
                break;
            }
        }
        match found {
            Some((dim, gf)) => println!("  {:<10} dim {:>5}  ({:.0} GF)", g.name, dim, gf),
            None => println!("  {:<10} not reached by dim 2048", g.name),
        }
    }
    println!("\nthe paper's headline: teraflop performance is attained already at");
    println!("dimension 1,024 in double double precision on the P100 and the V100.");
}
