//! The precision ladder: why multiple double precision earns its keep.
//!
//! Solves a least squares problem against the notoriously ill-conditioned
//! Hilbert matrix in all four working precisions. Hardware doubles lose
//! every digit by dimension ~14; each doubling of the precision buys
//! roughly 16 more decades of usable conditioning — the paper's
//! motivation for running QR in double double, quad double and octo
//! double on the GPU.
//!
//! ```sh
//! cargo run --release --example precision_ladder
//! ```

use multidouble_ls::matrix::{hilbert, HostMat};
use multidouble_ls::md::{Dd, MdReal, MdScalar, Od, Qd};
use multidouble_ls::sim::{ExecMode, Gpu};
use multidouble_ls::solver::{lstsq, LstsqOptions};

/// Solve `H x = b` (Hilbert matrix, `b = H * ones`) and report the
/// forward error `|x - 1|`.
fn ladder_step<S: MdScalar>(n: usize, tiles: usize) -> (f64, f64) {
    let h: HostMat<S> = hilbert(n);
    let ones = vec![S::one(); n];
    let b = h.matvec(&ones);
    let opts = LstsqOptions {
        tiles,
        tile_size: n / tiles,
        mode: ExecMode::Parallel,
    };
    let run = lstsq(&Gpu::v100(), &h, &b, &opts);
    let res = h.residual(&run.x, &b).to_f64();
    let fwd = multidouble_ls::matrix::norms::vec_diff_norm2(&run.x, &ones).to_f64();
    (res, fwd)
}

fn main() {
    let n = 24; // cond(H_24) ~ 3e34: hopeless in double, easy in octo double
    println!("Hilbert least squares, dimension {n} (cond ~ 1e35), simulated V100\n");
    println!(
        "{:<14} {:>14} {:>14}",
        "precision", "residual", "forward error"
    );
    println!("{}", "-".repeat(44));

    let (r, f) = ladder_step::<f64>(n, 2);
    println!("{:<14} {:>14.3e} {:>14.3e}", "1d (double)", r, f);
    let (r, f) = ladder_step::<Dd>(n, 2);
    println!("{:<14} {:>14.3e} {:>14.3e}", "2d (dd)", r, f);
    let (r, f) = ladder_step::<Qd>(n, 2);
    println!("{:<14} {:>14.3e} {:>14.3e}", "4d (qd)", r, f);
    let (r, f) = ladder_step::<Od>(n, 2);
    println!("{:<14} {:>14.3e} {:>14.3e}", "8d (od)", r, f);

    println!(
        "\nunit roundoffs: 1d {:.1e}, 2d {:.1e}, 4d {:.1e}, 8d {:.1e}",
        f64::EPS,
        Dd::EPS,
        Qd::EPS,
        Od::EPS
    );
    println!("the forward error tracks cond(H) * roundoff: hardware doubles and");
    println!("even double double are exhausted; quad and octo double recover the");
    println!("exact all-ones solution.");
}
