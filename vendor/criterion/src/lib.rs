//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with criterion's API shape. Measurements are mean
//! nanoseconds per iteration over a timed window — good enough to rank
//! implementation variants, with none of criterion's statistics.
//!
//! In test mode (`cargo test` passes `--test` to `harness = false`
//! bench targets) every benchmark body runs exactly once, so the bench
//! suites double as smoke tests.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted, not interpreted).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark session configuration and reporting.
pub struct Criterion {
    test_mode: bool,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.test_mode, self.warm_up, self.measurement, name, f);
        self
    }
}

/// A named group sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes by time only.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Length of the timed measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Length of the untimed warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up = d;
        self
    }

    /// Run one benchmark of this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        run_bench(
            self.criterion.test_mode,
            self.criterion.warm_up,
            self.criterion.measurement,
            &label,
            f,
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_bench<F>(test_mode: bool, warm_up: Duration, measurement: Duration, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        test_mode,
        warm_up,
        measurement,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if test_mode {
        println!("  {name}: ok (test mode, 1 iteration)");
    } else if b.iters > 0 {
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("  {name}: {} iterations, {:.1} ns/iter", b.iters, ns);
    } else {
        println!("  {name}: no iterations recorded");
    }
}

/// Runs the measured routine and accumulates timing.
pub struct Bencher {
    test_mode: bool,
    warm_up: Duration,
    measurement: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly over the measurement window.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine());
            self.iters += 1;
            return;
        }
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.iters += iters;
        self.elapsed += start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            std::hint::black_box(routine(input));
            self.iters += 1;
            return;
        }
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let deadline = Instant::now() + self.measurement;
        let mut iters = 0u64;
        let mut timed = Duration::ZERO;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
        }
        self.iters += iters;
        self.elapsed += timed;
    }
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion {
            test_mode: false,
            measurement: Duration::from_millis(10),
            warm_up: Duration::from_millis(1),
        };
        let mut ran = 0u64;
        c.bench_function("spin", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            measurement: Duration::from_secs(100),
            warm_up: Duration::from_secs(100),
        };
        let mut ran = 0u64;
        c.bench_function("once", |b| {
            b.iter_batched(|| 1u64, |x| ran += x, BatchSize::SmallInput)
        });
        assert_eq!(ran, 1);
    }
}
