//! Offline stand-in for `parking_lot`: a non-poisoning [`Mutex`] over
//! `std::sync::Mutex`, with parking_lot's `lock()` signature (no
//! `Result`, poisoning is swallowed).

/// A mutual exclusion primitive (non-poisoning facade).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u64);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
