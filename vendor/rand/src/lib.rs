//! Offline stand-in for the `rand` crate.
//!
//! Implements only the surface this workspace uses (rand 0.9 naming):
//! [`Rng::random_range`] over `f64` ranges, [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms, but *not* stream
//! compatible with upstream `rand`'s `StdRng`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform `f64` in `[range.start, range.end)`.
    fn random_range(&mut self, range: core::ops::Range<f64>) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 * (f64::EPSILON / 2.0);
        range.start + (range.end - range.start) * unit
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step — the canonical xoshiro seeding procedure.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(-1.0..1.0), b.random_range(-1.0..1.0));
        }
    }

    #[test]
    fn range_respected_and_varied() {
        let mut rng = StdRng::seed_from_u64(7);
        let vals: Vec<f64> = (0..1000).map(|_| rng.random_range(-1.0..1.0)).collect();
        assert!(vals.iter().all(|v| (-1.0..1.0).contains(v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean} far from 0");
        // both halves of the range are hit
        assert!(vals.iter().any(|v| *v < -0.5) && vals.iter().any(|v| *v > 0.5));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        use super::RngCore;
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
