//! Fault-tolerance property and integration tests: recovery re-plans
//! only what a fault touched, retried work is bit-identical to the
//! fault-free run, admission down-ladders exactly to the rung it
//! promised, and a sticky mid-batch device loss on a 4×V100 pool is
//! survived with a 100% completion rate where the fail-the-batch
//! baseline loses jobs.

use gpusim::{FaultPlan, Gpu};
use mdls_matrix::HostMat;
use mdls_pipeline::batch::Disposition;
use mdls_pipeline::{
    dispatch_group_staged, solve_batch_resilient, solve_stream_admitted, AdmissionConfig,
    DevicePool, DispatchPolicy, ExecPlan, Job, JobShape, MicrobatchConfig, Planner,
    ResilienceConfig, StageSchedConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn diag_jobs(count: usize, n: usize, digits: u32, seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count as u64)
        .map(|id| {
            let a = HostMat::<f64>::from_fn(n, n, |r, c| {
                let u: f64 = multidouble::random::rand_real(&mut rng);
                u + if r == c { 4.0 } else { 0.0 }
            });
            let b: Vec<f64> = (0..n)
                .map(|_| multidouble::random::rand_real(&mut rng))
                .collect();
            Job::new(id, a, b, digits)
        })
        .collect()
}

/// Property (i): recovery never moves or re-runs a span on an
/// unaffected device. Book groups across two devices, kill device 0
/// mid-schedule, re-dispatch the interrupted group — device 1's
/// previously booked intervals must survive verbatim (new work may
/// only gap-fill or append around them).
#[test]
fn recovery_leaves_surviving_device_spans_untouched() {
    let jobs = diag_jobs(6, 8, 25, 0x5afe);
    let shapes: Vec<JobShape> = jobs.iter().map(JobShape::from).collect();
    let planner = Planner::new();
    let sched = StageSchedConfig::staged();
    let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
    let mut bookings = Vec::new();
    for (i, shape) in shapes.iter().enumerate() {
        let g = dispatch_group_staged(
            &mut pool,
            &planner,
            vec![i],
            shape,
            DispatchPolicy::LeastLoaded,
            &sched,
            0.0,
        );
        bookings.push(g);
    }
    let before_host = pool.devices()[1].host_timeline().intervals().to_vec();
    let before_dev = pool.devices()[1].device_timeline().intervals().to_vec();
    assert!(!before_dev.is_empty(), "device 1 never booked; vacuous");

    // kill device 0 in the middle of its schedule and re-dispatch
    // everything the loss interrupted
    let t = pool.devices()[0].clock_ms() / 2.0;
    let report = pool.fail_device(0, t);
    assert!(!report.interrupted.is_empty(), "loss interrupted nothing");
    assert!(report.lost_refund_ms > 0.0);
    for g in &bookings {
        let hit = g
            .booking
            .as_ref()
            .is_some_and(|b| report.interrupted.contains(&b.id));
        if hit {
            let idxs = g.jobs.clone();
            let shape = shapes[idxs[0]];
            let re = dispatch_group_staged(
                &mut pool,
                &planner,
                idxs,
                &shape,
                DispatchPolicy::LeastLoaded,
                &sched,
                t,
            );
            assert_eq!(re.device, 1, "re-dispatch must pick the survivor");
            assert!(re.start_ms >= t, "recovered work cannot start in the past");
        }
    }
    // every pre-loss interval on the surviving device is still booked,
    // bit for bit — recovery appended, never moved
    let contains =
        |now: &[(f64, f64)], old: &(f64, f64)| now.iter().any(|iv| iv.0 == old.0 && iv.1 == old.1);
    let after_host = pool.devices()[1].host_timeline().intervals().to_vec();
    let after_dev = pool.devices()[1].device_timeline().intervals().to_vec();
    for iv in &before_host {
        assert!(contains(&after_host, iv), "host span {iv:?} moved");
    }
    for iv in &before_dev {
        assert!(contains(&after_dev, iv), "device span {iv:?} moved");
    }
}

/// Property (iii): a down-laddered job lands exactly on the rung
/// admission chose — the plan targets the degraded digits, the outcome
/// still records the original request, and the measured residual
/// certifies the degraded target.
#[test]
fn down_laddered_job_achieves_its_degraded_rung() {
    let n = 8usize;
    let planner = Planner::new();
    let probe = DevicePool::homogeneous(&Gpu::v100(), 1);
    let end_at = |digits: u32| {
        let (plan, fused) = planner.plan_fused(probe.gpu(0), n, n, digits, 1);
        let reqs = fused.stage_reqs(ExecPlan::booked_stages(plan.corrections()));
        probe.preview_stages(0, &reqs, true, 0.0)
    };
    // a deadline strictly between the cheaper rung's completion and the
    // requested rung's: the request cannot fit, the cheaper rung can
    let (e_low, e_req) = (end_at(60), end_at(123));
    assert!(e_low < e_req, "rung costs are not ordered; test is vacuous");
    let deadline = (e_low + e_req) / 2.0;

    let mut jobs = diag_jobs(1, n, 123, 0xdead);
    jobs[0].deadline_ms = Some(deadline);
    let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
    let report = solve_batch_resilient(
        &mut pool,
        &jobs,
        DispatchPolicy::LeastLoaded,
        &MicrobatchConfig::off(),
        &StageSchedConfig::staged(),
        &ResilienceConfig::default(),
    );
    let o = &report.outcomes[0];
    assert_eq!(o.disposition, Disposition::Degraded);
    assert_eq!(o.requested_digits, 123, "original request lost");
    assert_eq!(
        o.plan.target_digits, 60,
        "admission promised the qd rung, the plan targets {}",
        o.plan.target_digits
    );
    assert!(
        o.achieved_digits >= o.plan.target_digits as f64,
        "degraded rung not certified: achieved {:.1} of {}",
        o.achieved_digits,
        o.plan.target_digits
    );
    assert!(!o.missed_deadline(), "the down-laddered job still missed");
    assert_eq!(report.latency.deadline_misses, 0);
}

/// Property (ii) + the 4×V100 integration: a sticky loss of one of
/// four devices mid-batch. Under retry/re-dispatch every job completes
/// (rate 1.0) bit-identical to the fault-free run, jobs untouched by
/// the loss keep their exact fault-free placement, and the
/// fail-the-batch baseline demonstrably loses work.
#[test]
fn sticky_loss_mid_batch_recovers_every_job_bit_identically() {
    let jobs = diag_jobs(24, 10, 25, 0x4100);
    let micro = MicrobatchConfig::default();
    let sched = StageSchedConfig::staged();
    let policy = DispatchPolicy::LeastLoaded;

    // fault-free reference
    let mut quiet = DevicePool::homogeneous(&Gpu::v100(), 4);
    let base = solve_batch_resilient(
        &mut quiet,
        &jobs,
        policy,
        &micro,
        &sched,
        &ResilienceConfig::default(),
    );
    assert!(base
        .outcomes
        .iter()
        .all(|o| o.disposition == Disposition::Ok));

    // device 0 dies a third of the way into the fault-free makespan
    let t = base.makespan_ms / 3.0;
    let mut chaotic = DevicePool::homogeneous(&Gpu::v100(), 4);
    chaotic.set_fault_plan(0, FaultPlan::none().with_device_lost(t));
    let recovered = solve_batch_resilient(
        &mut chaotic,
        &jobs,
        policy,
        &micro,
        &sched,
        &ResilienceConfig::default(),
    );
    assert_eq!(chaotic.alive_count(), 3);
    let retried = recovered
        .outcomes
        .iter()
        .filter(|o| o.disposition == Disposition::Retried)
        .count();
    assert!(retried > 0, "the loss at {t:.1} ms interrupted nothing");
    // completion rate 1.0: every job ends in a completed disposition
    assert!(
        recovered.outcomes.iter().all(|o| o.disposition.completed()),
        "recovery lost a job"
    );
    for (b, r) in base.outcomes.iter().zip(&recovered.outcomes) {
        assert_eq!(b.job_id, r.job_id);
        // bit-identity: recovery moves time, never arithmetic
        assert_eq!(b.x, r.x, "job {}: recovery changed the bits", b.job_id);
        assert_eq!(b.residual, r.residual);
        // tail-only: a job the loss never touched keeps its exact
        // fault-free placement — recovery never delays survivors' spans
        if r.disposition == Disposition::Ok && b.device == r.device {
            assert_eq!(b.start_ms, r.start_ms, "job {} moved", b.job_id);
            assert_eq!(b.end_ms, r.end_ms, "job {} delayed", b.job_id);
        }
    }
    // the lost device's unexecuted time came back as refunds
    assert!(recovered.device_stats[0].refunded_ms > base.device_stats[0].refunded_ms);

    // the fail-the-batch baseline on the same fault schedule loses jobs
    let mut doomed = DevicePool::homogeneous(&Gpu::v100(), 4);
    doomed.set_fault_plan(0, FaultPlan::none().with_device_lost(t));
    let failed = solve_batch_resilient(
        &mut doomed,
        &jobs,
        policy,
        &micro,
        &sched,
        &ResilienceConfig::fail_all(),
    );
    let lost = failed
        .outcomes
        .iter()
        .filter(|o| o.disposition == Disposition::Failed)
        .count();
    assert!(lost > 0, "fail-all lost nothing; the A/B is vacuous");
    assert_eq!(failed.latency.failed, lost);
    let rate = |r: &mdls_pipeline::BatchReport| {
        r.outcomes
            .iter()
            .filter(|o| o.disposition.completed())
            .count() as f64
            / r.outcomes.len() as f64
    };
    assert!(
        rate(&recovered) > rate(&failed),
        "recovery did not beat fail-all"
    );
    assert_eq!(rate(&recovered), 1.0);
}

/// Seeded fault schedules make whole chaotic runs reproducible:
/// same seeds, same losses, same retries, same bits, same timings.
#[test]
fn chaos_is_deterministic_end_to_end() {
    let run = || {
        let jobs = diag_jobs(12, 8, 25, 0x0b5);
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        pool.set_fault_plan(
            0,
            FaultPlan::seeded(21, 5.0e3, 100.0).with_device_lost(40.0),
        );
        solve_batch_resilient(
            &mut pool,
            &jobs,
            DispatchPolicy::LeastLoaded,
            &MicrobatchConfig::default(),
            &StageSchedConfig::staged(),
            &ResilienceConfig::default(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan_ms, b.makespan_ms);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.x, y.x);
        assert_eq!(x.end_ms, y.end_ms);
        assert_eq!(x.disposition, y.disposition);
    }
}

/// Regression: an admission verdict reached while a doomed device
/// still counted is stale. Three deadline-free warm-ups (priority 5)
/// drain first and spread over a 2×V100 pool; device 1 carries a
/// sticky loss that comes due on the simulated clock after the first
/// two dispatches. Two low-priority deadlined jobs wait in the reorder
/// buffer behind them:
///
/// * `victim` is meetable only via device 1 — the clean run completes
///   it there in time, but once the loss comes due the admitted stream
///   must fail the device and shed the job against the survivors
///   instead of dispatching it onto the corpse of a stale preview;
/// * `hopeless` has a deadline shorter than any solve, and the
///   loss-time re-preview must tombstone it *eagerly*: its shed
///   outcome yields ahead of the still-buffered warm-up, not merely
///   when its own turn to pop comes.
#[test]
fn admitted_stream_re_previews_buffer_after_device_loss() {
    let planner = Planner::new();
    let gpu = Gpu::v100();
    let lost_at = 0.1 * planner.plan_fused(&gpu, 8, 8, 25, 1).1.predicted_ms;

    let sized = |id: u64, n: usize, seed: u64| {
        let mut j = diag_jobs(1, n, 25, seed).pop().unwrap();
        j.id = id;
        j
    };
    let jobs = |victim_deadline: f64| {
        vec![
            sized(0, 8, 11).with_priority(5),
            sized(1, 12, 12).with_priority(5),
            sized(2, 24, 13).with_priority(5),
            sized(3, 8, 14).with_deadline_ms(victim_deadline),
            sized(4, 8, 15).with_deadline_ms(lost_at),
        ]
    };
    let run = |victim_deadline: f64, fault: Option<FaultPlan>| {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        if let Some(f) = fault {
            pool.set_fault_plan(1, f);
        }
        let outcomes: Vec<_> = solve_stream_admitted(
            &mut pool,
            jobs(victim_deadline),
            DispatchPolicy::LeastLoaded,
            5,
            MicrobatchConfig::default(),
            StageSchedConfig::staged(),
            AdmissionConfig::default(),
        )
        .collect();
        (outcomes, pool.devices()[1].is_lost())
    };
    let loss = || FaultPlan::none().with_device_lost(lost_at);

    // calibrate: with an unmissable deadline, when does the victim end
    // with the full pool vs. with only the survivors? The cost model is
    // launch-overhead-dominated at these sizes, so hand-picked margins
    // are fragile — measure the two schedules instead.
    let (probe, _) = run(f64::MAX, None);
    let e_clean = probe.iter().find(|o| o.job_id == 3).unwrap().end_ms;
    let (probe, _) = run(f64::MAX, Some(loss()));
    let e_lossy = probe.iter().find(|o| o.job_id == 3).unwrap().end_ms;
    assert!(
        e_lossy > e_clean,
        "survivors must be strictly slower for the victim ({e_lossy} vs {e_clean}); vacuous"
    );
    // a deadline only the full pool can meet
    let deadline = (e_clean + e_lossy) / 2.0;

    let (clean, clean_lost) = run(deadline, None);
    assert!(!clean_lost);
    let v = clean.iter().find(|o| o.job_id == 3).unwrap();
    assert_eq!(v.disposition, Disposition::Ok);
    assert!(v.end_ms <= deadline);

    let (faulted, lost) = run(deadline, Some(loss()));
    assert!(lost, "the due sticky loss must actually fail the device");
    assert_eq!(faulted.len(), 5);
    // warm-ups complete (device 1's finished work stands)
    for id in 0..3 {
        let o = faulted.iter().find(|o| o.job_id == id).unwrap();
        assert_eq!(o.disposition, Disposition::Ok, "warm-up {id}");
    }
    // the eager re-preview tombstones `hopeless` the moment the loss
    // is applied: its shed outcome yields *before* the third warm-up
    assert_eq!(faulted[2].job_id, 4, "loss-time shed must yield eagerly");
    assert_eq!(faulted[2].disposition, Disposition::Shed);
    // the victim's stale verdict is revisited against the survivors:
    // shed (or down-laddered to a rung that fits), never run at full
    // digits on the corpse of the old preview
    let v = faulted.iter().find(|o| o.job_id == 3).unwrap();
    assert_ne!(
        v.disposition,
        Disposition::Ok,
        "stale admission dispatched the victim at full digits"
    );
    assert_eq!(v.device, 0, "nothing may book on the lost device");
    if v.disposition == Disposition::Shed {
        assert!(v.residual.is_infinite());
    }
}
