use gpusim::Gpu;
use mdls_matrix::HostMat;
use mdls_pipeline::{
    serve, DevicePool, ExecutionMode, Job, ServiceConfig, SloClass, TenantId, TenantSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn quota_overspend_probe() {
    let metered = TenantId(1);
    let n = 8;
    let mut rng = StdRng::seed_from_u64(7);
    let jobs: Vec<Job> = (0..8u64)
        .map(|i| {
            let a = HostMat::<f64>::from_fn(n, n, |r, c| {
                let u: f64 = multidouble::random::rand_real(&mut rng);
                u + if r == c { 4.0 } else { 0.0 }
            });
            let b: Vec<f64> = (0..n).map(|_| multidouble::random::rand_real(&mut rng)).collect();
            Job::new(i, a, b, 25).with_tenant(metered).with_slo(SloClass::Standard)
        })
        .collect();
    let planner = mdls_pipeline::Planner::new();
    let (_, fused) = planner.plan_fused(&Gpu::v100(), 8, 8, 25, 1);
    let cost = fused.predicted_ms;
    // bucket covers ~1.2 jobs, zero refill
    let specs = [TenantSpec::new(metered, "metered").with_quota(1.2 * cost, 0.0)];
    let cfg = ServiceConfig { mode: ExecutionMode::ModelOnly, ..ServiceConfig::default() };
    let mut pool = DevicePool::homogeneous(&Gpu::v100(), 4);
    let report = serve(&mut pool, &jobs, &specs, &cfg);
    let t = &report.tenants[0];
    eprintln!("completed={} shed={} (bucket covered 1 job)", t.completed, t.shed);
    assert_eq!(t.completed, 1, "bucket covers exactly one job");
}
