//! Multi-tenant service-shell properties: weighted-fair isolation
//! bounds a light tenant's tail latency under an adversarial burster
//! (strictly better than the FIFO baseline), quota exhaustion starves
//! only the exhausted tenant, the service loop is bit- and
//! schedule-deterministic across runs and host worker counts, and a
//! tripped circuit breaker keeps non-probe work off the quarantined
//! device until a probe succeeds.

use std::sync::Arc;

use gpusim::{FaultPlan, Gpu};
use mdls_matrix::HostMat;
use mdls_obs::{Event, Recorder};
use mdls_pipeline::batch::Disposition;
use mdls_pipeline::{
    serve, Backpressure, BreakerConfig, DevicePool, ExecutionMode, Job, ServiceConfig,
    ServicePolicy, ServiceReport, SloClass, TenantId, TenantSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn diag_jobs(
    count: usize,
    id_base: u64,
    digits: u32,
    seed: u64,
    tenant: TenantId,
    slo: SloClass,
    spacing_ms: f64,
) -> Vec<Job> {
    let n = 8;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count as u64)
        .map(|i| {
            let a = HostMat::<f64>::from_fn(n, n, |r, c| {
                let u: f64 = multidouble::random::rand_real(&mut rng);
                u + if r == c { 4.0 } else { 0.0 }
            });
            let b: Vec<f64> = (0..n)
                .map(|_| multidouble::random::rand_real(&mut rng))
                .collect();
            Job::new(id_base + i, a, b, digits)
                .with_tenant(tenant)
                .with_slo(slo)
                .with_release_ms(i as f64 * spacing_ms)
        })
        .collect()
}

fn tenant_summary(report: &ServiceReport, id: TenantId) -> &mdls_pipeline::TenantSummary {
    report
        .tenants
        .iter()
        .find(|t| t.tenant == id)
        .expect("tenant summarized")
}

/// A 10× burster slams the pool at t = 0; a light tenant trickles jobs
/// in. Under weighted-fair scheduling the light tenant's p99 stays
/// within a constant factor of its uncontended p99 — and strictly
/// below the FIFO baseline, where its jobs drown behind the burst.
#[test]
fn weighted_fair_bounds_light_tenant_p99_under_burst() {
    let light_id = TenantId(1);
    let burst_id = TenantId(2);
    let light = diag_jobs(40, 0, 25, 0xfa1e, light_id, SloClass::Standard, 5.0);
    let burst = diag_jobs(400, 1000, 25, 0xb1a57, burst_id, SloClass::BestEffort, 0.0);
    let mut jobs = light.clone();
    jobs.extend(burst);
    let specs = [
        TenantSpec::new(light_id, "light"),
        TenantSpec::new(burst_id, "burster").with_queue(1000, Backpressure::Reject),
    ];
    let cfg = ServiceConfig {
        mode: ExecutionMode::ModelOnly,
        ..ServiceConfig::default()
    };

    let run = |jobs: &[Job], policy: ServicePolicy| {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        serve(&mut pool, jobs, &specs, &ServiceConfig { policy, ..cfg })
    };
    let solo = run(&light, ServicePolicy::WeightedFair);
    let fair = run(&jobs, ServicePolicy::WeightedFair);
    let fifo = run(&jobs, ServicePolicy::Fifo);

    let solo_p99 = tenant_summary(&solo, light_id).p99_ms;
    let fair_light = tenant_summary(&fair, light_id);
    let fifo_light = tenant_summary(&fifo, light_id);
    assert_eq!(
        fair_light.completed, 40,
        "fair run completes the light tenant"
    );
    assert!(
        fair_light.p99_ms < fifo_light.p99_ms,
        "weighted fair must strictly beat FIFO for the light tenant: \
         fair p99 {} vs fifo p99 {}",
        fair_light.p99_ms,
        fifo_light.p99_ms
    );
    // the SLO bound: a constant factor over the uncontended tail, not
    // proportional to the burster's backlog
    assert!(
        fair_light.p99_ms <= solo_p99.max(1e-3) * 10.0,
        "burst leaked into the light tenant's tail: p99 {} vs solo {}",
        fair_light.p99_ms,
        solo_p99
    );
    // the burster itself pays: its tail is far beyond the light one's
    assert!(tenant_summary(&fair, burst_id).p99_ms > fair_light.p99_ms);
}

/// A zero-refill quota starves only its own tenant: the metered tenant
/// completes what its bucket covers and sheds the rest, while the
/// unmetered tenant completes everything.
#[test]
fn quota_exhaustion_sheds_only_the_exhausted_tenant() {
    let metered = TenantId(1);
    let free = TenantId(2);
    let a = diag_jobs(10, 0, 25, 0x90a7, metered, SloClass::Standard, 0.0);
    let b = diag_jobs(10, 100, 25, 0x5eed, free, SloClass::Standard, 0.0);
    // price one job on the reference model to size the bucket at ~2 jobs
    let planner = mdls_pipeline::Planner::new();
    let (_, fused) = planner.plan_fused(&Gpu::v100(), 8, 8, 25, 1);
    let cost = fused.predicted_ms;

    let mut jobs = a;
    jobs.extend(b);
    let specs = [
        TenantSpec::new(metered, "metered").with_quota(2.2 * cost, 0.0),
        TenantSpec::new(free, "free"),
    ];
    let cfg = ServiceConfig {
        mode: ExecutionMode::ModelOnly,
        ..ServiceConfig::default()
    };
    let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
    let report = serve(&mut pool, &jobs, &specs, &cfg);

    let m = tenant_summary(&report, metered);
    let f = tenant_summary(&report, free);
    assert_eq!(f.completed, 10, "unmetered tenant must be untouched");
    assert_eq!(f.shed, 0);
    assert_eq!(m.completed, 2, "bucket covers exactly two jobs");
    assert_eq!(m.shed, 8, "the rest starve and shed");
    assert!(m.quota_exhaustions >= 1, "dry spell must be counted");
    assert!(report
        .outcomes
        .iter()
        .filter(|o| o.tenant == metered)
        .all(|o| o.disposition == Disposition::Ok || o.disposition == Disposition::Shed));
}

/// The service loop is bit- and schedule-deterministic: identical
/// outcomes (solutions, placements, simulated times, dispositions)
/// across repeated runs and across host worker counts.
#[test]
fn service_loop_is_deterministic_across_runs_and_workers() {
    let t1 = TenantId(1);
    let t2 = TenantId(2);
    let mut jobs = diag_jobs(12, 0, 40, 0xde7e, t1, SloClass::Standard, 0.7);
    jobs.extend(diag_jobs(
        12,
        100,
        25,
        0x4e11,
        t2,
        SloClass::BestEffort,
        0.3,
    ));
    let specs = [
        TenantSpec::new(t1, "alpha").with_weight(2),
        TenantSpec::new(t2, "beta"),
    ];
    let run = |workers: usize| {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        pool.set_fault_plan(1, FaultPlan::seeded(0x7ea5, 10.0, 1.5));
        let cfg = ServiceConfig {
            host_workers: workers,
            ..ServiceConfig::default()
        };
        serve(&mut pool, &jobs, &specs, &cfg)
    };
    let a = run(1);
    let b = run(4);
    let c = run(1);
    for (x, y) in a
        .outcomes
        .iter()
        .zip(&b.outcomes)
        .chain(a.outcomes.iter().zip(&c.outcomes))
    {
        assert_eq!(x.job_id, y.job_id);
        assert_eq!(x.device, y.device, "placement must not depend on workers");
        assert_eq!(x.start_ms.to_bits(), y.start_ms.to_bits());
        assert_eq!(x.end_ms.to_bits(), y.end_ms.to_bits());
        assert_eq!(x.residual.to_bits(), y.residual.to_bits());
        assert_eq!(x.x, y.x, "solution bits must match");
        assert_eq!(x.disposition, y.disposition);
    }
    assert_eq!(a.makespan_ms.to_bits(), b.makespan_ms.to_bits());
}

/// A flapping device trips its breaker; from the trip to the probe,
/// the quarantined device receives no bookings at all, and the first
/// booking after re-admission is the probe itself. A clean probe
/// closes the breaker and normal dispatch resumes.
#[test]
fn quarantined_device_gets_no_nonprobe_dispatches_until_probe_succeeds() {
    let t1 = TenantId(1);
    let jobs = diag_jobs(40, 0, 25, 0xc1c1, t1, SloClass::Standard, 0.0);
    let specs = [TenantSpec::new(t1, "solo").with_queue(64, Backpressure::Block)];
    let cfg = ServiceConfig {
        mode: ExecutionMode::ModelOnly,
        breaker: BreakerConfig {
            enabled: true,
            window_ms: 50.0,
            max_faults: 2,
            backoff_ms: 5.0,
        },
        ..ServiceConfig::default()
    };
    let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
    // dense transients early on device 1, quiet after 3 ms
    pool.set_fault_plan(1, FaultPlan::seeded(0xf00d, 3.0, 0.3));
    let recorder = Arc::new(Recorder::new());
    pool.attach_observer(recorder.clone());
    let report = serve(&mut pool, &jobs, &specs, &cfg);

    assert_eq!(report.outcomes.len(), 40);
    assert!(
        report.outcomes.iter().all(|o| o.disposition.completed()),
        "quarantine must not lose jobs — the healthy device absorbs them"
    );
    let b1 = report.breakers[1];
    assert!(b1.opens >= 1, "flapping device must trip its breaker");
    assert!(b1.probes >= 1, "quarantine must end in a probe");
    assert!(b1.closes >= 1, "a clean probe must close the breaker");

    // replay the event stream: between CircuitOpen(d1) and the next
    // CircuitProbe(d1), device 1 must receive zero bookings
    let events = recorder.events();
    let mut quarantined = false;
    let mut saw_transitions = 0;
    for ev in &events {
        match ev {
            Event::CircuitOpen { device: 1, .. } => {
                quarantined = true;
                saw_transitions += 1;
            }
            Event::CircuitProbe { device: 1, .. } => {
                quarantined = false;
            }
            Event::StageBooked { device: 1, .. } => {
                assert!(!quarantined, "booking on a quarantined device");
            }
            _ => {}
        }
    }
    assert!(saw_transitions >= 1);
    // after the final close, the device serves normal traffic again
    let close_at = events
        .iter()
        .rposition(|e| matches!(e, Event::CircuitClose { device: 1, .. }))
        .expect("breaker closed");
    assert!(
        events[close_at..]
            .iter()
            .any(|e| matches!(e, Event::StageBooked { device: 1, .. })),
        "re-admitted device must receive work again"
    );
}
