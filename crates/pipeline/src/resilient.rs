//! Fault-tolerant batch execution: deadline-driven admission at
//! ingress, seeded device-fault injection, and retry/re-dispatch
//! recovery.
//!
//! The driver here wraps the staged batch engine with three concerns
//! the happy-path engines deliberately do not carry:
//!
//! * **Admission** — before anything is booked, every deadlined job is
//!   previewed against the surviving pool
//!   ([`DevicePool::preview_stages`]). A job whose requested digits
//!   cannot meet its deadline on *any* surviving device is down-laddered
//!   to the cheapest precision rung that can
//!   ([`Disposition::Degraded`], with the original request kept on
//!   [`JobOutcome::requested_digits`]) or, when no rung fits, shed at
//!   the door ([`Disposition::Shed`]) instead of burning device time on
//!   a guaranteed miss.
//! * **Sticky device loss** — each device model may carry a seeded
//!   [`FaultPlan`](gpusim::FaultPlan). When a plan says the device dies
//!   at `t`, the pool marks it lost ([`DevicePool::fail_device`]):
//!   unexecuted booked spans become refunds and every interrupted or
//!   queued group is re-planned and re-dispatched onto the survivors
//!   ([`Disposition::Retried`]) — a started-but-lost stage re-runs from
//!   its factorization, reusing the promoted-matrix cache, so recovery
//!   costs time but never changes arithmetic. With
//!   [`RecoveryPolicy::redispatch`] off (the fail-the-batch A/B
//!   baseline) interrupted jobs end [`Disposition::Failed`].
//! * **Transient kernel faults** — à la ECC replay: each transient in
//!   the device's seeded schedule that lands inside a group's executed
//!   interval books one bounded, exponentially backed-off replay of the
//!   group's steady-state pass. Retries only extend *simulated time*;
//!   the solution bits are exactly the fault-free solve's.
//!
//! Faults are **data, not entropy**: the schedule is fixed by
//! [`FaultPlan::seeded`](gpusim::FaultPlan::seeded) before the batch
//! starts, no wall clock or global RNG is consulted anywhere, and the
//! whole run — losses, retries, down-ladders, sheds — replays
//! bit-identically from the same seeds.

use std::collections::HashSet;

use crate::batch::{
    emit_settled, latency_summary, settle_staged_dispatch, solve_planned_fused_with,
    solve_planned_traced_with, BatchReport, Disposition, JobOutcome, PlannedSolve,
};
use crate::job::{Job, Precision, Solution};
use crate::microbatch::{dispatch_group_staged, plan_groups, GroupDispatch, MicrobatchConfig};
use crate::plan::ExecPlan;
use crate::planner::Planner;
use crate::pool::DevicePool;
use crate::scheduler::{DispatchPolicy, JobShape, StageSchedConfig};
use mdls_obs::Event;

/// Ingress admission control for deadlined jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Master switch: when false, every job is admitted as requested.
    pub enabled: bool,
    /// Allow down-laddering an unmeetable request to a cheaper
    /// precision rung that fits the deadline.
    pub degrade: bool,
    /// Allow shedding a job no rung can finish in time. When false such
    /// a job runs anyway and is counted as an honest deadline miss.
    pub shed: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: true,
            degrade: true,
            shed: true,
        }
    }
}

/// What to do about faults once they happen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Re-plan and re-dispatch groups interrupted by a sticky device
    /// loss onto the survivors. False = the fail-the-batch baseline:
    /// interrupted jobs end [`Disposition::Failed`].
    pub redispatch: bool,
    /// Cap on transient-fault replays per group (ECC-replay style).
    pub max_transient_retries: usize,
    /// Base of the exponential retry backoff, simulated ms: retry `r`
    /// books no earlier than `backoff_ms · 2^r` after the failed end.
    pub backoff_ms: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            redispatch: true,
            max_transient_retries: 3,
            backoff_ms: 0.05,
        }
    }
}

/// The full resilience configuration of a batch run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResilienceConfig {
    /// Ingress admission.
    pub admission: AdmissionConfig,
    /// Fault recovery.
    pub recovery: RecoveryPolicy,
}

impl ResilienceConfig {
    /// The chaos-benchmark baseline: admission still runs, but a device
    /// loss fails every interrupted job instead of re-dispatching.
    pub fn fail_all() -> Self {
        ResilienceConfig {
            recovery: RecoveryPolicy {
                redispatch: false,
                ..RecoveryPolicy::default()
            },
            ..ResilienceConfig::default()
        }
    }
}

/// Outcome of previewing one job against the surviving pool.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum AdmissionDecision {
    /// Run as requested.
    Admit,
    /// Run down-laddered to this many target digits.
    Degrade(u32),
    /// No rung fits the deadline; the payload is the predicted
    /// completion at the *requested* digits (the miss magnitude).
    Shed(f64),
}

/// Earliest predicted completion of a singleton solve of
/// `rows×cols` at `digits` over the surviving devices, no earlier than
/// `release` — the admission controller's crystal ball, the same
/// [`DevicePool::preview_stages`] the staged dispatcher books by.
fn earliest_end(
    pool: &DevicePool,
    planner: &Planner,
    rows: usize,
    cols: usize,
    digits: u32,
    overlap: bool,
    release: f64,
) -> f64 {
    let mut best = f64::INFINITY;
    for d in pool.devices().iter().filter(|d| !d.is_lost()) {
        let (plan, fused) = planner.plan_fused(&d.gpu, rows, cols, digits, 1);
        let reqs = fused.stage_reqs(ExecPlan::booked_stages(plan.corrections()));
        best = best.min(pool.preview_stages(d.id, &reqs, overlap, release));
    }
    best
}

/// Decide one job's fate at ingress. Deadline-free jobs always admit;
/// a deadlined job admits at the cheapest acceptable digits — the
/// requested digits when they fit, else (under
/// [`AdmissionConfig::degrade`]) the highest cheaper rung that fits,
/// else [`AdmissionDecision::Shed`] (under [`AdmissionConfig::shed`]).
pub(crate) fn admit_job(
    pool: &DevicePool,
    planner: &Planner,
    job: &Job,
    overlap: bool,
    release: f64,
    cfg: &AdmissionConfig,
) -> AdmissionDecision {
    let Some(deadline) = job.deadline_ms else {
        return AdmissionDecision::Admit;
    };
    if !cfg.enabled || pool.alive_count() == 0 {
        return AdmissionDecision::Admit;
    }
    let requested_end = earliest_end(
        pool,
        planner,
        job.rows(),
        job.cols(),
        job.target_digits,
        overlap,
        release,
    );
    if requested_end <= deadline {
        return AdmissionDecision::Admit;
    }
    if cfg.degrade {
        // walk the ladder downward: the nearest cheaper rung that fits
        // loses the fewest digits
        let requested_rung = Precision::for_digits(job.target_digits);
        for rung in Precision::LADDER
            .into_iter()
            .rev()
            .filter(|r| *r < requested_rung)
        {
            let end = earliest_end(
                pool,
                planner,
                job.rows(),
                job.cols(),
                rung.digits(),
                overlap,
                release,
            );
            if end <= deadline {
                return AdmissionDecision::Degrade(rung.digits());
            }
        }
    }
    if cfg.shed {
        AdmissionDecision::Shed(requested_end)
    } else {
        AdmissionDecision::Admit
    }
}

/// A terminal outcome for a job that never ran (shed at ingress) or
/// never finished (lost with recovery off). `end_ms` is the moment the
/// verdict fell: the release for a shed job, the loss time for a
/// failed one.
pub(crate) fn tombstone_outcome(
    job: &Job,
    plan: ExecPlan,
    device: usize,
    disposition: Disposition,
    end_ms: f64,
) -> JobOutcome {
    JobOutcome {
        job_id: job.id,
        device,
        plan,
        x: Solution::D1(Vec::new()),
        residual: f64::INFINITY,
        achieved_digits: 0.0,
        start_ms: end_ms,
        end_ms,
        fused_group: 1,
        corrections_run: 0,
        refunded_ms: 0.0,
        extended_ms: 0.0,
        priority: job.priority,
        release_ms: job.release(),
        deadline_ms: job.deadline_ms,
        disposition,
        requested_digits: job.target_digits,
        tenant: job.tenant,
    }
}

/// Solve `jobs` on `pool` with admission, fault injection and recovery
/// — the staged batch engine ([`crate::batch::solve_batch_staged`])
/// wrapped in the resilience loop described in the module docs. Fault
/// schedules are read from each pooled device's
/// [`Gpu::fault`](gpusim::Gpu) plan (attach one with
/// [`DevicePool::set_fault_plan`]); with every plan quiet and no
/// deadlines this degenerates to the plain staged solve.
///
/// Every job ends in an explicit [`Disposition`] on its outcome, and
/// every *completed* job's solution is bit-identical to the fault-free
/// run's — recovery and retries move simulated time, never arithmetic.
pub fn solve_batch_resilient(
    pool: &mut DevicePool,
    jobs: &[Job],
    policy: DispatchPolicy,
    micro: &MicrobatchConfig,
    sched: &StageSchedConfig,
    cfg: &ResilienceConfig,
) -> BatchReport {
    let mut planner = Planner::new();
    if let Some(obs) = pool.observer() {
        planner.attach_observer(obs.clone());
    }

    // ---- phase 0: admission at the door ------------------------------
    let mut outcomes: Vec<Option<JobOutcome>> = Vec::new();
    outcomes.resize_with(jobs.len(), || None);
    let mut active: Vec<usize> = Vec::new(); // original index per admitted job
    let mut ajobs: Vec<Job> = Vec::new(); // admitted jobs, digits possibly lowered
    let mut dispo: Vec<Disposition> = Vec::new(); // per admitted job
    for (i, job) in jobs.iter().enumerate() {
        let release = job.release();
        match admit_job(pool, &planner, job, sched.overlap, release, &cfg.admission) {
            AdmissionDecision::Admit => {
                active.push(i);
                ajobs.push(job.clone());
                dispo.push(Disposition::Ok);
            }
            AdmissionDecision::Degrade(digits) => {
                pool.emit(|| Event::JobDegraded {
                    job: job.id,
                    from_digits: job.target_digits,
                    to_digits: digits,
                });
                let mut degraded = job.clone();
                degraded.target_digits = digits;
                active.push(i);
                ajobs.push(degraded);
                dispo.push(Disposition::Degraded);
            }
            AdmissionDecision::Shed(predicted_end) => {
                pool.emit(|| Event::JobShed {
                    job: job.id,
                    deadline_ms: job.deadline_ms.unwrap_or(0.0),
                    predicted_end_ms: predicted_end,
                });
                let device = pool
                    .devices()
                    .iter()
                    .find(|d| !d.is_lost())
                    .map(|d| d.id)
                    .unwrap_or(0);
                let (plan, _) = planner.plan_fused(
                    pool.gpu(device),
                    job.rows(),
                    job.cols(),
                    job.target_digits,
                    1,
                );
                outcomes[i] = Some(tombstone_outcome(
                    job,
                    plan,
                    device,
                    Disposition::Shed,
                    release,
                ));
            }
        }
    }

    // ---- phase 1: book the admitted work in placement order ----------
    let shapes: Vec<JobShape> = ajobs.iter().map(JobShape::from).collect();
    let groups_idx: Vec<Vec<usize>> = if micro.is_off() {
        (0..ajobs.len()).map(|i| vec![i]).collect()
    } else {
        plan_groups(&planner, &shapes, micro)
    };
    let order = crate::microbatch::placement_order(pool, &planner, &shapes, &groups_idx, policy);
    struct Slot {
        gi: usize,
        shape: JobShape,
        g: GroupDispatch,
        /// Set when a loss killed this group and recovery is off: the
        /// loss time, which becomes the members' terminal `end_ms`.
        dead: Option<f64>,
    }
    let mut slots: Vec<Slot> = Vec::with_capacity(order.len());
    for &gi in &order {
        let idxs = &groups_idx[gi];
        let shape = shapes[idxs[0]];
        let release = idxs
            .iter()
            .map(|&j| ajobs[j].release())
            .fold(0.0f64, f64::max);
        let g = dispatch_group_staged(pool, &planner, idxs.clone(), &shape, policy, sched, release);
        slots.push(Slot {
            gi,
            shape,
            g,
            dead: None,
        });
    }

    // ---- phase 1.5: sticky losses, oldest first ----------------------
    // Each loss interrupts the unfinished bookings on the dying device;
    // re-dispatch immediately so a *later* loss can interrupt the
    // re-booked work too (it is live again). Recovery only books onto
    // survivors — their existing spans are never moved or re-run.
    let mut losses: Vec<(usize, f64)> = pool
        .devices()
        .iter()
        .filter_map(|d| d.gpu.fault.lost_at_ms().map(|t| (d.id, t)))
        .collect();
    losses.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    for (id, t) in losses {
        let report = pool.fail_device(id, t);
        let hit: HashSet<u64> = report.interrupted.iter().copied().collect();
        if hit.is_empty() {
            continue;
        }
        for slot in slots.iter_mut() {
            let Some(bid) = slot.g.booking.as_ref().map(|b| b.id) else {
                continue;
            };
            if !hit.contains(&bid) {
                continue;
            }
            let idxs = groups_idx[slot.gi].clone();
            if cfg.recovery.redispatch && pool.alive_count() > 0 {
                let release = idxs.iter().map(|&j| ajobs[j].release()).fold(t, f64::max);
                slot.g = dispatch_group_staged(
                    pool,
                    &planner,
                    idxs.clone(),
                    &slot.shape,
                    policy,
                    sched,
                    release,
                );
                for &j in &idxs {
                    if dispo[j] == Disposition::Ok {
                        dispo[j] = Disposition::Retried;
                    }
                }
            } else {
                slot.dead = Some(t);
                for &j in &idxs {
                    dispo[j] = Disposition::Failed;
                }
            }
        }
    }

    // ---- phase 2: execute (sequentially; numerics are device-free) ---
    let mut solved: Vec<Option<Vec<PlannedSolve>>> = Vec::new();
    solved.resize_with(slots.len(), || None);
    for (i, slot) in slots.iter().enumerate() {
        if slot.dead.is_some() {
            continue;
        }
        let members: Vec<&Job> = groups_idx[slot.gi].iter().map(|&j| &ajobs[j]).collect();
        solved[i] = Some(if members.len() == 1 {
            vec![solve_planned_traced_with(
                pool.gpu(slot.g.device),
                members[0],
                &slot.g.plan,
                sched.max_extra_passes,
            )]
        } else {
            solve_planned_fused_with(
                pool.gpu(slot.g.device),
                &members,
                &slot.g.plan,
                sched.max_extra_passes,
            )
        });
    }

    // ---- phase 3: settle, then replay transient faults ---------------
    let mut makespan_ms = 0.0f64;
    let mut fused_groups = 0;
    for (slot, solved) in slots.iter_mut().zip(solved) {
        let idxs = &groups_idx[slot.gi];
        let members: Vec<&Job> = idxs.iter().map(|&j| &ajobs[j]).collect();
        if let Some(t) = slot.dead {
            for (&j, &job) in idxs.iter().zip(&members) {
                let mut o = tombstone_outcome(
                    job,
                    slot.g.plan.clone(),
                    slot.g.device,
                    Disposition::Failed,
                    t,
                );
                o.start_ms = slot.g.start_ms.min(t);
                o.fused_group = idxs.len();
                outcomes[active[j]] = Some(o);
            }
            continue;
        }
        let solved = solved.expect("every surviving group executed");
        if members.len() > 1 {
            fused_groups += 1;
        }
        let passes_run = solved.iter().map(|s| s.corrections_run).max().unwrap_or(0);
        let (refunded, extended) =
            settle_staged_dispatch(pool, &mut slot.g, &slot.shape, passes_run, sched);

        // transient kernel faults: every scheduled transient inside the
        // executed interval costs one backed-off replay of the group's
        // steady-state pass (or, for direct plans, the whole booking) —
        // time moves, bits do not
        let device = slot.g.device;
        let fplan = pool.gpu(device).fault.clone();
        let hits: Vec<f64> = fplan
            .transients()
            .iter()
            .copied()
            .filter(|t| *t >= slot.g.start_ms && *t < slot.g.end_ms)
            .take(cfg.recovery.max_transient_retries)
            .collect();
        let mut end = slot.g.end_ms;
        let front = members[0].id;
        for (r, at) in hits.iter().enumerate() {
            pool.emit(|| Event::FaultInjected {
                device,
                job: front,
                at_ms: *at,
                retry: r,
            });
            let mut reqs = slot.g.fused.extension_reqs();
            if reqs.is_empty() {
                reqs = slot.g.fused.stage_reqs(usize::MAX);
            }
            let backoff = cfg.recovery.backoff_ms * (1u64 << r) as f64;
            let b = pool.commit_stages(device, &reqs, 0.0, 0.0, 0, sched.overlap, end + backoff);
            pool.mark_settled(b.id);
            pool.emit(|| Event::RetryBooked {
                device,
                job: front,
                end_ms: b.end_ms(),
                backoff_ms: backoff,
            });
            end = b.end_ms();
            for &j in idxs {
                if dispo[j] == Disposition::Ok {
                    dispo[j] = Disposition::Retried;
                }
            }
        }
        slot.g.end_ms = end;

        makespan_ms = makespan_ms.max(slot.g.end_ms);
        let mut assembled = JobOutcome::assemble_group(&members, &slot.g, solved);
        for (o, &j) in assembled.iter_mut().zip(idxs.iter()) {
            o.refunded_ms = refunded;
            o.extended_ms = extended;
            o.disposition = dispo[j];
            o.requested_digits = jobs[active[j]].target_digits;
        }
        for (&j, o) in idxs.iter().zip(assembled) {
            outcomes[active[j]] = Some(o);
        }
    }

    let outcomes: Vec<JobOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every job has a terminal disposition"))
        .collect();
    emit_settled(pool, &outcomes);
    let completed = outcomes
        .iter()
        .filter(|o| o.disposition.completed())
        .count();
    let solves_per_sec = if makespan_ms > 0.0 {
        completed as f64 / (makespan_ms * 1.0e-3)
    } else {
        0.0
    };
    BatchReport {
        makespan_ms,
        solves_per_sec,
        device_stats: pool.stats(),
        distinct_plans: planner.cached_plans(),
        plan_cache: planner.cache_stats(),
        fused_groups,
        latency: latency_summary(&outcomes),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::{FaultPlan, Gpu};
    use mdls_matrix::HostMat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn diag_jobs(count: usize, n: usize, digits: u32, seed: u64) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count as u64)
            .map(|id| {
                let a = HostMat::<f64>::from_fn(n, n, |r, c| {
                    let u: f64 = multidouble::random::rand_real(&mut rng);
                    u + if r == c { 4.0 } else { 0.0 }
                });
                let b: Vec<f64> = (0..n)
                    .map(|_| multidouble::random::rand_real(&mut rng))
                    .collect();
                Job::new(id, a, b, digits)
            })
            .collect()
    }

    #[test]
    fn quiet_plans_and_no_deadlines_match_the_staged_engine() {
        let jobs = diag_jobs(8, 8, 25, 0xfa01);
        let micro = MicrobatchConfig::default();
        let sched = StageSchedConfig::staged();
        let mut pool_a = DevicePool::homogeneous(&Gpu::v100(), 2);
        let a = crate::batch::solve_batch_staged_with(
            &mut pool_a,
            &jobs,
            DispatchPolicy::LeastLoaded,
            &micro,
            &sched,
            false,
        );
        let mut pool_b = DevicePool::homogeneous(&Gpu::v100(), 2);
        let b = solve_batch_resilient(
            &mut pool_b,
            &jobs,
            DispatchPolicy::LeastLoaded,
            &micro,
            &sched,
            &ResilienceConfig::default(),
        );
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.job_id, y.job_id);
            assert_eq!(
                x.x, y.x,
                "job {}: resilience wrapper changed bits",
                x.job_id
            );
            assert_eq!(x.end_ms, y.end_ms);
            assert_eq!(y.disposition, Disposition::Ok);
        }
        assert_eq!(a.makespan_ms, b.makespan_ms);
    }

    #[test]
    fn transient_faults_retry_and_extend_time_not_bits() {
        let jobs = diag_jobs(4, 8, 25, 0xfa02);
        let micro = MicrobatchConfig::off();
        let sched = StageSchedConfig::staged();
        let mut quiet = DevicePool::homogeneous(&Gpu::v100(), 1);
        let base = solve_batch_resilient(
            &mut quiet,
            &jobs,
            DispatchPolicy::LeastLoaded,
            &micro,
            &sched,
            &ResilienceConfig::default(),
        );
        let mut noisy = DevicePool::homogeneous(&Gpu::v100(), 1);
        // a dense transient schedule: mean gap well under the batch span
        noisy.set_fault_plan(0, FaultPlan::seeded(11, 1.0e4, 50.0));
        let hit = solve_batch_resilient(
            &mut noisy,
            &jobs,
            DispatchPolicy::LeastLoaded,
            &micro,
            &sched,
            &ResilienceConfig::default(),
        );
        assert!(
            hit.outcomes
                .iter()
                .any(|o| o.disposition == Disposition::Retried),
            "no transient landed inside the batch window"
        );
        for (b, h) in base.outcomes.iter().zip(&hit.outcomes) {
            assert_eq!(b.x, h.x, "job {}: a retry changed the bits", b.job_id);
            assert!(h.end_ms >= b.end_ms);
            // a replay books strictly after the settled end, so every
            // retried job finishes later than its fault-free twin
            if h.disposition == Disposition::Retried {
                assert!(h.end_ms > b.end_ms, "job {}: free retry", h.job_id);
            }
        }
        assert!(hit.makespan_ms >= base.makespan_ms);
    }

    #[test]
    fn unmeetable_deadline_sheds_and_is_not_a_miss() {
        let mut jobs = diag_jobs(3, 8, 25, 0xfa03);
        jobs[1].deadline_ms = Some(1.0e-6); // nothing finishes this fast
        let micro = MicrobatchConfig::off();
        let sched = StageSchedConfig::staged();
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let report = solve_batch_resilient(
            &mut pool,
            &jobs,
            DispatchPolicy::LeastLoaded,
            &micro,
            &sched,
            &ResilienceConfig::default(),
        );
        let shed = &report.outcomes[1];
        assert_eq!(shed.disposition, Disposition::Shed);
        assert!(!shed.missed_deadline(), "a shed job is not a miss");
        assert_eq!(report.latency.shed, 1);
        assert_eq!(report.latency.deadline_misses, 0);
        // the other two ran normally
        assert_eq!(report.outcomes[0].disposition, Disposition::Ok);
        assert_eq!(report.outcomes[2].disposition, Disposition::Ok);
        assert_eq!(
            report
                .outcomes
                .iter()
                .filter(|o| o.disposition.completed())
                .count(),
            2
        );
    }
}
