//! The batched solve service: plan, schedule, execute, aggregate.
//!
//! [`solve_batch`] is the pipeline's public entry point: it takes a
//! device pool and a batch of [`Job`]s, schedules every job over the
//! pool (see [`crate::scheduler`]), runs each job's [`ExecPlan`]
//! through the **stage interpreter** [`solve_planned`], and returns
//! per-job outcomes plus pool-level throughput.
//!
//! The interpreter executes a plan's stages in order, *functionally*
//! (real multiple double arithmetic on the simulator):
//!
//! * a **direct** plan factors and solves at one rung — exactly a
//!   sequential [`mdls_core::lstsq`] call, bit for bit;
//! * a **refinement** plan factors once at the cheap rung, takes the
//!   initial solve, then alternates device-side residuals at the high
//!   rung ([`mdls_core::residual_kernel`]) with corrections through the
//!   *reused* QR factorization ([`mdls_core::LstsqFactorization`]),
//!   accumulating the iterate at the high rung.
//!
//! Plans only choose stages; stage execution is deterministic, so batch
//! results stay bit-identical to interpreting each job alone with the
//! same plan (asserted by the `tests/pipeline.rs` property test).
//! Host-side worker threads only shorten *our* wall clock; simulated
//! device time is unaffected.
//!
//! Promotion of a job's `f64` data to a working rung is memoized in a
//! process-wide cache keyed by (matrix fingerprint, rung): power-series
//! and tracker workloads re-solve against the same matrix many times,
//! and re-promoting per job was pure waste (the ROADMAP's "host-side
//! execution throughput" item). A fingerprint hit is verified against
//! the original matrix before reuse, so a collision can never swap one
//! system for another.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use gpusim::{ExecMode, Gpu, Sim};
use mdls_core::{lstsq_factor, lstsq_factor_batched, residual_kernel};
use mdls_matrix::{vec_norm2, HostMat};
use multidouble::{convert_real, Dd, MdReal, Od, Qd};

use crate::job::{Job, Precision, Solution, TenantId};
use crate::microbatch::{
    dispatch_group_staged, plan_groups, schedule_groups, GroupDispatch, MicrobatchConfig,
};
use crate::plan::ExecPlan;
use crate::planner::{PlanCacheStats, Planner};
use crate::pool::{DevicePool, DeviceStats, RebookMode};
use crate::scheduler::{schedule, DispatchPolicy, JobShape, StageSchedConfig};
use mdls_obs::Event;

/// How one job's service terminated. Every [`JobOutcome`] carries
/// exactly one of these — the overloaded "did it miss its deadline?"
/// signaling is gone; a shed job is not a deadline miss, it never ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Disposition {
    /// Solved as requested, first try.
    Ok,
    /// Solved to the requested digits, but only after fault recovery
    /// re-ran work (a transient kernel replay or a post-loss
    /// re-dispatch). Bits are identical to a fault-free run.
    Retried,
    /// Solved, but admission down-laddered the accuracy target to a
    /// cheaper rung to fit the deadline: `achieved_digits` certifies
    /// the degraded rung, `requested_digits` records what was asked.
    Degraded,
    /// Never ran: admission previewed every rung and none could meet
    /// the deadline, so the job was rejected at ingress. The outcome
    /// carries an empty solution.
    Shed,
    /// Started but never completed (its device was lost and recovery
    /// was disabled). The outcome carries an empty solution.
    Failed,
}

impl Disposition {
    /// Short label for tables and logs.
    pub fn tag(self) -> &'static str {
        match self {
            Disposition::Ok => "ok",
            Disposition::Retried => "retried",
            Disposition::Degraded => "degraded",
            Disposition::Shed => "shed",
            Disposition::Failed => "failed",
        }
    }

    /// True when the job produced a solution (possibly degraded).
    pub fn completed(self) -> bool {
        matches!(
            self,
            Disposition::Ok | Disposition::Retried | Disposition::Degraded
        )
    }
}

/// Outcome of one job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's caller-chosen id.
    pub job_id: u64,
    /// Pool id of the device that ran the solve.
    pub device: usize,
    /// The staged plan the solve ran under — `plan.stages` is the
    /// per-stage predicted breakdown.
    pub plan: ExecPlan,
    /// The minimizer, at the plan's solution precision.
    pub x: Solution,
    /// Relative residual `‖b − A x‖₂ / ‖b‖₂` (leading double),
    /// measured at the solution rung.
    pub residual: f64,
    /// Decimal digits the measured residual certifies
    /// (`−log₁₀ residual`; infinite for an exactly-zero residual).
    pub achieved_digits: f64,
    /// Simulated start time on the device, ms.
    pub start_ms: f64,
    /// Simulated completion time on the device, ms.
    pub end_ms: f64,
    /// Size of the micro-batched fused group this job rode in
    /// (1 = unfused). Fused siblings share `start_ms`/`end_ms`.
    pub fused_group: usize,
    /// Refinement passes actually executed — at most the plan's
    /// correction count, fewer when the adaptive stop met the digit
    /// target early. Zero for direct plans.
    pub corrections_run: usize,
    /// This job's equal share of the booked stage time its whole
    /// dispatch group provably skipped, ms (see
    /// [`DevicePool::reconcile`]). A fused launch runs as long as *any*
    /// member still iterates, so a pass is refundable only once every
    /// sibling has stopped — a member that finishes early while
    /// siblings continue refunds nothing for the passes they still run.
    pub refunded_ms: f64,
    /// This job's equal share of stage time booked *beyond* the
    /// group's original booking, ms: expected-pass booking that had to
    /// grow to the actual pass count, or extra passes a stalled job ran
    /// past its plan (see [`solve_batch_staged`]). Zero on the per-plan
    /// paths.
    pub extended_ms: f64,
    /// The job's scheduling priority, carried through from [`Job`] so
    /// latency summaries can slice by class.
    pub priority: i32,
    /// Simulated arrival time, ms (0 for always-ready jobs) — the
    /// baseline of [`JobOutcome::turnaround_ms`].
    pub release_ms: f64,
    /// The job's completion deadline, if it had one.
    pub deadline_ms: Option<f64>,
    /// How the job's service terminated (see [`Disposition`]). The
    /// fault-free engines always report [`Disposition::Ok`]; the
    /// resilient engine patches in the terminal state recovery and
    /// admission actually reached.
    pub disposition: Disposition,
    /// The digits the caller originally asked for. Equal to
    /// `plan.target_digits` unless admission down-laddered the job
    /// ([`Disposition::Degraded`]), where the plan carries the cheaper
    /// rung and this remembers the request.
    pub requested_digits: u32,
    /// The submitting tenant, carried through from [`Job`] so service
    /// reports and per-tenant histograms can slice by caller
    /// ([`crate::job::TenantId`] 0 on the single-tenant paths).
    pub tenant: TenantId,
}

/// Result of interpreting one job's plan: the solution, its measured
/// residual, and how many refinement passes actually ran (the adaptive
/// stop may finish under the plan's booked count).
#[derive(Clone, Debug)]
pub struct PlannedSolve {
    /// The minimizer, at the plan's solution precision.
    pub x: Solution,
    /// Relative residual at the solution rung.
    pub residual: f64,
    /// Refinement passes executed (0 for direct plans).
    pub corrections_run: usize,
}

impl JobOutcome {
    /// Assemble a whole group's outcomes from its dispatch slot and the
    /// interpreter's results (shared by the batch and stream paths),
    /// one per member in group order. The adaptive refund is computed
    /// here, at group granularity: a fused stage runs as long as any
    /// member still iterates, so only the tail every member skipped is
    /// provably unexecuted — that tail's booked time is split equally
    /// among the members. (A singleton group degenerates to refunding
    /// exactly its own skipped stages.)
    pub(crate) fn assemble_group(
        members: &[&Job],
        g: &GroupDispatch,
        solved: Vec<PlannedSolve>,
    ) -> Vec<JobOutcome> {
        assert_eq!(members.len(), solved.len());
        let group_passes = solved.iter().map(|s| s.corrections_run).max().unwrap_or(0);
        let refunded_ms = g.fused.per_job_tail_ms(2 + 2 * group_passes);
        members
            .iter()
            .zip(solved)
            .map(|(&job, s)| JobOutcome {
                job_id: job.id,
                device: g.device,
                plan: g.plan.clone(),
                achieved_digits: digits_from_residual(s.residual),
                x: s.x,
                residual: s.residual,
                start_ms: g.start_ms,
                end_ms: g.end_ms,
                fused_group: g.jobs.len(),
                corrections_run: s.corrections_run,
                refunded_ms,
                extended_ms: 0.0,
                priority: job.priority,
                release_ms: job.release(),
                deadline_ms: job.deadline_ms,
                disposition: Disposition::Ok,
                requested_digits: job.target_digits,
                tenant: job.tenant,
            })
            .collect()
    }

    /// Turnaround latency: completion minus arrival, ms.
    pub fn turnaround_ms(&self) -> f64 {
        self.end_ms - self.release_ms
    }

    /// True when the job *completed* past a deadline it carried. A
    /// shed or failed job never completed — it is counted under its
    /// own disposition, not as a deadline miss.
    pub fn missed_deadline(&self) -> bool {
        self.disposition.completed() && self.deadline_ms.is_some_and(|d| self.end_ms > d)
    }
}

/// Decimal digits certified by a relative residual.
pub fn digits_from_residual(residual: f64) -> f64 {
    if residual <= 0.0 {
        f64::INFINITY
    } else {
        -residual.log10()
    }
}

/// Turnaround-latency percentiles and deadline accounting over a set of
/// outcomes — the one place the miss check lives (reports, streams and
/// benches all summarize through here instead of re-deriving it).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Median turnaround (`end_ms − release_ms`), ms, over *completed*
    /// jobs only — shed and failed jobs have no completion to time.
    pub p50_ms: f64,
    /// 99th-percentile turnaround, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile turnaround, ms.
    pub p999_ms: f64,
    /// Jobs that carried a deadline and completed past it. Shed jobs
    /// are counted separately below, not conflated into this.
    pub deadline_misses: usize,
    /// Jobs admission rejected at ingress ([`Disposition::Shed`]).
    pub shed: usize,
    /// Jobs that started but never completed ([`Disposition::Failed`]).
    pub failed: usize,
}

/// Summarize turnaround latency and deadline misses over `outcomes`
/// (nearest-rank percentiles; all zeros for an empty slice).
/// Percentiles and misses cover completed jobs only; shed and failed
/// jobs are tallied in their own counters.
pub fn latency_summary(outcomes: &[JobOutcome]) -> LatencySummary {
    let mut turnaround: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.disposition.completed())
        .map(JobOutcome::turnaround_ms)
        .collect();
    turnaround.sort_by(f64::total_cmp);
    let pct = |q: f64| -> f64 {
        if turnaround.is_empty() {
            return 0.0;
        }
        let rank = ((q * turnaround.len() as f64).ceil() as usize).clamp(1, turnaround.len());
        turnaround[rank - 1]
    };
    LatencySummary {
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        p999_ms: pct(0.999),
        deadline_misses: outcomes.iter().filter(|o| o.missed_deadline()).count(),
        shed: outcomes
            .iter()
            .filter(|o| o.disposition == Disposition::Shed)
            .count(),
        failed: outcomes
            .iter()
            .filter(|o| o.disposition == Disposition::Failed)
            .count(),
    }
}

/// Outcomes plus aggregates for one batch.
///
/// `makespan_ms` and `solves_per_sec` describe *this batch*: the
/// simulated time at which its last job completes and this batch's
/// jobs over that time. `device_stats` snapshots the pool, which is
/// cumulative — reusing a pool across batches carries its clocks and
/// counters forward (call [`DevicePool::reset`] between independent
/// batches to start from idle).
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job outcomes, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Simulated completion time of this batch's last job, ms.
    pub makespan_ms: f64,
    /// This batch's jobs per simulated second of `makespan_ms`.
    pub solves_per_sec: f64,
    /// Per-device snapshots of the (cumulative) pool state.
    pub device_stats: Vec<DeviceStats>,
    /// Number of distinct plans the planner computed (cache pressure) —
    /// the size of this batch's plan cache; `plan_cache` breaks the
    /// lookups behind it into hits and misses.
    pub distinct_plans: usize,
    /// Plan-cache traffic of this batch's planner: plan and fused-memo
    /// hits/misses (the planner-side sibling of
    /// [`promoted_cache_stats`]).
    pub plan_cache: PlanCacheStats,
    /// Number of micro-batched fused groups (of ≥ 2 jobs) this batch
    /// ran; 0 on the unfused paths.
    pub fused_groups: usize,
    /// Turnaround percentiles and deadline misses over `outcomes`,
    /// computed once via [`latency_summary`].
    pub latency: LatencySummary,
}

// ---------------------------------------------------------------------
// promoted-matrix cache
// ---------------------------------------------------------------------

/// Entry-count budget of the promotion cache.
const PROMO_MAX_ENTRIES: usize = 512;

/// Approximate byte budget of the promotion cache (originals plus
/// promotions). Entry counts alone are no bound at all — 512 octo
/// double 1024 × 1024 promotions would hold tens of gigabytes — so the
/// cache tracks bytes and, when either budget would be exceeded, is
/// dropped wholesale before the next insert. Crude, but it bounds
/// memory on adversarial streams while costing repeated-shape
/// workloads (the case the cache exists for) nothing.
const PROMO_MAX_BYTES: usize = 256 << 20;

struct PromoEntry {
    /// The exact `f64` matrix this entry was promoted from — checked on
    /// every hit so a fingerprint collision can never leak a different
    /// system's promotion.
    original: Arc<HostMat<f64>>,
    promoted: Arc<dyn Any + Send + Sync>,
    /// Approximate heap footprint of this entry (original + promotion).
    bytes: usize,
}

/// Bound on the first-sighting probation set (8-byte fingerprints, so
/// the set itself is negligible; it exists so the *entries* are not).
const PROMO_SEEN_CAP: usize = 4096;

#[derive(Default)]
struct PromoCache {
    map: HashMap<(u64, TypeId), PromoEntry>,
    bytes: usize,
    /// Keys seen exactly once. A matrix is cached only on its *second*
    /// sighting: one-shot batches (every matrix unique) then never pay
    /// the original's clone or the byte budget — only repeated-matrix
    /// workloads, the case the cache exists for, populate it.
    seen: std::collections::HashSet<(u64, TypeId)>,
}

static PROMO: OnceLock<Mutex<PromoCache>> = OnceLock::new();
static PROMO_HITS: AtomicU64 = AtomicU64::new(0);
static PROMO_MISSES: AtomicU64 = AtomicU64::new(0);
static PROMO_WARM: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Switch the promoted-matrix cache's **warm-insert** mode and return
/// the previous setting.
///
/// By default an entry lands only on a matrix's *second* sighting, so
/// one-shot batches (every matrix unique) never pay the original's
/// clone or the byte budget. A service that *knows* its matrices recur
/// — a tracker restarted mid-path, a power-flow sweep resuming from a
/// checkpoint — loses the first re-solve's hit to that probation.
/// Warm-insert caches on first sighting instead: the first repeat is
/// already a hit, at the cost of cloning matrices that may never
/// return. Process-wide, like the cache itself.
pub fn promoted_cache_warm_insert(enabled: bool) -> bool {
    PROMO_WARM.swap(enabled, Ordering::Relaxed)
}

/// FNV-flavored fingerprint over the dimensions and every entry's bits.
fn fingerprint(a: &HostMat<f64>) -> u64 {
    let mut h = (a.rows as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(a.cols as u64);
    for r in 0..a.rows {
        for c in 0..a.cols {
            h = (h.rotate_left(7) ^ a.get(r, c).to_bits()).wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// The job's matrix promoted to rung `S`, served from the process-wide
/// cache when this exact matrix was promoted to `S` before.
///
/// All O(m·n) work — the fingerprint, the collision-verifying equality
/// compare, the promotion itself and the original's clone — happens
/// *outside* the cache mutex; the lock only guards map lookups and
/// inserts, so concurrent host workers never serialize on matrix-sized
/// work. Racing workers may promote the same matrix more than once
/// (each paying one extra miss); whichever insert lands last wins, and
/// every result is identical.
fn promoted_matrix<S: MdReal>(a: &HostMat<f64>) -> Arc<HostMat<S>> {
    if S::LIMBS == 1 {
        // f64 → f64 "promotion" is an identity copy that costs exactly
        // what the cache's fingerprint + verification compare would —
        // caching it saves nothing and would double-store the matrix
        return Arc::new(HostMat::<S>::from_fn(a.rows, a.cols, |r, c| {
            S::from_f64(a.get(r, c))
        }));
    }
    let fp = fingerprint(a);
    let key = (fp, TypeId::of::<S>());
    let cache = PROMO.get_or_init(|| Mutex::new(PromoCache::default()));
    let (found, second_sighting) = {
        let warm = PROMO_WARM.load(Ordering::Relaxed);
        let mut c = cache.lock().unwrap();
        let found = c
            .map
            .get(&key)
            .map(|e| (e.original.clone(), e.promoted.clone()));
        // warm-insert mode skips the probation set: every first
        // sighting is treated as cache-worthy
        let second = found.is_none() && (warm || c.seen.contains(&key));
        if found.is_none() && !second {
            if c.seen.len() >= PROMO_SEEN_CAP {
                c.seen.clear();
            }
            c.seen.insert(key);
        }
        (found, second)
    };
    if let Some((original, promoted)) = found {
        if *original == *a {
            PROMO_HITS.fetch_add(1, Ordering::Relaxed);
            return promoted.downcast::<HostMat<S>>().unwrap();
        }
    }
    PROMO_MISSES.fetch_add(1, Ordering::Relaxed);
    let promoted = Arc::new(HostMat::<S>::from_fn(a.rows, a.cols, |r, c| {
        S::from_f64(a.get(r, c))
    }));
    if !second_sighting {
        return promoted; // first sighting: promote, don't cache
    }
    let entry = PromoEntry {
        original: Arc::new(a.clone()),
        promoted: promoted.clone(),
        bytes: a.rows * a.cols * (8 + S::LIMBS * 8),
    };
    let mut c = cache.lock().unwrap();
    if !c.map.contains_key(&key)
        && (c.map.len() >= PROMO_MAX_ENTRIES || c.bytes + entry.bytes > PROMO_MAX_BYTES)
    {
        c.map.clear();
        c.bytes = 0;
    }
    c.bytes += entry.bytes;
    if let Some(old) = c.map.insert(key, entry) {
        c.bytes -= old.bytes;
    }
    promoted
}

/// Lifetime (hits, misses) of the promoted-matrix cache — a
/// process-wide observability hook for the repeated-shape win.
pub fn promoted_cache_stats() -> (u64, u64) {
    (
        PROMO_HITS.load(Ordering::Relaxed),
        PROMO_MISSES.load(Ordering::Relaxed),
    )
}

/// Promote an `f64` vector into the working precision.
fn promote_vec<S: MdReal>(v: &[f64]) -> Vec<S> {
    v.iter().map(|&x| S::from_f64(x)).collect()
}

// ---------------------------------------------------------------------
// the stage interpreter
// ---------------------------------------------------------------------

/// Relative residual of `x` against the promoted system.
fn relative_residual<S: MdReal>(a: &HostMat<S>, x: &[S], b: &[S]) -> f64 {
    let r = a.residual(x, b).to_f64();
    let bn = vec_norm2(b).to_f64();
    if bn > 0.0 {
        r / bn
    } else {
        r
    }
}

/// Direct plan: factor + one solve at a single rung — exactly the
/// launch sequence (and bits) of a sequential [`mdls_core::lstsq`].
fn direct_as<S: MdReal>(gpu: &Gpu, job: &Job, plan: &ExecPlan) -> (Vec<S>, f64) {
    let a = promoted_matrix::<S>(&job.a);
    let b = promote_vec::<S>(&job.b);
    let fact = lstsq_factor(gpu, &a, &plan.options(ExecMode::Sequential));
    let (x, _) = fact.solve(&b);
    let residual = relative_residual(&a, &x, &b);
    (x, residual)
}

/// Fused direct plans: one micro-batched factor + solve over every
/// member. Each member's launch sequence is exactly the singleton
/// [`direct_as`] sequence (the batched sessions change accounting,
/// never arithmetic), so the returned bits match the unfused path.
/// The group's matrices and right hand sides are promoted in one pass
/// and uploaded as one grouped transfer — the per-job promotion and
/// upload bookkeeping the singleton path repeats `k` times happens
/// once here.
fn direct_fused_as<S: MdReal>(gpu: &Gpu, jobs: &[&Job], plan: &ExecPlan) -> Vec<(Vec<S>, f64)> {
    let opts = plan.options(ExecMode::Sequential);
    let mats: Vec<Arc<HostMat<S>>> = jobs.iter().map(|j| promoted_matrix::<S>(&j.a)).collect();
    let rhs: Vec<Vec<S>> = jobs.iter().map(|j| promote_vec::<S>(&j.b)).collect();
    let refs: Vec<&HostMat<S>> = mats.iter().map(|m| m.as_ref()).collect();
    let fact = lstsq_factor_batched(gpu, &refs, &opts);
    let (xs, _) = fact.solve_all(&rhs);
    xs.into_iter()
        .enumerate()
        .map(|(i, x)| {
            let residual = relative_residual(&mats[i], &x, &rhs[i]);
            (x, residual)
        })
        .collect()
}

/// Refinement plan: factor once at rung `F`, then per pass compute the
/// residual at rung `H` on the device and correct through the reused
/// factorization, accumulating the iterate at `H`. Adaptive: passes
/// stop as soon as the measured residual already certifies the plan's
/// digit target (see [`refine_through`]).
fn refine_as<F: MdReal, H: MdReal>(
    gpu: &Gpu,
    job: &Job,
    plan: &ExecPlan,
    extra_passes: usize,
) -> (Vec<H>, f64, usize) {
    // Factor(F) + initial Correct(F)
    let opts = plan.options(ExecMode::Sequential);
    let a_f = promoted_matrix::<F>(&job.a);
    let b_f = promote_vec::<F>(&job.b);
    let fact = lstsq_factor(gpu, &a_f, &opts);
    let (x0, _) = fact.solve(&b_f);
    refine_through::<F, H>(gpu, job, plan, &fact, x0, extra_passes)
}

/// Fused refinement: one micro-batched Factor(F) + initial Correct(F)
/// over the whole group, then per-member high-rung refinement loops
/// through each member's slice of the fused factorization. Members
/// stop adaptively and independently — a member that meets its digits
/// early simply drops out of later passes (its booked share is
/// refunded by the caller via the outcome's `refunded_ms`).
fn refine_fused_as<F: MdReal, H: MdReal>(
    gpu: &Gpu,
    jobs: &[&Job],
    plan: &ExecPlan,
    extra_passes: usize,
) -> Vec<(Vec<H>, f64, usize)> {
    let opts = plan.options(ExecMode::Sequential);
    let mats: Vec<Arc<HostMat<F>>> = jobs.iter().map(|j| promoted_matrix::<F>(&j.a)).collect();
    let rhs: Vec<Vec<F>> = jobs.iter().map(|j| promote_vec::<F>(&j.b)).collect();
    let refs: Vec<&HostMat<F>> = mats.iter().map(|m| m.as_ref()).collect();
    let fact = lstsq_factor_batched(gpu, &refs, &opts);
    let (x0s, _) = fact.solve_all(&rhs);
    x0s.into_iter()
        .enumerate()
        .map(|(i, x0)| {
            refine_through::<F, H>(gpu, jobs[i], plan, &fact.instances()[i], x0, extra_passes)
        })
        .collect()
}

/// The high-rung refinement loop behind both the singleton and the
/// fused paths: given the low-rung factorization and initial solve,
/// alternate device-side residuals at rung `H` with corrections
/// through the reused factorization, accumulating the iterate at `H`.
///
/// **Adaptive pass count**: the measured relative residual — free, the
/// outcome reports it anyway — is checked at every pass boundary, and
/// the loop stops as soon as it already certifies the plan's digit
/// target instead of running the booked count blind. The stopping rule
/// reads only device-independent bits, so placement invariance (and
/// fused/unfused bit-identity) survives.
///
/// **Pass extension**: when the plan's structural pass count is
/// exhausted with the target still uncertified — conditioning ate into
/// the per-pass digit gain — up to `extra_passes` further
/// residual/correct pairs run, as long as each pass still improves the
/// measured residual (a genuinely stuck iteration stops rather than
/// spinning). `extra_passes = 0` reproduces the legacy
/// stop-at-the-plan behavior exactly. The extension rule, like the
/// stop rule, reads only device-independent bits.
///
/// Returns the iterate, its last measured residual, and the passes
/// actually executed.
fn refine_through<F: MdReal, H: MdReal>(
    gpu: &Gpu,
    job: &Job,
    plan: &ExecPlan,
    fact: &mdls_core::LstsqFactorization<F>,
    x0: Vec<F>,
    extra_passes: usize,
) -> (Vec<H>, f64, usize) {
    let (m, n) = (job.rows(), job.cols());
    let opts = plan.options(ExecMode::Sequential);

    // high-rung system, device-resident across all residual stages —
    // the system uploads once, each pass moves only the iterate down
    // and the residual back, matching what `residual_model_profile`
    // prices. (This sim's own profile is never read: the reported
    // timing is the scheduler's booked plan prediction, which the
    // data-independent model makes exact, so no transfers are recorded
    // here.)
    let a_h = promoted_matrix::<H>(&job.a);
    let b_h = promote_vec::<H>(&job.b);
    let sim = Sim::new(gpu.clone(), ExecMode::Sequential);
    let da = sim.alloc_mat::<H>(m, n);
    let db = sim.alloc_vec::<H>(m);
    let dx = sim.alloc_vec::<H>(n);
    let dr = sim.alloc_vec::<H>(m);
    a_h.upload_to(&da);
    db.upload(&b_h);

    let good_enough = 10f64.powi(-(plan.target_digits.min(i32::MAX as u32) as i32));
    let bn = vec_norm2(&b_h).to_f64();
    let mut x: Vec<H> = x0.iter().map(|&v| convert_real::<F, H>(v)).collect();
    let mut passes = 0;
    let mut prev_rel = f64::INFINITY;
    let residual = loop {
        // Residual(H): r = b − A x at the high rung. The stage's own
        // output doubles as the adaptive stop measurement — no extra
        // matvec is ever computed for the check; a run to the booked
        // pass count costs one final residual stage in place of the
        // host-side measurement the outcome needed anyway.
        dx.upload(&x);
        residual_kernel(&sim, &da, &dx, &db, &dr, opts.tile_size);
        let r_h = dr.download();
        let rn = vec_norm2(&r_h).to_f64();
        let rel = if bn > 0.0 { rn / bn } else { rn };
        if rel < good_enough {
            break rel;
        }
        // past the plan's structural passes: extend only while allowed
        // and while the last pass actually gained ground
        if passes >= plan.corrections()
            && (passes >= plan.corrections() + extra_passes || rel >= prev_rel)
        {
            break rel;
        }
        prev_rel = rel;
        // Correct(F): demote the residual, re-solve through the cached
        // factorization, accumulate at the high rung
        let r_f: Vec<F> = r_h.iter().map(|&v| convert_real::<H, F>(v)).collect();
        let (d, _) = fact.solve(&r_f);
        for (xi, di) in x.iter_mut().zip(&d) {
            *xi += convert_real::<F, H>(*di);
        }
        passes += 1;
    };
    (x, residual, passes)
}

/// Interpret one job's staged plan on a device model, reporting the
/// adaptive trace. This is exactly what the batch executor does per
/// unfused job — exposed so callers (and the equivalence property
/// test) can reproduce any batch result with a single sequential
/// interpretation.
pub fn solve_planned_traced(gpu: &Gpu, job: &Job, plan: &ExecPlan) -> PlannedSolve {
    solve_planned_traced_with(gpu, job, plan, 0)
}

/// [`solve_planned_traced`] with pass extension: a refinement whose
/// residual stalls above target at the plan's structural pass count
/// may run up to `extra_passes` further residual/correct pairs while
/// each still improves the measured residual. `extra_passes = 0` is
/// bit-identical to the legacy interpreter.
pub fn solve_planned_traced_with(
    gpu: &Gpu,
    job: &Job,
    plan: &ExecPlan,
    extra_passes: usize,
) -> PlannedSolve {
    use Precision::{D1, D2, D4, D8};
    fn direct<S: MdReal>(
        gpu: &Gpu,
        job: &Job,
        plan: &ExecPlan,
        wrap: fn(Vec<S>) -> Solution,
    ) -> PlannedSolve {
        let (x, residual) = direct_as::<S>(gpu, job, plan);
        PlannedSolve {
            x: wrap(x),
            residual,
            corrections_run: 0,
        }
    }
    fn refine<F: MdReal, H: MdReal>(
        gpu: &Gpu,
        job: &Job,
        plan: &ExecPlan,
        extra_passes: usize,
        wrap: fn(Vec<H>) -> Solution,
    ) -> PlannedSolve {
        let (x, residual, corrections_run) = refine_as::<F, H>(gpu, job, plan, extra_passes);
        PlannedSolve {
            x: wrap(x),
            residual,
            corrections_run,
        }
    }
    let e = extra_passes;
    match (plan.factor_precision(), plan.solution_precision()) {
        (D1, D1) => direct::<f64>(gpu, job, plan, Solution::D1),
        (D2, D2) => direct::<Dd>(gpu, job, plan, Solution::D2),
        (D4, D4) => direct::<Qd>(gpu, job, plan, Solution::D4),
        (D8, D8) => direct::<Od>(gpu, job, plan, Solution::D8),
        (D1, D2) => refine::<f64, Dd>(gpu, job, plan, e, Solution::D2),
        (D1, D4) => refine::<f64, Qd>(gpu, job, plan, e, Solution::D4),
        (D1, D8) => refine::<f64, Od>(gpu, job, plan, e, Solution::D8),
        (D2, D4) => refine::<Dd, Qd>(gpu, job, plan, e, Solution::D4),
        (D2, D8) => refine::<Dd, Od>(gpu, job, plan, e, Solution::D8),
        (D4, D8) => refine::<Qd, Od>(gpu, job, plan, e, Solution::D8),
        (f, s) => unreachable!("invalid plan rungs: factor {f:?} above solution {s:?}"),
    }
}

/// Interpret one job's staged plan on a device model — the
/// solution-and-residual view of [`solve_planned_traced`].
pub fn solve_planned(gpu: &Gpu, job: &Job, plan: &ExecPlan) -> (Solution, f64) {
    let s = solve_planned_traced(gpu, job, plan);
    (s.x, s.residual)
}

/// Interpret one plan over a fused group of same-shaped jobs: one
/// micro-batched factor phase, per-member solves and (adaptive)
/// refinement loops. Returns one [`PlannedSolve`] per member, in
/// order. Every member's result is bit-identical to
/// [`solve_planned_traced`] of that job alone — fusing packs launches,
/// it never changes arithmetic.
pub fn solve_planned_fused(gpu: &Gpu, jobs: &[&Job], plan: &ExecPlan) -> Vec<PlannedSolve> {
    solve_planned_fused_with(gpu, jobs, plan, 0)
}

/// [`solve_planned_fused`] with pass extension (see
/// [`solve_planned_traced_with`]): members extend independently, each
/// driven by its own measured residual.
pub fn solve_planned_fused_with(
    gpu: &Gpu,
    jobs: &[&Job],
    plan: &ExecPlan,
    extra_passes: usize,
) -> Vec<PlannedSolve> {
    use Precision::{D1, D2, D4, D8};
    fn direct<S: MdReal>(
        gpu: &Gpu,
        jobs: &[&Job],
        plan: &ExecPlan,
        wrap: fn(Vec<S>) -> Solution,
    ) -> Vec<PlannedSolve> {
        direct_fused_as::<S>(gpu, jobs, plan)
            .into_iter()
            .map(|(x, residual)| PlannedSolve {
                x: wrap(x),
                residual,
                corrections_run: 0,
            })
            .collect()
    }
    fn refine<F: MdReal, H: MdReal>(
        gpu: &Gpu,
        jobs: &[&Job],
        plan: &ExecPlan,
        extra_passes: usize,
        wrap: fn(Vec<H>) -> Solution,
    ) -> Vec<PlannedSolve> {
        refine_fused_as::<F, H>(gpu, jobs, plan, extra_passes)
            .into_iter()
            .map(|(x, residual, corrections_run)| PlannedSolve {
                x: wrap(x),
                residual,
                corrections_run,
            })
            .collect()
    }
    let e = extra_passes;
    match (plan.factor_precision(), plan.solution_precision()) {
        (D1, D1) => direct::<f64>(gpu, jobs, plan, Solution::D1),
        (D2, D2) => direct::<Dd>(gpu, jobs, plan, Solution::D2),
        (D4, D4) => direct::<Qd>(gpu, jobs, plan, Solution::D4),
        (D8, D8) => direct::<Od>(gpu, jobs, plan, Solution::D8),
        (D1, D2) => refine::<f64, Dd>(gpu, jobs, plan, e, Solution::D2),
        (D1, D4) => refine::<f64, Qd>(gpu, jobs, plan, e, Solution::D4),
        (D1, D8) => refine::<f64, Od>(gpu, jobs, plan, e, Solution::D8),
        (D2, D4) => refine::<Dd, Qd>(gpu, jobs, plan, e, Solution::D4),
        (D2, D8) => refine::<Dd, Od>(gpu, jobs, plan, e, Solution::D8),
        (D4, D8) => refine::<Qd, Od>(gpu, jobs, plan, e, Solution::D8),
        (f, s) => unreachable!("invalid plan rungs: factor {f:?} above solution {s:?}"),
    }
}

/// Solve a batch of jobs over the pool under the default
/// [`DispatchPolicy::LeastLoaded`], using up to
/// `available_parallelism` host worker threads for the functional
/// execution.
///
/// Device micro-batching is **on by default**: jobs sharing a shape
/// key fuse into batched launch sequences at the occupancy sweet spot
/// (bit-identical to solving each job alone — fusing packs launches,
/// never changes arithmetic). Pass [`MicrobatchConfig::off`] through
/// [`solve_batch_fused`] to reproduce the legacy per-job launch
/// timing.
pub fn solve_batch(pool: &mut DevicePool, jobs: &[Job]) -> BatchReport {
    solve_batch_policy(pool, jobs, DispatchPolicy::LeastLoaded)
}

/// [`solve_batch`] with an explicit dispatch policy
/// (`DispatchPolicy::ShortestExpectedCompletion` pays off on
/// heterogeneous pools; solutions are bit-identical either way).
/// Micro-batching is on by default, like [`solve_batch`].
pub fn solve_batch_policy(
    pool: &mut DevicePool,
    jobs: &[Job],
    policy: DispatchPolicy,
) -> BatchReport {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    solve_batch_with(pool, jobs, workers, policy)
}

/// [`solve_batch`] with an explicit host worker-thread count
/// (`host_threads = 1` executes jobs on the calling thread) and
/// dispatch policy. The spawned worker count is clamped to
/// `min(host_threads, jobs.len())` — a tiny batch never pays for a
/// full `available_parallelism` thread set. Micro-batching is on by
/// default, like [`solve_batch`].
pub fn solve_batch_with(
    pool: &mut DevicePool,
    jobs: &[Job],
    host_threads: usize,
    policy: DispatchPolicy,
) -> BatchReport {
    solve_batch_engine(
        pool,
        jobs,
        host_threads,
        policy,
        Some(&MicrobatchConfig::default()),
    )
}

/// [`solve_batch`] with device-level micro-batching: jobs sharing a
/// shape key fuse into batched launch sequences sized at the occupancy
/// sweet spot, and the scheduler books one fused profile per group
/// instead of `k` singletons (see [`crate::microbatch`]). Every job
/// still gets its own [`JobOutcome`], bit-identical to the unfused
/// path; fused siblings share their group's simulated interval.
pub fn solve_batch_fused(
    pool: &mut DevicePool,
    jobs: &[Job],
    policy: DispatchPolicy,
    cfg: &MicrobatchConfig,
) -> BatchReport {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    solve_batch_fused_with(pool, jobs, workers, policy, cfg)
}

/// [`solve_batch_fused`] with an explicit host worker-thread count.
pub fn solve_batch_fused_with(
    pool: &mut DevicePool,
    jobs: &[Job],
    host_threads: usize,
    policy: DispatchPolicy,
    cfg: &MicrobatchConfig,
) -> BatchReport {
    solve_batch_engine(pool, jobs, host_threads, policy, Some(cfg))
}

/// The shared batch engine: schedule (fused groups or singletons),
/// execute groups on host worker threads, reconcile adaptive refunds,
/// aggregate. The unfused path flows through the same group machinery
/// as singleton groups priced straight off their plans, so the two
/// paths differ only in grouping and booking — never in per-job
/// arithmetic.
fn solve_batch_engine(
    pool: &mut DevicePool,
    jobs: &[Job],
    host_threads: usize,
    policy: DispatchPolicy,
    micro: Option<&MicrobatchConfig>,
) -> BatchReport {
    let mut planner = Planner::new();
    if let Some(obs) = pool.observer() {
        planner.attach_observer(obs.clone());
    }
    let shapes: Vec<JobShape> = jobs.iter().map(JobShape::from).collect();
    let groups: Vec<GroupDispatch> = match micro {
        Some(cfg) if !cfg.is_off() => schedule_groups(pool, &planner, &shapes, policy, cfg),
        // fusion off: the exact legacy singleton schedule, in
        // submission order — the timing baseline of the fusion A/Bs
        _ => schedule(pool, &planner, &shapes, policy)
            .into_iter()
            .map(GroupDispatch::singleton)
            .collect(),
    };

    let mut outcomes: Vec<Option<JobOutcome>> = Vec::new();
    outcomes.resize_with(jobs.len(), || None);
    let outcomes_mx = std::sync::Mutex::new(outcomes);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let run_group = |gi: usize| {
        let g: &GroupDispatch = &groups[gi];
        let gpu = pool.gpu(g.device);
        let members: Vec<&Job> = g.jobs.iter().map(|&j| &jobs[j]).collect();
        let solved: Vec<PlannedSolve> = if members.len() == 1 {
            vec![solve_planned_traced(gpu, members[0], &g.plan)]
        } else {
            solve_planned_fused(gpu, &members, &g.plan)
        };
        let assembled = JobOutcome::assemble_group(&members, g, solved);
        let mut out = outcomes_mx.lock().unwrap();
        for (&j, o) in g.jobs.iter().zip(assembled) {
            out[j] = Some(o);
        }
    };

    let workers = host_threads.max(1).min(groups.len().max(1));
    if workers <= 1 {
        for gi in 0..groups.len() {
            run_group(gi);
        }
    } else {
        let total = groups.len();
        let run_group = &run_group;
        let next = &next;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let gi = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if gi >= total {
                        break;
                    }
                    run_group(gi);
                });
            }
        });
    }

    let outcomes: Vec<JobOutcome> = outcomes_mx
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|o| o.expect("every job executed"))
        .collect();
    // adaptive refinement may have finished under its booked pass
    // count: hand the unused booked time back so utilization reports
    // what actually ran
    for o in &outcomes {
        if o.refunded_ms > 0.0 {
            pool.reconcile(o.device, o.refunded_ms);
        }
    }
    emit_settled(pool, &outcomes);
    // batch-relative aggregates: the completion time of *this* batch's
    // last job, not the pool's cumulative clock
    let makespan_ms = groups.iter().map(|g| g.end_ms).fold(0.0, f64::max);
    let solves_per_sec = if makespan_ms > 0.0 {
        outcomes.len() as f64 / (makespan_ms * 1.0e-3)
    } else {
        0.0
    };
    BatchReport {
        makespan_ms,
        solves_per_sec,
        device_stats: pool.stats(),
        distinct_plans: planner.cached_plans(),
        plan_cache: planner.cache_stats(),
        fused_groups: groups.iter().filter(|g| g.jobs.len() > 1).count(),
        latency: latency_summary(&outcomes),
        outcomes,
    }
}

/// Emit one [`Event::JobSettled`] per outcome, in submission order —
/// shared by every batch engine so the settled stream is deterministic
/// regardless of host-thread interleaving during execution.
pub(crate) fn emit_settled(pool: &DevicePool, outcomes: &[JobOutcome]) {
    for o in outcomes {
        pool.emit(|| Event::JobSettled {
            job: o.job_id,
            device: o.device,
            tenant: o.tenant.0,
            priority: o.priority,
            start_ms: o.start_ms,
            end_ms: o.end_ms,
            release_ms: o.release_ms,
            deadline_ms: o.deadline_ms.unwrap_or(0.0),
            has_deadline: o.deadline_ms.is_some(),
            fused: o.fused_group,
            corrections: o.corrections_run,
            refunded_ms: o.refunded_ms,
            extended_ms: o.extended_ms,
            achieved_digits: o.achieved_digits,
        });
    }
}

/// Settle a staged dispatch against what execution actually ran:
/// refund the booked tail when the group stopped early (freeing the
/// timeline spans under [`StageSchedConfig::rebook`], so later
/// dispatches use the freed time — and, under
/// [`StageSchedConfig::compact`], sliding queued dispatches left into
/// the hole), or book the extra passes an expected-pass booking
/// under-estimated / a stalled job extended into. Slide-left
/// compaction may have *moved* this dispatch since it was booked, so
/// settlement first refreshes the placement from the pool's
/// live-booking registry; every settle path marks the booking settled,
/// pinning it against any later compaction. Updates the group's
/// `start_ms`/`end_ms` to the settled placement and returns the
/// per-job `(refunded, extended)` shares, ms.
pub(crate) fn settle_staged_dispatch(
    pool: &mut DevicePool,
    g: &mut GroupDispatch,
    shape: &JobShape,
    passes_run: usize,
    sched: &StageSchedConfig,
) -> (f64, f64) {
    let booked = g.booked_passes();
    let k = g.jobs.len().max(1) as f64;
    if let Some(current) = g.booking.as_ref().and_then(|b| pool.live_booking(b.id)) {
        g.start_ms = current.start_ms();
        g.end_ms = current.end_ms();
        g.booking = Some(current);
    }
    let booking = g
        .booking
        .clone()
        .expect("staged dispatches carry a booking");
    // calibration records for the stages that actually ran: the
    // planner's singleton per-stage prediction against this group's
    // realized per-job share of the fused booking
    let executed = ExecPlan::booked_stages(passes_run.min(booked)).min(booking.stages.len());
    for (ps, iv) in g.plan.stages.iter().zip(&booking.stages).take(executed) {
        pool.emit(|| Event::StageTime {
            device: g.device,
            rows: shape.rows,
            cols: shape.cols,
            kind: ps.stage.kind(),
            rung: ps.stage.rung().tag(),
            predicted_ms: ps.wall_ms(),
            settled_ms: iv.wall_ms() / k,
        });
    }
    if passes_run < booked {
        let from = ExecPlan::booked_stages(passes_run);
        let executed_end = booking.stages[from - 1].end_ms();
        if sched.rebook {
            let mode = if sched.compact {
                RebookMode::Compact
            } else {
                RebookMode::TailOnly
            };
            let refund = pool.rebook(&booking, from, mode);
            g.end_ms = executed_end;
            (refund.refunded_ms / k, 0.0)
        } else {
            // write the skipped tail off the busy books only — the
            // schedule keeps the booked intervals (legacy refunds)
            let tail: f64 = booking.stages[from..].iter().map(|s| s.wall_ms()).sum();
            pool.reconcile(g.device, tail);
            pool.mark_settled(booking.id);
            (tail / k, 0.0)
        }
    } else if passes_run > booked {
        // grow the booking pass by pass: each extra pass replays the
        // plan's steady-state residual/correct pair at the earliest
        // fit no sooner than the executed end of the booking so far
        pool.mark_settled(booking.id);
        let pair = g.fused.extension_reqs();
        let mut extended = 0.0;
        let mut end = g.end_ms;
        for pass in booked..passes_run {
            let ext = pool.commit_stages(g.device, &pair, 0.0, 0.0, 0, sched.overlap, end);
            pool.mark_settled(ext.id);
            pool.emit(|| Event::PassExtended {
                device: g.device,
                job: g.jobs[0] as u64,
                pass: pass + 1,
                end_ms: ext.end_ms(),
            });
            extended += pair.iter().map(|r| r.wall_ms()).sum::<f64>();
            end = end.max(ext.end_ms());
        }
        g.end_ms = end;
        (0.0, extended / k)
    } else {
        pool.mark_settled(booking.id);
        (0.0, 0.0)
    }
}

/// The **stage-level online batch engine**: book every fused group on
/// the interval timelines up front, execute per-device queues
/// concurrently, then settle in booking order.
///
/// 1. **Book** (main thread, in the shared — for SECT: longest-first —
///    placement order): every group's stages land as lane-split
///    intervals on the device the policy picks *from the stage
///    timeline* ([`dispatch_group_staged`]) — under
///    [`StageSchedConfig::overlap`] a group's factorization prep hides
///    under whatever the device is still computing (and books a host
///    staging worker); under [`StageSchedConfig::book_expected`] only
///    the planner's expected pass count is booked.
/// 2. **Execute** with per-device queues: one scoped host thread per
///    device with work, each running its queue in booking order.
///    Execution is purely functional (the same interpreter as every
///    other path, against an immutable device model), so host
///    parallelism cannot perturb placements, events or bits — it only
///    shortens *our* wall clock. Up to
///    [`StageSchedConfig::max_extra_passes`] extension passes run for
///    jobs whose residual stalls above target.
/// 3. **Settle** (main thread, global booking order — refund causality
///    and the event stream stay deterministic): refund each group's
///    unexecuted tail online ([`DevicePool::rebook`]; under
///    [`StageSchedConfig::compact`] queued dispatches slide left into
///    the hole and settlement reads their refreshed placements) or
///    book the extra passes execution actually ran.
///
/// Outcomes are bit-identical to [`solve_batch`] whenever
/// `max_extra_passes` matches (extension is the one knob that adds
/// arithmetic, and it only fires on jobs the legacy path would have
/// returned *under target*).
pub fn solve_batch_staged(
    pool: &mut DevicePool,
    jobs: &[Job],
    policy: DispatchPolicy,
    micro: &MicrobatchConfig,
    sched: &StageSchedConfig,
) -> BatchReport {
    solve_batch_staged_with(pool, jobs, policy, micro, sched, true)
}

/// [`solve_batch_staged`] with an explicit host-parallelism switch:
/// `host_parallel = false` executes every device queue on the calling
/// thread, in the same booking order — the serial reference the
/// per-device-queue executor is asserted bit-identical (and
/// timing-identical) against.
pub fn solve_batch_staged_with(
    pool: &mut DevicePool,
    jobs: &[Job],
    policy: DispatchPolicy,
    micro: &MicrobatchConfig,
    sched: &StageSchedConfig,
    host_parallel: bool,
) -> BatchReport {
    let mut planner = Planner::new();
    if let Some(obs) = pool.observer() {
        planner.attach_observer(obs.clone());
    }
    let shapes: Vec<JobShape> = jobs.iter().map(JobShape::from).collect();
    let groups_idx: Vec<Vec<usize>> = if micro.is_off() {
        (0..jobs.len()).map(|i| vec![i]).collect()
    } else {
        plan_groups(&planner, &shapes, micro)
    };
    let order = crate::microbatch::placement_order(pool, &planner, &shapes, &groups_idx, policy);

    // phase 1: book everything, in placement order, on the main thread
    struct Slot {
        gi: usize,
        shape: JobShape,
        g: GroupDispatch,
    }
    let mut slots: Vec<Slot> = Vec::with_capacity(order.len());
    for &gi in &order {
        let idxs = &groups_idx[gi];
        let shape = shapes[idxs[0]];
        let release = idxs
            .iter()
            .map(|&j| jobs[j].release())
            .fold(0.0f64, f64::max);
        let g = dispatch_group_staged(pool, &planner, idxs.clone(), &shape, policy, sched, release);
        slots.push(Slot { gi, shape, g });
    }

    // phase 2: execute — per-device queues, one scoped thread each
    let mut solved: Vec<Option<Vec<PlannedSolve>>> = Vec::new();
    solved.resize_with(slots.len(), || None);
    {
        let pool_ref: &DevicePool = pool;
        let exec = |slot: &Slot| -> Vec<PlannedSolve> {
            let members: Vec<&Job> = groups_idx[slot.gi].iter().map(|&j| &jobs[j]).collect();
            if members.len() == 1 {
                vec![solve_planned_traced_with(
                    pool_ref.gpu(slot.g.device),
                    members[0],
                    &slot.g.plan,
                    sched.max_extra_passes,
                )]
            } else {
                solve_planned_fused_with(
                    pool_ref.gpu(slot.g.device),
                    &members,
                    &slot.g.plan,
                    sched.max_extra_passes,
                )
            }
        };
        if host_parallel && pool_ref.len() > 1 && slots.len() > 1 {
            let mut queues: Vec<Vec<usize>> = vec![Vec::new(); pool_ref.len()];
            for (i, slot) in slots.iter().enumerate() {
                queues[slot.g.device].push(i);
            }
            let results: Mutex<Vec<(usize, Vec<PlannedSolve>)>> =
                Mutex::new(Vec::with_capacity(slots.len()));
            let slots_ref = &slots;
            let exec_ref = &exec;
            let results_ref = &results;
            std::thread::scope(|scope| {
                for queue in queues.into_iter().filter(|q| !q.is_empty()) {
                    scope.spawn(move || {
                        for i in queue {
                            let r = exec_ref(&slots_ref[i]);
                            results_ref.lock().unwrap().push((i, r));
                        }
                    });
                }
            });
            for (i, r) in results.into_inner().unwrap() {
                solved[i] = Some(r);
            }
        } else {
            for (i, slot) in slots.iter().enumerate() {
                solved[i] = Some(exec(slot));
            }
        }
    }

    // phase 3: settle in global booking order, on the main thread
    let mut outcomes: Vec<Option<JobOutcome>> = Vec::new();
    outcomes.resize_with(jobs.len(), || None);
    let mut makespan_ms = 0.0f64;
    let mut fused_groups = 0;
    for (slot, solved) in slots.iter_mut().zip(solved) {
        let solved = solved.expect("every group executed");
        let idxs = &groups_idx[slot.gi];
        let members: Vec<&Job> = idxs.iter().map(|&j| &jobs[j]).collect();
        if members.len() > 1 {
            fused_groups += 1;
        }
        let passes_run = solved.iter().map(|s| s.corrections_run).max().unwrap_or(0);
        let (refunded, extended) =
            settle_staged_dispatch(pool, &mut slot.g, &slot.shape, passes_run, sched);
        makespan_ms = makespan_ms.max(slot.g.end_ms);
        let mut assembled = JobOutcome::assemble_group(&members, &slot.g, solved);
        for o in &mut assembled {
            o.refunded_ms = refunded;
            o.extended_ms = extended;
        }
        for (&j, o) in idxs.iter().zip(assembled) {
            outcomes[j] = Some(o);
        }
    }

    let outcomes: Vec<JobOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every job executed"))
        .collect();
    emit_settled(pool, &outcomes);
    let solves_per_sec = if makespan_ms > 0.0 {
        outcomes.len() as f64 / (makespan_ms * 1.0e-3)
    } else {
        0.0
    };
    BatchReport {
        makespan_ms,
        solves_per_sec,
        device_stats: pool.stats(),
        distinct_plans: planner.cached_plans(),
        plan_cache: planner.cache_stats(),
        fused_groups,
        latency: latency_summary(&outcomes),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn little_jobs(count: usize, seed: u64) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count as u64)
            .map(|id| {
                let n = [4, 6, 8][id as usize % 3];
                let a = HostMat::<f64>::from_fn(n, n, |r, c| {
                    let u: f64 = multidouble::random::rand_real(&mut rng);
                    u + if r == c { 4.0 } else { 0.0 }
                });
                let b: Vec<f64> = (0..n)
                    .map(|_| multidouble::random::rand_real(&mut rng))
                    .collect();
                Job::new(id, a, b, [12, 25, 50][id as usize % 3])
            })
            .collect()
    }

    #[test]
    fn residuals_meet_the_target_digits() {
        let jobs = little_jobs(9, 77);
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        let report = solve_batch(&mut pool, &jobs);
        assert_eq!(report.outcomes.len(), 9);
        for (job, out) in jobs.iter().zip(&report.outcomes) {
            assert_eq!(job.id, out.job_id);
            let bound = 10f64.powi(-(job.target_digits as i32));
            assert!(
                out.residual < bound,
                "job {} ({}) residual {:e} above 1e-{}",
                job.id,
                out.plan.summary(),
                out.residual,
                job.target_digits
            );
            assert!(out.achieved_digits >= job.target_digits as f64);
            assert_eq!(out.x.len(), job.cols());
        }
    }

    #[test]
    fn parallel_and_serial_execution_agree() {
        let jobs = little_jobs(12, 78);
        let mut pool_a = DevicePool::homogeneous(&Gpu::v100(), 3);
        let mut pool_b = DevicePool::homogeneous(&Gpu::v100(), 3);
        let serial = solve_batch_with(&mut pool_a, &jobs, 1, DispatchPolicy::LeastLoaded);
        let parallel = solve_batch_with(&mut pool_b, &jobs, 4, DispatchPolicy::LeastLoaded);
        assert_eq!(serial.makespan_ms, parallel.makespan_ms);
        for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
            assert_eq!(s.x, p.x, "job {} diverged across host threads", s.job_id);
            assert_eq!(s.device, p.device);
        }
    }

    #[test]
    fn worker_spawn_is_clamped_to_the_batch() {
        // regression guard: an absurd host_threads request on a tiny
        // batch must clamp to the job count instead of trying to spawn
        // that many threads (which would abort the process)
        let jobs = little_jobs(1, 82);
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        let report = solve_batch_with(&mut pool, &jobs, 1_000_000, DispatchPolicy::LeastLoaded);
        assert_eq!(report.outcomes.len(), 1);
    }

    #[test]
    fn ladder_assigns_increasing_precision() {
        let jobs = little_jobs(3, 79); // digits 12, 25, 50
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let report = solve_batch(&mut pool, &jobs);
        let rungs: Vec<Precision> = report.outcomes.iter().map(|o| o.x.precision()).collect();
        assert_eq!(rungs, [Precision::D1, Precision::D2, Precision::D4]);
    }

    #[test]
    fn promoted_matrix_cache_hits_on_repeated_systems() {
        // the same matrix solved repeatedly (a power-series step mix)
        // must promote once per rung, not once per job
        let mut rng = StdRng::seed_from_u64(83);
        let n = 10;
        let a = HostMat::<f64>::from_fn(n, n, |r, c| {
            let u: f64 = multidouble::random::rand_real(&mut rng);
            u + if r == c { 4.0 } else { 0.0 }
        });
        let b: Vec<f64> = (0..n)
            .map(|_| multidouble::random::rand_real(&mut rng))
            .collect();
        let jobs: Vec<Job> = (0..8)
            .map(|id| Job::new(id, a.clone(), b.clone(), 25))
            .collect();
        let (hits_before, _) = promoted_cache_stats();
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let report = solve_batch_with(&mut pool, &jobs, 1, DispatchPolicy::LeastLoaded);
        let (hits_after, _) = promoted_cache_stats();
        // the 25-digit plan refines a d1 factorization at the dd rung;
        // only the dd promotion goes through the cache (f64 bypasses
        // it), and entries land on the second sighting — so 8 serial
        // jobs give 2 misses then 6 hits
        assert!(
            hits_after >= hits_before + 6,
            "only {} cache hits over 8 identical systems",
            hits_after - hits_before
        );
        // and the cache never changes results: all outcomes identical
        for o in &report.outcomes[1..] {
            assert_eq!(o.x, report.outcomes[0].x);
        }
    }

    #[test]
    fn reused_pool_reports_per_batch_aggregates() {
        let jobs = little_jobs(4, 80);
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        let first = solve_batch_with(&mut pool, &jobs, 1, DispatchPolicy::LeastLoaded);
        let second = solve_batch_with(&mut pool, &jobs, 1, DispatchPolicy::LeastLoaded);
        // clocks carry across batches: the second batch finishes later...
        assert!(second.makespan_ms > first.makespan_ms);
        // ...but its rate counts only its own four jobs over that time
        let expect = 4.0 / (second.makespan_ms * 1.0e-3);
        assert!((second.solves_per_sec - expect).abs() < 1e-9);
        // the pool's cumulative view keeps both batches
        assert_eq!(pool.total_solves(), 8);
    }

    #[test]
    fn policies_only_move_jobs_never_bits() {
        let jobs = little_jobs(10, 81);
        let gpus = || vec![Gpu::v100(), Gpu::p100()];
        let mut pool_g = DevicePool::new(gpus());
        let greedy = solve_batch_with(&mut pool_g, &jobs, 1, DispatchPolicy::LeastLoaded);
        let mut pool_s = DevicePool::new(gpus());
        let sect = solve_batch_with(
            &mut pool_s,
            &jobs,
            1,
            DispatchPolicy::ShortestExpectedCompletion,
        );
        for (g, s) in greedy.outcomes.iter().zip(&sect.outcomes) {
            assert_eq!(g.job_id, s.job_id);
            assert_eq!(g.x, s.x, "job {}: policy changed the bits", g.job_id);
            assert_eq!(g.residual, s.residual);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        let report = solve_batch(&mut pool, &[]);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.makespan_ms, 0.0);
        let fused = solve_batch_fused(
            &mut pool,
            &[],
            DispatchPolicy::LeastLoaded,
            &MicrobatchConfig::default(),
        );
        assert!(fused.outcomes.is_empty());
    }

    /// Jobs with repeated shapes so the micro-batcher has something to
    /// fuse: `dups` copies of each of three shape keys, distinct data.
    fn fusible_jobs(dups: usize, seed: u64) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..(3 * dups) as u64)
            .map(|id| {
                let n = [8, 12, 16][id as usize % 3];
                let digits = [12, 25, 50][id as usize % 3];
                let a = HostMat::<f64>::from_fn(n, n, |r, c| {
                    let u: f64 = multidouble::random::rand_real(&mut rng);
                    u + if r == c { 4.0 } else { 0.0 }
                });
                let b: Vec<f64> = (0..n)
                    .map(|_| multidouble::random::rand_real(&mut rng))
                    .collect();
                Job::new(id, a, b, digits)
            })
            .collect()
    }

    #[test]
    fn fused_batch_is_bit_identical_to_unfused() {
        let jobs = fusible_jobs(8, 90);
        let mut pool_u = DevicePool::homogeneous(&Gpu::v100(), 2);
        let unfused = solve_batch_fused_with(
            &mut pool_u,
            &jobs,
            1,
            DispatchPolicy::LeastLoaded,
            &MicrobatchConfig::off(),
        );
        let mut pool_f = DevicePool::homogeneous(&Gpu::v100(), 2);
        let fused = solve_batch_fused_with(
            &mut pool_f,
            &jobs,
            1,
            DispatchPolicy::LeastLoaded,
            &MicrobatchConfig::default(),
        );
        assert!(fused.fused_groups > 0, "nothing fused");
        for (u, f) in unfused.outcomes.iter().zip(&fused.outcomes) {
            assert_eq!(u.job_id, f.job_id);
            assert_eq!(u.x, f.x, "job {}: fusing changed the bits", u.job_id);
            assert_eq!(u.residual, f.residual);
            assert_eq!(u.corrections_run, f.corrections_run);
        }
        // fusing lifted throughput on these tiny systems
        assert!(
            fused.makespan_ms < unfused.makespan_ms,
            "fused {} ms vs unfused {} ms",
            fused.makespan_ms,
            unfused.makespan_ms
        );
        // members of one group share its interval and report its size
        let in_groups: Vec<&JobOutcome> = fused
            .outcomes
            .iter()
            .filter(|o| o.fused_group > 1)
            .collect();
        assert!(!in_groups.is_empty());
        for o in &in_groups {
            let twin = fused
                .outcomes
                .iter()
                .find(|t| t.job_id != o.job_id && t.fused_group > 1 && t.end_ms == o.end_ms);
            assert!(twin.is_some(), "job {} has no fused sibling", o.job_id);
        }
        // adaptive refunds are group-granular: a fused stage runs as
        // long as any sibling still iterates, so siblings share one
        // equal refund share — never per-member shares of passes a
        // sibling still executed
        for o in &in_groups {
            for t in fused
                .outcomes
                .iter()
                .filter(|t| t.fused_group > 1 && t.end_ms == o.end_ms)
            {
                assert_eq!(
                    o.refunded_ms, t.refunded_ms,
                    "jobs {} and {} share a group but not its refund",
                    o.job_id, t.job_id
                );
            }
        }
    }

    #[test]
    fn fused_batch_parallel_workers_agree_with_serial() {
        let jobs = fusible_jobs(6, 91);
        let cfg = MicrobatchConfig::default();
        let mut pool_s = DevicePool::homogeneous(&Gpu::v100(), 2);
        let serial =
            solve_batch_fused_with(&mut pool_s, &jobs, 1, DispatchPolicy::LeastLoaded, &cfg);
        let mut pool_p = DevicePool::homogeneous(&Gpu::v100(), 2);
        let parallel =
            solve_batch_fused_with(&mut pool_p, &jobs, 4, DispatchPolicy::LeastLoaded, &cfg);
        assert_eq!(serial.makespan_ms, parallel.makespan_ms);
        for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
            assert_eq!(s.x, p.x, "job {} diverged across host threads", s.job_id);
        }
    }

    #[test]
    fn adaptive_refinement_reports_and_refunds_skipped_passes() {
        // 30-digit targets book 2 qd passes off a d1 factorization
        // ((k+1)·14 ≥ 30 needs k = 2), but each real pass on these
        // well-conditioned systems gains ~15 digits, so pass 1 already
        // lands near 1e-31 and the adaptive stop skips pass 2; the
        // outcome must report the true pass count and refund the booked
        // tail
        let mut jobs = little_jobs(9, 84);
        for j in &mut jobs {
            j.target_digits = 30;
        }
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        // fusion off: the per-job refund arithmetic below checks the
        // singleton plan's stage walls, not a fused group's shares
        let report = solve_batch_fused_with(
            &mut pool,
            &jobs,
            1,
            DispatchPolicy::LeastLoaded,
            &MicrobatchConfig::off(),
        );
        for out in &report.outcomes {
            assert!(out.corrections_run <= out.plan.corrections());
            let skipped = out.plan.corrections() - out.corrections_run;
            if skipped > 0 {
                assert!(
                    out.refunded_ms > 0.0,
                    "job {} skipped {skipped} passes but refunded nothing",
                    out.job_id
                );
            } else {
                assert_eq!(out.refunded_ms, 0.0);
            }
            // the refund is exactly the booked share of the skipped tail
            let tail: f64 = out.plan.stages[2 + 2 * out.corrections_run..]
                .iter()
                .map(|s| s.wall_ms())
                .sum();
            assert!((out.refunded_ms - tail).abs() < 1e-9);
        }
        // at least one refinement plan stopped early on this mix, or
        // the assertions above are vacuous
        assert!(
            report
                .outcomes
                .iter()
                .any(|o| o.corrections_run < o.plan.corrections()),
            "no adaptive stop ever fired"
        );
        // and the pool's busy time reflects the refunds
        let refunded: f64 = report.outcomes.iter().map(|o| o.refunded_ms).sum();
        let stats_refund: f64 = report.device_stats.iter().map(|s| s.refunded_ms).sum();
        assert!((refunded - stats_refund).abs() < 1e-9);
    }

    #[test]
    fn warm_insert_caches_on_first_sighting() {
        // distinct matrix from every other test (seeded rng), solved
        // twice: probation mode hits only from the third sighting on,
        // warm mode already hits on the second
        let mut rng = StdRng::seed_from_u64(0xa11ce);
        let n = 14;
        let mk = |rng: &mut StdRng| {
            HostMat::<f64>::from_fn(n, n, |r, c| {
                let u: f64 = multidouble::random::rand_real(rng);
                u + if r == c { 5.0 } else { 0.0 }
            })
        };
        let a_cold = mk(&mut rng);
        let a_warm = mk(&mut rng);
        // a cache hit hands back the cached Arc itself, so pointer
        // identity distinguishes hit from miss without touching the
        // (concurrently shared) global counters

        // default (probation): the second sighting still promotes
        // afresh; only the third returns the entry the second inserted
        let s1 = promoted_matrix::<Dd>(&a_cold);
        let s2 = promoted_matrix::<Dd>(&a_cold);
        let s3 = promoted_matrix::<Dd>(&a_cold);
        assert!(
            !Arc::ptr_eq(&s1, &s2),
            "probation mode hit on the second sighting"
        );
        assert!(Arc::ptr_eq(&s2, &s3), "third sighting missed");

        // restore the process-wide flag even if an assertion unwinds —
        // a leaked warm mode would silently change every later test
        struct WarmGuard(bool);
        impl Drop for WarmGuard {
            fn drop(&mut self) {
                promoted_cache_warm_insert(self.0);
            }
        }
        let _guard = WarmGuard(promoted_cache_warm_insert(true));
        let first = promoted_matrix::<Dd>(&a_warm);
        let second = promoted_matrix::<Dd>(&a_warm);
        assert!(
            Arc::ptr_eq(&first, &second),
            "warm insert did not hit on the first reuse"
        );
        assert_eq!(first, second);
    }
}
