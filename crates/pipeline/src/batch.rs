//! The batched solve service: plan, schedule, execute, aggregate.
//!
//! [`solve_batch`] is the pipeline's public entry point: it takes a
//! device pool and a batch of [`Job`]s, schedules every job over the
//! pool (see [`crate::scheduler`]), runs each job's [`ExecPlan`]
//! through the **stage interpreter** [`solve_planned`], and returns
//! per-job outcomes plus pool-level throughput.
//!
//! The interpreter executes a plan's stages in order, *functionally*
//! (real multiple double arithmetic on the simulator):
//!
//! * a **direct** plan factors and solves at one rung — exactly a
//!   sequential [`mdls_core::lstsq`] call, bit for bit;
//! * a **refinement** plan factors once at the cheap rung, takes the
//!   initial solve, then alternates device-side residuals at the high
//!   rung ([`mdls_core::residual_kernel`]) with corrections through the
//!   *reused* QR factorization ([`mdls_core::LstsqFactorization`]),
//!   accumulating the iterate at the high rung.
//!
//! Plans only choose stages; stage execution is deterministic, so batch
//! results stay bit-identical to interpreting each job alone with the
//! same plan (asserted by the `tests/pipeline.rs` property test).
//! Host-side worker threads only shorten *our* wall clock; simulated
//! device time is unaffected.
//!
//! Promotion of a job's `f64` data to a working rung is memoized in a
//! process-wide cache keyed by (matrix fingerprint, rung): power-series
//! and tracker workloads re-solve against the same matrix many times,
//! and re-promoting per job was pure waste (the ROADMAP's "host-side
//! execution throughput" item). A fingerprint hit is verified against
//! the original matrix before reuse, so a collision can never swap one
//! system for another.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use gpusim::{ExecMode, Gpu, Sim};
use mdls_core::{lstsq_factor, residual_kernel};
use mdls_matrix::{vec_norm2, HostMat};
use multidouble::{convert_real, Dd, MdReal, Od, Qd};

use crate::job::{Job, Precision, Solution};
use crate::plan::ExecPlan;
use crate::planner::Planner;
use crate::pool::{DevicePool, DeviceStats};
use crate::scheduler::{schedule, Dispatch, DispatchPolicy, JobShape};

/// Outcome of one job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's caller-chosen id.
    pub job_id: u64,
    /// Pool id of the device that ran the solve.
    pub device: usize,
    /// The staged plan the solve ran under — `plan.stages` is the
    /// per-stage predicted breakdown.
    pub plan: ExecPlan,
    /// The minimizer, at the plan's solution precision.
    pub x: Solution,
    /// Relative residual `‖b − A x‖₂ / ‖b‖₂` (leading double),
    /// measured at the solution rung.
    pub residual: f64,
    /// Decimal digits the measured residual certifies
    /// (`−log₁₀ residual`; infinite for an exactly-zero residual).
    pub achieved_digits: f64,
    /// Simulated start time on the device, ms.
    pub start_ms: f64,
    /// Simulated completion time on the device, ms.
    pub end_ms: f64,
}

impl JobOutcome {
    /// Assemble an outcome from a dispatch and the interpreter's
    /// result (shared by the batch and stream paths).
    pub(crate) fn assemble(job_id: u64, d: Dispatch, x: Solution, residual: f64) -> JobOutcome {
        JobOutcome {
            job_id,
            device: d.device,
            plan: d.plan,
            x,
            residual,
            achieved_digits: digits_from_residual(residual),
            start_ms: d.start_ms,
            end_ms: d.end_ms,
        }
    }
}

/// Decimal digits certified by a relative residual.
pub fn digits_from_residual(residual: f64) -> f64 {
    if residual <= 0.0 {
        f64::INFINITY
    } else {
        -residual.log10()
    }
}

/// Outcomes plus aggregates for one batch.
///
/// `makespan_ms` and `solves_per_sec` describe *this batch*: the
/// simulated time at which its last job completes and this batch's
/// jobs over that time. `device_stats` snapshots the pool, which is
/// cumulative — reusing a pool across batches carries its clocks and
/// counters forward (call [`DevicePool::reset`] between independent
/// batches to start from idle).
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job outcomes, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Simulated completion time of this batch's last job, ms.
    pub makespan_ms: f64,
    /// This batch's jobs per simulated second of `makespan_ms`.
    pub solves_per_sec: f64,
    /// Per-device snapshots of the (cumulative) pool state.
    pub device_stats: Vec<DeviceStats>,
    /// Number of distinct plans the planner computed (cache pressure).
    pub distinct_plans: usize,
}

// ---------------------------------------------------------------------
// promoted-matrix cache
// ---------------------------------------------------------------------

/// Entry-count budget of the promotion cache.
const PROMO_MAX_ENTRIES: usize = 512;

/// Approximate byte budget of the promotion cache (originals plus
/// promotions). Entry counts alone are no bound at all — 512 octo
/// double 1024 × 1024 promotions would hold tens of gigabytes — so the
/// cache tracks bytes and, when either budget would be exceeded, is
/// dropped wholesale before the next insert. Crude, but it bounds
/// memory on adversarial streams while costing repeated-shape
/// workloads (the case the cache exists for) nothing.
const PROMO_MAX_BYTES: usize = 256 << 20;

struct PromoEntry {
    /// The exact `f64` matrix this entry was promoted from — checked on
    /// every hit so a fingerprint collision can never leak a different
    /// system's promotion.
    original: Arc<HostMat<f64>>,
    promoted: Arc<dyn Any + Send + Sync>,
    /// Approximate heap footprint of this entry (original + promotion).
    bytes: usize,
}

/// Bound on the first-sighting probation set (8-byte fingerprints, so
/// the set itself is negligible; it exists so the *entries* are not).
const PROMO_SEEN_CAP: usize = 4096;

#[derive(Default)]
struct PromoCache {
    map: HashMap<(u64, TypeId), PromoEntry>,
    bytes: usize,
    /// Keys seen exactly once. A matrix is cached only on its *second*
    /// sighting: one-shot batches (every matrix unique) then never pay
    /// the original's clone or the byte budget — only repeated-matrix
    /// workloads, the case the cache exists for, populate it.
    seen: std::collections::HashSet<(u64, TypeId)>,
}

static PROMO: OnceLock<Mutex<PromoCache>> = OnceLock::new();
static PROMO_HITS: AtomicU64 = AtomicU64::new(0);
static PROMO_MISSES: AtomicU64 = AtomicU64::new(0);

/// FNV-flavored fingerprint over the dimensions and every entry's bits.
fn fingerprint(a: &HostMat<f64>) -> u64 {
    let mut h = (a.rows as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(a.cols as u64);
    for r in 0..a.rows {
        for c in 0..a.cols {
            h = (h.rotate_left(7) ^ a.get(r, c).to_bits()).wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// The job's matrix promoted to rung `S`, served from the process-wide
/// cache when this exact matrix was promoted to `S` before.
///
/// All O(m·n) work — the fingerprint, the collision-verifying equality
/// compare, the promotion itself and the original's clone — happens
/// *outside* the cache mutex; the lock only guards map lookups and
/// inserts, so concurrent host workers never serialize on matrix-sized
/// work. Racing workers may promote the same matrix more than once
/// (each paying one extra miss); whichever insert lands last wins, and
/// every result is identical.
fn promoted_matrix<S: MdReal>(a: &HostMat<f64>) -> Arc<HostMat<S>> {
    if S::LIMBS == 1 {
        // f64 → f64 "promotion" is an identity copy that costs exactly
        // what the cache's fingerprint + verification compare would —
        // caching it saves nothing and would double-store the matrix
        return Arc::new(HostMat::<S>::from_fn(a.rows, a.cols, |r, c| {
            S::from_f64(a.get(r, c))
        }));
    }
    let fp = fingerprint(a);
    let key = (fp, TypeId::of::<S>());
    let cache = PROMO.get_or_init(|| Mutex::new(PromoCache::default()));
    let (found, second_sighting) = {
        let mut c = cache.lock().unwrap();
        let found = c
            .map
            .get(&key)
            .map(|e| (e.original.clone(), e.promoted.clone()));
        let second = found.is_none() && c.seen.contains(&key);
        if found.is_none() && !second {
            if c.seen.len() >= PROMO_SEEN_CAP {
                c.seen.clear();
            }
            c.seen.insert(key);
        }
        (found, second)
    };
    if let Some((original, promoted)) = found {
        if *original == *a {
            PROMO_HITS.fetch_add(1, Ordering::Relaxed);
            return promoted.downcast::<HostMat<S>>().unwrap();
        }
    }
    PROMO_MISSES.fetch_add(1, Ordering::Relaxed);
    let promoted = Arc::new(HostMat::<S>::from_fn(a.rows, a.cols, |r, c| {
        S::from_f64(a.get(r, c))
    }));
    if !second_sighting {
        return promoted; // first sighting: promote, don't cache
    }
    let entry = PromoEntry {
        original: Arc::new(a.clone()),
        promoted: promoted.clone(),
        bytes: a.rows * a.cols * (8 + S::LIMBS * 8),
    };
    let mut c = cache.lock().unwrap();
    if !c.map.contains_key(&key)
        && (c.map.len() >= PROMO_MAX_ENTRIES || c.bytes + entry.bytes > PROMO_MAX_BYTES)
    {
        c.map.clear();
        c.bytes = 0;
    }
    c.bytes += entry.bytes;
    if let Some(old) = c.map.insert(key, entry) {
        c.bytes -= old.bytes;
    }
    promoted
}

/// Lifetime (hits, misses) of the promoted-matrix cache — a
/// process-wide observability hook for the repeated-shape win.
pub fn promoted_cache_stats() -> (u64, u64) {
    (
        PROMO_HITS.load(Ordering::Relaxed),
        PROMO_MISSES.load(Ordering::Relaxed),
    )
}

/// Promote an `f64` vector into the working precision.
fn promote_vec<S: MdReal>(v: &[f64]) -> Vec<S> {
    v.iter().map(|&x| S::from_f64(x)).collect()
}

// ---------------------------------------------------------------------
// the stage interpreter
// ---------------------------------------------------------------------

/// Relative residual of `x` against the promoted system.
fn relative_residual<S: MdReal>(a: &HostMat<S>, x: &[S], b: &[S]) -> f64 {
    let r = a.residual(x, b).to_f64();
    let bn = vec_norm2(b).to_f64();
    if bn > 0.0 {
        r / bn
    } else {
        r
    }
}

/// Direct plan: factor + one solve at a single rung — exactly the
/// launch sequence (and bits) of a sequential [`mdls_core::lstsq`].
fn direct_as<S: MdReal>(gpu: &Gpu, job: &Job, plan: &ExecPlan) -> (Vec<S>, f64) {
    let a = promoted_matrix::<S>(&job.a);
    let b = promote_vec::<S>(&job.b);
    let fact = lstsq_factor(gpu, &a, &plan.options(ExecMode::Sequential));
    let (x, _) = fact.solve(&b);
    let residual = relative_residual(&a, &x, &b);
    (x, residual)
}

/// Refinement plan: factor once at rung `F`, then per pass compute the
/// residual at rung `H` on the device and correct through the reused
/// factorization, accumulating the iterate at `H`.
fn refine_as<F: MdReal, H: MdReal>(gpu: &Gpu, job: &Job, plan: &ExecPlan) -> (Vec<H>, f64) {
    let (m, n) = (job.rows(), job.cols());
    let opts = plan.options(ExecMode::Sequential);

    // Factor(F) + initial Correct(F)
    let a_f = promoted_matrix::<F>(&job.a);
    let b_f = promote_vec::<F>(&job.b);
    let fact = lstsq_factor(gpu, &a_f, &opts);
    let (x0, _) = fact.solve(&b_f);

    // high-rung system, device-resident across all residual stages —
    // the system uploads once, each pass moves only the iterate down
    // and the residual back, matching what `residual_model_profile`
    // prices. (This sim's own profile is never read: the reported
    // timing is the scheduler's booked plan prediction, which the
    // data-independent model makes exact, so no transfers are recorded
    // here.)
    let a_h = promoted_matrix::<H>(&job.a);
    let b_h = promote_vec::<H>(&job.b);
    let sim = Sim::new(gpu.clone(), ExecMode::Sequential);
    let da = sim.alloc_mat::<H>(m, n);
    let db = sim.alloc_vec::<H>(m);
    let dx = sim.alloc_vec::<H>(n);
    let dr = sim.alloc_vec::<H>(m);
    a_h.upload_to(&da);
    db.upload(&b_h);

    let mut x: Vec<H> = x0.iter().map(|&v| convert_real::<F, H>(v)).collect();
    for _ in 0..plan.corrections() {
        // Residual(H): r = b − A x at the high rung
        dx.upload(&x);
        residual_kernel(&sim, &da, &dx, &db, &dr, opts.tile_size);
        let r_h = dr.download();
        // Correct(F): demote the residual, re-solve through the cached
        // factorization, accumulate at the high rung
        let r_f: Vec<F> = r_h.iter().map(|&v| convert_real::<H, F>(v)).collect();
        let (d, _) = fact.solve(&r_f);
        for (xi, di) in x.iter_mut().zip(&d) {
            *xi += convert_real::<F, H>(*di);
        }
    }
    let residual = relative_residual(&a_h, &x, &b_h);
    (x, residual)
}

/// Interpret one job's staged plan on a device model. This is exactly
/// what the batch executor does per job — exposed so callers (and the
/// equivalence property test) can reproduce any batch result with a
/// single sequential interpretation.
pub fn solve_planned(gpu: &Gpu, job: &Job, plan: &ExecPlan) -> (Solution, f64) {
    use Precision::{D1, D2, D4, D8};
    match (plan.factor_precision(), plan.solution_precision()) {
        (D1, D1) => {
            let (x, r) = direct_as::<f64>(gpu, job, plan);
            (Solution::D1(x), r)
        }
        (D2, D2) => {
            let (x, r) = direct_as::<Dd>(gpu, job, plan);
            (Solution::D2(x), r)
        }
        (D4, D4) => {
            let (x, r) = direct_as::<Qd>(gpu, job, plan);
            (Solution::D4(x), r)
        }
        (D8, D8) => {
            let (x, r) = direct_as::<Od>(gpu, job, plan);
            (Solution::D8(x), r)
        }
        (D1, D2) => {
            let (x, r) = refine_as::<f64, Dd>(gpu, job, plan);
            (Solution::D2(x), r)
        }
        (D1, D4) => {
            let (x, r) = refine_as::<f64, Qd>(gpu, job, plan);
            (Solution::D4(x), r)
        }
        (D1, D8) => {
            let (x, r) = refine_as::<f64, Od>(gpu, job, plan);
            (Solution::D8(x), r)
        }
        (D2, D4) => {
            let (x, r) = refine_as::<Dd, Qd>(gpu, job, plan);
            (Solution::D4(x), r)
        }
        (D2, D8) => {
            let (x, r) = refine_as::<Dd, Od>(gpu, job, plan);
            (Solution::D8(x), r)
        }
        (D4, D8) => {
            let (x, r) = refine_as::<Qd, Od>(gpu, job, plan);
            (Solution::D8(x), r)
        }
        (f, s) => unreachable!("invalid plan rungs: factor {f:?} above solution {s:?}"),
    }
}

/// Solve a batch of jobs over the pool under the default
/// [`DispatchPolicy::LeastLoaded`], using up to
/// `available_parallelism` host worker threads for the functional
/// execution.
pub fn solve_batch(pool: &mut DevicePool, jobs: &[Job]) -> BatchReport {
    solve_batch_policy(pool, jobs, DispatchPolicy::LeastLoaded)
}

/// [`solve_batch`] with an explicit dispatch policy
/// (`DispatchPolicy::ShortestExpectedCompletion` pays off on
/// heterogeneous pools; solutions are bit-identical either way).
pub fn solve_batch_policy(
    pool: &mut DevicePool,
    jobs: &[Job],
    policy: DispatchPolicy,
) -> BatchReport {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    solve_batch_with(pool, jobs, workers, policy)
}

/// [`solve_batch`] with an explicit host worker-thread count
/// (`host_threads = 1` executes jobs on the calling thread) and
/// dispatch policy. The spawned worker count is clamped to
/// `min(host_threads, jobs.len())` — a tiny batch never pays for a
/// full `available_parallelism` thread set.
pub fn solve_batch_with(
    pool: &mut DevicePool,
    jobs: &[Job],
    host_threads: usize,
    policy: DispatchPolicy,
) -> BatchReport {
    let planner = Planner::new();
    let shapes: Vec<JobShape> = jobs.iter().map(JobShape::from).collect();
    let dispatches = schedule(pool, &planner, &shapes, policy);

    let mut outcomes: Vec<Option<JobOutcome>> = Vec::new();
    outcomes.resize_with(jobs.len(), || None);
    let outcomes_mx = std::sync::Mutex::new(outcomes);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let run_one = |i: usize| {
        let d: &Dispatch = &dispatches[i];
        let job = &jobs[i];
        let (x, residual) = solve_planned(pool.gpu(d.device), job, &d.plan);
        let outcome = JobOutcome::assemble(job.id, d.clone(), x, residual);
        outcomes_mx.lock().unwrap()[i] = Some(outcome);
    };

    let workers = host_threads.max(1).min(jobs.len().max(1));
    if workers <= 1 {
        for i in 0..jobs.len() {
            run_one(i);
        }
    } else {
        let run_one = &run_one;
        let next = &next;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    run_one(i);
                });
            }
        });
    }

    let outcomes: Vec<JobOutcome> = outcomes_mx
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|o| o.expect("every job executed"))
        .collect();
    // batch-relative aggregates: the completion time of *this* batch's
    // last job, not the pool's cumulative clock
    let makespan_ms = dispatches.iter().map(|d| d.end_ms).fold(0.0, f64::max);
    let solves_per_sec = if makespan_ms > 0.0 {
        outcomes.len() as f64 / (makespan_ms * 1.0e-3)
    } else {
        0.0
    };
    BatchReport {
        makespan_ms,
        solves_per_sec,
        device_stats: pool.stats(),
        distinct_plans: planner.cached_plans(),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn little_jobs(count: usize, seed: u64) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count as u64)
            .map(|id| {
                let n = [4, 6, 8][id as usize % 3];
                let a = HostMat::<f64>::from_fn(n, n, |r, c| {
                    let u: f64 = multidouble::random::rand_real(&mut rng);
                    u + if r == c { 4.0 } else { 0.0 }
                });
                let b: Vec<f64> = (0..n)
                    .map(|_| multidouble::random::rand_real(&mut rng))
                    .collect();
                Job::new(id, a, b, [12, 25, 50][id as usize % 3])
            })
            .collect()
    }

    #[test]
    fn residuals_meet_the_target_digits() {
        let jobs = little_jobs(9, 77);
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        let report = solve_batch(&mut pool, &jobs);
        assert_eq!(report.outcomes.len(), 9);
        for (job, out) in jobs.iter().zip(&report.outcomes) {
            assert_eq!(job.id, out.job_id);
            let bound = 10f64.powi(-(job.target_digits as i32));
            assert!(
                out.residual < bound,
                "job {} ({}) residual {:e} above 1e-{}",
                job.id,
                out.plan.summary(),
                out.residual,
                job.target_digits
            );
            assert!(out.achieved_digits >= job.target_digits as f64);
            assert_eq!(out.x.len(), job.cols());
        }
    }

    #[test]
    fn parallel_and_serial_execution_agree() {
        let jobs = little_jobs(12, 78);
        let mut pool_a = DevicePool::homogeneous(&Gpu::v100(), 3);
        let mut pool_b = DevicePool::homogeneous(&Gpu::v100(), 3);
        let serial = solve_batch_with(&mut pool_a, &jobs, 1, DispatchPolicy::LeastLoaded);
        let parallel = solve_batch_with(&mut pool_b, &jobs, 4, DispatchPolicy::LeastLoaded);
        assert_eq!(serial.makespan_ms, parallel.makespan_ms);
        for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
            assert_eq!(s.x, p.x, "job {} diverged across host threads", s.job_id);
            assert_eq!(s.device, p.device);
        }
    }

    #[test]
    fn worker_spawn_is_clamped_to_the_batch() {
        // regression guard: an absurd host_threads request on a tiny
        // batch must clamp to the job count instead of trying to spawn
        // that many threads (which would abort the process)
        let jobs = little_jobs(1, 82);
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        let report = solve_batch_with(&mut pool, &jobs, 1_000_000, DispatchPolicy::LeastLoaded);
        assert_eq!(report.outcomes.len(), 1);
    }

    #[test]
    fn ladder_assigns_increasing_precision() {
        let jobs = little_jobs(3, 79); // digits 12, 25, 50
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let report = solve_batch(&mut pool, &jobs);
        let rungs: Vec<Precision> = report.outcomes.iter().map(|o| o.x.precision()).collect();
        assert_eq!(rungs, [Precision::D1, Precision::D2, Precision::D4]);
    }

    #[test]
    fn promoted_matrix_cache_hits_on_repeated_systems() {
        // the same matrix solved repeatedly (a power-series step mix)
        // must promote once per rung, not once per job
        let mut rng = StdRng::seed_from_u64(83);
        let n = 10;
        let a = HostMat::<f64>::from_fn(n, n, |r, c| {
            let u: f64 = multidouble::random::rand_real(&mut rng);
            u + if r == c { 4.0 } else { 0.0 }
        });
        let b: Vec<f64> = (0..n)
            .map(|_| multidouble::random::rand_real(&mut rng))
            .collect();
        let jobs: Vec<Job> = (0..8)
            .map(|id| Job::new(id, a.clone(), b.clone(), 25))
            .collect();
        let (hits_before, _) = promoted_cache_stats();
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let report = solve_batch_with(&mut pool, &jobs, 1, DispatchPolicy::LeastLoaded);
        let (hits_after, _) = promoted_cache_stats();
        // the 25-digit plan refines a d1 factorization at the dd rung;
        // only the dd promotion goes through the cache (f64 bypasses
        // it), and entries land on the second sighting — so 8 serial
        // jobs give 2 misses then 6 hits
        assert!(
            hits_after >= hits_before + 6,
            "only {} cache hits over 8 identical systems",
            hits_after - hits_before
        );
        // and the cache never changes results: all outcomes identical
        for o in &report.outcomes[1..] {
            assert_eq!(o.x, report.outcomes[0].x);
        }
    }

    #[test]
    fn reused_pool_reports_per_batch_aggregates() {
        let jobs = little_jobs(4, 80);
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        let first = solve_batch_with(&mut pool, &jobs, 1, DispatchPolicy::LeastLoaded);
        let second = solve_batch_with(&mut pool, &jobs, 1, DispatchPolicy::LeastLoaded);
        // clocks carry across batches: the second batch finishes later...
        assert!(second.makespan_ms > first.makespan_ms);
        // ...but its rate counts only its own four jobs over that time
        let expect = 4.0 / (second.makespan_ms * 1.0e-3);
        assert!((second.solves_per_sec - expect).abs() < 1e-9);
        // the pool's cumulative view keeps both batches
        assert_eq!(pool.total_solves(), 8);
    }

    #[test]
    fn policies_only_move_jobs_never_bits() {
        let jobs = little_jobs(10, 81);
        let gpus = || vec![Gpu::v100(), Gpu::p100()];
        let mut pool_g = DevicePool::new(gpus());
        let greedy = solve_batch_with(&mut pool_g, &jobs, 1, DispatchPolicy::LeastLoaded);
        let mut pool_s = DevicePool::new(gpus());
        let sect = solve_batch_with(
            &mut pool_s,
            &jobs,
            1,
            DispatchPolicy::ShortestExpectedCompletion,
        );
        for (g, s) in greedy.outcomes.iter().zip(&sect.outcomes) {
            assert_eq!(g.job_id, s.job_id);
            assert_eq!(g.x, s.x, "job {}: policy changed the bits", g.job_id);
            assert_eq!(g.residual, s.residual);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        let report = solve_batch(&mut pool, &[]);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.makespan_ms, 0.0);
    }
}
