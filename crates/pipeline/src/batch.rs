//! The batched solve service: plan, schedule, execute, aggregate.
//!
//! [`solve_batch`] is the pipeline's public entry point: it takes a
//! device pool and a batch of [`Job`]s, schedules every job greedily
//! over the pool (see [`crate::scheduler`]), runs each solve
//! *functionally* through [`mdls_core::lstsq`] at the planned precision
//! and tiling, and returns per-job outcomes plus pool-level throughput.
//!
//! Numerics are exactly those of sequential `lstsq` calls: the planner
//! only chooses options, and job solves are independent, so the batch
//! results are bit-identical to solving each job alone with the same
//! plan (asserted by the `tests/pipeline.rs` property test). Host-side
//! worker threads only shorten *our* wall clock; simulated device time
//! is unaffected.

use gpusim::{ExecMode, Gpu};
use mdls_core::lstsq;
use mdls_matrix::{vec_norm2, HostMat};
use multidouble::{Dd, MdReal, MdScalar, Od, Qd};

use crate::job::{Job, Precision, Solution};
use crate::planner::{Plan, Planner};
use crate::pool::{DevicePool, DeviceStats};
use crate::scheduler::{schedule, Dispatch, DispatchPolicy, JobShape};

/// Outcome of one job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's caller-chosen id.
    pub job_id: u64,
    /// Pool id of the device that ran the solve.
    pub device: usize,
    /// The plan the solve ran under.
    pub plan: Plan,
    /// The minimizer, at the planned precision.
    pub x: Solution,
    /// Relative residual `‖b − A x‖₂ / ‖b‖₂` (leading double).
    pub residual: f64,
    /// Simulated start time on the device, ms.
    pub start_ms: f64,
    /// Simulated completion time on the device, ms.
    pub end_ms: f64,
}

/// Outcomes plus aggregates for one batch.
///
/// `makespan_ms` and `solves_per_sec` describe *this batch*: the
/// simulated time at which its last job completes and this batch's
/// jobs over that time. `device_stats` snapshots the pool, which is
/// cumulative — reusing a pool across batches carries its clocks and
/// counters forward (call [`DevicePool::reset`] between independent
/// batches to start from idle).
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job outcomes, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Simulated completion time of this batch's last job, ms.
    pub makespan_ms: f64,
    /// This batch's jobs per simulated second of `makespan_ms`.
    pub solves_per_sec: f64,
    /// Per-device snapshots of the (cumulative) pool state.
    pub device_stats: Vec<DeviceStats>,
    /// Number of distinct plans the planner computed (cache pressure).
    pub distinct_plans: usize,
}

/// Promote an `f64` matrix into the working precision.
fn promote_mat<S: MdScalar>(a: &HostMat<f64>) -> HostMat<S> {
    HostMat::from_fn(a.rows, a.cols, |r, c| S::from_f64(a.get(r, c)))
}

/// Promote an `f64` vector into the working precision.
fn promote_vec<S: MdScalar>(v: &[f64]) -> Vec<S> {
    v.iter().map(|x| S::from_f64(*x)).collect()
}

fn solve_as<S: MdScalar>(gpu: &Gpu, job: &Job, plan: &Plan) -> (Vec<S>, f64) {
    let a = promote_mat::<S>(&job.a);
    let b = promote_vec::<S>(&job.b);
    let run = lstsq(gpu, &a, &b, &plan.options(ExecMode::Sequential));
    let r = a.residual(&run.x, &b).to_f64();
    let bn = vec_norm2(&b).to_f64();
    let residual = if bn > 0.0 { r / bn } else { r };
    (run.x, residual)
}

/// Run one job under an already-chosen plan on a device model. This is
/// exactly what the batch executor does per job — exposed so callers
/// (and the equivalence property test) can reproduce any batch result
/// with a single sequential solve.
pub fn solve_planned(gpu: &Gpu, job: &Job, plan: &Plan) -> (Solution, f64) {
    match plan.precision {
        Precision::D1 => {
            let (x, r) = solve_as::<f64>(gpu, job, plan);
            (Solution::D1(x), r)
        }
        Precision::D2 => {
            let (x, r) = solve_as::<Dd>(gpu, job, plan);
            (Solution::D2(x), r)
        }
        Precision::D4 => {
            let (x, r) = solve_as::<Qd>(gpu, job, plan);
            (Solution::D4(x), r)
        }
        Precision::D8 => {
            let (x, r) = solve_as::<Od>(gpu, job, plan);
            (Solution::D8(x), r)
        }
    }
}

/// Solve a batch of jobs over the pool under the default
/// [`DispatchPolicy::LeastLoaded`], using up to
/// `available_parallelism` host worker threads for the functional
/// execution.
pub fn solve_batch(pool: &mut DevicePool, jobs: &[Job]) -> BatchReport {
    solve_batch_policy(pool, jobs, DispatchPolicy::LeastLoaded)
}

/// [`solve_batch`] with an explicit dispatch policy
/// (`DispatchPolicy::ShortestExpectedCompletion` pays off on
/// heterogeneous pools; solutions are bit-identical either way).
pub fn solve_batch_policy(
    pool: &mut DevicePool,
    jobs: &[Job],
    policy: DispatchPolicy,
) -> BatchReport {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    solve_batch_with(pool, jobs, workers, policy)
}

/// [`solve_batch`] with an explicit host worker-thread count
/// (`host_threads = 1` executes jobs on the calling thread) and
/// dispatch policy.
pub fn solve_batch_with(
    pool: &mut DevicePool,
    jobs: &[Job],
    host_threads: usize,
    policy: DispatchPolicy,
) -> BatchReport {
    let planner = Planner::new();
    let shapes: Vec<JobShape> = jobs.iter().map(JobShape::from).collect();
    let dispatches = schedule(pool, &planner, &shapes, policy);

    let mut outcomes: Vec<Option<JobOutcome>> = Vec::new();
    outcomes.resize_with(jobs.len(), || None);
    let outcomes_mx = std::sync::Mutex::new(outcomes);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let run_one = |i: usize| {
        let d: &Dispatch = &dispatches[i];
        let job = &jobs[i];
        let (x, residual) = solve_planned(pool.gpu(d.device), job, &d.plan);
        let outcome = JobOutcome {
            job_id: job.id,
            device: d.device,
            plan: d.plan,
            x,
            residual,
            start_ms: d.start_ms,
            end_ms: d.end_ms,
        };
        outcomes_mx.lock().unwrap()[i] = Some(outcome);
    };

    let workers = host_threads.max(1).min(jobs.len().max(1));
    if workers <= 1 {
        for i in 0..jobs.len() {
            run_one(i);
        }
    } else {
        let run_one = &run_one;
        let next = &next;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    run_one(i);
                });
            }
        });
    }

    let outcomes: Vec<JobOutcome> = outcomes_mx
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|o| o.expect("every job executed"))
        .collect();
    // batch-relative aggregates: the completion time of *this* batch's
    // last job, not the pool's cumulative clock
    let makespan_ms = dispatches.iter().map(|d| d.end_ms).fold(0.0, f64::max);
    let solves_per_sec = if makespan_ms > 0.0 {
        outcomes.len() as f64 / (makespan_ms * 1.0e-3)
    } else {
        0.0
    };
    BatchReport {
        makespan_ms,
        solves_per_sec,
        device_stats: pool.stats(),
        distinct_plans: planner.cached_plans(),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn little_jobs(count: usize, seed: u64) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count as u64)
            .map(|id| {
                let n = [4, 6, 8][id as usize % 3];
                let a = HostMat::<f64>::from_fn(n, n, |r, c| {
                    let u: f64 = multidouble::random::rand_real(&mut rng);
                    u + if r == c { 4.0 } else { 0.0 }
                });
                let b: Vec<f64> = (0..n)
                    .map(|_| multidouble::random::rand_real(&mut rng))
                    .collect();
                Job::new(id, a, b, [12, 25, 50][id as usize % 3])
            })
            .collect()
    }

    #[test]
    fn residuals_meet_the_target_digits() {
        let jobs = little_jobs(9, 77);
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        let report = solve_batch(&mut pool, &jobs);
        assert_eq!(report.outcomes.len(), 9);
        for (job, out) in jobs.iter().zip(&report.outcomes) {
            assert_eq!(job.id, out.job_id);
            let bound = 10f64.powi(-(job.target_digits as i32));
            assert!(
                out.residual < bound,
                "job {} residual {:e} above 1e-{}",
                job.id,
                out.residual,
                job.target_digits
            );
            assert_eq!(out.x.len(), job.cols());
        }
    }

    #[test]
    fn parallel_and_serial_execution_agree() {
        let jobs = little_jobs(12, 78);
        let mut pool_a = DevicePool::homogeneous(&Gpu::v100(), 3);
        let mut pool_b = DevicePool::homogeneous(&Gpu::v100(), 3);
        let serial = solve_batch_with(&mut pool_a, &jobs, 1, DispatchPolicy::LeastLoaded);
        let parallel = solve_batch_with(&mut pool_b, &jobs, 4, DispatchPolicy::LeastLoaded);
        assert_eq!(serial.makespan_ms, parallel.makespan_ms);
        for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
            assert_eq!(s.x, p.x, "job {} diverged across host threads", s.job_id);
            assert_eq!(s.device, p.device);
        }
    }

    #[test]
    fn ladder_assigns_increasing_precision() {
        let jobs = little_jobs(3, 79); // digits 12, 25, 50
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let report = solve_batch(&mut pool, &jobs);
        let rungs: Vec<Precision> = report.outcomes.iter().map(|o| o.x.precision()).collect();
        assert_eq!(rungs, [Precision::D1, Precision::D2, Precision::D4]);
    }

    #[test]
    fn reused_pool_reports_per_batch_aggregates() {
        let jobs = little_jobs(4, 80);
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        let first = solve_batch_with(&mut pool, &jobs, 1, DispatchPolicy::LeastLoaded);
        let second = solve_batch_with(&mut pool, &jobs, 1, DispatchPolicy::LeastLoaded);
        // clocks carry across batches: the second batch finishes later...
        assert!(second.makespan_ms > first.makespan_ms);
        // ...but its rate counts only its own four jobs over that time
        let expect = 4.0 / (second.makespan_ms * 1.0e-3);
        assert!((second.solves_per_sec - expect).abs() < 1e-9);
        // the pool's cumulative view keeps both batches
        assert_eq!(pool.total_solves(), 8);
    }

    #[test]
    fn policies_only_move_jobs_never_bits() {
        let jobs = little_jobs(10, 81);
        let gpus = || vec![Gpu::v100(), Gpu::p100()];
        let mut pool_g = DevicePool::new(gpus());
        let greedy = solve_batch_with(&mut pool_g, &jobs, 1, DispatchPolicy::LeastLoaded);
        let mut pool_s = DevicePool::new(gpus());
        let sect = solve_batch_with(
            &mut pool_s,
            &jobs,
            1,
            DispatchPolicy::ShortestExpectedCompletion,
        );
        for (g, s) in greedy.outcomes.iter().zip(&sect.outcomes) {
            assert_eq!(g.job_id, s.job_id);
            assert_eq!(g.x, s.x, "job {}: policy changed the bits", g.job_id);
            assert_eq!(g.residual, s.residual);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        let report = solve_batch(&mut pool, &[]);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.makespan_ms, 0.0);
    }
}
