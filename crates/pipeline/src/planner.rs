//! The planner: cost-model-driven *plan search* over staged execution
//! plans.
//!
//! For a job `(m, n, target digits)` the planner no longer just picks a
//! precision rung and a tiling — it searches over [`ExecPlan`]
//! *structures*:
//!
//! * **direct plans** — `[Factor(r), Correct(r)]` at every rung `r` of
//!   the d → dd → qd → od ladder whose digits cover the target;
//! * **refinement plans** — factor at a cheap rung `r`, then iterate
//!   `[Residual(r′), Correct(r)]` pairs at the target rung `r′ > r`
//!   until the accuracy model says the digits are met (classic
//!   mixed-precision iterative refinement: the O(m·n²) factorization
//!   runs at the cheap rung; each pass adds only an O(m·n) residual and
//!   an O(m·n + n²) re-solve).
//!
//! Each candidate's stages are priced by the analytic cost models
//! ([`mdls_core::lstsq_factor_model`],
//! [`mdls_core::LstsqFactorization::solve`],
//! [`mdls_core::residual_model_profile`]) and composed through
//! [`Profile::absorb`]; the cheapest predicted wall clock wins. The
//! accuracy model is deliberately conservative: a factorization at rung
//! `r` is credited `r.digits()` correct digits per solve, accumulated
//! per pass and capped at the residual rung's `r′.digits()` — both
//! already discounted below the respective unit roundoffs.
//!
//! **Placement invariance.** Plan *structure* — rungs, pass count, and
//! tilings (which fix the arithmetic: the tiled back substitution
//! inverts diagonal tiles, so two tilings of one system round
//! differently) — is tuned once per `(rows, cols, target digits)` on a
//! fixed reference model (the paper's V100) and reused on every device;
//! only the per-stage *timings* are re-priced per device model. A job's
//! solution is then bit-identical no matter which device the scheduler
//! picks — the guarantee the scheduling policies and the priority
//! stream rely on. (Tilings were once re-tuned per device, which
//! silently broke that guarantee on heterogeneous pools; a
//! device-dependent direct-vs-refinement choice would break it far
//! worse.)
//!
//! Plans are memoized per `(device, rows, cols, target digits)`: a
//! batch of thousands of same-shaped jobs plans once.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gpusim::{ExecMode, Gpu, Profile};
use mdls_core::{
    lstsq_batched_model_profiles, lstsq_factor_model, residual_model_profile,
    residual_model_profile_batched, LstsqOptions,
};
use mdls_obs::{Event, Observer};
use multidouble::{Dd, MdScalar, Od, Qd};

use crate::job::Precision;
use crate::plan::{ExecPlan, FusedProfile, PlannedStage, Stage};

/// Hard ceiling on refinement passes: beyond a handful of corrections
/// the accuracy model's per-pass credit stops being trustworthy (and
/// the launch overhead eats the flop savings anyway). Candidates that
/// cannot reach their target within this many passes are discarded.
pub const MAX_CORRECTIONS: usize = 4;

#[derive(Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    device: &'static str,
    /// Timing-model fingerprint: `Gpu` fields are public, so two
    /// same-named devices may carry different calibration constants
    /// (e.g. a derated clone) and must not share cached plans.
    device_fp: u64,
    rows: usize,
    cols: usize,
    target_digits: u32,
    /// Direct-only plans (the refinement A/B baseline) are cached
    /// separately from searched plans.
    direct_only: bool,
}

/// Mix every timing-relevant device constant into one word.
fn device_fingerprint(gpu: &Gpu) -> u64 {
    let mut h: u64 = gpu.multiprocessors as u64 ^ ((gpu.cores_per_mp as u64) << 16);
    for f in [
        gpu.ghz,
        gpu.peak_dp_gflops,
        gpu.mem_bw_gbs,
        gpu.pcie_gbs,
        gpu.host_ram_gb,
        gpu.launch_gap_us,
        gpu.kernel_base_us,
        gpu.mem_eff,
        gpu.ilp_base,
        gpu.ilp_slope,
        gpu.host_overhead_ms,
    ] {
        h = h.rotate_left(7) ^ f.to_bits();
    }
    h
}

/// A canonical tiling choice `(tiles, tile_size)`, keyed by
/// `(rows, cols, precision)` — device-free, because the tiling fixes
/// the arithmetic (see module docs).
type TilingMemo = HashMap<(usize, usize, Precision), (usize, usize)>;

/// A plan structure chosen on the reference model: the stage sequence
/// (profiles not yet priced for any particular device), the digits the
/// accuracy model credits it, and the passes the optimistic posterior
/// expects execution to actually run (≤ the structural pass count).
type Strategy = (Vec<Stage>, u32, usize);

/// Optimistic digits-per-pass headroom of the expected-pass posterior:
/// the conservative accuracy model credits a rung a couple of digits
/// under its unit roundoff per pass; measured passes on well-behaved
/// systems land near the roundoff. Booking against the optimistic
/// estimate and re-booking online when execution diverges beats
/// booking the worst case and refunding after the fact.
const EXPECTED_DIGITS_SLACK: u32 = 2;

/// Memo key of a fused-priced plan: the singleton plan key plus the
/// fused-group size.
type FusedKey = (PlanKey, usize);

/// Memo key of a preferred-group-size query: shape, target, cap, and
/// the tolerance bits (callers may sweep tolerances).
type GroupKey = (usize, usize, u32, usize, u64);

/// Plan-cache traffic of one planner instance: memo hits and misses of
/// the per-device plan cache and the fused-pricing memo. The same
/// shape as the promoted-matrix cache's hit/miss stats — process-wide
/// totals are available from [`plan_cache_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans served from the memo cache.
    pub hits: u64,
    /// Plans that ran the full strategy search and pricing.
    pub misses: u64,
    /// Fused group pricings served from the fused memo.
    pub fused_hits: u64,
    /// Fused group pricings computed fresh.
    pub fused_misses: u64,
}

static PLAN_HITS: AtomicU64 = AtomicU64::new(0);
static PLAN_MISSES: AtomicU64 = AtomicU64::new(0);
static FUSED_HITS: AtomicU64 = AtomicU64::new(0);
static FUSED_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide plan-cache traffic across every planner constructed so
/// far — the planner-side sibling of
/// [`crate::batch::promoted_cache_stats`]. Counters only grow; sample
/// before and after a run and subtract to scope them to it.
pub fn plan_cache_stats() -> PlanCacheStats {
    PlanCacheStats {
        hits: PLAN_HITS.load(Ordering::Relaxed),
        misses: PLAN_MISSES.load(Ordering::Relaxed),
        fused_hits: FUSED_HITS.load(Ordering::Relaxed),
        fused_misses: FUSED_MISSES.load(Ordering::Relaxed),
    }
}

/// A memoizing planner. One planner is shared by a whole batch run.
pub struct Planner {
    cache: Mutex<HashMap<PlanKey, ExecPlan>>,
    tilings: Mutex<TilingMemo>,
    strategies: Mutex<HashMap<(usize, usize, u32), Strategy>>,
    fused: Mutex<HashMap<FusedKey, FusedProfile>>,
    group_sizes: Mutex<HashMap<GroupKey, usize>>,
    /// The numerics reference model the plan structure is tuned on.
    reference: Gpu,
    /// This instance's cache traffic (process totals in the statics).
    hits: AtomicU64,
    misses: AtomicU64,
    fused_hits: AtomicU64,
    fused_misses: AtomicU64,
    /// Optional event sink: cache probes, candidate counts and group
    /// formation emit through it. Observability is inert — the
    /// observer never feeds back into the search.
    observer: Option<Arc<dyn Observer>>,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new()
    }
}

/// Hard ceiling on the tile size: one tile is one thread block, and no
/// modeled device launches blocks wider than CUDA's 1024-thread limit.
pub const MAX_TILE_SIZE: usize = 1024;

/// Candidate tile sizes: *every* divisor of the column count up to
/// [`MAX_TILE_SIZE`], largest first. Only divisors are usable (the
/// tiling must satisfy `N · n = cols` exactly), and no candidate
/// exceeds the block limit; the single-tile configuration is a
/// candidate whenever it fits in one block.
///
/// A fixed preferred-size list is not enough: `cols = 1366 = 2 · 683`
/// has the perfectly launchable 683-wide tile that no power-of-two-ish
/// shortlist contains, leaving only {2, 1} and a silently terrible
/// plan. Divisor enumeration is O(min(cols, 1024)) per *uncached* plan
/// — noise next to the model evaluations it feeds.
pub fn tile_candidates(cols: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (1..=cols.min(MAX_TILE_SIZE))
        .filter(|&d| cols.is_multiple_of(d))
        .rev()
        .collect();
    // tile size 1 always divides, so the list is never empty; keep the
    // search bounded for highly composite widths (divisors are already
    // largest-first, and the model never favors the tiniest tiles)
    v.truncate(24);
    v
}

/// Model profiles `(factor, correct)` of one direct stage pair at
/// `rung` — the paper's QR and back-substitution phases.
fn phase_profiles(
    gpu: &Gpu,
    rung: Precision,
    rows: usize,
    opts: &LstsqOptions,
) -> (Profile, Profile) {
    fn run<S: MdScalar>(gpu: &Gpu, rows: usize, opts: &LstsqOptions) -> (Profile, Profile) {
        let f = lstsq_factor_model::<S>(gpu, rows, opts);
        let (_, bs) = f.solve(&[]);
        (f.factor_profile().clone(), bs)
    }
    match rung {
        Precision::D1 => run::<f64>(gpu, rows, opts),
        Precision::D2 => run::<Dd>(gpu, rows, opts),
        Precision::D4 => run::<Qd>(gpu, rows, opts),
        Precision::D8 => run::<Od>(gpu, rows, opts),
    }
}

/// Model profile of one residual stage at `rung`.
fn residual_profile(
    gpu: &Gpu,
    rung: Precision,
    rows: usize,
    cols: usize,
    block: usize,
    with_system_upload: bool,
) -> Profile {
    match rung {
        Precision::D1 => residual_model_profile::<f64>(gpu, rows, cols, block, with_system_upload),
        Precision::D2 => residual_model_profile::<Dd>(gpu, rows, cols, block, with_system_upload),
        Precision::D4 => residual_model_profile::<Qd>(gpu, rows, cols, block, with_system_upload),
        Precision::D8 => residual_model_profile::<Od>(gpu, rows, cols, block, with_system_upload),
    }
}

/// Fused model profiles `(factor, correct)` of one direct stage pair at
/// `rung` over a `k`-instance micro-batched group.
fn phase_profiles_batched(
    gpu: &Gpu,
    rung: Precision,
    k: usize,
    rows: usize,
    opts: &LstsqOptions,
) -> (Profile, Profile) {
    match rung {
        Precision::D1 => lstsq_batched_model_profiles::<f64>(gpu, k, rows, opts),
        Precision::D2 => lstsq_batched_model_profiles::<Dd>(gpu, k, rows, opts),
        Precision::D4 => lstsq_batched_model_profiles::<Qd>(gpu, k, rows, opts),
        Precision::D8 => lstsq_batched_model_profiles::<Od>(gpu, k, rows, opts),
    }
}

/// Fused model profile of one residual stage at `rung` over `k`
/// instances.
fn residual_profile_batched(
    gpu: &Gpu,
    rung: Precision,
    k: usize,
    rows: usize,
    cols: usize,
    block: usize,
    with_system_upload: bool,
) -> Profile {
    match rung {
        Precision::D1 => {
            residual_model_profile_batched::<f64>(gpu, k, rows, cols, block, with_system_upload)
        }
        Precision::D2 => {
            residual_model_profile_batched::<Dd>(gpu, k, rows, cols, block, with_system_upload)
        }
        Precision::D4 => {
            residual_model_profile_batched::<Qd>(gpu, k, rows, cols, block, with_system_upload)
        }
        Precision::D8 => {
            residual_model_profile_batched::<Od>(gpu, k, rows, cols, block, with_system_upload)
        }
    }
}

impl Planner {
    /// Fresh planner with an empty memo table, tuning plan structures
    /// on the paper's V100 reference model.
    pub fn new() -> Self {
        Planner::with_reference(Gpu::v100())
    }

    /// Fresh planner tuning plan structures on an explicit reference
    /// model. Every planner sharing a reference produces the same
    /// structures — and therefore the same bits — for the same jobs.
    pub fn with_reference(reference: Gpu) -> Self {
        Planner {
            cache: Mutex::new(HashMap::new()),
            tilings: Mutex::new(HashMap::new()),
            strategies: Mutex::new(HashMap::new()),
            fused: Mutex::new(HashMap::new()),
            group_sizes: Mutex::new(HashMap::new()),
            reference,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fused_hits: AtomicU64::new(0),
            fused_misses: AtomicU64::new(0),
            observer: None,
        }
    }

    /// Attach an event sink: later cache probes and candidate counts
    /// emit through it. Inert — never changes what the planner returns.
    pub fn attach_observer(&mut self, observer: Arc<dyn Observer>) {
        self.observer = Some(observer);
    }

    /// Emit one event if an observer is attached (construction skipped
    /// otherwise).
    pub(crate) fn emit(&self, ev: impl FnOnce() -> Event) {
        if let Some(obs) = &self.observer {
            obs.on_event(&ev());
        }
    }

    /// This planner's cache traffic so far.
    pub fn cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fused_hits: self.fused_hits.load(Ordering::Relaxed),
            fused_misses: self.fused_misses.load(Ordering::Relaxed),
        }
    }

    /// Plan a solve of a `rows × cols` system to `target_digits` on
    /// device `gpu`: the canonical (device-free) stage structure from
    /// the plan search, priced for `gpu`'s timing model.
    pub fn plan(&self, gpu: &Gpu, rows: usize, cols: usize, target_digits: u32) -> ExecPlan {
        self.plan_inner(gpu, rows, cols, target_digits, false)
    }

    /// The cheapest *direct* plan for the same job — what the planner
    /// chose before refinement existed. The baseline of the
    /// direct-vs-refinement A/B; [`Planner::plan`] returns exactly this
    /// whenever the search finds no cheaper refinement structure.
    pub fn plan_direct(&self, gpu: &Gpu, rows: usize, cols: usize, target_digits: u32) -> ExecPlan {
        self.plan_inner(gpu, rows, cols, target_digits, true)
    }

    fn plan_inner(
        &self,
        gpu: &Gpu,
        rows: usize,
        cols: usize,
        target_digits: u32,
        direct_only: bool,
    ) -> ExecPlan {
        assert!(cols > 0, "cannot plan an empty system");
        assert!(rows >= cols, "least squares needs rows >= cols");
        let key = PlanKey {
            device: gpu.name,
            device_fp: device_fingerprint(gpu),
            rows,
            cols,
            target_digits,
            direct_only,
        };
        // the guard is dropped at the end of this statement, *before*
        // the hit path emits: an emit site under a planner lock hands
        // every observer a re-entrancy deadlock (`lock-across-emit`)
        let cached = self.cache.lock().unwrap().get(&key).cloned();
        if let Some(p) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            PLAN_HITS.fetch_add(1, Ordering::Relaxed);
            self.emit(|| Event::PlanCacheHit {
                rows,
                cols,
                digits: target_digits,
            });
            return p;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        PLAN_MISSES.fetch_add(1, Ordering::Relaxed);
        self.emit(|| Event::PlanCacheMiss {
            rows,
            cols,
            digits: target_digits,
        });
        // compute outside the lock (model evaluation is the slow part;
        // holding the mutex here would serialize all concurrent
        // planning), then insert through `entry` so a racing thread's
        // in-flight result is never clobbered. Racing threads may
        // duplicate the computation, but plans are deterministic, so
        // whichever lands first wins and both callers return the cached
        // entry. (When `gpu` is the reference model the winning
        // structure gets priced twice — once inside the search, once
        // here; both memo layers make that a one-time cost per key.)
        let (stages, digits, expected) = self.strategy(rows, cols, target_digits, direct_only);
        let planned = self.price(gpu, rows, cols, &stages);
        let plan = ExecPlan::from_stages(planned, target_digits, digits)
            .with_expected_corrections(expected);
        self.cache
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(plan)
            .clone()
    }

    /// Price a stage sequence for one device model.
    fn price(&self, gpu: &Gpu, rows: usize, cols: usize, stages: &[Stage]) -> Vec<PlannedStage> {
        // the factor/correct pair shares one model evaluation per rung
        let mut phase_memo: HashMap<Precision, (Profile, Profile)> = HashMap::new();
        let mut first_residual = true;
        stages
            .iter()
            .map(|&stage| {
                let profile = match stage {
                    Stage::Factor {
                        rung,
                        tiles,
                        tile_size,
                    }
                    | Stage::Correct {
                        rung,
                        tiles,
                        tile_size,
                    } => {
                        let opts = LstsqOptions::tiled(tiles, tile_size, ExecMode::ModelOnly);
                        let (factor, correct) = phase_memo
                            .entry(rung)
                            .or_insert_with(|| phase_profiles(gpu, rung, rows, &opts))
                            .clone();
                        if matches!(stage, Stage::Factor { .. }) {
                            factor
                        } else {
                            correct
                        }
                    }
                    Stage::Residual { rung } => {
                        let block = match stages[0] {
                            Stage::Factor { tile_size, .. } => tile_size,
                            _ => unreachable!("plans lead with Factor"),
                        };
                        let p = residual_profile(gpu, rung, rows, cols, block, first_residual);
                        first_residual = false;
                        p
                    }
                };
                PlannedStage { stage, profile }
            })
            .collect()
    }

    /// Total predicted wall clock of a stage sequence on the reference
    /// model — the search's objective function.
    fn reference_wall_ms(&self, rows: usize, cols: usize, stages: &[Stage]) -> f64 {
        self.price(&self.reference, rows, cols, stages)
            .iter()
            .map(|s| s.wall_ms())
            .sum()
    }

    /// The canonical plan structure for a job: enumerate direct and
    /// refinement candidates, price each on the reference model, keep
    /// the argmin. Memoized per `(rows, cols, target_digits)`
    /// (direct-only baselines are derived, not memoized separately:
    /// they are the argmin over the direct candidates alone).
    fn strategy(
        &self,
        rows: usize,
        cols: usize,
        target_digits: u32,
        direct_only: bool,
    ) -> Strategy {
        let memo_key = (rows, cols, target_digits);
        if !direct_only {
            if let Some(s) = self.strategies.lock().unwrap().get(&memo_key) {
                return s.clone();
            }
        }
        let target_rung = Precision::for_digits(target_digits);
        let mut best: Option<(f64, Strategy)> = None;
        let mut candidates = 0usize;
        let mut consider = |this: &Planner, stages: Vec<Stage>, digits: u32, expected: usize| {
            candidates += 1;
            let ms = this.reference_wall_ms(rows, cols, &stages);
            if best.as_ref().map(|(b, _)| ms < *b).unwrap_or(true) {
                best = Some((ms, (stages, digits, expected)));
            }
        };

        // direct candidates, cheapest rung first (ties keep the
        // shallower rung)
        for rung in Precision::LADDER.into_iter().filter(|r| *r >= target_rung) {
            let (tiles, tile_size) = self.tiling(rows, cols, rung);
            let stages = vec![
                Stage::Factor {
                    rung,
                    tiles,
                    tile_size,
                },
                Stage::Correct {
                    rung,
                    tiles,
                    tile_size,
                },
            ];
            consider(self, stages, rung.digits(), 0);
        }

        // refinement candidates: factor below the target rung, iterate
        // residual/correct at the target rung until the digits are met
        if !direct_only {
            for rung in Precision::LADDER.into_iter().filter(|r| *r < target_rung) {
                let per_pass = rung.digits();
                let cap = target_rung.digits();
                let Some(passes) = (1..=MAX_CORRECTIONS)
                    .find(|k| ((*k as u32 + 1) * per_pass).min(cap) >= target_digits)
                else {
                    continue; // cannot reach the target within the cap
                };
                let (tiles, tile_size) = self.tiling(rows, cols, rung);
                let factor = Stage::Factor {
                    rung,
                    tiles,
                    tile_size,
                };
                let correct = Stage::Correct {
                    rung,
                    tiles,
                    tile_size,
                };
                let mut stages = vec![factor, correct];
                for _ in 0..passes {
                    stages.push(Stage::Residual { rung: target_rung });
                    stages.push(correct);
                }
                let digits = ((passes as u32 + 1) * per_pass).min(cap);
                // the expected pass count under the optimistic
                // posterior: slightly more digits per pass, residual
                // rung allowed its own slack — what a stage scheduler
                // books, with online re-booking absorbing the variance
                let opt = per_pass + EXPECTED_DIGITS_SLACK;
                let opt_cap = cap + EXPECTED_DIGITS_SLACK;
                let expected = (1..=passes)
                    .find(|k| ((*k as u32 + 1) * opt).min(opt_cap) >= target_digits)
                    .unwrap_or(passes);
                consider(self, stages, digits, expected);
            }
        }

        let (_, strategy) = best.expect("at least one direct candidate always exists");
        self.emit(|| Event::PlanCandidates {
            rows,
            cols,
            digits: target_digits,
            candidates,
        });
        if direct_only {
            return strategy;
        }
        self.strategies
            .lock()
            .unwrap()
            .entry(memo_key)
            .or_insert(strategy)
            .clone()
    }

    /// The canonical tiling `(tiles, tile_size)` for a shape and rung:
    /// the cheapest candidate on the reference model, memoized (same
    /// compute-outside-the-lock discipline as the plan cache).
    fn tiling(&self, rows: usize, cols: usize, precision: Precision) -> (usize, usize) {
        let key = (rows, cols, precision);
        if let Some(t) = self.tilings.lock().unwrap().get(&key) {
            return *t;
        }
        let mut best: Option<(f64, usize)> = None;
        for tile_size in tile_candidates(cols) {
            let tiles = cols / tile_size;
            let opts = LstsqOptions::tiled(tiles, tile_size, ExecMode::ModelOnly);
            let (qr, bs) = phase_profiles(&self.reference, precision, rows, &opts);
            let ms = qr.wall_ms() + bs.wall_ms();
            if best.map(|(b, _)| ms < b).unwrap_or(true) {
                best = Some((ms, tile_size));
            }
        }
        let (_, tile_size) = best.expect("tile_candidates is never empty");
        *self
            .tilings
            .lock()
            .unwrap()
            .entry(key)
            .or_insert((cols / tile_size, tile_size))
    }

    /// Number of distinct plans computed so far.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// The canonical plan for a job plus its fused pricing as a
    /// micro-batched group of `k` instances on `gpu`.
    ///
    /// The *structure* is exactly [`Planner::plan`]'s — fusing is pure
    /// launch packing, so a member job's arithmetic (and bits) never
    /// depends on the group it rides in, the same way it never depends
    /// on the device it lands on. Only the pricing changes: every stage
    /// is costed as one fused launch sequence over `k` instances. A
    /// group of one prices exactly the singleton plan.
    pub fn plan_fused(
        &self,
        gpu: &Gpu,
        rows: usize,
        cols: usize,
        target_digits: u32,
        k: usize,
    ) -> (ExecPlan, FusedProfile) {
        assert!(k > 0, "a fused group needs at least one instance");
        let plan = self.plan(gpu, rows, cols, target_digits);
        let key = (
            PlanKey {
                device: gpu.name,
                device_fp: device_fingerprint(gpu),
                rows,
                cols,
                target_digits,
                direct_only: false,
            },
            k,
        );
        // guard dropped before the emit — same re-entrancy discipline
        // as the plan cache above (`lock-across-emit`)
        let cached = self.fused.lock().unwrap().get(&key).cloned();
        if let Some(f) = cached {
            self.fused_hits.fetch_add(1, Ordering::Relaxed);
            FUSED_HITS.fetch_add(1, Ordering::Relaxed);
            self.emit(|| Event::FusedMemoHit {
                rows,
                cols,
                digits: target_digits,
                group: k,
            });
            return (plan, f);
        }
        self.fused_misses.fetch_add(1, Ordering::Relaxed);
        FUSED_MISSES.fetch_add(1, Ordering::Relaxed);
        self.emit(|| Event::FusedMemoMiss {
            rows,
            cols,
            digits: target_digits,
            group: k,
        });
        // compute outside the lock, insert through `entry` — the same
        // race discipline as the plan cache
        let stages: Vec<Stage> = plan.stages.iter().map(|s| s.stage).collect();
        let fused = self.price_fused(gpu, rows, cols, &stages, k);
        let fused = self
            .fused
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(fused)
            .clone();
        (plan, fused)
    }

    /// Price a stage sequence as one fused `k`-instance group on `gpu`.
    fn price_fused(
        &self,
        gpu: &Gpu,
        rows: usize,
        cols: usize,
        stages: &[Stage],
        k: usize,
    ) -> FusedProfile {
        let mut phase_memo: HashMap<Precision, (Profile, Profile)> = HashMap::new();
        let mut first_residual = true;
        let profiles: Vec<Profile> = stages
            .iter()
            .map(|&stage| match stage {
                Stage::Factor {
                    rung,
                    tiles,
                    tile_size,
                }
                | Stage::Correct {
                    rung,
                    tiles,
                    tile_size,
                } => {
                    let opts = LstsqOptions::tiled(tiles, tile_size, ExecMode::ModelOnly);
                    let (factor, correct) = phase_memo
                        .entry(rung)
                        .or_insert_with(|| phase_profiles_batched(gpu, rung, k, rows, &opts))
                        .clone();
                    if matches!(stage, Stage::Factor { .. }) {
                        factor
                    } else {
                        correct
                    }
                }
                Stage::Residual { rung } => {
                    let block = match stages[0] {
                        Stage::Factor { tile_size, .. } => tile_size,
                        _ => unreachable!("plans lead with Factor"),
                    };
                    let p =
                        residual_profile_batched(gpu, rung, k, rows, cols, block, first_residual);
                    first_residual = false;
                    p
                }
            })
            .collect();
        let mut total = Profile::new();
        for p in &profiles {
            total.absorb(p);
        }
        FusedProfile {
            group: k,
            predicted_ms: total.wall_ms(),
            predicted_kernel_ms: total.all_kernels_ms(),
            flops_paper: total.total_flops_paper(),
            stage_wall_ms: profiles.iter().map(|p| p.wall_ms()).collect(),
            stage_host_ms: profiles.iter().map(|p| p.lane_split_ms().0).collect(),
        }
    }

    /// Deadline-aware cap on a fused-group size: the largest `k ≤
    /// preferred` whose whole-group fused wall clock on the reference
    /// model fits inside `slack_ms` (a fused group completes as a
    /// whole, so a tight front-member deadline must shrink the group it
    /// waits for). Always at least 1 — an unmeetable deadline still
    /// dispatches the front job alone rather than holding it.
    pub fn deadline_group_cap(
        &self,
        rows: usize,
        cols: usize,
        target_digits: u32,
        preferred: usize,
        slack_ms: f64,
    ) -> usize {
        let mut k = preferred.max(1);
        while k > 1 {
            let (_, fused) = self.plan_fused(&self.reference, rows, cols, target_digits, k);
            if fused.predicted_ms <= slack_ms {
                break;
            }
            k -= 1;
        }
        k
    }

    /// The occupancy-aware preferred fused-group size for a job shape:
    /// the smallest candidate `k ≤ max_group` whose fused per-job
    /// predicted cost lands within `tolerance` of the best candidate's.
    ///
    /// Per-job fused cost falls as `k` grows — occupancy climbs until
    /// the fused grid fills whole waves of the device, and every
    /// per-launch constant spreads over more instances — then flattens
    /// into a plateau of wave-quantization sweet spots. The tolerance
    /// picks the *start* of the plateau: beyond it, bigger groups buy
    /// nothing but latency (a group completes as a whole).
    ///
    /// Sized on the reference model, like tilings and plan structures:
    /// group size never changes bits, but reference sizing keeps the
    /// whole schedule deterministic and device-order-free.
    pub fn preferred_group_size(
        &self,
        rows: usize,
        cols: usize,
        target_digits: u32,
        max_group: usize,
        tolerance: f64,
    ) -> usize {
        let cap = max_group.max(1);
        let key = (rows, cols, target_digits, cap, tolerance.to_bits());
        if let Some(k) = self.group_sizes.lock().unwrap().get(&key) {
            return *k;
        }
        const CANDIDATES: [usize; 16] =
            [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256];
        let mut candidates: Vec<usize> = CANDIDATES.iter().copied().filter(|&k| k < cap).collect();
        candidates.push(cap);
        let (stages, _, _) = self.strategy(rows, cols, target_digits, false);
        let per_job: Vec<f64> = candidates
            .iter()
            .map(|&k| {
                self.price_fused(&self.reference, rows, cols, &stages, k)
                    .per_job_ms()
            })
            .collect();
        let best = per_job.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let chosen = candidates
            .iter()
            .zip(&per_job)
            .find(|(_, &ms)| ms <= best * (1.0 + tolerance))
            .map(|(&k, _)| k)
            .unwrap_or(1);
        *self
            .group_sizes
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_tile_exactly() {
        for cols in [1, 7, 24, 96, 128, 1000, 1366, 2048] {
            let c = tile_candidates(cols);
            assert!(!c.is_empty(), "no candidates for {cols}");
            for ts in c {
                assert_eq!(cols % ts, 0, "{ts} does not tile {cols}");
                assert!(ts <= MAX_TILE_SIZE, "tile {ts} exceeds a thread block");
            }
        }
    }

    #[test]
    fn wide_prime_factors_are_not_skipped() {
        // regression: the preferred-size shortlist proposed only {2, 1}
        // for 1366 = 2 * 683, silently skipping the launchable 683-wide
        // tile (683 <= MAX_TILE_SIZE)
        let c = tile_candidates(1366);
        assert!(c.contains(&683), "683 missing from {c:?}");
        assert_eq!(c, vec![683, 2, 1]);
        // and the planner actually prefers it: 2 wide tiles beat 683
        // launch-gap-dominated 2-wide ones
        let plan = Planner::new().plan_direct(&Gpu::v100(), 1366, 1366, 25);
        assert_eq!(plan.factor().2, 683);
    }

    #[test]
    fn concurrent_planning_caches_once() {
        // regression: plan() took the memo lock twice (get, then
        // insert), so racing callers recomputed and re-inserted the
        // same key; with the entry API the cache holds exactly one
        // entry per key no matter the interleaving
        let planner = Planner::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..4 {
                        let p = planner.plan(&Gpu::v100(), 96, 96, 25);
                        let (_, tiles, tile_size) = p.factor();
                        assert_eq!(tiles * tile_size, 96);
                        let q = planner.plan(&Gpu::a100(), 128, 128, 50);
                        let (_, tiles, tile_size) = q.factor();
                        assert_eq!(tiles * tile_size, 128);
                    }
                });
            }
        });
        assert_eq!(planner.cached_plans(), 2, "racing planners duplicated work");
    }

    #[test]
    fn no_plan_exceeds_the_block_limit() {
        // 1366 = 2 * 683: the only launchable tilings are narrow; the
        // planner must not fabricate a 1366-thread block
        let plan = Planner::new().plan(&Gpu::v100(), 1366, 1366, 25);
        let (_, tiles, tile_size) = plan.factor();
        assert!(tile_size <= MAX_TILE_SIZE);
        assert_eq!(tiles * tile_size, 1366);
    }

    #[test]
    fn same_name_different_constants_do_not_share_plans() {
        let planner = Planner::new();
        let v100 = Gpu::v100();
        let mut derated = Gpu::v100();
        derated.peak_dp_gflops /= 4.0;
        derated.mem_bw_gbs /= 4.0;
        let a = planner.plan(&v100, 128, 128, 25);
        let b = planner.plan(&derated, 128, 128, 25);
        assert_eq!(planner.cached_plans(), 2, "derated clone hit the cache");
        assert!(
            b.predicted_ms > a.predicted_ms,
            "derated V100 predicted no slower: {} vs {}",
            b.predicted_ms,
            a.predicted_ms
        );
    }

    #[test]
    fn searched_plan_never_loses_to_the_direct_baseline() {
        let planner = Planner::new();
        let gpu = Gpu::v100();
        for (rows, cols, digits) in [
            (64, 64, 25),
            (96, 96, 50),
            (256, 256, 50),
            (288, 256, 100),
            (1024, 1024, 50),
        ] {
            let plan = planner.plan(&gpu, rows, cols, digits);
            let direct = planner.plan_direct(&gpu, rows, cols, digits);
            assert!(
                plan.predicted_ms <= direct.predicted_ms + 1e-12,
                "{rows}x{cols} d{digits}: searched {} ms > direct {} ms",
                plan.predicted_ms,
                direct.predicted_ms
            );
            assert!(plan.predicted_digits >= digits, "digits not covered");
            assert!(direct.is_direct());
        }
    }

    #[test]
    fn refinement_wins_the_paper_1024_dd_to_qd_case() {
        // the acceptance bar: at the paper's 1024 x 1024 with a quad
        // double target, factoring in double double and refining beats
        // the direct quad double solve on predicted wall clock
        let planner = Planner::new();
        let plan = planner.plan(&Gpu::v100(), 1024, 1024, 50);
        let direct = planner.plan_direct(&Gpu::v100(), 1024, 1024, 50);
        assert!(
            !plan.is_direct(),
            "search kept the direct plan: {}",
            plan.summary()
        );
        assert!(plan.factor_precision() < Precision::D4);
        assert_eq!(plan.solution_precision(), Precision::D4);
        assert!(
            plan.predicted_ms < direct.predicted_ms,
            "refinement {} ms not under direct {} ms",
            plan.predicted_ms,
            direct.predicted_ms
        );
        assert!(plan.predicted_digits >= 50);
    }

    #[test]
    fn plan_structure_is_placement_invariant() {
        // regression (and its sharpened successor): plan *structure*
        // must be identical across devices — tilings, rungs and pass
        // counts — or the same job would round differently depending on
        // where the scheduler put it. Timing must still differ.
        let planner = Planner::new();
        for (rows, cols, digits) in [(24, 24, 100), (16, 16, 25), (96, 96, 50), (128, 96, 12)] {
            let v = planner.plan(&Gpu::v100(), rows, cols, digits);
            let p = planner.plan(&Gpu::p100(), rows, cols, digits);
            let a = planner.plan(&Gpu::a100(), rows, cols, digits);
            let structure = |x: &ExecPlan| x.stages.iter().map(|s| s.stage).collect::<Vec<_>>();
            assert_eq!(
                structure(&v),
                structure(&p),
                "{rows}x{cols} d{digits}: V100/P100 structures differ"
            );
            assert_eq!(structure(&v), structure(&a));
            assert_ne!(v.predicted_ms, p.predicted_ms, "timing should differ");
        }
    }

    #[test]
    fn predicted_digits_cover_every_target() {
        let planner = Planner::new();
        let gpu = Gpu::v100();
        for digits in [1, 10, 14, 15, 25, 29, 30, 50, 60, 61, 100, 123, 200] {
            let plan = planner.plan(&gpu, 64, 64, digits);
            assert!(
                plan.predicted_digits >= digits.min(Precision::D8.digits()),
                "target {digits}: plan {} predicts only {}",
                plan.summary(),
                plan.predicted_digits
            );
            // stage sanity: leads with Factor, alternates
            // Residual/Correct afterwards
            assert!(matches!(plan.stages[0].stage, Stage::Factor { .. }));
            assert!(matches!(plan.stages[1].stage, Stage::Correct { .. }));
            assert_eq!(plan.stages.len(), 2 + 2 * plan.corrections());
        }
    }

    #[test]
    fn shallow_targets_stay_direct_single_rung() {
        // a hardware-double target has no cheaper rung to refine from:
        // the plan must be the legacy direct solve
        let plan = Planner::new().plan(&Gpu::v100(), 37, 37, 10);
        assert!(plan.is_direct());
        assert_eq!(plan.factor_precision(), Precision::D1);
        let (_, tiles, tile_size) = plan.factor();
        assert_eq!(tiles * tile_size, 37);
    }

    #[test]
    fn direct_plan_uses_the_cheapest_tiling_candidate() {
        // the tiling argmin property: on the reference device the
        // chosen direct plan is no slower than any candidate tiling of
        // the same rung (regression guard for the comparison inside
        // `Planner::tiling`)
        let gpu = Gpu::v100();
        let planner = Planner::new();
        for (rows, cols, digits) in [(96, 96, 25), (128, 96, 50), (64, 64, 100)] {
            let plan = planner.plan_direct(&gpu, rows, cols, digits);
            let rung = plan.factor_precision();
            for ts in tile_candidates(cols) {
                let opts = LstsqOptions::tiled(cols / ts, ts, ExecMode::ModelOnly);
                let (qr, bs) = phase_profiles(&gpu, rung, rows, &opts);
                let ms = qr.wall_ms() + bs.wall_ms();
                assert!(
                    plan.predicted_ms <= ms + 1e-12,
                    "{rows}x{cols} d{digits}: tiling {}x{ts} ({ms} ms) beats the plan ({} ms)",
                    cols / ts,
                    plan.predicted_ms
                );
            }
        }
    }

    #[test]
    fn plans_differ_across_shapes() {
        // the acceptance bar: the cost model must steer different job
        // shapes to different tile configurations
        let gpu = Gpu::v100();
        let planner = Planner::new();
        let small = planner.plan_direct(&gpu, 24, 24, 25);
        let large = planner.plan_direct(&gpu, 768, 768, 25);
        assert_ne!(
            (small.factor().1, small.factor().2),
            (large.factor().1, large.factor().2),
            "planner chose one tiling for very different shapes"
        );
    }

    #[test]
    fn fused_pricing_lifts_small_shape_throughput() {
        // the acceptance bar of the micro-batching issue: on the
        // paper's small shapes (32..128 unknowns, d/dd rungs) a fused
        // group at the preferred size predicts >= 2x solves/sec over
        // singleton launches
        let planner = Planner::new();
        let gpu = Gpu::v100();
        for (n, digits) in [(32, 12), (64, 12), (128, 12), (32, 25), (64, 25), (128, 25)] {
            let single = planner.plan(&gpu, n, n, digits);
            let k = planner.preferred_group_size(n, n, digits, 64, 0.05);
            assert!(k > 1, "{n}x{n} d{digits}: preferred group stuck at 1");
            let (_, fused) = planner.plan_fused(&gpu, n, n, digits, k);
            let speedup = single.predicted_ms / fused.per_job_ms();
            assert!(
                speedup >= 2.0,
                "{n}x{n} d{digits}: fused x{k} only {speedup:.2}x"
            );
        }
    }

    #[test]
    fn fused_group_of_one_prices_the_singleton_plan() {
        let planner = Planner::new();
        let gpu = Gpu::p100();
        let plan = planner.plan(&gpu, 96, 96, 50);
        let (p2, fused) = planner.plan_fused(&gpu, 96, 96, 50, 1);
        assert_eq!(plan, p2);
        assert_eq!(fused.group, 1);
        assert_eq!(fused.predicted_ms, plan.predicted_ms);
        assert_eq!(fused.predicted_kernel_ms, plan.predicted_kernel_ms);
        assert_eq!(fused.flops_paper, plan.flops_paper);
        // stage walls align with the plan's stages
        assert_eq!(fused.stage_wall_ms.len(), plan.stages.len());
        for (w, s) in fused.stage_wall_ms.iter().zip(&plan.stages) {
            assert!((w - s.wall_ms()).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_profile_accounts_every_member() {
        let planner = Planner::new();
        let gpu = Gpu::v100();
        let plan = planner.plan(&gpu, 64, 64, 25);
        let (_, fused) = planner.plan_fused(&gpu, 64, 64, 25, 12);
        // device-independent flops scale exactly with the group
        assert!((fused.flops_paper - 12.0 * plan.flops_paper).abs() < 1e-6 * fused.flops_paper);
        // the fused group is cheaper than 12 singletons but costs more
        // than one (no free lunch from packing)
        assert!(fused.predicted_ms < 12.0 * plan.predicted_ms);
        assert!(fused.predicted_ms > plan.predicted_ms);
        // stage shares compose to the total
        let sum: f64 = fused.stage_wall_ms.iter().sum();
        assert!((sum - fused.predicted_ms).abs() < 1e-9);
    }

    #[test]
    fn group_size_selection_regression() {
        // the sweet-spot rule: smallest candidate within tolerance of
        // the best per-job cost — deterministic, memoized, capped
        let planner = Planner::new();
        let k = planner.preferred_group_size(32, 32, 25, 64, 0.05);
        let again = planner.preferred_group_size(32, 32, 25, 64, 0.05);
        assert_eq!(k, again, "group size not deterministic");
        assert!(k > 1, "32x32 dd: fusion should pay");
        assert!(k <= 64);
        // no candidate k' < k beats the chosen one by more than the
        // tolerance — k really is the plateau start
        let per_job = |k: usize| {
            let (_, f) = planner.plan_fused(&Gpu::v100(), 32, 32, 25, k);
            f.per_job_ms()
        };
        let chosen = per_job(k);
        for smaller in [1, 2, 4, 8].iter().filter(|&&s| s < k) {
            assert!(
                per_job(*smaller) >= chosen,
                "k={smaller} beats the chosen k={k}"
            );
        }
        // the cap binds
        assert!(planner.preferred_group_size(32, 32, 25, 4, 0.05) <= 4);
        // big shapes already fill the device: fusing buys little, the
        // preferred group stays small
        let big = planner.preferred_group_size(1024, 1024, 25, 64, 0.05);
        assert!(big < k, "1024x1024 preferred {big} >= small-shape {k}");
    }

    #[test]
    fn observer_may_reenter_the_planner() {
        // regression: the plan-cache and fused-memo *hit* paths once
        // emitted their events while the cache MutexGuard was still
        // live (the `if let Some(p) = self.cache.lock()...` temporary
        // lives through the whole branch), so an observer that called
        // back into the planner self-deadlocked on the std Mutex. The
        // guard now drops before every emit; a re-entrant observer
        // must complete. This test hangs forever on the old code.
        use std::sync::atomic::AtomicBool;
        use std::sync::Mutex as StdMutex;
        struct Reenter {
            planner: StdMutex<Option<Arc<Planner>>>,
            reentered: AtomicU64,
            busy: AtomicBool,
        }
        impl Observer for Reenter {
            fn on_event(&self, ev: &Event) {
                if !matches!(ev, Event::PlanCacheHit { .. } | Event::FusedMemoHit { .. }) {
                    return;
                }
                // one level of re-entrancy is the interesting case;
                // the flag keeps the hit→observer→hit loop finite
                if self.busy.swap(true, Ordering::SeqCst) {
                    return;
                }
                if let Some(p) = self.planner.lock().unwrap().as_ref() {
                    // touch every memo the emit paths guard: the plan
                    // cache, the fused memo, and the cache-size probe
                    let _ = p.plan(&Gpu::p100(), 48, 48, 25);
                    let _ = p.plan_fused(&Gpu::p100(), 48, 48, 25, 2);
                    let _ = p.cached_plans();
                    self.reentered.fetch_add(1, Ordering::Relaxed);
                }
                self.busy.store(false, Ordering::SeqCst);
            }
        }
        let obs = Arc::new(Reenter {
            planner: StdMutex::new(None),
            reentered: AtomicU64::new(0),
            busy: AtomicBool::new(false),
        });
        let mut planner = Planner::new();
        planner.attach_observer(obs.clone());
        let planner = Arc::new(planner);
        *obs.planner.lock().unwrap() = Some(planner.clone());
        let gpu = Gpu::v100();
        let baseline = planner.plan(&gpu, 64, 64, 25); // miss: no re-entry
        let hit = planner.plan(&gpu, 64, 64, 25); // hit: observer re-enters
        assert_eq!(baseline, hit, "re-entrant observation changed the plan");
        let (_, fused) = planner.plan_fused(&gpu, 64, 64, 25, 4); // fused miss
        let (_, fused2) = planner.plan_fused(&gpu, 64, 64, 25, 4); // fused hit
        assert_eq!(fused, fused2);
        assert!(
            obs.reentered.load(Ordering::Relaxed) >= 2,
            "observer never actually re-entered the planner"
        );
    }

    #[test]
    fn memoization_hits() {
        let planner = Planner::new();
        let gpu = Gpu::v100();
        let a = planner.plan(&gpu, 64, 64, 25);
        let b = planner.plan(&gpu, 64, 64, 25);
        assert_eq!(a, b);
        assert_eq!(planner.cached_plans(), 1);
        planner.plan(&gpu, 64, 64, 80); // deeper target: new plan
        assert_eq!(planner.cached_plans(), 2);
        // the direct baseline caches separately, never clobbering the
        // searched plan
        let d = planner.plan_direct(&gpu, 64, 64, 25);
        assert!(d.is_direct());
        assert_eq!(planner.plan(&gpu, 64, 64, 25), a);
    }
}
