//! The planner: cost-model-driven autotuning of one solve.
//!
//! For a job `(m, n, target digits)` on a given device model the planner
//! picks
//!
//! * the **precision rung** — cheapest of d → dd → qd → od that covers
//!   the accuracy target ([`Precision::for_digits`]);
//! * the **tiling** `(N, n)` with `N · n = cols` — by *running the
//!   analytic cost model* ([`mdls_core::lstsq_model_profiles_rect`]) for
//!   every candidate tiling and keeping the cheapest predicted wall
//!   clock. The model already encodes the real trade-offs: small tiles
//!   pay `1 + N(N+1)/2` launch gaps, oversized tiles lose occupancy
//!   past the device's threads-per-block sweet spot, and the precision
//!   rung moves kernels across the roofline's memory/compute boundary —
//!   so the winning tiling legitimately differs per shape and device.
//!
//! Plans are memoized per `(device, rows, cols, precision)`: a batch of
//! thousands of same-shaped jobs plans once.

use std::collections::HashMap;
use std::sync::Mutex;

use gpusim::{ExecMode, Gpu};
use mdls_core::{lstsq_model_profiles_rect, LstsqOptions};
use multidouble::{Dd, MdScalar, Od, Qd};

use crate::job::Precision;

/// A fully planned solve configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Plan {
    /// Chosen precision rung.
    pub precision: Precision,
    /// Number of tiles `N`.
    pub tiles: usize,
    /// Tile size `n` (threads per block).
    pub tile_size: usize,
    /// Model-predicted wall clock of the solve on the target device, ms.
    pub predicted_ms: f64,
    /// Model-predicted kernel time (the paper's "all kernels" row), ms.
    pub predicted_kernel_ms: f64,
    /// Table 1 flops of the solve (device independent).
    pub flops_paper: f64,
}

impl Plan {
    /// Solver options realizing this plan.
    pub fn options(&self, mode: ExecMode) -> LstsqOptions {
        LstsqOptions::tiled(self.tiles, self.tile_size, mode)
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    device: &'static str,
    /// Timing-model fingerprint: `Gpu` fields are public, so two
    /// same-named devices may carry different calibration constants
    /// (e.g. a derated clone) and must not share cached plans.
    device_fp: u64,
    rows: usize,
    cols: usize,
    precision: Precision,
}

/// Mix every timing-relevant device constant into one word.
fn device_fingerprint(gpu: &Gpu) -> u64 {
    let mut h: u64 = gpu.multiprocessors as u64 ^ ((gpu.cores_per_mp as u64) << 16);
    for f in [
        gpu.ghz,
        gpu.peak_dp_gflops,
        gpu.mem_bw_gbs,
        gpu.pcie_gbs,
        gpu.host_ram_gb,
        gpu.launch_gap_us,
        gpu.kernel_base_us,
        gpu.mem_eff,
        gpu.ilp_base,
        gpu.ilp_slope,
        gpu.host_overhead_ms,
    ] {
        h = h.rotate_left(7) ^ f.to_bits();
    }
    h
}

/// A memoizing planner. One planner is shared by a whole batch run.
#[derive(Default)]
pub struct Planner {
    cache: Mutex<HashMap<PlanKey, Plan>>,
}

/// Hard ceiling on the tile size: one tile is one thread block, and no
/// modeled device launches blocks wider than CUDA's 1024-thread limit.
pub const MAX_TILE_SIZE: usize = 1024;

/// Candidate tile sizes, largest first. Only divisors of the column
/// count are usable (the tiling must satisfy `N · n = cols` exactly),
/// and no candidate exceeds [`MAX_TILE_SIZE`]; the single-tile
/// configuration is a candidate whenever it fits in one block.
pub fn tile_candidates(cols: usize) -> Vec<usize> {
    const PREFERRED: [usize; 16] = [256, 192, 128, 96, 64, 48, 32, 24, 16, 12, 8, 6, 4, 3, 2, 1];
    let mut v: Vec<usize> = PREFERRED
        .into_iter()
        .filter(|&d| d <= cols && cols.is_multiple_of(d))
        .collect();
    if cols <= MAX_TILE_SIZE && !v.contains(&cols) {
        v.insert(0, cols); // one tile of all columns
    }
    // tile size 1 always divides, so the list is never empty
    v.truncate(8);
    v
}

/// Model prediction for one candidate: `(wall ms, kernel ms, flops)`.
fn predict(gpu: &Gpu, precision: Precision, rows: usize, opts: &LstsqOptions) -> (f64, f64, f64) {
    fn run<S: MdScalar>(gpu: &Gpu, rows: usize, opts: &LstsqOptions) -> (f64, f64, f64) {
        let (qr, bs) = lstsq_model_profiles_rect::<S>(gpu, rows, opts);
        (
            qr.wall_ms() + bs.wall_ms(),
            qr.all_kernels_ms() + bs.all_kernels_ms(),
            qr.total_flops_paper() + bs.total_flops_paper(),
        )
    }
    match precision {
        Precision::D1 => run::<f64>(gpu, rows, opts),
        Precision::D2 => run::<Dd>(gpu, rows, opts),
        Precision::D4 => run::<Qd>(gpu, rows, opts),
        Precision::D8 => run::<Od>(gpu, rows, opts),
    }
}

impl Planner {
    /// Fresh planner with an empty memo table.
    pub fn new() -> Self {
        Planner::default()
    }

    /// Plan a solve of a `rows × cols` system to `target_digits` on
    /// device `gpu`.
    pub fn plan(&self, gpu: &Gpu, rows: usize, cols: usize, target_digits: u32) -> Plan {
        assert!(cols > 0, "cannot plan an empty system");
        assert!(rows >= cols, "least squares needs rows >= cols");
        let precision = Precision::for_digits(target_digits);
        let key = PlanKey {
            device: gpu.name,
            device_fp: device_fingerprint(gpu),
            rows,
            cols,
            precision,
        };
        if let Some(p) = self.cache.lock().unwrap().get(&key) {
            return *p;
        }
        let plan = plan_uncached(gpu, rows, cols, precision);
        self.cache.lock().unwrap().insert(key, plan);
        plan
    }

    /// Number of distinct plans computed so far.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().unwrap().len()
    }
}

fn plan_uncached(gpu: &Gpu, rows: usize, cols: usize, precision: Precision) -> Plan {
    let mut best: Option<Plan> = None;
    for tile_size in tile_candidates(cols) {
        let tiles = cols / tile_size;
        let opts = LstsqOptions::tiled(tiles, tile_size, ExecMode::ModelOnly);
        let (ms, kernel_ms, flops) = predict(gpu, precision, rows, &opts);
        if best.map(|b| ms < b.predicted_ms).unwrap_or(true) {
            best = Some(Plan {
                precision,
                tiles,
                tile_size,
                predicted_ms: ms,
                predicted_kernel_ms: kernel_ms,
                flops_paper: flops,
            });
        }
    }
    best.expect("tile_candidates is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_tile_exactly() {
        for cols in [1, 7, 24, 96, 128, 1000, 1366, 2048] {
            let c = tile_candidates(cols);
            assert!(!c.is_empty(), "no candidates for {cols}");
            for ts in c {
                assert_eq!(cols % ts, 0, "{ts} does not tile {cols}");
                assert!(ts <= MAX_TILE_SIZE, "tile {ts} exceeds a thread block");
            }
        }
    }

    #[test]
    fn no_plan_exceeds_the_block_limit() {
        // 1366 = 2 * 683: the only launchable tilings are narrow; the
        // planner must not fabricate a 1366-thread block
        let plan = Planner::new().plan(&Gpu::v100(), 1366, 1366, 25);
        assert!(plan.tile_size <= MAX_TILE_SIZE);
        assert_eq!(plan.tiles * plan.tile_size, 1366);
    }

    #[test]
    fn same_name_different_constants_do_not_share_plans() {
        let planner = Planner::new();
        let v100 = Gpu::v100();
        let mut derated = Gpu::v100();
        derated.peak_dp_gflops /= 4.0;
        derated.mem_bw_gbs /= 4.0;
        let a = planner.plan(&v100, 128, 128, 25);
        let b = planner.plan(&derated, 128, 128, 25);
        assert_eq!(planner.cached_plans(), 2, "derated clone hit the cache");
        assert!(
            b.predicted_ms > a.predicted_ms,
            "derated V100 predicted no slower: {} vs {}",
            b.predicted_ms,
            a.predicted_ms
        );
    }

    #[test]
    fn plan_is_cheapest_candidate() {
        let gpu = Gpu::v100();
        let plan = Planner::new().plan(&gpu, 96, 96, 25);
        assert_eq!(plan.precision, Precision::D2);
        assert_eq!(plan.tiles * plan.tile_size, 96);
        for ts in tile_candidates(96) {
            let opts = LstsqOptions::tiled(96 / ts, ts, ExecMode::ModelOnly);
            let (ms, _, _) = predict(&gpu, Precision::D2, 96, &opts);
            assert!(
                plan.predicted_ms <= ms + 1e-12,
                "tiling {}x{ts} beats the plan ({ms} < {})",
                96 / ts,
                plan.predicted_ms
            );
        }
    }

    #[test]
    fn plans_differ_across_shapes() {
        // the acceptance bar: the cost model must steer different job
        // shapes to different tile configurations
        let gpu = Gpu::v100();
        let planner = Planner::new();
        let small = planner.plan(&gpu, 24, 24, 25);
        let large = planner.plan(&gpu, 768, 768, 25);
        assert_ne!(
            (small.tiles, small.tile_size),
            (large.tiles, large.tile_size),
            "planner chose one tiling for very different shapes"
        );
    }

    #[test]
    fn memoization_hits() {
        let planner = Planner::new();
        let gpu = Gpu::v100();
        let a = planner.plan(&gpu, 64, 64, 25);
        let b = planner.plan(&gpu, 64, 64, 20); // same rung
        assert_eq!(a, b);
        assert_eq!(planner.cached_plans(), 1);
        planner.plan(&gpu, 64, 64, 80); // deeper rung: new plan
        assert_eq!(planner.cached_plans(), 2);
    }

    #[test]
    fn prime_dimension_degrades_gracefully() {
        let plan = Planner::new().plan(&Gpu::v100(), 37, 37, 10);
        assert_eq!(plan.tiles * plan.tile_size, 37);
        assert_eq!(plan.precision, Precision::D1);
    }
}
