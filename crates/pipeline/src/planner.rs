//! The planner: cost-model-driven autotuning of one solve.
//!
//! For a job `(m, n, target digits)` on a given device model the planner
//! picks
//!
//! * the **precision rung** — cheapest of d → dd → qd → od that covers
//!   the accuracy target ([`Precision::for_digits`]);
//! * the **tiling** `(N, n)` with `N · n = cols` — by *running the
//!   analytic cost model* ([`mdls_core::lstsq_model_profiles_rect`]) for
//!   every candidate tiling and keeping the cheapest predicted wall
//!   clock. The model already encodes the real trade-offs: small tiles
//!   pay `1 + N(N+1)/2` launch gaps, oversized tiles lose occupancy
//!   past the device's threads-per-block sweet spot, and the precision
//!   rung moves kernels across the roofline's memory/compute boundary —
//!   so the winning tiling legitimately differs per shape and device.
//!
//! **Placement invariance.** The tiling is *numerics-determining*: the
//! tiled back substitution inverts diagonal tiles, so two tilings of
//! the same system round differently. The planner therefore autotunes
//! the tiling once per `(rows, cols, precision)` on a fixed reference
//! model (the paper's V100) and reuses that tiling on every device,
//! predicting only the *timing* per device model. A job's solution is
//! then bit-identical no matter which device the scheduler picks —
//! the guarantee the scheduling policies and the priority stream rely
//! on. (Originally the tiling was re-tuned per device, which silently
//! broke that guarantee on heterogeneous pools: a 24×24 8d job tiled
//! 3×8 on a V100 but 2×12 on a P100, with different bits.)
//!
//! Plans are memoized per `(device, rows, cols, precision)`: a batch of
//! thousands of same-shaped jobs plans once.

use std::collections::HashMap;
use std::sync::Mutex;

use gpusim::{ExecMode, Gpu};
use mdls_core::{lstsq_model_profiles_rect, LstsqOptions};
use multidouble::{Dd, MdScalar, Od, Qd};

use crate::job::Precision;

/// A fully planned solve configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Plan {
    /// Chosen precision rung.
    pub precision: Precision,
    /// Number of tiles `N`.
    pub tiles: usize,
    /// Tile size `n` (threads per block).
    pub tile_size: usize,
    /// Model-predicted wall clock of the solve on the target device, ms.
    pub predicted_ms: f64,
    /// Model-predicted kernel time (the paper's "all kernels" row), ms.
    pub predicted_kernel_ms: f64,
    /// Table 1 flops of the solve (device independent).
    pub flops_paper: f64,
}

impl Plan {
    /// Solver options realizing this plan.
    pub fn options(&self, mode: ExecMode) -> LstsqOptions {
        LstsqOptions::tiled(self.tiles, self.tile_size, mode)
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    device: &'static str,
    /// Timing-model fingerprint: `Gpu` fields are public, so two
    /// same-named devices may carry different calibration constants
    /// (e.g. a derated clone) and must not share cached plans.
    device_fp: u64,
    rows: usize,
    cols: usize,
    precision: Precision,
}

/// Mix every timing-relevant device constant into one word.
fn device_fingerprint(gpu: &Gpu) -> u64 {
    let mut h: u64 = gpu.multiprocessors as u64 ^ ((gpu.cores_per_mp as u64) << 16);
    for f in [
        gpu.ghz,
        gpu.peak_dp_gflops,
        gpu.mem_bw_gbs,
        gpu.pcie_gbs,
        gpu.host_ram_gb,
        gpu.launch_gap_us,
        gpu.kernel_base_us,
        gpu.mem_eff,
        gpu.ilp_base,
        gpu.ilp_slope,
        gpu.host_overhead_ms,
    ] {
        h = h.rotate_left(7) ^ f.to_bits();
    }
    h
}

/// A canonical tiling choice `(tiles, tile_size)`, keyed by
/// `(rows, cols, precision)` — device-free, because the tiling fixes
/// the arithmetic (see module docs).
type TilingMemo = HashMap<(usize, usize, Precision), (usize, usize)>;

/// A memoizing planner. One planner is shared by a whole batch run.
pub struct Planner {
    cache: Mutex<HashMap<PlanKey, Plan>>,
    tilings: Mutex<TilingMemo>,
    /// The numerics reference model the tiling is tuned on.
    reference: Gpu,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new()
    }
}

/// Hard ceiling on the tile size: one tile is one thread block, and no
/// modeled device launches blocks wider than CUDA's 1024-thread limit.
pub const MAX_TILE_SIZE: usize = 1024;

/// Candidate tile sizes: *every* divisor of the column count up to
/// [`MAX_TILE_SIZE`], largest first. Only divisors are usable (the
/// tiling must satisfy `N · n = cols` exactly), and no candidate
/// exceeds the block limit; the single-tile configuration is a
/// candidate whenever it fits in one block.
///
/// A fixed preferred-size list is not enough: `cols = 1366 = 2 · 683`
/// has the perfectly launchable 683-wide tile that no power-of-two-ish
/// shortlist contains, leaving only {2, 1} and a silently terrible
/// plan. Divisor enumeration is O(min(cols, 1024)) per *uncached* plan
/// — noise next to the model evaluations it feeds.
pub fn tile_candidates(cols: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (1..=cols.min(MAX_TILE_SIZE))
        .filter(|&d| cols.is_multiple_of(d))
        .rev()
        .collect();
    // tile size 1 always divides, so the list is never empty; keep the
    // search bounded for highly composite widths (divisors are already
    // largest-first, and the model never favors the tiniest tiles)
    v.truncate(24);
    v
}

/// Model prediction for one candidate: `(wall ms, kernel ms, flops)`.
fn predict(gpu: &Gpu, precision: Precision, rows: usize, opts: &LstsqOptions) -> (f64, f64, f64) {
    fn run<S: MdScalar>(gpu: &Gpu, rows: usize, opts: &LstsqOptions) -> (f64, f64, f64) {
        let (qr, bs) = lstsq_model_profiles_rect::<S>(gpu, rows, opts);
        (
            qr.wall_ms() + bs.wall_ms(),
            qr.all_kernels_ms() + bs.all_kernels_ms(),
            qr.total_flops_paper() + bs.total_flops_paper(),
        )
    }
    match precision {
        Precision::D1 => run::<f64>(gpu, rows, opts),
        Precision::D2 => run::<Dd>(gpu, rows, opts),
        Precision::D4 => run::<Qd>(gpu, rows, opts),
        Precision::D8 => run::<Od>(gpu, rows, opts),
    }
}

impl Planner {
    /// Fresh planner with an empty memo table, tuning tilings on the
    /// paper's V100 reference model.
    pub fn new() -> Self {
        Planner::with_reference(Gpu::v100())
    }

    /// Fresh planner tuning tilings on an explicit reference model.
    /// Every planner sharing a reference produces the same tilings —
    /// and therefore the same bits — for the same jobs.
    pub fn with_reference(reference: Gpu) -> Self {
        Planner {
            cache: Mutex::new(HashMap::new()),
            tilings: Mutex::new(HashMap::new()),
            reference,
        }
    }

    /// Plan a solve of a `rows × cols` system to `target_digits` on
    /// device `gpu`: the canonical (device-free) tiling, timed for
    /// `gpu`'s model.
    pub fn plan(&self, gpu: &Gpu, rows: usize, cols: usize, target_digits: u32) -> Plan {
        assert!(cols > 0, "cannot plan an empty system");
        assert!(rows >= cols, "least squares needs rows >= cols");
        let precision = Precision::for_digits(target_digits);
        let key = PlanKey {
            device: gpu.name,
            device_fp: device_fingerprint(gpu),
            rows,
            cols,
            precision,
        };
        if let Some(p) = self.cache.lock().unwrap().get(&key) {
            return *p;
        }
        // compute outside the lock (model evaluation is the slow part;
        // holding the mutex here would serialize all concurrent
        // planning), then insert through `entry` so a racing thread's
        // in-flight result is never clobbered — the old blind insert
        // overwrote it. Racing threads may duplicate the computation,
        // but plans are deterministic, so whichever lands first wins
        // and both callers return the cached entry.
        let (tiles, tile_size) = self.tiling(rows, cols, precision);
        let opts = LstsqOptions::tiled(tiles, tile_size, ExecMode::ModelOnly);
        let (ms, kernel_ms, flops) = predict(gpu, precision, rows, &opts);
        let plan = Plan {
            precision,
            tiles,
            tile_size,
            predicted_ms: ms,
            predicted_kernel_ms: kernel_ms,
            flops_paper: flops,
        };
        *self.cache.lock().unwrap().entry(key).or_insert(plan)
    }

    /// The canonical tiling `(tiles, tile_size)` for a shape and rung:
    /// the cheapest candidate on the reference model, memoized (same
    /// compute-outside-the-lock discipline as the plan cache).
    fn tiling(&self, rows: usize, cols: usize, precision: Precision) -> (usize, usize) {
        let key = (rows, cols, precision);
        if let Some(t) = self.tilings.lock().unwrap().get(&key) {
            return *t;
        }
        let mut best: Option<(f64, usize)> = None;
        for tile_size in tile_candidates(cols) {
            let tiles = cols / tile_size;
            let opts = LstsqOptions::tiled(tiles, tile_size, ExecMode::ModelOnly);
            let (ms, _, _) = predict(&self.reference, precision, rows, &opts);
            if best.map(|(b, _)| ms < b).unwrap_or(true) {
                best = Some((ms, tile_size));
            }
        }
        let (_, tile_size) = best.expect("tile_candidates is never empty");
        *self
            .tilings
            .lock()
            .unwrap()
            .entry(key)
            .or_insert((cols / tile_size, tile_size))
    }

    /// Number of distinct plans computed so far.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_tile_exactly() {
        for cols in [1, 7, 24, 96, 128, 1000, 1366, 2048] {
            let c = tile_candidates(cols);
            assert!(!c.is_empty(), "no candidates for {cols}");
            for ts in c {
                assert_eq!(cols % ts, 0, "{ts} does not tile {cols}");
                assert!(ts <= MAX_TILE_SIZE, "tile {ts} exceeds a thread block");
            }
        }
    }

    #[test]
    fn wide_prime_factors_are_not_skipped() {
        // regression: the preferred-size shortlist proposed only {2, 1}
        // for 1366 = 2 * 683, silently skipping the launchable 683-wide
        // tile (683 <= MAX_TILE_SIZE)
        let c = tile_candidates(1366);
        assert!(c.contains(&683), "683 missing from {c:?}");
        assert_eq!(c, vec![683, 2, 1]);
        // and the planner actually prefers it: 2 wide tiles beat 683
        // launch-gap-dominated 2-wide ones
        let plan = Planner::new().plan(&Gpu::v100(), 1366, 1366, 25);
        assert_eq!(plan.tile_size, 683);
    }

    #[test]
    fn concurrent_planning_caches_once() {
        // regression: plan() took the memo lock twice (get, then
        // insert), so racing callers recomputed and re-inserted the
        // same key; with the entry API the cache holds exactly one
        // entry per key no matter the interleaving
        let planner = Planner::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..4 {
                        let p = planner.plan(&Gpu::v100(), 96, 96, 25);
                        assert_eq!(p.tiles * p.tile_size, 96);
                        let q = planner.plan(&Gpu::a100(), 128, 128, 50);
                        assert_eq!(q.tiles * q.tile_size, 128);
                    }
                });
            }
        });
        assert_eq!(planner.cached_plans(), 2, "racing planners duplicated work");
    }

    #[test]
    fn no_plan_exceeds_the_block_limit() {
        // 1366 = 2 * 683: the only launchable tilings are narrow; the
        // planner must not fabricate a 1366-thread block
        let plan = Planner::new().plan(&Gpu::v100(), 1366, 1366, 25);
        assert!(plan.tile_size <= MAX_TILE_SIZE);
        assert_eq!(plan.tiles * plan.tile_size, 1366);
    }

    #[test]
    fn same_name_different_constants_do_not_share_plans() {
        let planner = Planner::new();
        let v100 = Gpu::v100();
        let mut derated = Gpu::v100();
        derated.peak_dp_gflops /= 4.0;
        derated.mem_bw_gbs /= 4.0;
        let a = planner.plan(&v100, 128, 128, 25);
        let b = planner.plan(&derated, 128, 128, 25);
        assert_eq!(planner.cached_plans(), 2, "derated clone hit the cache");
        assert!(
            b.predicted_ms > a.predicted_ms,
            "derated V100 predicted no slower: {} vs {}",
            b.predicted_ms,
            a.predicted_ms
        );
    }

    #[test]
    fn plan_is_cheapest_candidate() {
        let gpu = Gpu::v100();
        let plan = Planner::new().plan(&gpu, 96, 96, 25);
        assert_eq!(plan.precision, Precision::D2);
        assert_eq!(plan.tiles * plan.tile_size, 96);
        for ts in tile_candidates(96) {
            let opts = LstsqOptions::tiled(96 / ts, ts, ExecMode::ModelOnly);
            let (ms, _, _) = predict(&gpu, Precision::D2, 96, &opts);
            assert!(
                plan.predicted_ms <= ms + 1e-12,
                "tiling {}x{ts} beats the plan ({ms} < {})",
                96 / ts,
                plan.predicted_ms
            );
        }
    }

    #[test]
    fn plans_differ_across_shapes() {
        // the acceptance bar: the cost model must steer different job
        // shapes to different tile configurations
        let gpu = Gpu::v100();
        let planner = Planner::new();
        let small = planner.plan(&gpu, 24, 24, 25);
        let large = planner.plan(&gpu, 768, 768, 25);
        assert_ne!(
            (small.tiles, small.tile_size),
            (large.tiles, large.tile_size),
            "planner chose one tiling for very different shapes"
        );
    }

    #[test]
    fn tiling_is_placement_invariant() {
        // regression: per-device tiling tuning gave a 24x24 8d job a
        // 3x8 tiling on the V100 but 2x12 on the P100 — different
        // arithmetic, different bits, on whatever device the scheduler
        // happened to pick. The canonical tiling must match across
        // devices (timing may differ).
        let planner = Planner::new();
        for (rows, cols, digits) in [(24, 24, 100), (16, 16, 25), (96, 96, 50), (128, 96, 12)] {
            let v = planner.plan(&Gpu::v100(), rows, cols, digits);
            let p = planner.plan(&Gpu::p100(), rows, cols, digits);
            let a = planner.plan(&Gpu::a100(), rows, cols, digits);
            assert_eq!(
                (v.tiles, v.tile_size),
                (p.tiles, p.tile_size),
                "{rows}x{cols} d{digits}: V100/P100 tilings differ"
            );
            assert_eq!((v.tiles, v.tile_size), (a.tiles, a.tile_size));
            assert_ne!(v.predicted_ms, p.predicted_ms, "timing should differ");
        }
    }

    #[test]
    fn memoization_hits() {
        let planner = Planner::new();
        let gpu = Gpu::v100();
        let a = planner.plan(&gpu, 64, 64, 25);
        let b = planner.plan(&gpu, 64, 64, 20); // same rung
        assert_eq!(a, b);
        assert_eq!(planner.cached_plans(), 1);
        planner.plan(&gpu, 64, 64, 80); // deeper rung: new plan
        assert_eq!(planner.cached_plans(), 2);
    }

    #[test]
    fn prime_dimension_degrades_gracefully() {
        let plan = Planner::new().plan(&Gpu::v100(), 37, 37, 10);
        assert_eq!(plan.tiles * plan.tile_size, 37);
        assert_eq!(plan.precision, Precision::D1);
    }
}
