//! Batched multi-GPU least squares solve pipeline.
//!
//! The paper's target workloads — polynomial homotopy path tracking and
//! power-flow embeddings — issue *millions of small solves*, not one
//! big one. This crate turns the workspace's single-solve stack
//! (`gpusim` + `mdls-qr` + `mdls-backsub` + `mdls-core`) into a solve
//! *service* with three layers:
//!
//! 1. **Planner** ([`planner`], [`plan`]) — per job `(m, n, target
//!    digits)`, *searches* over staged [`ExecPlan`]s: direct solves at
//!    every sufficient rung of the d → dd → qd → od ladder, and
//!    mixed-precision refinement plans (factor at a cheap rung, then
//!    iterate residual-at-the-target-rung / correct-through-the-reused-
//!    factorization until the digits are met). Stage profiles come from
//!    the analytic cost models and compose via `Profile::absorb`; the
//!    cheapest predicted wall clock wins. Plan *structure* is tuned on a
//!    reference device model so solutions stay placement-invariant;
//!    plans are memoized per shape, target and device.
//! 2. **Device pool + scheduler** ([`pool`], [`scheduler`]) — N
//!    simulated GPUs (`Gpu::v100()`, `Gpu::a100()`, …, cloned or
//!    mixed), each with a simulated-time clock; queued jobs dispatch
//!    under a pluggable [`DispatchPolicy`] — greedy least-loaded, or
//!    shortest-expected-completion for heterogeneous pools — and the
//!    pool aggregates solves/sec, gigaflops and utilization per device.
//! 3. **Batched API** ([`batch`], [`stream`]) — [`solve_batch`] for a
//!    whole queue at once (host worker threads shorten real wall time;
//!    simulated timing is unaffected), [`solve_stream`] as the lazy,
//!    iterator-style variant for live queues, and
//!    [`solve_stream_with`] adding a priority/deadline reorder buffer
//!    (corrector solves overtake speculative predictor solves) plus
//!    policy selection.
//! 4. **Device micro-batching** ([`microbatch`]) — the paper's small
//!    systems underfill one GPU; jobs sharing a shape key fuse into
//!    batched launch sequences sized at the occupancy sweet spot,
//!    booking one fused profile per group instead of `k` singletons
//!    (40–60× predicted per-job gain on 32–128-unknown d/dd shapes).
//!    Fusion is **on by default** in [`solve_batch`] and
//!    [`solve_stream`]; [`MicrobatchConfig::off`] restores per-job
//!    launches. Stream fusion takes drain-order prefixes only (shrunk
//!    further when the front member's deadline is tight), so
//!    priority/deadline ordering is preserved; every member job keeps
//!    its own outcome, bit-identical to the unfused path. Refinement
//!    passes stop adaptively once the measured residual certifies the
//!    target, with the unused booked time refunded to the pool
//!    ([`DevicePool::reconcile`]).
//! 5. **Stage-level scheduling** ([`pool`] timelines,
//!    [`StageSchedConfig`], [`solve_batch_staged`],
//!    [`solve_stream_staged`]) — bookings are per *stage*, not per
//!    plan, split into a prep lane (host overhead + PCIe) and a
//!    compute lane (kernels + gaps) per device: the next job's
//!    factorization prep books under the current job's
//!    residual/correct passes (40%+ makespan cuts on refinement-heavy
//!    mixes), SECT costs completion by previewing the booking on each
//!    device's timeline, and adaptive early stops are **re-booked
//!    online** ([`DevicePool::rebook`]) so queued dispatches use the
//!    freed time — under [`RebookMode::Compact`] they *slide left*
//!    into mid-schedule holes. Each lane is a real interval list
//!    ([`Timeline`]): placement searches gaps, not just the tail, and
//!    host prep is a pool-wide resource ([`HostStagingPool`] — `k`
//!    CPU staging workers feed all devices). The planner books its
//!    *expected* pass count and
//!    the engine extends stalled jobs pass by pass until the measured
//!    residual certifies the target ([`Job::release_ms`] models bursty
//!    arrivals along the way). Booking modes move work through
//!    simulated time only — bits stay identical across all of them.
//! 6. **Fault tolerance & admission** ([`resilient`]) — each pooled
//!    device may carry a seeded [`gpusim::FaultPlan`] (transient
//!    kernel faults and a sticky `DeviceLost` threshold; pure data, no
//!    clocks or entropy). [`solve_batch_resilient`] previews every
//!    deadlined job at ingress and sheds or down-ladders unmeetable
//!    requests, re-plans work interrupted by a device loss onto the
//!    survivors ([`DevicePool::fail_device`] turns the dead device's
//!    unexecuted spans into refunds), and books bounded, backed-off
//!    replays for transient faults. Every job ends in an explicit
//!    [`Disposition`]; completed jobs are bit-identical to the
//!    fault-free run.
//! 7. **Multi-tenant service shell** ([`service`]) — [`serve`] fronts
//!    the staged engines for many callers at once: per-tenant
//!    *bounded* ingress queues with a [`Backpressure`] policy,
//!    deficit-round-robin weighted-fair dispatch with token-bucket
//!    quotas in predicted device-ms (settle-time refunds credit the
//!    bucket back), an overload ladder that sheds or down-ladders the
//!    cheapest [`SloClass`] first, and per-device circuit breakers
//!    keyed off each device's transient-fault rate (quarantine via
//!    [`DevicePool::fail_device`], probe-based re-admission after a
//!    seeded backoff). Entirely simulated time; bit- and
//!    schedule-deterministic across runs and host worker counts.
//!
//! Policies and priorities move jobs across devices and through time;
//! they never change numerics — every outcome stays bit-identical to
//! interpreting the same staged plan sequentially (and, for direct
//! plans, to a plain [`mdls_core::lstsq`] call). Outcomes report the
//! digits their measured residual certifies plus the per-stage
//! predicted breakdown of the plan they ran under.
//!
//! **Observability** ([`mdls_obs`], re-exported as `obs` from the
//! workspace root): attach any [`mdls_obs::Observer`] to a pool via
//! [`DevicePool::attach_observer`] and every layer — planner cache and
//! search, SECT previews, stage bookings, refunds, holds, extensions,
//! settlements — emits typed events through it. With no observer
//! attached (the default) no event is even constructed; observation
//! never changes solutions or simulated timing.
//!
//! ```
//! use gpusim::Gpu;
//! use mdls_pipeline::{power_flow_jobs, solve_batch, DevicePool};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let jobs = power_flow_jobs(32, &mut rng);
//! let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
//! let report = solve_batch(&mut pool, &jobs);
//! assert_eq!(report.outcomes.len(), 32);
//! assert!(report.outcomes.iter().all(|o| o.residual < 1e-10));
//! assert!(report.solves_per_sec > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod batch;
pub mod job;
pub mod microbatch;
pub mod plan;
pub mod planner;
pub mod pool;
pub mod resilient;
pub mod scheduler;
pub mod service;
pub mod stream;
pub mod workload;

pub use batch::{
    digits_from_residual, latency_summary, promoted_cache_stats, promoted_cache_warm_insert,
    solve_batch, solve_batch_fused, solve_batch_fused_with, solve_batch_policy, solve_batch_staged,
    solve_batch_staged_with, solve_batch_with, solve_planned, solve_planned_fused,
    solve_planned_fused_with, solve_planned_traced, solve_planned_traced_with, BatchReport,
    Disposition, JobOutcome, LatencySummary, PlannedSolve,
};
pub use job::{Job, Precision, SloClass, Solution, TenantId};
pub use microbatch::{
    dispatch_group, dispatch_group_at, dispatch_group_staged, plan_groups, schedule_groups,
    schedule_staged, GroupDispatch, MicrobatchConfig,
};
pub use plan::{ExecPlan, FusedProfile, PlannedStage, Stage};
pub use planner::{plan_cache_stats, PlanCacheStats, Planner};
pub use pool::{
    DeviceLossReport, DevicePool, DeviceStats, HostStagingPool, PoolDevice, RebookMode,
    StageBooking, StageInterval, StageRefund, StageReq, Timeline,
};
pub use resilient::{solve_batch_resilient, AdmissionConfig, RecoveryPolicy, ResilienceConfig};
pub use scheduler::{dispatch_one, schedule, Dispatch, DispatchPolicy, JobShape, StageSchedConfig};
pub use service::{
    serve, Backpressure, BreakerConfig, BreakerSummary, ClassSummary, ExecutionMode,
    OverloadConfig, QuotaSpec, ServiceConfig, ServicePolicy, ServiceReport, TenantSpec,
    TenantSummary,
};
pub use stream::{
    solve_stream, solve_stream_admitted, solve_stream_fused, solve_stream_staged,
    solve_stream_with, BatchStream,
};
pub use workload::{
    bursty_tracker_jobs, jobs_for_shapes, power_flow_jobs, refinement_mix, tracker_jobs,
    workload_mix,
};
