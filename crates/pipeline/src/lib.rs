//! Batched multi-GPU least squares solve pipeline.
//!
//! The paper's target workloads — polynomial homotopy path tracking and
//! power-flow embeddings — issue *millions of small solves*, not one
//! big one. This crate turns the workspace's single-solve stack
//! (`gpusim` + `mdls-qr` + `mdls-backsub` + `mdls-core`) into a solve
//! *service* with three layers:
//!
//! 1. **Planner** ([`planner`]) — per job `(m, n, target digits,
//!    device model)`, picks the precision rung of the d → dd → qd → od
//!    ladder and the QR/back-substitution tiling by evaluating the
//!    existing analytic cost models, instead of the seed's hard-coded
//!    `LstsqOptions`. Plans are memoized per shape and device.
//! 2. **Device pool + scheduler** ([`pool`], [`scheduler`]) — N
//!    simulated GPUs (`Gpu::v100()`, `Gpu::a100()`, …, cloned or
//!    mixed), each with a simulated-time clock; queued jobs dispatch
//!    under a pluggable [`DispatchPolicy`] — greedy least-loaded, or
//!    shortest-expected-completion for heterogeneous pools — and the
//!    pool aggregates solves/sec, gigaflops and utilization per device.
//! 3. **Batched API** ([`batch`], [`stream`]) — [`solve_batch`] for a
//!    whole queue at once (host worker threads shorten real wall time;
//!    simulated timing is unaffected), [`solve_stream`] as the lazy,
//!    iterator-style variant for live queues, and
//!    [`solve_stream_with`] adding a priority/deadline reorder buffer
//!    (corrector solves overtake speculative predictor solves) plus
//!    policy selection.
//!
//! Policies and priorities move jobs across devices and through time;
//! they never change numerics — every outcome stays bit-identical to a
//! sequential [`mdls_core::lstsq`] call under the same plan.
//!
//! ```
//! use gpusim::Gpu;
//! use mdls_pipeline::{power_flow_jobs, solve_batch, DevicePool};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let jobs = power_flow_jobs(32, &mut rng);
//! let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
//! let report = solve_batch(&mut pool, &jobs);
//! assert_eq!(report.outcomes.len(), 32);
//! assert!(report.outcomes.iter().all(|o| o.residual < 1e-10));
//! assert!(report.solves_per_sec > 0.0);
//! ```

pub mod batch;
pub mod job;
pub mod planner;
pub mod pool;
pub mod scheduler;
pub mod stream;
pub mod workload;

pub use batch::{
    solve_batch, solve_batch_policy, solve_batch_with, solve_planned, BatchReport, JobOutcome,
};
pub use job::{Job, Precision, Solution};
pub use planner::{Plan, Planner};
pub use pool::{DevicePool, DeviceStats, PoolDevice};
pub use scheduler::{dispatch_one, schedule, Dispatch, DispatchPolicy, JobShape};
pub use stream::{solve_stream, solve_stream_with, BatchStream};
pub use workload::{power_flow_jobs, tracker_jobs, workload_mix};
