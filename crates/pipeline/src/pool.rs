//! The device pool: N simulated GPUs with per-device simulated-time
//! interval timelines and throughput aggregates.
//!
//! The pool is the pipeline's model of a multi-GPU server: every device
//! owns a pair of timelines in *simulated* milliseconds (the analytic
//! timing model's currency, not host wall time). Dispatching a job
//! books intervals on the chosen device; the batch makespan is the
//! maximum timeline end over the pool, and throughput is solves per
//! simulated second of makespan.
//!
//! ## Interval-list timelines
//!
//! Each device lane is a [`Timeline`]: a sorted, disjoint list of
//! `(start, end)` intervals rather than a single cursor. Placement
//! searches *gaps* — [`Timeline::earliest_fit`] returns the earliest
//! admissible start, which may sit mid-schedule inside a hole an
//! adaptive early stop left behind — so previews
//! ([`DevicePool::preview_stages`], [`DevicePool::preview_wall`]) and
//! commits agree on gap-filling placement.
//!
//! A booking splits each stage across two *lanes* per device —
//!
//! * the **prep lane** (host-side overhead + PCIe transfers of a launch
//!   sequence: promotion, pinned-buffer staging, uploads), and
//! * the **compute lane** (kernel time + launch gaps).
//!
//! Within one stage the prep part completes before the compute part
//! starts (a stage's uploads feed its kernels), and a job's stages run
//! in order. *Across* jobs the lanes are independent: with overlap
//! enabled, the next job's factorization prep books under the current
//! job's residual/correct device passes — the standard async
//! copy/compute pipelining every CUDA service does with streams and
//! pinned staging buffers. Overlap changes *when* work is clocked,
//! never what arithmetic runs, so solutions stay bit-identical to
//! sequential booking.
//!
//! ## Pool-wide host staging
//!
//! Prep is not free per device: a [`HostStagingPool`] models `k` CPU
//! staging workers feeding all N devices. Every prep interval books
//! against a worker slot *and* the device's prep lane, so SECT
//! previews stop pretending every device has a private free host. The
//! default `k = N` reproduces the one-prep-lane-per-device model of
//! the cursor timelines exactly (per-device prep is already serialized
//! by the prep lane, so N workers never contend).
//!
//! ## Online re-booking and compaction
//!
//! Stage bookings can be handed back *online*: [`DevicePool::rebook`]
//! removes a booking's unexecuted tail stages (an adaptive refinement
//! that certified early) from the timelines, so the freed time is
//! visible to every later dispatch — unlike the busy-only
//! [`DevicePool::reconcile`], which fixes the utilization books but
//! leaves the schedule untouched. Under [`RebookMode::Compact`] the
//! pool additionally *slides later queued, unexecuted dispatches left*
//! into the freed hole ([slide-left compaction]): refund causality is
//! preserved by never moving a dispatch whose device work has started,
//! and only moving a dispatch when the move does not finish it later.
//!
//! [slide-left compaction]: DevicePool::rebook

use std::collections::VecDeque;
use std::sync::Arc;

use gpusim::Gpu;
use mdls_obs::{Event, Observer};

/// Exact span identity: both endpoints bit-equal. Timelines only ever
/// compare spans against values they themselves stored, so bit identity
/// — not tolerance — is the correct test.
fn span_eq(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0.to_bits() == b.0.to_bits() && a.1.to_bits() == b.1.to_bits()
}

/// A sorted, disjoint list of booked `(start, end)` intervals on one
/// lane of a device (or one host staging worker).
///
/// Invariants (checked in debug builds and by the property suite):
/// intervals are sorted by start, pairwise disjoint (touching
/// endpoints allowed), and never zero-width. The *cursor* — the end of
/// the last interval — is where a tail append would book, but
/// placement goes through [`Timeline::earliest_fit`], which also finds
/// mid-schedule gaps.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    intervals: Vec<(f64, f64)>,
}

impl Timeline {
    /// End of the last booked interval, ms (0 when empty). Equals the
    /// classic lane-cursor position: a tail append books here.
    pub fn cursor_ms(&self) -> f64 {
        self.intervals.last().map(|iv| iv.1).unwrap_or(0.0)
    }

    /// The booked intervals, sorted by start and pairwise disjoint.
    pub fn intervals(&self) -> &[(f64, f64)] {
        &self.intervals
    }

    /// True when `[start, end)` overlaps no booked interval. Touching
    /// endpoints do not overlap.
    pub fn is_free(&self, start: f64, end: f64) -> bool {
        self.intervals
            .iter()
            .all(|iv| !(iv.0 < end && start < iv.1))
    }

    /// Earliest start `>= not_before` at which `dur_ms` fits — either
    /// inside a gap between booked intervals or at the tail. Returns
    /// `not_before` itself for non-positive durations.
    pub fn earliest_fit(&self, dur_ms: f64, not_before: f64) -> f64 {
        if dur_ms <= 0.0 {
            return not_before;
        }
        // Tail fast path: intervals are disjoint and start-sorted, so
        // ends are monotone — when the last end is at or before
        // `not_before`, nothing can conflict and the fit is immediate.
        // Keeps sustained append-only workloads (the service shell's
        // free-device dispatch always books at the live edge) linear
        // instead of rescanning the whole history per booking.
        if self.intervals.last().is_none_or(|iv| iv.1 <= not_before) {
            return not_before;
        }
        let mut t = not_before;
        for &(s, e) in &self.intervals {
            if e <= t {
                continue;
            }
            if t + dur_ms <= s {
                return t;
            }
            t = t.max(e);
        }
        t
    }

    /// Book `[start, end)`. Zero-width spans are skipped (they carry no
    /// time and would break the disjointness invariant's usefulness).
    fn book(&mut self, start: f64, end: f64) {
        if end <= start {
            return;
        }
        debug_assert!(
            self.is_free(start, end),
            "timeline double-booking: [{start}, {end}) vs {:?}",
            self.intervals
        );
        let at = self.intervals.partition_point(|iv| iv.0 < start);
        self.intervals.insert(at, (start, end));
    }

    /// Remove the exact stored span (bit identity). Returns whether a
    /// span was removed.
    fn free(&mut self, span: (f64, f64)) -> bool {
        if span.1 <= span.0 {
            return false;
        }
        if let Some(at) = self.intervals.iter().position(|&iv| span_eq(iv, span)) {
            self.intervals.remove(at);
            true
        } else {
            false
        }
    }

    /// True when `span` is the exact stored tail interval.
    fn is_tail(&self, span: (f64, f64)) -> bool {
        self.intervals.last().is_some_and(|&iv| span_eq(iv, span))
    }

    fn clear(&mut self) {
        self.intervals.clear();
    }
}

/// Earliest start `>= not_before` at which one `dur_ms` interval fits
/// on *every* lane simultaneously (a composed per-plan booking occupies
/// both device lanes exclusively). Fixed-point iteration over per-lane
/// earliest fits; terminates because the candidate only ever jumps
/// forward to one of finitely many interval endpoints.
fn joint_fit(lanes: &[&Timeline], dur_ms: f64, not_before: f64) -> f64 {
    let mut t = not_before;
    loop {
        let mut next = t;
        for lane in lanes {
            next = next.max(lane.earliest_fit(dur_ms, next));
        }
        if next <= t {
            return t;
        }
        t = next;
    }
}

/// The pool-wide host prep resource: `k` CPU staging workers shared by
/// all devices. Every prep interval a staged booking lays down books a
/// worker slot here *and* the owning device's prep lane — with fewer
/// workers than devices, concurrent preps across devices contend and
/// the schedule honestly waits.
#[derive(Clone, Debug)]
pub struct HostStagingPool {
    workers: Vec<Timeline>,
}

impl HostStagingPool {
    /// A staging pool of `k` workers (at least one).
    pub fn new(k: usize) -> Self {
        HostStagingPool {
            workers: vec![Timeline::default(); k.max(1)],
        }
    }

    /// Number of staging workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Always false — the pool holds at least one worker.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The timeline of worker `w`.
    pub fn worker(&self, w: usize) -> &Timeline {
        &self.workers[w]
    }

    /// Earliest start `>= not_before` at which a `dur_ms` prep fits on
    /// the device prep `lane` *and* on some staging worker, plus the
    /// chosen worker (earliest fit, ties to the lowest worker id).
    fn fit_with_lane(&self, lane: &Timeline, dur_ms: f64, not_before: f64) -> (f64, usize) {
        let mut t = not_before;
        loop {
            t = lane.earliest_fit(dur_ms, t);
            let (w, wt) = self
                .workers
                .iter()
                .enumerate()
                .map(|(w, tl)| (w, tl.earliest_fit(dur_ms, t)))
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                .expect("staging pool has at least one worker");
            if wt <= t {
                return (t, w);
            }
            t = wt;
        }
    }

    fn reset(&mut self) {
        for w in &mut self.workers {
            w.clear();
        }
    }
}

/// Booking request of one planned stage, split by lane: the host-side
/// prep (fixed host overhead + PCIe transfer) and the device-side
/// execution (kernel time + launch gaps).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageReq {
    /// Prep-lane time, ms (host overhead + transfers).
    pub host_ms: f64,
    /// Compute-lane time, ms (kernels + launch gaps).
    pub device_ms: f64,
}

impl StageReq {
    /// A stage whose lane split is unknown (fused stage walls): treat
    /// `host_ms` of the total as prep and the rest as compute.
    pub fn split(wall_ms: f64, host_ms: f64) -> StageReq {
        let host = host_ms.clamp(0.0, wall_ms);
        StageReq {
            host_ms: host,
            device_ms: wall_ms - host,
        }
    }

    /// Total booked wall clock of this stage, ms.
    pub fn wall_ms(&self) -> f64 {
        self.host_ms + self.device_ms
    }
}

/// One stage's booked intervals on a device timeline.
#[derive(Clone, Copy, Debug)]
pub struct StageInterval {
    /// Prep-lane interval `(start, end)`, ms.
    pub host: (f64, f64),
    /// Compute-lane interval `(start, end)`, ms; starts no earlier than
    /// the prep interval ends.
    pub device: (f64, f64),
}

impl StageInterval {
    /// Earliest simulated time of this stage.
    pub fn start_ms(&self) -> f64 {
        self.host.0.min(self.device.0)
    }

    /// Completion time of this stage.
    pub fn end_ms(&self) -> f64 {
        self.device.1
    }

    /// Booked wall clock across both lanes, ms.
    pub fn wall_ms(&self) -> f64 {
        (self.host.1 - self.host.0) + (self.device.1 - self.device.0)
    }
}

/// A stage-granular booking: one interval pair per booked stage, in
/// stage order. Returned by [`DevicePool::commit_stages`]; handed back
/// to [`DevicePool::rebook`] when execution stops early. The `id` keys
/// the pool's live-booking registry: compaction may move this
/// booking's intervals after the fact, and
/// [`DevicePool::live_booking`] returns the current placement.
#[derive(Clone, Debug)]
pub struct StageBooking {
    /// Pool-unique booking id (monotone in booking order).
    pub id: u64,
    /// Pool id of the booked device.
    pub device: usize,
    /// Per-stage intervals, aligned with the booked stage requests.
    pub stages: Vec<StageInterval>,
}

impl StageBooking {
    /// Simulated start of the first booked stage, ms.
    pub fn start_ms(&self) -> f64 {
        self.stages.first().map(|s| s.start_ms()).unwrap_or(0.0)
    }

    /// Simulated completion of the last booked stage, ms.
    pub fn end_ms(&self) -> f64 {
        self.stages.last().map(|s| s.end_ms()).unwrap_or(0.0)
    }
}

/// How [`DevicePool::rebook`] hands unexecuted stages back to the
/// schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebookMode {
    /// Free skipped spans only while they are still the exact lane
    /// tails — the cursor-timeline semantics, kept as the A/B baseline.
    /// Mid-schedule holes strand.
    TailOnly,
    /// Free every skipped span wherever it sits, then slide later
    /// queued, unexecuted dispatches on the device left into the freed
    /// time. Never moves a dispatch whose device work has started, and
    /// never moves a dispatch later — so compaction is at most
    /// tail-only's makespan, by construction.
    Compact,
}

/// Outcome of an online re-booking: how much booked time was unwound
/// from the schedule vs merely written off the utilization books, and
/// what compaction did with the hole.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageRefund {
    /// Booked time removed from the timelines, ms — later dispatches
    /// book into it.
    pub freed_ms: f64,
    /// Booked-but-unexecuted time written off the busy aggregate, ms
    /// (includes `freed_ms`).
    pub refunded_ms: f64,
    /// Queued dispatches slid left into the freed time
    /// ([`RebookMode::Compact`] only).
    pub slid: usize,
    /// Total completion-time improvement across slid dispatches, ms.
    pub slid_ms: f64,
}

/// What a sticky device loss took down: which live bookings were
/// interrupted mid-flight and how much booked-but-never-executed wall
/// clock came off the books. Returned by [`DevicePool::fail_device`];
/// the recovery layer re-dispatches the interrupted bookings' jobs
/// onto surviving devices.
#[derive(Clone, Debug, Default)]
pub struct DeviceLossReport {
    /// Pool id of the lost device.
    pub device: usize,
    /// The loss instant, ms.
    pub at_ms: f64,
    /// Ids of the live bookings interrupted (still unexecuted or
    /// mid-execution at the loss instant), in booking order.
    pub interrupted: Vec<u64>,
    /// Booked wall clock past the loss instant written off the busy
    /// aggregate, ms — work that was scheduled but never ran.
    pub lost_refund_ms: f64,
}

/// One pooled device and its running aggregates.
#[derive(Clone, Debug)]
pub struct PoolDevice {
    /// Pool-unique device id.
    pub id: usize,
    /// The device model (cloned into the pool, so heterogeneous pools
    /// may mix V100s, A100s, …).
    pub gpu: Gpu,
    /// Prep-lane timeline (host overhead + PCIe transfers).
    host: Timeline,
    /// Compute-lane timeline (kernels + launch gaps).
    device: Timeline,
    /// Idle floor: [`DevicePool::hold_until`] raises this, so no later
    /// booking starts below it and the clock never reads below it.
    floor_ms: f64,
    /// Accumulated solve time, ms. Distinct from the clock: holding a
    /// device idle (a gap before a delayed job) advances the clock but
    /// not the busy aggregate, so utilization stays honest.
    busy_ms: f64,
    /// Booked time later handed back by [`DevicePool::reconcile`]
    /// (adaptive refinement finishing under its booked pass count).
    refunded_ms: f64,
    /// Sticky loss instant: once set (via [`DevicePool::fail_device`])
    /// the device executes nothing past this time and placement skips
    /// it entirely.
    lost_at_ms: Option<f64>,
    solves: u64,
    kernel_ms: f64,
    flops_paper: f64,
}

impl PoolDevice {
    /// Simulated time at which this device becomes idle: the latest end
    /// over both lane timelines (never below the idle floor).
    pub fn clock_ms(&self) -> f64 {
        self.host
            .cursor_ms()
            .max(self.device.cursor_ms())
            .max(self.floor_ms)
    }

    /// The prep-lane timeline.
    pub fn host_timeline(&self) -> &Timeline {
        &self.host
    }

    /// The compute-lane timeline.
    pub fn device_timeline(&self) -> &Timeline {
        &self.device
    }

    /// Simulated time this device spent solving, ms — excludes idle
    /// gaps, unlike [`PoolDevice::clock_ms`], and excludes booked time
    /// refunded by [`DevicePool::reconcile`].
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Booked-but-unused time handed back so far, ms.
    pub fn refunded_ms(&self) -> f64 {
        self.refunded_ms
    }

    /// Number of solves dispatched to this device.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// True once the device has been failed stickily
    /// ([`DevicePool::fail_device`]): placement must skip it.
    pub fn is_lost(&self) -> bool {
        self.lost_at_ms.is_some()
    }

    /// The sticky loss instant, ms, if the device has been failed.
    pub fn lost_at_ms(&self) -> Option<f64> {
        self.lost_at_ms
    }
}

/// Throughput snapshot of one device, relative to a batch makespan.
#[derive(Clone, Debug)]
pub struct DeviceStats {
    /// Pool-unique device id.
    pub id: usize,
    /// Device model name.
    pub name: &'static str,
    /// Solves completed.
    pub solves: u64,
    /// Simulated busy time, ms.
    pub busy_ms: f64,
    /// Busy fraction of the batch makespan (occupancy of the device).
    /// Counts both lanes' booked time, so a stage-overlapped schedule —
    /// prep of one job hiding under another's kernels — can honestly
    /// report above 1.
    pub utilization: f64,
    /// Kernel-time gigaflops under the paper's reporting convention.
    pub kernel_gflops: f64,
    /// Solves per simulated second of busy time.
    pub solves_per_busy_sec: f64,
    /// Booked time handed back by adaptive plans, ms (already excluded
    /// from `busy_ms` and `utilization`).
    pub refunded_ms: f64,
}

/// A booking the pool still tracks for compaction: its requests, its
/// current placement, and whether it has settled (settled bookings are
/// never moved).
#[derive(Clone, Debug)]
struct LiveBooking {
    id: u64,
    device: usize,
    reqs: Vec<StageReq>,
    overlap: bool,
    not_before: f64,
    stages: Vec<StageInterval>,
    /// Staging worker per stage (None for stages with no prep).
    workers: Vec<Option<usize>>,
    settled: bool,
    /// Aggregate contributions folded in at commit, unwound if the
    /// booking is interrupted by a device loss (the member solves then
    /// complete elsewhere, or not at all).
    solves: u64,
    kernel_ms: f64,
    flops_paper: f64,
}

/// A planned (not yet committed) stage layout: where each stage's
/// intervals would land, which staging worker each prep uses, and how
/// much of the start was staging contention rather than device load.
struct PlannedBooking {
    stages: Vec<StageInterval>,
    workers: Vec<Option<usize>>,
    /// Start delay attributable to staging-worker contention, ms.
    wait_ms: f64,
}

/// A pool of simulated devices plus the shared host staging resource.
#[derive(Clone)]
pub struct DevicePool {
    devices: Vec<PoolDevice>,
    /// Pool-wide host prep workers (default `k` = device count).
    staging: HostStagingPool,
    /// Bookings still eligible for compaction, in booking-id order.
    live: VecDeque<LiveBooking>,
    next_booking: u64,
    /// Optional event sink (see [`DevicePool::attach_observer`]):
    /// timeline mutations emit [`Event`]s through it. `None` costs one
    /// branch per emit point and constructs nothing.
    observer: Option<Arc<dyn Observer>>,
}

impl Default for DevicePool {
    fn default() -> Self {
        DevicePool::new(Vec::new())
    }
}

impl std::fmt::Debug for DevicePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DevicePool")
            .field("devices", &self.devices)
            .field("staging_workers", &self.staging.len())
            .field("live_bookings", &self.live.len())
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl DevicePool {
    /// Pool over an explicit device list (heterogeneous pools allowed).
    /// The host staging pool defaults to one worker per device, which
    /// reproduces the private-prep-lane model exactly; use
    /// [`DevicePool::set_staging_workers`] to model a constrained host.
    pub fn new(gpus: Vec<Gpu>) -> Self {
        let n = gpus.len();
        DevicePool {
            devices: gpus
                .into_iter()
                .enumerate()
                .map(|(id, gpu)| PoolDevice {
                    id,
                    gpu,
                    host: Timeline::default(),
                    device: Timeline::default(),
                    floor_ms: 0.0,
                    busy_ms: 0.0,
                    refunded_ms: 0.0,
                    lost_at_ms: None,
                    solves: 0,
                    kernel_ms: 0.0,
                    flops_paper: 0.0,
                })
                .collect(),
            staging: HostStagingPool::new(n),
            live: VecDeque::new(),
            next_booking: 0,
            observer: None,
        }
    }

    /// Resize the host staging pool to `k` workers (at least one).
    /// Call before booking: existing worker bookings are discarded.
    pub fn set_staging_workers(&mut self, k: usize) {
        self.staging = HostStagingPool::new(k);
    }

    /// The shared host staging pool.
    pub fn staging(&self) -> &HostStagingPool {
        &self.staging
    }

    /// Attach an event observer: every later timeline mutation
    /// (commits, stage bookings via the dispatch paths, refunds,
    /// compactions, holds) emits through it, and each pooled device and
    /// staging worker is announced immediately so trace exports can
    /// name its tracks.
    ///
    /// Observability is inert: observers only read values the pool has
    /// already computed, so schedules and solutions are identical with
    /// or without one attached.
    pub fn attach_observer(&mut self, observer: Arc<dyn Observer>) {
        for d in &self.devices {
            observer.on_event(&Event::Device {
                device: d.id,
                name: d.gpu.name,
            });
        }
        for w in 0..self.staging.len() {
            observer.on_event(&Event::StagingWorker { worker: w });
        }
        self.observer = Some(observer);
    }

    /// The attached observer, if any — dispatch and settlement sites
    /// outside the pool emit their own events through this.
    pub fn observer(&self) -> Option<&Arc<dyn Observer>> {
        self.observer.as_ref()
    }

    /// Emit one event if (and only if) an observer is attached; the
    /// closure keeps event construction off the unobserved path.
    pub(crate) fn emit(&self, ev: impl FnOnce() -> Event) {
        if let Some(obs) = &self.observer {
            obs.on_event(&ev());
        }
    }

    /// Pool of `n` clones of one device model.
    pub fn homogeneous(gpu: &Gpu, n: usize) -> Self {
        DevicePool::new(std::iter::repeat_with(|| gpu.clone()).take(n).collect())
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the pool has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The pooled devices.
    pub fn devices(&self) -> &[PoolDevice] {
        &self.devices
    }

    /// The device model behind pool id `id`.
    pub fn gpu(&self, id: usize) -> &Gpu {
        &self.devices[id].gpu
    }

    /// Attach a seeded fault schedule to device `id` (see
    /// [`gpusim::FaultPlan`]). The schedule is inert data on the device
    /// model; a resilience driver reads it back via
    /// [`DevicePool::gpu`] and turns it into [`DevicePool::fail_device`]
    /// calls and retry bookings.
    pub fn set_fault_plan(&mut self, id: usize, plan: gpusim::FaultPlan) {
        self.devices[id].gpu.fault = plan;
    }

    /// Id of the least-loaded *surviving* device: the earliest-idle
    /// clock, ties to the lowest id (deterministic dispatch). Lost
    /// devices never take new work.
    pub fn least_loaded(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| !d.is_lost())
            .min_by(|a, b| a.clock_ms().total_cmp(&b.clock_ms()).then(a.id.cmp(&b.id)))
            .expect("no surviving device in the pool")
            .id
    }

    /// Number of devices still alive (never failed).
    pub fn alive_count(&self) -> usize {
        self.devices.iter().filter(|d| !d.is_lost()).count()
    }

    /// Earliest clock over the pool, ms — the soonest any device could
    /// start new work (the deadline-slack reference of the stream's
    /// fused-group cap).
    pub fn min_clock_ms(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.clock_ms())
            .fold(f64::INFINITY, f64::min)
            .min(f64::MAX)
    }

    /// Preview the `(start, end)` a composed `wall_ms` booking on
    /// device `id` would get, starting no earlier than `not_before`: a
    /// joint gap search over both lanes (a composed booking occupies
    /// the device exclusively). Gap-aware: mid-schedule holes left by
    /// re-booking are candidates, not just the tail.
    pub fn preview_wall(&self, id: usize, wall_ms: f64, not_before: f64) -> (f64, f64) {
        let d = &self.devices[id];
        if wall_ms <= 0.0 {
            let at = d.clock_ms().max(not_before);
            return (at, at);
        }
        let start = joint_fit(&[&d.host, &d.device], wall_ms, not_before.max(d.floor_ms));
        (start, start + wall_ms)
    }

    /// Commit one solve to device `id`: book `wall_ms` at the earliest
    /// joint fit and fold the solve's accounting into the aggregates.
    /// Returns the simulated `(start, end)` interval of the solve.
    pub fn commit(
        &mut self,
        id: usize,
        wall_ms: f64,
        kernel_ms: f64,
        flops_paper: f64,
    ) -> (f64, f64) {
        self.commit_group(id, wall_ms, kernel_ms, flops_paper, 1)
    }

    /// Commit a fused group of `solves` micro-batched solves to device
    /// `id` as *one* booking: one interval on both lanes covering the
    /// group's fused wall clock, with the aggregates counting every
    /// member solve. Returns the group's simulated `(start, end)`
    /// interval — all member jobs share it, because a fused launch
    /// sequence completes as a whole.
    pub fn commit_group(
        &mut self,
        id: usize,
        wall_ms: f64,
        kernel_ms: f64,
        flops_paper: f64,
        solves: u64,
    ) -> (f64, f64) {
        let (start, end) = self.preview_wall(id, wall_ms, 0.0);
        let d = &mut self.devices[id];
        // a composed (per-plan) booking occupies both lanes exclusively
        d.host.book(start, end);
        d.device.book(start, end);
        d.busy_ms += wall_ms;
        d.solves += solves;
        d.kernel_ms += kernel_ms;
        d.flops_paper += flops_paper;
        self.emit(|| Event::PlanSpan {
            device: id,
            jobs: solves as usize,
            start_ms: start,
            end_ms: end,
        });
        (start, end)
    }

    /// Plan where `reqs` would land on device `device` with overlap
    /// enabled: each stage's prep books at the earliest slot free on
    /// the device prep lane *and* a staging worker (after the previous
    /// stage completes), its compute after its own prep at the earliest
    /// compute-lane fit. Gap-aware on every lane.
    fn plan_overlapped(&self, device: usize, reqs: &[StageReq], not_before: f64) -> PlannedBooking {
        let d = &self.devices[device];
        let mut stages = Vec::with_capacity(reqs.len());
        let mut workers = Vec::with_capacity(reqs.len());
        let mut wait_ms = 0.0;
        let mut prev_end = not_before;
        for r in reqs {
            let (hs, he, worker) = if r.host_ms > 0.0 {
                let lane_only = d.host.earliest_fit(r.host_ms, prev_end);
                let (s, w) = self.staging.fit_with_lane(&d.host, r.host_ms, prev_end);
                wait_ms += s - lane_only;
                (s, s + r.host_ms, Some(w))
            } else {
                (prev_end, prev_end, None)
            };
            let (ds, de) = if r.device_ms > 0.0 {
                let s = d.device.earliest_fit(r.device_ms, he);
                (s, s + r.device_ms)
            } else {
                (he, he)
            };
            // anchor a zero-width prep span at the compute start so the
            // stage's reported start is where work actually begins
            let (hs, he) = if r.host_ms > 0.0 { (hs, he) } else { (ds, ds) };
            stages.push(StageInterval {
                host: (hs, he),
                device: (ds, de),
            });
            workers.push(worker);
            prev_end = de;
        }
        PlannedBooking {
            stages,
            workers,
            wait_ms,
        }
    }

    /// Plan where `reqs` would land with overlap disabled: the stages
    /// tile one contiguous interval (exactly what a composed commit
    /// would book), placed at the earliest joint fit over both lanes
    /// that also finds a free staging worker for every prep part.
    fn plan_sequential(&self, device: usize, reqs: &[StageReq], not_before: f64) -> PlannedBooking {
        let d = &self.devices[device];
        let total: f64 = reqs.iter().map(|r| r.wall_ms()).sum();
        let base = joint_fit(&[&d.host, &d.device], total, not_before);
        let mut t = base;
        'place: loop {
            let mut stages = Vec::with_capacity(reqs.len());
            let mut workers = Vec::with_capacity(reqs.len());
            let mut cur = joint_fit(&[&d.host, &d.device], total, t);
            t = cur;
            for r in reqs {
                let hs = cur;
                let he = hs + r.host_ms;
                let ds = he;
                let de = ds + r.device_ms;
                if r.host_ms > 0.0 {
                    match (0..self.staging.len()).find(|&w| self.staging.worker(w).is_free(hs, he))
                    {
                        Some(w) => workers.push(Some(w)),
                        None => {
                            // every worker is busy over this prep: try
                            // again from the earliest any frees up
                            let retry = self
                                .staging
                                .workers
                                .iter()
                                .map(|w| w.earliest_fit(r.host_ms, hs))
                                .fold(f64::INFINITY, f64::min);
                            t = retry.max(t + f64::EPSILON * t.abs().max(1.0));
                            continue 'place;
                        }
                    }
                } else {
                    workers.push(None);
                }
                stages.push(StageInterval {
                    host: (hs, he),
                    device: (ds, de),
                });
                cur = de;
            }
            return PlannedBooking {
                stages,
                workers,
                wait_ms: t - base,
            };
        }
    }

    /// Plan a full stage booking without committing it — shared by
    /// [`DevicePool::preview_stages`] and [`DevicePool::commit_stages`]
    /// so previews equal commits.
    fn plan_booking(
        &self,
        device: usize,
        reqs: &[StageReq],
        overlap: bool,
        not_before: f64,
    ) -> PlannedBooking {
        let from = not_before.max(self.devices[device].floor_ms);
        if overlap {
            self.plan_overlapped(device, reqs, from)
        } else {
            self.plan_sequential(device, reqs, from)
        }
    }

    /// Preview the completion time of booking `reqs` on device `id`
    /// without committing anything — the stage-timeline cost the SECT
    /// policy ranks devices by. Accounts for gap-filling *and* host
    /// staging contention, so the ranking matches what a commit gets.
    pub fn preview_stages(
        &self,
        id: usize,
        reqs: &[StageReq],
        overlap: bool,
        not_before: f64,
    ) -> f64 {
        let plan = self.plan_booking(id, reqs, overlap, not_before);
        plan.stages
            .last()
            .map(|s| s.end_ms())
            .unwrap_or_else(|| self.devices[id].clock_ms())
    }

    /// Book `reqs` stage by stage onto device `id`'s timelines (see the
    /// module docs for the lane model), counting `solves` member solves
    /// and folding `kernel_ms`/`flops_paper` into the aggregates once
    /// for the whole booking. `not_before` is the earliest admissible
    /// start (a job's simulated release time); `overlap = false` books
    /// the same contiguous interval a composed commit would. Every prep
    /// part also books a host staging worker.
    ///
    /// The busy aggregate counts every lane's booked time, so a device
    /// whose prep lane hides under its compute lane can report
    /// utilization above 1 — both lanes really are doing work.
    pub fn commit_stages(
        &mut self,
        id: usize,
        reqs: &[StageReq],
        kernel_ms: f64,
        flops_paper: f64,
        solves: u64,
        overlap: bool,
        not_before: f64,
    ) -> StageBooking {
        let plan = self.plan_booking(id, reqs, overlap, not_before);
        let booking_id = self.next_booking;
        self.next_booking += 1;
        let host_cursor = self.devices[id].host.cursor_ms();
        let device_cursor = self.devices[id].device.cursor_ms();
        {
            let d = &mut self.devices[id];
            for (s, w) in plan.stages.iter().zip(&plan.workers) {
                d.host.book(s.host.0, s.host.1);
                d.device.book(s.device.0, s.device.1);
                if let Some(w) = *w {
                    self.staging.workers[w].book(s.host.0, s.host.1);
                }
            }
            d.busy_ms += reqs.iter().map(|r| r.wall_ms()).sum::<f64>();
            d.solves += solves;
            d.kernel_ms += kernel_ms;
            d.flops_paper += flops_paper;
        }
        // a nonzero part starting before its pre-booking lane cursor
        // landed in a mid-schedule gap — surface the win
        let mut gap_lead: f64 = 0.0;
        let mut gap_start = f64::INFINITY;
        for s in &plan.stages {
            if s.host.1 > s.host.0 && s.host.0 < host_cursor {
                gap_lead = gap_lead.max(host_cursor - s.host.0);
                gap_start = gap_start.min(s.host.0);
            }
            if s.device.1 > s.device.0 && s.device.0 < device_cursor {
                gap_lead = gap_lead.max(device_cursor - s.device.0);
                gap_start = gap_start.min(s.device.0);
            }
        }
        if gap_lead > 0.0 {
            self.emit(|| Event::GapFilled {
                device: id,
                start_ms: gap_start,
                lead_ms: gap_lead,
            });
        }
        for (s, w) in plan.stages.iter().zip(&plan.workers) {
            if let Some(w) = *w {
                self.emit(|| Event::StagingBooked {
                    worker: w,
                    device: id,
                    start_ms: s.host.0,
                    end_ms: s.host.1,
                });
            }
        }
        if plan.wait_ms > 0.0 {
            let worker = plan.workers.iter().flatten().next().copied().unwrap_or(0);
            let at_ms = plan.stages.first().map(|s| s.start_ms()).unwrap_or(0.0);
            self.emit(|| Event::StagingWait {
                device: id,
                worker,
                wait_ms: plan.wait_ms,
                at_ms,
            });
        }
        self.live.push_back(LiveBooking {
            id: booking_id,
            device: id,
            reqs: reqs.to_vec(),
            overlap,
            not_before,
            stages: plan.stages.clone(),
            workers: plan.workers,
            settled: false,
            solves,
            kernel_ms,
            flops_paper,
        });
        StageBooking {
            id: booking_id,
            device: id,
            stages: plan.stages,
        }
    }

    /// The current placement of booking `id`, if the pool still tracks
    /// it. Compaction may have moved the intervals since
    /// [`DevicePool::commit_stages`] returned — settle against this,
    /// not the original.
    pub fn live_booking(&self, id: u64) -> Option<StageBooking> {
        self.live.iter().find(|b| b.id == id).map(|b| StageBooking {
            id: b.id,
            device: b.device,
            stages: b.stages.clone(),
        })
    }

    /// Mark booking `id` settled: it executed (or was reconciled) and
    /// must never be moved by compaction again. The staged engines call
    /// this on every settle path that does not go through
    /// [`DevicePool::rebook`].
    pub fn mark_settled(&mut self, id: u64) {
        if let Some(b) = self.live.iter_mut().find(|b| b.id == id) {
            b.settled = true;
        }
        self.prune_settled();
    }

    fn prune_settled(&mut self) {
        while self.live.front().is_some_and(|b| b.settled) {
            self.live.pop_front();
        }
    }

    /// Hand back a booking's tail *online*: stages `from_stage..` were
    /// never executed (the adaptive stop certified early), so remove
    /// their intervals from the timelines — later dispatches then book
    /// into the freed time, which is what distinguishes re-booking from
    /// the busy-only [`DevicePool::reconcile`]. The whole skipped tail
    /// is written off the busy aggregate either way.
    ///
    /// Under [`RebookMode::TailOnly`] only spans still at the exact
    /// lane tail are freed (the cursor-timeline baseline: an interval
    /// another booking already landed behind strands). Under
    /// [`RebookMode::Compact`] every skipped span is freed wherever it
    /// sits, and later queued, unexecuted dispatches on the device
    /// slide left into the hole — never a dispatch whose device work
    /// started before the hole, and never a move that finishes a
    /// dispatch later.
    ///
    /// Settle each booking **at most once**: a repeated call over the
    /// same stages writes their busy time off again. The staged
    /// engines settle every dispatch exactly once, right after its
    /// execution; re-booking also marks the booking settled so
    /// compaction will not move what execution already timed.
    pub fn rebook(
        &mut self,
        booking: &StageBooking,
        from_stage: usize,
        mode: RebookMode,
    ) -> StageRefund {
        // compaction may have moved this booking: operate on the
        // pool's current placement, not the caller's stale copy
        let (stages, workers) = match self.live.iter().find(|b| b.id == booking.id) {
            Some(b) => (b.stages.clone(), b.workers.clone()),
            None => (booking.stages.clone(), vec![None; booking.stages.len()]),
        };
        let mut refund = StageRefund::default();
        let from = from_stage.min(stages.len());
        for s in &stages[from..] {
            refund.refunded_ms += s.wall_ms();
        }
        {
            let d = &mut self.devices[booking.device];
            match mode {
                RebookMode::TailOnly => {
                    let mut host_tail = true;
                    let mut device_tail = true;
                    for (s, w) in stages[from..].iter().zip(&workers[from..]).rev() {
                        // a span is un-bookable only while it is still
                        // the exact stored timeline tail; zero-width
                        // parts carry no time and never break the chain
                        if s.device.1 > s.device.0 {
                            if device_tail && d.device.is_tail(s.device) {
                                d.device.free(s.device);
                                refund.freed_ms += s.device.1 - s.device.0;
                            } else {
                                device_tail = false;
                            }
                        }
                        if s.host.1 > s.host.0 {
                            if host_tail && d.host.is_tail(s.host) {
                                d.host.free(s.host);
                                refund.freed_ms += s.host.1 - s.host.0;
                                if let Some(w) = *w {
                                    self.staging.workers[w].free(s.host);
                                }
                            } else {
                                host_tail = false;
                            }
                        }
                    }
                }
                RebookMode::Compact => {
                    for (s, w) in stages[from..].iter().zip(&workers[from..]) {
                        if d.device.free(s.device) {
                            refund.freed_ms += s.device.1 - s.device.0;
                        }
                        if d.host.free(s.host) {
                            refund.freed_ms += s.host.1 - s.host.0;
                            if let Some(w) = *w {
                                self.staging.workers[w].free(s.host);
                            }
                        }
                    }
                }
            }
            let r = refund.refunded_ms.min(d.busy_ms);
            d.busy_ms -= r;
            d.refunded_ms += r;
        }
        let at_ms = if from > 0 {
            stages[from - 1].end_ms()
        } else {
            stages.first().map(|s| s.start_ms()).unwrap_or(0.0)
        };
        self.mark_settled(booking.id);
        if refund.refunded_ms > 0.0 {
            self.emit(|| Event::Refund {
                device: booking.device,
                from_stage: from,
                freed_ms: refund.freed_ms,
                refunded_ms: refund.refunded_ms,
                at_ms,
            });
        }
        if mode == RebookMode::Compact && refund.freed_ms > 0.0 {
            let (slid, slid_ms) = self.compact_queued(booking.device, at_ms);
            refund.slid = slid;
            refund.slid_ms = slid_ms;
            if slid > 0 {
                self.emit(|| Event::Compacted {
                    device: booking.device,
                    at_ms,
                    freed_ms: refund.freed_ms,
                    slid,
                    slid_ms,
                });
            }
        }
        refund
    }

    /// Slide queued, unexecuted work on `device` left into time freed
    /// at or after `at_ms`. The causal unit is the *interval*: by the
    /// simulated time the refund lands (`at_ms`, the refunding
    /// booking's executed end), any interval that started earlier is
    /// already running or done — it never moves. Per live unsettled
    /// booking, in booking order:
    ///
    /// * a fully unstarted booking re-plans wholesale, but never
    ///   before `at_ms` (time before the hole is already history);
    /// * a booking with started work keeps every started interval (and
    ///   its staging worker slot) in place and re-fits only the
    ///   compute intervals starting at or after `at_ms` — under
    ///   cross-job overlap a queued booking's early stages routinely
    ///   run *before* the hole while its tail passes can still slide;
    /// * a move is only adopted when it does not finish the booking
    ///   later; otherwise the old placement is restored exactly. So
    ///   compaction never exceeds the tail-only makespan, by
    ///   construction.
    fn compact_queued(&mut self, device: usize, at_ms: f64) -> (usize, f64) {
        let ids: Vec<u64> = self
            .live
            .iter()
            .filter(|b| b.device == device && !b.settled)
            .map(|b| b.id)
            .collect();
        let mut slid = 0usize;
        let mut slid_ms = 0.0;
        for id in ids {
            let b = match self.live.iter().find(|b| b.id == id) {
                Some(b) => b.clone(),
                None => continue,
            };
            if b.stages.is_empty() {
                continue;
            }
            let old_end = b.stages.last().map(|s| s.end_ms()).unwrap_or(0.0);
            let started = |iv: (f64, f64)| iv.1 > iv.0 && iv.0 < at_ms;
            let any_started = b
                .stages
                .iter()
                .any(|s| started(s.device) || started(s.host));
            let movable: Vec<bool> = b
                .stages
                .iter()
                .map(|s| s.device.1 > s.device.0 && s.device.0 >= at_ms)
                .collect();
            let (new_stages, new_workers) = if any_started {
                // keep every started interval (and all prep) in place;
                // re-fit only the unstarted compute intervals
                if !movable.iter().any(|&m| m) {
                    continue;
                }
                let d = &mut self.devices[device];
                for (s, &m) in b.stages.iter().zip(&movable) {
                    if m {
                        d.device.free(s.device);
                    }
                }
                let mut stages = Vec::with_capacity(b.stages.len());
                let mut prev_end = 0.0f64;
                for (s, &m) in b.stages.iter().zip(&movable) {
                    if !m {
                        stages.push(*s);
                        prev_end = prev_end.max(s.device.1);
                        continue;
                    }
                    let dur = s.device.1 - s.device.0;
                    // a zero-width host span is a start anchor, not a
                    // prep constraint — only real prep gates the refit
                    let host_end = if s.host.1 > s.host.0 { s.host.1 } else { 0.0 };
                    let from = host_end.max(prev_end).max(at_ms);
                    let start = d.device.earliest_fit(dur, from);
                    let host = if s.host.1 > s.host.0 {
                        s.host
                    } else {
                        (start, start)
                    };
                    stages.push(StageInterval {
                        host,
                        device: (start, start + dur),
                    });
                    prev_end = start + dur;
                }
                (stages, b.workers.clone())
            } else {
                // fully unstarted: free everything and re-plan
                {
                    let d = &mut self.devices[device];
                    for (s, w) in b.stages.iter().zip(&b.workers) {
                        d.device.free(s.device);
                        if d.host.free(s.host) {
                            if let Some(w) = *w {
                                self.staging.workers[w].free(s.host);
                            }
                        }
                    }
                }
                let plan = self.plan_booking(device, &b.reqs, b.overlap, b.not_before.max(at_ms));
                (plan.stages, plan.workers)
            };
            let new_end = new_stages.last().map(|s| s.end_ms()).unwrap_or(old_end);
            let adopt = new_end <= old_end;
            let (stages, workers) = if adopt {
                (new_stages, new_workers)
            } else {
                (b.stages.clone(), b.workers.clone())
            };
            {
                let d = &mut self.devices[device];
                if any_started {
                    // only the movable compute spans were freed
                    for (s, &m) in stages.iter().zip(&movable) {
                        if m {
                            d.device.book(s.device.0, s.device.1);
                        }
                    }
                } else {
                    for (s, w) in stages.iter().zip(&workers) {
                        d.device.book(s.device.0, s.device.1);
                        d.host.book(s.host.0, s.host.1);
                        if let Some(w) = *w {
                            self.staging.workers[w].book(s.host.0, s.host.1);
                        }
                    }
                }
            }
            if adopt && new_end < old_end {
                slid += 1;
                slid_ms += old_end - new_end;
            }
            if let Some(live) = self.live.iter_mut().find(|x| x.id == id) {
                live.stages = stages;
                live.workers = workers;
            }
        }
        (slid, slid_ms)
    }

    /// Hand back booked-but-unused time on device `id`: an adaptive
    /// refinement that met its digit target early executed fewer
    /// stages than its plan booked. The *clock* keeps the booked
    /// schedule (later dispatches were placed against it — the refund
    /// shows up as an idle gap, exactly what the device would see), but
    /// the busy aggregate drops so utilization and solves-per-busy-sec
    /// report what actually ran.
    pub fn reconcile(&mut self, id: usize, refund_ms: f64) {
        let d = &mut self.devices[id];
        let r = refund_ms.max(0.0).min(d.busy_ms);
        d.busy_ms -= r;
        d.refunded_ms += r;
        if r > 0.0 {
            self.emit(|| Event::Reconciled {
                device: id,
                refund_ms: r,
            });
        }
    }

    /// Fail device `id` stickily at simulated time `at_ms`: the device
    /// executes nothing past that instant for the rest of the run.
    /// Placement ([`DevicePool::least_loaded`] and the scheduler's SECT
    /// arms) skips lost devices from here on.
    ///
    /// Bookings on the device that complete at or before `at_ms` are
    /// untouched — they ran before the loss. Every later live booking
    /// is **interrupted**: all of its spans come off both lanes (and
    /// their staging workers), the portion booked past `at_ms` is
    /// written off the busy aggregate as a refund (work before the
    /// loss genuinely burned device time, so it stays busy), and its
    /// solve/kernel/flop contributions are unwound — the member solves
    /// complete on a surviving device or not at all. Interrupted
    /// bookings leave the live registry; the returned report names
    /// them so recovery can re-dispatch their jobs.
    ///
    /// Idempotent: failing an already-lost device is a no-op report.
    ///
    /// "Stickily" is from the pool's point of view: nothing here ever
    /// brings the device back on its own. A *quarantine* — the service
    /// shell's circuit breaker pulling a flapping device out of
    /// rotation — is a `fail_device` (same span frees, same refunds)
    /// followed by an explicit [`DevicePool::restore_device`] once a
    /// probe earns re-admission.
    pub fn fail_device(&mut self, id: usize, at_ms: f64) -> DeviceLossReport {
        if self.devices[id].is_lost() {
            return DeviceLossReport {
                device: id,
                at_ms: self.devices[id].lost_at_ms.unwrap(),
                ..DeviceLossReport::default()
            };
        }
        self.devices[id].lost_at_ms = Some(at_ms);
        let interrupted: Vec<u64> = self
            .live
            .iter()
            .filter(|b| {
                b.device == id && !b.settled && b.stages.last().is_some_and(|s| s.end_ms() > at_ms)
            })
            .map(|b| b.id)
            .collect();
        let mut report = DeviceLossReport {
            device: id,
            at_ms,
            interrupted: interrupted.clone(),
            lost_refund_ms: 0.0,
        };
        for bid in &interrupted {
            let b = self
                .live
                .iter()
                .position(|x| x.id == *bid)
                .map(|at| self.live.remove(at).unwrap())
                .expect("interrupted booking is live");
            let d = &mut self.devices[id];
            let mut refund = 0.0;
            for (s, w) in b.stages.iter().zip(&b.workers) {
                // the post-loss portion of each span never ran;
                // pre-loss work stays busy (it really burned device
                // time before the loss, even though it is now wasted)
                refund += (s.device.1 - s.device.0.max(at_ms)).max(0.0);
                refund += (s.host.1 - s.host.0.max(at_ms)).max(0.0);
                d.device.free(s.device);
                if d.host.free(s.host) {
                    if let Some(w) = *w {
                        self.staging.workers[w].free(s.host);
                    }
                }
            }
            let r = refund.min(d.busy_ms);
            d.busy_ms -= r;
            d.refunded_ms += r;
            report.lost_refund_ms += r;
            d.solves = d.solves.saturating_sub(b.solves);
            d.kernel_ms = (d.kernel_ms - b.kernel_ms).max(0.0);
            d.flops_paper = (d.flops_paper - b.flops_paper).max(0.0);
        }
        self.emit(|| Event::DeviceLost {
            device: id,
            at_ms,
            interrupted: report.interrupted.len(),
            refund_ms: report.lost_refund_ms,
        });
        report
    }

    /// Re-admit a failed (quarantined) device at simulated time
    /// `at_ms`: clears the lost mark and raises the device's idle
    /// floor to `at_ms`, so nothing books into the quarantine window
    /// it just sat out — the re-admission half of a circuit breaker
    /// (see [`DevicePool::fail_device`]). The quarantine gap is idle,
    /// not busy, exactly like a release-time hold. No-op on a device
    /// that is not lost.
    pub fn restore_device(&mut self, id: usize, at_ms: f64) {
        if self.devices[id].lost_at_ms.is_none() {
            return;
        }
        self.devices[id].lost_at_ms = None;
        let d = &mut self.devices[id];
        d.floor_ms = d.floor_ms.max(at_ms);
    }

    /// Hold device `id` idle until simulated time `until_ms` (no-op if
    /// its clock is already past): raises the device's idle floor, so
    /// no later booking starts below it. Advances the clock without
    /// touching the busy aggregate — the modeled idle gap before a
    /// delayed or deadline-held job.
    pub fn hold_until(&mut self, id: usize, until_ms: f64) {
        let d = &mut self.devices[id];
        let advanced =
            until_ms > d.floor_ms && until_ms > d.host.cursor_ms().min(d.device.cursor_ms());
        d.floor_ms = d.floor_ms.max(until_ms);
        if advanced {
            self.emit(|| Event::Held {
                device: id,
                until_ms,
            });
        }
    }

    /// Batch makespan: the latest clock over the pool, ms.
    pub fn makespan_ms(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.clock_ms())
            .fold(0.0, f64::max)
    }

    /// Total solves across the pool.
    pub fn total_solves(&self) -> u64 {
        self.devices.iter().map(|d| d.solves).sum()
    }

    /// Aggregate throughput: solves per simulated second of makespan.
    pub fn solves_per_sec(&self) -> f64 {
        let ms = self.makespan_ms();
        if ms <= 0.0 {
            return 0.0;
        }
        self.total_solves() as f64 / (ms * 1.0e-3)
    }

    /// Zero all timelines and aggregates (reuse the pool for a new
    /// batch). Keeps the staging worker count.
    pub fn reset(&mut self) {
        for d in &mut self.devices {
            d.host.clear();
            d.device.clear();
            d.floor_ms = 0.0;
            d.busy_ms = 0.0;
            d.refunded_ms = 0.0;
            d.lost_at_ms = None;
            d.solves = 0;
            d.kernel_ms = 0.0;
            d.flops_paper = 0.0;
        }
        self.staging.reset();
        self.live.clear();
        self.next_booking = 0;
    }

    /// Per-device throughput snapshots against the current makespan.
    pub fn stats(&self) -> Vec<DeviceStats> {
        let makespan = self.makespan_ms();
        self.devices
            .iter()
            .map(|d| DeviceStats {
                id: d.id,
                name: d.gpu.name,
                solves: d.solves,
                busy_ms: d.busy_ms,
                utilization: if makespan > 0.0 {
                    d.busy_ms / makespan
                } else {
                    0.0
                },
                kernel_gflops: if d.kernel_ms > 0.0 {
                    d.flops_paper / (d.kernel_ms * 1.0e-3) / 1.0e9
                } else {
                    0.0
                },
                solves_per_busy_sec: if d.busy_ms > 0.0 {
                    d.solves as f64 / (d.busy_ms * 1.0e-3)
                } else {
                    0.0
                },
                refunded_ms: d.refunded_ms,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_prefers_earliest_then_lowest_id() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 3);
        assert_eq!(pool.least_loaded(), 0);
        pool.commit(0, 10.0, 8.0, 1.0e9);
        assert_eq!(pool.least_loaded(), 1);
        pool.commit(1, 4.0, 3.0, 1.0e9);
        pool.commit(2, 4.0, 3.0, 1.0e9);
        // devices 1 and 2 tie at 4.0 ms: lowest id wins
        assert_eq!(pool.least_loaded(), 1);
    }

    #[test]
    fn makespan_and_throughput() {
        let mut pool = DevicePool::homogeneous(&Gpu::a100(), 2);
        pool.commit(0, 100.0, 80.0, 1.0e9);
        pool.commit(1, 250.0, 200.0, 2.0e9);
        assert_eq!(pool.makespan_ms(), 250.0);
        assert_eq!(pool.total_solves(), 2);
        // 2 solves / 0.25 s = 8 solves/s
        assert!((pool.solves_per_sec() - 8.0).abs() < 1e-12);
        let stats = pool.stats();
        assert!((stats[0].utilization - 0.4).abs() < 1e-12);
        assert!((stats[1].utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_gaps_do_not_inflate_utilization() {
        // regression: `busy_until_ms` doubled as the busy aggregate, so
        // any idle gap counted as busy time and over-reported
        // utilization (and under-reported solves/busy-sec)
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        pool.hold_until(0, 60.0); // 60 ms idle gap before the first solve
        pool.commit(0, 40.0, 30.0, 1.0e9);
        pool.commit(1, 100.0, 80.0, 1.0e9);
        assert_eq!(pool.makespan_ms(), 100.0);
        let stats = pool.stats();
        assert_eq!(stats[0].busy_ms, 40.0);
        assert!((stats[0].utilization - 0.4).abs() < 1e-12);
        assert!((stats[1].utilization - 1.0).abs() < 1e-12);
        // 1 solve / 0.04 busy-sec = 25 solves per busy second
        assert!((stats[0].solves_per_busy_sec - 25.0).abs() < 1e-9);
        // holding a device never rewinds its clock
        pool.hold_until(1, 10.0);
        assert_eq!(pool.devices()[1].clock_ms(), 100.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        pool.hold_until(0, 2.0);
        pool.commit(0, 5.0, 4.0, 1.0);
        pool.reset();
        assert_eq!(pool.makespan_ms(), 0.0);
        assert_eq!(pool.total_solves(), 0);
        assert_eq!(pool.devices()[0].busy_ms(), 0.0);
    }

    #[test]
    fn group_commit_books_once_counts_all() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let (start, end) = pool.commit_group(0, 30.0, 20.0, 6.0e9, 8);
        assert_eq!((start, end), (0.0, 30.0));
        assert_eq!(pool.total_solves(), 8);
        // one fused interval, not eight
        assert_eq!(pool.makespan_ms(), 30.0);
        // 8 solves / 0.03 busy-sec
        let s = &pool.stats()[0];
        assert!((s.solves_per_busy_sec - 8.0 / 0.030).abs() < 1e-9);
    }

    #[test]
    fn reconcile_refunds_busy_time_not_the_clock() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        pool.commit(0, 100.0, 80.0, 1.0e9);
        pool.reconcile(0, 25.0);
        // the schedule keeps the booked clock...
        assert_eq!(pool.makespan_ms(), 100.0);
        // ...but the busy aggregate reports what actually ran
        let s = &pool.stats()[0];
        assert_eq!(s.busy_ms, 75.0);
        assert_eq!(s.refunded_ms, 25.0);
        assert!((s.utilization - 0.75).abs() < 1e-12);
        // refunds never go negative, even on an absurd request
        pool.reconcile(0, 1.0e9);
        assert_eq!(pool.stats()[0].busy_ms, 0.0);
        pool.reset();
        assert_eq!(pool.devices()[0].refunded_ms(), 0.0);
    }

    #[test]
    fn fail_device_interrupts_live_bookings_and_refunds_the_future() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        // one booking ends before the loss, one straddles it, one is
        // entirely after; a fourth sits on the surviving device
        let done = pool.commit_stages(0, &[req(1.0, 4.0)], 0.0, 0.0, 1, true, 0.0);
        let mid = pool.commit_stages(0, &[req(0.0, 10.0)], 0.0, 0.0, 1, true, 0.0);
        let queued = pool.commit_stages(0, &[req(0.0, 6.0)], 0.0, 0.0, 1, true, 0.0);
        let other = pool.commit_stages(1, &[req(0.0, 8.0)], 0.0, 0.0, 1, true, 0.0);
        assert_eq!(done.end_ms(), 5.0);
        assert_eq!(mid.end_ms(), 15.0);
        assert_eq!(queued.end_ms(), 21.0);
        let before = pool.devices()[1].device_timeline().intervals().to_vec();

        let report = pool.fail_device(0, 8.0);
        assert_eq!(report.device, 0);
        assert_eq!(report.interrupted, vec![mid.id, queued.id]);
        // mid straddles: 15 - 8 = 7 ms never ran; queued is all future
        assert!((report.lost_refund_ms - (7.0 + 6.0)).abs() < 1e-12);
        assert!(pool.devices()[0].is_lost());
        assert_eq!(pool.alive_count(), 1);
        assert_eq!(pool.least_loaded(), 1);
        // the completed booking's spans survive; the interrupted ones
        // are gone from the dead device's lanes
        assert_eq!(
            pool.devices()[0].device_timeline().intervals(),
            &[(1.0, 5.0)]
        );
        // the surviving device is untouched
        assert_eq!(pool.devices()[1].device_timeline().intervals(), &before[..]);
        assert!(pool.live_booking(other.id).is_some());
        assert!(pool.live_booking(mid.id).is_none());
        // only the device's own completed solve remains on its books
        assert_eq!(pool.devices()[0].solves(), 1);

        // idempotent: a second failure reports nothing new
        let again = pool.fail_device(0, 9.0);
        assert!(again.interrupted.is_empty());
        assert_eq!(again.at_ms, 8.0);
        assert_eq!(pool.devices()[0].lost_at_ms(), Some(8.0));

        // reset revives the device
        pool.reset();
        assert!(!pool.devices()[0].is_lost());
        assert_eq!(pool.alive_count(), 2);
    }

    #[test]
    fn heterogeneous_pool_keeps_models() {
        let pool = DevicePool::new(vec![Gpu::v100(), Gpu::a100(), Gpu::p100()]);
        assert_eq!(pool.gpu(1).name, "A100");
        assert_eq!(pool.devices()[2].gpu.name, "P100");
    }

    fn req(host_ms: f64, device_ms: f64) -> StageReq {
        StageReq { host_ms, device_ms }
    }

    #[test]
    fn timeline_invariants_and_gap_search() {
        let mut tl = Timeline::default();
        tl.book(10.0, 20.0);
        tl.book(0.0, 4.0);
        tl.book(30.0, 31.0);
        assert_eq!(tl.intervals(), &[(0.0, 4.0), (10.0, 20.0), (30.0, 31.0)]);
        assert_eq!(tl.cursor_ms(), 31.0);
        // gap between 4 and 10 fits 6 ms but not 7
        assert_eq!(tl.earliest_fit(6.0, 0.0), 4.0);
        assert_eq!(tl.earliest_fit(7.0, 0.0), 20.0);
        assert_eq!(tl.earliest_fit(7.0, 25.0), 31.0);
        // zero-width requests are a no-op position
        assert_eq!(tl.earliest_fit(0.0, 12.0), 12.0);
        assert!(tl.is_free(4.0, 10.0));
        assert!(!tl.is_free(3.0, 5.0));
        // freeing the middle interval opens its span
        assert!(tl.free((10.0, 20.0)));
        assert!(tl.is_free(4.0, 30.0));
        assert!(!tl.free((10.0, 20.0)));
    }

    #[test]
    fn sequential_stage_booking_matches_composed_commit() {
        // overlap off: stage intervals tile the exact interval one
        // composed commit would book — per-plan and stage-granular
        // sequential bookings are timing-identical
        let reqs = [req(12.0, 2.0), req(0.0, 0.5), req(0.1, 0.4)];
        let wall: f64 = reqs.iter().map(|r| r.wall_ms()).sum();
        let mut a = DevicePool::homogeneous(&Gpu::v100(), 1);
        a.commit(0, wall, 0.0, 0.0);
        let mut b = DevicePool::homogeneous(&Gpu::v100(), 1);
        let booking = b.commit_stages(0, &reqs, 0.0, 0.0, 1, false, 0.0);
        assert_eq!(booking.start_ms(), 0.0);
        assert!((booking.end_ms() - wall).abs() < 1e-12);
        assert!((a.makespan_ms() - b.makespan_ms()).abs() < 1e-12);
        assert_eq!(a.devices()[0].busy_ms(), b.devices()[0].busy_ms());
        // stages are contiguous
        let mut clock = 0.0;
        for s in &booking.stages {
            assert_eq!(s.start_ms(), clock);
            clock = s.end_ms();
        }
    }

    #[test]
    fn overlapped_booking_hides_prep_under_compute() {
        // job A: long factor (prep 12 + compute 2) and a device-only
        // tail; job B books after it with overlap — B's prep lane runs
        // while A still computes, so B finishes well before the
        // sequential 2x cadence
        let reqs = [req(12.0, 2.0), req(0.0, 1.0)];
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let a = pool.commit_stages(0, &reqs, 0.0, 0.0, 1, true, 0.0);
        assert_eq!(a.end_ms(), 15.0);
        let b = pool.commit_stages(0, &reqs, 0.0, 0.0, 1, true, 0.0);
        // B's prep starts at A's prep end (12), ends 24; B's compute
        // waits for its own prep (24) and A's compute lane (15) → 24–26
        assert_eq!(b.stages[0].host, (12.0, 24.0));
        assert_eq!(b.stages[0].device, (24.0, 26.0));
        assert_eq!(b.end_ms(), 27.0);
        // sequential booking of the same pair would end at 30
        let mut seq = DevicePool::homogeneous(&Gpu::v100(), 1);
        seq.commit_stages(0, &reqs, 0.0, 0.0, 1, false, 0.0);
        let s = seq.commit_stages(0, &reqs, 0.0, 0.0, 1, false, 0.0);
        assert_eq!(s.end_ms(), 30.0);
        assert!(pool.makespan_ms() < seq.makespan_ms());
        // preview agrees with what a commit would have produced
        let mut p = DevicePool::homogeneous(&Gpu::v100(), 1);
        p.commit_stages(0, &reqs, 0.0, 0.0, 1, true, 0.0);
        assert_eq!(p.preview_stages(0, &reqs, true, 0.0), 27.0);
    }

    #[test]
    fn release_time_delays_a_stage_booking() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let b = pool.commit_stages(0, &[req(1.0, 2.0)], 0.0, 0.0, 1, true, 10.0);
        assert_eq!(b.start_ms(), 10.0);
        assert_eq!(b.end_ms(), 13.0);
        assert_eq!(pool.makespan_ms(), 13.0);
        // the idle gap before the release is not busy time
        assert_eq!(pool.devices()[0].busy_ms(), 3.0);
    }

    #[test]
    fn rebook_frees_the_schedule_online() {
        // book factor + correct + 2 residual/correct pairs; execution
        // stops after the first pair → the tail comes off the
        // timelines and the next booking starts earlier
        let reqs = [
            req(12.0, 2.0),
            req(0.0, 0.5),
            req(0.2, 0.4),
            req(0.0, 0.5),
            req(0.2, 0.4),
            req(0.0, 0.5),
        ];
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let booking = pool.commit_stages(0, &reqs, 0.0, 0.0, 1, true, 0.0);
        let booked_end = booking.end_ms();
        let refund = pool.rebook(&booking, 4, RebookMode::Compact);
        let skipped: f64 = reqs[4..].iter().map(|r| r.wall_ms()).sum();
        assert!((refund.refunded_ms - skipped).abs() < 1e-12);
        assert!(refund.freed_ms > 0.0);
        assert!(pool.makespan_ms() < booked_end);
        assert_eq!(pool.devices()[0].refunded_ms(), refund.refunded_ms);
        // the next dispatch books into the freed tail
        let next = pool.commit_stages(0, &[req(0.0, 1.0)], 0.0, 0.0, 1, true, 0.0);
        assert!(next.start_ms() < booked_end);
        // settling past the end of the booking refunds nothing (note:
        // re-settling the *same* stage range would write its busy time
        // off twice — the API contract is one settle per booking)
        let again = pool.rebook(&booking, 6, RebookMode::Compact);
        assert_eq!(again.refunded_ms, 0.0);
    }

    #[test]
    fn tail_only_rebook_frees_only_what_is_still_the_tail() {
        let reqs = [req(2.0, 2.0), req(0.0, 1.0)];
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let first = pool.commit_stages(0, &reqs, 0.0, 0.0, 1, false, 0.0);
        // a later booking lands behind the tail: the tail cannot be
        // unwound, but the busy write-off still happens
        pool.commit_stages(0, &[req(0.0, 1.0)], 0.0, 0.0, 1, false, 0.0);
        let clock = pool.makespan_ms();
        let refund = pool.rebook(&first, 1, RebookMode::TailOnly);
        assert_eq!(refund.freed_ms, 0.0);
        assert_eq!(refund.refunded_ms, 1.0);
        assert_eq!(pool.makespan_ms(), clock);
        assert_eq!(pool.devices()[0].busy_ms(), 6.0 - 1.0);
    }

    #[test]
    fn compaction_slides_queued_booking_into_the_hole() {
        // same shape as the tail-only test, but under Compact the
        // stranded mid-schedule hole is freed and the queued second
        // booking slides left into it
        let reqs = [req(2.0, 2.0), req(0.0, 1.0)];
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let first = pool.commit_stages(0, &reqs, 0.0, 0.0, 1, false, 0.0);
        let second = pool.commit_stages(0, &[req(0.0, 1.0)], 0.0, 0.0, 1, false, 0.0);
        assert_eq!(second.start_ms(), 5.0);
        assert_eq!(pool.makespan_ms(), 6.0);
        let refund = pool.rebook(&first, 1, RebookMode::Compact);
        assert_eq!(refund.refunded_ms, 1.0);
        assert_eq!(refund.freed_ms, 1.0);
        assert_eq!(refund.slid, 1);
        assert!((refund.slid_ms - 1.0).abs() < 1e-12);
        // the queued booking moved from [5,6) into the freed [4,5)
        let moved = pool.live_booking(second.id).unwrap();
        assert_eq!(moved.start_ms(), 4.0);
        assert_eq!(pool.makespan_ms(), 5.0);
    }

    #[test]
    fn compaction_never_moves_a_started_dispatch() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let first = pool.commit_stages(0, &[req(2.0, 2.0), req(0.0, 4.0)], 0.0, 0.0, 1, false, 0.0);
        // the second booking's device work starts at 8, i.e. *before*
        // the hole a from-the-start refund of `third` would open at 12
        let second = pool.commit_stages(0, &[req(0.0, 3.0)], 0.0, 0.0, 1, false, 0.0);
        let third = pool.commit_stages(0, &[req(0.0, 1.0)], 0.0, 0.0, 1, false, 0.0);
        // settle first and second as fully executed
        pool.mark_settled(first.id);
        pool.mark_settled(second.id);
        let before = pool.live_booking(third.id).unwrap();
        // refund first's hypothetical... nothing: instead rebook third
        // itself from stage 0 under Compact — no *other* queued booking
        // exists, so nothing slides and nothing settled ever moves
        let refund = pool.rebook(&third, 0, RebookMode::Compact);
        assert_eq!(refund.slid, 0);
        assert!((refund.freed_ms - 1.0).abs() < 1e-12);
        // settled placements are untouched: first's two device spans
        // and second's span survive; only third's [11,12) came off
        assert_eq!(pool.devices()[0].device_timeline().intervals().len(), 3);
        assert_eq!(before.start_ms(), 11.0);
    }

    #[test]
    fn compaction_keeps_executed_prefix_in_place() {
        // a queued booking whose prep ran before the hole opened moves
        // only its compute; the prep interval (and its staging worker
        // slot) stay put
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let a = pool.commit_stages(0, &[req(0.0, 6.0), req(0.0, 2.0)], 0.0, 0.0, 1, true, 0.0);
        // b's prep overlaps under a's compute (starts at 0 on the free
        // prep lane), its compute queues behind a at 8
        let b = pool.commit_stages(0, &[req(3.0, 2.0)], 0.0, 0.0, 1, true, 0.0);
        assert_eq!(b.stages[0].host, (0.0, 3.0));
        assert_eq!(b.stages[0].device, (8.0, 10.0));
        // a stops after its first stage: [6,8) frees at 6; b's prep
        // (started at 0 < 6) stays, its compute slides 8→6
        let refund = pool.rebook(&a, 1, RebookMode::Compact);
        assert_eq!(refund.slid, 1);
        let moved = pool.live_booking(b.id).unwrap();
        assert_eq!(moved.stages[0].host, (0.0, 3.0));
        assert_eq!(moved.stages[0].device, (6.0, 8.0));
    }

    #[test]
    fn gap_fill_places_into_mid_schedule_hole() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let a = pool.commit_stages(
            0,
            &[req(0.0, 4.0), req(0.0, 4.0), req(0.0, 4.0)],
            0.0,
            0.0,
            1,
            true,
            0.0,
        );
        // free [4,12) mid-schedule... by compaction-free rebook of the
        // tail? No: strand it deliberately by booking a settled tail
        let tail = pool.commit_stages(0, &[req(0.0, 2.0)], 0.0, 0.0, 1, true, 0.0);
        pool.mark_settled(tail.id);
        let refund = pool.rebook(&a, 1, RebookMode::Compact);
        assert!((refund.freed_ms - 8.0).abs() < 1e-12);
        // a 6 ms job gap-fills into [4,12) instead of the tail at 14
        let fit = pool.commit_stages(0, &[req(0.0, 6.0)], 0.0, 0.0, 1, true, 0.0);
        assert_eq!(fit.start_ms(), 4.0);
        assert_eq!(fit.end_ms(), 10.0);
        // and previews agree with commits on gap placement
        assert_eq!(pool.preview_stages(0, &[req(0.0, 2.0)], true, 0.0), 12.0);
        let (s, e) = pool.preview_wall(0, 2.0, 0.0);
        assert_eq!((s, e), (10.0, 12.0));
    }

    #[test]
    fn staging_contention_delays_prep_across_devices() {
        // two devices, one staging worker: the second device's prep
        // must wait for the worker even though its own prep lane is
        // free — with k = 2 both preps run concurrently
        let reqs = [req(4.0, 2.0)];
        let mut one = DevicePool::homogeneous(&Gpu::v100(), 2);
        one.set_staging_workers(1);
        let a = one.commit_stages(0, &reqs, 0.0, 0.0, 1, true, 0.0);
        let b = one.commit_stages(1, &reqs, 0.0, 0.0, 1, true, 0.0);
        assert_eq!(a.stages[0].host, (0.0, 4.0));
        assert_eq!(b.stages[0].host, (4.0, 8.0));
        assert_eq!(one.makespan_ms(), 10.0);

        let mut two = DevicePool::homogeneous(&Gpu::v100(), 2);
        let a2 = two.commit_stages(0, &reqs, 0.0, 0.0, 1, true, 0.0);
        let b2 = two.commit_stages(1, &reqs, 0.0, 0.0, 1, true, 0.0);
        assert_eq!(a2.stages[0].host, (0.0, 4.0));
        assert_eq!(b2.stages[0].host, (0.0, 4.0));
        assert_eq!(two.makespan_ms(), 6.0);
        // previews see the contention too
        let mut p = DevicePool::homogeneous(&Gpu::v100(), 2);
        p.set_staging_workers(1);
        p.commit_stages(0, &reqs, 0.0, 0.0, 1, true, 0.0);
        assert_eq!(p.preview_stages(1, &reqs, true, 0.0), 10.0);
    }

    #[test]
    fn sequential_booking_respects_staging_workers() {
        // overlap off still books the prep part against a worker: with
        // one worker two sequential jobs on different devices cannot
        // overlap their prep windows
        let reqs = [req(3.0, 1.0)];
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        pool.set_staging_workers(1);
        let a = pool.commit_stages(0, &reqs, 0.0, 0.0, 1, false, 0.0);
        let b = pool.commit_stages(1, &reqs, 0.0, 0.0, 1, false, 0.0);
        assert_eq!(a.stages[0].host, (0.0, 3.0));
        // device 1 is free but the worker is busy until 3
        assert!(b.stages[0].host.0 >= 3.0);
    }

    #[test]
    fn hold_floor_delays_later_bookings() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        pool.hold_until(0, 60.0);
        let (s, _) = pool.preview_wall(0, 5.0, 0.0);
        assert_eq!(s, 60.0);
        let b = pool.commit_stages(0, &[req(0.0, 5.0)], 0.0, 0.0, 1, true, 0.0);
        assert_eq!(b.start_ms(), 60.0);
        // the floor-delayed booking now owns [60,65): the next preview
        // queues behind it
        let (s2, _) = pool.preview_wall(0, 5.0, 0.0);
        assert_eq!(s2, 65.0);
    }
}
