//! The device pool: N simulated GPUs with per-device simulated-time
//! clocks and throughput aggregates.
//!
//! The pool is the pipeline's model of a multi-GPU server: every device
//! owns a clock in *simulated* milliseconds (the analytic timing model's
//! currency, not host wall time). Dispatching a job advances the chosen
//! device's clock by the solve's modeled wall clock; the batch makespan
//! is the maximum clock over the pool, and throughput is solves per
//! simulated second of makespan.
//!
//! ## Stage-granular timelines
//!
//! A booking is no longer one opaque interval: [`DevicePool::commit_stages`]
//! books each stage of a staged plan as its own interval, split into
//! two *lanes* per device —
//!
//! * the **prep lane** (host-side overhead + PCIe transfers of a launch
//!   sequence: promotion, pinned-buffer staging, uploads), and
//! * the **compute lane** (kernel time + launch gaps).
//!
//! Within one stage the prep part completes before the compute part
//! starts (a stage's uploads feed its kernels), and a job's stages run
//! in order. *Across* jobs the lanes are independent: with overlap
//! enabled, the next job's factorization prep books under the current
//! job's residual/correct device passes — the standard async
//! copy/compute pipelining every CUDA service does with streams and
//! pinned staging buffers. Overlap changes *when* work is clocked,
//! never what arithmetic runs, so solutions stay bit-identical to
//! sequential booking.
//!
//! Stage bookings can also be handed back *online*:
//! [`DevicePool::rebook_tail`] rewinds the lane cursors over a
//! booking's unexecuted tail stages (an adaptive refinement that
//! certified early), so the freed time is visible to every later
//! dispatch — unlike the busy-only [`DevicePool::reconcile`], which
//! fixes the utilization books but leaves the schedule untouched.

use std::sync::Arc;

use gpusim::Gpu;
use mdls_obs::{Event, Observer};

/// Booking request of one planned stage, split by lane: the host-side
/// prep (fixed host overhead + PCIe transfer) and the device-side
/// execution (kernel time + launch gaps).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageReq {
    /// Prep-lane time, ms (host overhead + transfers).
    pub host_ms: f64,
    /// Compute-lane time, ms (kernels + launch gaps).
    pub device_ms: f64,
}

impl StageReq {
    /// A stage whose lane split is unknown (fused stage walls): treat
    /// `host_ms` of the total as prep and the rest as compute.
    pub fn split(wall_ms: f64, host_ms: f64) -> StageReq {
        let host = host_ms.clamp(0.0, wall_ms);
        StageReq {
            host_ms: host,
            device_ms: wall_ms - host,
        }
    }

    /// Total booked wall clock of this stage, ms.
    pub fn wall_ms(&self) -> f64 {
        self.host_ms + self.device_ms
    }
}

/// One stage's booked intervals on a device timeline.
#[derive(Clone, Copy, Debug)]
pub struct StageInterval {
    /// Prep-lane interval `(start, end)`, ms.
    pub host: (f64, f64),
    /// Compute-lane interval `(start, end)`, ms; starts no earlier than
    /// the prep interval ends.
    pub device: (f64, f64),
}

impl StageInterval {
    /// Earliest simulated time of this stage.
    pub fn start_ms(&self) -> f64 {
        self.host.0.min(self.device.0)
    }

    /// Completion time of this stage.
    pub fn end_ms(&self) -> f64 {
        self.device.1
    }

    /// Booked wall clock across both lanes, ms.
    pub fn wall_ms(&self) -> f64 {
        (self.host.1 - self.host.0) + (self.device.1 - self.device.0)
    }
}

/// A stage-granular booking: one interval pair per booked stage, in
/// stage order. Returned by [`DevicePool::commit_stages`]; handed back
/// to [`DevicePool::rebook_tail`] when execution stops early.
#[derive(Clone, Debug)]
pub struct StageBooking {
    /// Pool id of the booked device.
    pub device: usize,
    /// Per-stage intervals, aligned with the booked stage requests.
    pub stages: Vec<StageInterval>,
}

impl StageBooking {
    /// Simulated start of the first booked stage, ms.
    pub fn start_ms(&self) -> f64 {
        self.stages.first().map(|s| s.start_ms()).unwrap_or(0.0)
    }

    /// Simulated completion of the last booked stage, ms.
    pub fn end_ms(&self) -> f64 {
        self.stages.last().map(|s| s.end_ms()).unwrap_or(0.0)
    }
}

/// Outcome of an online re-booking: how much booked time was unwound
/// from the schedule vs merely written off the utilization books.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageRefund {
    /// Booked time removed from the lane cursors, ms — later dispatches
    /// book into it.
    pub freed_ms: f64,
    /// Booked-but-unexecuted time written off the busy aggregate, ms
    /// (includes `freed_ms`).
    pub refunded_ms: f64,
}

/// One pooled device and its running aggregates.
#[derive(Clone, Debug)]
pub struct PoolDevice {
    /// Pool-unique device id.
    pub id: usize,
    /// The device model (cloned into the pool, so heterogeneous pools
    /// may mix V100s, A100s, …).
    pub gpu: Gpu,
    /// Prep-lane cursor: end of the last booked host/transfer work, ms.
    host_until_ms: f64,
    /// Compute-lane cursor: end of the last booked device work, ms.
    device_until_ms: f64,
    /// Accumulated solve time, ms. Distinct from the clock: holding a
    /// device idle (a gap before a delayed job) advances the clock but
    /// not the busy aggregate, so utilization stays honest.
    busy_ms: f64,
    /// Booked time later handed back by [`DevicePool::reconcile`]
    /// (adaptive refinement finishing under its booked pass count).
    refunded_ms: f64,
    solves: u64,
    kernel_ms: f64,
    flops_paper: f64,
}

impl PoolDevice {
    /// Simulated time at which this device becomes idle: the latest end
    /// over both lanes.
    pub fn clock_ms(&self) -> f64 {
        self.host_until_ms.max(self.device_until_ms)
    }

    /// Simulated time this device spent solving, ms — excludes idle
    /// gaps, unlike [`PoolDevice::clock_ms`], and excludes booked time
    /// refunded by [`DevicePool::reconcile`].
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Booked-but-unused time handed back so far, ms.
    pub fn refunded_ms(&self) -> f64 {
        self.refunded_ms
    }

    /// Number of solves dispatched to this device.
    pub fn solves(&self) -> u64 {
        self.solves
    }
}

/// Throughput snapshot of one device, relative to a batch makespan.
#[derive(Clone, Debug)]
pub struct DeviceStats {
    /// Pool-unique device id.
    pub id: usize,
    /// Device model name.
    pub name: &'static str,
    /// Solves completed.
    pub solves: u64,
    /// Simulated busy time, ms.
    pub busy_ms: f64,
    /// Busy fraction of the batch makespan (occupancy of the device).
    /// Counts both lanes' booked time, so a stage-overlapped schedule —
    /// prep of one job hiding under another's kernels — can honestly
    /// report above 1.
    pub utilization: f64,
    /// Kernel-time gigaflops under the paper's reporting convention.
    pub kernel_gflops: f64,
    /// Solves per simulated second of busy time.
    pub solves_per_busy_sec: f64,
    /// Booked time handed back by adaptive plans, ms (already excluded
    /// from `busy_ms` and `utilization`).
    pub refunded_ms: f64,
}

/// A pool of simulated devices.
#[derive(Clone, Default)]
pub struct DevicePool {
    devices: Vec<PoolDevice>,
    /// Optional event sink (see [`DevicePool::attach_observer`]):
    /// timeline mutations emit [`Event`]s through it. `None` costs one
    /// branch per emit point and constructs nothing.
    observer: Option<Arc<dyn Observer>>,
}

impl std::fmt::Debug for DevicePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DevicePool")
            .field("devices", &self.devices)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl DevicePool {
    /// Pool over an explicit device list (heterogeneous pools allowed).
    pub fn new(gpus: Vec<Gpu>) -> Self {
        DevicePool {
            devices: gpus
                .into_iter()
                .enumerate()
                .map(|(id, gpu)| PoolDevice {
                    id,
                    gpu,
                    host_until_ms: 0.0,
                    device_until_ms: 0.0,
                    busy_ms: 0.0,
                    refunded_ms: 0.0,
                    solves: 0,
                    kernel_ms: 0.0,
                    flops_paper: 0.0,
                })
                .collect(),
            observer: None,
        }
    }

    /// Attach an event observer: every later timeline mutation
    /// (commits, stage bookings via the dispatch paths, refunds,
    /// holds) emits through it, and each pooled device is announced
    /// immediately so trace exports can name its tracks.
    ///
    /// Observability is inert: observers only read values the pool has
    /// already computed, so schedules and solutions are identical with
    /// or without one attached.
    pub fn attach_observer(&mut self, observer: Arc<dyn Observer>) {
        for d in &self.devices {
            observer.on_event(&Event::Device {
                device: d.id,
                name: d.gpu.name,
            });
        }
        self.observer = Some(observer);
    }

    /// The attached observer, if any — dispatch and settlement sites
    /// outside the pool emit their own events through this.
    pub fn observer(&self) -> Option<&Arc<dyn Observer>> {
        self.observer.as_ref()
    }

    /// Emit one event if (and only if) an observer is attached; the
    /// closure keeps event construction off the unobserved path.
    pub(crate) fn emit(&self, ev: impl FnOnce() -> Event) {
        if let Some(obs) = &self.observer {
            obs.on_event(&ev());
        }
    }

    /// Pool of `n` clones of one device model.
    pub fn homogeneous(gpu: &Gpu, n: usize) -> Self {
        DevicePool::new(std::iter::repeat_with(|| gpu.clone()).take(n).collect())
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the pool has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The pooled devices.
    pub fn devices(&self) -> &[PoolDevice] {
        &self.devices
    }

    /// The device model behind pool id `id`.
    pub fn gpu(&self, id: usize) -> &Gpu {
        &self.devices[id].gpu
    }

    /// Id of the least-loaded device: the earliest-idle clock, ties to
    /// the lowest id (deterministic dispatch).
    pub fn least_loaded(&self) -> usize {
        assert!(!self.devices.is_empty(), "empty device pool");
        self.devices
            .iter()
            .min_by(|a, b| a.clock_ms().total_cmp(&b.clock_ms()).then(a.id.cmp(&b.id)))
            .unwrap()
            .id
    }

    /// Earliest clock over the pool, ms — the soonest any device could
    /// start new work (the deadline-slack reference of the stream's
    /// fused-group cap).
    pub fn min_clock_ms(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.clock_ms())
            .fold(f64::INFINITY, f64::min)
            .min(f64::MAX)
    }

    /// Commit one solve to device `id`: advance its clock by `wall_ms`
    /// and fold the solve's accounting into the aggregates. Returns the
    /// simulated `(start, end)` interval of the solve.
    pub fn commit(
        &mut self,
        id: usize,
        wall_ms: f64,
        kernel_ms: f64,
        flops_paper: f64,
    ) -> (f64, f64) {
        self.commit_group(id, wall_ms, kernel_ms, flops_paper, 1)
    }

    /// Commit a fused group of `solves` micro-batched solves to device
    /// `id` as *one* booking: the clock advances once by the group's
    /// fused wall clock and the aggregates count every member solve.
    /// Returns the group's simulated `(start, end)` interval — all
    /// member jobs share it, because a fused launch sequence completes
    /// as a whole.
    pub fn commit_group(
        &mut self,
        id: usize,
        wall_ms: f64,
        kernel_ms: f64,
        flops_paper: f64,
        solves: u64,
    ) -> (f64, f64) {
        let d = &mut self.devices[id];
        let start = d.clock_ms();
        let end = start + wall_ms;
        // a composed (per-plan) booking occupies both lanes exclusively
        d.host_until_ms = end;
        d.device_until_ms = end;
        d.busy_ms += wall_ms;
        d.solves += solves;
        d.kernel_ms += kernel_ms;
        d.flops_paper += flops_paper;
        self.emit(|| Event::PlanSpan {
            device: id,
            jobs: solves as usize,
            start_ms: start,
            end_ms: end,
        });
        (start, end)
    }

    /// Lay `reqs` onto lane cursors `(host, device)` starting no earlier
    /// than `not_before`: each stage's prep books at the prep cursor
    /// (after the previous stage completes), its compute after its own
    /// prep and the compute cursor. `overlap = false` collapses both
    /// lanes into one cursor — stage intervals then tile the same
    /// single contiguous interval a composed [`DevicePool::commit`]
    /// would book.
    fn lay_stages(
        mut host: f64,
        mut device: f64,
        reqs: &[StageReq],
        overlap: bool,
        not_before: f64,
    ) -> (Vec<StageInterval>, f64, f64) {
        if !overlap {
            let cur = host.max(device);
            host = cur;
            device = cur;
        }
        let mut prev_end = not_before;
        let stages = reqs
            .iter()
            .map(|r| {
                if !overlap {
                    host = host.max(device);
                }
                let hs = host.max(prev_end);
                let he = hs + r.host_ms;
                let ds = device.max(he);
                let de = ds + r.device_ms;
                // a zero-width lane part never advances its cursor —
                // a stage with no prep must not push the prep lane past
                // work that could still hide under earlier compute
                if r.host_ms > 0.0 {
                    host = he;
                }
                if r.device_ms > 0.0 {
                    device = de;
                }
                prev_end = de;
                StageInterval {
                    host: (hs, he),
                    device: (ds, de),
                }
            })
            .collect();
        (stages, host, device)
    }

    /// Preview the completion time of booking `reqs` on device `id`
    /// without committing anything — the stage-timeline cost the SECT
    /// policy ranks devices by.
    pub fn preview_stages(
        &self,
        id: usize,
        reqs: &[StageReq],
        overlap: bool,
        not_before: f64,
    ) -> f64 {
        let d = &self.devices[id];
        let (stages, _, _) = DevicePool::lay_stages(
            d.host_until_ms,
            d.device_until_ms,
            reqs,
            overlap,
            not_before,
        );
        stages.last().map(|s| s.end_ms()).unwrap_or(d.clock_ms())
    }

    /// Book `reqs` stage by stage onto device `id`'s timeline (see the
    /// module docs for the lane model), counting `solves` member solves
    /// and folding `kernel_ms`/`flops_paper` into the aggregates once
    /// for the whole booking. `not_before` is the earliest admissible
    /// start (a job's simulated release time); `overlap = false` books
    /// the same contiguous interval a composed commit would.
    ///
    /// The busy aggregate counts every lane's booked time, so a device
    /// whose prep lane hides under its compute lane can report
    /// utilization above 1 — both lanes really are doing work.
    pub fn commit_stages(
        &mut self,
        id: usize,
        reqs: &[StageReq],
        kernel_ms: f64,
        flops_paper: f64,
        solves: u64,
        overlap: bool,
        not_before: f64,
    ) -> StageBooking {
        let d = &mut self.devices[id];
        let (stages, host, device) = DevicePool::lay_stages(
            d.host_until_ms,
            d.device_until_ms,
            reqs,
            overlap,
            not_before,
        );
        d.host_until_ms = host;
        d.device_until_ms = device;
        d.busy_ms += reqs.iter().map(|r| r.wall_ms()).sum::<f64>();
        d.solves += solves;
        d.kernel_ms += kernel_ms;
        d.flops_paper += flops_paper;
        StageBooking { device: id, stages }
    }

    /// Hand back a booking's tail *online*: stages `from_stage..` were
    /// never executed (the adaptive stop certified early), so rewind
    /// the lane cursors over their intervals wherever they are still
    /// the lane tails — later dispatches then book into the freed time,
    /// which is what distinguishes re-booking from the busy-only
    /// [`DevicePool::reconcile`]. The whole skipped tail is written off
    /// the busy aggregate either way; only the part that was still the
    /// timeline tail is actually freed (an interval another booking
    /// already landed behind cannot be unwound from a cursor timeline).
    ///
    /// Settle each booking **at most once**: the pool keeps no record
    /// of which bookings were already handed back, so a repeated call
    /// over the same stages writes their busy time off again (the
    /// cursor rewinds themselves are safely skipped). The staged
    /// engines settle every dispatch exactly once, right after its
    /// execution.
    pub fn rebook_tail(&mut self, booking: &StageBooking, from_stage: usize) -> StageRefund {
        let d = &mut self.devices[booking.device];
        let mut refund = StageRefund::default();
        let from = from_stage.min(booking.stages.len());
        let mut host_tail = true;
        let mut device_tail = true;
        for s in booking.stages[from..].iter().rev() {
            refund.refunded_ms += s.wall_ms();
            // A stage is un-bookable only while it is still the exact
            // stored tail of the device/host timeline; these compare a
            // value we wrote against itself, so identity is the test.
            // analyze::allow(float-eq-outside-core): stored-endpoint identity
            if device_tail && d.device_until_ms == s.device.1 {
                d.device_until_ms = s.device.0;
                refund.freed_ms += s.device.1 - s.device.0;
            } else {
                device_tail = false;
            }
            // analyze::allow(float-eq-outside-core): stored-endpoint identity
            if host_tail && d.host_until_ms == s.host.1 {
                d.host_until_ms = s.host.0;
                refund.freed_ms += s.host.1 - s.host.0;
            } else {
                host_tail = false;
            }
        }
        let r = refund.refunded_ms.min(d.busy_ms);
        d.busy_ms -= r;
        d.refunded_ms += r;
        let at_ms = d.device_until_ms;
        if refund.refunded_ms > 0.0 {
            self.emit(|| Event::Refund {
                device: booking.device,
                from_stage: from,
                freed_ms: refund.freed_ms,
                refunded_ms: refund.refunded_ms,
                at_ms,
            });
        }
        refund
    }

    /// Hand back booked-but-unused time on device `id`: an adaptive
    /// refinement that met its digit target early executed fewer
    /// stages than its plan booked. The *clock* keeps the booked
    /// schedule (later dispatches were placed against it — the refund
    /// shows up as an idle gap, exactly what the device would see), but
    /// the busy aggregate drops so utilization and solves-per-busy-sec
    /// report what actually ran.
    pub fn reconcile(&mut self, id: usize, refund_ms: f64) {
        let d = &mut self.devices[id];
        let r = refund_ms.max(0.0).min(d.busy_ms);
        d.busy_ms -= r;
        d.refunded_ms += r;
        if r > 0.0 {
            self.emit(|| Event::Reconciled {
                device: id,
                refund_ms: r,
            });
        }
    }

    /// Hold device `id` idle until simulated time `until_ms` (no-op if
    /// its clock is already past). Advances the clock without touching
    /// the busy aggregate — the modeled idle gap before a delayed or
    /// deadline-held job.
    pub fn hold_until(&mut self, id: usize, until_ms: f64) {
        let d = &mut self.devices[id];
        let advanced = until_ms > d.host_until_ms || until_ms > d.device_until_ms;
        d.host_until_ms = d.host_until_ms.max(until_ms);
        d.device_until_ms = d.device_until_ms.max(until_ms);
        if advanced {
            self.emit(|| Event::Held {
                device: id,
                until_ms,
            });
        }
    }

    /// Batch makespan: the latest clock over the pool, ms.
    pub fn makespan_ms(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.clock_ms())
            .fold(0.0, f64::max)
    }

    /// Total solves across the pool.
    pub fn total_solves(&self) -> u64 {
        self.devices.iter().map(|d| d.solves).sum()
    }

    /// Aggregate throughput: solves per simulated second of makespan.
    pub fn solves_per_sec(&self) -> f64 {
        let ms = self.makespan_ms();
        if ms <= 0.0 {
            return 0.0;
        }
        self.total_solves() as f64 / (ms * 1.0e-3)
    }

    /// Zero all clocks and aggregates (reuse the pool for a new batch).
    pub fn reset(&mut self) {
        for d in &mut self.devices {
            d.host_until_ms = 0.0;
            d.device_until_ms = 0.0;
            d.busy_ms = 0.0;
            d.refunded_ms = 0.0;
            d.solves = 0;
            d.kernel_ms = 0.0;
            d.flops_paper = 0.0;
        }
    }

    /// Per-device throughput snapshots against the current makespan.
    pub fn stats(&self) -> Vec<DeviceStats> {
        let makespan = self.makespan_ms();
        self.devices
            .iter()
            .map(|d| DeviceStats {
                id: d.id,
                name: d.gpu.name,
                solves: d.solves,
                busy_ms: d.busy_ms,
                utilization: if makespan > 0.0 {
                    d.busy_ms / makespan
                } else {
                    0.0
                },
                kernel_gflops: if d.kernel_ms > 0.0 {
                    d.flops_paper / (d.kernel_ms * 1.0e-3) / 1.0e9
                } else {
                    0.0
                },
                solves_per_busy_sec: if d.busy_ms > 0.0 {
                    d.solves as f64 / (d.busy_ms * 1.0e-3)
                } else {
                    0.0
                },
                refunded_ms: d.refunded_ms,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_prefers_earliest_then_lowest_id() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 3);
        assert_eq!(pool.least_loaded(), 0);
        pool.commit(0, 10.0, 8.0, 1.0e9);
        assert_eq!(pool.least_loaded(), 1);
        pool.commit(1, 4.0, 3.0, 1.0e9);
        pool.commit(2, 4.0, 3.0, 1.0e9);
        // devices 1 and 2 tie at 4.0 ms: lowest id wins
        assert_eq!(pool.least_loaded(), 1);
    }

    #[test]
    fn makespan_and_throughput() {
        let mut pool = DevicePool::homogeneous(&Gpu::a100(), 2);
        pool.commit(0, 100.0, 80.0, 1.0e9);
        pool.commit(1, 250.0, 200.0, 2.0e9);
        assert_eq!(pool.makespan_ms(), 250.0);
        assert_eq!(pool.total_solves(), 2);
        // 2 solves / 0.25 s = 8 solves/s
        assert!((pool.solves_per_sec() - 8.0).abs() < 1e-12);
        let stats = pool.stats();
        assert!((stats[0].utilization - 0.4).abs() < 1e-12);
        assert!((stats[1].utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_gaps_do_not_inflate_utilization() {
        // regression: `busy_until_ms` doubled as the busy aggregate, so
        // any idle gap counted as busy time and over-reported
        // utilization (and under-reported solves/busy-sec)
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        pool.hold_until(0, 60.0); // 60 ms idle gap before the first solve
        pool.commit(0, 40.0, 30.0, 1.0e9);
        pool.commit(1, 100.0, 80.0, 1.0e9);
        assert_eq!(pool.makespan_ms(), 100.0);
        let stats = pool.stats();
        assert_eq!(stats[0].busy_ms, 40.0);
        assert!((stats[0].utilization - 0.4).abs() < 1e-12);
        assert!((stats[1].utilization - 1.0).abs() < 1e-12);
        // 1 solve / 0.04 busy-sec = 25 solves per busy second
        assert!((stats[0].solves_per_busy_sec - 25.0).abs() < 1e-9);
        // holding a device never rewinds its clock
        pool.hold_until(1, 10.0);
        assert_eq!(pool.devices()[1].clock_ms(), 100.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        pool.hold_until(0, 2.0);
        pool.commit(0, 5.0, 4.0, 1.0);
        pool.reset();
        assert_eq!(pool.makespan_ms(), 0.0);
        assert_eq!(pool.total_solves(), 0);
        assert_eq!(pool.devices()[0].busy_ms(), 0.0);
    }

    #[test]
    fn group_commit_books_once_counts_all() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let (start, end) = pool.commit_group(0, 30.0, 20.0, 6.0e9, 8);
        assert_eq!((start, end), (0.0, 30.0));
        assert_eq!(pool.total_solves(), 8);
        // one fused interval, not eight
        assert_eq!(pool.makespan_ms(), 30.0);
        // 8 solves / 0.03 busy-sec
        let s = &pool.stats()[0];
        assert!((s.solves_per_busy_sec - 8.0 / 0.030).abs() < 1e-9);
    }

    #[test]
    fn reconcile_refunds_busy_time_not_the_clock() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        pool.commit(0, 100.0, 80.0, 1.0e9);
        pool.reconcile(0, 25.0);
        // the schedule keeps the booked clock...
        assert_eq!(pool.makespan_ms(), 100.0);
        // ...but the busy aggregate reports what actually ran
        let s = &pool.stats()[0];
        assert_eq!(s.busy_ms, 75.0);
        assert_eq!(s.refunded_ms, 25.0);
        assert!((s.utilization - 0.75).abs() < 1e-12);
        // refunds never go negative, even on an absurd request
        pool.reconcile(0, 1.0e9);
        assert_eq!(pool.stats()[0].busy_ms, 0.0);
        pool.reset();
        assert_eq!(pool.devices()[0].refunded_ms(), 0.0);
    }

    #[test]
    fn heterogeneous_pool_keeps_models() {
        let pool = DevicePool::new(vec![Gpu::v100(), Gpu::a100(), Gpu::p100()]);
        assert_eq!(pool.gpu(1).name, "A100");
        assert_eq!(pool.devices()[2].gpu.name, "P100");
    }

    fn req(host: f64, device: f64) -> StageReq {
        StageReq {
            host_ms: host,
            device_ms: device,
        }
    }

    #[test]
    fn sequential_stage_booking_matches_composed_commit() {
        // overlap off: stage intervals tile the exact interval one
        // composed commit would book — per-plan and stage-granular
        // sequential bookings are timing-identical
        let reqs = [req(12.0, 2.0), req(0.0, 0.5), req(0.1, 0.4)];
        let wall: f64 = reqs.iter().map(|r| r.wall_ms()).sum();
        let mut a = DevicePool::homogeneous(&Gpu::v100(), 1);
        a.commit(0, wall, 0.0, 0.0);
        let mut b = DevicePool::homogeneous(&Gpu::v100(), 1);
        let booking = b.commit_stages(0, &reqs, 0.0, 0.0, 1, false, 0.0);
        assert_eq!(booking.start_ms(), 0.0);
        assert!((booking.end_ms() - wall).abs() < 1e-12);
        assert!((a.makespan_ms() - b.makespan_ms()).abs() < 1e-12);
        assert_eq!(a.devices()[0].busy_ms(), b.devices()[0].busy_ms());
        // stages are contiguous
        let mut clock = 0.0;
        for s in &booking.stages {
            assert_eq!(s.start_ms(), clock);
            clock = s.end_ms();
        }
    }

    #[test]
    fn overlapped_booking_hides_prep_under_compute() {
        // job A: long factor (prep 12 + compute 2) and a device-only
        // tail; job B books after it with overlap — B's prep lane runs
        // while A still computes, so B finishes well before the
        // sequential 2x cadence
        let reqs = [req(12.0, 2.0), req(0.0, 1.0)];
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let a = pool.commit_stages(0, &reqs, 0.0, 0.0, 1, true, 0.0);
        assert_eq!(a.end_ms(), 15.0);
        let b = pool.commit_stages(0, &reqs, 0.0, 0.0, 1, true, 0.0);
        // B's prep starts at A's prep end (12), ends 24; B's compute
        // waits for its own prep (24) and A's compute lane (15) → 24–26
        assert_eq!(b.stages[0].host, (12.0, 24.0));
        assert_eq!(b.stages[0].device, (24.0, 26.0));
        assert_eq!(b.end_ms(), 27.0);
        // sequential booking of the same pair would end at 30
        let mut seq = DevicePool::homogeneous(&Gpu::v100(), 1);
        seq.commit_stages(0, &reqs, 0.0, 0.0, 1, false, 0.0);
        let s = seq.commit_stages(0, &reqs, 0.0, 0.0, 1, false, 0.0);
        assert_eq!(s.end_ms(), 30.0);
        assert!(pool.makespan_ms() < seq.makespan_ms());
        // preview agrees with what a commit would have produced
        let mut p = DevicePool::homogeneous(&Gpu::v100(), 1);
        p.commit_stages(0, &reqs, 0.0, 0.0, 1, true, 0.0);
        assert_eq!(p.preview_stages(0, &reqs, true, 0.0), 27.0);
    }

    #[test]
    fn release_time_delays_a_stage_booking() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let b = pool.commit_stages(0, &[req(1.0, 2.0)], 0.0, 0.0, 1, true, 10.0);
        assert_eq!(b.start_ms(), 10.0);
        assert_eq!(b.end_ms(), 13.0);
        assert_eq!(pool.makespan_ms(), 13.0);
        // the idle gap before the release is not busy time
        assert_eq!(pool.devices()[0].busy_ms(), 3.0);
    }

    #[test]
    fn rebook_tail_frees_the_schedule_online() {
        // book factor + correct + 2 residual/correct pairs; execution
        // stops after the first pair → the tail rewinds off the lane
        // cursors and the next booking starts earlier
        let reqs = [
            req(12.0, 2.0),
            req(0.0, 0.5),
            req(0.2, 0.4),
            req(0.0, 0.5),
            req(0.2, 0.4),
            req(0.0, 0.5),
        ];
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let booking = pool.commit_stages(0, &reqs, 0.0, 0.0, 1, true, 0.0);
        let booked_end = booking.end_ms();
        let refund = pool.rebook_tail(&booking, 4);
        let skipped: f64 = reqs[4..].iter().map(|r| r.wall_ms()).sum();
        assert!((refund.refunded_ms - skipped).abs() < 1e-12);
        assert!(refund.freed_ms > 0.0);
        assert!(pool.makespan_ms() < booked_end);
        assert_eq!(pool.devices()[0].refunded_ms(), refund.refunded_ms);
        // the next dispatch books into the freed tail
        let next = pool.commit_stages(0, &[req(0.0, 1.0)], 0.0, 0.0, 1, true, 0.0);
        assert!(next.start_ms() < booked_end);
        // settling past the end of the booking refunds nothing (note:
        // re-settling the *same* stage range would write its busy time
        // off twice — the API contract is one settle per booking)
        let again = pool.rebook_tail(&booking, 6);
        assert_eq!(again.refunded_ms, 0.0);
    }

    #[test]
    fn rebook_tail_only_frees_what_is_still_the_tail() {
        let reqs = [req(2.0, 2.0), req(0.0, 1.0)];
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let first = pool.commit_stages(0, &reqs, 0.0, 0.0, 1, false, 0.0);
        // a later booking lands behind the tail: the tail cannot be
        // unwound, but the busy write-off still happens
        pool.commit_stages(0, &[req(0.0, 1.0)], 0.0, 0.0, 1, false, 0.0);
        let clock = pool.makespan_ms();
        let refund = pool.rebook_tail(&first, 1);
        assert_eq!(refund.freed_ms, 0.0);
        assert_eq!(refund.refunded_ms, 1.0);
        assert_eq!(pool.makespan_ms(), clock);
        assert_eq!(pool.devices()[0].busy_ms(), 6.0 - 1.0);
    }
}
