//! The device pool: N simulated GPUs with per-device simulated-time
//! clocks and throughput aggregates.
//!
//! The pool is the pipeline's model of a multi-GPU server: every device
//! owns a clock in *simulated* milliseconds (the analytic timing model's
//! currency, not host wall time). Dispatching a job advances the chosen
//! device's clock by the solve's modeled wall clock; the batch makespan
//! is the maximum clock over the pool, and throughput is solves per
//! simulated second of makespan.

use gpusim::Gpu;

/// One pooled device and its running aggregates.
#[derive(Clone, Debug)]
pub struct PoolDevice {
    /// Pool-unique device id.
    pub id: usize,
    /// The device model (cloned into the pool, so heterogeneous pools
    /// may mix V100s, A100s, …).
    pub gpu: Gpu,
    busy_until_ms: f64,
    /// Accumulated solve time, ms. Distinct from the clock: holding a
    /// device idle (a gap before a delayed job) advances the clock but
    /// not the busy aggregate, so utilization stays honest.
    busy_ms: f64,
    /// Booked time later handed back by [`DevicePool::reconcile`]
    /// (adaptive refinement finishing under its booked pass count).
    refunded_ms: f64,
    solves: u64,
    kernel_ms: f64,
    flops_paper: f64,
}

impl PoolDevice {
    /// Simulated time at which this device becomes idle.
    pub fn clock_ms(&self) -> f64 {
        self.busy_until_ms
    }

    /// Simulated time this device spent solving, ms — excludes idle
    /// gaps, unlike [`PoolDevice::clock_ms`], and excludes booked time
    /// refunded by [`DevicePool::reconcile`].
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Booked-but-unused time handed back so far, ms.
    pub fn refunded_ms(&self) -> f64 {
        self.refunded_ms
    }

    /// Number of solves dispatched to this device.
    pub fn solves(&self) -> u64 {
        self.solves
    }
}

/// Throughput snapshot of one device, relative to a batch makespan.
#[derive(Clone, Debug)]
pub struct DeviceStats {
    /// Pool-unique device id.
    pub id: usize,
    /// Device model name.
    pub name: &'static str,
    /// Solves completed.
    pub solves: u64,
    /// Simulated busy time, ms.
    pub busy_ms: f64,
    /// Busy fraction of the batch makespan (occupancy of the device).
    pub utilization: f64,
    /// Kernel-time gigaflops under the paper's reporting convention.
    pub kernel_gflops: f64,
    /// Solves per simulated second of busy time.
    pub solves_per_busy_sec: f64,
    /// Booked time handed back by adaptive plans, ms (already excluded
    /// from `busy_ms` and `utilization`).
    pub refunded_ms: f64,
}

/// A pool of simulated devices.
#[derive(Clone, Debug, Default)]
pub struct DevicePool {
    devices: Vec<PoolDevice>,
}

impl DevicePool {
    /// Pool over an explicit device list (heterogeneous pools allowed).
    pub fn new(gpus: Vec<Gpu>) -> Self {
        DevicePool {
            devices: gpus
                .into_iter()
                .enumerate()
                .map(|(id, gpu)| PoolDevice {
                    id,
                    gpu,
                    busy_until_ms: 0.0,
                    busy_ms: 0.0,
                    refunded_ms: 0.0,
                    solves: 0,
                    kernel_ms: 0.0,
                    flops_paper: 0.0,
                })
                .collect(),
        }
    }

    /// Pool of `n` clones of one device model.
    pub fn homogeneous(gpu: &Gpu, n: usize) -> Self {
        DevicePool::new(std::iter::repeat_with(|| gpu.clone()).take(n).collect())
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the pool has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The pooled devices.
    pub fn devices(&self) -> &[PoolDevice] {
        &self.devices
    }

    /// The device model behind pool id `id`.
    pub fn gpu(&self, id: usize) -> &Gpu {
        &self.devices[id].gpu
    }

    /// Id of the least-loaded device: the earliest-idle clock, ties to
    /// the lowest id (deterministic dispatch).
    pub fn least_loaded(&self) -> usize {
        assert!(!self.devices.is_empty(), "empty device pool");
        self.devices
            .iter()
            .min_by(|a, b| {
                a.busy_until_ms
                    .total_cmp(&b.busy_until_ms)
                    .then(a.id.cmp(&b.id))
            })
            .unwrap()
            .id
    }

    /// Commit one solve to device `id`: advance its clock by `wall_ms`
    /// and fold the solve's accounting into the aggregates. Returns the
    /// simulated `(start, end)` interval of the solve.
    pub fn commit(
        &mut self,
        id: usize,
        wall_ms: f64,
        kernel_ms: f64,
        flops_paper: f64,
    ) -> (f64, f64) {
        self.commit_group(id, wall_ms, kernel_ms, flops_paper, 1)
    }

    /// Commit a fused group of `solves` micro-batched solves to device
    /// `id` as *one* booking: the clock advances once by the group's
    /// fused wall clock and the aggregates count every member solve.
    /// Returns the group's simulated `(start, end)` interval — all
    /// member jobs share it, because a fused launch sequence completes
    /// as a whole.
    pub fn commit_group(
        &mut self,
        id: usize,
        wall_ms: f64,
        kernel_ms: f64,
        flops_paper: f64,
        solves: u64,
    ) -> (f64, f64) {
        let d = &mut self.devices[id];
        let start = d.busy_until_ms;
        d.busy_until_ms += wall_ms;
        d.busy_ms += wall_ms;
        d.solves += solves;
        d.kernel_ms += kernel_ms;
        d.flops_paper += flops_paper;
        (start, d.busy_until_ms)
    }

    /// Hand back booked-but-unused time on device `id`: an adaptive
    /// refinement that met its digit target early executed fewer
    /// stages than its plan booked. The *clock* keeps the booked
    /// schedule (later dispatches were placed against it — the refund
    /// shows up as an idle gap, exactly what the device would see), but
    /// the busy aggregate drops so utilization and solves-per-busy-sec
    /// report what actually ran.
    pub fn reconcile(&mut self, id: usize, refund_ms: f64) {
        let d = &mut self.devices[id];
        let r = refund_ms.max(0.0).min(d.busy_ms);
        d.busy_ms -= r;
        d.refunded_ms += r;
    }

    /// Hold device `id` idle until simulated time `until_ms` (no-op if
    /// its clock is already past). Advances the clock without touching
    /// the busy aggregate — the modeled idle gap before a delayed or
    /// deadline-held job.
    pub fn hold_until(&mut self, id: usize, until_ms: f64) {
        let d = &mut self.devices[id];
        d.busy_until_ms = d.busy_until_ms.max(until_ms);
    }

    /// Batch makespan: the latest clock over the pool, ms.
    pub fn makespan_ms(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.busy_until_ms)
            .fold(0.0, f64::max)
    }

    /// Total solves across the pool.
    pub fn total_solves(&self) -> u64 {
        self.devices.iter().map(|d| d.solves).sum()
    }

    /// Aggregate throughput: solves per simulated second of makespan.
    pub fn solves_per_sec(&self) -> f64 {
        let ms = self.makespan_ms();
        if ms <= 0.0 {
            return 0.0;
        }
        self.total_solves() as f64 / (ms * 1.0e-3)
    }

    /// Zero all clocks and aggregates (reuse the pool for a new batch).
    pub fn reset(&mut self) {
        for d in &mut self.devices {
            d.busy_until_ms = 0.0;
            d.busy_ms = 0.0;
            d.refunded_ms = 0.0;
            d.solves = 0;
            d.kernel_ms = 0.0;
            d.flops_paper = 0.0;
        }
    }

    /// Per-device throughput snapshots against the current makespan.
    pub fn stats(&self) -> Vec<DeviceStats> {
        let makespan = self.makespan_ms();
        self.devices
            .iter()
            .map(|d| DeviceStats {
                id: d.id,
                name: d.gpu.name,
                solves: d.solves,
                busy_ms: d.busy_ms,
                utilization: if makespan > 0.0 {
                    d.busy_ms / makespan
                } else {
                    0.0
                },
                kernel_gflops: if d.kernel_ms > 0.0 {
                    d.flops_paper / (d.kernel_ms * 1.0e-3) / 1.0e9
                } else {
                    0.0
                },
                solves_per_busy_sec: if d.busy_ms > 0.0 {
                    d.solves as f64 / (d.busy_ms * 1.0e-3)
                } else {
                    0.0
                },
                refunded_ms: d.refunded_ms,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_prefers_earliest_then_lowest_id() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 3);
        assert_eq!(pool.least_loaded(), 0);
        pool.commit(0, 10.0, 8.0, 1.0e9);
        assert_eq!(pool.least_loaded(), 1);
        pool.commit(1, 4.0, 3.0, 1.0e9);
        pool.commit(2, 4.0, 3.0, 1.0e9);
        // devices 1 and 2 tie at 4.0 ms: lowest id wins
        assert_eq!(pool.least_loaded(), 1);
    }

    #[test]
    fn makespan_and_throughput() {
        let mut pool = DevicePool::homogeneous(&Gpu::a100(), 2);
        pool.commit(0, 100.0, 80.0, 1.0e9);
        pool.commit(1, 250.0, 200.0, 2.0e9);
        assert_eq!(pool.makespan_ms(), 250.0);
        assert_eq!(pool.total_solves(), 2);
        // 2 solves / 0.25 s = 8 solves/s
        assert!((pool.solves_per_sec() - 8.0).abs() < 1e-12);
        let stats = pool.stats();
        assert!((stats[0].utilization - 0.4).abs() < 1e-12);
        assert!((stats[1].utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_gaps_do_not_inflate_utilization() {
        // regression: `busy_until_ms` doubled as the busy aggregate, so
        // any idle gap counted as busy time and over-reported
        // utilization (and under-reported solves/busy-sec)
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        pool.hold_until(0, 60.0); // 60 ms idle gap before the first solve
        pool.commit(0, 40.0, 30.0, 1.0e9);
        pool.commit(1, 100.0, 80.0, 1.0e9);
        assert_eq!(pool.makespan_ms(), 100.0);
        let stats = pool.stats();
        assert_eq!(stats[0].busy_ms, 40.0);
        assert!((stats[0].utilization - 0.4).abs() < 1e-12);
        assert!((stats[1].utilization - 1.0).abs() < 1e-12);
        // 1 solve / 0.04 busy-sec = 25 solves per busy second
        assert!((stats[0].solves_per_busy_sec - 25.0).abs() < 1e-9);
        // holding a device never rewinds its clock
        pool.hold_until(1, 10.0);
        assert_eq!(pool.devices()[1].clock_ms(), 100.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        pool.hold_until(0, 2.0);
        pool.commit(0, 5.0, 4.0, 1.0);
        pool.reset();
        assert_eq!(pool.makespan_ms(), 0.0);
        assert_eq!(pool.total_solves(), 0);
        assert_eq!(pool.devices()[0].busy_ms(), 0.0);
    }

    #[test]
    fn group_commit_books_once_counts_all() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let (start, end) = pool.commit_group(0, 30.0, 20.0, 6.0e9, 8);
        assert_eq!((start, end), (0.0, 30.0));
        assert_eq!(pool.total_solves(), 8);
        // one fused interval, not eight
        assert_eq!(pool.makespan_ms(), 30.0);
        // 8 solves / 0.03 busy-sec
        let s = &pool.stats()[0];
        assert!((s.solves_per_busy_sec - 8.0 / 0.030).abs() < 1e-9);
    }

    #[test]
    fn reconcile_refunds_busy_time_not_the_clock() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        pool.commit(0, 100.0, 80.0, 1.0e9);
        pool.reconcile(0, 25.0);
        // the schedule keeps the booked clock...
        assert_eq!(pool.makespan_ms(), 100.0);
        // ...but the busy aggregate reports what actually ran
        let s = &pool.stats()[0];
        assert_eq!(s.busy_ms, 75.0);
        assert_eq!(s.refunded_ms, 25.0);
        assert!((s.utilization - 0.75).abs() < 1e-12);
        // refunds never go negative, even on an absurd request
        pool.reconcile(0, 1.0e9);
        assert_eq!(pool.stats()[0].busy_ms, 0.0);
        pool.reset();
        assert_eq!(pool.devices()[0].refunded_ms(), 0.0);
    }

    #[test]
    fn heterogeneous_pool_keeps_models() {
        let pool = DevicePool::new(vec![Gpu::v100(), Gpu::a100(), Gpu::p100()]);
        assert_eq!(pool.gpu(1).name, "A100");
        assert_eq!(pool.devices()[2].gpu.name, "P100");
    }
}
