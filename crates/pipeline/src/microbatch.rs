//! Device-level micro-batching: fuse small same-shaped solves into
//! batched launch sequences.
//!
//! The paper's workloads are dominated by systems small enough that a
//! single QR badly underfills one GPU — wave quantization leaves most
//! multiprocessors idle for a single-digit grid, and every launch pays
//! its full base and gap for a sliver of work. The pool parallelizes
//! *across* devices; this module batches *within* a device, the
//! standard batched-LA trick (cf. cuBLAS/MAGMA batched QR): jobs that
//! share a [`JobShape`] — and therefore a plan structure — are grouped
//! into **fused groups** whose stages run as single launches carrying
//! every member's blocks.
//!
//! * **Grouping** ([`plan_groups`]): jobs are bucketed by shape key in
//!   submission order and chunked at the occupancy-aware preferred
//!   group size ([`Planner::preferred_group_size`]) — the smallest
//!   group whose fused grid reaches the per-job cost plateau of the
//!   device's wave structure. Bigger groups would only add latency (a
//!   fused group completes as a whole).
//! * **Dispatch** ([`dispatch_group`]): a fused group is placed like
//!   one job, under the same [`DispatchPolicy`] rules, but booked at
//!   its *fused* price ([`Planner::plan_fused`]) — one pool booking of
//!   the group's [`FusedProfile`] instead of `k` singleton bookings.
//!   Every member job still gets its own outcome; members share the
//!   group's simulated interval.
//! * **Execution** (`solve_planned_fused` in [`crate::batch`]): each
//!   member's functional launch sequence is exactly the singleton
//!   sequence, so solutions are bit-identical to the unfused path —
//!   fusing is launch packing, never different arithmetic.

use crate::plan::{ExecPlan, FusedProfile};
use crate::planner::Planner;
use crate::pool::{DevicePool, StageBooking};
use crate::scheduler::{
    place_by_end, place_release, Dispatch, DispatchPolicy, JobShape, StageSchedConfig,
};
use mdls_obs::Event;

/// Configuration of the micro-batcher.
#[derive(Clone, Copy, Debug)]
pub struct MicrobatchConfig {
    /// Hard cap on fused-group size. Groups larger than the occupancy
    /// sweet spot buy nothing (the per-job cost has plateaued) and cost
    /// latency, so this is a guard rail, not a tuning knob.
    pub max_group: usize,
    /// Sweet-spot tolerance: the chosen group is the smallest whose
    /// fused per-job cost is within `1 + tolerance` of the best
    /// candidate's.
    pub tolerance: f64,
}

impl Default for MicrobatchConfig {
    fn default() -> Self {
        MicrobatchConfig {
            max_group: 64,
            tolerance: 0.05,
        }
    }
}

impl MicrobatchConfig {
    /// Fusion disabled: every job dispatches as a singleton group,
    /// booked at its singleton price — the legacy-timing escape hatch
    /// now that the default entry points fuse.
    pub fn off() -> Self {
        MicrobatchConfig {
            max_group: 1,
            tolerance: 0.0,
        }
    }

    /// True when this configuration never fuses anything.
    pub fn is_off(&self) -> bool {
        self.max_group <= 1
    }
}

/// One scheduled fused group: the member job slots, the shared
/// singleton plan, the fused pricing the pool booked, and the group's
/// simulated interval. A group of one is an ordinary singleton
/// dispatch (its fused price *is* the singleton price).
#[derive(Clone, Debug)]
pub struct GroupDispatch {
    /// Member job slots, in dispatch order. On the batch path these
    /// are indices into the submitted job slice (like
    /// [`Dispatch::job`]); on the stream path — where jobs come from
    /// an iterator, not a slice — they are running dispatch sequence
    /// numbers and index nothing.
    pub jobs: Vec<usize>,
    /// Pool id of the device the group runs on.
    pub device: usize,
    /// The plan structure every member runs (identical arithmetic to
    /// an unfused dispatch of the same job).
    pub plan: ExecPlan,
    /// The fused pricing booked for the whole group.
    pub fused: FusedProfile,
    /// Simulated start of the fused launch sequence, ms.
    pub start_ms: f64,
    /// Simulated completion of the whole group, ms (shared by every
    /// member — a fused sequence completes as a whole).
    pub end_ms: f64,
    /// The stage-granular booking behind this dispatch, when it was
    /// placed by a stage-level scheduler (`None` on the per-plan
    /// paths). Carries the per-stage intervals online re-booking
    /// rewinds.
    pub booking: Option<StageBooking>,
}

impl GroupDispatch {
    /// Number of fused member jobs.
    pub fn group_size(&self) -> usize {
        self.jobs.len()
    }

    /// Wrap a singleton [`Dispatch`] as a group of one, priced exactly
    /// at its plan — the seam that lets the unfused batch and stream
    /// paths run through the shared group executor.
    pub fn singleton(d: Dispatch) -> GroupDispatch {
        GroupDispatch {
            jobs: vec![d.job],
            device: d.device,
            fused: FusedProfile::singleton(&d.plan),
            plan: d.plan,
            start_ms: d.start_ms,
            end_ms: d.end_ms,
            booking: None,
        }
    }

    /// Number of refinement passes this dispatch actually booked:
    /// derived from the stage booking when one exists (expected-pass
    /// booking books fewer stages than the plan holds), the plan's
    /// structural count otherwise.
    pub fn booked_passes(&self) -> usize {
        match &self.booking {
            Some(b) => (b.stages.len().saturating_sub(2)) / 2,
            None => self.plan.corrections(),
        }
    }
}

/// Partition a batch into fused groups: bucket by [`JobShape`] key in
/// submission order, then chunk each bucket at the occupancy-aware
/// preferred group size for that shape. Jobs with unique shapes (or
/// tail remainders) come out as singleton groups. The partition covers
/// every index exactly once.
pub fn plan_groups(
    planner: &Planner,
    shapes: &[JobShape],
    cfg: &MicrobatchConfig,
) -> Vec<Vec<usize>> {
    // hash-bucketed, first-appearance ordered: the map finds the
    // bucket in O(1), the Vec keeps the deterministic output order
    let mut buckets: Vec<(JobShape, Vec<usize>)> = Vec::new();
    let mut by_key: std::collections::HashMap<JobShape, usize> = std::collections::HashMap::new();
    for (i, s) in shapes.iter().enumerate() {
        match by_key.get(s) {
            Some(&b) => buckets[b].1.push(i),
            None => {
                by_key.insert(*s, buckets.len());
                buckets.push((*s, vec![i]));
            }
        }
    }
    let mut groups = Vec::new();
    for (shape, idxs) in buckets {
        let k = if idxs.len() == 1 {
            1
        } else {
            planner
                .preferred_group_size(
                    shape.rows,
                    shape.cols,
                    shape.target_digits,
                    cfg.max_group.min(idxs.len()),
                    cfg.tolerance,
                )
                .max(1)
        };
        for chunk in idxs.chunks(k) {
            planner.emit(|| Event::GroupFormed {
                rows: shape.rows,
                cols: shape.cols,
                digits: shape.target_digits,
                size: chunk.len(),
                preferred: k,
            });
            groups.push(chunk.to_vec());
        }
    }
    groups
}

/// Dispatch one fused group: pick a device for the *group* under
/// `policy` — least-loaded takes the earliest-idle clock; shortest-
/// expected-completion prices the fused group on every device model and
/// commits where `clock + fused_ms` is minimal — then book the group's
/// fused profile onto the device clock as a single commitment covering
/// all members.
pub fn dispatch_group(
    pool: &mut DevicePool,
    planner: &Planner,
    jobs: Vec<usize>,
    shape: &JobShape,
    policy: DispatchPolicy,
) -> GroupDispatch {
    dispatch_group_at(pool, planner, jobs, shape, policy, 0.0)
}

/// [`dispatch_group`] with a simulated release time: the group cannot
/// start before `release_ms` (the latest member arrival), so SECT
/// ranks devices by `max(clock, release) + fused cost` and the chosen
/// device is held idle through the gap ([`DevicePool::hold_until`] —
/// the clock advances, the busy aggregate does not).
pub fn dispatch_group_at(
    pool: &mut DevicePool,
    planner: &Planner,
    jobs: Vec<usize>,
    shape: &JobShape,
    policy: DispatchPolicy,
    release_ms: f64,
) -> GroupDispatch {
    assert!(!jobs.is_empty(), "a fused group needs at least one job");
    let k = jobs.len();
    let (device, (plan, fused)) = place_release(pool, policy, release_ms, |gpu| {
        let priced = planner.plan_fused(gpu, shape.rows, shape.cols, shape.target_digits, k);
        let cost_ms = priced.1.predicted_ms;
        (priced, cost_ms)
    });
    if release_ms > 0.0 {
        pool.hold_until(device, release_ms);
    }
    let (start_ms, end_ms) = pool.commit_group(
        device,
        fused.predicted_ms,
        fused.predicted_kernel_ms,
        fused.flops_paper,
        k as u64,
    );
    GroupDispatch {
        jobs,
        device,
        plan,
        fused,
        start_ms,
        end_ms,
        booking: None,
    }
}

/// Dispatch one group with **stage-granular booking**: the group's
/// stages (factor, initial correct, and the booked residual/correct
/// passes — the planner's *expected* count under
/// [`StageSchedConfig::book_expected`], the structural worst case
/// otherwise) are booked as individual lane-split intervals on the
/// chosen device's timeline ([`DevicePool::commit_stages`]). SECT
/// costs completion by *previewing the booking on each device's
/// timeline* instead of adding a composed total to the clock, so a
/// device whose compute lane can hide this group's prep wins the
/// placement it deserves. `release_ms` is the earliest admissible
/// start (latest member arrival).
pub fn dispatch_group_staged(
    pool: &mut DevicePool,
    planner: &Planner,
    jobs: Vec<usize>,
    shape: &JobShape,
    policy: DispatchPolicy,
    sched: &StageSchedConfig,
    release_ms: f64,
) -> GroupDispatch {
    assert!(!jobs.is_empty(), "a fused group needs at least one job");
    let k = jobs.len();
    let (device, (plan, fused, reqs)) = place_by_end(pool, policy, |d| {
        let (plan, fused) =
            planner.plan_fused(&d.gpu, shape.rows, shape.cols, shape.target_digits, k);
        let passes = if sched.book_expected {
            plan.expected_corrections
        } else {
            plan.corrections()
        };
        let reqs = fused.stage_reqs(ExecPlan::booked_stages(passes));
        let end_ms = pool.preview_stages(d.id, &reqs, sched.overlap, release_ms);
        ((plan, fused, reqs), end_ms)
    });
    let booking = pool.commit_stages(
        device,
        &reqs,
        fused.predicted_kernel_ms,
        fused.flops_paper,
        k as u64,
        sched.overlap,
        release_ms,
    );
    // labeled stage intervals: the plan knows each booked stage's kind
    // and rung, the booking knows where its lanes landed
    for (i, (ps, iv)) in plan.stages.iter().zip(&booking.stages).enumerate() {
        pool.emit(|| Event::StageBooked {
            device,
            job: jobs[0] as u64,
            stage: i,
            kind: ps.stage.kind(),
            rung: ps.stage.rung().tag(),
            host_start_ms: iv.host.0,
            host_end_ms: iv.host.1,
            dev_start_ms: iv.device.0,
            dev_end_ms: iv.device.1,
        });
    }
    GroupDispatch {
        jobs,
        device,
        plan,
        fused,
        start_ms: booking.start_ms(),
        end_ms: booking.end_ms(),
        booking: Some(booking),
    }
}

/// The placement order of a partitioned batch: under
/// shortest-expected-completion, groups go longest-first (LPT over the
/// *fused* group cost on the pool's first device model —
/// device-count-free, like the singleton sort key); least-loaded keeps
/// submission order. One definition shared by every batch scheduler,
/// staged or not, so the A/B paths can never drift apart on ordering.
pub(crate) fn placement_order(
    pool: &DevicePool,
    planner: &Planner,
    shapes: &[JobShape],
    groups: &[Vec<usize>],
    policy: DispatchPolicy,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..groups.len()).collect();
    if policy == DispatchPolicy::ShortestExpectedCompletion && !pool.is_empty() {
        let flops: Vec<f64> = groups
            .iter()
            .map(|g| {
                let s = &shapes[g[0]];
                let (_, fused) =
                    planner.plan_fused(pool.gpu(0), s.rows, s.cols, s.target_digits, g.len());
                fused.flops_paper
            })
            .collect();
        order.sort_by(|&a, &b| flops[b].total_cmp(&flops[a]));
    }
    order
}

/// Schedule a whole batch as fused groups under `policy`: partition via
/// [`plan_groups`], order via the shared placement rule (LPT under
/// SECT, submission order otherwise), then dispatch group by group.
pub fn schedule_groups(
    pool: &mut DevicePool,
    planner: &Planner,
    shapes: &[JobShape],
    policy: DispatchPolicy,
    cfg: &MicrobatchConfig,
) -> Vec<GroupDispatch> {
    let groups = plan_groups(planner, shapes, cfg);
    let order = placement_order(pool, planner, shapes, &groups, policy);
    let mut dispatched: Vec<Option<GroupDispatch>> = Vec::new();
    dispatched.resize_with(groups.len(), || None);
    for &gi in &order {
        let shape = shapes[groups[gi][0]];
        dispatched[gi] = Some(dispatch_group(
            pool,
            planner,
            groups[gi].clone(),
            &shape,
            policy,
        ));
    }
    dispatched.into_iter().map(|d| d.unwrap()).collect()
}

/// [`schedule_groups`] with **stage-granular booking**: the same
/// partition and (for SECT) the same longest-first placement order,
/// but every group books its stages as lane-split intervals through
/// [`dispatch_group_staged`] — the model-level entry point of the
/// stage-overlap A/B. With [`StageSchedConfig::sequential`] the
/// schedule is timing-identical to [`schedule_groups`]; with overlap
/// on, consecutive groups pipeline prep under compute.
pub fn schedule_staged(
    pool: &mut DevicePool,
    planner: &Planner,
    shapes: &[JobShape],
    policy: DispatchPolicy,
    cfg: &MicrobatchConfig,
    sched: &StageSchedConfig,
) -> Vec<GroupDispatch> {
    let groups = plan_groups(planner, shapes, cfg);
    let order = placement_order(pool, planner, shapes, &groups, policy);
    let mut dispatched: Vec<Option<GroupDispatch>> = Vec::new();
    dispatched.resize_with(groups.len(), || None);
    for &gi in &order {
        let shape = shapes[groups[gi][0]];
        dispatched[gi] = Some(dispatch_group_staged(
            pool,
            planner,
            groups[gi].clone(),
            &shape,
            policy,
            sched,
            0.0,
        ));
    }
    dispatched.into_iter().map(|d| d.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::Gpu;

    fn shape(cols: usize, digits: u32) -> JobShape {
        JobShape {
            rows: cols,
            cols,
            target_digits: digits,
        }
    }

    #[test]
    fn groups_partition_the_batch() {
        let planner = Planner::new();
        let cfg = MicrobatchConfig::default();
        // 3 shapes interleaved; every index must appear exactly once
        let shapes: Vec<JobShape> = (0..30)
            .map(|i| shape([16, 24, 32][i % 3], [12, 25, 25][i % 3]))
            .collect();
        let groups = plan_groups(&planner, &shapes, &cfg);
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort();
        assert_eq!(seen, (0..30).collect::<Vec<_>>());
        // only same-key jobs share a group
        for g in &groups {
            for &j in g {
                assert_eq!(shapes[j], shapes[g[0]], "mixed shapes fused");
            }
        }
        // small shapes have sweet spots well past 1: something fused
        assert!(
            groups.iter().any(|g| g.len() > 1),
            "nothing fused: {groups:?}"
        );
    }

    #[test]
    fn unique_shapes_stay_singletons() {
        let planner = Planner::new();
        let shapes: Vec<JobShape> = (1..=5).map(|i| shape(8 * i, 25)).collect();
        let groups = plan_groups(&planner, &shapes, &MicrobatchConfig::default());
        assert_eq!(groups.len(), 5);
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn max_group_caps_fusion() {
        let planner = Planner::new();
        let shapes = vec![shape(32, 25); 40];
        let cfg = MicrobatchConfig {
            max_group: 4,
            tolerance: 0.05,
        };
        let groups = plan_groups(&planner, &shapes, &cfg);
        assert!(groups.iter().all(|g| g.len() <= 4));
        assert_eq!(groups.iter().map(|g| g.len()).sum::<usize>(), 40);
    }

    #[test]
    fn group_dispatch_books_one_fused_interval() {
        let planner = Planner::new();
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
        let s = shape(32, 25);
        let d = dispatch_group(
            &mut pool,
            &planner,
            (0..8).collect(),
            &s,
            DispatchPolicy::LeastLoaded,
        );
        assert_eq!(d.group_size(), 8);
        assert_eq!(d.fused.group, 8);
        assert_eq!(pool.total_solves(), 8);
        assert_eq!(pool.devices()[d.device].clock_ms(), d.end_ms);
        // the fused booking beats eight singleton bookings
        let single = planner.plan(pool.gpu(d.device), 32, 32, 25).predicted_ms;
        assert!(
            d.fused.predicted_ms < 8.0 * single / 2.0,
            "fused {} ms vs 8 x {} ms",
            d.fused.predicted_ms,
            single
        );
        // and the interval is exactly the fused booking
        assert!((d.end_ms - d.start_ms - d.fused.predicted_ms).abs() < 1e-12);
    }

    #[test]
    fn group_of_one_books_the_singleton_price() {
        let planner = Planner::new();
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let s = shape(24, 50);
        let d = dispatch_group(
            &mut pool,
            &planner,
            vec![0],
            &s,
            DispatchPolicy::ShortestExpectedCompletion,
        );
        let plan = planner.plan(pool.gpu(0), 24, 24, 50);
        assert_eq!(d.fused.predicted_ms, plan.predicted_ms);
        assert_eq!(d.fused.flops_paper, plan.flops_paper);
    }

    #[test]
    fn sect_places_the_group_where_it_finishes_first() {
        // an idle P100 vs a busy A100: the fused group must queue
        // behind the faster device when that completes sooner — the
        // same policy split as singleton SECT
        let planner = Planner::new();
        let s = shape(128, 100);
        let mut pool = DevicePool::new(vec![Gpu::a100(), Gpu::p100()]);
        pool.commit(0, 1.0, 0.8, 1.0e6);
        let d = dispatch_group(
            &mut pool,
            &planner,
            (0..16).collect(),
            &s,
            DispatchPolicy::ShortestExpectedCompletion,
        );
        assert_eq!(d.device, 0, "SECT parked the group on the slow idle P100");
    }
}
