//! The scheduler: greedy dispatch of planned jobs onto the device pool.
//!
//! Jobs are dispatched in arrival order to the least-loaded device (the
//! earliest-idle simulated clock, ties to the lowest id). Each dispatch
//! plans the job *for the chosen device's model* — a heterogeneous pool
//! plans the same shape differently on a V100 than on an A100 — and
//! advances that device's clock by the plan's predicted wall clock.
//!
//! Because the analytic timing model is data-independent, the predicted
//! wall clock of a plan *is* the modeled wall clock of the functional
//! solve (asserted by `functional_and_model_profiles_agree` in the seed
//! suite), so schedules built from predictions are exact.

use crate::job::Job;
use crate::planner::{Plan, Planner};
use crate::pool::DevicePool;

/// The scheduling-relevant part of a job: its shape and accuracy target.
#[derive(Clone, Copy, Debug)]
pub struct JobShape {
    /// Rows `m`.
    pub rows: usize,
    /// Columns `n`.
    pub cols: usize,
    /// Required decimal digits.
    pub target_digits: u32,
}

impl From<&Job> for JobShape {
    fn from(job: &Job) -> Self {
        JobShape {
            rows: job.rows(),
            cols: job.cols(),
            target_digits: job.target_digits,
        }
    }
}

/// One scheduled solve.
#[derive(Clone, Copy, Debug)]
pub struct Dispatch {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// Pool id of the device the job runs on.
    pub device: usize,
    /// The plan chosen for this job on that device.
    pub plan: Plan,
    /// Simulated start time on the device, ms.
    pub start_ms: f64,
    /// Simulated completion time on the device, ms.
    pub end_ms: f64,
}

/// Dispatch one job: pick the least-loaded device *now*, plan the job
/// for that device's model, and commit the predicted cost to its
/// clock. The single dispatch step shared by [`schedule`] and the
/// streaming API — scheduling-policy changes happen here, once.
pub fn dispatch_one(
    pool: &mut DevicePool,
    planner: &Planner,
    job: usize,
    shape: &JobShape,
) -> Dispatch {
    let device = pool.least_loaded();
    let plan = planner.plan(
        pool.gpu(device),
        shape.rows,
        shape.cols,
        shape.target_digits,
    );
    let (start_ms, end_ms) = pool.commit(
        device,
        plan.predicted_ms,
        plan.predicted_kernel_ms,
        plan.flops_paper,
    );
    Dispatch {
        job,
        device,
        plan,
        start_ms,
        end_ms,
    }
}

/// Greedily schedule `shapes` over `pool`, committing each job's
/// predicted cost to its device clock. Returns one [`Dispatch`] per
/// shape, in submission order.
pub fn schedule(pool: &mut DevicePool, planner: &Planner, shapes: &[JobShape]) -> Vec<Dispatch> {
    shapes
        .iter()
        .enumerate()
        .map(|(job, shape)| dispatch_one(pool, planner, job, shape))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::Gpu;

    fn mixed_shapes() -> Vec<JobShape> {
        let mut shapes = Vec::new();
        for i in 0..24 {
            let cols = [16, 24, 32, 48][i % 4];
            shapes.push(JobShape {
                rows: cols + 8 * (i % 3),
                cols,
                target_digits: [12, 25, 50][i % 3],
            });
        }
        shapes
    }

    #[test]
    fn makespan_shrinks_as_devices_grow() {
        let shapes = mixed_shapes();
        let mut prev = f64::INFINITY;
        for n in 1..=4 {
            let mut pool = DevicePool::homogeneous(&Gpu::v100(), n);
            schedule(&mut pool, &Planner::new(), &shapes);
            let makespan = pool.makespan_ms();
            assert!(
                makespan < prev,
                "makespan {makespan} ms did not shrink at {n} devices (was {prev})"
            );
            prev = makespan;
        }
    }

    #[test]
    fn dispatch_covers_all_devices_and_jobs() {
        let shapes = mixed_shapes();
        let mut pool = DevicePool::homogeneous(&Gpu::a100(), 3);
        let dispatches = schedule(&mut pool, &Planner::new(), &shapes);
        assert_eq!(dispatches.len(), shapes.len());
        for d in 0..3 {
            assert!(
                dispatches.iter().any(|x| x.device == d),
                "device {d} never used"
            );
        }
        // per-device intervals are contiguous and non-overlapping
        for d in 0..3 {
            let mut clock = 0.0;
            for x in dispatches.iter().filter(|x| x.device == d) {
                assert_eq!(x.start_ms, clock);
                assert!(x.end_ms > x.start_ms);
                clock = x.end_ms;
            }
        }
        assert_eq!(pool.total_solves(), shapes.len() as u64);
    }

    #[test]
    fn heterogeneous_pool_plans_per_device() {
        // same shape, two device models: the planner runs per device
        let shapes = vec![
            JobShape {
                rows: 96,
                cols: 96,
                target_digits: 25
            };
            8
        ];
        let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::rtx2080()]);
        let planner = Planner::new();
        let dispatches = schedule(&mut pool, &planner, &shapes);
        // both devices got work, and the predicted cost differs by model
        let v = dispatches.iter().find(|d| d.device == 0).unwrap();
        let r = dispatches.iter().find(|d| d.device == 1).unwrap();
        assert_ne!(v.plan.predicted_ms, r.plan.predicted_ms);
    }
}
