//! The scheduler: policy-driven dispatch of planned jobs onto the
//! device pool.
//!
//! Dispatch is a pluggable [`DispatchPolicy`]:
//!
//! * [`DispatchPolicy::LeastLoaded`] — the legacy greedy rule: the job
//!   goes to the earliest-idle simulated clock (ties to the lowest id),
//!   then is planned *for that device's model*. Cheap (one plan per
//!   dispatch) but blind to device speed: on a mixed pool an idle P100
//!   wins over an A100 that would finish the job sooner.
//! * [`DispatchPolicy::ShortestExpectedCompletion`] — plans the job on
//!   *every* device model and commits where `clock + predicted_ms` is
//!   minimal (ties to the lowest id). The planner's memo table makes
//!   the extra plans nearly free — a pool mixes a handful of device
//!   models, so each (shape, model) pair is planned once per run.
//!
//! Either way, each dispatch prices the job's staged [`ExecPlan`] for
//! the chosen device's model — a heterogeneous pool prices the same
//! stage structure differently on a V100 than on an A100 — and advances
//! that device's clock by the plan's *composed* predicted wall clock
//! (every Factor/Residual/Correct stage absorbed into one total, so a
//! refinement plan is costed as a whole, not as its first stage).
//!
//! Because the analytic timing model is data-independent, the predicted
//! wall clock of a plan *is* the modeled wall clock of the functional
//! solve (asserted by `functional_and_model_profiles_agree` in the seed
//! suite), so schedules built from predictions are exact. And because a
//! policy only chooses *placement*, never solver options beyond the
//! per-device plan, solutions are bit-identical across policies.

use crate::job::Job;
use crate::plan::ExecPlan;
use crate::planner::Planner;
use crate::pool::DevicePool;

/// How the scheduler picks a device for the next job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DispatchPolicy {
    /// Greedy: earliest-idle device clock wins, ties to the lowest id —
    /// the same placement decisions as the pipeline's original
    /// hard-wired dispatch. (Solution bits on non-V100 devices may
    /// still differ from pre-policy releases: tilings are now tuned on
    /// the reference model instead of per device, so numerics are
    /// placement-invariant — see [`crate::planner`].)
    #[default]
    LeastLoaded,
    /// Plan the job on every device and commit where
    /// `clock + predicted_ms` is minimal, ties to the lowest id.
    /// Strictly better informed on heterogeneous pools.
    ShortestExpectedCompletion,
}

impl DispatchPolicy {
    /// Short label for tables and logs.
    pub fn tag(self) -> &'static str {
        match self {
            DispatchPolicy::LeastLoaded => "greedy",
            DispatchPolicy::ShortestExpectedCompletion => "sect",
        }
    }
}

/// How stage-granular scheduling books, overlaps and re-books plan
/// stages on the pool's timelines. The default ([`StageSchedConfig::staged`])
/// turns everything on; [`StageSchedConfig::sequential`] books the same
/// stage intervals contiguously — timing-identical to per-plan booking,
/// the A/B control. None of these knobs ever changes which arithmetic
/// runs for a *booked* pass: overlap and re-booking move work through
/// simulated time only. `max_extra_passes` is the one exception by
/// design — it lets a stalled refinement run extra passes past its
/// plan, and must therefore match across runs being compared for bit
/// identity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageSchedConfig {
    /// Book each stage's prep (host + transfer) and compute (kernels +
    /// gaps) on independent per-device lanes, letting the next job's
    /// factorization prep hide under the current job's device work.
    pub overlap: bool,
    /// Re-book online: when adaptive refinement certifies early, remove
    /// the unexecuted tail from the timelines
    /// ([`DevicePool::rebook`]) so queued dispatches book into the
    /// freed time, instead of only writing the tail off the busy books.
    pub rebook: bool,
    /// With `rebook`, use [`crate::pool::RebookMode::Compact`]: free
    /// skipped spans even mid-schedule and slide later queued,
    /// unexecuted dispatches left into the hole. Off = the tail-only
    /// baseline (mid-schedule holes strand).
    pub compact: bool,
    /// Book the planner's *expected* pass count instead of the
    /// structural worst case; execution divergence is absorbed by
    /// re-booking (shrink) or extension (grow).
    pub book_expected: bool,
    /// Extra residual/correct passes a stalled job may run past its
    /// plan when the measured residual is still improving but has not
    /// certified the target (0 = legacy stop-at-plan behavior).
    pub max_extra_passes: usize,
}

impl StageSchedConfig {
    /// Everything on: overlapped lanes, expected-pass booking, online
    /// re-booking, and pass extension for stalled jobs.
    pub fn staged() -> Self {
        StageSchedConfig {
            overlap: true,
            rebook: true,
            compact: true,
            book_expected: true,
            max_extra_passes: 4,
        }
    }

    /// Stage overlap only — worst-case booking, no re-booking, no
    /// extension. Isolates the cross-job overlap win in A/Bs, with
    /// execution semantics identical to the per-plan path.
    pub fn overlap_only() -> Self {
        StageSchedConfig {
            overlap: true,
            rebook: false,
            compact: false,
            book_expected: false,
            max_extra_passes: 0,
        }
    }

    /// Contiguous stage booking: timing-identical to per-plan booking
    /// (the stage intervals tile the same composed interval) — the
    /// baseline every staged schedule is compared against.
    pub fn sequential() -> Self {
        StageSchedConfig {
            overlap: false,
            rebook: false,
            compact: false,
            book_expected: false,
            max_extra_passes: 0,
        }
    }
}

impl Default for StageSchedConfig {
    fn default() -> Self {
        StageSchedConfig::staged()
    }
}

/// The scheduling-relevant part of a job: its shape and accuracy target.
/// Equality/hashing make it the fusion key of the micro-batcher: jobs
/// sharing a `JobShape` share a plan structure and may fuse into one
/// batched launch sequence (see [`crate::microbatch`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JobShape {
    /// Rows `m`.
    pub rows: usize,
    /// Columns `n`.
    pub cols: usize,
    /// Required decimal digits.
    pub target_digits: u32,
}

impl From<&Job> for JobShape {
    fn from(job: &Job) -> Self {
        JobShape {
            rows: job.rows(),
            cols: job.cols(),
            target_digits: job.target_digits,
        }
    }
}

/// One scheduled solve.
#[derive(Clone, Debug)]
pub struct Dispatch {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// Pool id of the device the job runs on.
    pub device: usize,
    /// The staged plan chosen for this job on that device. The
    /// scheduler consumes its composed totals (`predicted_ms`,
    /// `predicted_kernel_ms`, `flops_paper`); the executor interprets
    /// its stages.
    pub plan: ExecPlan,
    /// Simulated start time on the device, ms.
    pub start_ms: f64,
    /// Simulated completion time on the device, ms.
    pub end_ms: f64,
}

/// Policy-driven device selection shared by singleton and fused
/// dispatch: `price` is the per-device pricing oracle, returning an
/// arbitrary payload (a plan, a plan-plus-fused-profile, …) and the
/// predicted cost the policy ranks by. Least-loaded prices only the
/// chosen earliest-idle device; shortest-expected-completion prices
/// every device and commits where `clock + cost` is minimal, ties to
/// the lowest id. Keeping this in one place means a policy change
/// lands on the fused path for free.
pub(crate) fn place_with<T>(
    pool: &DevicePool,
    policy: DispatchPolicy,
    price: impl Fn(&gpusim::Gpu) -> (T, f64),
) -> (usize, T) {
    place_release(pool, policy, 0.0, price)
}

/// [`place_with`] with a simulated release time: the job cannot start
/// before `release_ms`, so shortest-expected-completion ranks devices
/// by `max(clock, release) + cost` — an idle device that must wait for
/// the release no longer beats a busy one that would start (and
/// finish) right after it.
pub(crate) fn place_release<T>(
    pool: &DevicePool,
    policy: DispatchPolicy,
    release_ms: f64,
    price: impl Fn(&gpusim::Gpu) -> (T, f64),
) -> (usize, T) {
    match policy {
        DispatchPolicy::LeastLoaded => {
            let device = pool.least_loaded();
            let (payload, _) = price(pool.gpu(device));
            (device, payload)
        }
        DispatchPolicy::ShortestExpectedCompletion => {
            assert!(!pool.is_empty(), "empty device pool");
            pool.devices()
                .iter()
                .filter(|d| !d.is_lost())
                .map(|d| {
                    let (payload, cost_ms) = price(&d.gpu);
                    // gap-aware: a composed booking may fit into a
                    // mid-schedule hole, and the commit will take it
                    let (_, end_ms) = pool.preview_wall(d.id, cost_ms, release_ms);
                    pool.emit(|| mdls_obs::Event::SectPreview {
                        device: d.id,
                        end_ms,
                    });
                    (end_ms, d.id, payload)
                })
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .map(|(_, id, payload)| (id, payload))
                .expect("no surviving device in the pool")
        }
    }
}

/// Device selection against the *stage timeline*: `end` previews the
/// completion time of the candidate booking on each device (lane
/// cursors, overlap, release — whatever the caller encodes), and SECT
/// commits where that end is minimal, ties to the lowest id. The
/// least-loaded rule keeps its earliest-idle-clock choice so the two
/// policies stay comparable across booking modes.
pub(crate) fn place_by_end<T>(
    pool: &DevicePool,
    policy: DispatchPolicy,
    end: impl Fn(&crate::pool::PoolDevice) -> (T, f64),
) -> (usize, T) {
    assert!(!pool.is_empty(), "empty device pool");
    match policy {
        DispatchPolicy::LeastLoaded => {
            let device = pool.least_loaded();
            let (payload, _) = end(&pool.devices()[device]);
            (device, payload)
        }
        DispatchPolicy::ShortestExpectedCompletion => pool
            .devices()
            .iter()
            .filter(|d| !d.is_lost())
            .map(|d| {
                let (payload, end_ms) = end(d);
                pool.emit(|| mdls_obs::Event::SectPreview {
                    device: d.id,
                    end_ms,
                });
                (end_ms, d.id, payload)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, id, payload)| (id, payload))
            .expect("no surviving device in the pool"),
    }
}

/// Pick the device and plan for one job under `policy`, without
/// committing anything to the pool.
fn place(
    pool: &DevicePool,
    planner: &Planner,
    shape: &JobShape,
    policy: DispatchPolicy,
) -> (usize, ExecPlan) {
    place_with(pool, policy, |gpu| {
        let plan = planner.plan(gpu, shape.rows, shape.cols, shape.target_digits);
        let cost_ms = plan.predicted_ms;
        (plan, cost_ms)
    })
}

/// Dispatch one job: pick a device under `policy`, plan the job for
/// that device's model, and commit the predicted cost to its clock.
/// The single dispatch step shared by [`schedule`] and the streaming
/// API — scheduling-policy changes happen here, once.
pub fn dispatch_one(
    pool: &mut DevicePool,
    planner: &Planner,
    job: usize,
    shape: &JobShape,
    policy: DispatchPolicy,
) -> Dispatch {
    let (device, plan) = place(pool, planner, shape, policy);
    let (start_ms, end_ms) = pool.commit(
        device,
        plan.predicted_ms,
        plan.predicted_kernel_ms,
        plan.flops_paper,
    );
    Dispatch {
        job,
        device,
        plan,
        start_ms,
        end_ms,
    }
}

/// Schedule `shapes` over `pool` under `policy`, committing each job's
/// predicted cost to its device clock. Returns one [`Dispatch`] per
/// shape, in submission order.
///
/// Unlike the streaming path, the batch scheduler sees the whole queue
/// up front, so under [`DispatchPolicy::ShortestExpectedCompletion`] it
/// places jobs longest-first (classic LPT): purely arrival-ordered
/// SECT equalizes `clock + cost` instead of `clock`, leaving slow
/// devices idle at the tail, and a long job landing late on a slow
/// device is exactly the makespan overhang LPT exists to prevent. The
/// sort key is the plan's device-independent Table 1 flop count, so
/// the order does not depend on the pool's composition.
pub fn schedule(
    pool: &mut DevicePool,
    planner: &Planner,
    shapes: &[JobShape],
    policy: DispatchPolicy,
) -> Vec<Dispatch> {
    let mut order: Vec<usize> = (0..shapes.len()).collect();
    if policy == DispatchPolicy::ShortestExpectedCompletion && !pool.is_empty() {
        let flops: Vec<f64> = shapes
            .iter()
            .map(|s| {
                planner
                    .plan(pool.gpu(0), s.rows, s.cols, s.target_digits)
                    .flops_paper
            })
            .collect();
        order.sort_by(|&a, &b| flops[b].total_cmp(&flops[a]));
    }
    let mut dispatches: Vec<Option<Dispatch>> = vec![None; shapes.len()];
    for &job in &order {
        dispatches[job] = Some(dispatch_one(pool, planner, job, &shapes[job], policy));
    }
    dispatches.into_iter().map(|d| d.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::Gpu;

    fn mixed_shapes() -> Vec<JobShape> {
        let mut shapes = Vec::new();
        for i in 0..24 {
            let cols = [16, 24, 32, 48][i % 4];
            shapes.push(JobShape {
                rows: cols + 8 * (i % 3),
                cols,
                target_digits: [12, 25, 50][i % 3],
            });
        }
        shapes
    }

    #[test]
    fn makespan_shrinks_as_devices_grow() {
        let shapes = mixed_shapes();
        for policy in [
            DispatchPolicy::LeastLoaded,
            DispatchPolicy::ShortestExpectedCompletion,
        ] {
            let mut prev = f64::INFINITY;
            for n in 1..=4 {
                let mut pool = DevicePool::homogeneous(&Gpu::v100(), n);
                schedule(&mut pool, &Planner::new(), &shapes, policy);
                let makespan = pool.makespan_ms();
                assert!(
                    makespan < prev,
                    "{}: makespan {makespan} ms did not shrink at {n} devices (was {prev})",
                    policy.tag()
                );
                prev = makespan;
            }
        }
    }

    #[test]
    fn dispatch_covers_all_devices_and_jobs() {
        let shapes = mixed_shapes();
        let mut pool = DevicePool::homogeneous(&Gpu::a100(), 3);
        let dispatches = schedule(
            &mut pool,
            &Planner::new(),
            &shapes,
            DispatchPolicy::LeastLoaded,
        );
        assert_eq!(dispatches.len(), shapes.len());
        for d in 0..3 {
            assert!(
                dispatches.iter().any(|x| x.device == d),
                "device {d} never used"
            );
        }
        // per-device intervals are contiguous and non-overlapping
        for d in 0..3 {
            let mut clock = 0.0;
            for x in dispatches.iter().filter(|x| x.device == d) {
                assert_eq!(x.start_ms, clock);
                assert!(x.end_ms > x.start_ms);
                clock = x.end_ms;
            }
        }
        assert_eq!(pool.total_solves(), shapes.len() as u64);
    }

    #[test]
    fn heterogeneous_pool_plans_per_device() {
        // same shape, two device models: the planner runs per device
        let shapes = vec![
            JobShape {
                rows: 96,
                cols: 96,
                target_digits: 25
            };
            8
        ];
        let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::rtx2080()]);
        let planner = Planner::new();
        let dispatches = schedule(&mut pool, &planner, &shapes, DispatchPolicy::LeastLoaded);
        // both devices got work, and the predicted cost differs by model
        let v = dispatches.iter().find(|d| d.device == 0).unwrap();
        let r = dispatches.iter().find(|d| d.device == 1).unwrap();
        assert_ne!(v.plan.predicted_ms, r.plan.predicted_ms);
    }

    #[test]
    fn per_arrival_policies_agree_on_homogeneous_pools() {
        // identical devices: `clock + predicted` ranks devices exactly
        // like `clock` alone, so a single SECT dispatch reduces to
        // least-loaded
        let shapes = mixed_shapes();
        let planner = Planner::new();
        let mut greedy = DevicePool::homogeneous(&Gpu::v100(), 3);
        let mut sect = DevicePool::homogeneous(&Gpu::v100(), 3);
        for (i, shape) in shapes.iter().enumerate() {
            let g = dispatch_one(&mut greedy, &planner, i, shape, DispatchPolicy::LeastLoaded);
            let s = dispatch_one(
                &mut sect,
                &planner,
                i,
                shape,
                DispatchPolicy::ShortestExpectedCompletion,
            );
            assert_eq!(g.device, s.device, "job {i} placed differently");
            assert_eq!(g.end_ms, s.end_ms);
        }
    }

    #[test]
    fn batch_sect_returns_submission_order() {
        // LPT reorders placement internally; the returned dispatches
        // must still line up with the submitted shapes
        let shapes = mixed_shapes();
        let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::p100()]);
        let planner = Planner::new();
        let ds = schedule(
            &mut pool,
            &planner,
            &shapes,
            DispatchPolicy::ShortestExpectedCompletion,
        );
        assert_eq!(ds.len(), shapes.len());
        for (i, (d, s)) in ds.iter().zip(&shapes).enumerate() {
            assert_eq!(d.job, i);
            let expect = planner.plan(pool.gpu(d.device), s.rows, s.cols, s.target_digits);
            assert_eq!(d.plan, expect, "job {i} carries the wrong plan");
            assert!((d.end_ms - d.start_ms - expect.predicted_ms).abs() < 1e-9);
        }
        assert_eq!(pool.total_solves(), shapes.len() as u64);
    }

    #[test]
    fn sect_prefers_the_sooner_finishing_device() {
        // a slow P100 idles at t=0; a fast A100 is busy until t=1. The
        // greedy rule books the P100 (idle now); SECT books whichever
        // finishes first. For a deep 8d solve the A100's speed advantage
        // dwarfs 1 ms of queueing, so the policies must split.
        let shape = JobShape {
            rows: 256,
            cols: 256,
            target_digits: 100,
        };
        let planner = Planner::new();

        let mut pool = DevicePool::new(vec![Gpu::a100(), Gpu::p100()]);
        pool.commit(0, 1.0, 0.8, 1.0e6);
        let g = dispatch_one(&mut pool, &planner, 0, &shape, DispatchPolicy::LeastLoaded);
        assert_eq!(g.device, 1, "greedy must take the idle P100");

        let mut pool = DevicePool::new(vec![Gpu::a100(), Gpu::p100()]);
        pool.commit(0, 1.0, 0.8, 1.0e6);
        let s = dispatch_one(
            &mut pool,
            &planner,
            0,
            &shape,
            DispatchPolicy::ShortestExpectedCompletion,
        );
        assert_eq!(s.device, 0, "SECT must queue behind the faster A100");
        assert!(
            s.end_ms < g.end_ms,
            "SECT completion {} not before greedy's {}",
            s.end_ms,
            g.end_ms
        );
    }
}
