//! Workload generators: randomized jobs shaped like the paper's
//! motivating applications.
//!
//! The power-flow generator models the holomorphic embedding load flow
//! method (the paper's §1.1): per network, a family of small dense
//! systems — Padé-denominator solves and Newton corrections at a bus
//! count's scale — in hardware-double data that must be *solved* far
//! beyond hardware-double accuracy. Systems are drawn diagonally
//! dominant so every precision rung reaches its unit roundoff (the
//! paper's §4.1 well-conditioned convention); accuracy targets are
//! mixed across the d → dd → qd → od ladder the way a tracker mixes
//! loose predictor steps with tight corrector steps.

use mdls_matrix::HostMat;
use multidouble::random::rand_real;
use rand::Rng;

use crate::job::Job;
use crate::scheduler::JobShape;

/// Column counts of the generated systems (bus-system-scaled: a handful
/// of buses up to a few dozen states).
const COLS: [usize; 6] = [6, 8, 10, 12, 16, 24];

/// Extra rows for the overdetermined (measurement-augmented) variants.
const EXTRA_ROWS: [usize; 3] = [0, 4, 8];

/// Accuracy targets, weighted toward the cheap rungs like a tracker's
/// step mix: many hardware-double predictor solves, fewer deep
/// corrector solves.
const DIGITS: [u32; 6] = [10, 12, 25, 25, 50, 100];

/// Generate `count` randomized power-flow-shaped jobs.
pub fn power_flow_jobs<R: Rng + ?Sized>(count: usize, rng: &mut R) -> Vec<Job> {
    (0..count as u64)
        .map(|id| {
            let cols = COLS[pick(rng, COLS.len())];
            let rows = cols + EXTRA_ROWS[pick(rng, EXTRA_ROWS.len())];
            let target_digits = DIGITS[pick(rng, DIGITS.len())];
            well_conditioned_job(id, rows, cols, target_digits, rng)
        })
        .collect()
}

/// One well-conditioned random system of an explicit shape: dense
/// random entries with a dominant diagonal (tame conditioning),
/// quantized to 2⁻²⁰ so that products against a small-integer solution
/// are exact dyadics. `b = A x_true` is computed *exactly* in f64
/// (quantized entries × integer solution never round): the right hand
/// side lies exactly in the column space, so even tall
/// measurement-augmented systems solve to the working precision and
/// the accuracy target is checkable at every rung.
fn well_conditioned_job<R: Rng + ?Sized>(
    id: u64,
    rows: usize,
    cols: usize,
    target_digits: u32,
    rng: &mut R,
) -> Job {
    let a = HostMat::<f64>::from_fn(rows, cols, |r, c| {
        let u: f64 = rand_real(rng);
        let q = (u * (1 << 20) as f64).round() / (1 << 20) as f64;
        q + if r == c { 4.0 } else { 0.0 }
    });
    let x_true: Vec<f64> = (0..cols)
        .map(|_| (rand_real::<f64, _>(rng) * 8.0).round())
        .collect();
    let b = a.matvec(&x_true);
    Job::new(id, a, b, target_digits)
}

/// Functional jobs for an explicit shape queue: one well-conditioned
/// random system per [`JobShape`], ids in queue order. This is the
/// bridge from the model-only shape mixes ([`workload_mix`],
/// [`refinement_mix`]) to jobs the functional solve paths accept —
/// and, because the caller controls shape repetition, the way to build
/// queues the micro-batcher can actually fuse.
pub fn jobs_for_shapes<R: Rng + ?Sized>(shapes: &[JobShape], rng: &mut R) -> Vec<Job> {
    shapes
        .iter()
        .enumerate()
        .map(|(id, s)| well_conditioned_job(id as u64, s.rows, s.cols, s.target_digits, rng))
        .collect()
}

/// Generate `count` randomized path-tracker-shaped jobs: a mix of
/// speculative **predictor** solves (loose targets, priority 0) and
/// **corrector** solves (deep targets, priority 1, deadline-tagged) —
/// the workload the priority-aware stream exists for. Roughly one job
/// in three is a corrector, interleaved with the predictors the way a
/// tracker alternates step kinds.
pub fn tracker_jobs<R: Rng + ?Sized>(count: usize, rng: &mut R) -> Vec<Job> {
    power_flow_jobs(count, rng)
        .into_iter()
        .enumerate()
        .map(|(i, mut job)| {
            if i % 3 == 2 {
                // corrector: must converge before the tracker can step
                job.target_digits = job.target_digits.max(25);
                job.priority = 1;
                job.deadline_ms = Some((i as f64 + 1.0) * 0.5);
            } else {
                // predictor: speculative, loose, droppable behind correctors
                job.target_digits = job.target_digits.min(14);
            }
            job
        })
        .collect()
}

/// The deterministic shape queue of the dispatch-policy A/B: shapes
/// *and* rungs vary sharply per job, so per-job cost varies sharply
/// across device models — exactly the queue that exposes the greedy
/// rule's blindness to device speed. Shared by the `repro throughput`
/// bench and the acceptance tests so both measure the same workload.
pub fn workload_mix(count: usize) -> Vec<JobShape> {
    (0..count)
        .map(|i| {
            let cols = [32, 64, 96, 128, 192, 256][i % 6];
            JobShape {
                rows: cols + [0, 32][i % 2],
                cols,
                target_digits: [12, 25, 25, 50, 50, 100][i % 6],
            }
        })
        .collect()
}

/// The deterministic shape queue of the **stage-overlap A/B**: a
/// refinement-heavy tracker mix — every target sits past the rung its
/// factorization runs at, so each plan is a cheap factorization
/// followed by residual/correct passes, the exact stage structure
/// whose prep/compute lanes the overlapped scheduler pipelines across
/// jobs. Shapes span the corrector sizes where the factorization's
/// fixed host prep is a large share of the wall clock.
pub fn refinement_mix(count: usize) -> Vec<JobShape> {
    (0..count)
        .map(|i| {
            let cols = [64, 96, 128, 192, 256, 128][i % 6];
            JobShape {
                rows: cols + [0, 32][i % 2],
                cols,
                target_digits: [30, 50, 90, 100, 50, 30][i % 6],
            }
        })
        .collect()
}

/// Bursty tracker jobs: the [`tracker_jobs`] mix with simulated
/// arrivals — jobs land in bursts of `burst` every `gap_ms` (a tracker
/// stepping a path emits its predictor/corrector solves together), and
/// every deadline is re-anchored relative to its job's arrival. The
/// stream's reorder buffer then models a live bursty queue, and
/// comparing each outcome's `end_ms` against its deadline counts real
/// deadline *misses*, not just deadline ordering.
pub fn bursty_tracker_jobs<R: Rng + ?Sized>(
    count: usize,
    burst: usize,
    gap_ms: f64,
    rng: &mut R,
) -> Vec<Job> {
    tracker_jobs(count, rng)
        .into_iter()
        .enumerate()
        .map(|(i, mut job)| {
            let release = (i / burst.max(1)) as f64 * gap_ms;
            job.release_ms = Some(release);
            if let Some(d) = job.deadline_ms {
                job.deadline_ms = Some(release + d.max(gap_ms));
            }
            job
        })
        .collect()
}

fn pick<R: Rng + ?Sized>(rng: &mut R, n: usize) -> usize {
    (rng.random_range(0.0..n as f64) as usize).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn jobs_are_solvable_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let jobs = power_flow_jobs(100, &mut rng);
        assert_eq!(jobs.len(), 100);
        for job in &jobs {
            assert!(job.rows() >= job.cols());
            assert_eq!(job.b.len(), job.rows());
            assert!(COLS.contains(&job.cols()));
        }
        // ids are unique and the mix covers several shapes and targets
        let mut shapes: Vec<_> = jobs.iter().map(|j| (j.rows(), j.cols())).collect();
        shapes.sort();
        shapes.dedup();
        assert!(shapes.len() >= 4, "only {} distinct shapes", shapes.len());
        let mut digits: Vec<_> = jobs.iter().map(|j| j.target_digits).collect();
        digits.sort();
        digits.dedup();
        assert!(digits.len() >= 3, "only {} distinct targets", digits.len());
    }

    #[test]
    fn shapes_produce_matching_jobs() {
        let shapes = refinement_mix(6);
        let mut rng = StdRng::seed_from_u64(3);
        let jobs = jobs_for_shapes(&shapes, &mut rng);
        assert_eq!(jobs.len(), shapes.len());
        for (job, s) in jobs.iter().zip(&shapes) {
            assert_eq!((job.rows(), job.cols()), (s.rows, s.cols));
            assert_eq!(job.target_digits, s.target_digits);
            assert_eq!(job.b.len(), s.rows);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = power_flow_jobs(5, &mut StdRng::seed_from_u64(9));
        let b = power_flow_jobs(5, &mut StdRng::seed_from_u64(9));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.a, y.a);
            assert_eq!(x.b, y.b);
            assert_eq!(x.target_digits, y.target_digits);
        }
    }
}
