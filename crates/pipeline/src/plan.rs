//! The staged execution-plan IR.
//!
//! A solve is no longer one monolithic `(precision, tiling)` choice: an
//! [`ExecPlan`] is an ordered list of [`Stage`]s —
//!
//! * [`Stage::Factor`] — QR-factor the system once, at the (cheap)
//!   factorization rung, under a tiling;
//! * [`Stage::Correct`] — apply the factorization to a right hand side
//!   (`Qᴴ rhs` + tiled back substitution) at the factorization rung.
//!   The first `Correct` solves against `b` itself; later ones solve
//!   against residuals and add the update into the high-rung iterate;
//! * [`Stage::Residual`] — compute `r = b − A x` at a rung *above* the
//!   factorization rung, recovering the digits the cheap factorization
//!   left behind.
//!
//! A **direct** plan is `[Factor(r), Correct(r)]` — exactly the old
//! single-rung solve, bit-identical to a plain [`mdls_core::lstsq`]
//! call. A **refinement** plan appends `k` `[Residual(r′), Correct(r)]`
//! pairs with `r′ > r`: classic mixed-precision iterative refinement
//! across the d → dd → qd → od ladder, which reaches `r′`-level digits
//! for a fraction of the flops of factoring at `r′` outright (the
//! QR is O(m·n²) at the cheap rung; each extra pass is only an O(m·n)
//! residual plus an O(m·n + n²) re-solve).
//!
//! Every stage carries its model-predicted [`Profile`] for the target
//! device; [`ExecPlan::from_stages`] composes them through
//! [`Profile::absorb`] into the totals the SECT dispatch policy and the
//! device-pool clocks consume. The *structure* of a plan (rungs,
//! iteration count, tilings) is tuned once on the planner's reference
//! model so solutions stay placement-invariant; only the per-stage
//! timings differ across devices.

use gpusim::{ExecMode, Profile};
use mdls_core::LstsqOptions;

use crate::job::Precision;
use crate::pool::StageReq;

/// One step of an execution plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// QR-factor the system at `rung` under the tiling
    /// `tiles × tile_size`.
    Factor {
        /// Factorization rung.
        rung: Precision,
        /// Number of tiles `N`.
        tiles: usize,
        /// Tile size `n` (threads per block).
        tile_size: usize,
    },
    /// Compute `r = b − A x` at `rung` (a refinement plan runs this one
    /// or more rungs above its factorization).
    Residual {
        /// Residual rung (the plan's solution rung).
        rung: Precision,
    },
    /// Apply the factorization to a right hand side at `rung`:
    /// `Qᴴ rhs` + tiled back substitution under the factor tiling.
    Correct {
        /// Factorization rung.
        rung: Precision,
        /// Number of tiles `N` (matches the factor stage).
        tiles: usize,
        /// Tile size `n` (matches the factor stage).
        tile_size: usize,
    },
}

impl Stage {
    /// The precision rung this stage computes at.
    pub fn rung(&self) -> Precision {
        match *self {
            Stage::Factor { rung, .. } => rung,
            Stage::Residual { rung } => rung,
            Stage::Correct { rung, .. } => rung,
        }
    }

    /// The observability classification of this stage, used when
    /// emitting [`mdls_obs::Event::StageBooked`] / stage-time events.
    pub fn kind(&self) -> mdls_obs::StageKind {
        match self {
            Stage::Factor { .. } => mdls_obs::StageKind::Factor,
            Stage::Residual { .. } => mdls_obs::StageKind::Residual,
            Stage::Correct { .. } => mdls_obs::StageKind::Correct,
        }
    }

    /// Short label for tables and per-stage breakdowns, e.g.
    /// `"factor@2d 4x256"` or `"residual@4d"`.
    pub fn label(&self) -> String {
        match *self {
            Stage::Factor {
                rung,
                tiles,
                tile_size,
            } => format!("factor@{} {}x{}", rung.tag(), tiles, tile_size),
            Stage::Residual { rung } => format!("residual@{}", rung.tag()),
            Stage::Correct { rung, .. } => format!("correct@{}", rung.tag()),
        }
    }
}

/// One stage plus its model-predicted profile on the target device.
#[derive(Clone, Debug)]
pub struct PlannedStage {
    /// What to execute.
    pub stage: Stage,
    /// Model-predicted profile of exactly this stage on the plan's
    /// target device.
    pub profile: Profile,
}

impl PlannedStage {
    /// Predicted wall clock of this stage, ms.
    pub fn wall_ms(&self) -> f64 {
        self.profile.wall_ms()
    }

    /// Predicted kernel time of this stage, ms.
    pub fn kernel_ms(&self) -> f64 {
        self.profile.all_kernels_ms()
    }

    /// Table 1 flops of this stage.
    pub fn flops_paper(&self) -> f64 {
        self.profile.total_flops_paper()
    }
}

impl PartialEq for PlannedStage {
    fn eq(&self, other: &Self) -> bool {
        // Plan equality is model *identity*: two stages are equal iff
        // the deterministic cost model produced bit-identical
        // predictions. A tolerance here would mask real divergence in
        // the memo and placement-invariance regression tests.
        self.stage == other.stage
            && self.wall_ms() == other.wall_ms() // analyze::allow(float-eq-outside-core): model identity
            && self.kernel_ms() == other.kernel_ms() // analyze::allow(float-eq-outside-core): model identity
            && self.flops_paper() == other.flops_paper() // analyze::allow(float-eq-outside-core): model identity
    }
}

/// A staged execution plan: the ordered stages, their composed predicted
/// totals, and the accuracy accounting behind the stage choice.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecPlan {
    /// The stages, in execution order. The first is always a `Factor`,
    /// the second a `Correct` (the initial solve); refinement plans
    /// append `Residual`/`Correct` pairs.
    pub stages: Vec<PlannedStage>,
    /// The job's requested decimal digits.
    pub target_digits: u32,
    /// Digits the cost/accuracy model predicts this plan delivers.
    /// At least `target_digits` whenever the ladder can reach it; for
    /// targets beyond the octo double ceiling
    /// ([`Precision::D8`]`.digits()` = 123) the plan saturates there
    /// and `predicted_digits` honestly reports the ceiling, not the
    /// unreachable target.
    pub predicted_digits: u32,
    /// Composed predicted wall clock over all stages on the target
    /// device, ms — what the scheduler books onto a device clock.
    pub predicted_ms: f64,
    /// Composed predicted kernel time, ms (the paper's "all kernels").
    pub predicted_kernel_ms: f64,
    /// Composed Table 1 flops (device independent).
    pub flops_paper: f64,
    /// Refinement passes the planner *expects* to run, under its
    /// optimistic digits-per-pass posterior — at most
    /// [`ExecPlan::corrections`], which stays the conservative
    /// worst-case structure. Stage-level schedulers book only the
    /// expected passes and re-book online when execution diverges;
    /// per-plan booking keeps charging the worst case.
    pub expected_corrections: usize,
}

impl ExecPlan {
    /// Compose per-stage profiles into plan totals via
    /// [`Profile::absorb`].
    pub fn from_stages(
        stages: Vec<PlannedStage>,
        target_digits: u32,
        predicted_digits: u32,
    ) -> Self {
        assert!(
            matches!(stages.first().map(|s| s.stage), Some(Stage::Factor { .. })),
            "a plan starts with a Factor stage"
        );
        let mut total = Profile::new();
        for s in &stages {
            total.absorb(&s.profile);
        }
        let mut plan = ExecPlan {
            predicted_ms: total.wall_ms(),
            predicted_kernel_ms: total.all_kernels_ms(),
            flops_paper: total.total_flops_paper(),
            stages,
            target_digits,
            predicted_digits,
            expected_corrections: 0,
        };
        // default to the structural count; the planner overrides with
        // its posterior via `with_expected_corrections`
        plan.expected_corrections = plan.corrections();
        plan
    }

    /// Override the expected pass count (clamped to the structural
    /// worst case) — set by the planner's digits-per-pass posterior.
    pub fn with_expected_corrections(mut self, expected: usize) -> Self {
        self.expected_corrections = expected.min(self.corrections());
        self
    }

    /// Number of stages a scheduler books: the factor/initial-correct
    /// pair plus `passes` residual/correct pairs.
    pub fn booked_stages(passes: usize) -> usize {
        2 + 2 * passes
    }

    /// The factorization rung and tiling `(rung, tiles, tile_size)`.
    pub fn factor(&self) -> (Precision, usize, usize) {
        match self.stages[0].stage {
            Stage::Factor {
                rung,
                tiles,
                tile_size,
            } => (rung, tiles, tile_size),
            _ => unreachable!("a plan starts with a Factor stage"),
        }
    }

    /// The rung the factorization runs at.
    pub fn factor_precision(&self) -> Precision {
        self.factor().0
    }

    /// The rung the *solution* comes back at: the residual rung of a
    /// refinement plan, the factor rung of a direct plan.
    pub fn solution_precision(&self) -> Precision {
        self.stages
            .iter()
            .map(|s| s.stage.rung())
            .max()
            .expect("plans are never empty")
    }

    /// Number of refinement passes (residual/correct pairs after the
    /// initial solve). Zero for a direct plan.
    pub fn corrections(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| matches!(s.stage, Stage::Residual { .. }))
            .count()
    }

    /// True when this is a single-rung direct solve.
    pub fn is_direct(&self) -> bool {
        self.corrections() == 0
    }

    /// Solver options of the factor tiling.
    pub fn options(&self, mode: ExecMode) -> LstsqOptions {
        let (_, tiles, tile_size) = self.factor();
        LstsqOptions::tiled(tiles, tile_size, mode)
    }

    /// One-line structure summary, e.g. `"direct@4d 4x256"` or
    /// `"qr@2d 4x256 + 2 it@4d"`.
    pub fn summary(&self) -> String {
        let (rung, tiles, tile_size) = self.factor();
        if self.is_direct() {
            format!("direct@{} {}x{}", rung.tag(), tiles, tile_size)
        } else {
            format!(
                "qr@{} {}x{} + {} it@{}",
                rung.tag(),
                tiles,
                tile_size,
                self.corrections(),
                self.solution_precision().tag()
            )
        }
    }
}

/// Fused-priced totals of one execution plan run as a micro-batched
/// group: the same stage *structure* as the singleton [`ExecPlan`]
/// (so every member job's arithmetic — and bits — are unchanged), but
/// every stage priced as one fused launch sequence over `group`
/// instances (occupancy over the fused grid, per-launch bookkeeping
/// amortized — see `gpusim::fused_kernel_ms`). The scheduler books
/// these totals *once* per group instead of `group` singleton
/// bookings.
#[derive(Clone, Debug, PartialEq)]
pub struct FusedProfile {
    /// Number of fused instances `k`.
    pub group: usize,
    /// Fused predicted wall clock of the whole group, ms.
    pub predicted_ms: f64,
    /// Fused predicted kernel time, ms.
    pub predicted_kernel_ms: f64,
    /// Composed Table 1 flops of the whole group.
    pub flops_paper: f64,
    /// Per-stage fused wall clock (whole group), aligned index-for-
    /// index with the plan's `stages` — the refund table of adaptive
    /// early stops.
    pub stage_wall_ms: Vec<f64>,
    /// Per-stage prep-lane share of `stage_wall_ms` (host overhead +
    /// PCIe transfer), aligned index-for-index — what stage-granular
    /// booking puts on the prep lane so the next job's factorization
    /// prep can hide under this group's kernels.
    pub stage_host_ms: Vec<f64>,
}

impl FusedProfile {
    /// The exact fused-shaped pricing of a singleton dispatch: group 1,
    /// stage walls straight off the plan's per-stage profiles. Lets
    /// unfused dispatches share the group executor (and its refund
    /// arithmetic) without any model re-evaluation.
    pub fn singleton(plan: &ExecPlan) -> FusedProfile {
        FusedProfile {
            group: 1,
            predicted_ms: plan.predicted_ms,
            predicted_kernel_ms: plan.predicted_kernel_ms,
            flops_paper: plan.flops_paper,
            stage_wall_ms: plan.stages.iter().map(|s| s.wall_ms()).collect(),
            stage_host_ms: plan
                .stages
                .iter()
                .map(|s| s.profile.lane_split_ms().0)
                .collect(),
        }
    }

    /// Booked wall clock per member job, ms.
    pub fn per_job_ms(&self) -> f64 {
        self.predicted_ms / self.group as f64
    }

    /// Lane-split booking requests of stages `..upto` — what a
    /// stage-granular dispatch hands to
    /// [`crate::pool::DevicePool::commit_stages`].
    ///
    /// Only the *first* stage's host overhead and transfers go on the
    /// prep lane: that is the per-dispatch prep (promotion, pinned
    /// staging, the system upload) a service genuinely runs ahead of
    /// time while the device still computes the previous job. Every
    /// later stage's transfers are mid-launch-sequence moves of the
    /// iterate, synchronous with the kernel stream — they book on the
    /// compute lane with their kernels.
    pub fn stage_reqs(&self, upto: usize) -> Vec<StageReq> {
        let upto = upto.min(self.stage_wall_ms.len());
        (0..upto)
            .map(|i| {
                let host = if i == 0 { self.stage_host_ms[i] } else { 0.0 };
                StageReq::split(self.stage_wall_ms[i], host)
            })
            .collect()
    }

    /// Booking request of one extra residual/correct pass beyond the
    /// plan's stage list — priced as the *last* booked pair (every pass
    /// after the first residual costs the same; the first also carries
    /// the system upload), for online pass extension when conditioning
    /// stalls the residual above target. Pure compute-lane work, like
    /// every mid-sequence stage.
    pub fn extension_reqs(&self) -> Vec<StageReq> {
        let n = self.stage_wall_ms.len();
        if n < 4 {
            return Vec::new(); // direct plans have no pass to replay
        }
        (n - 2..n)
            .map(|i| StageReq::split(self.stage_wall_ms[i], 0.0))
            .collect()
    }

    /// One member job's booked share of every stage from index
    /// `from_stage` on, ms — what reconciliation refunds when an
    /// adaptive plan stops before those stages.
    pub fn per_job_tail_ms(&self, from_stage: usize) -> f64 {
        let from = from_stage.min(self.stage_wall_ms.len());
        self.stage_wall_ms[from..].iter().sum::<f64>() / self.group as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::OpCounts;

    fn profile(kernel_ms: f64, flops: f64) -> Profile {
        let mut p = Profile::new();
        p.record("k", kernel_ms, OpCounts::ZERO, flops, flops, 0);
        p
    }

    fn planned(stage: Stage, kernel_ms: f64) -> PlannedStage {
        PlannedStage {
            stage,
            profile: profile(kernel_ms, 10.0 * kernel_ms),
        }
    }

    #[test]
    fn totals_compose_by_absorb() {
        let f = Stage::Factor {
            rung: Precision::D2,
            tiles: 4,
            tile_size: 8,
        };
        let c = Stage::Correct {
            rung: Precision::D2,
            tiles: 4,
            tile_size: 8,
        };
        let r = Stage::Residual {
            rung: Precision::D4,
        };
        let plan = ExecPlan::from_stages(
            vec![
                planned(f, 8.0),
                planned(c, 1.0),
                planned(r, 0.5),
                planned(c, 1.0),
            ],
            40,
            58,
        );
        assert_eq!(plan.predicted_kernel_ms, 10.5);
        assert_eq!(plan.flops_paper, 105.0);
        assert_eq!(plan.corrections(), 1);
        assert!(!plan.is_direct());
        assert_eq!(plan.factor_precision(), Precision::D2);
        assert_eq!(plan.solution_precision(), Precision::D4);
        assert_eq!(plan.summary(), "qr@2d 4x8 + 1 it@4d");
    }

    #[test]
    fn direct_plan_shape() {
        let f = Stage::Factor {
            rung: Precision::D4,
            tiles: 2,
            tile_size: 16,
        };
        let c = Stage::Correct {
            rung: Precision::D4,
            tiles: 2,
            tile_size: 16,
        };
        let plan = ExecPlan::from_stages(vec![planned(f, 5.0), planned(c, 0.5)], 50, 60);
        assert!(plan.is_direct());
        assert_eq!(plan.solution_precision(), Precision::D4);
        assert_eq!(plan.factor(), (Precision::D4, 2, 16));
        assert_eq!(plan.summary(), "direct@4d 2x16");
        assert_eq!(plan.options(ExecMode::ModelOnly).cols(), 32);
    }

    #[test]
    #[should_panic(expected = "starts with a Factor")]
    fn plans_must_lead_with_factor() {
        let c = Stage::Correct {
            rung: Precision::D2,
            tiles: 1,
            tile_size: 4,
        };
        let _ = ExecPlan::from_stages(vec![planned(c, 1.0)], 20, 29);
    }

    #[test]
    fn fused_profile_shares() {
        let f = FusedProfile {
            group: 4,
            predicted_ms: 40.0,
            predicted_kernel_ms: 32.0,
            flops_paper: 400.0,
            stage_wall_ms: vec![20.0, 8.0, 8.0, 4.0],
            stage_host_ms: vec![12.0, 1.0, 2.0, 1.0],
        };
        assert_eq!(f.per_job_ms(), 10.0);
        // skipping the last residual/correct pair refunds its share
        assert_eq!(f.per_job_tail_ms(2), 3.0);
        assert_eq!(f.per_job_tail_ms(4), 0.0);
        assert_eq!(f.per_job_tail_ms(99), 0.0);
        // lane-split requests line up with the walls
        let reqs = f.stage_reqs(4);
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[0].host_ms, 12.0);
        assert_eq!(reqs[0].device_ms, 8.0);
        // an extension pass replays the last residual/correct pair
        let ext = f.extension_reqs();
        assert_eq!(ext.len(), 2);
        assert_eq!(ext[0].wall_ms(), 8.0);
        assert_eq!(ext[1].wall_ms(), 4.0);
    }

    #[test]
    fn stage_labels() {
        assert_eq!(
            Stage::Factor {
                rung: Precision::D2,
                tiles: 4,
                tile_size: 256
            }
            .label(),
            "factor@2d 4x256"
        );
        assert_eq!(
            Stage::Residual {
                rung: Precision::D8
            }
            .label(),
            "residual@8d"
        );
    }
}
