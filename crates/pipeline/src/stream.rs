//! Streaming variant of the batch service: jobs flow in through any
//! iterator and outcomes flow out one by one, with the pool's simulated
//! clocks advancing as the stream is consumed.
//!
//! Dispatch decisions are made per job at pull time (least-loaded
//! device *now*), so a stream interleaved with other pool usage behaves
//! like a live service queue. Numerics per job are identical to
//! [`crate::batch::solve_batch`] — the solution never depends on which
//! device a job lands on, only the simulated timing does.

use crate::batch::{solve_planned, JobOutcome};
use crate::job::Job;
use crate::planner::Planner;
use crate::pool::DevicePool;
use crate::scheduler::{dispatch_one, JobShape};

/// A lazy job-to-outcome pipeline over a device pool.
pub struct BatchStream<'p, I> {
    pool: &'p mut DevicePool,
    planner: Planner,
    jobs: I,
    pulled: usize,
}

/// Stream `jobs` through `pool`: each `next()` plans, dispatches and
/// solves one job.
pub fn solve_stream<'p, I>(pool: &'p mut DevicePool, jobs: I) -> BatchStream<'p, I::IntoIter>
where
    I: IntoIterator<Item = Job>,
{
    BatchStream {
        pool,
        planner: Planner::new(),
        jobs: jobs.into_iter(),
        pulled: 0,
    }
}

impl<I> Iterator for BatchStream<'_, I>
where
    I: Iterator<Item = Job>,
{
    type Item = JobOutcome;

    fn next(&mut self) -> Option<JobOutcome> {
        let job = self.jobs.next()?;
        let d = dispatch_one(self.pool, &self.planner, self.pulled, &JobShape::from(&job));
        self.pulled += 1;
        let (x, residual) = solve_planned(self.pool.gpu(d.device), &job, &d.plan);
        Some(JobOutcome {
            job_id: job.id,
            device: d.device,
            plan: d.plan,
            x,
            residual,
            start_ms: d.start_ms,
            end_ms: d.end_ms,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.jobs.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::solve_batch_with;
    use crate::workload::power_flow_jobs;
    use gpusim::Gpu;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stream_matches_batch() {
        let mut rng = StdRng::seed_from_u64(91);
        let jobs = power_flow_jobs(10, &mut rng);

        let mut pool_b = DevicePool::homogeneous(&Gpu::v100(), 2);
        let batch = solve_batch_with(&mut pool_b, &jobs, 1);

        let mut pool_s = DevicePool::homogeneous(&Gpu::v100(), 2);
        let streamed: Vec<JobOutcome> = solve_stream(&mut pool_s, jobs).collect();

        assert_eq!(streamed.len(), batch.outcomes.len());
        for (s, b) in streamed.iter().zip(&batch.outcomes) {
            assert_eq!(s.job_id, b.job_id);
            assert_eq!(
                s.x, b.x,
                "job {}: stream and batch solutions differ",
                s.job_id
            );
            assert_eq!(s.device, b.device);
            assert_eq!(s.end_ms, b.end_ms);
        }
        assert_eq!(pool_s.makespan_ms(), pool_b.makespan_ms());
    }

    #[test]
    fn stream_is_lazy() {
        let mut rng = StdRng::seed_from_u64(92);
        let jobs = power_flow_jobs(6, &mut rng);
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        {
            let mut stream = solve_stream(&mut pool, jobs);
            assert!(stream.next().is_some());
            assert!(stream.next().is_some());
            // four jobs never pulled, never solved
        }
        assert_eq!(pool.total_solves(), 2);
    }
}
