//! Streaming variant of the batch service: jobs flow in through any
//! iterator and outcomes flow out one by one, with the pool's simulated
//! clocks advancing as the stream is consumed.
//!
//! The pull loop is a two-stage pipeline. **Admit**: each `next()`
//! first refills a bounded reorder buffer from the input iterator.
//! **Reorder → dispatch**: the buffer is a binary heap ordered by
//! (priority desc, deadline asc, arrival asc), so the highest-priority
//! admitted job dispatches first — a path tracker's corrector solves
//! overtake speculative predictor solves that arrived earlier, as long
//! as both sit in the buffer together. With the default window of 1
//! (see [`solve_stream`]) the buffer holds exactly the next job and the
//! stream is plain FIFO, bit- and timing-compatible with the original
//! API.
//!
//! Dispatch decisions are made per job at drain time under a
//! caller-chosen [`DispatchPolicy`], so a stream interleaved with other
//! pool usage behaves like a live service queue. Numerics per job are
//! identical to [`crate::batch::solve_batch`] — the solution never
//! depends on which device a job lands on or when, only the simulated
//! timing does.

use std::collections::BinaryHeap;

use crate::batch::{solve_planned, JobOutcome};
use crate::job::Job;
use crate::planner::Planner;
use crate::pool::DevicePool;
use crate::scheduler::{dispatch_one, DispatchPolicy, JobShape};

/// A job waiting in the reorder buffer, ordered so the heap's max is
/// the next job to dispatch: higher priority first, then earlier
/// deadline (no deadline sorts last), then earlier arrival (FIFO among
/// equals — equal-priority streams drain in submission order).
struct QueuedJob {
    job: Job,
    arrival: usize,
}

impl QueuedJob {
    /// Deadline as a totally ordered key: missing deadlines sort after
    /// any finite one.
    fn deadline(&self) -> f64 {
        self.job.deadline_ms.unwrap_or(f64::INFINITY)
    }
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for QueuedJob {}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.job
            .priority
            .cmp(&other.job.priority)
            .then(other.deadline().total_cmp(&self.deadline()))
            .then(other.arrival.cmp(&self.arrival))
    }
}

/// A lazy job-to-outcome pipeline over a device pool.
pub struct BatchStream<'p, I> {
    pool: &'p mut DevicePool,
    planner: Planner,
    jobs: I,
    policy: DispatchPolicy,
    /// Reorder-buffer capacity: how many admitted jobs compete for the
    /// next dispatch slot. 1 = FIFO.
    window: usize,
    buffer: BinaryHeap<QueuedJob>,
    admitted: usize,
    dispatched: usize,
}

/// Stream `jobs` through `pool` in FIFO order under the default
/// [`DispatchPolicy::LeastLoaded`]: each `next()` plans, dispatches and
/// solves one job. Equivalent to [`solve_stream_with`] with a reorder
/// window of 1.
pub fn solve_stream<'p, I>(pool: &'p mut DevicePool, jobs: I) -> BatchStream<'p, I::IntoIter>
where
    I: IntoIterator<Item = Job>,
{
    solve_stream_with(pool, jobs, DispatchPolicy::LeastLoaded, 1)
}

/// Stream `jobs` through `pool` under an explicit dispatch `policy` and
/// reorder `window` (clamped to ≥ 1). A window of `w` admits up to `w`
/// jobs from the input before every dispatch and drains them highest
/// priority first, so a late high-priority job can overtake up to
/// `w − 1` earlier low-priority ones.
pub fn solve_stream_with<'p, I>(
    pool: &'p mut DevicePool,
    jobs: I,
    policy: DispatchPolicy,
    window: usize,
) -> BatchStream<'p, I::IntoIter>
where
    I: IntoIterator<Item = Job>,
{
    BatchStream {
        pool,
        planner: Planner::new(),
        jobs: jobs.into_iter(),
        policy,
        window: window.max(1),
        buffer: BinaryHeap::new(),
        admitted: 0,
        dispatched: 0,
    }
}

impl<I> Iterator for BatchStream<'_, I>
where
    I: Iterator<Item = Job>,
{
    type Item = JobOutcome;

    fn next(&mut self) -> Option<JobOutcome> {
        // admit: refill the reorder buffer up to the window
        while self.buffer.len() < self.window {
            match self.jobs.next() {
                Some(job) => {
                    self.buffer.push(QueuedJob {
                        job,
                        arrival: self.admitted,
                    });
                    self.admitted += 1;
                }
                None => break,
            }
        }
        // reorder → dispatch: drain the most urgent admitted job
        let job = self.buffer.pop()?.job;
        let d = dispatch_one(
            self.pool,
            &self.planner,
            self.dispatched,
            &JobShape::from(&job),
            self.policy,
        );
        self.dispatched += 1;
        let (x, residual) = solve_planned(self.pool.gpu(d.device), &job, &d.plan);
        Some(JobOutcome::assemble(job.id, d, x, residual))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.jobs.size_hint();
        let buffered = self.buffer.len();
        (lo.saturating_add(buffered), hi.map(|h| h + buffered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::solve_batch_with;
    use crate::workload::power_flow_jobs;
    use gpusim::Gpu;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stream_matches_batch() {
        let mut rng = StdRng::seed_from_u64(91);
        let jobs = power_flow_jobs(10, &mut rng);

        let mut pool_b = DevicePool::homogeneous(&Gpu::v100(), 2);
        let batch = solve_batch_with(&mut pool_b, &jobs, 1, DispatchPolicy::LeastLoaded);

        let mut pool_s = DevicePool::homogeneous(&Gpu::v100(), 2);
        let streamed: Vec<JobOutcome> = solve_stream(&mut pool_s, jobs).collect();

        assert_eq!(streamed.len(), batch.outcomes.len());
        for (s, b) in streamed.iter().zip(&batch.outcomes) {
            assert_eq!(s.job_id, b.job_id);
            assert_eq!(
                s.x, b.x,
                "job {}: stream and batch solutions differ",
                s.job_id
            );
            assert_eq!(s.device, b.device);
            assert_eq!(s.end_ms, b.end_ms);
        }
        assert_eq!(pool_s.makespan_ms(), pool_b.makespan_ms());
    }

    #[test]
    fn stream_is_lazy() {
        let mut rng = StdRng::seed_from_u64(92);
        let jobs = power_flow_jobs(6, &mut rng);
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        {
            let mut stream = solve_stream(&mut pool, jobs);
            assert!(stream.next().is_some());
            assert!(stream.next().is_some());
            // four jobs never pulled, never solved
        }
        assert_eq!(pool.total_solves(), 2);
    }

    #[test]
    fn high_priority_overtakes_the_buffer() {
        let mut rng = StdRng::seed_from_u64(93);
        let mut jobs = power_flow_jobs(6, &mut rng);
        // five speculative predictor solves, then one late corrector
        let corrector_id = jobs[5].id;
        jobs[5].priority = 1;
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let order: Vec<u64> = solve_stream_with(&mut pool, jobs, DispatchPolicy::LeastLoaded, 8)
            .map(|o| o.job_id)
            .collect();
        assert_eq!(
            order[0], corrector_id,
            "late corrector did not overtake: {order:?}"
        );
    }

    #[test]
    fn equal_priority_deadlines_drain_earliest_first() {
        let mut rng = StdRng::seed_from_u64(94);
        let mut jobs = power_flow_jobs(4, &mut rng);
        jobs[0].deadline_ms = None;
        jobs[1].deadline_ms = Some(9.0);
        jobs[2].deadline_ms = Some(3.0);
        jobs[3].deadline_ms = Some(6.0);
        let expect = vec![jobs[2].id, jobs[3].id, jobs[1].id, jobs[0].id];
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let order: Vec<u64> = solve_stream_with(&mut pool, jobs, DispatchPolicy::LeastLoaded, 4)
            .map(|o| o.job_id)
            .collect();
        assert_eq!(order, expect, "not earliest-deadline-first");
    }

    #[test]
    fn window_one_is_fifo_even_with_priorities() {
        let mut rng = StdRng::seed_from_u64(95);
        let mut jobs = power_flow_jobs(5, &mut rng);
        for (i, j) in jobs.iter_mut().enumerate() {
            j.priority = i as i32; // ascending: FIFO is maximally "wrong"
        }
        let ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let order: Vec<u64> = solve_stream(&mut pool, jobs).map(|o| o.job_id).collect();
        assert_eq!(order, ids, "window 1 must not reorder");
    }

    #[test]
    fn reordering_never_changes_numerics() {
        let mut rng = StdRng::seed_from_u64(96);
        let mut jobs = power_flow_jobs(12, &mut rng);
        for (i, j) in jobs.iter_mut().enumerate() {
            j.priority = (i % 3) as i32;
        }
        let mut pool_f = DevicePool::homogeneous(&Gpu::v100(), 2);
        let fifo: Vec<JobOutcome> = solve_stream(&mut pool_f, jobs.clone()).collect();
        let mut pool_r = DevicePool::homogeneous(&Gpu::v100(), 2);
        let reordered: Vec<JobOutcome> = solve_stream_with(
            &mut pool_r,
            jobs,
            DispatchPolicy::ShortestExpectedCompletion,
            6,
        )
        .collect();
        assert_eq!(fifo.len(), reordered.len());
        for f in &fifo {
            let r = reordered.iter().find(|r| r.job_id == f.job_id).unwrap();
            assert_eq!(f.x, r.x, "job {}: reordering changed the bits", f.job_id);
            assert_eq!(f.residual, r.residual);
        }
    }
}
