//! Streaming variant of the batch service: jobs flow in through any
//! iterator and outcomes flow out one by one, with the pool's simulated
//! clocks advancing as the stream is consumed.
//!
//! The pull loop is a two-stage pipeline. **Admit**: each `next()`
//! first refills a bounded reorder buffer from the input iterator.
//! **Reorder → dispatch**: the buffer is a binary heap ordered by
//! (priority desc, deadline asc, arrival asc), so the highest-priority
//! admitted job dispatches first — a path tracker's corrector solves
//! overtake speculative predictor solves that arrived earlier, as long
//! as both sit in the buffer together. With the default window of 1
//! (see [`solve_stream`]) the buffer holds exactly the next job and the
//! stream is plain FIFO, bit- and timing-compatible with the original
//! API.
//!
//! Dispatch decisions are made per job at drain time under a
//! caller-chosen [`DispatchPolicy`], so a stream interleaved with other
//! pool usage behaves like a live service queue. Numerics per job are
//! identical to [`crate::batch::solve_batch`] — the solution never
//! depends on which device a job lands on or when, only the simulated
//! timing does.

use std::collections::{BinaryHeap, VecDeque};

use crate::batch::{
    emit_settled, settle_staged_dispatch, solve_planned_fused_with, solve_planned_traced_with,
    Disposition, JobOutcome,
};
use crate::job::Job;
use crate::microbatch::{dispatch_group_at, dispatch_group_staged, MicrobatchConfig};
use crate::planner::Planner;
use crate::pool::DevicePool;
use crate::resilient::{admit_job, tombstone_outcome, AdmissionConfig, AdmissionDecision};
use crate::scheduler::{DispatchPolicy, JobShape, StageSchedConfig};
use mdls_obs::Event;

/// A job waiting in the reorder buffer, ordered so the heap's max is
/// the next job to dispatch: higher priority first, then earlier
/// deadline (no deadline sorts last), then earlier arrival (FIFO among
/// equals — equal-priority streams drain in submission order).
struct QueuedJob {
    job: Job,
    arrival: usize,
    /// Originally requested digits when a loss-time re-preview
    /// down-laddered this job while it sat in the buffer (see
    /// [`BatchStream::reconcile_losses`]); `None` when untouched.
    requested_digits: Option<u32>,
}

impl QueuedJob {
    /// Deadline as a totally ordered key: missing deadlines sort after
    /// any finite one.
    fn deadline(&self) -> f64 {
        self.job.deadline_ms.unwrap_or(f64::INFINITY)
    }
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for QueuedJob {}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.job
            .priority
            .cmp(&other.job.priority)
            .then(other.deadline().total_cmp(&self.deadline()))
            .then(other.arrival.cmp(&self.arrival))
    }
}

/// A lazy job-to-outcome pipeline over a device pool.
pub struct BatchStream<'p, I> {
    pool: &'p mut DevicePool,
    planner: Planner,
    jobs: I,
    policy: DispatchPolicy,
    /// Reorder-buffer capacity: how many admitted jobs compete for the
    /// next dispatch slot. 1 = FIFO.
    window: usize,
    buffer: BinaryHeap<QueuedJob>,
    /// Micro-batching: when set (the default), each dispatch drains a
    /// maximal run of *consecutive* same-shaped jobs from the reorder
    /// buffer (capped at the shape's preferred group size, shrunk
    /// further when the front member's deadline is tight) and fuses
    /// them into one batched launch sequence. Only drain-order prefixes
    /// fuse, so priority/deadline ordering is exactly the unfused
    /// stream's. [`MicrobatchConfig::off`] restores per-job launches.
    micro: Option<MicrobatchConfig>,
    /// Stage-level scheduling: when set, dispatches book stage-granular
    /// lane-split intervals (overlapping the next group's prep under
    /// the current group's compute), settle refunds online, and may
    /// extend stalled jobs — see [`StageSchedConfig`]. The stream is
    /// already a sequential dispatch→execute loop, so every refund is
    /// causal for the next dispatch by construction.
    sched: Option<StageSchedConfig>,
    /// Ingress admission: when set, each deadlined job is previewed
    /// against the surviving pool as it is popped and may be
    /// down-laddered or shed before any booking — see
    /// [`solve_stream_admitted`] and [`crate::resilient`].
    admission: Option<AdmissionConfig>,
    /// Outcomes of the current fused group not yet yielded.
    ready: VecDeque<JobOutcome>,
    admitted: usize,
    dispatched: usize,
}

/// Stream `jobs` through `pool` in FIFO order under the default
/// [`DispatchPolicy::LeastLoaded`]: each `next()` plans, dispatches and
/// solves one job (or, by default, the run of consecutive same-shaped
/// jobs it fuses with — see [`solve_stream_fused`] for the escape
/// hatch). Equivalent to [`solve_stream_with`] with a reorder window
/// of 1.
pub fn solve_stream<'p, I>(pool: &'p mut DevicePool, jobs: I) -> BatchStream<'p, I::IntoIter>
where
    I: IntoIterator<Item = Job>,
{
    solve_stream_with(pool, jobs, DispatchPolicy::LeastLoaded, 1)
}

/// Stream `jobs` through `pool` under an explicit dispatch `policy` and
/// reorder `window` (clamped to ≥ 1). A window of `w` admits up to `w`
/// jobs from the input before every dispatch and drains them highest
/// priority first, so a late high-priority job can overtake up to
/// `w − 1` earlier low-priority ones.
///
/// Device micro-batching is **on by default** (drain-order prefixes
/// only, so ordering is exactly the unfused stream's and bits never
/// change); pass [`MicrobatchConfig::off`] to [`solve_stream_fused`]
/// for the legacy per-job launch timing.
pub fn solve_stream_with<'p, I>(
    pool: &'p mut DevicePool,
    jobs: I,
    policy: DispatchPolicy,
    window: usize,
) -> BatchStream<'p, I::IntoIter>
where
    I: IntoIterator<Item = Job>,
{
    let mut planner = Planner::new();
    if let Some(obs) = pool.observer() {
        planner.attach_observer(obs.clone());
    }
    BatchStream {
        pool,
        planner,
        jobs: jobs.into_iter(),
        policy,
        window: window.max(1),
        buffer: BinaryHeap::new(),
        micro: Some(MicrobatchConfig::default()),
        sched: None,
        admission: None,
        ready: VecDeque::new(),
        admitted: 0,
        dispatched: 0,
    }
}

/// [`solve_stream_with`] plus device-level micro-batching: each
/// dispatch pulls the most urgent admitted job *and* every job the
/// unfused stream would have dispatched immediately after it, as long
/// as they share its shape key (up to the shape's occupancy-aware
/// preferred group size), fusing them into one batched launch sequence
/// booked as a single pool commitment.
///
/// Fusion never reaches past the drain order: the buffer re-admits
/// before every member is chosen, so a fused group is *exactly* the
/// prefix of the dispatch sequence the unfused stream would have
/// produced — priority and deadline ordering are preserved verbatim,
/// and a group never waits for a job that has not arrived. Each member
/// job is yielded as its own outcome, bit-identical to the unfused
/// stream; siblings share their group's simulated interval.
pub fn solve_stream_fused<'p, I>(
    pool: &'p mut DevicePool,
    jobs: I,
    policy: DispatchPolicy,
    window: usize,
    cfg: MicrobatchConfig,
) -> BatchStream<'p, I::IntoIter>
where
    I: IntoIterator<Item = Job>,
{
    BatchStream {
        micro: Some(cfg),
        ..solve_stream_with(pool, jobs, policy, window)
    }
}

/// [`solve_stream_fused`] with **stage-level scheduling**: every
/// dispatch books its stages as lane-split intervals on the chosen
/// device's timeline (the next group's factorization prep hides under
/// the current group's device passes), adaptive early stops are
/// re-booked online so the freed time is visible to the very next
/// dispatch, and a job whose residual stalls above target may extend
/// past its plan ([`StageSchedConfig::max_extra_passes`]). Ordering is
/// the fused stream's; bits match every other path whenever the
/// extension cap matches.
pub fn solve_stream_staged<'p, I>(
    pool: &'p mut DevicePool,
    jobs: I,
    policy: DispatchPolicy,
    window: usize,
    cfg: MicrobatchConfig,
    sched: StageSchedConfig,
) -> BatchStream<'p, I::IntoIter>
where
    I: IntoIterator<Item = Job>,
{
    BatchStream {
        micro: Some(cfg),
        sched: Some(sched),
        ..solve_stream_with(pool, jobs, policy, window)
    }
}

/// [`solve_stream_staged`] with **ingress admission**: every deadlined
/// job popped from the reorder buffer is previewed against the
/// surviving pool before anything is booked, and an unmeetable request
/// is down-laddered to the cheapest precision rung that fits its
/// deadline ([`Disposition::Degraded`], original request preserved on
/// [`JobOutcome::requested_digits`]) or shed at the door
/// ([`Disposition::Shed`] — the outcome is yielded immediately, with
/// nothing booked and nothing solved). Deadline-free jobs pass through
/// untouched, as does everything when `admission.enabled` is false.
///
/// The admitted stream is also **loss-aware**: before each pull, any
/// device whose [`gpusim::FaultPlan`] sticky-loss threshold has come
/// due on the simulated clock is failed, and when the alive set
/// shrinks every *buffered* admission is re-previewed against the
/// survivors — a verdict reached while the dead device still counted
/// is stale, so unmeetable jobs re-shed (tombstones yield ahead of
/// the next dispatch) and tight ones down-ladder in place.
pub fn solve_stream_admitted<'p, I>(
    pool: &'p mut DevicePool,
    jobs: I,
    policy: DispatchPolicy,
    window: usize,
    cfg: MicrobatchConfig,
    sched: StageSchedConfig,
    admission: AdmissionConfig,
) -> BatchStream<'p, I::IntoIter>
where
    I: IntoIterator<Item = Job>,
{
    BatchStream {
        micro: Some(cfg),
        sched: Some(sched),
        admission: Some(admission),
        ..solve_stream_with(pool, jobs, policy, window)
    }
}

impl<I> BatchStream<'_, I>
where
    I: Iterator<Item = Job>,
{
    /// Refill the reorder buffer from the input up to the window.
    fn admit(&mut self) {
        while self.buffer.len() < self.window {
            match self.jobs.next() {
                Some(job) => {
                    self.buffer.push(QueuedJob {
                        job,
                        arrival: self.admitted,
                        requested_digits: None,
                    });
                    self.admitted += 1;
                }
                None => break,
            }
        }
    }

    /// Emit the shed event and build the tombstone outcome for a job
    /// turned away by admission — shared by the pop-time preview and
    /// the loss-time re-preview.
    fn shed_outcome(&mut self, job: &Job, predicted_end: f64) -> JobOutcome {
        self.pool.emit(|| Event::JobShed {
            job: job.id,
            deadline_ms: job.deadline_ms.unwrap_or(0.0),
            predicted_end_ms: predicted_end,
        });
        let device = self
            .pool
            .devices()
            .iter()
            .find(|d| !d.is_lost())
            .map(|d| d.id)
            .unwrap_or(0);
        let (plan, _) = self.planner.plan_fused(
            self.pool.gpu(device),
            job.rows(),
            job.cols(),
            job.target_digits,
            1,
        );
        self.dispatched += 1;
        tombstone_outcome(job, plan, device, Disposition::Shed, job.release())
    }

    /// Apply sticky device losses that have come due on the simulated
    /// clock, and — when the alive set shrinks — re-preview every
    /// buffered admission against the survivors. A verdict previewed
    /// while N devices were alive is stale on N−1: a job that fit its
    /// deadline then may be unmeetable now, and dispatching it anyway
    /// would book doomed work. Re-shed jobs tombstone straight into the
    /// ready queue; down-laddered jobs stay in the reorder buffer at
    /// the lower rung (remembering the requested digits so their
    /// outcome reports [`Disposition::Degraded`]). No-op unless the
    /// stream was built with ingress admission
    /// ([`solve_stream_admitted`]).
    fn reconcile_losses(&mut self) {
        let Some(adm) = self.admission else { return };
        let floor = self.pool.min_clock_ms();
        let due: Vec<(usize, f64)> = self
            .pool
            .devices()
            .iter()
            .filter(|d| !d.is_lost())
            .filter_map(|d| {
                d.gpu
                    .fault
                    .lost_at_ms()
                    .filter(|&at| at <= floor)
                    .map(|at| (d.id, at))
            })
            .collect();
        if due.is_empty() {
            return;
        }
        for &(id, at) in &due {
            self.pool.fail_device(id, at);
        }
        let overlap = self.sched.as_ref().map(|s| s.overlap).unwrap_or(false);
        for mut q in std::mem::take(&mut self.buffer).into_vec() {
            let release = q.job.release().max(self.pool.min_clock_ms());
            match admit_job(self.pool, &self.planner, &q.job, overlap, release, &adm) {
                AdmissionDecision::Admit => self.buffer.push(q),
                AdmissionDecision::Degrade(digits) => {
                    self.pool.emit(|| Event::JobDegraded {
                        job: q.job.id,
                        from_digits: q.job.target_digits,
                        to_digits: digits,
                    });
                    q.requested_digits = q.requested_digits.or(Some(q.job.target_digits));
                    q.job.target_digits = digits;
                    self.buffer.push(q);
                }
                AdmissionDecision::Shed(predicted_end) => {
                    let o = self.shed_outcome(&q.job, predicted_end);
                    self.ready.push_back(o);
                }
            }
        }
    }
}

impl<I> Iterator for BatchStream<'_, I>
where
    I: Iterator<Item = Job>,
{
    type Item = JobOutcome;

    fn next(&mut self) -> Option<JobOutcome> {
        // fused siblings of the previous dispatch drain first
        if let Some(o) = self.ready.pop_front() {
            return Some(o);
        }
        // sticky losses that came due re-preview the whole buffer: any
        // re-shed tombstones drain before the next dispatch
        self.reconcile_losses();
        if let Some(o) = self.ready.pop_front() {
            return Some(o);
        }
        // admit, then reorder → dispatch the most urgent admitted job...
        self.admit();
        let queued = self.buffer.pop()?;
        let mut job = queued.job;
        // ingress admission: preview the deadlined job against the
        // surviving pool and shed or down-ladder before anything books
        let mut requested_digits = queued.requested_digits;
        if let Some(adm) = self.admission {
            let floor = job.release().max(self.pool.min_clock_ms());
            let overlap = self.sched.as_ref().map(|s| s.overlap).unwrap_or(false);
            match admit_job(self.pool, &self.planner, &job, overlap, floor, &adm) {
                AdmissionDecision::Admit => {}
                AdmissionDecision::Degrade(digits) => {
                    self.pool.emit(|| Event::JobDegraded {
                        job: job.id,
                        from_digits: job.target_digits,
                        to_digits: digits,
                    });
                    requested_digits = requested_digits.or(Some(job.target_digits));
                    job.target_digits = digits;
                }
                AdmissionDecision::Shed(predicted_end) => {
                    return Some(self.shed_outcome(&job, predicted_end));
                }
            }
        }
        let shape = JobShape::from(&job);
        // the earliest the group could possibly start: the front job's
        // arrival, or the soonest any device frees up — the reference
        // point of the deadline slack and the member-arrival guard
        let floor = job.release().max(self.pool.min_clock_ms());
        // ...plus, when micro-batching, the run of jobs the unfused
        // stream would have dispatched next anyway, as long as they
        // share the shape key. Re-admitting before every member keeps
        // the group an exact prefix of the unfused drain order — a
        // late-arriving higher-priority job still overtakes exactly
        // where it would have — so fusion can never violate priority or
        // deadline ordering.
        let mut group = vec![job];
        if let Some(cfg) = self.micro.filter(|c| !c.is_off()) {
            let mut preferred = self.planner.preferred_group_size(
                shape.rows,
                shape.cols,
                shape.target_digits,
                cfg.max_group,
                cfg.tolerance,
            );
            // deadline-aware cap: a fused group completes as a whole,
            // so when the front (most urgent) member's deadline is
            // tight, shrink the group until its fused wall clock fits
            // the remaining slack
            if let Some(deadline) = group[0].deadline_ms {
                let slack = (deadline - floor).max(0.0);
                let cap = self.planner.deadline_group_cap(
                    shape.rows,
                    shape.cols,
                    shape.target_digits,
                    preferred,
                    slack,
                );
                if cap < preferred {
                    self.pool.emit(|| Event::DeadlineCap {
                        preferred,
                        cap,
                        slack_ms: slack,
                    });
                }
                preferred = cap;
            }
            while group.len() < preferred {
                self.admit();
                match self.buffer.peek() {
                    // a member that has not arrived by the group's
                    // earliest feasible start would delay the whole
                    // group (and its front deadline) — leave it queued;
                    // so does one down-laddered by a loss-time
                    // re-preview (only the front member's outcome is
                    // patched to Degraded, so it must dispatch as front)
                    Some(q)
                        if JobShape::from(&q.job) == shape
                            && q.job.release() <= floor
                            && q.requested_digits.is_none() =>
                    {
                        group.push(self.buffer.pop().unwrap().job);
                    }
                    _ => break,
                }
            }
            self.pool.emit(|| Event::GroupFormed {
                rows: shape.rows,
                cols: shape.cols,
                digits: shape.target_digits,
                size: group.len(),
                preferred,
            });
        }
        let release = group.iter().map(|j| j.release()).fold(0.0f64, f64::max);
        let idxs: Vec<usize> = (0..group.len()).map(|i| self.dispatched + i).collect();
        let mut g = match &self.sched {
            Some(sched) => dispatch_group_staged(
                self.pool,
                &self.planner,
                idxs,
                &shape,
                self.policy,
                sched,
                release,
            ),
            None => dispatch_group_at(self.pool, &self.planner, idxs, &shape, self.policy, release),
        };
        self.dispatched += group.len();
        let extra = self.sched.map(|s| s.max_extra_passes).unwrap_or(0);
        let members: Vec<&Job> = group.iter().collect();
        let solved = if members.len() == 1 {
            vec![solve_planned_traced_with(
                self.pool.gpu(g.device),
                members[0],
                &g.plan,
                extra,
            )]
        } else {
            solve_planned_fused_with(self.pool.gpu(g.device), &members, &g.plan, extra)
        };
        let mut assembled = match self.sched {
            Some(sched) => {
                // settle the stage booking online: refunds free the
                // timeline spans before the next dispatch ever looks
                // (the stream pull contract keeps dispatch → execute →
                // settle sequential per group, so later groups also
                // gap-fill into compacted holes)
                let passes_run = solved.iter().map(|s| s.corrections_run).max().unwrap_or(0);
                let (refunded, extended) =
                    settle_staged_dispatch(self.pool, &mut g, &shape, passes_run, &sched);
                let mut assembled = JobOutcome::assemble_group(&members, &g, solved);
                for o in &mut assembled {
                    o.refunded_ms = refunded;
                    o.extended_ms = extended;
                }
                assembled
            }
            None => {
                let assembled = JobOutcome::assemble_group(&members, &g, solved);
                for o in &assembled {
                    if o.refunded_ms > 0.0 {
                        self.pool.reconcile(o.device, o.refunded_ms);
                    }
                }
                assembled
            }
        };
        if let Some(req) = requested_digits {
            // the down-laddered job is the group's front member
            if let Some(o) = assembled.first_mut() {
                o.disposition = Disposition::Degraded;
                o.requested_digits = req;
            }
        }
        emit_settled(self.pool, &assembled);
        self.ready.extend(assembled.drain(..));
        self.ready.pop_front()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.jobs.size_hint();
        let pending = self.buffer.len() + self.ready.len();
        (lo.saturating_add(pending), hi.map(|h| h + pending))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::solve_batch_with;
    use crate::workload::power_flow_jobs;
    use gpusim::Gpu;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stream_matches_batch() {
        let mut rng = StdRng::seed_from_u64(91);
        let jobs = power_flow_jobs(10, &mut rng);

        // fusion off on both sides: the stream fuses drain-order runs
        // while the batch buckets across the whole queue, so exact
        // device/timing equality is the *unfused* contract
        let mut pool_b = DevicePool::homogeneous(&Gpu::v100(), 2);
        let batch = crate::batch::solve_batch_fused_with(
            &mut pool_b,
            &jobs,
            1,
            DispatchPolicy::LeastLoaded,
            &MicrobatchConfig::off(),
        );

        let mut pool_s = DevicePool::homogeneous(&Gpu::v100(), 2);
        let streamed: Vec<JobOutcome> = solve_stream_fused(
            &mut pool_s,
            jobs.clone(),
            DispatchPolicy::LeastLoaded,
            1,
            MicrobatchConfig::off(),
        )
        .collect();

        assert_eq!(streamed.len(), batch.outcomes.len());
        for (s, b) in streamed.iter().zip(&batch.outcomes) {
            assert_eq!(s.job_id, b.job_id);
            assert_eq!(
                s.x, b.x,
                "job {}: stream and batch solutions differ",
                s.job_id
            );
            assert_eq!(s.device, b.device);
            assert_eq!(s.end_ms, b.end_ms);
        }
        assert_eq!(pool_s.makespan_ms(), pool_b.makespan_ms());

        // the default (fused) paths group differently but must still
        // agree with each other — and the unfused run — on every bit
        let mut pool_fb = DevicePool::homogeneous(&Gpu::v100(), 2);
        let fused_batch = solve_batch_with(&mut pool_fb, &jobs, 1, DispatchPolicy::LeastLoaded);
        let mut pool_fs = DevicePool::homogeneous(&Gpu::v100(), 2);
        let fused_stream: Vec<JobOutcome> = solve_stream(&mut pool_fs, jobs).collect();
        for b in &fused_batch.outcomes {
            let s = fused_stream.iter().find(|s| s.job_id == b.job_id).unwrap();
            let u = streamed.iter().find(|u| u.job_id == b.job_id).unwrap();
            assert_eq!(s.x, b.x, "job {}: fused stream vs batch bits", b.job_id);
            assert_eq!(u.x, b.x, "job {}: fused vs unfused bits", b.job_id);
        }
    }

    #[test]
    fn stream_is_lazy() {
        let mut rng = StdRng::seed_from_u64(92);
        let jobs = power_flow_jobs(6, &mut rng);
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        {
            let mut stream = solve_stream(&mut pool, jobs);
            assert!(stream.next().is_some());
            assert!(stream.next().is_some());
            // four jobs never pulled, never solved
        }
        assert_eq!(pool.total_solves(), 2);
    }

    #[test]
    fn high_priority_overtakes_the_buffer() {
        let mut rng = StdRng::seed_from_u64(93);
        let mut jobs = power_flow_jobs(6, &mut rng);
        // five speculative predictor solves, then one late corrector
        let corrector_id = jobs[5].id;
        jobs[5].priority = 1;
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let order: Vec<u64> = solve_stream_with(&mut pool, jobs, DispatchPolicy::LeastLoaded, 8)
            .map(|o| o.job_id)
            .collect();
        assert_eq!(
            order[0], corrector_id,
            "late corrector did not overtake: {order:?}"
        );
    }

    #[test]
    fn equal_priority_deadlines_drain_earliest_first() {
        let mut rng = StdRng::seed_from_u64(94);
        let mut jobs = power_flow_jobs(4, &mut rng);
        jobs[0].deadline_ms = None;
        jobs[1].deadline_ms = Some(9.0);
        jobs[2].deadline_ms = Some(3.0);
        jobs[3].deadline_ms = Some(6.0);
        let expect = vec![jobs[2].id, jobs[3].id, jobs[1].id, jobs[0].id];
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let order: Vec<u64> = solve_stream_with(&mut pool, jobs, DispatchPolicy::LeastLoaded, 4)
            .map(|o| o.job_id)
            .collect();
        assert_eq!(order, expect, "not earliest-deadline-first");
    }

    #[test]
    fn window_one_is_fifo_even_with_priorities() {
        let mut rng = StdRng::seed_from_u64(95);
        let mut jobs = power_flow_jobs(5, &mut rng);
        for (i, j) in jobs.iter_mut().enumerate() {
            j.priority = i as i32; // ascending: FIFO is maximally "wrong"
        }
        let ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let order: Vec<u64> = solve_stream(&mut pool, jobs).map(|o| o.job_id).collect();
        assert_eq!(order, ids, "window 1 must not reorder");
    }

    #[test]
    fn fused_stream_matches_unfused_bits_and_fuses_something() {
        // many same-shaped jobs: the fused stream must pack groups yet
        // reproduce every unfused solution bit for bit
        let mut rng = StdRng::seed_from_u64(97);
        let n = 10;
        let jobs: Vec<Job> = (0..18u64)
            .map(|id| {
                let a = mdls_matrix::HostMat::<f64>::from_fn(n, n, |r, c| {
                    let u: f64 = multidouble::random::rand_real(&mut rng);
                    u + if r == c { 4.0 } else { 0.0 }
                });
                let b: Vec<f64> = (0..n)
                    .map(|_| multidouble::random::rand_real(&mut rng))
                    .collect();
                Job::new(id, a, b, 25)
            })
            .collect();
        let mut pool_u = DevicePool::homogeneous(&Gpu::v100(), 2);
        let unfused: Vec<JobOutcome> = solve_stream_fused(
            &mut pool_u,
            jobs.clone(),
            DispatchPolicy::LeastLoaded,
            8,
            MicrobatchConfig::off(),
        )
        .collect();
        let mut pool_f = DevicePool::homogeneous(&Gpu::v100(), 2);
        let fused: Vec<JobOutcome> = solve_stream_fused(
            &mut pool_f,
            jobs,
            DispatchPolicy::LeastLoaded,
            8,
            MicrobatchConfig::default(),
        )
        .collect();
        assert_eq!(unfused.len(), fused.len());
        assert!(
            fused.iter().any(|o| o.fused_group > 1),
            "stream never fused same-shaped neighbors"
        );
        for u in &unfused {
            let f = fused.iter().find(|f| f.job_id == u.job_id).unwrap();
            assert_eq!(u.x, f.x, "job {}: stream fusion changed the bits", u.job_id);
            assert_eq!(u.residual, f.residual);
        }
        // fusing is bounded by the shape's preferred group size
        let cfg = MicrobatchConfig::default();
        let preferred = Planner::new().preferred_group_size(n, n, 25, cfg.max_group, cfg.tolerance);
        assert!(fused.iter().all(|o| o.fused_group <= preferred));
        // and it lifted throughput on these small systems
        assert!(pool_f.makespan_ms() < pool_u.makespan_ms());
    }

    #[test]
    fn fused_stream_respects_priority_and_deadline_order() {
        // fusion only takes drain-order prefixes, so the outcome order
        // of a priority/deadline mix must be exactly the unfused
        // stream's order
        let mut rng = StdRng::seed_from_u64(98);
        let mut jobs = power_flow_jobs(24, &mut rng);
        for (i, j) in jobs.iter_mut().enumerate() {
            j.priority = (i % 3) as i32;
            if i % 4 == 0 {
                j.deadline_ms = Some((i as f64) * 0.25);
            }
        }
        let mut pool_u = DevicePool::homogeneous(&Gpu::v100(), 1);
        let unfused: Vec<u64> =
            solve_stream_with(&mut pool_u, jobs.clone(), DispatchPolicy::LeastLoaded, 6)
                .map(|o| o.job_id)
                .collect();
        let mut pool_f = DevicePool::homogeneous(&Gpu::v100(), 1);
        let fused: Vec<u64> = solve_stream_fused(
            &mut pool_f,
            jobs,
            DispatchPolicy::LeastLoaded,
            6,
            MicrobatchConfig::default(),
        )
        .map(|o| o.job_id)
        .collect();
        assert_eq!(unfused, fused, "fusion reordered the drain sequence");
    }

    #[test]
    fn fused_stream_stays_lazy() {
        // alternating shapes: no two consecutive drain jobs share a
        // key, so every group is a singleton and one pull solves one
        // job — the stream never runs ahead of the consumer
        let mut rng = StdRng::seed_from_u64(99);
        let n = |i: usize| [8usize, 12][i % 2];
        let jobs: Vec<Job> = (0..9u64)
            .map(|id| {
                let d = n(id as usize);
                let a = mdls_matrix::HostMat::<f64>::from_fn(d, d, |r, c| {
                    let u: f64 = multidouble::random::rand_real(&mut rng);
                    u + if r == c { 4.0 } else { 0.0 }
                });
                let b: Vec<f64> = (0..d)
                    .map(|_| multidouble::random::rand_real(&mut rng))
                    .collect();
                Job::new(id, a, b, 25)
            })
            .collect();
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        {
            let mut stream = solve_stream_fused(
                &mut pool,
                jobs,
                DispatchPolicy::LeastLoaded,
                2,
                MicrobatchConfig::default(),
            );
            let first = stream.next().unwrap();
            assert_eq!(first.fused_group, 1);
        }
        assert_eq!(pool.total_solves(), 1, "fused stream ran ahead of the pull");
    }

    /// Same-shaped fusible jobs for the deadline-cap and release tests.
    fn same_shape_jobs(count: u64, n: usize, digits: u32, seed: u64) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|id| {
                let a = mdls_matrix::HostMat::<f64>::from_fn(n, n, |r, c| {
                    let u: f64 = multidouble::random::rand_real(&mut rng);
                    u + if r == c { 4.0 } else { 0.0 }
                });
                let b: Vec<f64> = (0..n)
                    .map(|_| multidouble::random::rand_real(&mut rng))
                    .collect();
                Job::new(id, a, b, digits)
            })
            .collect()
    }

    #[test]
    fn tight_deadline_caps_the_fused_group() {
        // without deadlines the stream fuses up to the preferred size;
        // with a tight front-member deadline the group shrinks so its
        // fused wall clock fits the slack — and a slack big enough for
        // the whole group changes nothing
        let planner = Planner::new();
        let cfg = MicrobatchConfig::default();
        let (n, digits) = (10usize, 25u32);
        let preferred = planner.preferred_group_size(n, n, digits, cfg.max_group, cfg.tolerance);
        assert!(preferred > 1, "shape never fuses; the test is vacuous");
        let (_, single) = planner.plan_fused(&Gpu::v100(), n, n, digits, 1);
        let (_, full) = planner.plan_fused(&Gpu::v100(), n, n, digits, preferred);
        assert!(full.predicted_ms > single.predicted_ms);

        let run = |deadline: Option<f64>| {
            let mut jobs = same_shape_jobs(preferred as u64 * 2, n, digits, 0xd1_77);
            if let Some(d) = deadline {
                jobs[0].deadline_ms = Some(d);
            }
            let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
            let first = solve_stream_fused(
                &mut pool,
                jobs,
                DispatchPolicy::LeastLoaded,
                preferred * 2,
                cfg,
            )
            .next()
            .unwrap();
            first.fused_group
        };
        assert_eq!(run(None), preferred, "unconstrained stream must fuse fully");
        // slack halfway between the singleton and the full group cost:
        // the cap must bind strictly below the preferred size but
        // still admit the front job
        let tight = (single.predicted_ms + full.predicted_ms) / 2.0;
        let capped = run(Some(tight));
        assert!(
            capped < preferred && capped >= 1,
            "tight deadline gave group {capped} (preferred {preferred})"
        );
        // a deadline past the full fused cost changes nothing
        assert_eq!(run(Some(full.predicted_ms * 10.0)), preferred);
    }

    #[test]
    fn release_times_hold_jobs_and_misses_are_countable() {
        let mut jobs = same_shape_jobs(3, 8, 25, 0xae1ea5e);
        // distinct shapes would also work; here releases alone keep the
        // stream honest: job 1 arrives at t=50, long after job 0 ends
        jobs[1].release_ms = Some(50.0);
        jobs[1].deadline_ms = Some(55.0); // unmeetable: a real miss
        jobs[2].release_ms = Some(50.0);
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let outs: Vec<JobOutcome> =
            solve_stream_fused(&mut pool, jobs, DispatchPolicy::LeastLoaded, 1, {
                MicrobatchConfig::off()
            })
            .collect();
        // job 0 runs from t=0; job 1 cannot start before its arrival
        assert_eq!(outs[0].start_ms, 0.0);
        assert!(outs[0].end_ms < 50.0);
        assert!(outs[1].start_ms >= 50.0, "job 1 ran before its release");
        // the release gap is idle, not busy: utilization stays honest
        let stats = &pool.stats()[0];
        assert!(stats.busy_ms < pool.makespan_ms());
        // and the deadline miss is a measurable fact of the timeline,
        // counted by the one shared accounting everything reports
        // through — not a hand-rolled end-vs-deadline compare
        assert!(
            outs[1].missed_deadline(),
            "the unmeetable deadline was met?"
        );
        assert!(!outs[0].missed_deadline() && !outs[2].missed_deadline());
        let lat = crate::batch::latency_summary(&outs);
        assert_eq!(lat.deadline_misses, 1);
        // turnaround is release-relative: job 1 waited from t=50, so its
        // turnaround is its service time, not its absolute end
        assert!((outs[1].turnaround_ms() - (outs[1].end_ms - 50.0)).abs() < 1e-12);
        assert!(lat.p999_ms >= lat.p99_ms && lat.p99_ms >= lat.p50_ms);
        // a fused group never waits for an unarrived member: jobs 1 and
        // 2 share a shape and releases, so with fusion they may group —
        // but job 0 must never be delayed to t=50
        let mut pool_f = DevicePool::homogeneous(&Gpu::v100(), 1);
        let jobs2 = {
            let mut j = same_shape_jobs(3, 8, 25, 0xae1ea5e);
            j[1].release_ms = Some(50.0);
            j[2].release_ms = Some(50.0);
            j
        };
        let fused: Vec<JobOutcome> = solve_stream_fused(
            &mut pool_f,
            jobs2,
            DispatchPolicy::LeastLoaded,
            3,
            MicrobatchConfig::default(),
        )
        .collect();
        assert_eq!(fused[0].fused_group, 1, "job 0 fused with unarrived jobs");
        assert_eq!(fused[0].start_ms, 0.0);
    }

    #[test]
    fn reordering_never_changes_numerics() {
        let mut rng = StdRng::seed_from_u64(96);
        let mut jobs = power_flow_jobs(12, &mut rng);
        for (i, j) in jobs.iter_mut().enumerate() {
            j.priority = (i % 3) as i32;
        }
        let mut pool_f = DevicePool::homogeneous(&Gpu::v100(), 2);
        let fifo: Vec<JobOutcome> = solve_stream(&mut pool_f, jobs.clone()).collect();
        let mut pool_r = DevicePool::homogeneous(&Gpu::v100(), 2);
        let reordered: Vec<JobOutcome> = solve_stream_with(
            &mut pool_r,
            jobs,
            DispatchPolicy::ShortestExpectedCompletion,
            6,
        )
        .collect();
        assert_eq!(fifo.len(), reordered.len());
        for f in &fifo {
            let r = reordered.iter().find(|r| r.job_id == f.job_id).unwrap();
            assert_eq!(f.x, r.x, "job {}: reordering changed the bits", f.job_id);
            assert_eq!(f.residual, r.residual);
        }
    }
}
