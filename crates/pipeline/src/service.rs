//! Multi-tenant service shell over the staged engines.
//!
//! The batch and stream entry points model a *single* caller handing
//! the pool a workload. A shared accelerator service has many callers:
//! each tenant submits its own arrival stream, expects a fair share of
//! the pool, and must not be starved — or have its latency wrecked —
//! by a misbehaving neighbor. [`serve`] is that front end, entirely in
//! simulated time and bit-deterministic:
//!
//! * **Bounded ingress queues.** Every tenant owns one FIFO queue with
//!   a hard capacity; an arrival into a full queue resolves by the
//!   tenant's [`Backpressure`] policy — reject the newcomer, evict the
//!   oldest, or block the submitter until a slot frees (the job's
//!   effective wait shows up in its turnaround). One tenant's burst can
//!   therefore never consume unbounded buffer space.
//! * **Weighted-fair dispatch.** Under [`ServicePolicy::WeightedFair`]
//!   a deficit-round-robin scheduler visits tenants cyclically; each
//!   visit grants `quantum_ms × weight` of deficit in predicted
//!   device-ms and a tenant's head job dispatches once its deficit
//!   covers the job's predicted cost. Optional per-tenant token-bucket
//!   quotas cap sustained consumption (also in predicted device-ms,
//!   priced on the pool's reference device model); settle-time refunds
//!   credit the bucket back, extensions debit it.
//!   [`ServicePolicy::Fifo`] is the no-isolation baseline: one global
//!   arrival order, no weights, no quotas.
//! * **Overload shedding.** A load detector prices the queued backlog
//!   with the same per-stage predictions the stage scheduler books by;
//!   past [`OverloadConfig`] thresholds (backlog device-ms per alive
//!   device) the dispatch ladder sacrifices the *cheapest promise
//!   first*: best-effort jobs are down-laddered one precision rung,
//!   then shed outright, before a standard job is touched —
//!   [`SloClass::Premium`] is never down-laddered by load. Deadline
//!   admission ([`AdmissionConfig`]) still runs after the ladder, so
//!   every decision ends in an explicit [`Disposition`].
//! * **Device circuit breakers.** Each device's transient-fault rate
//!   (from its seeded [`gpusim::FaultPlan`]) is tracked over a sliding
//!   window; a device exceeding [`BreakerConfig::max_faults`] is
//!   quarantined via [`DevicePool::fail_device`] (freeing its
//!   unexecuted spans as refunds) and re-admitted only after a seeded
//!   exponential backoff, through a *probe*: the next scheduled job is
//!   pinned to the suspect device, and a clean run closes the breaker
//!   while another fault re-opens it with doubled backoff. A sticky
//!   device loss opens the breaker permanently and re-queues the
//!   interrupted job ([`Disposition::Retried`](crate::batch::Disposition)).
//!
//! Determinism: arrivals, queue decisions, the DRR cycle, breaker
//! transitions and settlement all run on the main thread in a fixed
//! order keyed only on simulated time and tenant/job indices.
//! Functional execution of a dispatch round may fan out across
//! [`ServiceConfig::host_workers`] scoped threads, but results land in
//! per-index slots and settlement replays them in dispatch order — the
//! report is bit-identical across runs *and* across worker counts.

use std::collections::{BTreeMap, VecDeque};

use crate::batch::{
    emit_settled, latency_summary, settle_staged_dispatch, solve_planned_traced_with, Disposition,
    JobOutcome, LatencySummary, PlannedSolve,
};
use crate::job::{Job, Precision, SloClass, Solution, TenantId};
use crate::microbatch::GroupDispatch;
use crate::plan::ExecPlan;
use crate::planner::Planner;
use crate::pool::DevicePool;
use crate::resilient::{admit_job, tombstone_outcome, AdmissionConfig, AdmissionDecision};
use crate::scheduler::{DispatchPolicy, JobShape, StageSchedConfig};
use mdls_obs::Event;

/// Quotas and backlog pricing are denominated in predicted device-ms
/// on one fixed reference model — the pool's device 0 — so a tenant's
/// spend does not depend on which device its jobs happened to land on.
const REFERENCE_DEVICE: usize = 0;

/// Slack for float comparisons on the simulated clock.
const EPS: f64 = 1e-9;

/// What a full tenant queue does with the next arrival.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Drop the newcomer ([`Disposition::Shed`](crate::batch::Disposition),
    /// reason `"reject"`).
    #[default]
    Reject,
    /// Evict the oldest queued job (reason `"evict"`) and admit the
    /// newcomer — freshest-wins ingress for tracker-style workloads
    /// where a stale solve is worthless.
    ShedOldest,
    /// Hold the submitter: the arrival waits outside the queue (in
    /// simulated time) until a slot frees, and later arrivals of the
    /// same tenant wait behind it. Other tenants are unaffected.
    Block,
}

/// Token-bucket quota in predicted device-ms on the reference model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuotaSpec {
    /// Bucket capacity, device-ms: the largest burst the tenant can
    /// spend at once. Also the initial fill.
    pub burst_ms: f64,
    /// Sustained refill rate, device-ms per simulated second.
    pub refill_per_s: f64,
}

/// One tenant's contract with the service.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantSpec {
    /// The tenant this spec binds.
    pub id: TenantId,
    /// Human label for tables and bench JSON.
    pub name: &'static str,
    /// Fair-share weight (deficit granted per scheduler visit is
    /// `quantum_ms × weight`). Zero is clamped to one.
    pub weight: u32,
    /// Ingress queue capacity, jobs. Zero is clamped to one.
    pub queue_capacity: usize,
    /// Policy when the queue is full.
    pub backpressure: Backpressure,
    /// Optional device-ms quota; `None` = unmetered.
    pub quota: Option<QuotaSpec>,
}

impl TenantSpec {
    /// An unmetered weight-1 tenant with a 64-slot rejecting queue.
    pub fn new(id: TenantId, name: &'static str) -> TenantSpec {
        TenantSpec {
            id,
            name,
            weight: 1,
            queue_capacity: 64,
            backpressure: Backpressure::Reject,
            quota: None,
        }
    }

    /// Set the fair-share weight.
    pub fn with_weight(mut self, weight: u32) -> TenantSpec {
        self.weight = weight;
        self
    }

    /// Set the ingress queue capacity and full-queue policy.
    pub fn with_queue(mut self, capacity: usize, backpressure: Backpressure) -> TenantSpec {
        self.queue_capacity = capacity;
        self.backpressure = backpressure;
        self
    }

    /// Attach a token-bucket quota.
    pub fn with_quota(mut self, burst_ms: f64, refill_per_s: f64) -> TenantSpec {
        self.quota = Some(QuotaSpec {
            burst_ms,
            refill_per_s,
        });
        self
    }
}

/// How the service picks the next job to dispatch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServicePolicy {
    /// Global arrival order, no weights, no quotas — the no-isolation
    /// baseline a burster tramples.
    Fifo,
    /// Deficit round robin over tenants with weights and quotas.
    #[default]
    WeightedFair,
}

/// Backlog thresholds of the overload degradation ladder, in queued
/// predicted device-ms per alive device. Defaults to infinity — the
/// ladder never fires unless thresholds are set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverloadConfig {
    /// Past this backlog, best-effort jobs are down-laddered one
    /// precision rung at dispatch.
    pub degrade_backlog_ms: f64,
    /// Past this backlog, best-effort jobs are shed outright and
    /// standard jobs are down-laddered one rung. Premium jobs are
    /// never touched by load.
    pub shed_backlog_ms: f64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            degrade_backlog_ms: f64::INFINITY,
            shed_backlog_ms: f64::INFINITY,
        }
    }
}

impl OverloadConfig {
    /// Enable the ladder with explicit thresholds.
    pub fn thresholds(degrade_backlog_ms: f64, shed_backlog_ms: f64) -> OverloadConfig {
        OverloadConfig {
            degrade_backlog_ms,
            shed_backlog_ms,
        }
    }
}

/// Per-device circuit breaker tuning.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerConfig {
    /// Master switch.
    pub enabled: bool,
    /// Sliding window, ms, over which transient faults are counted.
    pub window_ms: f64,
    /// Faults within the window that open the breaker.
    pub max_faults: usize,
    /// Base quarantine, ms: re-opening `k` times backs off
    /// `backoff_ms × 2^k` before the next probe.
    pub backoff_ms: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            window_ms: 20.0,
            max_faults: 3,
            backoff_ms: 5.0,
        }
    }
}

/// Whether dispatched jobs actually run the interpreter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Run the staged interpreter (bit-identical numerics to every
    /// other path).
    #[default]
    Functional,
    /// Model-only: book, settle and time every dispatch without
    /// executing the arithmetic — outcomes carry an empty solution,
    /// infinite residual and zero achieved digits. For sustained-load
    /// benches (10⁵-job scale) where only the schedule is under test.
    ModelOnly,
}

/// The full service-shell configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceConfig {
    /// Fairness policy.
    pub policy: ServicePolicy,
    /// DRR quantum, predicted device-ms granted per scheduler visit.
    pub quantum_ms: f64,
    /// Deadline admission (previewed against the surviving pool at
    /// dispatch, after the overload ladder).
    pub admission: AdmissionConfig,
    /// Overload degradation ladder thresholds.
    pub overload: OverloadConfig,
    /// Device circuit breakers.
    pub breaker: BreakerConfig,
    /// Placement policy over the free devices of a dispatch round.
    pub dispatch: DispatchPolicy,
    /// Stage-granular booking knobs (shared with the staged engines).
    pub sched: StageSchedConfig,
    /// Cap on transient-fault replays per dispatch.
    pub max_transient_retries: usize,
    /// Base of the exponential transient-replay backoff, ms.
    pub retry_backoff_ms: f64,
    /// Execute or model-only.
    pub mode: ExecutionMode,
    /// Scoped host threads that run one dispatch round's functional
    /// solves (≥ 1; never affects bits, bookings or events).
    pub host_workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            policy: ServicePolicy::WeightedFair,
            quantum_ms: 1.0,
            admission: AdmissionConfig::default(),
            overload: OverloadConfig::default(),
            breaker: BreakerConfig::default(),
            dispatch: DispatchPolicy::LeastLoaded,
            sched: StageSchedConfig::staged(),
            max_transient_retries: 3,
            retry_backoff_ms: 0.05,
            mode: ExecutionMode::Functional,
            host_workers: 1,
        }
    }
}

/// Per-SLO-class slice of one tenant's service.
#[derive(Clone, Debug)]
pub struct ClassSummary {
    /// The class this row covers.
    pub class: SloClass,
    /// Jobs the tenant submitted in this class.
    pub submitted: usize,
    /// Jobs that completed (any completing disposition).
    pub completed: usize,
    /// Jobs shed for any reason (backpressure, overload, deadline,
    /// starvation).
    pub shed: usize,
    /// Jobs that completed down-laddered.
    pub degraded: usize,
    /// Median turnaround over completed jobs, ms.
    pub p50_ms: f64,
    /// 99th-percentile turnaround, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile turnaround, ms.
    pub p999_ms: f64,
}

/// One tenant's service summary.
#[derive(Clone, Debug)]
pub struct TenantSummary {
    /// The tenant.
    pub tenant: TenantId,
    /// Label from the spec ("tenant" for unspecified tenants).
    pub name: &'static str,
    /// Jobs submitted.
    pub submitted: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs shed for any reason.
    pub shed: usize,
    /// Subset of `shed` dropped by the bounded queue itself
    /// (reject + evict).
    pub rejected: usize,
    /// Jobs that completed down-laddered.
    pub degraded: usize,
    /// Jobs that completed only after transient replays or a
    /// mid-dispatch device loss.
    pub retried: usize,
    /// Dry spells: times the tenant's bucket could not cover its head
    /// job and the scheduler skipped it.
    pub quota_exhaustions: usize,
    /// Median turnaround over completed jobs, ms.
    pub p50_ms: f64,
    /// 99th-percentile turnaround, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile turnaround, ms.
    pub p999_ms: f64,
    /// Per-SLO-class slices (classes with no submissions omitted).
    pub classes: Vec<ClassSummary>,
}

/// One device's circuit-breaker history.
#[derive(Clone, Copy, Debug, Default)]
pub struct BreakerSummary {
    /// Pool id.
    pub device: usize,
    /// Times the breaker opened (transient-rate trips and failed
    /// probes; sticky losses quarantine without counting here).
    pub opens: usize,
    /// Probe jobs dispatched to the quarantined device.
    pub probes: usize,
    /// Probes that ran clean and closed the breaker.
    pub closes: usize,
}

/// What [`serve`] returns.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// One outcome per submitted job, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Pool-wide latency summary over the outcomes.
    pub latency: LatencySummary,
    /// Per-tenant summaries, ordered by tenant id.
    pub tenants: Vec<TenantSummary>,
    /// Per-device breaker histories.
    pub breakers: Vec<BreakerSummary>,
    /// Simulated completion of the last job, ms.
    pub makespan_ms: f64,
}

/// Bounded push: the only way anything enters a service queue. The
/// capacity check is load-bearing — `mdls-analyze`'s
/// `unbounded-service-queue` lint flags any unguarded growth here.
fn push_bounded<T>(q: &mut VecDeque<T>, cap: usize, v: T) -> bool {
    if q.len() < cap {
        q.push_back(v);
        true
    } else {
        false
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum BreakerState {
    Closed,
    /// Quarantined until the given instant (infinity = sticky loss,
    /// never probed).
    Open {
        until_ms: f64,
    },
    /// Restored and awaiting its probe dispatch.
    HalfOpen,
}

struct DeviceBreaker {
    state: BreakerState,
    /// Recent transient-fault instants, pruned to the sliding window
    /// (and capped at `max_faults` entries — older strikes can only
    /// push the count further past the threshold).
    strikes: VecDeque<f64>,
    reopens: u32,
    summary: BreakerSummary,
}

struct TenantState {
    spec: TenantSpec,
    /// Job indices in FIFO order. Bounded by `spec.queue_capacity`.
    queue: VecDeque<usize>,
    /// This tenant's arrivals in (release, index) order.
    arrivals: Vec<usize>,
    next_arrival: usize,
    deficit_ms: f64,
    bucket_ms: f64,
    last_refill_ms: f64,
    /// In a quota dry spell (emit `QuotaExhausted` once per spell).
    dry: bool,
    quota_exhaustions: usize,
    rejected: usize,
}

/// One booked dispatch of the current round, awaiting execution and
/// settlement.
struct RoundEntry {
    job_idx: usize,
    tenant_idx: usize,
    /// The job as dispatched (possibly down-laddered).
    job: Job,
    shape: JobShape,
    g: GroupDispatch,
    probe: bool,
    cost_ms: f64,
}

struct Shell<'a> {
    jobs: &'a [Job],
    cfg: &'a ServiceConfig,
    planner: Planner,
    tenants: Vec<TenantState>,
    breakers: Vec<DeviceBreaker>,
    /// Predicted reference-device cost per job, filled at enqueue.
    cost_ms: Vec<f64>,
    /// Global enqueue sequence per job (drives the FIFO baseline).
    seq: Vec<u64>,
    next_seq: u64,
    /// Current target digits per job (down-laddered by the overload
    /// ladder or admission before dispatch).
    cur_digits: Vec<u32>,
    degraded: Vec<bool>,
    retried: Vec<bool>,
    outcomes: Vec<Option<JobOutcome>>,
    /// Queued backlog, predicted device-ms (the load detector's
    /// numerator).
    pending_ms: f64,
}

impl<'a> Shell<'a> {
    fn cost_of(&self, pool: &DevicePool, j: usize) -> f64 {
        let job = &self.jobs[j];
        let (_, fused) = self.planner.plan_fused(
            pool.gpu(REFERENCE_DEVICE),
            job.rows(),
            job.cols(),
            self.cur_digits[j],
            1,
        );
        fused.predicted_ms
    }

    /// The reference plan a tombstone carries (preferring an alive
    /// device's model, like the resilient engine's shed path).
    fn tombstone_plan(&self, pool: &DevicePool, j: usize) -> (ExecPlan, usize) {
        let device = pool
            .devices()
            .iter()
            .find(|d| !d.is_lost())
            .map(|d| d.id)
            .unwrap_or(REFERENCE_DEVICE);
        let job = &self.jobs[j];
        let (plan, _) = self.planner.plan_fused(
            pool.gpu(device),
            job.rows(),
            job.cols(),
            self.cur_digits[j],
            1,
        );
        (plan, device)
    }

    fn shed_job(&mut self, pool: &mut DevicePool, j: usize, reason: &'static str, at_ms: f64) {
        let job = &self.jobs[j];
        pool.emit(|| Event::TenantShed {
            tenant: job.tenant.0,
            job: job.id,
            at_ms,
            reason,
        });
        let (plan, device) = self.tombstone_plan(pool, j);
        self.outcomes[j] = Some(tombstone_outcome(
            job,
            plan,
            device,
            Disposition::Shed,
            at_ms,
        ));
    }

    /// Admit due arrivals for tenant `t` into its bounded queue.
    fn process_arrivals(&mut self, pool: &mut DevicePool, t: usize, now: f64) {
        while self.tenants[t].next_arrival < self.tenants[t].arrivals.len() {
            let j = self.tenants[t].arrivals[self.tenants[t].next_arrival];
            if self.jobs[j].release() > now + EPS {
                break;
            }
            let cap = self.tenants[t].spec.queue_capacity.max(1);
            if self.tenants[t].queue.len() >= cap {
                match self.tenants[t].spec.backpressure {
                    Backpressure::Reject => {
                        self.tenants[t].next_arrival += 1;
                        self.tenants[t].rejected += 1;
                        self.shed_job(pool, j, "reject", now.max(self.jobs[j].release()));
                        continue;
                    }
                    Backpressure::ShedOldest => {
                        if let Some(old) = self.tenants[t].queue.pop_front() {
                            self.pending_ms -= self.cost_ms[old];
                            self.tenants[t].rejected += 1;
                            self.shed_job(pool, old, "evict", now.max(self.jobs[j].release()));
                        }
                        // fall through to the bounded push below
                    }
                    Backpressure::Block => break,
                }
            }
            self.tenants[t].next_arrival += 1;
            let cost = self.cost_of(pool, j);
            self.cost_ms[j] = cost;
            self.seq[j] = self.next_seq;
            self.next_seq += 1;
            let tq = &mut self.tenants[t].queue;
            if push_bounded(tq, cap, j) {
                self.pending_ms += cost;
                let queued = self.tenants[t].queue.len();
                let (tenant, id) = (self.jobs[j].tenant.0, self.jobs[j].id);
                pool.emit(|| Event::TenantEnqueued {
                    tenant,
                    job: id,
                    queued,
                });
            }
        }
    }

    fn process_all_arrivals(&mut self, pool: &mut DevicePool, now: f64) {
        for t in 0..self.tenants.len() {
            self.process_arrivals(pool, t, now);
        }
    }

    /// Refill tenant `t`'s token bucket to `now`.
    fn refill(&mut self, t: usize, now: f64) {
        let ts = &mut self.tenants[t];
        if let Some(q) = ts.spec.quota {
            let dt = (now - ts.last_refill_ms).max(0.0);
            ts.bucket_ms = (ts.bucket_ms + q.refill_per_s * dt / 1000.0).min(q.burst_ms);
            ts.last_refill_ms = now;
        }
    }

    /// True when `t`'s quota covers its head job right now; emits
    /// `QuotaExhausted` once per dry spell when it does not.
    fn quota_covers_head(&mut self, pool: &DevicePool, t: usize, now: f64) -> bool {
        let Some(&head) = self.tenants[t].queue.front() else {
            return false;
        };
        if self.tenants[t].spec.quota.is_none() {
            return true;
        }
        self.refill(t, now);
        let need = self.cost_ms[head];
        let have = self.tenants[t].bucket_ms;
        if have + EPS >= need {
            self.tenants[t].dry = false;
            return true;
        }
        if !self.tenants[t].dry {
            self.tenants[t].dry = true;
            self.tenants[t].quota_exhaustions += 1;
            let tenant = self.tenants[t].spec.id.0;
            pool.emit(|| Event::QuotaExhausted {
                tenant,
                at_ms: now,
                needed_ms: need,
                available_ms: have,
            });
        }
        false
    }

    /// Pop the next job to dispatch under the configured policy.
    fn pick_next(&mut self, pool: &DevicePool, now: f64, rr: &mut usize) -> Option<(usize, usize)> {
        let n = self.tenants.len();
        match self.cfg.policy {
            ServicePolicy::Fifo => {
                // one global queue in spirit: the earliest-enqueued head
                let t = (0..n)
                    .filter(|&t| !self.tenants[t].queue.is_empty())
                    .min_by_key(|&t| self.seq[*self.tenants[t].queue.front().unwrap()])?;
                let j = self.tenants[t].queue.pop_front().unwrap();
                self.pending_ms -= self.cost_ms[j];
                Some((t, j))
            }
            ServicePolicy::WeightedFair => {
                let eligible: Vec<usize> = (0..n)
                    .filter(|&t| self.quota_covers_head(pool, t, now))
                    .collect();
                if eligible.is_empty() {
                    return None;
                }
                // deficit round robin: a visit grants quantum × weight;
                // the head dispatches once the deficit covers its cost.
                // Deficits grow every sweep, so this terminates.
                loop {
                    let t = eligible[*rr % eligible.len()];
                    let head = *self.tenants[t].queue.front().unwrap();
                    let cost = self.cost_ms[head];
                    if self.tenants[t].deficit_ms + EPS >= cost {
                        let j = self.tenants[t].queue.pop_front().unwrap();
                        self.tenants[t].deficit_ms -= cost;
                        self.pending_ms -= cost;
                        // cursor stays: the tenant keeps serving while
                        // its deficit lasts (classic DRR)
                        return Some((t, j));
                    }
                    let grant = self.cfg.quantum_ms * self.tenants[t].spec.weight.max(1) as f64;
                    self.tenants[t].deficit_ms += grant;
                    *rr += 1;
                }
            }
        }
    }

    /// The overload ladder + deadline admission for a popped job.
    /// Returns the job clone to dispatch, or `None` when it was shed
    /// (tombstone already recorded).
    fn pre_dispatch(&mut self, pool: &mut DevicePool, j: usize, now: f64) -> Option<Job> {
        let alive = pool.alive_count().max(1) as f64;
        let load_ms = self.pending_ms / alive;
        let slo = self.jobs[j].slo;
        let over_shed = load_ms > self.cfg.overload.shed_backlog_ms;
        let over_degrade = load_ms > self.cfg.overload.degrade_backlog_ms;
        if over_shed && slo == SloClass::BestEffort {
            self.shed_job(pool, j, "overload", now);
            return None;
        }
        if (over_shed && slo == SloClass::Standard) || (over_degrade && slo == SloClass::BestEffort)
        {
            let rung = Precision::for_digits(self.cur_digits[j]);
            if let Some(pos) = Precision::LADDER.iter().position(|r| *r == rung) {
                if pos > 0 {
                    let to = Precision::LADDER[pos - 1].digits();
                    let (id, from) = (self.jobs[j].id, self.cur_digits[j]);
                    pool.emit(|| Event::JobDegraded {
                        job: id,
                        from_digits: from,
                        to_digits: to,
                    });
                    self.cur_digits[j] = to;
                    self.degraded[j] = true;
                }
            }
        }
        let mut job = self.jobs[j].clone();
        job.target_digits = self.cur_digits[j];
        match admit_job(
            pool,
            &self.planner,
            &job,
            self.cfg.sched.overlap,
            now,
            &self.cfg.admission,
        ) {
            AdmissionDecision::Admit => Some(job),
            AdmissionDecision::Degrade(digits) => {
                let (id, from) = (job.id, job.target_digits);
                pool.emit(|| Event::JobDegraded {
                    job: id,
                    from_digits: from,
                    to_digits: digits,
                });
                self.cur_digits[j] = digits;
                self.degraded[j] = true;
                job.target_digits = digits;
                Some(job)
            }
            AdmissionDecision::Shed(predicted_end) => {
                let (id, deadline) = (job.id, job.deadline_ms.unwrap_or(0.0));
                pool.emit(|| Event::JobShed {
                    job: id,
                    deadline_ms: deadline,
                    predicted_end_ms: predicted_end,
                });
                let (plan, device) = self.tombstone_plan(pool, j);
                self.outcomes[j] = Some(tombstone_outcome(
                    &self.jobs[j],
                    plan,
                    device,
                    Disposition::Shed,
                    now,
                ));
                None
            }
        }
    }

    /// Book `job` on `device` (stage-granular, like
    /// [`crate::microbatch::dispatch_group_staged`] with the placement
    /// pinned — probes must land on the suspect device).
    fn dispatch_pinned(
        &self,
        pool: &mut DevicePool,
        job: &Job,
        device: usize,
        release_ms: f64,
    ) -> GroupDispatch {
        let (plan, fused) = self.planner.plan_fused(
            pool.gpu(device),
            job.rows(),
            job.cols(),
            job.target_digits,
            1,
        );
        let passes = if self.cfg.sched.book_expected {
            plan.expected_corrections
        } else {
            plan.corrections()
        };
        let reqs = fused.stage_reqs(ExecPlan::booked_stages(passes));
        let booking = pool.commit_stages(
            device,
            &reqs,
            fused.predicted_kernel_ms,
            fused.flops_paper,
            1,
            self.cfg.sched.overlap,
            release_ms,
        );
        for (i, (ps, iv)) in plan.stages.iter().zip(&booking.stages).enumerate() {
            let id = job.id;
            pool.emit(|| Event::StageBooked {
                device,
                job: id,
                stage: i,
                kind: ps.stage.kind(),
                rung: ps.stage.rung().tag(),
                host_start_ms: iv.host.0,
                host_end_ms: iv.host.1,
                dev_start_ms: iv.device.0,
                dev_end_ms: iv.device.1,
            });
        }
        GroupDispatch {
            jobs: vec![job.id as usize],
            device,
            plan,
            fused,
            start_ms: booking.start_ms(),
            end_ms: booking.end_ms(),
            booking: Some(booking),
        }
    }

    /// Pick the device for a non-probe dispatch among the free,
    /// breaker-closed devices.
    fn place(&self, pool: &DevicePool, job: &Job, now: f64) -> Option<usize> {
        let free: Vec<usize> = pool
            .devices()
            .iter()
            .filter(|d| {
                !d.is_lost()
                    && d.clock_ms() <= now + EPS
                    && self.breakers[d.id].state == BreakerState::Closed
            })
            .map(|d| d.id)
            .collect();
        match self.cfg.dispatch {
            DispatchPolicy::ShortestExpectedCompletion => free
                .into_iter()
                .map(|d| {
                    let (plan, fused) = self.planner.plan_fused(
                        pool.gpu(d),
                        job.rows(),
                        job.cols(),
                        job.target_digits,
                        1,
                    );
                    let reqs = fused.stage_reqs(ExecPlan::booked_stages(plan.corrections()));
                    let end = pool.preview_stages(d, &reqs, self.cfg.sched.overlap, now);
                    (d, end)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
                .map(|(d, _)| d),
            _ => free
                .into_iter()
                .map(|d| (d, pool.devices()[d].clock_ms()))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
                .map(|(d, _)| d),
        }
    }

    /// Open `device`'s breaker at `at_ms` (quarantine via the pool's
    /// loss path — unexecuted spans come back as refunds).
    fn open_breaker(&mut self, pool: &mut DevicePool, device: usize, at_ms: f64) {
        pool.fail_device(device, at_ms);
        let b = &mut self.breakers[device];
        let backoff = self.cfg.breaker.backoff_ms * (1u64 << b.reopens.min(20)) as f64;
        b.state = BreakerState::Open {
            until_ms: at_ms + backoff,
        };
        b.summary.opens += 1;
        let faults = b.strikes.len();
        pool.emit(|| Event::CircuitOpen {
            device,
            at_ms,
            faults,
        });
    }

    /// Re-admit quarantined devices whose backoff has elapsed.
    fn process_probe_timers(&mut self, pool: &mut DevicePool, now: f64) {
        for d in 0..self.breakers.len() {
            if let BreakerState::Open { until_ms } = self.breakers[d].state {
                if until_ms.is_finite() && until_ms <= now + EPS {
                    pool.restore_device(d, now);
                    self.breakers[d].state = BreakerState::HalfOpen;
                }
            }
        }
    }

    /// Quarantine devices whose fault plan has sticky-lost them by
    /// `now` (no probe ever re-admits a sticky loss).
    fn process_sticky_losses(&mut self, pool: &mut DevicePool, now: f64) {
        for d in 0..self.breakers.len() {
            if pool.devices()[d].is_lost() {
                continue;
            }
            if let Some(lost) = pool.gpu(d).fault.lost_at_ms() {
                if lost <= now + EPS {
                    pool.fail_device(d, lost);
                    self.breakers[d].state = BreakerState::Open {
                        until_ms: f64::INFINITY,
                    };
                }
            }
        }
    }

    /// Execute one round's dispatches: functionally (optionally across
    /// scoped host threads — results land in per-index slots, so the
    /// worker count can never change bits or order) or model-only.
    fn execute_round(&self, pool: &DevicePool, round: &[RoundEntry]) -> Vec<PlannedSolve> {
        match self.cfg.mode {
            ExecutionMode::ModelOnly => round
                .iter()
                .map(|e| PlannedSolve {
                    x: Solution::D1(Vec::new()),
                    residual: f64::INFINITY,
                    corrections_run: e.g.booked_passes(),
                })
                .collect(),
            ExecutionMode::Functional => {
                let extra = self.cfg.sched.max_extra_passes;
                let workers = self.cfg.host_workers.max(1).min(round.len().max(1));
                let chunk = round.len().div_ceil(workers).max(1);
                let mut solved: Vec<Option<PlannedSolve>> =
                    (0..round.len()).map(|_| None).collect();
                std::thread::scope(|s| {
                    for (es, outs) in round.chunks(chunk).zip(solved.chunks_mut(chunk)) {
                        s.spawn(move || {
                            for (e, o) in es.iter().zip(outs.iter_mut()) {
                                *o = Some(solve_planned_traced_with(
                                    pool.gpu(e.g.device),
                                    &e.job,
                                    &e.g.plan,
                                    extra,
                                ));
                            }
                        });
                    }
                });
                solved
                    .into_iter()
                    .map(|s| s.expect("every round entry executed"))
                    .collect()
            }
        }
    }

    /// Settle one executed dispatch: refunds/extensions, transient
    /// replays, breaker transitions, quota credit, and the outcome.
    /// Returns `false` when a sticky loss interrupted the dispatch and
    /// the job went back to its queue instead of completing.
    fn settle_entry(&mut self, pool: &mut DevicePool, mut e: RoundEntry, solved: PlannedSolve) {
        let device = e.g.device;
        let fplan = pool.gpu(device).fault.clone();
        // a sticky loss inside the executed interval interrupts the
        // dispatch: quarantine, refund the live booking, re-queue
        if let Some(lost) = fplan.lost_at_ms() {
            let end =
                e.g.booking
                    .as_ref()
                    .and_then(|b| pool.live_booking(b.id))
                    .map(|b| b.end_ms())
                    .unwrap_or(e.g.end_ms);
            if lost < end && !pool.devices()[device].is_lost() {
                pool.fail_device(device, lost);
                self.breakers[device].state = BreakerState::Open {
                    until_ms: f64::INFINITY,
                };
                self.retried[e.job_idx] = true;
                let t = e.tenant_idx;
                self.tenants[t].queue.push_front(e.job_idx);
                self.pending_ms += e.cost_ms;
                return;
            }
        }
        let passes_run = solved.corrections_run;
        let (refunded, extended) =
            settle_staged_dispatch(pool, &mut e.g, &e.shape, passes_run, &self.cfg.sched);

        // transient kernel faults inside the executed interval: one
        // backed-off replay each (time moves, bits do not), and one
        // breaker strike each
        let hits: Vec<f64> = fplan
            .transients()
            .iter()
            .copied()
            .filter(|t| *t >= e.g.start_ms && *t < e.g.end_ms)
            .take(self.cfg.max_transient_retries)
            .collect();
        let mut end = e.g.end_ms;
        let job_id = e.job.id;
        for (r, at) in hits.iter().enumerate() {
            pool.emit(|| Event::FaultInjected {
                device,
                job: job_id,
                at_ms: *at,
                retry: r,
            });
            let mut reqs = e.g.fused.extension_reqs();
            if reqs.is_empty() {
                reqs = e.g.fused.stage_reqs(usize::MAX);
            }
            let backoff = self.cfg.retry_backoff_ms * (1u64 << r) as f64;
            let b = pool.commit_stages(
                device,
                &reqs,
                0.0,
                0.0,
                0,
                self.cfg.sched.overlap,
                end + backoff,
            );
            pool.mark_settled(b.id);
            pool.emit(|| Event::RetryBooked {
                device,
                job: job_id,
                end_ms: b.end_ms(),
                backoff_ms: backoff,
            });
            end = b.end_ms();
            self.retried[e.job_idx] = true;
        }
        e.g.end_ms = end;

        // breaker bookkeeping
        if self.cfg.breaker.enabled {
            let window = self.cfg.breaker.window_ms;
            let cap = self.cfg.breaker.max_faults.max(1);
            for &at in &hits {
                while self.breakers[device]
                    .strikes
                    .front()
                    .is_some_and(|&s| s < at - window)
                {
                    self.breakers[device].strikes.pop_front();
                }
                while self.breakers[device].strikes.len() >= cap {
                    self.breakers[device].strikes.pop_front();
                }
                push_bounded(&mut self.breakers[device].strikes, cap, at);
            }
            if e.probe {
                if hits.is_empty() {
                    let b = &mut self.breakers[device];
                    b.state = BreakerState::Closed;
                    b.strikes.clear();
                    b.reopens = 0;
                    b.summary.closes += 1;
                    pool.emit(|| Event::CircuitClose { device, at_ms: end });
                } else {
                    self.breakers[device].reopens += 1;
                    self.open_breaker(pool, device, end);
                }
            } else if self.breakers[device].state == BreakerState::Closed
                && self.breakers[device].strikes.len() >= self.cfg.breaker.max_faults
            {
                self.open_breaker(pool, device, end);
            }
        }

        // quota credit: refunds return to the bucket, extensions drain
        // it further
        if self.cfg.policy == ServicePolicy::WeightedFair {
            let t = e.tenant_idx;
            if let Some(q) = self.tenants[t].spec.quota {
                self.tenants[t].bucket_ms = (self.tenants[t].bucket_ms - e.cost_ms + refunded
                    - extended)
                    .clamp(0.0, q.burst_ms);
            }
        }

        let model_only = self.cfg.mode == ExecutionMode::ModelOnly;
        let mut outcome = JobOutcome::assemble_group(&[&e.job], &e.g, vec![solved])
            .pop()
            .expect("singleton group assembles one outcome");
        outcome.refunded_ms = refunded;
        outcome.extended_ms = extended;
        outcome.requested_digits = self.jobs[e.job_idx].target_digits;
        outcome.disposition = if self.degraded[e.job_idx] {
            Disposition::Degraded
        } else if self.retried[e.job_idx] {
            Disposition::Retried
        } else {
            Disposition::Ok
        };
        if model_only {
            outcome.achieved_digits = 0.0;
        }
        emit_settled(pool, std::slice::from_ref(&outcome));
        self.outcomes[e.job_idx] = Some(outcome);
    }

    /// One dispatch round at `now`: probes first, then regular
    /// dispatches onto free breaker-closed devices, then execute and
    /// settle in dispatch order. Returns whether anything progressed.
    fn dispatch_round(&mut self, pool: &mut DevicePool, now: f64, rr: &mut usize) -> bool {
        let ndev = pool.devices().len();
        let mut round: Vec<RoundEntry> = Vec::new();
        let mut progressed = false;

        // probe dispatches: each restored device gets the next
        // scheduled job, pinned
        for d in 0..ndev {
            if self.breakers[d].state != BreakerState::HalfOpen {
                continue;
            }
            if pool.devices()[d].is_lost() || pool.devices()[d].clock_ms() > now + EPS {
                continue;
            }
            while let Some((t, j)) = self.pick_next(pool, now, rr) {
                progressed = true;
                let Some(job) = self.pre_dispatch(pool, j, now) else {
                    continue;
                };
                let at = now;
                let id = job.id;
                pool.emit(|| Event::CircuitProbe {
                    device: d,
                    job: id,
                    at_ms: at,
                });
                self.breakers[d].summary.probes += 1;
                let g = self.dispatch_pinned(pool, &job, d, now);
                let shape = JobShape::from(&job);
                round.push(RoundEntry {
                    job_idx: j,
                    tenant_idx: t,
                    job,
                    shape,
                    g,
                    probe: true,
                    cost_ms: self.cost_ms[j],
                });
                break;
            }
        }

        // regular dispatches while free closed devices and jobs remain
        loop {
            let any_free = pool.devices().iter().any(|d| {
                !d.is_lost()
                    && d.clock_ms() <= now + EPS
                    && self.breakers[d.id].state == BreakerState::Closed
            });
            if !any_free {
                break;
            }
            let Some((t, j)) = self.pick_next(pool, now, rr) else {
                break;
            };
            progressed = true;
            let Some(job) = self.pre_dispatch(pool, j, now) else {
                continue;
            };
            let Some(device) = self.place(pool, &job, now) else {
                // raced against nothing — defensive: put the job back
                self.tenants[t].queue.push_front(j);
                self.pending_ms += self.cost_ms[j];
                break;
            };
            let g = self.dispatch_pinned(pool, &job, device, now);
            let shape = JobShape::from(&job);
            round.push(RoundEntry {
                job_idx: j,
                tenant_idx: t,
                job,
                shape,
                g,
                probe: false,
                cost_ms: self.cost_ms[j],
            });
        }

        if round.is_empty() {
            return progressed;
        }
        let solved = self.execute_round(pool, &round);
        for (e, s) in round.into_iter().zip(solved) {
            self.settle_entry(pool, e, s);
        }
        // slots freed: blocked arrivals may enter now
        self.process_all_arrivals(pool, now);
        true
    }

    /// The next instant anything can change after `now` (`None` = the
    /// service is drained or irrecoverably starved).
    fn next_event_after(&self, pool: &DevicePool, now: f64) -> Option<f64> {
        let mut next = f64::INFINITY;
        for ts in &self.tenants {
            if ts.next_arrival < ts.arrivals.len() {
                let release = self.jobs[ts.arrivals[ts.next_arrival]].release();
                if release > now + EPS {
                    next = next.min(release);
                }
            }
            // a quota dry spell ends at a computable refill instant
            // (the bucket value is as of `last_refill_ms`)
            if let (Some(q), Some(&head)) = (ts.spec.quota, ts.queue.front()) {
                if q.refill_per_s > 0.0 {
                    let need = self.cost_ms[head] - ts.bucket_ms;
                    if need > EPS {
                        let ready = ts.last_refill_ms + need * 1000.0 / q.refill_per_s;
                        if ready > now + EPS {
                            next = next.min(ready);
                        }
                    }
                }
            }
        }
        for d in pool.devices() {
            if !d.is_lost() && d.clock_ms() > now + EPS {
                next = next.min(d.clock_ms());
            }
        }
        for b in &self.breakers {
            if let BreakerState::Open { until_ms } = b.state {
                if until_ms.is_finite() && until_ms > now + EPS {
                    next = next.min(until_ms);
                }
            }
        }
        next.is_finite().then_some(next)
    }

    /// Tombstone everything still queued or blocked when no event can
    /// ever serve it (zero-refill quota starvation, or a fully dead
    /// pool).
    fn drain_starved(&mut self, pool: &mut DevicePool, now: f64) {
        for t in 0..self.tenants.len() {
            while let Some(j) = self.tenants[t].queue.pop_front() {
                self.pending_ms -= self.cost_ms[j];
                self.shed_job(pool, j, "starved", now);
            }
            while self.tenants[t].next_arrival < self.tenants[t].arrivals.len() {
                let j = self.tenants[t].arrivals[self.tenants[t].next_arrival];
                self.tenants[t].next_arrival += 1;
                self.shed_job(pool, j, "starved", now.max(self.jobs[j].release()));
            }
        }
    }
}

/// Exact nearest-rank percentile over an unsorted sample (0 when
/// empty) — matching [`latency_summary`]'s convention.
fn percentile(sample: &mut [f64], q: f64) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * sample.len() as f64).ceil() as usize).clamp(1, sample.len());
    sample[rank - 1]
}

/// Run the multi-tenant service shell over `jobs` (see the module
/// docs for the full contract). `tenants` binds specs to tenant ids;
/// jobs of an unspecified tenant run under an implicit default spec
/// (weight 1, 64-slot rejecting queue, no quota). Every job ends with
/// an outcome carrying an explicit disposition, in submission order.
pub fn serve(
    pool: &mut DevicePool,
    jobs: &[Job],
    tenants: &[TenantSpec],
    cfg: &ServiceConfig,
) -> ServiceReport {
    assert!(
        !pool.devices().is_empty(),
        "the service shell needs at least one device"
    );
    let n = jobs.len();
    let mut specs: Vec<TenantSpec> = tenants.to_vec();
    specs.sort_by_key(|s| s.id);
    specs.dedup_by_key(|s| s.id);
    for job in jobs {
        if !specs.iter().any(|s| s.id == job.tenant) {
            specs.push(TenantSpec::new(job.tenant, "tenant"));
        }
    }
    specs.sort_by_key(|s| s.id);

    let mut by_id = BTreeMap::new();
    let mut states: Vec<TenantState> = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        by_id.insert(spec.id.0, i);
        states.push(TenantState {
            spec: *spec,
            queue: VecDeque::new(),
            arrivals: Vec::new(),
            next_arrival: 0,
            deficit_ms: 0.0,
            bucket_ms: spec.quota.map(|q| q.burst_ms).unwrap_or(0.0),
            last_refill_ms: 0.0,
            dry: false,
            quota_exhaustions: 0,
            rejected: 0,
        });
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .release()
            .partial_cmp(&jobs[b].release())
            .unwrap()
            .then(a.cmp(&b))
    });
    for j in order {
        let t = by_id[&jobs[j].tenant.0];
        states[t].arrivals.push(j);
    }

    let mut shell = Shell {
        jobs,
        cfg,
        planner: Planner::new(),
        tenants: states,
        breakers: (0..pool.devices().len())
            .map(|d| DeviceBreaker {
                state: BreakerState::Closed,
                strikes: VecDeque::new(),
                reopens: 0,
                summary: BreakerSummary {
                    device: d,
                    ..BreakerSummary::default()
                },
            })
            .collect(),
        cost_ms: vec![0.0; n],
        seq: vec![u64::MAX; n],
        next_seq: 0,
        cur_digits: jobs.iter().map(|j| j.target_digits).collect(),
        degraded: vec![false; n],
        retried: vec![false; n],
        outcomes: (0..n).map(|_| None).collect(),
        pending_ms: 0.0,
    };

    let mut now = 0.0;
    let mut rr = 0usize;
    loop {
        shell.process_sticky_losses(pool, now);
        shell.process_probe_timers(pool, now);
        shell.process_all_arrivals(pool, now);
        if shell.dispatch_round(pool, now, &mut rr) {
            continue;
        }
        match shell.next_event_after(pool, now) {
            Some(t) => now = t,
            None => break,
        }
    }
    shell.drain_starved(pool, now);

    let outcomes: Vec<JobOutcome> = shell
        .outcomes
        .into_iter()
        .map(|o| o.expect("every job ends in an outcome"))
        .collect();
    let latency = latency_summary(&outcomes);
    let makespan_ms = outcomes
        .iter()
        .filter(|o| o.disposition.completed())
        .map(|o| o.end_ms)
        .fold(0.0, f64::max);

    let mut summaries = Vec::new();
    for ts in &shell.tenants {
        let spec = ts.spec;
        let mine: Vec<&JobOutcome> = outcomes.iter().filter(|o| o.tenant == spec.id).collect();
        if mine.is_empty() {
            continue;
        }
        let mut turn: Vec<f64> = mine
            .iter()
            .filter(|o| o.disposition.completed())
            .map(|o| o.turnaround_ms())
            .collect();
        let mut classes = Vec::new();
        for class in SloClass::LADDER {
            // outcomes are in submission order, so outcome i belongs
            // to jobs[i] — slice by the submitted job's SLO class
            let slice: Vec<&JobOutcome> = outcomes
                .iter()
                .zip(jobs.iter())
                .filter(|(_, j)| j.tenant == spec.id && j.slo == class)
                .map(|(o, _)| o)
                .collect();
            if slice.is_empty() {
                continue;
            }
            let mut cturn: Vec<f64> = slice
                .iter()
                .filter(|o| o.disposition.completed())
                .map(|o| o.turnaround_ms())
                .collect();
            classes.push(ClassSummary {
                class,
                submitted: slice.len(),
                completed: slice.iter().filter(|o| o.disposition.completed()).count(),
                shed: slice
                    .iter()
                    .filter(|o| o.disposition == Disposition::Shed)
                    .count(),
                degraded: slice
                    .iter()
                    .filter(|o| o.disposition == Disposition::Degraded)
                    .count(),
                p50_ms: percentile(&mut cturn, 0.50),
                p99_ms: percentile(&mut cturn, 0.99),
                p999_ms: percentile(&mut cturn, 0.999),
            });
        }
        summaries.push(TenantSummary {
            tenant: spec.id,
            name: spec.name,
            submitted: mine.len(),
            completed: mine.iter().filter(|o| o.disposition.completed()).count(),
            shed: mine
                .iter()
                .filter(|o| o.disposition == Disposition::Shed)
                .count(),
            rejected: ts.rejected,
            degraded: mine
                .iter()
                .filter(|o| o.disposition == Disposition::Degraded)
                .count(),
            retried: mine
                .iter()
                .filter(|o| o.disposition == Disposition::Retried)
                .count(),
            quota_exhaustions: ts.quota_exhaustions,
            p50_ms: percentile(&mut turn, 0.50),
            p99_ms: percentile(&mut turn, 0.99),
            p999_ms: percentile(&mut turn, 0.999),
            classes,
        });
    }
    let breakers = shell.breakers.iter().map(|b| b.summary).collect();

    ServiceReport {
        outcomes,
        latency,
        tenants: summaries,
        breakers,
        makespan_ms,
    }
}
