//! Jobs and solutions of the batched solve service.
//!
//! A [`Job`] arrives as hardware-double data plus an accuracy target in
//! decimal digits — the shape of the paper's motivating workloads, where
//! path trackers and power-flow embeddings produce `f64` systems whose
//! *solves* need more precision than `f64` carries. The planner promotes
//! the data to the cheapest precision of the d → dd → qd → od ladder
//! that covers the target, so the solution comes back at a
//! planner-chosen precision: the [`Solution`] enum.

use mdls_matrix::HostMat;
use multidouble::{Dd, Od, Qd};

/// The four rungs of the working-precision ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Precision {
    /// Hardware double (the paper's `1d`).
    D1,
    /// Double double (`2d`).
    D2,
    /// Quad double (`4d`).
    D4,
    /// Octo double (`8d`).
    D8,
}

impl Precision {
    /// All rungs, cheapest first.
    pub const LADDER: [Precision; 4] = [Precision::D1, Precision::D2, Precision::D4, Precision::D8];

    /// The paper's tag.
    pub fn tag(self) -> &'static str {
        match self {
            Precision::D1 => "1d",
            Precision::D2 => "2d",
            Precision::D4 => "4d",
            Precision::D8 => "8d",
        }
    }

    /// Number of `f64` limbs per real scalar.
    pub fn limbs(self) -> usize {
        match self {
            Precision::D1 => 1,
            Precision::D2 => 2,
            Precision::D4 => 4,
            Precision::D8 => 8,
        }
    }

    /// Decimal digits a well-conditioned solve retains at this rung
    /// (slightly conservative against the unit roundoffs ~1e-16 /
    /// 1e-32 / 1e-64 / 1e-128, leaving headroom for accumulation).
    pub fn digits(self) -> u32 {
        match self {
            Precision::D1 => 14,
            Precision::D2 => 29,
            Precision::D4 => 60,
            Precision::D8 => 123,
        }
    }

    /// Cheapest rung delivering `target_digits`; octo double is the
    /// ceiling — targets beyond it saturate there.
    pub fn for_digits(target_digits: u32) -> Precision {
        Precision::LADDER
            .into_iter()
            .find(|p| p.digits() >= target_digits)
            .unwrap_or(Precision::D8)
    }
}

/// Identifies the tenant (caller) a job belongs to in the multi-tenant
/// service shell ([`crate::service`]). Tenant 0 is the implicit
/// single-caller default every other entry point runs under; ids only
/// affect queueing, fairness and quota accounting — never numerics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Service-level objective class of a job, ordered cheapest-promise
/// first: under overload the service's degradation ladder acts on the
/// *lowest* class present ([`SloClass::BestEffort`] degrades, then
/// sheds, before [`SloClass::Standard`] is touched;
/// [`SloClass::Premium`] is never down-laddered by the load detector).
/// Like priority, the class moves jobs through simulated time only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SloClass {
    /// Sacrificial under overload: degraded first, shed first.
    BestEffort,
    /// The default: degraded only past the shed threshold.
    #[default]
    Standard,
    /// Protected from the overload ladder (admission deadlines still
    /// apply — an unmeetable premium deadline is still shed honestly).
    Premium,
}

impl SloClass {
    /// All classes, cheapest promise first (the ladder's shed order).
    pub const LADDER: [SloClass; 3] = [SloClass::BestEffort, SloClass::Standard, SloClass::Premium];

    /// Short lowercase label used in tables, traces and bench JSON.
    pub fn tag(self) -> &'static str {
        match self {
            SloClass::BestEffort => "best-effort",
            SloClass::Standard => "standard",
            SloClass::Premium => "premium",
        }
    }
}


/// One least squares solve request: minimize `‖b − A x‖₂` to at least
/// `target_digits` decimal digits.
#[derive(Clone, Debug)]
pub struct Job {
    /// Caller-chosen identifier, carried through to the outcome.
    pub id: u64,
    /// The `m × n` system matrix (`m ≥ n`), in hardware doubles.
    pub a: HostMat<f64>,
    /// Right hand side of length `m`.
    pub b: Vec<f64>,
    /// Required decimal digits of accuracy.
    pub target_digits: u32,
    /// Scheduling priority: higher values drain first from the stream's
    /// reorder buffer (a path tracker marks corrector solves above
    /// speculative predictor solves). Priority never changes numerics,
    /// only placement and simulated timing. Default 0.
    pub priority: i32,
    /// Optional completion deadline in simulated ms. Within one
    /// priority class the reorder buffer drains earliest deadline
    /// first; jobs without a deadline come after deadlined peers.
    pub deadline_ms: Option<f64>,
    /// Optional simulated arrival time in ms: the solve cannot start
    /// before this instant (fed through [`crate::pool::DevicePool`]'s
    /// booking as an earliest-start bound, with any idle gap modeled by
    /// `hold_until` semantics — the clock advances, busy time does
    /// not). Lets the stream model bursty queues and count real
    /// deadline *misses* instead of just deadline ordering. `None`
    /// means available immediately.
    ///
    /// Honored by the stream entry points and the staged batch engine
    /// (`solve_batch_staged`), which dispatch job by job. The plain
    /// batch paths (`solve_batch` and friends) model a queue handed
    /// over whole at t = 0 and ignore arrivals — stream jobs that
    /// trickle in belong on the stream.
    pub release_ms: Option<f64>,
    /// Submitting tenant, for the multi-tenant service shell
    /// ([`crate::service`]): selects the bounded ingress queue, the
    /// fair-share weight and the device-ms quota the job is accounted
    /// against. Default [`TenantId`] 0 — the single-caller paths ignore
    /// it entirely.
    pub tenant: TenantId,
    /// Service-level objective class: which rung of the overload
    /// degradation ladder may sacrifice this job. Default
    /// [`SloClass::Standard`].
    pub slo: SloClass,
}

impl Job {
    /// A default-priority, no-deadline job.
    pub fn new(id: u64, a: HostMat<f64>, b: Vec<f64>, target_digits: u32) -> Job {
        Job {
            id,
            a,
            b,
            target_digits,
            priority: 0,
            deadline_ms: None,
            release_ms: None,
            tenant: TenantId::default(),
            slo: SloClass::default(),
        }
    }

    /// Set the scheduling priority (higher drains first).
    pub fn with_priority(mut self, priority: i32) -> Job {
        self.priority = priority;
        self
    }

    /// Set a completion deadline in simulated ms.
    pub fn with_deadline_ms(mut self, deadline_ms: f64) -> Job {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Set a simulated arrival (release) time in ms.
    pub fn with_release_ms(mut self, release_ms: f64) -> Job {
        self.release_ms = Some(release_ms);
        self
    }

    /// Assign the job to a tenant (multi-tenant service shell).
    pub fn with_tenant(mut self, tenant: TenantId) -> Job {
        self.tenant = tenant;
        self
    }

    /// Set the service-level objective class.
    pub fn with_slo(mut self, slo: SloClass) -> Job {
        self.slo = slo;
        self
    }

    /// Simulated arrival time, ms (0 when unset: available at once).
    pub fn release(&self) -> f64 {
        self.release_ms.unwrap_or(0.0)
    }

    /// Rows `m`.
    pub fn rows(&self) -> usize {
        self.a.rows
    }

    /// Columns (unknowns) `n`.
    pub fn cols(&self) -> usize {
        self.a.cols
    }
}

/// A solution vector at the precision the planner chose.
#[derive(Clone, Debug, PartialEq)]
pub enum Solution {
    /// Hardware double solution.
    D1(Vec<f64>),
    /// Double double solution.
    D2(Vec<Dd>),
    /// Quad double solution.
    D4(Vec<Qd>),
    /// Octo double solution.
    D8(Vec<Od>),
}

impl Solution {
    /// The rung this solution was computed at.
    pub fn precision(&self) -> Precision {
        match self {
            Solution::D1(_) => Precision::D1,
            Solution::D2(_) => Precision::D2,
            Solution::D4(_) => Precision::D4,
            Solution::D8(_) => Precision::D8,
        }
    }

    /// Number of unknowns.
    pub fn len(&self) -> usize {
        match self {
            Solution::D1(x) => x.len(),
            Solution::D2(x) => x.len(),
            Solution::D4(x) => x.len(),
            Solution::D8(x) => x.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Leading-double view of the solution (lossy for deep rungs).
    pub fn leading_f64(&self) -> Vec<f64> {
        match self {
            Solution::D1(x) => x.clone(),
            Solution::D2(x) => x.iter().map(|v| v.to_f64()).collect(),
            Solution::D4(x) => x.iter().map(|v| v.to_f64()).collect(),
            Solution::D8(x) => x.iter().map(|v| v.to_f64()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_selection_is_cheapest_sufficient() {
        assert_eq!(Precision::for_digits(10), Precision::D1);
        assert_eq!(Precision::for_digits(14), Precision::D1);
        assert_eq!(Precision::for_digits(15), Precision::D2);
        assert_eq!(Precision::for_digits(30), Precision::D4);
        assert_eq!(Precision::for_digits(60), Precision::D4);
        assert_eq!(Precision::for_digits(61), Precision::D8);
        // beyond the ladder: saturate at octo double
        assert_eq!(Precision::for_digits(500), Precision::D8);
    }

    #[test]
    fn slo_ladder_orders_cheapest_promise_first() {
        // the overload ladder sheds in ascending order, so the derive
        // order is load-bearing: best-effort < standard < premium
        assert!(SloClass::BestEffort < SloClass::Standard);
        assert!(SloClass::Standard < SloClass::Premium);
        assert_eq!(SloClass::LADDER[0], SloClass::BestEffort);
        assert_eq!(SloClass::default(), SloClass::Standard);
        assert_eq!(TenantId::default(), TenantId(0));
        assert_eq!(TenantId(7).to_string(), "t7");
    }

    #[test]
    fn ladder_is_monotone() {
        for w in Precision::LADDER.windows(2) {
            assert!(w[0].digits() < w[1].digits());
            assert!(w[0].limbs() < w[1].limbs());
        }
    }
}
