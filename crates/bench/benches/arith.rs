//! Criterion benchmarks of the multiple double arithmetic on the host —
//! the real (not modeled) throughput of the operations the simulated
//! kernels execute, including the sloppy-vs-accurate addition ablation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use multidouble::{Complex, Dd, MdScalar, Od, Qd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn pairs<S: MdScalar>(n: usize, seed: u64) -> Vec<(S, S)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (S::rand(&mut rng), S::rand(&mut rng)))
        .collect()
}

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("arith");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));

    macro_rules! ops_for {
        ($tag:literal, $T:ty) => {
            let data = pairs::<$T>(256, 7);
            g.bench_function(concat!($tag, " add x256"), |b| {
                b.iter_batched(
                    || data.clone(),
                    |d| {
                        let mut acc = <$T as MdScalar>::zero();
                        for (x, y) in d {
                            acc += x + y;
                        }
                        black_box(acc)
                    },
                    BatchSize::SmallInput,
                )
            });
            g.bench_function(concat!($tag, " mul x256"), |b| {
                b.iter_batched(
                    || data.clone(),
                    |d| {
                        let mut acc = <$T as MdScalar>::zero();
                        for (x, y) in d {
                            acc += x * y;
                        }
                        black_box(acc)
                    },
                    BatchSize::SmallInput,
                )
            });
            g.bench_function(concat!($tag, " div x256"), |b| {
                b.iter_batched(
                    || data.clone(),
                    |d| {
                        let mut acc = <$T as MdScalar>::zero();
                        for (x, y) in d {
                            if !y.is_zero() {
                                acc += x / y;
                            }
                        }
                        black_box(acc)
                    },
                    BatchSize::SmallInput,
                )
            });
        };
    }

    ops_for!("1d", f64);
    ops_for!("2d", Dd);
    ops_for!("4d", Qd);
    ops_for!("8d", Od);
    ops_for!("complex 2d", Complex<Dd>);
    g.finish();
}

fn bench_add_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("dd add variants");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(200));
    let data = pairs::<Dd>(256, 9);
    g.bench_function("accurate (ieee) x256", |b| {
        b.iter(|| {
            let mut acc = Dd::ZERO;
            for (x, y) in &data {
                acc += *x + *y;
            }
            black_box(acc)
        })
    });
    g.bench_function("sloppy x256", |b| {
        b.iter(|| {
            let mut acc = Dd::ZERO;
            for (x, y) in &data {
                acc = acc.sloppy_add(x.sloppy_add(*y));
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ops, bench_add_variants);
criterion_main!(benches);
