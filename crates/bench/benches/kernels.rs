//! Criterion benchmarks of the functional simulator kernels: real host
//! execution time of the QR, back substitution and full solver at small
//! dimensions (one bench per experiment family).

use criterion::{criterion_group, criterion_main, Criterion};
use gpusim::{ExecMode, Gpu};
use mdls_backsub::{backsub, BacksubOptions};
use mdls_core::{lstsq, LstsqOptions};
use mdls_matrix::HostMat;
use mdls_qr::{qr_decompose, QrOptions};
use multidouble::{Dd, Qd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_qr(c: &mut Criterion) {
    let mut g = c.benchmark_group("qr functional");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(11);
    let a_dd = HostMat::<Dd>::random(64, 64, &mut rng);
    let opts = QrOptions {
        tiles: 4,
        tile_size: 16,
    };
    g.bench_function("dd 64x64 (4x16)", |b| {
        b.iter(|| {
            black_box(qr_decompose(
                &Gpu::v100(),
                ExecMode::Sequential,
                &a_dd,
                &opts,
            ))
        })
    });
    let a_qd = HostMat::<Qd>::random(32, 32, &mut rng);
    let opts_qd = QrOptions {
        tiles: 2,
        tile_size: 16,
    };
    g.bench_function("qd 32x32 (2x16)", |b| {
        b.iter(|| {
            black_box(qr_decompose(
                &Gpu::v100(),
                ExecMode::Sequential,
                &a_qd,
                &opts_qd,
            ))
        })
    });
    g.finish();
}

fn bench_backsub(c: &mut Criterion) {
    let mut g = c.benchmark_group("backsub functional");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(12);
    let opts = BacksubOptions {
        tiles: 8,
        tile_size: 16,
    };
    let u = mdls_matrix::well_conditioned_upper::<Qd, _>(opts.dim(), &mut rng);
    let b: Vec<Qd> = mdls_matrix::random_vector(opts.dim(), &mut rng);
    g.bench_function("qd dim 128 (8x16)", |bch| {
        bch.iter(|| black_box(backsub(&Gpu::v100(), ExecMode::Sequential, &u, &b, &opts)))
    });
    g.finish();
}

fn bench_lstsq(c: &mut Criterion) {
    let mut g = c.benchmark_group("lstsq functional");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(13);
    let opts = LstsqOptions {
        tiles: 4,
        tile_size: 16,
        mode: ExecMode::Sequential,
    };
    let a = HostMat::<Dd>::random(64, 64, &mut rng);
    let b: Vec<Dd> = mdls_matrix::random_vector(64, &mut rng);
    g.bench_function("dd 64 (4x16)", |bch| {
        bch.iter(|| black_box(lstsq(&Gpu::v100(), &a, &b, &opts)))
    });
    g.finish();
}

fn bench_model(c: &mut Criterion) {
    // the analytic model itself: regenerating a paper table should be fast
    let mut g = c.benchmark_group("model only");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("table3 generation", |b| {
        b.iter(|| black_box(mdls_bench::experiments::table3()))
    });
    g.finish();
}

criterion_group!(benches, bench_qr, bench_backsub, bench_lstsq, bench_model);
criterion_main!(benches);
