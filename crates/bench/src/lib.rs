//! The reproduction harness: one function per table and figure of the
//! paper, all runnable through the `repro` binary.
//!
//! Dimensions match the paper exactly; runs use the simulator's
//! model-only mode (the numerics themselves are validated by the
//! `verify` subcommand and the test suites at smaller sizes).

#![forbid(unsafe_code)]

pub mod ablate;
pub mod chaos;
pub mod experiments;
pub mod figures;
pub mod service;
pub mod tables;
pub mod throughput;
pub mod trace;
pub mod verify;

pub use tables::TextTable;
