//! Pipeline throughput experiments: batch size × device count ×
//! precision sweeps over the batched solve service, plus the
//! greedy-vs-SECT dispatch-policy A/B.
//!
//! All runs are model-only — the scheduler books each job's modeled
//! wall clock onto its device's simulated clock, which is exact for the
//! functional solver too (the analytic model is data independent), so
//! these sweeps scale to paper-sized dimensions instantly.

use std::sync::Arc;

use gpusim::Gpu;
use mdls_matrix::HostMat;
use mdls_obs::metrics::Metrics;
use mdls_obs::Recorder;
use mdls_pipeline::{
    bursty_tracker_jobs, refinement_mix, schedule, schedule_groups, schedule_staged,
    solve_batch_staged, solve_stream_staged, workload_mix, BatchReport, DevicePool, DispatchPolicy,
    Job, JobOutcome, JobShape, MicrobatchConfig, Planner, StageSchedConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tables::TextTable;

/// Decimal-digit targets landing on the 2d / 4d / 8d rungs.
const RUNG_DIGITS: [(u32, &str); 3] = [(25, "2d"), (50, "4d"), (100, "8d")];

/// A mixed-shape queue: power-flow-scaled square and tall systems.
fn mixed_shapes(count: usize, target_digits: u32) -> Vec<JobShape> {
    (0..count)
        .map(|i| {
            let cols = [64, 96, 128, 256][i % 4];
            JobShape {
                rows: cols + [0, 32][i % 2],
                cols,
                target_digits,
            }
        })
        .collect()
}

fn solves_per_sec(gpu: &Gpu, devices: usize, shapes: &[JobShape], planner: &Planner) -> f64 {
    let mut pool = DevicePool::homogeneous(gpu, devices);
    schedule(&mut pool, planner, shapes, DispatchPolicy::LeastLoaded);
    pool.solves_per_sec()
}

/// Throughput scaling: simulated solves/sec of a 256-job mixed queue on
/// 1, 2, 4 and 8 pooled V100s, per precision rung.
pub fn throughput_scaling() -> TextTable {
    let gpu = Gpu::v100();
    let planner = Planner::new();
    let mut t = TextTable::new(
        "Pipeline throughput: 256 mixed jobs (64..256 cols) on pooled V100s, \
         simulated solves/sec (speedup vs 1 device)",
        "precision",
    );
    for d in [1usize, 2, 4, 8] {
        t.col(format!("{d} dev"));
    }
    for (digits, tag) in RUNG_DIGITS {
        let shapes = mixed_shapes(256, digits);
        let rates: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&d| solves_per_sec(&gpu, d, &shapes, &planner))
            .collect();
        let base = rates[0];
        let cells: Vec<String> = rates
            .iter()
            .map(|s| format!("{s:.1} ({:.2}x)", s / base))
            .collect();
        t.row(tag, cells);
    }
    t
}

/// Batch-depth sweep: solves/sec of quad double queues of growing depth
/// on four pooled V100s — shallow queues underfill the pool.
pub fn batch_size_sweep() -> TextTable {
    let gpu = Gpu::v100();
    let planner = Planner::new();
    let mut t = TextTable::new(
        "Pipeline batch-depth sweep: quad double jobs on 4 pooled V100s",
        "batch size",
    );
    t.col("solves/sec").col("makespan ms").col("pool util");
    for depth in [4usize, 16, 64, 256, 1024] {
        let shapes = mixed_shapes(depth, 50);
        let mut pool = DevicePool::homogeneous(&gpu, 4);
        schedule(&mut pool, &planner, &shapes, DispatchPolicy::LeastLoaded);
        let util: f64 = pool.stats().iter().map(|s| s.utilization).sum::<f64>() / pool.len() as f64;
        t.row(
            format!("{depth}"),
            vec![
                format!("{:.1}", pool.solves_per_sec()),
                format!("{:.1}", pool.makespan_ms()),
                format!("{:.0}%", 100.0 * util),
            ],
        );
    }
    t
}

/// Planner choices: the staged plan the search picks per job shape and
/// rung on the V100 — structure (direct vs refinement, factor tiling)
/// plus predicted wall clock.
pub fn planner_choices() -> TextTable {
    let gpu = Gpu::v100();
    let planner = Planner::new();
    let mut t = TextTable::new(
        "Planner execution plans on the V100 (structure, predicted wall ms)",
        "shape",
    );
    for (_, tag) in RUNG_DIGITS {
        t.col(tag);
    }
    for (rows, cols) in [(64, 64), (128, 128), (256, 256), (288, 256), (1024, 1024)] {
        let cells: Vec<String> = RUNG_DIGITS
            .iter()
            .map(|&(digits, _)| {
                let p = planner.plan(&gpu, rows, cols, digits);
                format!("{} ({:.2} ms)", p.summary(), p.predicted_ms)
            })
            .collect();
        t.row(format!("{rows}x{cols}"), cells);
    }
    t
}

/// Direct-vs-refinement A/B: for each shape and digit target, the
/// cheapest single-rung direct plan against the searched staged plan,
/// on the V100 reference. The paper's premise in one table: each rung
/// multiplies the cost of every flop, so factoring at a cheap rung and
/// buying the digits back with O(m·n) residual/correct passes beats
/// paying the deep-rung O(m·n²) factorization — increasingly so as the
/// dimension grows and the factorization dominates.
pub fn refinement_ab() -> TextTable {
    let gpu = Gpu::v100();
    let planner = Planner::new();
    let mut t = TextTable::new(
        "Direct-vs-refinement A/B on the V100: predicted wall ms \
         (plan structure), searched plan gain",
        "shape, target",
    );
    t.col("direct").col("searched").col("gain");
    for (rows, cols, digits) in [
        (128, 128, 25),
        (256, 256, 50),
        (512, 512, 50),
        (1024, 1024, 50),
        (1024, 1024, 100),
    ] {
        let direct = planner.plan_direct(&gpu, rows, cols, digits);
        let plan = planner.plan(&gpu, rows, cols, digits);
        t.row(
            format!("{rows}x{cols} d{digits}"),
            vec![
                format!("{:.2} ({})", direct.predicted_ms, direct.summary()),
                format!("{:.2} ({})", plan.predicted_ms, plan.summary()),
                format!(
                    "{:+.1}%",
                    100.0 * (direct.predicted_ms - plan.predicted_ms) / direct.predicted_ms
                ),
            ],
        );
    }
    t
}

/// The small-shape grid of the micro-batching A/B: the paper's
/// tracker-mix sizes at the d and dd rungs (where one solve most badly
/// underfills a device), plus a 4d row to show the win fade as the
/// arithmetic deepens and a big-shape row to show it vanish once a
/// single solve already fills the waves.
const MICROBATCH_SHAPES: [(usize, u32, &str); 8] = [
    (32, 12, "1d"),
    (64, 12, "1d"),
    (128, 12, "1d"),
    (32, 25, "2d"),
    (64, 25, "2d"),
    (128, 25, "2d"),
    (128, 50, "4d"),
    (1024, 25, "2d"),
];

/// Fused-vs-singleton A/B: per-job predicted cost of small QR solves,
/// singleton launches against a fused group at the occupancy-aware
/// preferred size, on the V100. The speedup is the device-level
/// micro-batching win: one grid carries the whole group, occupancy
/// climbs out of the wave-quantization floor, and per-launch constants
/// amortize across members.
pub fn microbatch_ab() -> TextTable {
    let gpu = Gpu::v100();
    let planner = Planner::new();
    // measure exactly the configuration solve_batch_fused ships with
    let cfg = MicrobatchConfig::default();
    let mut t = TextTable::new(
        "Micro-batching A/B on the V100: per-job predicted wall ms, \
         singleton launches vs fused group at the preferred size",
        "shape, rung",
    );
    t.col("singleton").col("fused").col("group").col("speedup");
    for (n, digits, tag) in MICROBATCH_SHAPES {
        let single = planner.plan(&gpu, n, n, digits);
        let k = planner.preferred_group_size(n, n, digits, cfg.max_group, cfg.tolerance);
        let (_, fused) = planner.plan_fused(&gpu, n, n, digits, k);
        t.row(
            format!("{n}x{n} {tag}"),
            vec![
                format!("{:.4}", single.predicted_ms),
                format!("{:.4}", fused.per_job_ms()),
                format!("x{k}"),
                format!("{:.1}x", single.predicted_ms / fused.per_job_ms()),
            ],
        );
    }
    t
}

/// Queue-level micro-batching A/B: solves/sec of a small-shape queue
/// (the tracker mix's 32..128-unknown systems at d/dd rungs) over
/// pooled V100s, scheduled unfused vs micro-batched. The fused
/// schedule books grouped launch sequences, so the same pool clears
/// the queue several times over.
pub fn microbatch_queue_ab(jobs: usize) -> TextTable {
    let shapes: Vec<JobShape> = (0..jobs)
        .map(|i| {
            let cols = [32, 64, 96, 128][i % 4];
            JobShape {
                rows: cols,
                cols,
                target_digits: [12, 25][i % 2],
            }
        })
        .collect();
    let mut t = TextTable::new(
        format!(
            "Micro-batched queue throughput: {jobs} small jobs \
             (32..128 cols, 1d/2d) on pooled V100s, solves/sec"
        ),
        "devices",
    );
    t.col("unfused").col("fused").col("gain");
    for devices in [1usize, 2, 4] {
        let planner = Planner::new();
        let mut plain = DevicePool::homogeneous(&Gpu::v100(), devices);
        schedule(&mut plain, &planner, &shapes, DispatchPolicy::LeastLoaded);
        let mut micro = DevicePool::homogeneous(&Gpu::v100(), devices);
        schedule_groups(
            &mut micro,
            &planner,
            &shapes,
            DispatchPolicy::LeastLoaded,
            &MicrobatchConfig::default(),
        );
        t.row(
            format!("{devices}"),
            vec![
                format!("{:.1}", plain.solves_per_sec()),
                format!("{:.1}", micro.solves_per_sec()),
                format!("{:.1}x", micro.solves_per_sec() / plain.solves_per_sec()),
            ],
        );
    }
    t
}

/// The named pools of the dispatch-policy A/B: one homogeneous control
/// (any SECT gain there comes from LPT ordering alone, not from
/// device awareness) and two mixed pools of increasing speed spread.
fn ab_pools() -> Vec<(&'static str, Vec<Gpu>)> {
    vec![
        ("4x V100", vec![Gpu::v100(); 4]),
        ("2x V100 + 2x P100", {
            vec![Gpu::v100(), Gpu::v100(), Gpu::p100(), Gpu::p100()]
        }),
        (
            "V100 + P100 + A100",
            vec![Gpu::v100(), Gpu::p100(), Gpu::a100()],
        ),
    ]
}

/// Makespan of `shapes` over `gpus` under `policy`, ms.
pub fn policy_makespan(gpus: &[Gpu], shapes: &[JobShape], policy: DispatchPolicy) -> f64 {
    let planner = Planner::new();
    let mut pool = DevicePool::new(gpus.to_vec());
    schedule(&mut pool, &planner, shapes, policy);
    pool.makespan_ms()
}

/// Greedy-vs-SECT A/B: makespan of the workload mix under both dispatch
/// policies on homogeneous and heterogeneous pools. On identical
/// devices SECT's LPT ordering can only help a little; on mixed pools
/// SECT stops parking long deep-precision solves on the slowest idle
/// device and wins outright. The gap is widest at service-window
/// depths (tens of jobs in flight): as the queue grows unboundedly
/// both heuristics approach the pool's capacity bound and the policy
/// choice recedes into the tail.
pub fn policy_ab(jobs: usize) -> TextTable {
    let shapes = workload_mix(jobs);
    let mut t = TextTable::new(
        format!(
            "Dispatch-policy A/B: {jobs}-job workload mix (32..256 cols, 1d..8d), \
             makespan ms by pool"
        ),
        "pool",
    );
    t.col("greedy").col("sect").col("sect gain");
    for (name, gpus) in ab_pools() {
        let greedy = policy_makespan(&gpus, &shapes, DispatchPolicy::LeastLoaded);
        let sect = policy_makespan(&gpus, &shapes, DispatchPolicy::ShortestExpectedCompletion);
        t.row(
            name,
            vec![
                format!("{greedy:.1}"),
                format!("{sect:.1}"),
                format!("{:+.1}%", 100.0 * (greedy - sect) / greedy),
            ],
        );
    }
    t
}

/// Makespan of the refinement mix on `gpus` under stage-level SECT
/// with the given booking config, ms.
pub fn staged_makespan(gpus: &[Gpu], shapes: &[JobShape], sched: &StageSchedConfig) -> f64 {
    let planner = Planner::new();
    let mut pool = DevicePool::new(gpus.to_vec());
    schedule_staged(
        &mut pool,
        &planner,
        shapes,
        DispatchPolicy::ShortestExpectedCompletion,
        &MicrobatchConfig::off(),
        sched,
    );
    pool.makespan_ms()
}

/// Stage-overlap A/B: makespan of the refinement-heavy tracker mix
/// under per-plan SECT (one opaque interval per job) against
/// stage-level SECT — first with sequential stage booking (the
/// control: identical timing, proving stage granularity alone costs
/// nothing), then with cross-job overlap (the next job's factorization
/// prep books under the current job's residual/correct passes).
/// Makespans move; bits never do — every booking mode runs the same
/// interpreter on the same plans.
pub fn stage_overlap_ab(jobs: usize) -> TextTable {
    let shapes = refinement_mix(jobs);
    let mut t = TextTable::new(
        format!(
            "Stage-overlap A/B: {jobs}-job refinement-heavy tracker mix \
             (64..256 cols, 30..100 digits), SECT makespan ms by booking"
        ),
        "pool",
    );
    t.col("per-plan")
        .col("staged seq")
        .col("staged overlap")
        .col("overlap gain");
    for (name, gpus) in ab_pools() {
        let per_plan = policy_makespan(&gpus, &shapes, DispatchPolicy::ShortestExpectedCompletion);
        let seq = staged_makespan(&gpus, &shapes, &StageSchedConfig::sequential());
        let overlap = staged_makespan(&gpus, &shapes, &StageSchedConfig::overlap_only());
        t.row(
            name,
            vec![
                format!("{per_plan:.1}"),
                format!("{seq:.1}"),
                format!("{overlap:.1}"),
                format!("{:+.1}%", 100.0 * (per_plan - overlap) / per_plan),
            ],
        );
    }
    t
}

/// Deterministic jobs whose worst-case pass bookings overshoot: 30-
/// and 90-digit targets book one more residual/correct pass than the
/// measured residual needs on well-conditioned data, so every solve
/// hands booked time back — the workload online re-booking exists for.
pub fn refund_heavy_jobs(count: usize, seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count as u64)
        .map(|id| {
            let n = [96, 128, 192][id as usize % 3];
            let a = HostMat::<f64>::from_fn(n, n, |r, c| {
                let u: f64 = multidouble::random::rand_real(&mut rng);
                u + if r == c { 4.0 } else { 0.0 }
            });
            let b: Vec<f64> = (0..n)
                .map(|_| multidouble::random::rand_real(&mut rng))
                .collect();
            Job::new(id, a, b, [30, 90, 90][id as usize % 3])
        })
        .collect()
}

/// Online re-booking A/B (functional): the refund-heavy mix under
/// stage-level SECT with worst-case pass bookings, refunds handled
/// post-hoc (busy books only — the schedule keeps every booked
/// interval) vs re-booked online. Since the staged batch engine books
/// every group up front, a tail-only re-book frees little more than
/// each device's final booking — the schedule-level win now comes from
/// compacting re-books ([`timeline_ab`]), which slide queued
/// dispatches into mid-schedule holes. Same arithmetic, same refunded
/// time in every arm.
pub fn rebooking_ab(jobs: usize) -> TextTable {
    let jobs = refund_heavy_jobs(jobs, 0xeb00);
    let gpus = vec![Gpu::v100(), Gpu::v100(), Gpu::p100(), Gpu::p100()];
    let mut t = TextTable::new(
        format!(
            "Online re-booking A/B: {} refund-heavy jobs (96..192 cols, \
             30/90 digits) on 2x V100 + 2x P100, stage-level SECT",
            jobs.len()
        ),
        "refund handling",
    );
    t.col("makespan ms").col("refunded ms").col("gain");
    let mut rebook = StageSchedConfig::overlap_only();
    rebook.rebook = true;
    let run = |sched: &StageSchedConfig| {
        let mut pool = DevicePool::new(gpus.clone());
        let report = solve_batch_staged(
            &mut pool,
            &jobs,
            DispatchPolicy::ShortestExpectedCompletion,
            &MicrobatchConfig::off(),
            sched,
        );
        let refunded: f64 = report.outcomes.iter().map(|o| o.refunded_ms).sum();
        (report.makespan_ms, refunded)
    };
    let (post_ms, post_refund) = run(&StageSchedConfig::overlap_only());
    let (re_ms, re_refund) = run(&rebook);
    let (exp_ms, exp_refund) = run(&StageSchedConfig::staged());
    t.row(
        "post-hoc",
        vec![
            format!("{post_ms:.1}"),
            format!("{post_refund:.1}"),
            "-".into(),
        ],
    );
    t.row(
        "re-booked online",
        vec![
            format!("{re_ms:.1}"),
            format!("{re_refund:.1}"),
            format!("{:+.1}%", 100.0 * (post_ms - re_ms) / post_ms),
        ],
    );
    t.row(
        "expected-pass booking",
        vec![
            format!("{exp_ms:.1}"),
            format!("{exp_refund:.1}"),
            format!("{:+.1}%", 100.0 * (post_ms - exp_ms) / post_ms),
        ],
    );
    t
}

/// One functional staged run of `jobs` on `gpus` with a recorder
/// attached: the batch report plus the folded event metrics.
fn staged_observed(gpus: &[Gpu], jobs: &[Job], sched: &StageSchedConfig) -> (BatchReport, Metrics) {
    let mut pool = DevicePool::new(gpus.to_vec());
    let recorder = Arc::new(Recorder::new());
    pool.attach_observer(recorder.clone());
    let report = solve_batch_staged(
        &mut pool,
        jobs,
        DispatchPolicy::ShortestExpectedCompletion,
        &MicrobatchConfig::off(),
        sched,
    );
    let metrics = Metrics::from_events(&recorder.events());
    (report, metrics)
}

/// The three refund-handling arms of the interval-timeline A/B, in
/// makespan order of construction: post-hoc (keep every booked
/// interval), tail-only re-booking (free only spans still at the lane
/// tail — mid-schedule holes strand), and compacting re-booking
/// (free mid-schedule spans and slide queued, unexecuted dispatches
/// left into the hole).
fn timeline_arms() -> [(&'static str, StageSchedConfig); 3] {
    let post = StageSchedConfig::overlap_only();
    let mut tail = StageSchedConfig::overlap_only();
    tail.rebook = true;
    let mut compact = tail;
    compact.compact = true;
    [
        ("post-hoc", post),
        ("tail-only", tail),
        ("compaction", compact),
    ]
}

/// Interval-timeline compaction A/B (functional): the refund-heavy mix
/// with worst-case pass bookings on the mixed pool, post-hoc vs
/// tail-only vs compacting re-books. The batch engine books every
/// group up front, so when a booking certifies early the freed span
/// sits *mid-schedule*; tail-only re-booking strands it, compaction
/// slides the queued dispatches behind it left. `slid` counts
/// dispatches moved, from the recorded [`mdls_obs::Event::Compacted`]
/// stream.
pub fn timeline_ab(jobs: usize) -> TextTable {
    let jobs = refund_heavy_jobs(jobs, 0xeb00);
    let gpus = vec![Gpu::v100(), Gpu::v100(), Gpu::p100(), Gpu::p100()];
    let mut t = TextTable::new(
        format!(
            "Interval-timeline compaction A/B: {} refund-heavy jobs (96..192 \
             cols, 30/90 digits) on 2x V100 + 2x P100, stage-level SECT",
            jobs.len()
        ),
        "refund handling",
    );
    t.col("makespan ms")
        .col("refunded ms")
        .col("slid")
        .col("gain");
    let mut post_ms = 0.0;
    for (i, (name, sched)) in timeline_arms().iter().enumerate() {
        let (report, m) = staged_observed(&gpus, &jobs, sched);
        if i == 0 {
            post_ms = report.makespan_ms;
        }
        let refunded: f64 = report.outcomes.iter().map(|o| o.refunded_ms).sum();
        t.row(
            *name,
            vec![
                format!("{:.1}", report.makespan_ms),
                format!("{refunded:.1}"),
                format!("{}", m.slid_dispatches),
                if i == 0 {
                    "-".into()
                } else {
                    format!("{:+.1}%", 100.0 * (post_ms - report.makespan_ms) / post_ms)
                },
            ],
        );
    }
    t
}

/// One model-only staged schedule of `shapes` on `gpus` with `k` host
/// staging workers: (makespan ms, staging waits, total wait ms).
fn staging_run(gpus: &[Gpu], shapes: &[JobShape], k: usize) -> (f64, u64, f64) {
    let planner = Planner::new();
    let mut pool = DevicePool::new(gpus.to_vec());
    pool.set_staging_workers(k);
    let recorder = Arc::new(Recorder::new());
    pool.attach_observer(recorder.clone());
    schedule_staged(
        &mut pool,
        &planner,
        shapes,
        DispatchPolicy::ShortestExpectedCompletion,
        &MicrobatchConfig::off(),
        &StageSchedConfig::overlap_only(),
    );
    let m = Metrics::from_events(&recorder.events());
    (pool.makespan_ms(), m.staging_waits, m.staging_wait_ms)
}

/// Host-staging contention A/B (model): the refinement-heavy mix on 4
/// pooled V100s with the pool-wide CPU staging model at `k` = N, 2 and
/// 1 workers. Every prep interval books a worker slot *and* its
/// device's prep lane; with `k` < N concurrent preps across devices
/// queue on the workers and the waits (counted from
/// [`mdls_obs::Event::StagingWait`]) stretch the makespan.
pub fn staging_ab(jobs: usize) -> TextTable {
    let shapes = refinement_mix(jobs);
    let gpus = vec![Gpu::v100(); 4];
    let mut t = TextTable::new(
        format!(
            "Host-staging contention A/B: {jobs}-job refinement-heavy mix on \
             4x V100, stage-level SECT, k CPU staging workers"
        ),
        "workers",
    );
    t.col("makespan ms")
        .col("staging waits")
        .col("wait ms")
        .col("vs k=N");
    let (base_ms, _, _) = staging_run(&gpus, &shapes, gpus.len());
    for k in [gpus.len(), 2, 1] {
        let (ms, waits, wait_ms) = staging_run(&gpus, &shapes, k);
        t.row(
            if k == gpus.len() {
                "k = N = 4".into()
            } else {
                format!("k = {k}")
            },
            vec![
                format!("{ms:.1}"),
                format!("{waits}"),
                format!("{wait_ms:.1}"),
                format!("{:+.1}%", 100.0 * (ms - base_ms) / base_ms),
            ],
        );
    }
    t
}

/// Escape a string for a JSON literal (the scenario names are ASCII
/// identifiers, but stay correct regardless).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable throughput results: per-scenario makespan and
/// latency for the interval-timeline and host-staging A/Bs, as a JSON
/// document (written to `target/bench-throughput.json` by
/// `repro throughput` / `throughput-smoke` and validated with
/// [`mdls_obs::json`]).
pub fn bench_json(jobs: usize) -> String {
    let mut scenarios = Vec::new();
    let refund = refund_heavy_jobs(jobs, 0xeb00);
    let mixed = vec![Gpu::v100(), Gpu::v100(), Gpu::p100(), Gpu::p100()];
    for (name, sched) in timeline_arms() {
        let (report, m) = staged_observed(&mixed, &refund, &sched);
        scenarios.push(format!(
            "{{\"name\":\"timeline_{}\",\"makespan_ms\":{:.6},\"solves_per_sec\":{:.6},\
             \"p50_ms\":{:.6},\"p99_ms\":{:.6},\"slid_dispatches\":{}}}",
            json_escape(name),
            report.makespan_ms,
            report.solves_per_sec,
            report.latency.p50_ms,
            report.latency.p99_ms,
            m.slid_dispatches
        ));
    }
    let shapes = refinement_mix(jobs.max(8) * 2);
    let homog = vec![Gpu::v100(); 4];
    for k in [homog.len(), 2, 1] {
        let (ms, waits, wait_ms) = staging_run(&homog, &shapes, k);
        scenarios.push(format!(
            "{{\"name\":\"staging_k{k}\",\"makespan_ms\":{ms:.6},\
             \"staging_waits\":{waits},\"staging_wait_ms\":{wait_ms:.6}}}"
        ));
    }
    format!("{{\"scenarios\":[{}]}}", scenarios.join(","))
}

/// Bursty-arrival deadline misses (functional): tracker jobs arriving
/// in bursts stream through a 2-device pool; a miss is an outcome
/// whose completion lands after its deadline — countable only now
/// that jobs carry real release times. Stage-level scheduling clears
/// the queue sooner; on an overloaded burst cadence the miss count is
/// arrival-limited (the same correctors drain first either way), which
/// is exactly what the table makes visible.
pub fn bursty_deadline_table(jobs: usize) -> TextTable {
    let mut rng = StdRng::seed_from_u64(0xb57);
    let jobs = bursty_tracker_jobs(jobs, 6, 30.0, &mut rng);
    let mut t = TextTable::new(
        format!(
            "Bursty stream deadline misses: {} tracker jobs in bursts of 6 \
             every 30 ms on V100 + P100",
            jobs.len()
        ),
        "scheduler",
    );
    t.col("makespan ms")
        .col("deadline misses")
        .col("p99 turnaround ms");
    let with_deadline = jobs.iter().filter(|j| j.deadline_ms.is_some()).count();
    for (name, sched) in [
        ("per-plan booking", None),
        ("staged online", Some(StageSchedConfig::staged())),
    ] {
        let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::p100()]);
        let outs: Vec<JobOutcome> = match sched {
            None => mdls_pipeline::solve_stream_with(
                &mut pool,
                jobs.clone(),
                DispatchPolicy::ShortestExpectedCompletion,
                8,
            )
            .collect(),
            Some(s) => solve_stream_staged(
                &mut pool,
                jobs.clone(),
                DispatchPolicy::ShortestExpectedCompletion,
                8,
                MicrobatchConfig::default(),
                s,
            )
            .collect(),
        };
        let lat = mdls_pipeline::latency_summary(&outs);
        t.row(
            name,
            vec![
                format!("{:.1}", pool.makespan_ms()),
                format!("{} / {}", lat.deadline_misses, with_deadline),
                format!("{:.1}", lat.p99_ms),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_reaches_1_8x_at_two_devices() {
        // the acceptance bar of the pipeline issue, at every rung
        let gpu = Gpu::v100();
        let planner = Planner::new();
        for (digits, tag) in RUNG_DIGITS {
            let shapes = mixed_shapes(256, digits);
            let t1 = solves_per_sec(&gpu, 1, &shapes, &planner);
            let t2 = solves_per_sec(&gpu, 2, &shapes, &planner);
            assert!(t2 >= 1.8 * t1, "{tag}: 1→2 devices only {:.2}x", t2 / t1);
        }
    }

    #[test]
    fn tables_render() {
        assert!(throughput_scaling().render().contains("2d"));
        assert!(batch_size_sweep().render().contains("1024"));
        assert!(planner_choices().render().contains("x"));
        assert!(policy_ab(60).render().contains("sect"));
        assert!(refinement_ab().render().contains("direct"));
        assert!(microbatch_ab().render().contains("speedup"));
        assert!(microbatch_queue_ab(64).render().contains("fused"));
        assert!(stage_overlap_ab(24).render().contains("overlap"));
        assert!(timeline_ab(12).render().contains("compaction"));
        assert!(staging_ab(16).render().contains("k = 1"));
        assert!(bursty_deadline_table(18).render().contains("misses"));
    }

    #[test]
    fn stage_overlap_beats_per_plan_sect_by_10_percent() {
        // the acceptance bar: on the 2x V100 + 2x P100 refinement-heavy
        // tracker mix, stage-level booking with cross-job overlap cuts
        // the SECT makespan by >= 10% vs per-plan booking — and the
        // sequential-booking control is timing-identical to per-plan,
        // so the whole win is the overlap, not stage granularity
        let shapes = refinement_mix(48);
        let mixed = vec![Gpu::v100(), Gpu::v100(), Gpu::p100(), Gpu::p100()];
        let per_plan = policy_makespan(&mixed, &shapes, DispatchPolicy::ShortestExpectedCompletion);
        let seq = staged_makespan(&mixed, &shapes, &StageSchedConfig::sequential());
        let overlap = staged_makespan(&mixed, &shapes, &StageSchedConfig::overlap_only());
        assert!(
            (seq - per_plan).abs() < 1e-6 * per_plan,
            "sequential stage booking {seq:.2} ms drifted from per-plan {per_plan:.2} ms"
        );
        assert!(
            overlap <= 0.90 * per_plan,
            "overlap {overlap:.1} ms not >=10% under per-plan {per_plan:.1} ms"
        );
        // and overlap never loses on any A/B pool
        for (name, gpus) in ab_pools() {
            let p = policy_makespan(&gpus, &shapes, DispatchPolicy::ShortestExpectedCompletion);
            let o = staged_makespan(&gpus, &shapes, &StageSchedConfig::overlap_only());
            assert!(
                o <= p * (1.0 + 1e-9),
                "{name}: overlap {o:.1} regressed {p:.1}"
            );
        }
    }

    #[test]
    fn online_rebooking_wins_makespan() {
        // re-booking hands refunded time to later dispatches. The batch
        // engine books every group up front, so a tail-only re-book can
        // only trim each device's final booking — it must never lose to
        // post-hoc, but the schedule-level win is compaction's: queued
        // dispatches slide into the mid-schedule holes and the makespan
        // drops strictly. Expected-pass booking (which also compacts)
        // must at least hold that line.
        let jobs = refund_heavy_jobs(12, 0xeb01);
        let gpus = vec![Gpu::v100(), Gpu::v100(), Gpu::p100(), Gpu::p100()];
        let run = |sched: &StageSchedConfig| {
            let mut pool = DevicePool::new(gpus.clone());
            let report = solve_batch_staged(
                &mut pool,
                &jobs,
                DispatchPolicy::ShortestExpectedCompletion,
                &MicrobatchConfig::off(),
                sched,
            );
            let refunded: f64 = report.outcomes.iter().map(|o| o.refunded_ms).sum();
            (report.makespan_ms, refunded)
        };
        let [(_, post), (_, tail), (_, compact)] = timeline_arms();
        let (post_ms, post_refund) = run(&post);
        assert!(
            post_refund > 0.0,
            "no refunds on the refund-heavy mix — the A/B is vacuous"
        );
        let (tail_ms, _) = run(&tail);
        assert!(
            tail_ms <= post_ms + 1e-9,
            "tail-only re-booking {tail_ms:.2} ms regressed post-hoc {post_ms:.2} ms"
        );
        let (compact_ms, _) = run(&compact);
        assert!(
            compact_ms < post_ms,
            "compaction {compact_ms:.2} ms not strictly under post-hoc {post_ms:.2} ms"
        );
        let (exp_ms, _) = run(&StageSchedConfig::staged());
        assert!(
            exp_ms <= compact_ms + 1e-9,
            "expected-pass booking {exp_ms:.2} ms worse than worst-case compaction {compact_ms:.2} ms"
        );
    }

    #[test]
    fn compaction_never_loses_to_tail_only_rebooking() {
        // across seeded refund-heavy runs, compaction's makespan is
        // never above tail-only's, and wins strictly somewhere — the
        // holes it fills are exactly the spans tail-only strands
        let gpus = vec![Gpu::v100(), Gpu::v100(), Gpu::p100(), Gpu::p100()];
        let [_, (_, tail), (_, compact)] = timeline_arms();
        let mut strict_wins = 0;
        for seed in [0xeb01u64, 0xeb02, 0xeb03] {
            let jobs = refund_heavy_jobs(12, seed);
            let run = |sched: &StageSchedConfig| {
                let mut pool = DevicePool::new(gpus.clone());
                solve_batch_staged(
                    &mut pool,
                    &jobs,
                    DispatchPolicy::ShortestExpectedCompletion,
                    &MicrobatchConfig::off(),
                    sched,
                )
                .makespan_ms
            };
            let tail_ms = run(&tail);
            let compact_ms = run(&compact);
            assert!(
                compact_ms <= tail_ms + 1e-9,
                "seed {seed:#x}: compaction {compact_ms:.2} ms above tail-only {tail_ms:.2} ms"
            );
            if compact_ms < tail_ms - 1e-9 {
                strict_wins += 1;
            }
        }
        assert!(
            strict_wins >= 1,
            "compaction never beat tail-only strictly on any seed"
        );
    }

    #[test]
    fn staging_contention_costs_makespan() {
        // k = N staging workers reproduce the per-device prep-lane
        // model exactly (zero waits); starving the pool to one worker
        // must generate waits and stretch the makespan
        let shapes = refinement_mix(24);
        let gpus = vec![Gpu::v100(); 4];
        let (full_ms, full_waits, _) = staging_run(&gpus, &shapes, gpus.len());
        assert_eq!(full_waits, 0, "k = N must not generate staging waits");
        let (one_ms, one_waits, one_wait_ms) = staging_run(&gpus, &shapes, 1);
        assert!(one_waits > 0, "k = 1 generated no staging contention");
        assert!(one_wait_ms > 0.0);
        assert!(
            one_ms >= full_ms,
            "k = 1 makespan {one_ms:.2} ms under k = N {full_ms:.2} ms"
        );
    }

    #[test]
    fn bench_json_is_valid_and_complete() {
        let doc = mdls_obs::json::parse(&bench_json(8)).expect("bench json parses");
        let scenarios = doc
            .get("scenarios")
            .and_then(mdls_obs::json::Json::as_arr)
            .expect("scenarios array");
        assert!(scenarios.len() >= 6);
        for s in scenarios {
            let name = s
                .get("name")
                .and_then(mdls_obs::json::Json::as_str)
                .expect("scenario name");
            let ms = s
                .get("makespan_ms")
                .and_then(mdls_obs::json::Json::as_f64)
                .expect("scenario makespan");
            assert!(ms > 0.0, "{name}: nonpositive makespan");
        }
    }

    #[test]
    fn microbatching_doubles_small_shape_throughput() {
        // the acceptance bar of the micro-batching issue: >= 2x
        // predicted solves/sec on every small shape (32..128 unknowns)
        // at the d and dd rungs, fused vs per-job launches
        let gpu = Gpu::v100();
        let planner = Planner::new();
        // guard the shipped configuration, not a private tuning point
        let cfg = MicrobatchConfig::default();
        for (n, digits, tag) in MICROBATCH_SHAPES {
            if n > 128 || digits > 25 {
                continue; // the bar is for the small d/dd shapes
            }
            let single = planner.plan(&gpu, n, n, digits);
            let k = planner.preferred_group_size(n, n, digits, cfg.max_group, cfg.tolerance);
            let (_, fused) = planner.plan_fused(&gpu, n, n, digits, k);
            let speedup = single.predicted_ms / fused.per_job_ms();
            assert!(
                speedup >= 2.0,
                "{n}x{n} {tag}: fused x{k} only {speedup:.2}x"
            );
        }
        // and the queue-level schedule shows it end to end on one device
        let shapes: Vec<JobShape> = (0..128)
            .map(|i| {
                let cols = [32, 64, 96, 128][i % 4];
                JobShape {
                    rows: cols,
                    cols,
                    target_digits: [12, 25][i % 2],
                }
            })
            .collect();
        let mut plain = DevicePool::homogeneous(&gpu, 1);
        schedule(&mut plain, &planner, &shapes, DispatchPolicy::LeastLoaded);
        let mut micro = DevicePool::homogeneous(&gpu, 1);
        schedule_groups(
            &mut micro,
            &planner,
            &shapes,
            DispatchPolicy::LeastLoaded,
            &MicrobatchConfig::default(),
        );
        assert!(
            micro.solves_per_sec() >= 2.0 * plain.solves_per_sec(),
            "queue: fused {:.1}/s vs unfused {:.1}/s",
            micro.solves_per_sec(),
            plain.solves_per_sec()
        );
    }

    #[test]
    fn planner_choices_differ_somewhere() {
        let gpu = Gpu::v100();
        let planner = Planner::new();
        let a = planner.plan(&gpu, 64, 64, 50);
        let b = planner.plan(&gpu, 1024, 1024, 50);
        assert_ne!(a.stages, b.stages);
    }

    #[test]
    fn refinement_beats_direct_at_the_paper_dimension() {
        // the acceptance bar: at 1024 x 1024 with a quad double target
        // the searched plan factors at double double and refines, and
        // its predicted wall clock beats the direct quad double solve
        let gpu = Gpu::v100();
        let planner = Planner::new();
        let direct = planner.plan_direct(&gpu, 1024, 1024, 50);
        let plan = planner.plan(&gpu, 1024, 1024, 50);
        assert!(!plan.is_direct(), "search kept {}", plan.summary());
        assert!(
            plan.predicted_ms < direct.predicted_ms,
            "refinement {:.2} ms not under direct {:.2} ms",
            plan.predicted_ms,
            direct.predicted_ms
        );
        assert!(plan.predicted_digits >= 50);
    }

    #[test]
    fn sect_beats_greedy_on_the_mixed_ab_pool() {
        // the acceptance bar: ≥ 5% makespan gain on the mixed
        // 2x V100 + 2x P100 pool over the workload mix at
        // service-window depth, and no regression anywhere. (Before
        // staged plans the 5% bar also held on the 2-device V100+P100
        // pool; refinement compressed the cost spread between rungs —
        // an 8d job now costs a dd factorization plus a few cheap
        // passes instead of a full 8d factorization — so greedy's
        // worst case, a long deep job parked on the slow idle device,
        // simply hurts less. SECT must still never lose.)
        let shapes = workload_mix(60);
        let mixed4 = vec![Gpu::v100(), Gpu::v100(), Gpu::p100(), Gpu::p100()];
        let greedy = policy_makespan(&mixed4, &shapes, DispatchPolicy::LeastLoaded);
        let sect = policy_makespan(&mixed4, &shapes, DispatchPolicy::ShortestExpectedCompletion);
        assert!(
            sect <= 0.95 * greedy,
            "4 devices: SECT {sect:.1} ms not ≥5% under greedy {greedy:.1} ms"
        );
        for pool in [vec![Gpu::v100(), Gpu::p100()], vec![Gpu::v100(); 4]] {
            let g = policy_makespan(&pool, &shapes, DispatchPolicy::LeastLoaded);
            let s = policy_makespan(&pool, &shapes, DispatchPolicy::ShortestExpectedCompletion);
            assert!(
                s <= g * (1.0 + 1e-9),
                "{} devices: SECT {s:.1} ms regressed greedy {g:.1} ms",
                pool.len()
            );
        }
    }
}
