//! Pipeline throughput experiments: batch size × device count ×
//! precision sweeps over the batched solve service.
//!
//! All runs are model-only — the scheduler books each job's modeled
//! wall clock onto its device's simulated clock, which is exact for the
//! functional solver too (the analytic model is data independent), so
//! these sweeps scale to paper-sized dimensions instantly.

use gpusim::Gpu;
use mdls_pipeline::{schedule, DevicePool, JobShape, Planner};

use crate::tables::TextTable;

/// Decimal-digit targets landing on the 2d / 4d / 8d rungs.
const RUNG_DIGITS: [(u32, &str); 3] = [(25, "2d"), (50, "4d"), (100, "8d")];

/// A mixed-shape queue: power-flow-scaled square and tall systems.
fn mixed_shapes(count: usize, target_digits: u32) -> Vec<JobShape> {
    (0..count)
        .map(|i| {
            let cols = [64, 96, 128, 256][i % 4];
            JobShape {
                rows: cols + [0, 32][i % 2],
                cols,
                target_digits,
            }
        })
        .collect()
}

fn solves_per_sec(gpu: &Gpu, devices: usize, shapes: &[JobShape], planner: &Planner) -> f64 {
    let mut pool = DevicePool::homogeneous(gpu, devices);
    schedule(&mut pool, planner, shapes);
    pool.solves_per_sec()
}

/// Throughput scaling: simulated solves/sec of a 256-job mixed queue on
/// 1, 2, 4 and 8 pooled V100s, per precision rung.
pub fn throughput_scaling() -> TextTable {
    let gpu = Gpu::v100();
    let planner = Planner::new();
    let mut t = TextTable::new(
        "Pipeline throughput: 256 mixed jobs (64..256 cols) on pooled V100s, \
         simulated solves/sec (speedup vs 1 device)",
        "precision",
    );
    for d in [1usize, 2, 4, 8] {
        t.col(format!("{d} dev"));
    }
    for (digits, tag) in RUNG_DIGITS {
        let shapes = mixed_shapes(256, digits);
        let rates: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&d| solves_per_sec(&gpu, d, &shapes, &planner))
            .collect();
        let base = rates[0];
        let cells: Vec<String> = rates
            .iter()
            .map(|s| format!("{s:.1} ({:.2}x)", s / base))
            .collect();
        t.row(tag, cells);
    }
    t
}

/// Batch-depth sweep: solves/sec of quad double queues of growing depth
/// on four pooled V100s — shallow queues underfill the pool.
pub fn batch_size_sweep() -> TextTable {
    let gpu = Gpu::v100();
    let planner = Planner::new();
    let mut t = TextTable::new(
        "Pipeline batch-depth sweep: quad double jobs on 4 pooled V100s",
        "batch size",
    );
    t.col("solves/sec").col("makespan ms").col("pool util");
    for depth in [4usize, 16, 64, 256, 1024] {
        let shapes = mixed_shapes(depth, 50);
        let mut pool = DevicePool::homogeneous(&gpu, 4);
        schedule(&mut pool, &planner, &shapes);
        let util: f64 = pool.stats().iter().map(|s| s.utilization).sum::<f64>() / pool.len() as f64;
        t.row(
            format!("{depth}"),
            vec![
                format!("{:.1}", pool.solves_per_sec()),
                format!("{:.1}", pool.makespan_ms()),
                format!("{:.0}%", 100.0 * util),
            ],
        );
    }
    t
}

/// Planner choices: the tiling the cost model picks per job shape and
/// rung on the V100 — the autotuning the seed's fixed 8 × 128 lacked.
pub fn planner_choices() -> TextTable {
    let gpu = Gpu::v100();
    let planner = Planner::new();
    let mut t = TextTable::new(
        "Planner tile configurations on the V100 (tiles x tile size, predicted wall ms)",
        "shape",
    );
    for (_, tag) in RUNG_DIGITS {
        t.col(tag);
    }
    for (rows, cols) in [(64, 64), (128, 128), (256, 256), (288, 256), (1024, 1024)] {
        let cells: Vec<String> = RUNG_DIGITS
            .iter()
            .map(|&(digits, _)| {
                let p = planner.plan(&gpu, rows, cols, digits);
                format!("{}x{} ({:.2} ms)", p.tiles, p.tile_size, p.predicted_ms)
            })
            .collect();
        t.row(format!("{rows}x{cols}"), cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_reaches_1_8x_at_two_devices() {
        // the acceptance bar of the pipeline issue, at every rung
        let gpu = Gpu::v100();
        let planner = Planner::new();
        for (digits, tag) in RUNG_DIGITS {
            let shapes = mixed_shapes(256, digits);
            let t1 = solves_per_sec(&gpu, 1, &shapes, &planner);
            let t2 = solves_per_sec(&gpu, 2, &shapes, &planner);
            assert!(t2 >= 1.8 * t1, "{tag}: 1→2 devices only {:.2}x", t2 / t1);
        }
    }

    #[test]
    fn tables_render() {
        assert!(throughput_scaling().render().contains("2d"));
        assert!(batch_size_sweep().render().contains("1024"));
        assert!(planner_choices().render().contains("x"));
    }

    #[test]
    fn planner_choices_differ_somewhere() {
        let gpu = Gpu::v100();
        let planner = Planner::new();
        let a = planner.plan(&gpu, 64, 64, 50);
        let b = planner.plan(&gpu, 1024, 1024, 50);
        assert_ne!((a.tiles, a.tile_size), (b.tiles, b.tile_size));
    }
}
