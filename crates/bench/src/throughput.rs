//! Pipeline throughput experiments: batch size × device count ×
//! precision sweeps over the batched solve service, plus the
//! greedy-vs-SECT dispatch-policy A/B.
//!
//! All runs are model-only — the scheduler books each job's modeled
//! wall clock onto its device's simulated clock, which is exact for the
//! functional solver too (the analytic model is data independent), so
//! these sweeps scale to paper-sized dimensions instantly.

use gpusim::Gpu;
use mdls_pipeline::{
    schedule, schedule_groups, workload_mix, DevicePool, DispatchPolicy, JobShape,
    MicrobatchConfig, Planner,
};

use crate::tables::TextTable;

/// Decimal-digit targets landing on the 2d / 4d / 8d rungs.
const RUNG_DIGITS: [(u32, &str); 3] = [(25, "2d"), (50, "4d"), (100, "8d")];

/// A mixed-shape queue: power-flow-scaled square and tall systems.
fn mixed_shapes(count: usize, target_digits: u32) -> Vec<JobShape> {
    (0..count)
        .map(|i| {
            let cols = [64, 96, 128, 256][i % 4];
            JobShape {
                rows: cols + [0, 32][i % 2],
                cols,
                target_digits,
            }
        })
        .collect()
}

fn solves_per_sec(gpu: &Gpu, devices: usize, shapes: &[JobShape], planner: &Planner) -> f64 {
    let mut pool = DevicePool::homogeneous(gpu, devices);
    schedule(&mut pool, planner, shapes, DispatchPolicy::LeastLoaded);
    pool.solves_per_sec()
}

/// Throughput scaling: simulated solves/sec of a 256-job mixed queue on
/// 1, 2, 4 and 8 pooled V100s, per precision rung.
pub fn throughput_scaling() -> TextTable {
    let gpu = Gpu::v100();
    let planner = Planner::new();
    let mut t = TextTable::new(
        "Pipeline throughput: 256 mixed jobs (64..256 cols) on pooled V100s, \
         simulated solves/sec (speedup vs 1 device)",
        "precision",
    );
    for d in [1usize, 2, 4, 8] {
        t.col(format!("{d} dev"));
    }
    for (digits, tag) in RUNG_DIGITS {
        let shapes = mixed_shapes(256, digits);
        let rates: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&d| solves_per_sec(&gpu, d, &shapes, &planner))
            .collect();
        let base = rates[0];
        let cells: Vec<String> = rates
            .iter()
            .map(|s| format!("{s:.1} ({:.2}x)", s / base))
            .collect();
        t.row(tag, cells);
    }
    t
}

/// Batch-depth sweep: solves/sec of quad double queues of growing depth
/// on four pooled V100s — shallow queues underfill the pool.
pub fn batch_size_sweep() -> TextTable {
    let gpu = Gpu::v100();
    let planner = Planner::new();
    let mut t = TextTable::new(
        "Pipeline batch-depth sweep: quad double jobs on 4 pooled V100s",
        "batch size",
    );
    t.col("solves/sec").col("makespan ms").col("pool util");
    for depth in [4usize, 16, 64, 256, 1024] {
        let shapes = mixed_shapes(depth, 50);
        let mut pool = DevicePool::homogeneous(&gpu, 4);
        schedule(&mut pool, &planner, &shapes, DispatchPolicy::LeastLoaded);
        let util: f64 = pool.stats().iter().map(|s| s.utilization).sum::<f64>() / pool.len() as f64;
        t.row(
            format!("{depth}"),
            vec![
                format!("{:.1}", pool.solves_per_sec()),
                format!("{:.1}", pool.makespan_ms()),
                format!("{:.0}%", 100.0 * util),
            ],
        );
    }
    t
}

/// Planner choices: the staged plan the search picks per job shape and
/// rung on the V100 — structure (direct vs refinement, factor tiling)
/// plus predicted wall clock.
pub fn planner_choices() -> TextTable {
    let gpu = Gpu::v100();
    let planner = Planner::new();
    let mut t = TextTable::new(
        "Planner execution plans on the V100 (structure, predicted wall ms)",
        "shape",
    );
    for (_, tag) in RUNG_DIGITS {
        t.col(tag);
    }
    for (rows, cols) in [(64, 64), (128, 128), (256, 256), (288, 256), (1024, 1024)] {
        let cells: Vec<String> = RUNG_DIGITS
            .iter()
            .map(|&(digits, _)| {
                let p = planner.plan(&gpu, rows, cols, digits);
                format!("{} ({:.2} ms)", p.summary(), p.predicted_ms)
            })
            .collect();
        t.row(format!("{rows}x{cols}"), cells);
    }
    t
}

/// Direct-vs-refinement A/B: for each shape and digit target, the
/// cheapest single-rung direct plan against the searched staged plan,
/// on the V100 reference. The paper's premise in one table: each rung
/// multiplies the cost of every flop, so factoring at a cheap rung and
/// buying the digits back with O(m·n) residual/correct passes beats
/// paying the deep-rung O(m·n²) factorization — increasingly so as the
/// dimension grows and the factorization dominates.
pub fn refinement_ab() -> TextTable {
    let gpu = Gpu::v100();
    let planner = Planner::new();
    let mut t = TextTable::new(
        "Direct-vs-refinement A/B on the V100: predicted wall ms \
         (plan structure), searched plan gain",
        "shape, target",
    );
    t.col("direct").col("searched").col("gain");
    for (rows, cols, digits) in [
        (128, 128, 25),
        (256, 256, 50),
        (512, 512, 50),
        (1024, 1024, 50),
        (1024, 1024, 100),
    ] {
        let direct = planner.plan_direct(&gpu, rows, cols, digits);
        let plan = planner.plan(&gpu, rows, cols, digits);
        t.row(
            format!("{rows}x{cols} d{digits}"),
            vec![
                format!("{:.2} ({})", direct.predicted_ms, direct.summary()),
                format!("{:.2} ({})", plan.predicted_ms, plan.summary()),
                format!(
                    "{:+.1}%",
                    100.0 * (direct.predicted_ms - plan.predicted_ms) / direct.predicted_ms
                ),
            ],
        );
    }
    t
}

/// The small-shape grid of the micro-batching A/B: the paper's
/// tracker-mix sizes at the d and dd rungs (where one solve most badly
/// underfills a device), plus a 4d row to show the win fade as the
/// arithmetic deepens and a big-shape row to show it vanish once a
/// single solve already fills the waves.
const MICROBATCH_SHAPES: [(usize, u32, &str); 8] = [
    (32, 12, "1d"),
    (64, 12, "1d"),
    (128, 12, "1d"),
    (32, 25, "2d"),
    (64, 25, "2d"),
    (128, 25, "2d"),
    (128, 50, "4d"),
    (1024, 25, "2d"),
];

/// Fused-vs-singleton A/B: per-job predicted cost of small QR solves,
/// singleton launches against a fused group at the occupancy-aware
/// preferred size, on the V100. The speedup is the device-level
/// micro-batching win: one grid carries the whole group, occupancy
/// climbs out of the wave-quantization floor, and per-launch constants
/// amortize across members.
pub fn microbatch_ab() -> TextTable {
    let gpu = Gpu::v100();
    let planner = Planner::new();
    // measure exactly the configuration solve_batch_fused ships with
    let cfg = MicrobatchConfig::default();
    let mut t = TextTable::new(
        "Micro-batching A/B on the V100: per-job predicted wall ms, \
         singleton launches vs fused group at the preferred size",
        "shape, rung",
    );
    t.col("singleton").col("fused").col("group").col("speedup");
    for (n, digits, tag) in MICROBATCH_SHAPES {
        let single = planner.plan(&gpu, n, n, digits);
        let k = planner.preferred_group_size(n, n, digits, cfg.max_group, cfg.tolerance);
        let (_, fused) = planner.plan_fused(&gpu, n, n, digits, k);
        t.row(
            format!("{n}x{n} {tag}"),
            vec![
                format!("{:.4}", single.predicted_ms),
                format!("{:.4}", fused.per_job_ms()),
                format!("x{k}"),
                format!("{:.1}x", single.predicted_ms / fused.per_job_ms()),
            ],
        );
    }
    t
}

/// Queue-level micro-batching A/B: solves/sec of a small-shape queue
/// (the tracker mix's 32..128-unknown systems at d/dd rungs) over
/// pooled V100s, scheduled unfused vs micro-batched. The fused
/// schedule books grouped launch sequences, so the same pool clears
/// the queue several times over.
pub fn microbatch_queue_ab(jobs: usize) -> TextTable {
    let shapes: Vec<JobShape> = (0..jobs)
        .map(|i| {
            let cols = [32, 64, 96, 128][i % 4];
            JobShape {
                rows: cols,
                cols,
                target_digits: [12, 25][i % 2],
            }
        })
        .collect();
    let mut t = TextTable::new(
        format!(
            "Micro-batched queue throughput: {jobs} small jobs \
             (32..128 cols, 1d/2d) on pooled V100s, solves/sec"
        ),
        "devices",
    );
    t.col("unfused").col("fused").col("gain");
    for devices in [1usize, 2, 4] {
        let planner = Planner::new();
        let mut plain = DevicePool::homogeneous(&Gpu::v100(), devices);
        schedule(&mut plain, &planner, &shapes, DispatchPolicy::LeastLoaded);
        let mut micro = DevicePool::homogeneous(&Gpu::v100(), devices);
        schedule_groups(
            &mut micro,
            &planner,
            &shapes,
            DispatchPolicy::LeastLoaded,
            &MicrobatchConfig::default(),
        );
        t.row(
            format!("{devices}"),
            vec![
                format!("{:.1}", plain.solves_per_sec()),
                format!("{:.1}", micro.solves_per_sec()),
                format!("{:.1}x", micro.solves_per_sec() / plain.solves_per_sec()),
            ],
        );
    }
    t
}

/// The named pools of the dispatch-policy A/B: one homogeneous control
/// (any SECT gain there comes from LPT ordering alone, not from
/// device awareness) and two mixed pools of increasing speed spread.
fn ab_pools() -> Vec<(&'static str, Vec<Gpu>)> {
    vec![
        ("4x V100", vec![Gpu::v100(); 4]),
        ("2x V100 + 2x P100", {
            vec![Gpu::v100(), Gpu::v100(), Gpu::p100(), Gpu::p100()]
        }),
        (
            "V100 + P100 + A100",
            vec![Gpu::v100(), Gpu::p100(), Gpu::a100()],
        ),
    ]
}

/// Makespan of `shapes` over `gpus` under `policy`, ms.
pub fn policy_makespan(gpus: &[Gpu], shapes: &[JobShape], policy: DispatchPolicy) -> f64 {
    let planner = Planner::new();
    let mut pool = DevicePool::new(gpus.to_vec());
    schedule(&mut pool, &planner, shapes, policy);
    pool.makespan_ms()
}

/// Greedy-vs-SECT A/B: makespan of the workload mix under both dispatch
/// policies on homogeneous and heterogeneous pools. On identical
/// devices SECT's LPT ordering can only help a little; on mixed pools
/// SECT stops parking long deep-precision solves on the slowest idle
/// device and wins outright. The gap is widest at service-window
/// depths (tens of jobs in flight): as the queue grows unboundedly
/// both heuristics approach the pool's capacity bound and the policy
/// choice recedes into the tail.
pub fn policy_ab(jobs: usize) -> TextTable {
    let shapes = workload_mix(jobs);
    let mut t = TextTable::new(
        format!(
            "Dispatch-policy A/B: {jobs}-job workload mix (32..256 cols, 1d..8d), \
             makespan ms by pool"
        ),
        "pool",
    );
    t.col("greedy").col("sect").col("sect gain");
    for (name, gpus) in ab_pools() {
        let greedy = policy_makespan(&gpus, &shapes, DispatchPolicy::LeastLoaded);
        let sect = policy_makespan(&gpus, &shapes, DispatchPolicy::ShortestExpectedCompletion);
        t.row(
            name,
            vec![
                format!("{greedy:.1}"),
                format!("{sect:.1}"),
                format!("{:+.1}%", 100.0 * (greedy - sect) / greedy),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_reaches_1_8x_at_two_devices() {
        // the acceptance bar of the pipeline issue, at every rung
        let gpu = Gpu::v100();
        let planner = Planner::new();
        for (digits, tag) in RUNG_DIGITS {
            let shapes = mixed_shapes(256, digits);
            let t1 = solves_per_sec(&gpu, 1, &shapes, &planner);
            let t2 = solves_per_sec(&gpu, 2, &shapes, &planner);
            assert!(t2 >= 1.8 * t1, "{tag}: 1→2 devices only {:.2}x", t2 / t1);
        }
    }

    #[test]
    fn tables_render() {
        assert!(throughput_scaling().render().contains("2d"));
        assert!(batch_size_sweep().render().contains("1024"));
        assert!(planner_choices().render().contains("x"));
        assert!(policy_ab(60).render().contains("sect"));
        assert!(refinement_ab().render().contains("direct"));
        assert!(microbatch_ab().render().contains("speedup"));
        assert!(microbatch_queue_ab(64).render().contains("fused"));
    }

    #[test]
    fn microbatching_doubles_small_shape_throughput() {
        // the acceptance bar of the micro-batching issue: >= 2x
        // predicted solves/sec on every small shape (32..128 unknowns)
        // at the d and dd rungs, fused vs per-job launches
        let gpu = Gpu::v100();
        let planner = Planner::new();
        // guard the shipped configuration, not a private tuning point
        let cfg = MicrobatchConfig::default();
        for (n, digits, tag) in MICROBATCH_SHAPES {
            if n > 128 || digits > 25 {
                continue; // the bar is for the small d/dd shapes
            }
            let single = planner.plan(&gpu, n, n, digits);
            let k = planner.preferred_group_size(n, n, digits, cfg.max_group, cfg.tolerance);
            let (_, fused) = planner.plan_fused(&gpu, n, n, digits, k);
            let speedup = single.predicted_ms / fused.per_job_ms();
            assert!(
                speedup >= 2.0,
                "{n}x{n} {tag}: fused x{k} only {speedup:.2}x"
            );
        }
        // and the queue-level schedule shows it end to end on one device
        let shapes: Vec<JobShape> = (0..128)
            .map(|i| {
                let cols = [32, 64, 96, 128][i % 4];
                JobShape {
                    rows: cols,
                    cols,
                    target_digits: [12, 25][i % 2],
                }
            })
            .collect();
        let mut plain = DevicePool::homogeneous(&gpu, 1);
        schedule(&mut plain, &planner, &shapes, DispatchPolicy::LeastLoaded);
        let mut micro = DevicePool::homogeneous(&gpu, 1);
        schedule_groups(
            &mut micro,
            &planner,
            &shapes,
            DispatchPolicy::LeastLoaded,
            &MicrobatchConfig::default(),
        );
        assert!(
            micro.solves_per_sec() >= 2.0 * plain.solves_per_sec(),
            "queue: fused {:.1}/s vs unfused {:.1}/s",
            micro.solves_per_sec(),
            plain.solves_per_sec()
        );
    }

    #[test]
    fn planner_choices_differ_somewhere() {
        let gpu = Gpu::v100();
        let planner = Planner::new();
        let a = planner.plan(&gpu, 64, 64, 50);
        let b = planner.plan(&gpu, 1024, 1024, 50);
        assert_ne!(a.stages, b.stages);
    }

    #[test]
    fn refinement_beats_direct_at_the_paper_dimension() {
        // the acceptance bar: at 1024 x 1024 with a quad double target
        // the searched plan factors at double double and refines, and
        // its predicted wall clock beats the direct quad double solve
        let gpu = Gpu::v100();
        let planner = Planner::new();
        let direct = planner.plan_direct(&gpu, 1024, 1024, 50);
        let plan = planner.plan(&gpu, 1024, 1024, 50);
        assert!(!plan.is_direct(), "search kept {}", plan.summary());
        assert!(
            plan.predicted_ms < direct.predicted_ms,
            "refinement {:.2} ms not under direct {:.2} ms",
            plan.predicted_ms,
            direct.predicted_ms
        );
        assert!(plan.predicted_digits >= 50);
    }

    #[test]
    fn sect_beats_greedy_on_the_mixed_ab_pool() {
        // the acceptance bar: ≥ 5% makespan gain on the mixed
        // 2x V100 + 2x P100 pool over the workload mix at
        // service-window depth, and no regression anywhere. (Before
        // staged plans the 5% bar also held on the 2-device V100+P100
        // pool; refinement compressed the cost spread between rungs —
        // an 8d job now costs a dd factorization plus a few cheap
        // passes instead of a full 8d factorization — so greedy's
        // worst case, a long deep job parked on the slow idle device,
        // simply hurts less. SECT must still never lose.)
        let shapes = workload_mix(60);
        let mixed4 = vec![Gpu::v100(), Gpu::v100(), Gpu::p100(), Gpu::p100()];
        let greedy = policy_makespan(&mixed4, &shapes, DispatchPolicy::LeastLoaded);
        let sect = policy_makespan(&mixed4, &shapes, DispatchPolicy::ShortestExpectedCompletion);
        assert!(
            sect <= 0.95 * greedy,
            "4 devices: SECT {sect:.1} ms not ≥5% under greedy {greedy:.1} ms"
        );
        for pool in [vec![Gpu::v100(), Gpu::p100()], vec![Gpu::v100(); 4]] {
            let g = policy_makespan(&pool, &shapes, DispatchPolicy::LeastLoaded);
            let s = policy_makespan(&pool, &shapes, DispatchPolicy::ShortestExpectedCompletion);
            assert!(
                s <= g * (1.0 + 1e-9),
                "{} devices: SECT {s:.1} ms regressed greedy {g:.1} ms",
                pool.len()
            );
        }
    }
}
