//! Functional verification at moderate dimensions: the simulator actually
//! executes every kernel and the residuals must land at the unit roundoff
//! of the working precision (paper §4.1: "all tests were run on well
//! conditioned problems, so the residuals … of the computed solution …
//! is of the expected accuracy").

use gpusim::{ExecMode, Gpu};
use mdls_backsub::{backsub, BacksubOptions};
use mdls_core::{lstsq, LstsqOptions};
use mdls_matrix::{vec_norm2, HostMat};
use mdls_qr::{qr_decompose, QrOptions};
use multidouble::{Complex, Dd, MdReal, MdScalar, Od, Qd};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One verification check.
pub struct Check {
    /// Human-readable description.
    pub name: String,
    /// Measured relative error.
    pub value: f64,
    /// Pass threshold.
    pub threshold: f64,
}

impl Check {
    /// Whether the check passed.
    pub fn pass(&self) -> bool {
        self.value < self.threshold
    }
}

fn lstsq_check<S: MdScalar>(name: &str, dim: usize, tiles: usize, thresh: f64, seed: u64) -> Check {
    let mut rng = StdRng::seed_from_u64(seed);
    let opts = LstsqOptions {
        tiles,
        tile_size: dim / tiles,
        mode: ExecMode::Parallel,
    };
    let a = HostMat::<S>::random(dim, dim, &mut rng);
    let xt: Vec<S> = mdls_matrix::random_vector(dim, &mut rng);
    let b = a.matvec(&xt);
    let run = lstsq(&Gpu::v100(), &a, &b, &opts);
    let res = a.residual(&run.x, &b).to_f64() / vec_norm2(&b).to_f64();
    Check {
        name: name.to_string(),
        value: res,
        threshold: thresh,
    }
}

fn qr_check<S: MdScalar>(name: &str, dim: usize, tiles: usize, thresh: f64, seed: u64) -> Check {
    let mut rng = StdRng::seed_from_u64(seed);
    let opts = QrOptions {
        tiles,
        tile_size: dim / tiles,
    };
    let a = HostMat::<S>::random(dim, dim, &mut rng);
    let run = qr_decompose(&Gpu::v100(), ExecMode::Parallel, &a, &opts);
    let q = run.q.unwrap();
    Check {
        name: name.to_string(),
        value: q.orthogonality_defect().to_f64(),
        threshold: thresh,
    }
}

fn bs_check<S: MdScalar>(name: &str, tiles: usize, tile: usize, thresh: f64, seed: u64) -> Check {
    let mut rng = StdRng::seed_from_u64(seed);
    let opts = BacksubOptions {
        tiles,
        tile_size: tile,
    };
    let dim = opts.dim();
    let u = mdls_matrix::well_conditioned_upper::<S, _>(dim, &mut rng);
    let xt: Vec<S> = mdls_matrix::random_vector(dim, &mut rng);
    let b = u.matvec(&xt);
    let run = backsub(&Gpu::v100(), ExecMode::Parallel, &u, &b, &opts);
    let x = run.x.unwrap();
    let res = u.residual(&x, &b).to_f64() / vec_norm2(&b).to_f64();
    Check {
        name: name.to_string(),
        value: res,
        threshold: thresh,
    }
}

/// Run the full functional verification suite.
pub fn run_all() -> Vec<Check> {
    vec![
        lstsq_check::<f64>("least squares 1d, dim 64 (4x16)", 64, 4, 1e-12, 1),
        lstsq_check::<Dd>("least squares 2d, dim 64 (4x16)", 64, 4, 1e-27, 2),
        lstsq_check::<Qd>("least squares 4d, dim 48 (4x12)", 48, 4, 1e-57, 3),
        lstsq_check::<Od>("least squares 8d, dim 16 (2x8)", 16, 2, 1e-116, 4),
        lstsq_check::<Complex<Dd>>("least squares complex 2d, dim 32 (2x16)", 32, 2, 1e-26, 5),
        qr_check::<Dd>("QR orthogonality 2d, dim 64 (4x16)", 64, 4, 1e-27, 6),
        qr_check::<Qd>("QR orthogonality 4d, dim 32 (2x16)", 32, 2, 1e-57, 7),
        qr_check::<Complex<Qd>>(
            "QR orthogonality complex 4d, dim 24 (2x12)",
            24,
            2,
            1e-56,
            8,
        ),
        bs_check::<Dd>("back substitution 2d, dim 128 (8x16)", 8, 16, 1e-26, 9),
        bs_check::<Qd>("back substitution 4d, dim 96 (6x16)", 6, 16, 1e-55, 10),
        bs_check::<Od>("back substitution 8d, dim 32 (4x8)", 4, 8, 1e-112, 11),
    ]
}

/// Render the verification report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str("Functional verification (simulator executes every kernel; relative residuals)\n");
    let checks = run_all();
    let mut all_ok = true;
    for c in &checks {
        all_ok &= c.pass();
        out.push_str(&format!(
            "  [{}] {:<46} {:>10.3e}  (< {:.0e})\n",
            if c.pass() { "PASS" } else { "FAIL" },
            c.name,
            c.value,
            c.threshold
        ));
    }
    out.push_str(if all_ok {
        "all checks passed\n"
    } else {
        "SOME CHECKS FAILED\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spot_check_dd_lstsq() {
        let c = lstsq_check::<Dd>("dd", 32, 2, 1e-27, 99);
        assert!(c.pass(), "{} = {:e}", c.name, c.value);
    }
}
