//! Generators for Tables 1–11.

use gpusim::{Gpu, Profile};
use mdls_backsub::{backsub_model_profile, BacksubOptions};
use mdls_core::{lstsq_model_profiles, LstsqOptions};
use mdls_qr::{qr_model_profile, QrOptions};
use multidouble::{
    complex::Complex,
    cost::{paper_real_cost, predicted_overhead_factor},
    count::{measure_dd, measure_od, measure_qd, MeasuredCosts},
    Dd, Od, Qd,
};

use crate::tables::{fmt_gf, fmt_ratio, TextTable};

/// The four working precisions of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Prec {
    /// Hardware double.
    D1,
    /// Double double.
    D2,
    /// Quad double.
    D4,
    /// Octo double.
    D8,
}

impl Prec {
    /// The paper's tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Prec::D1 => "1d",
            Prec::D2 => "2d",
            Prec::D4 => "4d",
            Prec::D8 => "8d",
        }
    }

    /// All four, in table order.
    pub fn all() -> [Prec; 4] {
        [Prec::D1, Prec::D2, Prec::D4, Prec::D8]
    }

    /// The three multiple double precisions.
    pub fn multi() -> [Prec; 3] {
        [Prec::D2, Prec::D4, Prec::D8]
    }
}

/// Model-only QR profile at a given precision.
pub fn qr_profile(gpu: &Gpu, prec: Prec, rows: usize, tiles: usize, tile: usize) -> Profile {
    let opts = QrOptions {
        tiles,
        tile_size: tile,
    };
    match prec {
        Prec::D1 => qr_model_profile::<f64>(gpu, rows, &opts),
        Prec::D2 => qr_model_profile::<Dd>(gpu, rows, &opts),
        Prec::D4 => qr_model_profile::<Qd>(gpu, rows, &opts),
        Prec::D8 => qr_model_profile::<Od>(gpu, rows, &opts),
    }
}

/// Model-only complex QR profile (double double only is what Table 5 uses,
/// but any precision works).
pub fn qr_profile_complex(
    gpu: &Gpu,
    prec: Prec,
    rows: usize,
    tiles: usize,
    tile: usize,
) -> Profile {
    let opts = QrOptions {
        tiles,
        tile_size: tile,
    };
    match prec {
        Prec::D1 => qr_model_profile::<Complex<f64>>(gpu, rows, &opts),
        Prec::D2 => qr_model_profile::<Complex<Dd>>(gpu, rows, &opts),
        Prec::D4 => qr_model_profile::<Complex<Qd>>(gpu, rows, &opts),
        Prec::D8 => qr_model_profile::<Complex<Od>>(gpu, rows, &opts),
    }
}

/// Model-only back substitution profile.
pub fn bs_profile(gpu: &Gpu, prec: Prec, tiles: usize, tile: usize) -> Profile {
    let opts = BacksubOptions {
        tiles,
        tile_size: tile,
    };
    match prec {
        Prec::D1 => backsub_model_profile::<f64>(gpu, &opts),
        Prec::D2 => backsub_model_profile::<Dd>(gpu, &opts),
        Prec::D4 => backsub_model_profile::<Qd>(gpu, &opts),
        Prec::D8 => backsub_model_profile::<Od>(gpu, &opts),
    }
}

/// Model-only least squares profiles `(qr, bs)`.
pub fn lstsq_profiles(gpu: &Gpu, prec: Prec, tiles: usize, tile: usize) -> (Profile, Profile) {
    let opts = LstsqOptions {
        tiles,
        tile_size: tile,
        mode: gpusim::ExecMode::ModelOnly,
    };
    match prec {
        Prec::D1 => lstsq_model_profiles::<f64>(gpu, &opts),
        Prec::D2 => lstsq_model_profiles::<Dd>(gpu, &opts),
        Prec::D4 => lstsq_model_profiles::<Qd>(gpu, &opts),
        Prec::D8 => lstsq_model_profiles::<Od>(gpu, &opts),
    }
}

/// Append the nine QR stage rows plus the four summary rows.
pub fn qr_stage_rows(t: &mut TextTable, profiles: &[Profile]) {
    for stage in mdls_qr::STAGES {
        let vals: Vec<f64> = profiles
            .iter()
            .map(|p| p.stage(stage).map(|s| s.kernel_ms).unwrap_or(0.0))
            .collect();
        t.row_ms(stage, &vals);
    }
    t.row_ms(
        "all kernels",
        &profiles
            .iter()
            .map(|p| p.all_kernels_ms())
            .collect::<Vec<_>>(),
    );
    t.row_ms(
        "wall clock",
        &profiles.iter().map(|p| p.wall_ms()).collect::<Vec<_>>(),
    );
    t.row(
        "kernel flops",
        profiles.iter().map(|p| fmt_gf(p.kernel_gflops())).collect(),
    );
    t.row(
        "wall flops",
        profiles.iter().map(|p| fmt_gf(p.wall_gflops())).collect(),
    );
}

/// Append the back substitution stage rows (Table 7–9 legend).
pub fn bs_stage_rows(t: &mut TextTable, profiles: &[Profile]) {
    for stage in [
        mdls_backsub::STAGE_INVERT,
        mdls_backsub::STAGE_MULTIPLY,
        mdls_backsub::STAGE_UPDATE,
    ] {
        let vals: Vec<f64> = profiles
            .iter()
            .map(|p| p.stage(stage).map(|s| s.kernel_ms).unwrap_or(0.0))
            .collect();
        t.row_ms(stage, &vals);
    }
    t.row_ms(
        "time spent by kernels",
        &profiles
            .iter()
            .map(|p| p.all_kernels_ms())
            .collect::<Vec<_>>(),
    );
    t.row_ms(
        "wall clock time",
        &profiles.iter().map(|p| p.wall_ms()).collect::<Vec<_>>(),
    );
    t.row(
        "kernel time flops",
        profiles.iter().map(|p| fmt_gf(p.kernel_gflops())).collect(),
    );
    t.row(
        "wall clock flops",
        profiles.iter().map(|p| fmt_gf(p.wall_gflops())).collect(),
    );
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Table 1: operational counts — paper tallies next to the counts
/// measured by instrumenting this crate's arithmetic under both
/// `two_prod` conventions.
pub fn table1() -> TextTable {
    let mut t = TextTable::new(
        "Table 1 — double-precision operations per multiple double operation\n\
         (paper = CAMPARY tallies; split = this crate, Dekker two_prod; fma = this crate, FMA two_prod)",
        "op",
    );
    t.col("paper").col("split").col("fma");
    type CostField = fn(&multidouble::cost::OpCost) -> f64;
    let rows: [(&str, MeasuredCosts, CostField); 3] = [
        ("dd", measure_dd(), |c| c.add),
        ("qd", measure_qd(), |c| c.add),
        ("od", measure_od(), |c| c.add),
    ];
    for (tag, m, _) in rows {
        let limbs = m.limbs;
        let paper = paper_real_cost(limbs);
        t.row(
            format!("{tag} add"),
            vec![
                format!("{:.0}", paper.add),
                m.add.split.to_string(),
                m.add.fma.to_string(),
            ],
        );
        t.row(
            format!("{tag} mul"),
            vec![
                format!("{:.0}", paper.mul),
                m.mul.split.to_string(),
                m.mul.fma.to_string(),
            ],
        );
        t.row(
            format!("{tag} div"),
            vec![
                format!("{:.0}", paper.div),
                m.div.split.to_string(),
                m.div.fma.to_string(),
            ],
        );
        let avg_split = (m.add.split + m.mul.split + m.div.split) as f64 / 3.0;
        let avg_fma = (m.add.fma + m.mul.fma + m.div.fma) as f64 / 3.0;
        t.row(
            format!("{tag} average"),
            vec![
                format!("{:.1}", paper.average()),
                format!("{avg_split:.1}"),
                format!("{avg_fma:.1}"),
            ],
        );
    }
    t.row(
        "pred. 2d->4d",
        vec![
            fmt_ratio(predicted_overhead_factor(2, 4)),
            String::from("-"),
            String::from("-"),
        ],
    );
    t.row(
        "pred. 4d->8d",
        vec![
            fmt_ratio(predicted_overhead_factor(4, 8)),
            String::from("-"),
            String::from("-"),
        ],
    );
    t
}

/// Table 2: the five GPUs.
pub fn table2() -> TextTable {
    let mut t = TextTable::new("Table 2 — NVIDIA GPU characteristics", "NVIDIA GPU");
    t.col("CUDA")
        .col("#MP")
        .col("#cores/MP")
        .col("#cores")
        .col("GHz")
        .col("host CPU")
        .col("host GHz")
        .col("peak DP GF")
        .col("BW GB/s");
    for g in Gpu::all() {
        t.row(
            g.name,
            vec![
                g.cuda_capability.to_string(),
                g.multiprocessors.to_string(),
                g.cores_per_mp.to_string(),
                g.cores().to_string(),
                format!("{:.2}", g.ghz),
                g.host_cpu.to_string(),
                format!("{:.2}", g.host_ghz),
                format!("{:.0}", g.peak_dp_gflops),
                format!("{:.0}", g.mem_bw_gbs),
            ],
        );
    }
    t
}

/// Table 3: double double QR of a 1,024 × 1,024 matrix, 8 tiles of 128,
/// on all five GPUs.
pub fn table3() -> TextTable {
    let mut t = TextTable::new(
        "Table 3 — blocked Householder QR, double double, 1024x1024, 8 tiles of 128 (ms / gigaflops)",
        "stage",
    );
    let gpus = Gpu::all();
    let mut profiles = Vec::new();
    for g in &gpus {
        t.col(g.name);
        profiles.push(qr_profile(g, Prec::D2, 1024, 8, 128));
    }
    qr_stage_rows(&mut t, &profiles);
    t
}

/// Table 4: QR 1024 × 1024 in all four precisions on the RTX 2080, P100
/// and V100. Returns one table per device plus the observed overhead
/// factors.
pub fn table4() -> Vec<TextTable> {
    let mut out = Vec::new();
    for g in Gpu::sweep_trio() {
        let mut t = TextTable::new(
            format!(
                "Table 4 — blocked Householder QR 1024x1024, 8 tiles of 128, on the {} (ms / gigaflops)",
                g.name
            ),
            "stage",
        );
        let mut profiles = Vec::new();
        for p in Prec::all() {
            t.col(p.tag());
            profiles.push(qr_profile(&g, p, 1024, 8, 128));
        }
        qr_stage_rows(&mut t, &profiles);
        let k2 = profiles[1].all_kernels_ms();
        let k4 = profiles[2].all_kernels_ms();
        let k8 = profiles[3].all_kernels_ms();
        t.row(
            "overhead 2d->4d",
            vec!["-".into(), "-".into(), fmt_ratio(k4 / k2), "-".into()],
        );
        t.row(
            "overhead 4d->8d",
            vec!["-".into(), "-".into(), "-".into(), fmt_ratio(k8 / k4)],
        );
        out.push(t);
    }
    out
}

/// Table 5: real versus complex double double QR at dimension 512 for
/// tile shapes 16x32, 8x64, 4x128, 2x256 on the V100.
pub fn table5() -> Vec<TextTable> {
    let v100 = Gpu::v100();
    let shapes = [(16usize, 32usize), (8, 64), (4, 128), (2, 256)];
    let mut out = Vec::new();
    for (complex, label) in [(false, "real"), (true, "complex")] {
        let mut t = TextTable::new(
            format!(
                "Table 5 — double double QR on {label} matrices of dimension 512, V100 (ms / gigaflops)"
            ),
            "stage",
        );
        let mut profiles = Vec::new();
        for (tiles, tile) in shapes {
            t.col(format!("{tiles}x{tile}"));
            profiles.push(if complex {
                qr_profile_complex(&v100, Prec::D2, 512, tiles, tile)
            } else {
                qr_profile(&v100, Prec::D2, 512, tiles, tile)
            });
        }
        qr_stage_rows(&mut t, &profiles);
        out.push(t);
    }
    out
}

/// Table 6: QR in 2d/4d/8d at dimensions 512..2048 (k x 128) on the V100.
pub fn table6() -> Vec<TextTable> {
    let v100 = Gpu::v100();
    let dims = [(512usize, 4usize), (1024, 8), (1536, 12), (2048, 16)];
    let mut out = Vec::new();
    for p in Prec::multi() {
        let mut t = TextTable::new(
            format!(
                "Table 6 — blocked Householder QR, {} precision, V100 (ms / gigaflops)",
                p.tag()
            ),
            "stage",
        );
        let mut profiles = Vec::new();
        for (dim, tiles) in dims {
            t.col(format!("{dim} = {tiles}x128"));
            profiles.push(qr_profile(&v100, p, dim, tiles, 128));
        }
        qr_stage_rows(&mut t, &profiles);
        out.push(t);
    }
    out
}

/// Table 7: back substitution in four precisions on the V100,
/// sizes 64x80, 128x80, 256x80 (od: 128x160 for the largest, shared
/// memory caps the tile size at 128 in octo double).
pub fn table7() -> Vec<TextTable> {
    let v100 = Gpu::v100();
    let mut out = Vec::new();
    for p in Prec::all() {
        let shapes: [(usize, usize); 3] = if p == Prec::D8 {
            [(64, 80), (128, 80), (128, 160)]
        } else {
            [(64, 80), (128, 80), (256, 80)]
        };
        let mut t = TextTable::new(
            format!(
                "Table 7 — back substitution, {} precision, V100 (ms / gigaflops)",
                p.tag()
            ),
            "stage",
        );
        let mut profiles = Vec::new();
        for (tile, tiles) in shapes {
            t.col(format!("{tile}x{tiles}"));
            profiles.push(bs_profile(&v100, p, tiles, tile));
        }
        bs_stage_rows(&mut t, &profiles);
        out.push(t);
    }
    out
}

/// Table 8: quad double back substitution at dimension 20480 for three
/// tilings on the V100.
pub fn table8() -> TextTable {
    let v100 = Gpu::v100();
    let mut t = TextTable::new(
        "Table 8 — back substitution, quad double, dimension 20480 = N x n, V100 (ms / gigaflops)",
        "stage",
    );
    let mut profiles = Vec::new();
    for (tiles, tile) in [(320usize, 64usize), (160, 128), (80, 256)] {
        t.col(format!("{tiles}x{tile}"));
        profiles.push(bs_profile(&v100, Prec::D4, tiles, tile));
    }
    bs_stage_rows(&mut t, &profiles);
    t
}

/// Table 9: tiled back substitution in quad double, N = 80 tiles of
/// n = 32..256, on the RTX 2080, P100 and V100.
pub fn table9() -> Vec<TextTable> {
    let mut out = Vec::new();
    for g in Gpu::sweep_trio() {
        let mut t = TextTable::new(
            format!(
                "Table 9 — tiled back substitution, quad double, 80 tiles of n, on the {} (ms / gigaflops)",
                g.name
            ),
            "stage",
        );
        let mut profiles = Vec::new();
        for n in (32..=256).step_by(32) {
            t.col(n.to_string());
            profiles.push(bs_profile(&g, Prec::D4, 80, n));
        }
        bs_stage_rows(&mut t, &profiles);
        out.push(t);
    }
    out
}

/// Table 10: arithmetic intensity and kernel flops of the quad double
/// back substitution on the V100 (the Figure 5 data).
pub fn table10() -> TextTable {
    let v100 = Gpu::v100();
    let mut t = TextTable::new(
        "Table 10 — arithmetic intensity (flops/byte) and kernel flops (GF), qd back substitution, V100\n\
         (byte convention: modeled global traffic of all kernels; see EXPERIMENTS.md)",
        "n",
    );
    t.col("intensity").col("kernel flops");
    for n in (32..=256).step_by(32) {
        let p = bs_profile(&v100, Prec::D4, 80, n);
        let pt = gpusim::roofline::RooflinePoint::from_profile(n, &p);
        t.row(
            n.to_string(),
            vec![format!("{:.2}", pt.intensity), fmt_gf(pt.gflops)],
        );
    }
    t
}

/// Table 11: least squares solving of a 1,024 × 1,024 system, 8 tiles of
/// 128, in all four precisions on the RTX 2080, P100 and V100.
pub fn table11() -> Vec<TextTable> {
    let mut out = Vec::new();
    for g in Gpu::sweep_trio() {
        let mut t = TextTable::new(
            format!(
                "Table 11 — least squares, 1024x1024 system, 8 tiles of 128, on the {} (ms / gigaflops)",
                g.name
            ),
            "stage",
        );
        let mut data = Vec::new();
        for p in Prec::all() {
            t.col(p.tag());
            data.push(lstsq_profiles(&g, p, 8, 128));
        }
        t.row_ms(
            "QR kernel time",
            &data
                .iter()
                .map(|(q, _)| q.all_kernels_ms())
                .collect::<Vec<_>>(),
        );
        t.row_ms(
            "QR wall time",
            &data.iter().map(|(q, _)| q.wall_ms()).collect::<Vec<_>>(),
        );
        t.row_ms(
            "BS kernel time",
            &data
                .iter()
                .map(|(_, b)| b.all_kernels_ms())
                .collect::<Vec<_>>(),
        );
        t.row_ms(
            "BS wall time",
            &data.iter().map(|(_, b)| b.wall_ms()).collect::<Vec<_>>(),
        );
        t.row(
            "QR kernel flops",
            data.iter()
                .map(|(q, _)| fmt_gf(q.kernel_gflops()))
                .collect(),
        );
        t.row(
            "QR wall flops",
            data.iter().map(|(q, _)| fmt_gf(q.wall_gflops())).collect(),
        );
        t.row(
            "BS kernel flops",
            data.iter()
                .map(|(_, b)| fmt_gf(b.kernel_gflops()))
                .collect(),
        );
        t.row(
            "BS wall flops",
            data.iter().map(|(_, b)| fmt_gf(b.wall_gflops())).collect(),
        );
        let totals: Vec<(f64, f64)> = data
            .iter()
            .map(|(q, b)| {
                let mut total = q.clone();
                total.absorb(b);
                (total.kernel_gflops(), total.wall_gflops())
            })
            .collect();
        t.row(
            "total kernel flops",
            totals.iter().map(|(k, _)| fmt_gf(*k)).collect(),
        );
        t.row(
            "total wall flops",
            totals.iter().map(|(_, w)| fmt_gf(*w)).collect(),
        );
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_five_device_columns() {
        let t = table3();
        assert_eq!(t.col_headers.len(), 5);
        assert_eq!(t.rows.len(), 13); // 9 stages + 4 summary rows
    }

    #[test]
    fn qr_profiles_scale_with_precision() {
        let v = Gpu::v100();
        let d2 = qr_profile(&v, Prec::D2, 256, 2, 128).all_kernels_ms();
        let d4 = qr_profile(&v, Prec::D4, 256, 2, 128).all_kernels_ms();
        let d8 = qr_profile(&v, Prec::D8, 256, 2, 128).all_kernels_ms();
        assert!(d2 < d4 && d4 < d8);
    }

    #[test]
    fn complex_costs_about_4x_real() {
        let v = Gpu::v100();
        let re = qr_profile(&v, Prec::D2, 512, 4, 128);
        let cx = qr_profile_complex(&v, Prec::D2, 512, 4, 128);
        let ratio = cx.total_flops_paper() / re.total_flops_paper();
        assert!(ratio > 3.0 && ratio < 6.0, "complex/real flops = {ratio}");
    }
}
