//! Chaos experiments: seeded device-fault schedules against the
//! resilient batch engine, A/B-ing retry/re-dispatch recovery against
//! the fail-the-batch baseline.
//!
//! The fault schedule is **data**: one sticky loss (device 0 dies a
//! third of the way into the fault-free makespan) plus a seeded
//! transient schedule on device 1, both fixed before the run — every
//! invocation replays the same losses, retries and dispositions.
//! One job carries an unmeetable deadline so the admission path (shed)
//! shows up in the disposition taxonomy alongside the fault paths.

use std::sync::Arc;

use gpusim::{FaultPlan, Gpu};
use mdls_matrix::HostMat;
use mdls_obs::metrics::Metrics;
use mdls_obs::Recorder;
use mdls_pipeline::batch::Disposition;
use mdls_pipeline::{
    solve_batch_resilient, BatchReport, DevicePool, DispatchPolicy, Job, MicrobatchConfig,
    ResilienceConfig, StageSchedConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tables::TextTable;

/// Seed of the transient-fault schedule on device 1.
const TRANSIENT_SEED: u64 = 0xc4a05;
/// Mean gap between transients, simulated ms — a few per batch at the
/// smoke/bench job counts (small functional jobs finish in tens of
/// simulated ms).
const TRANSIENT_GAP_MS: f64 = 4.0;
/// Where in the fault-free makespan device 0 dies.
const LOSS_FRACTION: f64 = 1.0 / 3.0;

/// Functional chaos queue: well-conditioned diagonally dominant
/// systems at the dd rung; job 5 carries an unmeetable deadline so the
/// shed disposition appears in every arm.
pub fn chaos_jobs(count: usize, seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut jobs: Vec<Job> = (0..count as u64)
        .map(|id| {
            let n = [8usize, 10, 12][id as usize % 3];
            let a = HostMat::<f64>::from_fn(n, n, |r, c| {
                let u: f64 = multidouble::random::rand_real(&mut rng);
                u + if r == c { 4.0 } else { 0.0 }
            });
            let b: Vec<f64> = (0..n)
                .map(|_| multidouble::random::rand_real(&mut rng))
                .collect();
            Job::new(id, a, b, 25)
        })
        .collect();
    if jobs.len() > 5 {
        jobs[5].deadline_ms = Some(1.0e-6);
    }
    jobs
}

/// One chaos arm: a 4×V100 pool, the given fault schedule, the given
/// recovery configuration, every event recorded.
fn run_arm(jobs: &[Job], lost_at: Option<f64>, cfg: &ResilienceConfig) -> (BatchReport, Metrics) {
    let mut pool = DevicePool::homogeneous(&Gpu::v100(), 4);
    if let Some(t) = lost_at {
        pool.set_fault_plan(0, FaultPlan::none().with_device_lost(t));
        pool.set_fault_plan(
            1,
            FaultPlan::seeded(TRANSIENT_SEED, t * 3.0, TRANSIENT_GAP_MS),
        );
    }
    let recorder = Arc::new(Recorder::new());
    pool.attach_observer(recorder.clone());
    let report = solve_batch_resilient(
        &mut pool,
        jobs,
        DispatchPolicy::LeastLoaded,
        &MicrobatchConfig::default(),
        &StageSchedConfig::staged(),
        cfg,
    );
    (report, Metrics::from_events(&recorder.events()))
}

fn completion_rate(r: &BatchReport) -> f64 {
    r.outcomes
        .iter()
        .filter(|o| o.disposition.completed())
        .count() as f64
        / r.outcomes.len().max(1) as f64
}

fn count(r: &BatchReport, d: Disposition) -> usize {
    r.outcomes.iter().filter(|o| o.disposition == d).count()
}

/// The three arms on one shared fault schedule: fault-free reference,
/// fail-the-batch baseline, retry/re-dispatch recovery. The loss time
/// derives from the fault-free makespan, so each arm sees the same
/// mid-batch loss.
fn chaos_arms(jobs: &[Job]) -> Vec<(&'static str, BatchReport, Metrics)> {
    let (base, base_m) = run_arm(jobs, None, &ResilienceConfig::default());
    let t = base.makespan_ms * LOSS_FRACTION;
    let (failed, failed_m) = run_arm(jobs, Some(t), &ResilienceConfig::fail_all());
    let (recovered, recovered_m) = run_arm(jobs, Some(t), &ResilienceConfig::default());
    vec![
        ("fault-free", base, base_m),
        ("fail-all", failed, failed_m),
        ("retry/re-dispatch", recovered, recovered_m),
    ]
}

/// The chaos A/B table: completion rate, disposition taxonomy counts
/// and makespan overhead per arm, on one seeded fault schedule.
pub fn chaos_table(jobs: usize) -> TextTable {
    let queue = chaos_jobs(jobs, 0xc4a0);
    let arms = chaos_arms(&queue);
    let base_ms = arms[0].1.makespan_ms;
    let mut t = TextTable::new(
        format!(
            "Chaos A/B: {} dd jobs on 4 V100s, device 0 lost mid-batch + \
             seeded transients on device 1 (completion rate, dispositions, \
             makespan overhead vs fault-free)",
            queue.len()
        ),
        "arm",
    );
    t.col("completed")
        .col("retried")
        .col("shed")
        .col("failed")
        .col("refund ms")
        .col("makespan ms")
        .col("overhead");
    for (name, report, m) in &arms {
        let completed = report
            .outcomes
            .iter()
            .filter(|o| o.disposition.completed())
            .count();
        t.row(
            *name,
            vec![
                format!("{completed} / {}", report.outcomes.len()),
                format!("{}", count(report, Disposition::Retried)),
                format!("{}", count(report, Disposition::Shed)),
                format!("{}", count(report, Disposition::Failed)),
                format!("{:.1}", m.lost_refund_ms),
                format!("{:.1}", report.makespan_ms),
                if report.makespan_ms > 0.0 && base_ms > 0.0 {
                    format!("{:.2}x", report.makespan_ms / base_ms)
                } else {
                    "-".into()
                },
            ],
        );
    }
    t
}

/// Machine-readable chaos results (the `target/bench-chaos.json`
/// payload): one scenario per arm with completion rate, disposition
/// counts and the fault counters folded from the event stream.
pub fn chaos_json(jobs: usize) -> String {
    let queue = chaos_jobs(jobs, 0xc4a0);
    let scenarios: Vec<String> = chaos_arms(&queue)
        .iter()
        .map(|(name, report, m)| {
            format!(
                "{{\"name\":\"chaos_{}\",\"makespan_ms\":{:.6},\
                 \"completion_rate\":{:.6},\"retried\":{},\"shed\":{},\
                 \"failed\":{},\"devices_lost\":{},\"lost_refund_ms\":{:.6},\
                 \"transient_faults\":{},\"retries_booked\":{}}}",
                name.replace(['/', '-'], "_"),
                report.makespan_ms,
                completion_rate(report),
                count(report, Disposition::Retried),
                count(report, Disposition::Shed),
                count(report, Disposition::Failed),
                m.devices_lost,
                m.lost_refund_ms,
                m.transient_faults,
                m.retries_booked,
            )
        })
        .collect();
    format!("{{\"scenarios\":[{}]}}", scenarios.join(","))
}

/// The CI smoke contract: on a small seeded chaos schedule,
/// retry/re-dispatch must strictly beat fail-the-batch on completion
/// rate, lose no job itself, and the JSON payload must round-trip
/// through the reader. Returns a one-line summary on success.
pub fn chaos_smoke() -> Result<String, String> {
    let queue = chaos_jobs(16, 0xc4a0);
    let arms = chaos_arms(&queue);
    let (base, failed, recovered) = (&arms[0], &arms[1], &arms[2]);
    if !base
        .1
        .outcomes
        .iter()
        .all(|o| o.disposition.completed() || o.disposition == Disposition::Shed)
    {
        return Err("fault-free arm did not complete everything it admitted".into());
    }
    if count(&failed.1, Disposition::Failed) == 0 {
        return Err("fail-all arm lost nothing; the loss never bit".into());
    }
    if count(&recovered.1, Disposition::Failed) != 0 {
        return Err("recovery arm lost a job".into());
    }
    if count(&recovered.1, Disposition::Retried) == 0 {
        return Err("recovery arm retried nothing".into());
    }
    if completion_rate(&recovered.1) <= completion_rate(&failed.1) {
        return Err(format!(
            "recovery ({:.3}) did not strictly beat fail-all ({:.3}) on completion rate",
            completion_rate(&recovered.1),
            completion_rate(&failed.1)
        ));
    }
    if recovered.2.devices_lost != 1 || failed.2.devices_lost != 1 {
        return Err("each chaos arm must observe exactly one device loss".into());
    }
    if recovered.2.lost_refund_ms <= 0.0 {
        return Err("the loss refunded no booked time".into());
    }
    let doc = chaos_json(16);
    mdls_obs::json::parse(&doc).map_err(|e| format!("bench-chaos.json does not parse: {e}"))?;
    Ok(format!(
        "chaos smoke ok: recovery {:.0}% vs fail-all {:.0}% completion, \
         {} retried, {} shed, makespan overhead {:.2}x",
        completion_rate(&recovered.1) * 100.0,
        completion_rate(&failed.1) * 100.0,
        count(&recovered.1, Disposition::Retried),
        count(&recovered.1, Disposition::Shed),
        recovered.1.makespan_ms / base.1.makespan_ms.max(f64::MIN_POSITIVE),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_passes_and_json_is_complete() {
        let msg = chaos_smoke().expect("chaos smoke");
        assert!(msg.contains("recovery"));
        let doc = mdls_obs::json::parse(&chaos_json(12)).expect("chaos json parses");
        let scenarios = doc
            .get("scenarios")
            .and_then(mdls_obs::json::Json::as_arr)
            .expect("scenarios array");
        assert_eq!(scenarios.len(), 3);
        for s in scenarios {
            let ms = s
                .get("makespan_ms")
                .and_then(mdls_obs::json::Json::as_f64)
                .expect("scenario makespan");
            assert!(ms > 0.0);
            let rate = s
                .get("completion_rate")
                .and_then(mdls_obs::json::Json::as_f64)
                .expect("completion rate");
            assert!((0.0..=1.0).contains(&rate));
        }
    }
}
