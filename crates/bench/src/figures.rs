//! Text renderings of Figures 1–5 (2-logarithm bar charts and the
//! roofline scatter plot).

use gpusim::roofline::RooflinePoint;
use gpusim::Gpu;

use crate::experiments::{bs_profile, qr_profile, Prec};

/// A horizontal bar chart of `log2(value)`; one unit of height in the
/// paper's figures equals a doubling of the time.
pub fn log2_bar_chart(title: &str, entries: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let min_l2 = entries
        .iter()
        .map(|(_, v)| v.log2())
        .fold(f64::INFINITY, f64::min)
        .floor()
        .min(0.0);
    for (label, v) in entries {
        let l2 = v.log2();
        let bar = ((l2 - min_l2) * 3.0).round().max(1.0) as usize;
        out.push_str(&format!(
            "{label:<label_w$} |{} log2 = {l2:5.2}  ({v:.1} ms)\n",
            "#".repeat(bar)
        ));
    }
    out
}

/// Figure 1: log2 of all-kernels QR times at 1024, per device and
/// precision.
pub fn fig1() -> String {
    let mut entries = Vec::new();
    for g in Gpu::sweep_trio() {
        for p in [Prec::D2, Prec::D4, Prec::D8] {
            let prof = qr_profile(&g, p, 1024, 8, 128);
            entries.push((format!("{} {}", g.name, p.tag()), prof.all_kernels_ms()));
        }
    }
    log2_bar_chart(
        "Figure 1 — log2 of times spent by all kernels of QR, 1024x1024 (2d/4d/8d)",
        &entries,
    )
}

/// Figure 2: log2 of all-kernels QR times on the V100 for increasing
/// dimensions.
pub fn fig2() -> String {
    let v100 = Gpu::v100();
    let mut entries = Vec::new();
    for p in [Prec::D2, Prec::D4, Prec::D8] {
        for (dim, tiles) in [(512usize, 4usize), (1024, 8), (1536, 12), (2048, 16)] {
            let prof = qr_profile(&v100, p, dim, tiles, 128);
            entries.push((format!("{} dim {dim}", p.tag()), prof.all_kernels_ms()));
        }
    }
    log2_bar_chart(
        "Figure 2 — log2 of times spent by all kernels of QR on the V100, increasing dimensions",
        &entries,
    )
}

/// Figure 3: log2 of all-kernels back substitution times on the V100.
pub fn fig3() -> String {
    let v100 = Gpu::v100();
    let mut entries = Vec::new();
    for p in Prec::all() {
        let shapes: [(usize, usize); 3] = if p == Prec::D8 {
            [(64, 80), (128, 80), (128, 160)]
        } else {
            [(64, 80), (128, 80), (256, 80)]
        };
        for (tile, tiles) in shapes {
            let prof = bs_profile(&v100, p, tiles, tile);
            entries.push((
                format!("{} dim {}", p.tag(), tile * tiles),
                prof.all_kernels_ms(),
            ));
        }
    }
    log2_bar_chart(
        "Figure 3 — log2 of times spent by all kernels of back substitution on the V100",
        &entries,
    )
}

/// Figure 4: log2 of all-kernels qd back substitution times on the three
/// sweep devices, N = 80, n = 32..256.
pub fn fig4() -> String {
    let mut entries = Vec::new();
    for g in Gpu::sweep_trio() {
        for n in (32..=256).step_by(32) {
            let prof = bs_profile(&g, Prec::D4, 80, n);
            entries.push((format!("{} n={n}", g.name), prof.all_kernels_ms()));
        }
    }
    log2_bar_chart(
        "Figure 4 — log2 of times spent by all kernels, qd back substitution, 80 tiles",
        &entries,
    )
}

/// Figure 5: roofline scatter for the quad double back substitution on
/// the V100 (log-log axes).
pub fn fig5() -> String {
    let v100 = Gpu::v100();
    let points: Vec<RooflinePoint> = (32..=256)
        .step_by(32)
        .map(|n| RooflinePoint::from_profile(n, &bs_profile(&v100, Prec::D4, 80, n)))
        .collect();
    render_roofline(&v100, &points)
}

/// Render a roofline plot: `.` marks the roof, `*` the measured points.
pub fn render_roofline(gpu: &Gpu, points: &[RooflinePoint]) -> String {
    const W: usize = 64;
    const H: usize = 20;
    // x: log10 intensity in [-1, 4]; y: log10 gflops in [0, 4]
    let (x0, x1) = (-1.0f64, 4.0);
    let (y0, y1) = (0.0f64, 4.0);
    let xpix = |x: f64| (((x - x0) / (x1 - x0)) * (W as f64 - 1.0)).round() as isize;
    let ypix = |y: f64| (((y - y0) / (y1 - y0)) * (H as f64 - 1.0)).round() as isize;
    let mut grid = vec![vec![' '; W]; H];
    // the roof: min(peak, ai * bw)
    for px in 0..W {
        let ai = 10f64.powf(x0 + (x1 - x0) * px as f64 / (W as f64 - 1.0));
        let roof = (ai * gpu.mem_bw_gbs).min(gpu.peak_dp_gflops);
        let py = ypix(roof.log10());
        if (0..H as isize).contains(&py) {
            grid[H - 1 - py as usize][px] = '.';
        }
    }
    for p in points {
        let px = xpix(p.intensity.log10());
        let py = ypix(p.gflops.log10());
        if (0..W as isize).contains(&px) && (0..H as isize).contains(&py) {
            grid[H - 1 - py as usize][px as usize] = '*';
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 5 — roofline, qd back substitution on the {} (x: log10 flops/byte in [-1,4]; y: log10 GF in [0,4])\n",
        gpu.name
    ));
    out.push_str(&format!(
        "ridge point at {:.2} flops/byte; '.' = roof, '*' = measured (n = 32..256)\n",
        gpu.ridge_point()
    ));
    for row in grid {
        out.push('|');
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(W));
    out.push('\n');
    for p in points {
        out.push_str(&format!(
            "  n = {:>3}: AI = {:8.2} flops/byte, {:8.1} GF ({})\n",
            p.label,
            p.intensity,
            p.gflops,
            if p.compute_bound(gpu) {
                "compute bound"
            } else {
                "memory bound"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_monotone_in_value() {
        let s = log2_bar_chart("t", &[("a".into(), 100.0), ("b".into(), 800.0)]);
        let lines: Vec<&str> = s.lines().collect();
        let bars: Vec<usize> = lines[1..].iter().map(|l| l.matches('#').count()).collect();
        // 800 = 100 * 2^3: three more doublings -> longer bar
        assert!(bars[1] > bars[0]);
    }

    #[test]
    fn roofline_renders_points() {
        let v = Gpu::v100();
        let pts = vec![RooflinePoint {
            label: 64,
            intensity: 10.0,
            gflops: 500.0,
        }];
        let s = render_roofline(&v, &pts);
        assert!(s.contains('*'));
        assert!(s.contains("ridge point at 9.08"));
    }
}
