//! Sustained-load service bench: the multi-tenant shell under a
//! heterogeneous tenant mix with one adversarial burster, A/B-ing
//! weighted-fair scheduling against the FIFO baseline.
//!
//! The workload is **data**: every arrival time, shape, SLO class and
//! fault is derived from fixed seeds, so each invocation replays the
//! same bursts, sheds, quota exhaustions and breaker trips. The mix is
//! six tenants on a 4×V100 pool:
//!
//! * `premium`  — steady Premium stream, weight 4;
//! * `std-a`/`std-b` — steady Standard streams, weight 2;
//! * `batch`    — BestEffort trickle, weight 1;
//! * `metered`  — Standard stream behind a small refilling token
//!   bucket, so quota exhaustion shows up in the taxonomy;
//! * `burster`  — the adversary: BestEffort, weight 1, releasing its
//!   whole allotment in instantaneous waves against a bounded
//!   shed-oldest queue.
//!
//! Device 1 carries a seeded transient-fault schedule dense enough to
//! trip its circuit breaker, so quarantine → probe → re-admit cycles
//! run under load. Runs use the shell's model-only mode (numerics are
//! covered by `verify` and the pipeline test suites).

use std::sync::Arc;

use gpusim::{FaultPlan, Gpu};
use mdls_matrix::HostMat;
use mdls_obs::metrics::Metrics;
use mdls_obs::Recorder;
use mdls_pipeline::{
    serve, Backpressure, BreakerConfig, DevicePool, ExecutionMode, Job, OverloadConfig, Planner,
    ServiceConfig, ServicePolicy, ServiceReport, SloClass, TenantId, TenantSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tables::TextTable;

/// Seed of the job-matrix entries.
const JOB_SEED: u64 = 0x5e41ce;
/// Seed of device 1's transient-fault schedule.
const TRANSIENT_SEED: u64 = 0xb4ea6e4;
/// Pool size: the paper's 4-GPU node.
const DEVICES: usize = 4;
/// Burster wave size: this many jobs land at one instant.
const WAVE: usize = 200;

pub struct ServiceWorkload {
    pub jobs: Vec<Job>,
    pub specs: Vec<TenantSpec>,
}

/// Build the seeded six-tenant workload. `count` is the total job
/// count across all tenants; arrival spacing is derived from the cost
/// model so the steady tenants offer ~75% of pool capacity and the
/// burster's waves push past it.
pub fn service_workload(count: usize) -> ServiceWorkload {
    let planner = Planner::new();
    let gpu = Gpu::v100();
    let c25 = planner.plan_fused(&gpu, 8, 8, 25, 1).1.predicted_ms;
    let c40 = planner.plan_fused(&gpu, 8, 8, 40, 1).1.predicted_ms;
    // steady cost per block of 10 jobs (8 steady + 2 burster):
    // 2×premium(40) + 3×std(25) + 1×std(40) + 1×batch(25) + 1×metered(25)
    let block_cost = 3.0 * c40 + 5.0 * c25;
    // block period sized so the steady streams use 75% of the pool
    let period = block_cost / (DEVICES as f64 * 0.75);
    // a burster wave lands every WAVE/2 blocks (2 burst jobs per block)
    let wave_gap = period * (WAVE / 2) as f64;

    let mut rng = StdRng::seed_from_u64(JOB_SEED);
    let mut jobs = Vec::with_capacity(count);
    for i in 0..count {
        let block = (i / 10) as f64;
        let (tenant, slo, digits, release) = match i % 10 {
            0 | 1 => (1, SloClass::Premium, 40, block * period),
            2..=4 => (2, SloClass::Standard, 25, block * period),
            5 => (3, SloClass::Standard, 40, (block + 0.5) * period),
            6 => (4, SloClass::BestEffort, 25, block * period),
            7 => (6, SloClass::Standard, 25, block * period),
            // the adversary: everything in instantaneous waves
            _ => (
                5,
                SloClass::BestEffort,
                25,
                (i / (WAVE * 5)) as f64 * wave_gap,
            ),
        };
        let n = 8;
        let a = HostMat::<f64>::from_fn(n, n, |r, c| {
            let u: f64 = multidouble::random::rand_real(&mut rng);
            u + if r == c { 4.0 } else { 0.0 }
        });
        let b: Vec<f64> = (0..n)
            .map(|_| multidouble::random::rand_real(&mut rng))
            .collect();
        jobs.push(
            Job::new(i as u64, a, b, digits)
                .with_tenant(TenantId(tenant))
                .with_slo(slo)
                .with_release_ms(release),
        );
    }
    let specs = vec![
        TenantSpec::new(TenantId(1), "premium")
            .with_weight(4)
            .with_queue(512, Backpressure::Block),
        TenantSpec::new(TenantId(2), "std-a")
            .with_weight(2)
            .with_queue(512, Backpressure::Block),
        TenantSpec::new(TenantId(3), "std-b")
            .with_weight(2)
            .with_queue(512, Backpressure::Block),
        TenantSpec::new(TenantId(4), "batch").with_queue(512, Backpressure::Block),
        // the burster gets a bounded shed-oldest queue: waves overflow
        // it and the overflow is shed at the door, not queued forever
        TenantSpec::new(TenantId(5), "burster").with_queue(WAVE / 2, Backpressure::ShedOldest),
        // a token bucket covering a burst of ~15 jobs, refilling at a
        // third of the tenant's steady spend (~30·c25/s at the
        // saturated pool's real block period): the bucket runs dry,
        // the tenant is metered down to its paid-for rate, and the
        // overflow starves
        TenantSpec::new(TenantId(6), "metered")
            .with_weight(2)
            .with_queue(512, Backpressure::Block)
            .with_quota(15.0 * c25, 10.0 * c25),
    ];
    ServiceWorkload { jobs, specs }
}

/// The service configuration both arms share: model-only execution,
/// overload thresholds derived from the cost model, and a breaker
/// tuned to trip on device 1's seeded transient schedule.
fn service_cfg(policy: ServicePolicy) -> ServiceConfig {
    let c25 = Planner::new()
        .plan_fused(&Gpu::v100(), 8, 8, 25, 1)
        .1
        .predicted_ms;
    ServiceConfig {
        policy,
        mode: ExecutionMode::ModelOnly,
        // degrade past ~60 queued jobs per device, shed past ~120
        overload: OverloadConfig::thresholds(60.0 * c25, 120.0 * c25),
        breaker: BreakerConfig {
            enabled: true,
            window_ms: 8.0 * c25,
            max_faults: 3,
            backoff_ms: 20.0 * c25,
        },
        ..ServiceConfig::default()
    }
}

/// One service arm. `observe` attaches a recorder and folds the event
/// stream into [`Metrics`] — skipped for the full-size bench, where
/// recording millions of events would dominate the run.
fn run_arm(w: &ServiceWorkload, policy: ServicePolicy, observe: bool) -> (ServiceReport, Metrics) {
    let mut pool = DevicePool::homogeneous(&Gpu::v100(), DEVICES);
    let horizon = w.jobs.iter().map(|j| j.release()).fold(0.0f64, f64::max) * 1.5 + 100.0;
    pool.set_fault_plan(
        1,
        FaultPlan::seeded(
            TRANSIENT_SEED,
            horizon,
            service_cfg(policy).breaker.window_ms / 8.0,
        ),
    );
    let recorder = observe.then(|| {
        let r = Arc::new(Recorder::new());
        pool.attach_observer(r.clone());
        r
    });
    let report = serve(&mut pool, &w.jobs, &w.specs, &service_cfg(policy));
    let metrics = recorder
        .map(|r| Metrics::from_events(&r.events()))
        .unwrap_or_default();
    (report, metrics)
}

/// The service A/B table: per-tenant completion/shed/degrade taxonomy
/// and latency tails under weighted-fair scheduling, with the FIFO
/// baseline's p99 alongside, plus a breaker row per quarantined
/// device.
pub fn service_table(count: usize) -> TextTable {
    let w = service_workload(count);
    let (fair, _) = run_arm(&w, ServicePolicy::WeightedFair, false);
    let (fifo, _) = run_arm(&w, ServicePolicy::Fifo, false);
    let mut t = TextTable::new(
        format!(
            "Service A/B: {} jobs, 6 tenants (burster waves of {}) on {} V100s — \
             weighted-fair vs FIFO (per-tenant taxonomy, turnaround tails, \
             breaker trips on the flaky device)",
            w.jobs.len(),
            WAVE,
            DEVICES
        ),
        "tenant",
    );
    t.col("submitted")
        .col("completed")
        .col("shed")
        .col("degraded")
        .col("quota dry")
        .col("p50 ms")
        .col("p99 ms")
        .col("p999 ms")
        .col("fifo p99 ms");
    for ts in &fair.tenants {
        let fifo_p99 = fifo
            .tenants
            .iter()
            .find(|f| f.tenant == ts.tenant)
            .map(|f| f.p99_ms)
            .unwrap_or(f64::NAN);
        t.row(
            ts.name,
            vec![
                format!("{}", ts.submitted),
                format!("{}", ts.completed),
                format!("{}", ts.shed),
                format!("{}", ts.degraded),
                format!("{}", ts.quota_exhaustions),
                format!("{:.3}", ts.p50_ms),
                format!("{:.3}", ts.p99_ms),
                format!("{:.3}", ts.p999_ms),
                format!("{:.3}", fifo_p99),
            ],
        );
    }
    for b in fair.breakers.iter().filter(|b| b.opens > 0) {
        t.row(
            "breaker",
            vec![
                format!("device {}", b.device),
                format!("opens {}", b.opens),
                format!("probes {}", b.probes),
                format!("closes {}", b.closes),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ],
        );
    }
    t
}

/// Machine-readable service results (the `target/bench-service.json`
/// payload): the weighted-fair vs FIFO premium-tenant tails, the full
/// per-tenant/per-class taxonomy of the weighted-fair arm, and the
/// breaker counters.
pub fn service_json(count: usize) -> String {
    let w = service_workload(count);
    let (fair, _) = run_arm(&w, ServicePolicy::WeightedFair, false);
    let (fifo, _) = run_arm(&w, ServicePolicy::Fifo, false);
    let fifo_p99 = |id: TenantId| {
        fifo.tenants
            .iter()
            .find(|t| t.tenant == id)
            .map(|t| t.p99_ms)
            .unwrap_or(0.0)
    };
    let tenants: Vec<String> = fair
        .tenants
        .iter()
        .map(|t| {
            let classes: Vec<String> = t
                .classes
                .iter()
                .map(|c| {
                    format!(
                        "{{\"class\":\"{}\",\"submitted\":{},\"completed\":{},\
                         \"shed\":{},\"degraded\":{},\"p50_ms\":{:.6},\
                         \"p99_ms\":{:.6},\"p999_ms\":{:.6}}}",
                        c.class.tag(),
                        c.submitted,
                        c.completed,
                        c.shed,
                        c.degraded,
                        c.p50_ms,
                        c.p99_ms,
                        c.p999_ms,
                    )
                })
                .collect();
            format!(
                "{{\"tenant\":{},\"name\":\"{}\",\"submitted\":{},\
                 \"completed\":{},\"shed\":{},\"rejected\":{},\"degraded\":{},\
                 \"retried\":{},\"quota_exhaustions\":{},\"p50_ms\":{:.6},\
                 \"p99_ms\":{:.6},\"p999_ms\":{:.6},\"fifo_p99_ms\":{:.6},\
                 \"classes\":[{}]}}",
                t.tenant.0,
                t.name,
                t.submitted,
                t.completed,
                t.shed,
                t.rejected,
                t.degraded,
                t.retried,
                t.quota_exhaustions,
                t.p50_ms,
                t.p99_ms,
                t.p999_ms,
                fifo_p99(t.tenant),
                classes.join(","),
            )
        })
        .collect();
    let breakers: Vec<String> = fair
        .breakers
        .iter()
        .map(|b| {
            format!(
                "{{\"device\":{},\"opens\":{},\"probes\":{},\"closes\":{}}}",
                b.device, b.opens, b.probes, b.closes
            )
        })
        .collect();
    format!(
        "{{\"jobs\":{},\"devices\":{},\"wf_makespan_ms\":{:.6},\
         \"fifo_makespan_ms\":{:.6},\"tenants\":[{}],\"breakers\":[{}]}}",
        w.jobs.len(),
        DEVICES,
        fair.makespan_ms,
        fifo.makespan_ms,
        tenants.join(","),
        breakers.join(","),
    )
}

/// The CI smoke contract: on a small seeded workload, weighted-fair
/// must strictly beat FIFO on the premium tenant's p99 turnaround, the
/// burster must be shed at its bounded queue without starving anyone
/// else of completions, the metered tenant must run dry at least once,
/// the flaky device's breaker must complete at least one open → probe
/// → close cycle, the run must be deterministic, and the JSON payload
/// must round-trip through the reader.
pub fn service_smoke() -> Result<String, String> {
    let w = service_workload(4000);
    let (fair, m) = run_arm(&w, ServicePolicy::WeightedFair, true);
    let (fifo, _) = run_arm(&w, ServicePolicy::Fifo, false);
    let (again, _) = run_arm(&w, ServicePolicy::WeightedFair, false);

    if fair.outcomes.len() != w.jobs.len() {
        return Err("an outcome went missing".into());
    }
    if fair.makespan_ms.to_bits() != again.makespan_ms.to_bits() {
        return Err("weighted-fair arm is not deterministic across runs".into());
    }
    let tenant = |r: &ServiceReport, id: u32| {
        r.tenants
            .iter()
            .find(|t| t.tenant == TenantId(id))
            .cloned()
            .ok_or_else(|| format!("tenant {id} missing from the report"))
    };
    let premium = tenant(&fair, 1)?;
    let premium_fifo = tenant(&fifo, 1)?;
    if premium.p99_ms >= premium_fifo.p99_ms {
        return Err(format!(
            "weighted fair ({:.3} ms) did not strictly beat FIFO ({:.3} ms) \
             on the premium tenant's p99",
            premium.p99_ms, premium_fifo.p99_ms
        ));
    }
    let burster = tenant(&fair, 5)?;
    if burster.shed == 0 {
        return Err("the burster's bounded queue shed nothing; the waves never bit".into());
    }
    for id in [1u32, 2, 3, 4] {
        let t = tenant(&fair, id)?;
        if t.completed == 0 {
            return Err(format!("tenant {} completed nothing", t.name));
        }
    }
    if tenant(&fair, 6)?.quota_exhaustions == 0 {
        return Err("the metered tenant never ran dry".into());
    }
    let b1 = fair.breakers[1];
    if b1.opens == 0 || b1.probes == 0 || b1.closes == 0 {
        return Err(format!(
            "breaker on device 1 did not complete a cycle: {} opens, {} probes, {} closes",
            b1.opens, b1.probes, b1.closes
        ));
    }
    if m.circuit_opens as usize != fair.breakers.iter().map(|b| b.opens).sum::<usize>() {
        return Err("event-folded breaker opens disagree with the report".into());
    }
    if m.tenant_latency.len() < w.specs.len() {
        return Err("per-tenant turnaround histograms are missing tenants".into());
    }
    let doc = service_json(4000);
    mdls_obs::json::parse(&doc).map_err(|e| format!("bench-service.json does not parse: {e}"))?;
    Ok(format!(
        "service smoke ok: premium p99 {:.3} ms (wf) vs {:.3} ms (fifo), \
         burster shed {}, {} quota exhaustions, breaker {}o/{}p/{}c",
        premium.p99_ms,
        premium_fifo.p99_ms,
        burster.shed,
        tenant(&fair, 6)?.quota_exhaustions,
        b1.opens,
        b1.probes,
        b1.closes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_passes_and_json_is_complete() {
        let msg = service_smoke().expect("service smoke");
        assert!(msg.contains("premium"));
        let doc = mdls_obs::json::parse(&service_json(1000)).expect("service json parses");
        let tenants = doc
            .get("tenants")
            .and_then(mdls_obs::json::Json::as_arr)
            .expect("tenants array");
        assert_eq!(tenants.len(), 6);
        for t in tenants {
            let submitted = t
                .get("submitted")
                .and_then(mdls_obs::json::Json::as_f64)
                .expect("submitted");
            assert!(submitted > 0.0);
        }
    }
}
