//! `repro trace`: run a refinement-heavy mixed stream with a recorder
//! attached, export the schedule as Chrome-trace JSON (one `prep` and
//! one `compute` track per device), and fold the event stream into
//! latency / counter / calibration summary tables.
//!
//! The workload is a burst-coherent tracker mix: each arrival burst
//! shares one system shape, with loose predictor solves (priority 0)
//! the micro-batcher fuses and deep deadline-tagged corrector solves
//! (priority 1) that run refinement plans, streamed through a
//! V100 + P100 pool with micro-batching and stage-level scheduling —
//! the configuration that exercises every emit point: plan-cache
//! traffic, SECT previews, group formation, deadline caps, stage
//! bookings, refunds, holds, pass extensions and settlements.

use std::sync::Arc;

use gpusim::Gpu;
use mdls_obs::metrics::Metrics;
use mdls_obs::{trace as obs_trace, Recorder};
use mdls_pipeline::{
    jobs_for_shapes, solve_stream_staged, DevicePool, DispatchPolicy, Job, JobOutcome, JobShape,
    MicrobatchConfig, StageSchedConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tables::TextTable;

/// Jobs per arrival burst (and the stream's reorder window).
const BURST: usize = 6;
/// Burst cadence, ms — wide enough that the pool occasionally drains
/// a burst early, so release holds show up in the trace.
const GAP_MS: f64 = 40.0;

/// Calibration buckets shown in the summary table (the full set is
/// folded into [`Metrics`]; the table shows the most-sampled ones).
const CAL_ROWS: usize = 12;

/// Everything `repro trace` produces: the trace document plus the
/// rendered summary tables.
pub struct TraceReport {
    /// Chrome-trace-format JSON (open in `chrome://tracing` / Perfetto).
    pub trace_json: String,
    /// Devices in the traced pool (one process, two tracks each).
    pub devices: usize,
    /// Latency, counter and calibration summaries, in print order.
    pub tables: Vec<TextTable>,
}

/// The traced workload: `count` jobs arriving in bursts of [`BURST`]
/// every [`GAP_MS`] ms, each burst sharing one system shape (a tracker
/// stepping a path emits its predictor/corrector solves against the
/// same embedding). Four loose predictors per burst fuse into one
/// micro-batched group; the two deep deadline-tagged correctors run
/// refinement plans — so the recording carries fused groups, release
/// holds, refunds and deadline pressure, not just settlements.
fn traced_jobs(count: usize, rng: &mut StdRng) -> Vec<Job> {
    let shapes: Vec<JobShape> = (0..count)
        .map(|i| {
            let step = i / BURST;
            let cols = [8, 12, 16, 24, 10, 6][step % 6];
            JobShape {
                rows: cols + [0, 4][step % 2],
                cols,
                target_digits: if i % BURST >= BURST - 2 {
                    [50, 100, 90, 50, 100, 25][step % 6]
                } else {
                    12
                },
            }
        })
        .collect();
    let mut jobs = jobs_for_shapes(&shapes, rng);
    for (i, job) in jobs.iter_mut().enumerate() {
        let release = (i / BURST) as f64 * GAP_MS;
        job.release_ms = Some(release);
        if i % BURST >= BURST - 2 {
            job.priority = 1;
            job.deadline_ms = Some(release + 2.0 * GAP_MS);
        }
    }
    jobs
}

/// Run `count` burst-coherent tracker jobs through the staged stream
/// with a recorder attached and summarize the recording.
pub fn trace_report(count: usize) -> TraceReport {
    let mut rng = StdRng::seed_from_u64(0x7ace);
    let jobs = traced_jobs(count, &mut rng);
    let n_jobs = jobs.len();

    let recorder = Arc::new(Recorder::new());
    let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::p100()]);
    let devices = pool.devices().len();
    pool.attach_observer(recorder.clone());
    // structural worst-case booking + online re-booking (instead of
    // expected-pass booking): deep correctors that certify early leave
    // a reclaimable tail, so the trace shows refund markers too
    let sched = StageSchedConfig {
        book_expected: false,
        ..StageSchedConfig::staged()
    };
    let outs: Vec<JobOutcome> = solve_stream_staged(
        &mut pool,
        jobs,
        DispatchPolicy::ShortestExpectedCompletion,
        BURST,
        MicrobatchConfig::default(),
        sched,
    )
    .collect();
    assert_eq!(outs.len(), n_jobs);

    let events = recorder.events();
    let m = Metrics::from_events(&events);
    TraceReport {
        trace_json: obs_trace::chrome_trace(&events),
        devices,
        tables: vec![
            latency_table(&m, n_jobs, pool.makespan_ms()),
            counter_table(&m),
            calibration_table(&m),
        ],
    }
}

/// Turnaround percentiles per priority class.
fn latency_table(m: &Metrics, jobs: usize, makespan_ms: f64) -> TextTable {
    let mut t = TextTable::new(
        format!(
            "Stream turnaround by priority class: {jobs} burst-coherent tracker \
             jobs on V100 + P100, makespan {makespan_ms:.1} ms"
        ),
        "priority",
    );
    t.col("jobs")
        .col("p50 ms")
        .col("p99 ms")
        .col("p999 ms")
        .col("mean ms")
        .col("max ms");
    for (prio, h) in &m.latency {
        t.row(
            format!("{prio}"),
            vec![
                format!("{}", h.count()),
                format!("{:.1}", h.p50()),
                format!("{:.1}", h.p99()),
                format!("{:.1}", h.p999()),
                format!("{:.1}", h.mean()),
                format!("{:.1}", h.max()),
            ],
        );
    }
    t
}

/// Scheduler and planner counters from the recorded run.
fn counter_table(m: &Metrics) -> TextTable {
    let mut t = TextTable::new("Pipeline counters (recorded events)", "counter");
    t.col("value");
    let rows: [(&str, String); 12] = [
        ("jobs settled", format!("{}", m.jobs)),
        ("jobs in fused groups", format!("{}", m.fused_jobs)),
        ("fused groups formed", format!("{}", m.fused_groups)),
        (
            "deadline misses",
            format!("{} / {}", m.deadline_misses, m.deadline_jobs),
        ),
        ("deadline-capped groups", format!("{}", m.deadline_caps)),
        (
            "refunds (ms reclaimed)",
            format!("{} ({:.1})", m.refunds, m.refunded_ms),
        ),
        ("pass extensions", format!("{}", m.extensions)),
        ("release holds", format!("{}", m.holds)),
        (
            "plan cache hits / misses",
            format!("{} / {}", m.plan_cache_hits, m.plan_cache_misses),
        ),
        (
            "fused memo hits / misses",
            format!("{} / {}", m.fused_memo_hits, m.fused_memo_misses),
        ),
        ("ladder candidates scored", format!("{}", m.candidates)),
        ("SECT previews", format!("{}", m.sect_previews)),
    ];
    for (label, v) in rows {
        t.row(label, vec![v]);
    }
    t
}

/// Predicted-vs-settled stage wall clocks per (device, shape, stage,
/// rung) bucket — the cost model's calibration signal. Bias > 1 means
/// the model under-books the bucket; < 1 means the booking is
/// refund-bound.
fn calibration_table(m: &Metrics) -> TextTable {
    let mut cal = m.calibration();
    cal.sort_by_key(|c| std::cmp::Reverse(c.samples));
    let total = cal.len();
    cal.truncate(CAL_ROWS);
    let mut t = TextTable::new(
        format!(
            "Stage-time calibration: predicted vs settled wall clock, \
             {} most-sampled of {total} buckets",
            cal.len()
        ),
        "device shape stage",
    );
    t.col("samples")
        .col("predicted ms")
        .col("settled ms")
        .col("bias");
    for c in &cal {
        t.row(
            format!(
                "d{} {}x{} {} {}",
                c.device,
                c.rows,
                c.cols,
                c.kind.label(),
                c.rung
            ),
            vec![
                format!("{}", c.samples),
                format!("{:.3}", c.predicted_ms),
                format!("{:.3}", c.settled_ms),
                format!("{:.2}", c.bias()),
            ],
        );
    }
    t
}

/// The CI smoke: record a small run, assert the exported JSON parses
/// and names one `prep` and one `compute` track per device, and that
/// the recording carried at least one calibration record.
pub fn trace_smoke() -> Result<String, String> {
    let r = trace_report(18);
    let slices = obs_trace::validate_trace(&r.trace_json, r.devices)?;
    let cal_rows = r.tables[2].rows.len();
    if cal_rows == 0 {
        return Err("no predicted-vs-settled calibration records".into());
    }
    Ok(format!(
        "trace ok: {slices} duration slices across {} device lanes, \
         {cal_rows} calibration buckets",
        2 * r.devices
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_validates_and_tables_summarize() {
        let msg = trace_smoke().expect("trace must validate");
        assert!(msg.contains("trace ok"), "{msg}");

        let r = trace_report(18);
        let rendered: Vec<String> = r.tables.iter().map(TextTable::render).collect();
        // both priority classes appear with percentile columns
        assert!(rendered[0].contains("p999 ms"));
        assert!(rendered[0].contains('0') && rendered[0].contains('1'));
        // counters cover cache traffic and refunds
        assert!(rendered[1].contains("plan cache hits / misses"));
        assert!(rendered[1].contains("refunds"));
        // calibration rows carry a bias column
        assert!(rendered[2].contains("bias"));
    }
}
