//! Ablation studies for the design choices DESIGN.md calls out.

use gpusim::{Gpu, KernelCost};
use multidouble::{Dd, MdScalar, Od, OpCounts, Qd};

use crate::tables::{fmt_ms, TextTable};

/// Modeled time of one `dim × dim × panel` matrix product under the
/// paper's register-blocked convention versus classic shared-memory
/// tiling (which divides global traffic by the tile edge).
///
/// The paper loads operands "directly into the registers" because the
/// high CGMA ratios of multiple double arithmetic make the products
/// compute bound anyway — except in double double at large dimensions,
/// where Table 6 observes the performance drop this ablation reproduces.
pub fn smem_ablation() -> TextTable {
    let v100 = Gpu::v100();
    let mut t = TextTable::new(
        "Ablation — register-blocked vs shared-memory-tiled matrix product, V100, dim 2048, panel 128 (modeled ms)",
        "precision",
    );
    t.col("registers").col("smem tiles").col("ratio");

    fn one<S: MdScalar>(gpu: &Gpu) -> (f64, f64) {
        let (dim, panel, tile_edge) = (2048usize, 128usize, 16u64);
        let out = (dim * dim) as u64;
        let inner = panel as u64;
        let ops = OpCounts {
            add: out * inner,
            mul: out * inner,
            ..OpCounts::ZERO
        };
        // register convention: each output element streams its operand
        // column; shared-memory tiling reuses each loaded element
        // `tile_edge` times.
        let reg = KernelCost::of::<S>(ops, out * inner, out);
        let smem = KernelCost::of::<S>(ops, out * inner / tile_edge, out);
        let g = |c: &KernelCost| gpusim::model::kernel_ms(gpu, dim / 128, 128, c);
        (g(&reg), g(&smem))
    }

    for (tag, f) in [
        ("2d", one::<Dd> as fn(&Gpu) -> (f64, f64)),
        ("4d", one::<Qd>),
        ("8d", one::<Od>),
    ] {
        let (reg, smem) = f(&v100);
        t.row(
            tag,
            vec![fmt_ms(reg), fmt_ms(smem), format!("{:.2}", reg / smem)],
        );
    }
    t
}

/// Modeled time of the diagonal-tile inversion (N independent blocks)
/// versus the traditional serialized diagonal divisions.
pub fn invert_ablation() -> TextTable {
    let v100 = Gpu::v100();
    let mut t = TextTable::new(
        "Ablation — parallel tile inversion vs serialized diagonal divisions, qd, V100 (modeled ms)",
        "N x n",
    );
    t.col("invert tiles (80 blocks)")
        .col("serial diagonal (1 block)");
    for (tiles, n) in [(80usize, 64usize), (80, 128), (80, 256)] {
        let inv = mdls_backsub::cost::invert_cost::<Qd>(tiles, n);
        let par = gpusim::model::kernel_ms(&v100, tiles, n, &inv);
        // traditional: same arithmetic, one block, serial dependency
        let ser = gpusim::model::kernel_ms(&v100, 1, n, &inv);
        t.row(format!("{tiles}x{n}"), vec![fmt_ms(par), fmt_ms(ser)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smem_matters_least_at_high_precision() {
        let t = smem_ablation();
        // parse the ratio column: dd ratio should exceed od ratio
        let ratio = |row: usize| t.rows[row].1[2].parse::<f64>().unwrap();
        assert!(
            ratio(0) >= ratio(2),
            "dd ratio {} < od ratio {}",
            ratio(0),
            ratio(2)
        );
    }

    #[test]
    fn parallel_inversion_wins() {
        let t = invert_ablation();
        for (label, cells) in &t.rows {
            let par: f64 = cells[0].parse().unwrap();
            let ser: f64 = cells[1].parse().unwrap();
            assert!(
                par < ser,
                "{label}: parallel {par} not faster than serial {ser}"
            );
        }
    }
}
