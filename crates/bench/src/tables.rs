//! Plain-text table rendering in the paper's layout: a row-label column
//! followed by value columns, units in the title.

/// A renderable table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    /// Title printed above the table.
    pub title: String,
    /// Header of the label column.
    pub label_header: String,
    /// Value column headers.
    pub col_headers: Vec<String>,
    /// Rows: label plus one cell per column.
    pub rows: Vec<(String, Vec<String>)>,
}

impl TextTable {
    /// Start a table.
    pub fn new(title: impl Into<String>, label_header: impl Into<String>) -> Self {
        TextTable {
            title: title.into(),
            label_header: label_header.into(),
            ..Default::default()
        }
    }

    /// Add a value column.
    pub fn col(&mut self, h: impl Into<String>) -> &mut Self {
        self.col_headers.push(h.into());
        self
    }

    /// Add a row of preformatted cells.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) -> &mut Self {
        let cells_len = cells.len();
        assert_eq!(
            cells_len,
            self.col_headers.len(),
            "row width mismatch in table {:?}",
            self.title
        );
        self.rows.push((label.into(), cells));
        self
    }

    /// Add a row of milliseconds values (one decimal, like the paper).
    pub fn row_ms(&mut self, label: impl Into<String>, vals: &[f64]) -> &mut Self {
        self.row(label, vals.iter().map(|v| fmt_ms(*v)).collect())
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.col_headers.iter().map(|h| h.len()).collect();
        let mut label_w = self.label_header.len();
        for (label, cells) in &self.rows {
            label_w = label_w.max(label.len());
            for (w, c) in widths.iter_mut().zip(cells.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        // header
        out.push_str(&format!("{:<label_w$}", self.label_header));
        for (h, w) in self.col_headers.iter().zip(widths.iter()) {
            out.push_str(&format!("  {h:>w$}"));
        }
        out.push('\n');
        let total = label_w + widths.iter().map(|w| w + 2).sum::<usize>();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&format!("{label:<label_w$}"));
            for (c, w) in cells.iter().zip(widths.iter()) {
                out.push_str(&format!("  {c:>w$}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Milliseconds with one decimal (the paper's convention).
pub fn fmt_ms(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// Gigaflops with one decimal.
pub fn fmt_gf(v: f64) -> String {
    format!("{v:.1}")
}

/// A ratio with two decimals.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("demo (ms)", "stage");
        t.col("A").col("B");
        t.row_ms("alpha", &[1.0, 22.5]);
        t.row_ms("b", &[333.25, 4.0]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "demo (ms)");
        assert!(lines[1].contains("stage"));
        assert!(lines[3].contains("1.0"));
        assert!(lines[4].contains("333.2") || lines[4].contains("333.3"));
        // all data lines same width
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new("x", "l");
        t.col("only");
        t.row("bad", vec!["1".into(), "2".into()]);
    }

    #[test]
    fn big_ms_drops_decimals() {
        assert_eq!(fmt_ms(84448.0), "84448");
        assert_eq!(fmt_ms(451.5), "451.5");
    }
}
