//! `repro` — regenerate the paper's tables and figures on the simulator.
//!
//! ```text
//! repro <command>
//!   table1 .. table11   one table (paper numbering)
//!   fig1 .. fig5        one figure (text rendering)
//!   verify              functional runs with residual checks
//!   ablate-smem         shared-memory ablation
//!   ablate-invert       tile-inversion ablation
//!   throughput          batched pipeline: scaling, batch depth, planner,
//!                       direct-vs-refinement A/B, fused-vs-singleton
//!                       micro-batching A/B, greedy-vs-SECT
//!                       dispatch-policy A/B, stage-overlap, online
//!                       re-booking, timeline-compaction and
//!                       host-staging A/Bs, bursty deadline misses;
//!                       writes target/bench-throughput.json
//!   throughput-smoke    policy A/B at a small job count + refinement A/B
//!                       + micro-batching A/B + stage-overlap,
//!                       re-booking, compaction and staging A/Bs +
//!                       bench-throughput.json validation (CI)
//!   trace               record a bursty tracker stream, write the
//!                       Chrome-trace JSON (chrome://tracing / Perfetto)
//!                       and print latency / counter / calibration tables
//!   trace-smoke         record a small stream and validate the exported
//!                       trace: one prep + one compute track per device (CI)
//!   chaos               seeded device-fault A/B on 4 V100s: fault-free vs
//!                       fail-the-batch vs retry/re-dispatch (completion
//!                       rate, disposition taxonomy, makespan overhead);
//!                       writes target/bench-chaos.json
//!   chaos-smoke         small chaos A/B asserting recovery strictly beats
//!                       fail-all on completion rate + bench-chaos.json
//!                       validation (CI)
//!   service             sustained-load multi-tenant shell: 10^5 jobs,
//!                       6 tenants (one adversarial burster) on 4 V100s,
//!                       weighted-fair vs FIFO A/B with per-tenant tails,
//!                       shed/degrade taxonomy and breaker trips;
//!                       writes target/bench-service.json
//!   service-smoke       small service A/B asserting weighted fair strictly
//!                       beats FIFO on the premium tenant's p99, the burster
//!                       is shed at its bounded queue, the breaker cycles and
//!                       bench-service.json validates (CI)
//!   all                 everything, in paper order
//! ```

use mdls_bench::{ablate, chaos, experiments as ex, figures, service, throughput, trace, verify};

fn print_tables(ts: &[mdls_bench::TextTable]) {
    for t in ts {
        println!("{}", t.render());
    }
}

/// Write the machine-readable throughput results to
/// `target/bench-throughput.json`, validating the document round-trips
/// through the JSON reader first (the smoke contract).
fn write_bench_json(jobs: usize) {
    let doc = throughput::bench_json(jobs);
    if let Err(e) = mdls_obs::json::parse(&doc) {
        eprintln!("bench-throughput.json does not parse: {e}");
        std::process::exit(1);
    }
    let path = std::path::Path::new("target").join("bench-throughput.json");
    match std::fs::create_dir_all("target").and_then(|()| std::fs::write(&path, &doc)) {
        Ok(()) => println!("machine-readable results written to {}", path.display()),
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Write the machine-readable chaos A/B results to
/// `target/bench-chaos.json`, validating the document round-trips
/// through the JSON reader first (the smoke contract).
fn write_chaos_json(jobs: usize) {
    let doc = chaos::chaos_json(jobs);
    if let Err(e) = mdls_obs::json::parse(&doc) {
        eprintln!("bench-chaos.json does not parse: {e}");
        std::process::exit(1);
    }
    let path = std::path::Path::new("target").join("bench-chaos.json");
    match std::fs::create_dir_all("target").and_then(|()| std::fs::write(&path, &doc)) {
        Ok(()) => println!("machine-readable results written to {}", path.display()),
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Write the machine-readable service A/B results to
/// `target/bench-service.json`, validating the document round-trips
/// through the JSON reader first (the smoke contract).
fn write_service_json(jobs: usize) {
    let doc = service::service_json(jobs);
    if let Err(e) = mdls_obs::json::parse(&doc) {
        eprintln!("bench-service.json does not parse: {e}");
        std::process::exit(1);
    }
    let path = std::path::Path::new("target").join("bench-service.json");
    match std::fs::create_dir_all("target").and_then(|()| std::fs::write(&path, &doc)) {
        Ok(()) => println!("machine-readable results written to {}", path.display()),
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn run(cmd: &str) -> bool {
    match cmd {
        "table1" => println!("{}", ex::table1().render()),
        "table2" => println!("{}", ex::table2().render()),
        "table3" => println!("{}", ex::table3().render()),
        "table4" => print_tables(&ex::table4()),
        "table5" => print_tables(&ex::table5()),
        "table6" => print_tables(&ex::table6()),
        "table7" => print_tables(&ex::table7()),
        "table8" => println!("{}", ex::table8().render()),
        "table9" => print_tables(&ex::table9()),
        "table10" => println!("{}", ex::table10().render()),
        "table11" => print_tables(&ex::table11()),
        "fig1" => println!("{}", figures::fig1()),
        "fig2" => println!("{}", figures::fig2()),
        "fig3" => println!("{}", figures::fig3()),
        "fig4" => println!("{}", figures::fig4()),
        "fig5" => println!("{}", figures::fig5()),
        "verify" => println!("{}", verify::report()),
        "ablate-smem" => println!("{}", ablate::smem_ablation().render()),
        "ablate-invert" => println!("{}", ablate::invert_ablation().render()),
        "throughput" => {
            println!("{}", throughput::throughput_scaling().render());
            println!("{}", throughput::batch_size_sweep().render());
            println!("{}", throughput::planner_choices().render());
            println!("{}", throughput::refinement_ab().render());
            println!("{}", throughput::microbatch_ab().render());
            println!("{}", throughput::microbatch_queue_ab(256).render());
            println!("{}", throughput::policy_ab(60).render());
            println!("{}", throughput::stage_overlap_ab(48).render());
            println!("{}", throughput::rebooking_ab(24).render());
            println!("{}", throughput::timeline_ab(24).render());
            println!("{}", throughput::staging_ab(48).render());
            println!("{}", throughput::bursty_deadline_table(36).render());
            write_bench_json(24);
        }
        "throughput-smoke" => {
            println!("{}", throughput::policy_ab(24).render());
            println!("{}", throughput::refinement_ab().render());
            println!("{}", throughput::microbatch_ab().render());
            println!("{}", throughput::microbatch_queue_ab(64).render());
            println!("{}", throughput::stage_overlap_ab(24).render());
            println!("{}", throughput::rebooking_ab(12).render());
            println!("{}", throughput::timeline_ab(12).render());
            println!("{}", throughput::staging_ab(24).render());
            write_bench_json(8);
        }
        "chaos" => {
            println!("{}", chaos::chaos_table(48).render());
            write_chaos_json(24);
        }
        "chaos-smoke" => {
            match chaos::chaos_smoke() {
                Ok(msg) => println!("{msg}"),
                Err(e) => {
                    eprintln!("chaos-smoke failed: {e}");
                    std::process::exit(1);
                }
            }
            write_chaos_json(12);
        }
        "service" => {
            println!("{}", service::service_table(100_000).render());
            write_service_json(20_000);
        }
        "service-smoke" => {
            match service::service_smoke() {
                Ok(msg) => println!("{msg}"),
                Err(e) => {
                    eprintln!("service-smoke failed: {e}");
                    std::process::exit(1);
                }
            }
            write_service_json(2_000);
        }
        "trace" => {
            let r = trace::trace_report(48);
            print_tables(&r.tables);
            let path = std::path::Path::new("target").join("repro-trace.json");
            let write = std::fs::create_dir_all("target")
                .and_then(|()| std::fs::write(&path, &r.trace_json));
            match write {
                Ok(()) => println!(
                    "chrome trace written to {} — open in chrome://tracing or ui.perfetto.dev",
                    path.display()
                ),
                Err(e) => {
                    eprintln!("cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        "trace-smoke" => match trace::trace_smoke() {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("trace-smoke failed: {e}");
                std::process::exit(1);
            }
        },
        "all" => {
            for c in [
                "table1",
                "table2",
                "table3",
                "table4",
                "fig1",
                "table5",
                "table6",
                "fig2",
                "table7",
                "fig3",
                "table8",
                "table9",
                "fig4",
                "table10",
                "fig5",
                "table11",
                "ablate-smem",
                "ablate-invert",
                "throughput",
                "chaos",
                "service",
                "verify",
            ] {
                run(c);
            }
        }
        _ => return false,
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <table1..table11 | fig1..fig5 | verify | ablate-smem | ablate-invert | throughput | throughput-smoke | trace | trace-smoke | chaos | chaos-smoke | service | service-smoke | all>");
        std::process::exit(2);
    }
    for a in &args {
        if !run(a) {
            eprintln!("unknown command {a:?}");
            std::process::exit(2);
        }
    }
}
