//! The least squares solver — the paper's primary contribution.
//!
//! `lstsq` minimizes `‖b − A x‖₂` by the paper's pipeline:
//!
//! 1. **Algorithm 2** — blocked accelerated Householder QR: `A = Q R`;
//! 2. `Qᴴ b` — one matrix-vector product with the accumulated `Q`;
//! 3. **Algorithm 1** — tiled accelerated back substitution on
//!    `R x = Qᴴ b`.
//!
//! The run returns *two* profiles — one for the QR, one for the back
//! substitution (which absorbs the small `Qᴴ b` product) — exactly the
//! split of the paper's Table 11, plus the combined totals.

use gpusim::{BlockCtx, ExecMode, Gpu, KernelCost, Profile, Sim};
use mdls_backsub::{backsub_on_sim, BacksubOptions};
use mdls_matrix::HostMat;
use mdls_qr::{qr_on_sim, QrDeviceState, QrOptions};
use multidouble::{MdScalar, OpCounts};

/// Stage label for the `Qᴴ b` product (part of the back substitution
/// phase in the Table 11 accounting).
pub const STAGE_QTB: &str = "Q^T*b";

/// Solver configuration: the tiling is shared by the QR panels and the
/// back substitution, as in the paper's Table 11 (8 tiles of size 128).
#[derive(Clone, Copy, Debug)]
pub struct LstsqOptions {
    /// Number of tiles `N`.
    pub tiles: usize,
    /// Tile size `n` (threads per block).
    pub tile_size: usize,
    /// Execution mode of the simulator.
    pub mode: ExecMode,
}

impl Default for LstsqOptions {
    fn default() -> Self {
        LstsqOptions {
            tiles: 8,
            tile_size: 128,
            mode: ExecMode::Sequential,
        }
    }
}

impl LstsqOptions {
    /// Options for an explicit tiling — the constructor planners use
    /// (the pipeline crate picks `tiles`/`tile_size` from the cost model
    /// instead of hard-coding the paper's 8 × 128).
    pub fn tiled(tiles: usize, tile_size: usize, mode: ExecMode) -> Self {
        LstsqOptions {
            tiles,
            tile_size,
            mode,
        }
    }

    /// Number of unknowns `N · n`.
    pub fn cols(&self) -> usize {
        self.tiles * self.tile_size
    }
}

/// Outcome of a least squares solve.
pub struct LstsqRun<S> {
    /// The minimizer (functional modes only).
    pub x: Vec<S>,
    /// Profile of the QR phase.
    pub qr_profile: Profile,
    /// Profile of the back substitution phase (includes `Qᴴ b`).
    pub bs_profile: Profile,
}

impl<S> LstsqRun<S> {
    /// Combined profile of both phases.
    pub fn total_profile(&self) -> Profile {
        let mut p = self.qr_profile.clone();
        p.absorb(&self.bs_profile);
        p
    }
}

/// `qtb[j] = Σ_i conj(Q[i, j]) b[i]` — block per output element group.
fn qtb_kernel<S: MdScalar>(
    sim: &Sim,
    q: &gpusim::DeviceMat<S>,
    b: &gpusim::DeviceBuf<S>,
    out: &gpusim::DeviceBuf<S>,
    cols: usize,
    block: usize,
) {
    let m = q.rows;
    let ops = OpCounts {
        add: (m * cols) as u64,
        mul: (m * cols) as u64,
        ..OpCounts::ZERO
    };
    let cost = KernelCost::of::<S>(ops, (m * cols + m) as u64, cols as u64);
    sim.launch(
        STAGE_QTB,
        cols.div_ceil(block).max(1),
        block,
        cost,
        |ctx: BlockCtx| {
            for t in ctx.thread_ids() {
                let j = ctx.global_tid(t);
                if j >= cols {
                    continue;
                }
                let mut acc = S::zero();
                for i in 0..m {
                    acc += q.get(i, j).conj() * b.get(i);
                }
                out.set(j, acc);
            }
        },
    );
}

/// Copy the top `cols × cols` block of `R` into a square matrix for the
/// back substitution (only needed for tall systems).
fn copy_r_square<S: MdScalar>(
    sim: &Sim,
    r: &gpusim::DeviceMat<S>,
    u: &gpusim::DeviceMat<S>,
    cols: usize,
    block: usize,
) {
    let elems = (cols * (cols + 1) / 2) as u64;
    let cost = KernelCost::of::<S>(OpCounts::ZERO, elems, elems);
    sim.launch(
        "copy R",
        cols.div_ceil(block).max(1),
        block,
        cost,
        |ctx: BlockCtx| {
            for t in ctx.thread_ids() {
                let c = ctx.global_tid(t);
                if c >= cols {
                    continue;
                }
                for row in 0..=c {
                    u.set(row, c, r.get(row, c));
                }
            }
        },
    );
}

/// Solve `A x = b` in the least squares sense.
///
/// `A` is `m × N·n` with `m ≥ N·n`; `b` has length `m`. In
/// [`ExecMode::ModelOnly`] the returned `x` is empty and only the
/// profiles are meaningful.
pub fn lstsq<S: MdScalar>(gpu: &Gpu, a: &HostMat<S>, b: &[S], opts: &LstsqOptions) -> LstsqRun<S> {
    let cols = opts.cols();
    assert_eq!(a.cols, cols, "matrix does not match tiling");
    assert_eq!(b.len(), a.rows, "right hand side length mismatch");
    let m = a.rows;

    let sim = Sim::new(gpu.clone(), opts.mode);

    // ---- phase 1: QR --------------------------------------------------
    let qr_opts = QrOptions {
        tiles: opts.tiles,
        tile_size: opts.tile_size,
    };
    let st = QrDeviceState::<S>::alloc(&sim, m, &qr_opts);
    sim.record_host_overhead();
    sim.record_transfer(((m * cols + m) * S::BYTES) as u64);
    if sim.is_functional() {
        a.upload_to(&st.r);
    }
    st.init_q_identity();
    qr_on_sim(&sim, &st, &qr_opts);
    let qr_profile = sim.profile();
    sim.reset_profile();

    // ---- phase 2: Q^H b and back substitution --------------------------
    let db = sim.alloc_vec::<S>(m);
    let dqtb = sim.alloc_vec::<S>(cols);
    let dx = sim.alloc_vec::<S>(cols);
    if sim.is_functional() {
        db.upload(b);
    }
    qtb_kernel(&sim, &st.q, &db, &dqtb, cols, opts.tile_size);

    let bs_opts = BacksubOptions {
        tiles: opts.tiles,
        tile_size: opts.tile_size,
    };
    if m == cols {
        backsub_on_sim(&sim, &st.r, &dqtb, &dx, &bs_opts);
    } else {
        let u = sim.alloc_mat::<S>(cols, cols);
        copy_r_square(&sim, &st.r, &u, cols, opts.tile_size);
        backsub_on_sim(&sim, &u, &dqtb, &dx, &bs_opts);
    }
    sim.record_transfer((cols * S::BYTES) as u64);
    let bs_profile = sim.profile();

    let x = if sim.is_functional() {
        dx.download()
    } else {
        Vec::new()
    };
    LstsqRun {
        x,
        qr_profile,
        bs_profile,
    }
}

/// Model-only solver profiles `(qr, back substitution)` for a square
/// `dim × dim` system — the Table 11 generator at paper dimensions.
pub fn lstsq_model_profiles<S: MdScalar>(gpu: &Gpu, opts: &LstsqOptions) -> (Profile, Profile) {
    lstsq_model_profiles_rect::<S>(gpu, opts.cols(), opts)
}

/// Model-only solver profiles for a rectangular `rows × N·n` system
/// (`rows ≥ N·n`). This is the planner's cost oracle: no host data, no
/// device storage, just the analytic launch sequence of a full solve.
pub fn lstsq_model_profiles_rect<S: MdScalar>(
    gpu: &Gpu,
    rows: usize,
    opts: &LstsqOptions,
) -> (Profile, Profile) {
    let cols = opts.cols();
    assert!(rows >= cols, "least squares needs rows >= cols");
    let m = rows;
    let sim = Sim::new(gpu.clone(), ExecMode::ModelOnly);
    let qr_opts = QrOptions {
        tiles: opts.tiles,
        tile_size: opts.tile_size,
    };
    let st = QrDeviceState::<S>::alloc(&sim, m, &qr_opts);
    sim.record_host_overhead();
    sim.record_transfer(((m * cols + m) * S::BYTES) as u64);
    qr_on_sim(&sim, &st, &qr_opts);
    let qr_profile = sim.profile();
    sim.reset_profile();

    let db = sim.alloc_vec::<S>(m);
    let dqtb = sim.alloc_vec::<S>(cols);
    let dx = sim.alloc_vec::<S>(cols);
    qtb_kernel(&sim, &st.q, &db, &dqtb, cols, opts.tile_size);
    let bs_opts = BacksubOptions {
        tiles: opts.tiles,
        tile_size: opts.tile_size,
    };
    if m == cols {
        backsub_on_sim(&sim, &st.r, &dqtb, &dx, &bs_opts);
    } else {
        let u = sim.alloc_mat::<S>(cols, cols);
        copy_r_square(&sim, &st.r, &u, cols, opts.tile_size);
        backsub_on_sim(&sim, &u, &dqtb, &dx, &bs_opts);
    }
    sim.record_transfer((cols * S::BYTES) as u64);
    (qr_profile, sim.profile())
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{Complex, Dd, MdReal, Od, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Solve a consistent square system and return the relative residual.
    fn consistent_residual<S: MdScalar>(opts: LstsqOptions, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = opts.cols();
        let a = HostMat::<S>::random(n, n, &mut rng);
        let xt: Vec<S> = mdls_matrix::random_vector(n, &mut rng);
        let b = a.matvec(&xt);
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        let r = a.residual(&run.x, &b).to_f64();
        let bn = mdls_matrix::vec_norm2(&b).to_f64();
        r / bn
    }

    #[test]
    fn dd_solver_reaches_dd_roundoff() {
        let e = consistent_residual::<Dd>(
            LstsqOptions {
                tiles: 3,
                tile_size: 8,
                mode: ExecMode::Sequential,
            },
            301,
        );
        assert!(e < 1e-27, "dd residual {e:e}");
    }

    #[test]
    fn qd_solver_reaches_qd_roundoff() {
        let e = consistent_residual::<Qd>(
            LstsqOptions {
                tiles: 2,
                tile_size: 8,
                mode: ExecMode::Sequential,
            },
            302,
        );
        assert!(e < 1e-57, "qd residual {e:e}");
    }

    #[test]
    fn od_solver_reaches_od_roundoff() {
        let e = consistent_residual::<Od>(
            LstsqOptions {
                tiles: 2,
                tile_size: 4,
                mode: ExecMode::Sequential,
            },
            303,
        );
        assert!(e < 1e-117, "od residual {e:e}");
    }

    #[test]
    fn complex_qd_solver() {
        let e = consistent_residual::<Complex<Qd>>(
            LstsqOptions {
                tiles: 2,
                tile_size: 6,
                mode: ExecMode::Sequential,
            },
            304,
        );
        assert!(e < 1e-56, "complex qd residual {e:e}");
    }

    #[test]
    fn overdetermined_least_squares_minimizes() {
        // m > n: the residual must be orthogonal to the column space
        let mut rng = StdRng::seed_from_u64(305);
        let opts = LstsqOptions {
            tiles: 2,
            tile_size: 4,
            mode: ExecMode::Sequential,
        };
        let m = 16;
        let a = HostMat::<Qd>::random(m, opts.cols(), &mut rng);
        let b: Vec<Qd> = mdls_matrix::random_vector(m, &mut rng);
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        // r = b - A x; check A^T r ~ 0 (normal equations)
        let ax = a.matvec(&run.x);
        let r: Vec<Qd> = b.iter().zip(ax.iter()).map(|(x, y)| *x - *y).collect();
        let atr = a.matvec_conj_t(&r);
        let defect = mdls_matrix::vec_norm2(&atr).to_f64() / mdls_matrix::vec_norm2(&b).to_f64();
        assert!(defect < 1e-56, "normal-equation defect {defect:e}");
    }

    #[test]
    fn profiles_split_qr_and_bs() {
        let mut rng = StdRng::seed_from_u64(306);
        let opts = LstsqOptions {
            tiles: 2,
            tile_size: 8,
            mode: ExecMode::Sequential,
        };
        let n = opts.cols();
        let a = HostMat::<Dd>::random(n, n, &mut rng);
        let b: Vec<Dd> = mdls_matrix::random_vector(n, &mut rng);
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        assert!(run.qr_profile.stage("compute W").is_some());
        assert!(run.bs_profile.stage("invert diagonal tiles").is_some());
        assert!(run.bs_profile.stage(STAGE_QTB).is_some());
        // QR dominates BS, as in Table 11 ("about 100 times less")
        assert!(
            run.qr_profile.all_kernels_ms() > 5.0 * run.bs_profile.all_kernels_ms(),
            "QR {} ms vs BS {} ms",
            run.qr_profile.all_kernels_ms(),
            run.bs_profile.all_kernels_ms()
        );
        let total = run.total_profile();
        let sum = run.qr_profile.all_kernels_ms() + run.bs_profile.all_kernels_ms();
        assert!((total.all_kernels_ms() - sum).abs() < 1e-9);
    }

    #[test]
    fn rect_model_profile_matches_functional_accounting() {
        // the planner's cost oracle must charge exactly what a real
        // (functional) solve of the same tall shape records
        let mut rng = StdRng::seed_from_u64(307);
        let opts = LstsqOptions {
            tiles: 2,
            tile_size: 4,
            mode: ExecMode::Sequential,
        };
        let m = 16;
        let a = HostMat::<Qd>::random(m, opts.cols(), &mut rng);
        let b: Vec<Qd> = mdls_matrix::random_vector(m, &mut rng);
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        let (qr, bs) = lstsq_model_profiles_rect::<Qd>(&Gpu::v100(), m, &opts);
        assert_eq!(qr.all_kernels_ms(), run.qr_profile.all_kernels_ms());
        assert_eq!(bs.all_kernels_ms(), run.bs_profile.all_kernels_ms());
        assert_eq!(bs.total_flops_paper(), run.bs_profile.total_flops_paper());
        // the wall clock is what the pipeline's scheduler books onto
        // device clocks — the oracle must match it exactly too
        assert_eq!(qr.wall_ms(), run.qr_profile.wall_ms());
        assert_eq!(bs.wall_ms(), run.bs_profile.wall_ms());
    }

    #[test]
    fn model_only_returns_profiles_without_solution() {
        let opts = LstsqOptions {
            tiles: 2,
            tile_size: 8,
            mode: ExecMode::ModelOnly,
        };
        let n = opts.cols();
        let a = HostMat::<Qd>::zeros(n, n);
        let b = vec![Qd::ZERO; n];
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        assert!(run.x.is_empty());
        assert!(run.qr_profile.all_kernels_ms() > 0.0);
        assert!(run.bs_profile.all_kernels_ms() > 0.0);
    }
}
