//! The least squares solver — the paper's primary contribution.
//!
//! `lstsq` minimizes `‖b − A x‖₂` by the paper's pipeline:
//!
//! 1. **Algorithm 2** — blocked accelerated Householder QR: `A = Q R`;
//! 2. `Qᴴ b` — one matrix-vector product with the accumulated `Q`;
//! 3. **Algorithm 1** — tiled accelerated back substitution on
//!    `R x = Qᴴ b`.
//!
//! The run returns *two* profiles — one for the QR, one for the back
//! substitution (which absorbs the small `Qᴴ b` product) — exactly the
//! split of the paper's Table 11, plus the combined totals.
//!
//! The two phases are also available separately: [`lstsq_factor`]
//! produces a [`LstsqFactorization`] whose [`LstsqFactorization::solve`]
//! can be applied to any number of right hand sides — the primitive the
//! pipeline's mixed-precision iterative refinement builds on (factor
//! once at a cheap rung, then re-solve against successive residuals).
//! [`lstsq`] itself is the factor + one solve composition, so the split
//! changes no bit of any single-solve result. [`residual_kernel`]
//! computes `r = b − A x` on the device at an arbitrary rung, with
//! [`residual_model_profile`] as its analytic cost — the "one rung up"
//! residual stage of a refinement plan.

#![forbid(unsafe_code)]

use gpusim::{BlockCtx, ExecMode, Gpu, KernelCost, Profile, Sim};
use mdls_backsub::{backsub_on_sim, BacksubOptions};
use mdls_matrix::HostMat;
use mdls_qr::{qr_on_sim, QrDeviceState, QrOptions};
use multidouble::{MdScalar, OpCounts};

/// Stage label for the `Qᴴ b` product (part of the back substitution
/// phase in the Table 11 accounting).
pub const STAGE_QTB: &str = "Q^T*b";

/// Solver configuration: the tiling is shared by the QR panels and the
/// back substitution, as in the paper's Table 11 (8 tiles of size 128).
#[derive(Clone, Copy, Debug)]
pub struct LstsqOptions {
    /// Number of tiles `N`.
    pub tiles: usize,
    /// Tile size `n` (threads per block).
    pub tile_size: usize,
    /// Execution mode of the simulator.
    pub mode: ExecMode,
}

impl Default for LstsqOptions {
    fn default() -> Self {
        LstsqOptions {
            tiles: 8,
            tile_size: 128,
            mode: ExecMode::Sequential,
        }
    }
}

impl LstsqOptions {
    /// Options for an explicit tiling — the constructor planners use
    /// (the pipeline crate picks `tiles`/`tile_size` from the cost model
    /// instead of hard-coding the paper's 8 × 128).
    pub fn tiled(tiles: usize, tile_size: usize, mode: ExecMode) -> Self {
        LstsqOptions {
            tiles,
            tile_size,
            mode,
        }
    }

    /// Number of unknowns `N · n`.
    pub fn cols(&self) -> usize {
        self.tiles * self.tile_size
    }
}

/// Outcome of a least squares solve.
pub struct LstsqRun<S> {
    /// The minimizer (functional modes only).
    pub x: Vec<S>,
    /// Profile of the QR phase.
    pub qr_profile: Profile,
    /// Profile of the back substitution phase (includes `Qᴴ b`).
    pub bs_profile: Profile,
}

impl<S> LstsqRun<S> {
    /// Combined profile of both phases.
    pub fn total_profile(&self) -> Profile {
        let mut p = self.qr_profile.clone();
        p.absorb(&self.bs_profile);
        p
    }
}

/// `qtb[j] = Σ_i conj(Q[i, j]) b[i]` — block per output element group.
fn qtb_kernel<S: MdScalar>(
    sim: &Sim,
    q: &gpusim::DeviceMat<S>,
    b: &gpusim::DeviceBuf<S>,
    out: &gpusim::DeviceBuf<S>,
    cols: usize,
    block: usize,
) {
    let m = q.rows;
    let ops = OpCounts {
        add: (m * cols) as u64,
        mul: (m * cols) as u64,
        ..OpCounts::ZERO
    };
    let cost = KernelCost::of::<S>(ops, (m * cols + m) as u64, cols as u64);
    sim.launch(
        STAGE_QTB,
        cols.div_ceil(block).max(1),
        block,
        cost,
        |ctx: BlockCtx| {
            for t in ctx.thread_ids() {
                let j = ctx.global_tid(t);
                if j >= cols {
                    continue;
                }
                let mut acc = S::zero();
                for i in 0..m {
                    acc += q.get(i, j).conj() * b.get(i);
                }
                out.set(j, acc);
            }
        },
    );
}

/// Copy the top `cols × cols` block of `R` into a square matrix for the
/// back substitution (only needed for tall systems).
fn copy_r_square<S: MdScalar>(
    sim: &Sim,
    r: &gpusim::DeviceMat<S>,
    u: &gpusim::DeviceMat<S>,
    cols: usize,
    block: usize,
) {
    let elems = (cols * (cols + 1) / 2) as u64;
    let cost = KernelCost::of::<S>(OpCounts::ZERO, elems, elems);
    sim.launch(
        "copy R",
        cols.div_ceil(block).max(1),
        block,
        cost,
        |ctx: BlockCtx| {
            for t in ctx.thread_ids() {
                let c = ctx.global_tid(t);
                if c >= cols {
                    continue;
                }
                for row in 0..=c {
                    u.set(row, c, r.get(row, c));
                }
            }
        },
    );
}

/// A reusable QR factorization: the device-resident `Q`/`R` of one
/// system plus the simulator session they live on.
///
/// Produced by [`lstsq_factor`] (functional or model-only, per the
/// options' [`ExecMode`]) or [`lstsq_factor_model`] (model-only, no host
/// data). [`LstsqFactorization::solve`] then runs the paper's phase 2 —
/// `Qᴴ rhs` followed by tiled back substitution — against any right hand
/// side without re-factoring. Each solve repeats phase 2's full launch
/// sequence — `Qᴴ b`, a copy of `R`'s upper block to scratch (the tiled
/// back substitution inverts diagonal tiles in place, so it runs on a
/// copy to keep the factorization reusable), back substitution — so its
/// per-solve profile is exactly the `bs_profile` a standalone [`lstsq`]
/// records and the two compose bit-identically.
pub struct LstsqFactorization<S: MdScalar> {
    sim: Sim,
    st: QrDeviceState<S>,
    opts: LstsqOptions,
    rows: usize,
    factor_profile: Profile,
}

fn factor_on_sim<S: MdScalar>(
    gpu: &Gpu,
    mode: ExecMode,
    a: Option<&HostMat<S>>,
    rows: usize,
    opts: &LstsqOptions,
) -> LstsqFactorization<S> {
    factor_with_sim(Sim::new(gpu.clone(), mode), a, rows, opts)
}

/// Factor on a caller-built session — the seam the batched entry
/// points use to run the ordinary factor launch sequence on a
/// [`Sim::batched`] (fused-group accounting) or [`Sim::shadow`]
/// (secondary instance, no accounting) session. The launch sequence,
/// and therefore every functional bit, is identical on all three
/// session kinds.
fn factor_with_sim<S: MdScalar>(
    sim: Sim,
    a: Option<&HostMat<S>>,
    rows: usize,
    opts: &LstsqOptions,
) -> LstsqFactorization<S> {
    let cols = opts.cols();
    assert!(rows >= cols, "least squares needs rows >= cols");
    let qr_opts = QrOptions {
        tiles: opts.tiles,
        tile_size: opts.tile_size,
    };
    let st = QrDeviceState::<S>::alloc(&sim, rows, &qr_opts);
    sim.record_host_overhead();
    // the factor phase moves only the system matrix; each solve charges
    // its own right hand side (see `LstsqFactorization::solve`), so a
    // refinement plan's extra correction passes pay their residual
    // uploads instead of getting them for free
    sim.record_transfer((rows * cols * S::BYTES) as u64);
    if sim.is_functional() {
        a.expect("functional factorization needs host data")
            .upload_to(&st.r);
    }
    st.init_q_identity();
    qr_on_sim(&sim, &st, &qr_opts);
    let factor_profile = sim.profile();
    sim.reset_profile();
    LstsqFactorization {
        sim,
        st,
        opts: *opts,
        rows,
        factor_profile,
    }
}

/// Factor `A = Q R` once (the paper's phase 1, including the host
/// overhead and the upload of `A` — each solve charges its own right
/// hand side) and return the reusable factorization.
pub fn lstsq_factor<S: MdScalar>(
    gpu: &Gpu,
    a: &HostMat<S>,
    opts: &LstsqOptions,
) -> LstsqFactorization<S> {
    assert_eq!(a.cols, opts.cols(), "matrix does not match tiling");
    factor_on_sim(gpu, opts.mode, Some(a), a.rows, opts)
}

/// Model-only factorization of a `rows × N·n` system: no host data, no
/// functional state — only the analytic launch sequence and transfer
/// accounting of phase 1. The planner's per-stage cost oracle for the
/// `Factor` stage of an execution plan.
pub fn lstsq_factor_model<S: MdScalar>(
    gpu: &Gpu,
    rows: usize,
    opts: &LstsqOptions,
) -> LstsqFactorization<S> {
    factor_on_sim(gpu, ExecMode::ModelOnly, None, rows, opts)
}

/// A fused group of `k` independent same-shaped factorizations — the
/// device-level micro-batching primitive.
///
/// The paper's workloads are dominated by systems small enough that one
/// QR badly underfills a GPU (wave quantization leaves most
/// multiprocessors idle for a single-digit grid). A batch
/// factorization runs `k` same-shaped systems as *fused launches*: one
/// grid carries every instance's blocks, occupancy is computed over the
/// fused grid, and per-launch bookkeeping — kernel base, launch gap,
/// host overhead, per-transfer calls — is paid once per group instead
/// of once per instance (cf. cuBLAS/MAGMA batched QR).
///
/// Instance 0 lives on the primary [`Sim::batched`] session, which
/// accounts the whole group; instances 1.. live on [`Sim::shadow`]
/// sessions that execute functionally but record nothing. Each
/// instance's launch sequence is exactly the singleton
/// [`lstsq_factor`] sequence, so every solution is bit-identical to
/// the unfused path.
pub struct LstsqBatchFactorization<S: MdScalar> {
    facts: Vec<LstsqFactorization<S>>,
    k: usize,
}

/// Factor `k = systems.len()` same-shaped systems as one fused group
/// (functional or model-only per the options' [`ExecMode`]). All
/// systems must share the `rows × N·n` shape of the options.
pub fn lstsq_factor_batched<S: MdScalar>(
    gpu: &Gpu,
    systems: &[&HostMat<S>],
    opts: &LstsqOptions,
) -> LstsqBatchFactorization<S> {
    assert!(
        !systems.is_empty(),
        "a fused group needs at least one system"
    );
    let (rows, cols) = (systems[0].rows, systems[0].cols);
    assert_eq!(cols, opts.cols(), "matrix does not match tiling");
    for a in systems {
        assert_eq!(
            (a.rows, a.cols),
            (rows, cols),
            "fused instances must share one shape"
        );
    }
    let k = systems.len();
    let facts = systems
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let sim = if i == 0 {
                Sim::batched(gpu.clone(), opts.mode, k)
            } else {
                Sim::shadow(gpu.clone(), opts.mode)
            };
            factor_with_sim(sim, Some(a), rows, opts)
        })
        .collect();
    LstsqBatchFactorization { facts, k }
}

/// Model-only fused factorization of `k` same-shaped `rows × N·n`
/// systems: the planner's cost oracle for a fused `Factor` stage. Only
/// the primary (accounting) session is built — shadow instances have no
/// analytic footprint at all.
pub fn lstsq_factor_batched_model<S: MdScalar>(
    gpu: &Gpu,
    k: usize,
    rows: usize,
    opts: &LstsqOptions,
) -> LstsqBatchFactorization<S> {
    assert!(k > 0, "a fused group needs at least one instance");
    let sim = Sim::batched(gpu.clone(), ExecMode::ModelOnly, k);
    LstsqBatchFactorization {
        facts: vec![factor_with_sim(sim, None, rows, opts)],
        k,
    }
}

impl<S: MdScalar> LstsqBatchFactorization<S> {
    /// Number of fused instances in the group.
    pub fn group_size(&self) -> usize {
        self.k
    }

    /// The per-instance factorizations (one entry in model-only groups,
    /// where shadow instances are never materialized). Instance 0 is
    /// the accounting session; refinement loops use these to re-solve
    /// each instance against its own residuals.
    pub fn instances(&self) -> &[LstsqFactorization<S>] {
        &self.facts
    }

    /// Profile of the fused factor phase — all `k` instances' QR work
    /// as fused launches, accounted once on the primary session.
    pub fn factor_profile(&self) -> &Profile {
        self.facts[0].factor_profile()
    }

    /// Solve every instance against its right hand side (the fused
    /// phase 2): returns the per-instance solutions plus the fused
    /// profile of the whole group's solve pass. Functional groups need
    /// one rhs per instance; model-only groups ignore `rhs`. Each
    /// instance's solve is exactly the singleton
    /// [`LstsqFactorization::solve`] launch sequence, so the returned
    /// solutions are bit-identical to `k` unfused solves.
    pub fn solve_all(&self, rhs: &[Vec<S>]) -> (Vec<Vec<S>>, Profile) {
        if self.facts[0].is_functional() {
            assert_eq!(rhs.len(), self.facts.len(), "one rhs per fused instance");
        }
        let mut xs = Vec::with_capacity(self.facts.len());
        let mut fused_profile = Profile::new();
        for (i, f) in self.facts.iter().enumerate() {
            let b: &[S] = rhs.get(i).map(|v| v.as_slice()).unwrap_or(&[]);
            let (x, p) = f.solve(b);
            if i == 0 {
                fused_profile = p;
            }
            xs.push(x);
        }
        (xs, fused_profile)
    }
}

/// Model-only fused-solver profiles `(qr, back substitution)` for `k`
/// same-shaped `rows × N·n` systems — the fused counterpart of
/// [`lstsq_model_profiles_rect`], pricing one grouped launch sequence
/// instead of `k` singleton sequences.
pub fn lstsq_batched_model_profiles<S: MdScalar>(
    gpu: &Gpu,
    k: usize,
    rows: usize,
    opts: &LstsqOptions,
) -> (Profile, Profile) {
    let f = lstsq_factor_batched_model::<S>(gpu, k, rows, opts);
    let (_, bs) = f.solve_all(&[]);
    (f.factor_profile().clone(), bs)
}

impl<S: MdScalar> LstsqFactorization<S> {
    /// Rows `m` of the factored system.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns (unknowns) of the factored system.
    pub fn cols(&self) -> usize {
        self.opts.cols()
    }

    /// Profile of the factorization phase (the paper's QR rows).
    pub fn factor_profile(&self) -> &Profile {
        &self.factor_profile
    }

    /// True when the session executes kernels functionally.
    pub fn is_functional(&self) -> bool {
        self.sim.is_functional()
    }

    /// Solve `R x = Qᴴ b` for one right hand side (the paper's phase 2).
    ///
    /// Returns the solution (empty in model-only sessions, where `b` is
    /// ignored and may be empty) and the profile of exactly this solve.
    pub fn solve(&self, b: &[S]) -> (Vec<S>, Profile) {
        let (m, cols) = (self.rows, self.opts.cols());
        self.sim.reset_profile();
        let db = self.sim.alloc_vec::<S>(m);
        let dqtb = self.sim.alloc_vec::<S>(cols);
        let dx = self.sim.alloc_vec::<S>(cols);
        // the rhs upload is charged here, per solve (the factor phase
        // charges only the matrix); the split leaves a factor + one
        // solve at exactly the fused pipeline's total transfer
        self.sim.record_transfer((m * S::BYTES) as u64);
        if self.sim.is_functional() {
            assert_eq!(b.len(), m, "right hand side length mismatch");
            db.upload(b);
        }
        qtb_kernel(&self.sim, &self.st.q, &db, &dqtb, cols, self.opts.tile_size);

        let bs_opts = BacksubOptions {
            tiles: self.opts.tiles,
            tile_size: self.opts.tile_size,
        };
        // The tiled back substitution inverts the diagonal tiles of its
        // input *in place*, so it must never run on `R` itself — the
        // factorization would be corrupted for every later solve. Each
        // solve therefore works on a fresh copy of the upper block (the
        // tall path always needed the copy; square systems now pay the
        // same cheap copy launch for re-solvability). The copied values
        // are identical, so solutions are bit-identical either way.
        let u = self.sim.alloc_mat::<S>(cols, cols);
        copy_r_square(&self.sim, &self.st.r, &u, cols, self.opts.tile_size);
        backsub_on_sim(&self.sim, &u, &dqtb, &dx, &bs_opts);
        self.sim.record_transfer((cols * S::BYTES) as u64);
        let x = if self.sim.is_functional() {
            dx.download()
        } else {
            Vec::new()
        };
        (x, self.sim.profile())
    }
}

/// Solve `A x = b` in the least squares sense.
///
/// `A` is `m × N·n` with `m ≥ N·n`; `b` has length `m`. In
/// [`ExecMode::ModelOnly`] the returned `x` is empty and only the
/// profiles are meaningful. Implemented as [`lstsq_factor`] followed by
/// one [`LstsqFactorization::solve`]. Solutions are bit-identical to
/// the original fused pipeline, and total transfers are unchanged (the
/// rhs charge moved from phase 1 to phase 2); the one profile delta is
/// that square systems now run the same `copy R` launch tall systems
/// always did, so the factorization stays reusable (the copied values
/// are identical — see [`LstsqFactorization::solve`]).
pub fn lstsq<S: MdScalar>(gpu: &Gpu, a: &HostMat<S>, b: &[S], opts: &LstsqOptions) -> LstsqRun<S> {
    assert_eq!(b.len(), a.rows, "right hand side length mismatch");
    let f = lstsq_factor(gpu, a, opts);
    let (x, bs_profile) = f.solve(b);
    LstsqRun {
        x,
        qr_profile: f.factor_profile,
        bs_profile,
    }
}

/// Model-only solver profiles `(qr, back substitution)` for a square
/// `dim × dim` system — the Table 11 generator at paper dimensions.
pub fn lstsq_model_profiles<S: MdScalar>(gpu: &Gpu, opts: &LstsqOptions) -> (Profile, Profile) {
    lstsq_model_profiles_rect::<S>(gpu, opts.cols(), opts)
}

/// Model-only solver profiles for a rectangular `rows × N·n` system
/// (`rows ≥ N·n`). This is the planner's cost oracle: no host data, no
/// device storage, just the analytic launch sequence of a full solve.
pub fn lstsq_model_profiles_rect<S: MdScalar>(
    gpu: &Gpu,
    rows: usize,
    opts: &LstsqOptions,
) -> (Profile, Profile) {
    let f = lstsq_factor_model::<S>(gpu, rows, opts);
    let (_, bs_profile) = f.solve(&[]);
    (f.factor_profile, bs_profile)
}

/// Stage label of the refinement residual `r = b − A x`.
pub const STAGE_RESIDUAL: &str = "residual";

/// `r[i] = b[i] − Σ_j A[i,j] x[j]` — one thread per row, `block` threads
/// per block. The residual stage of a mixed-precision refinement plan:
/// run at a rung *above* the factorization rung, it recovers the digits
/// the cheap factorization left behind.
pub fn residual_kernel<S: MdScalar>(
    sim: &Sim,
    a: &gpusim::DeviceMat<S>,
    x: &gpusim::DeviceBuf<S>,
    b: &gpusim::DeviceBuf<S>,
    r: &gpusim::DeviceBuf<S>,
    block: usize,
) {
    let m = a.rows;
    let n = a.cols;
    let ops = OpCounts {
        sub: (m * n) as u64,
        mul: (m * n) as u64,
        ..OpCounts::ZERO
    };
    let cost = KernelCost::of::<S>(ops, (m * n + n + m) as u64, m as u64);
    sim.launch(
        STAGE_RESIDUAL,
        m.div_ceil(block).max(1),
        block,
        cost,
        |ctx: BlockCtx| {
            for t in ctx.thread_ids() {
                let i = ctx.global_tid(t);
                if i >= m {
                    continue;
                }
                let mut acc = b.get(i);
                for j in 0..n {
                    acc -= a.get(i, j) * x.get(j);
                }
                r.set(i, acc);
            }
        },
    );
}

/// Analytic profile of one residual stage at rung `S`: upload of the
/// iterate (`cols` scalars), the kernel, download of the residual
/// (`rows` scalars). With `with_system_upload` the one-time transfer of
/// the high-rung system (`rows × cols` matrix plus the right hand side)
/// is charged too — a refinement plan charges it to its *first* residual
/// stage and keeps the system device-resident afterwards.
pub fn residual_model_profile<S: MdScalar>(
    gpu: &Gpu,
    rows: usize,
    cols: usize,
    block: usize,
    with_system_upload: bool,
) -> Profile {
    residual_model_profile_batched::<S>(gpu, 1, rows, cols, block, with_system_upload)
}

/// Fused-group counterpart of [`residual_model_profile`]: the analytic
/// profile of one residual stage over `instances` same-shaped systems
/// as a single fused launch (occupancy over the fused grid, transfers
/// grouped, kernel base and launch gap paid once).
pub fn residual_model_profile_batched<S: MdScalar>(
    gpu: &Gpu,
    instances: usize,
    rows: usize,
    cols: usize,
    block: usize,
    with_system_upload: bool,
) -> Profile {
    let sim = Sim::batched(gpu.clone(), ExecMode::ModelOnly, instances);
    let da = sim.alloc_mat::<S>(rows, cols);
    let dx = sim.alloc_vec::<S>(cols);
    let db = sim.alloc_vec::<S>(rows);
    let dr = sim.alloc_vec::<S>(rows);
    if with_system_upload {
        sim.record_transfer(((rows * cols + rows) * S::BYTES) as u64);
    }
    sim.record_transfer((cols * S::BYTES) as u64);
    residual_kernel(&sim, &da, &dx, &db, &dr, block);
    sim.record_transfer((rows * S::BYTES) as u64);
    sim.profile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{Complex, Dd, MdReal, Od, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Solve a consistent square system and return the relative residual.
    fn consistent_residual<S: MdScalar>(opts: LstsqOptions, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = opts.cols();
        let a = HostMat::<S>::random(n, n, &mut rng);
        let xt: Vec<S> = mdls_matrix::random_vector(n, &mut rng);
        let b = a.matvec(&xt);
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        let r = a.residual(&run.x, &b).to_f64();
        let bn = mdls_matrix::vec_norm2(&b).to_f64();
        r / bn
    }

    #[test]
    fn dd_solver_reaches_dd_roundoff() {
        let e = consistent_residual::<Dd>(
            LstsqOptions {
                tiles: 3,
                tile_size: 8,
                mode: ExecMode::Sequential,
            },
            301,
        );
        assert!(e < 1e-27, "dd residual {e:e}");
    }

    #[test]
    fn qd_solver_reaches_qd_roundoff() {
        let e = consistent_residual::<Qd>(
            LstsqOptions {
                tiles: 2,
                tile_size: 8,
                mode: ExecMode::Sequential,
            },
            302,
        );
        assert!(e < 1e-57, "qd residual {e:e}");
    }

    #[test]
    fn od_solver_reaches_od_roundoff() {
        let e = consistent_residual::<Od>(
            LstsqOptions {
                tiles: 2,
                tile_size: 4,
                mode: ExecMode::Sequential,
            },
            303,
        );
        assert!(e < 1e-117, "od residual {e:e}");
    }

    #[test]
    fn complex_qd_solver() {
        let e = consistent_residual::<Complex<Qd>>(
            LstsqOptions {
                tiles: 2,
                tile_size: 6,
                mode: ExecMode::Sequential,
            },
            304,
        );
        assert!(e < 1e-56, "complex qd residual {e:e}");
    }

    #[test]
    fn overdetermined_least_squares_minimizes() {
        // m > n: the residual must be orthogonal to the column space
        let mut rng = StdRng::seed_from_u64(305);
        let opts = LstsqOptions {
            tiles: 2,
            tile_size: 4,
            mode: ExecMode::Sequential,
        };
        let m = 16;
        let a = HostMat::<Qd>::random(m, opts.cols(), &mut rng);
        let b: Vec<Qd> = mdls_matrix::random_vector(m, &mut rng);
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        // r = b - A x; check A^T r ~ 0 (normal equations)
        let ax = a.matvec(&run.x);
        let r: Vec<Qd> = b.iter().zip(ax.iter()).map(|(x, y)| *x - *y).collect();
        let atr = a.matvec_conj_t(&r);
        let defect = mdls_matrix::vec_norm2(&atr).to_f64() / mdls_matrix::vec_norm2(&b).to_f64();
        assert!(defect < 1e-56, "normal-equation defect {defect:e}");
    }

    #[test]
    fn profiles_split_qr_and_bs() {
        let mut rng = StdRng::seed_from_u64(306);
        let opts = LstsqOptions {
            tiles: 2,
            tile_size: 8,
            mode: ExecMode::Sequential,
        };
        let n = opts.cols();
        let a = HostMat::<Dd>::random(n, n, &mut rng);
        let b: Vec<Dd> = mdls_matrix::random_vector(n, &mut rng);
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        assert!(run.qr_profile.stage("compute W").is_some());
        assert!(run.bs_profile.stage("invert diagonal tiles").is_some());
        assert!(run.bs_profile.stage(STAGE_QTB).is_some());
        // QR dominates BS, as in Table 11 ("about 100 times less")
        assert!(
            run.qr_profile.all_kernels_ms() > 5.0 * run.bs_profile.all_kernels_ms(),
            "QR {} ms vs BS {} ms",
            run.qr_profile.all_kernels_ms(),
            run.bs_profile.all_kernels_ms()
        );
        let total = run.total_profile();
        let sum = run.qr_profile.all_kernels_ms() + run.bs_profile.all_kernels_ms();
        assert!((total.all_kernels_ms() - sum).abs() < 1e-9);
    }

    #[test]
    fn rect_model_profile_matches_functional_accounting() {
        // the planner's cost oracle must charge exactly what a real
        // (functional) solve of the same tall shape records
        let mut rng = StdRng::seed_from_u64(307);
        let opts = LstsqOptions {
            tiles: 2,
            tile_size: 4,
            mode: ExecMode::Sequential,
        };
        let m = 16;
        let a = HostMat::<Qd>::random(m, opts.cols(), &mut rng);
        let b: Vec<Qd> = mdls_matrix::random_vector(m, &mut rng);
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        let (qr, bs) = lstsq_model_profiles_rect::<Qd>(&Gpu::v100(), m, &opts);
        assert_eq!(qr.all_kernels_ms(), run.qr_profile.all_kernels_ms());
        assert_eq!(bs.all_kernels_ms(), run.bs_profile.all_kernels_ms());
        assert_eq!(bs.total_flops_paper(), run.bs_profile.total_flops_paper());
        // the wall clock is what the pipeline's scheduler books onto
        // device clocks — the oracle must match it exactly too
        assert_eq!(qr.wall_ms(), run.qr_profile.wall_ms());
        assert_eq!(bs.wall_ms(), run.bs_profile.wall_ms());
    }

    #[test]
    fn factorization_solve_is_bit_identical_to_lstsq() {
        // the split must not change a single bit of a one-shot solve,
        // and re-solving against a second rhs must match a fresh lstsq
        // of the same system (the factorization is stateless across
        // solves)
        let mut rng = StdRng::seed_from_u64(310);
        let opts = LstsqOptions {
            tiles: 3,
            tile_size: 4,
            mode: ExecMode::Sequential,
        };
        let n = opts.cols();
        let a = HostMat::<Dd>::random(n, n, &mut rng);
        let b1: Vec<Dd> = mdls_matrix::random_vector(n, &mut rng);
        let b2: Vec<Dd> = mdls_matrix::random_vector(n, &mut rng);

        let f = lstsq_factor(&Gpu::v100(), &a, &opts);
        let (x1, p1) = f.solve(&b1);
        let (x2, p2) = f.solve(&b2);

        let r1 = lstsq(&Gpu::v100(), &a, &b1, &opts);
        let r2 = lstsq(&Gpu::v100(), &a, &b2, &opts);
        assert_eq!(x1, r1.x, "first solve diverged from lstsq");
        assert_eq!(x2, r2.x, "reused factorization diverged from lstsq");
        // per-solve profiles repeat phase 2 exactly
        assert_eq!(p1.all_kernels_ms(), r1.bs_profile.all_kernels_ms());
        assert_eq!(p2.all_kernels_ms(), p1.all_kernels_ms());
        assert_eq!(p1.total_launches(), r1.bs_profile.total_launches());
        assert_eq!(
            f.factor_profile().all_kernels_ms(),
            r1.qr_profile.all_kernels_ms()
        );
    }

    #[test]
    fn model_factorization_prices_extra_solves() {
        // the Correct-stage cost oracle: a model-only factorization
        // prices each extra solve at exactly the bs phase of the fused
        // model profile
        let opts = LstsqOptions {
            tiles: 4,
            tile_size: 8,
            mode: ExecMode::ModelOnly,
        };
        let f = lstsq_factor_model::<Qd>(&Gpu::v100(), 40, &opts);
        let (qr, bs) = lstsq_model_profiles_rect::<Qd>(&Gpu::v100(), 40, &opts);
        assert_eq!(f.factor_profile().wall_ms(), qr.wall_ms());
        let (x, p) = f.solve(&[]);
        assert!(x.is_empty());
        assert_eq!(p.wall_ms(), bs.wall_ms());
        assert_eq!(p.total_flops_paper(), bs.total_flops_paper());
    }

    #[test]
    fn residual_kernel_matches_host_arithmetic() {
        let mut rng = StdRng::seed_from_u64(311);
        let (m, n) = (12, 8);
        let a = HostMat::<Qd>::random(m, n, &mut rng);
        let x: Vec<Qd> = mdls_matrix::random_vector(n, &mut rng);
        let b: Vec<Qd> = mdls_matrix::random_vector(m, &mut rng);

        let sim = Sim::new(Gpu::v100(), ExecMode::Sequential);
        let da = sim.alloc_mat::<Qd>(m, n);
        let dx = sim.alloc_vec::<Qd>(n);
        let db = sim.alloc_vec::<Qd>(m);
        let dr = sim.alloc_vec::<Qd>(m);
        a.upload_to(&da);
        dx.upload(&x);
        db.upload(&b);
        residual_kernel(&sim, &da, &dx, &db, &dr, 4);
        let r = dr.download();

        let ax = a.matvec(&x);
        for i in 0..m {
            let expect = b[i] - ax[i];
            let err = (r[i] - expect).abs().to_f64().abs();
            assert!(err < 1e-60, "row {i}: kernel residual off by {err:e}");
        }
        let p = sim.profile();
        assert!(p.stage(STAGE_RESIDUAL).is_some());
        // model profile prices the same launch (plus transfers)
        let mp = residual_model_profile::<Qd>(&Gpu::v100(), m, n, 4, false);
        assert_eq!(
            p.stage(STAGE_RESIDUAL).unwrap().kernel_ms,
            mp.stage(STAGE_RESIDUAL).unwrap().kernel_ms
        );
        // the system upload is charged only when asked
        let with = residual_model_profile::<Qd>(&Gpu::v100(), m, n, 4, true);
        assert!(with.wall_ms() > mp.wall_ms());
        assert_eq!(with.all_kernels_ms(), mp.all_kernels_ms());
    }

    #[test]
    fn batched_factorization_is_bit_identical_to_singletons() {
        // the micro-batching contract: fusing k same-shaped systems
        // into batched launches changes accounting, never bits
        let mut rng = StdRng::seed_from_u64(320);
        let opts = LstsqOptions {
            tiles: 3,
            tile_size: 4,
            mode: ExecMode::Sequential,
        };
        let n = opts.cols();
        let systems: Vec<HostMat<Dd>> = (0..5).map(|_| HostMat::random(n, n, &mut rng)).collect();
        let rhs: Vec<Vec<Dd>> = (0..5)
            .map(|_| mdls_matrix::random_vector(n, &mut rng))
            .collect();

        let refs: Vec<&HostMat<Dd>> = systems.iter().collect();
        let fact = lstsq_factor_batched(&Gpu::v100(), &refs, &opts);
        assert_eq!(fact.group_size(), 5);
        let (xs, _) = fact.solve_all(&rhs);

        for i in 0..5 {
            let run = lstsq(&Gpu::v100(), &systems[i], &rhs[i], &opts);
            assert_eq!(xs[i], run.x, "instance {i} diverged from the unfused solve");
        }
    }

    #[test]
    fn batched_model_profiles_price_the_fused_group() {
        let opts = LstsqOptions {
            tiles: 4,
            tile_size: 8,
            mode: ExecMode::ModelOnly,
        };
        let k = 24;
        let (qr1, bs1) = lstsq_model_profiles_rect::<Qd>(&Gpu::v100(), 32, &opts);
        let (qrk, bsk) = lstsq_batched_model_profiles::<Qd>(&Gpu::v100(), k, 32, &opts);
        // all k instances' flops and traffic are accounted...
        assert_eq!(qrk.total_flops_paper(), k as f64 * qr1.total_flops_paper());
        assert_eq!(bsk.total_bytes(), k as u64 * bs1.total_bytes());
        assert_eq!(qrk.transfer_bytes, k as u64 * qr1.transfer_bytes);
        // ...through the singleton launch count (fusion, not repetition)
        assert_eq!(qrk.total_launches(), qr1.total_launches());
        // and the fused group is far cheaper than k singleton solves on
        // this occupancy-starved 32-unknown shape
        let fused = qrk.wall_ms() + bsk.wall_ms();
        let singles = k as f64 * (qr1.wall_ms() + bs1.wall_ms());
        assert!(
            fused < singles / 2.0,
            "fused {fused:.3} ms vs {k} singletons {singles:.3} ms"
        );
        // a fused group of one is exactly the singleton oracle
        let (qr, bs) = lstsq_batched_model_profiles::<Qd>(&Gpu::v100(), 1, 32, &opts);
        assert_eq!(qr.wall_ms(), qr1.wall_ms());
        assert_eq!(bs.wall_ms(), bs1.wall_ms());
    }

    #[test]
    fn batched_residual_profile_fuses_the_launch() {
        let (m, n, b) = (48, 32, 8);
        let one = residual_model_profile::<Qd>(&Gpu::v100(), m, n, b, false);
        let k = 16;
        let fused = residual_model_profile_batched::<Qd>(&Gpu::v100(), k, m, n, b, false);
        assert_eq!(
            fused.total_flops_paper(),
            k as f64 * one.total_flops_paper()
        );
        assert_eq!(fused.total_launches(), one.total_launches());
        assert!(fused.wall_ms() < k as f64 * one.wall_ms() / 2.0);
    }

    #[test]
    fn model_only_returns_profiles_without_solution() {
        let opts = LstsqOptions {
            tiles: 2,
            tile_size: 8,
            mode: ExecMode::ModelOnly,
        };
        let n = opts.cols();
        let a = HostMat::<Qd>::zeros(n, n);
        let b = vec![Qd::ZERO; n];
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        assert!(run.x.is_empty());
        assert!(run.qr_profile.all_kernels_ms() > 0.0);
        assert!(run.bs_profile.all_kernels_ms() > 0.0);
    }
}
