//! Host-side multiple double matrices and reference linear algebra.
//!
//! Everything the GPU drivers need around them: workload generation (the
//! paper's §4.1 conventions), golden-reference BLAS for verification, LU
//! factorization (to produce well-conditioned triangular test inputs —
//! random triangular matrices are exponentially ill conditioned, the
//! paper's reference \[33\]), residual and norm computations, and
//! host/device conversion.

pub mod gen;
pub mod hostmat;
pub mod lu;
pub mod norms;

pub use gen::{hilbert, random_matrix, random_vector, well_conditioned_upper};
pub use hostmat::HostMat;
pub use lu::{lu_decompose, LuError};
pub use norms::{vec_norm2, vec_norm_inf};
