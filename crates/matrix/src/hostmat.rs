//! [`HostMat`]: a dense column-major host matrix over any [`MdScalar`],
//! with the golden-reference operations used to verify the simulated
//! device kernels.

use gpusim::DeviceMat;
use multidouble::{MdReal, MdScalar};
use rand::Rng;

/// Dense column-major matrix on the host.
#[derive(Clone, Debug, PartialEq)]
pub struct HostMat<S> {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Column-major storage: element `(r, c)` at `c * rows + r`.
    pub data: Vec<S>,
}

impl<S: MdScalar> HostMat<S> {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        HostMat {
            rows,
            cols,
            data: vec![S::zero(); rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, S::one());
        }
        m
    }

    /// Random matrix with entries uniform in `[-1, 1]` on every limb.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        HostMat {
            rows,
            cols,
            data: (0..rows * cols).map(|_| S::rand(rng)).collect(),
        }
    }

    /// Build from a row-major nested closure (convenient in tests).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut m = Self::zeros(rows, cols);
        for c in 0..cols {
            for r in 0..rows {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Element access.
    #[inline(always)]
    pub fn get(&self, r: usize, c: usize) -> S {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[c * self.rows + r]
    }

    /// Element assignment.
    #[inline(always)]
    pub fn set(&mut self, r: usize, c: usize, v: S) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[c * self.rows + r] = v;
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[S]) -> Vec<S> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![S::zero(); self.rows];
        for c in 0..self.cols {
            let xc = x[c];
            for r in 0..self.rows {
                y[r] += self.get(r, c) * xc;
            }
        }
        y
    }

    /// Conjugate-transposed matrix-vector product `A^H x`.
    pub fn matvec_conj_t(&self, x: &[S]) -> Vec<S> {
        assert_eq!(x.len(), self.rows);
        let mut y = vec![S::zero(); self.cols];
        for c in 0..self.cols {
            let mut acc = S::zero();
            for r in 0..self.rows {
                acc += self.get(r, c).conj() * x[r];
            }
            y[c] = acc;
        }
        y
    }

    /// Matrix-matrix product `A * B`.
    pub fn matmul(&self, b: &HostMat<S>) -> HostMat<S> {
        assert_eq!(self.cols, b.rows);
        let mut c = HostMat::zeros(self.rows, b.cols);
        for j in 0..b.cols {
            for k in 0..self.cols {
                let bkj = b.get(k, j);
                if bkj.is_zero() {
                    continue;
                }
                for i in 0..self.rows {
                    let v = c.get(i, j) + self.get(i, k) * bkj;
                    c.set(i, j, v);
                }
            }
        }
        c
    }

    /// Conjugate transpose `A^H` (plain transpose for real scalars).
    pub fn conj_transpose(&self) -> HostMat<S> {
        let mut t = HostMat::zeros(self.cols, self.rows);
        for c in 0..self.cols {
            for r in 0..self.rows {
                t.set(c, r, self.get(r, c).conj());
            }
        }
        t
    }

    /// Frobenius norm as a real scalar.
    pub fn frobenius(&self) -> S::Real {
        let mut acc = <S::Real as MdReal>::zero();
        for v in &self.data {
            acc += v.norm_sqr();
        }
        acc.sqrt()
    }

    /// `max |a_ij|` leading double (for quick sanity checks).
    pub fn max_abs_f64(&self) -> f64 {
        self.data
            .iter()
            .map(|v| v.norm_sqr().to_f64().sqrt())
            .fold(0.0, f64::max)
    }

    /// Residual `|| b - A x ||_2` as a real scalar.
    pub fn residual(&self, x: &[S], b: &[S]) -> S::Real {
        let ax = self.matvec(x);
        let mut acc = <S::Real as MdReal>::zero();
        for (bi, axi) in b.iter().zip(ax.iter()) {
            acc += (*bi - *axi).norm_sqr();
        }
        acc.sqrt()
    }

    /// Deviation of `Q` from unitarity: `|| Q^H Q - I ||_F`.
    pub fn orthogonality_defect(&self) -> S::Real {
        let qhq = self.conj_transpose().matmul(self);
        let mut acc = <S::Real as MdReal>::zero();
        for c in 0..qhq.cols {
            for r in 0..qhq.rows {
                let want = if r == c { S::one() } else { S::zero() };
                acc += (qhq.get(r, c) - want).norm_sqr();
            }
        }
        acc.sqrt()
    }

    /// `|| A - B ||_F`.
    pub fn diff_frobenius(&self, b: &HostMat<S>) -> S::Real {
        assert_eq!((self.rows, self.cols), (b.rows, b.cols));
        let mut acc = <S::Real as MdReal>::zero();
        for (x, y) in self.data.iter().zip(b.data.iter()) {
            acc += (*x - *y).norm_sqr();
        }
        acc.sqrt()
    }

    /// Largest below-diagonal magnitude (upper-triangularity check).
    pub fn max_below_diagonal(&self) -> f64 {
        let mut m = 0.0f64;
        for c in 0..self.cols {
            for r in (c + 1)..self.rows {
                m = m.max(self.get(r, c).norm_sqr().to_f64().sqrt());
            }
        }
        m
    }

    /// Upload to a device matrix (allocated by the caller's `Sim`).
    pub fn upload_to(&self, dev: &DeviceMat<S>) {
        assert_eq!((dev.rows, dev.cols), (self.rows, self.cols));
        dev.upload_col_major(&self.data);
    }

    /// Download a device matrix into a new host matrix.
    pub fn download_from(dev: &DeviceMat<S>) -> HostMat<S> {
        HostMat {
            rows: dev.rows,
            cols: dev.cols,
            data: dev.download_col_major(),
        }
    }

    /// Reference back substitution on an upper-triangular `self`
    /// (golden model for Algorithm 1).
    pub fn solve_upper(&self, b: &[S]) -> Vec<S> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.get(i, j) * x[j];
            }
            x[i] = acc / self.get(i, i);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{Complex, Dd, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_identity() {
        let m = HostMat::<Qd>::identity(4);
        let x: Vec<Qd> = (0..4).map(|i| Qd::from_f64(i as f64 + 1.0)).collect();
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn matmul_associates_on_small_case() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = HostMat::<Dd>::random(3, 4, &mut rng);
        let b = HostMat::<Dd>::random(4, 2, &mut rng);
        let c = HostMat::<Dd>::random(2, 5, &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        let d = left.diff_frobenius(&right).to_f64();
        assert!(d < 1e-28, "associativity defect {d:e}");
    }

    #[test]
    fn conj_transpose_involutive() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = HostMat::<Complex<Dd>>::random(3, 5, &mut rng);
        assert_eq!(a.conj_transpose().conj_transpose(), a);
    }

    #[test]
    fn solve_upper_reference() {
        // [2 1; 0 4] x = [4; 8] -> x = [1; 2]... solve: x2 = 2, x1 = (4-2)/2 = 1
        let mut u = HostMat::<Qd>::zeros(2, 2);
        u.set(0, 0, Qd::from_f64(2.0));
        u.set(0, 1, Qd::from_f64(1.0));
        u.set(1, 1, Qd::from_f64(4.0));
        let x = u.solve_upper(&[Qd::from_f64(4.0), Qd::from_f64(8.0)]);
        assert_eq!(x[0].to_f64(), 1.0);
        assert_eq!(x[1].to_f64(), 2.0);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let m = HostMat::<Dd>::identity(3);
        let b = vec![Dd::from_f64(1.0); 3];
        assert_eq!(m.residual(&b, &b).to_f64(), 0.0);
    }

    #[test]
    fn orthogonality_defect_of_identity_is_zero() {
        let m = HostMat::<Qd>::identity(5);
        assert_eq!(m.orthogonality_defect().to_f64(), 0.0);
    }

    #[test]
    fn device_roundtrip() {
        use gpusim::{ExecMode, Gpu, Sim};
        let mut rng = StdRng::seed_from_u64(11);
        let h = HostMat::<Qd>::random(6, 3, &mut rng);
        let sim = Sim::new(Gpu::v100(), ExecMode::Sequential);
        let d = sim.alloc_mat::<Qd>(6, 3);
        h.upload_to(&d);
        assert_eq!(HostMat::download_from(&d), h);
    }
}
