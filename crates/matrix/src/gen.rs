//! Workload generators matching the paper's experimental setup (§4.1).

use multidouble::{MdReal, MdScalar};
use rand::Rng;

use crate::hostmat::HostMat;
use crate::lu::lu_decompose;

/// Random dense matrix, entries uniform in `[-1, 1]` with random limbs.
pub fn random_matrix<S: MdScalar, R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    rng: &mut R,
) -> HostMat<S> {
    HostMat::random(rows, cols, rng)
}

/// Random vector.
pub fn random_vector<S: MdScalar, R: Rng + ?Sized>(len: usize, rng: &mut R) -> Vec<S> {
    (0..len).map(|_| S::rand(rng)).collect()
}

/// A well-conditioned random upper triangular matrix: the `U` factor of a
/// pivoted LU of a random dense matrix (the paper's §4.1 recipe, after
/// Viswanath–Trefethen's observation that directly random triangular
/// matrices are exponentially ill conditioned).
pub fn well_conditioned_upper<S: MdScalar, R: Rng + ?Sized>(n: usize, rng: &mut R) -> HostMat<S> {
    loop {
        let a = HostMat::<S>::random(n, n, rng);
        if let Ok(f) = lu_decompose(&a) {
            return f.upper();
        }
        // astronomically unlikely to loop for random input
    }
}

/// The `n × n` Hilbert matrix `h_ij = 1 / (i + j + 1)` — the classic
/// ill-conditioned example used by the precision-ladder example to show
/// why multiple double precision earns its keep.
pub fn hilbert<S: MdScalar>(n: usize) -> HostMat<S> {
    HostMat::from_fn(n, n, |i, j| S::one() / S::from_f64((i + j + 1) as f64))
}

/// Crude 2-norm condition estimate by power iteration on `A^H A` and
/// inverse iteration via `solve_upper` (only valid for upper triangular
/// input; used by tests to verify the generator's conditioning).
pub fn upper_condition_estimate<S: MdScalar>(u: &HostMat<S>, iters: usize) -> f64 {
    let n = u.rows;
    assert_eq!(n, u.cols);
    // largest singular value of U: power iteration on U^H U
    let mut x = vec![S::from_f64(1.0); n];
    let mut sigma_max = 0.0f64;
    for _ in 0..iters {
        let y = u.matvec(&x);
        let z = u.matvec_conj_t(&y);
        let norm = crate::norms::vec_norm2(&z);
        let nf = norm.to_f64();
        if nf == 0.0 {
            break;
        }
        sigma_max = nf.sqrt();
        for v in x.iter_mut().zip(z.iter()) {
            *v.0 = v.1.unscale(norm);
        }
    }
    // smallest singular value: inverse power iteration via triangular solves
    let mut x = vec![S::from_f64(1.0); n];
    let mut inv_sigma_min = 0.0f64;
    let ut = u.conj_transpose();
    for _ in 0..iters {
        // solve U^H w = x (lower triangular forward solve via transpose trick)
        let w = solve_lower(&ut, &x);
        let y = u.solve_upper(&w);
        let norm = crate::norms::vec_norm2(&y);
        let nf = norm.to_f64();
        if nf == 0.0 {
            break;
        }
        inv_sigma_min = nf.sqrt();
        for v in x.iter_mut().zip(y.iter()) {
            *v.0 = v.1.unscale(norm);
        }
    }
    sigma_max * inv_sigma_min
}

/// Forward substitution on a lower triangular matrix.
fn solve_lower<S: MdScalar>(l: &HostMat<S>, b: &[S]) -> Vec<S> {
    let n = l.rows;
    let mut x = b.to_vec();
    for i in 0..n {
        let mut acc = x[i];
        for j in 0..i {
            acc -= l.get(i, j) * x[j];
        }
        x[i] = acc / l.get(i, i);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{Dd, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lu_upper_is_upper_triangular() {
        let mut rng = StdRng::seed_from_u64(21);
        let u = well_conditioned_upper::<Qd, _>(16, &mut rng);
        assert_eq!(u.max_below_diagonal(), 0.0);
        for i in 0..16 {
            assert!(u.get(i, i).norm_sqr().to_f64() > 0.0);
        }
    }

    #[test]
    fn lu_upper_is_better_conditioned_than_raw_random_triangular() {
        let mut rng = StdRng::seed_from_u64(22);
        let n = 48;
        let good = well_conditioned_upper::<Dd, _>(n, &mut rng);
        // directly random upper triangular (the thing the paper avoids)
        let mut bad = HostMat::<Dd>::random(n, n, &mut rng);
        for c in 0..n {
            for r in (c + 1)..n {
                bad.set(r, c, Dd::ZERO);
            }
        }
        let kg = upper_condition_estimate(&good, 30);
        let kb = upper_condition_estimate(&bad, 30);
        assert!(
            kg < kb / 10.0,
            "LU-derived cond {kg:e} not clearly better than raw {kb:e}"
        );
    }

    #[test]
    fn hilbert_matches_known_entries() {
        let h = hilbert::<Qd>(3);
        assert_eq!(h.get(0, 0).to_f64(), 1.0);
        assert!((h.get(1, 2).to_f64() - 0.25).abs() < 1e-16);
        assert_eq!(h.get(2, 1), h.get(1, 2)); // symmetric
    }

    #[test]
    fn random_vector_is_seed_deterministic() {
        let a: Vec<Qd> = random_vector(5, &mut StdRng::seed_from_u64(1));
        let b: Vec<Qd> = random_vector(5, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
