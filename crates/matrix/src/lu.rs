//! LU factorization with partial pivoting, generic over [`MdScalar`].
//!
//! Used as the paper uses it (§4.1): "the random upper triangular matrices
//! were computed on the host as the output of an LU factorization, as the
//! condition numbers of random triangular matrices almost surely grow
//! exponentially". The `U` factor of a pivoted LU of a random dense matrix
//! is polynomially conditioned, so back substitution residuals land at the
//! working precision's roundoff.

use multidouble::{MdReal, MdScalar};

use crate::hostmat::HostMat;

/// Failure modes of the factorization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare,
    /// A zero pivot survived partial pivoting (singular matrix).
    Singular {
        /// Column at which elimination broke down.
        col: usize,
    },
}

impl core::fmt::Display for LuError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LuError::NotSquare => write!(f, "LU requires a square matrix"),
            LuError::Singular { col } => write!(f, "singular at column {col}"),
        }
    }
}

impl std::error::Error for LuError {}

/// Result of `P A = L U`.
#[derive(Debug)]
pub struct Lu<S> {
    /// Unit lower triangular factor (diagonal implicitly one), stored
    /// in the strictly lower part; upper part holds `U`.
    pub lu: HostMat<S>,
    /// Row permutation: row `i` of `U`'s system came from `perm[i]` of `A`.
    pub perm: Vec<usize>,
    /// Number of row swaps (sign of the permutation).
    pub swaps: usize,
}

impl<S: MdScalar> Lu<S> {
    /// Extract the upper triangular factor `U`.
    pub fn upper(&self) -> HostMat<S> {
        let n = self.lu.rows;
        let mut u = HostMat::zeros(n, n);
        for c in 0..n {
            for r in 0..=c {
                u.set(r, c, self.lu.get(r, c));
            }
        }
        u
    }

    /// Extract the unit lower triangular factor `L`.
    pub fn lower(&self) -> HostMat<S> {
        let n = self.lu.rows;
        let mut l = HostMat::identity(n);
        for c in 0..n {
            for r in (c + 1)..n {
                l.set(r, c, self.lu.get(r, c));
            }
        }
        l
    }

    /// Apply the row permutation to a matrix (`P A`).
    pub fn permute_rows(&self, a: &HostMat<S>) -> HostMat<S> {
        let mut out = HostMat::zeros(a.rows, a.cols);
        for (i, &p) in self.perm.iter().enumerate() {
            for c in 0..a.cols {
                out.set(i, c, a.get(p, c));
            }
        }
        out
    }
}

/// Factor `P A = L U` with partial pivoting.
pub fn lu_decompose<S: MdScalar>(a: &HostMat<S>) -> Result<Lu<S>, LuError> {
    if a.rows != a.cols {
        return Err(LuError::NotSquare);
    }
    let n = a.rows;
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut swaps = 0usize;

    for k in 0..n {
        // pivot search on the leading double of |a_ik|
        let mut piv = k;
        let mut best = lu.get(k, k).norm_sqr().to_f64();
        for r in (k + 1)..n {
            let v = lu.get(r, k).norm_sqr().to_f64();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best == 0.0 {
            return Err(LuError::Singular { col: k });
        }
        if piv != k {
            for c in 0..n {
                let t = lu.get(k, c);
                lu.set(k, c, lu.get(piv, c));
                lu.set(piv, c, t);
            }
            perm.swap(k, piv);
            swaps += 1;
        }
        let pivot = lu.get(k, k);
        for r in (k + 1)..n {
            let m = lu.get(r, k) / pivot;
            lu.set(r, k, m);
            for c in (k + 1)..n {
                let v = lu.get(r, c) - m * lu.get(k, c);
                lu.set(r, c, v);
            }
        }
    }
    Ok(Lu { lu, perm, swaps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{Complex, Dd, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_pa() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = HostMat::<Qd>::random(8, 8, &mut rng);
        let f = lu_decompose(&a).unwrap();
        let pa = f.permute_rows(&a);
        let rec = f.lower().matmul(&f.upper());
        let d = pa.diff_frobenius(&rec).to_f64();
        assert!(d < 1e-58, "PA - LU defect {d:e}");
    }

    #[test]
    fn complex_reconstruction() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = HostMat::<Complex<Dd>>::random(6, 6, &mut rng);
        let f = lu_decompose(&a).unwrap();
        let pa = f.permute_rows(&a);
        let rec = f.lower().matmul(&f.upper());
        let d = pa.diff_frobenius(&rec).to_f64();
        assert!(d < 1e-26, "PA - LU defect {d:e}");
    }

    #[test]
    fn rejects_non_square() {
        let a = HostMat::<f64>::zeros(2, 3);
        assert_eq!(lu_decompose(&a).unwrap_err(), LuError::NotSquare);
    }

    #[test]
    fn detects_singularity() {
        let a = HostMat::<f64>::zeros(3, 3);
        assert!(matches!(
            lu_decompose(&a).unwrap_err(),
            LuError::Singular { .. }
        ));
    }

    #[test]
    fn u_diagonal_nonzero_for_random_input() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = HostMat::<Dd>::random(12, 12, &mut rng);
        let u = lu_decompose(&a).unwrap().upper();
        for i in 0..12 {
            assert!(u.get(i, i).norm_sqr().to_f64() > 0.0);
        }
    }
}
