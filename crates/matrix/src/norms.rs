//! Vector norms over multiple double scalars.

use multidouble::{MdReal, MdScalar};

/// Euclidean norm `|| x ||_2`.
pub fn vec_norm2<S: MdScalar>(x: &[S]) -> S::Real {
    let mut acc = <S::Real as MdReal>::zero();
    for v in x {
        acc += v.norm_sqr();
    }
    acc.sqrt()
}

/// Max norm `|| x ||_inf` (by modulus).
pub fn vec_norm_inf<S: MdScalar>(x: &[S]) -> S::Real {
    let mut best = <S::Real as MdReal>::zero();
    for v in x {
        let m = v.norm_sqr();
        if m > best {
            best = m;
        }
    }
    best.sqrt()
}

/// `|| x - y ||_2`.
pub fn vec_diff_norm2<S: MdScalar>(x: &[S], y: &[S]) -> S::Real {
    assert_eq!(x.len(), y.len());
    let mut acc = <S::Real as MdReal>::zero();
    for (a, b) in x.iter().zip(y.iter()) {
        acc += (*a - *b).norm_sqr();
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{Complex, Dd};

    #[test]
    fn pythagorean() {
        let x = [Dd::from_f64(3.0), Dd::from_f64(4.0)];
        assert_eq!(vec_norm2(&x).to_f64(), 5.0);
        assert_eq!(vec_norm_inf(&x).to_f64(), 4.0);
    }

    #[test]
    fn complex_norm() {
        let x = [Complex::new(Dd::from_f64(3.0), Dd::from_f64(4.0))];
        assert_eq!(vec_norm2(&x).to_f64(), 5.0);
    }

    #[test]
    fn diff_norm() {
        let x = [Dd::from_f64(1.0), Dd::from_f64(2.0)];
        let y = [Dd::from_f64(1.0), Dd::from_f64(0.0)];
        assert_eq!(vec_diff_norm2(&x, &y).to_f64(), 2.0);
    }
}
