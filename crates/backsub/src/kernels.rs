//! Functional kernel bodies for Algorithm 1, written at block granularity
//! (CUDA barrier phases become sequential loops over the block's threads).
//!
//! All index arithmetic uses the global `N·n × N·n` column-major matrix;
//! tile `(i, j)` starts at row `i·n`, column `j·n`.

use gpusim::{BlockCtx, DeviceBuf, DeviceMat};
use multidouble::MdScalar;

/// Invert diagonal tile `ctx.block` in place: thread `k` solves
/// `U v = e_k` and writes column `k` of the inverse.
///
/// Phase 1 stages the tile's upper triangle into shared memory (all
/// threads cooperate, then barrier); phase 2 lets each thread back-solve
/// its unit vector independently and write its column to global memory.
pub fn invert_tile_block<S: MdScalar>(ctx: BlockCtx, u: &DeviceMat<S>, n: usize) {
    let t = ctx.block; // tile index
    let base = t * n;

    // phase 1: shared memory copy of the tile's upper triangle
    let mut shared = vec![S::zero(); n * n];
    for r in 0..n {
        for c in r..n {
            shared[c * n + r] = u.get(base + r, base + c);
        }
    }
    // __syncthreads()

    // phase 2: thread k computes column k of the inverse with a
    // divergence-free full back substitution (rows below k produce
    // exact zeros; every warp lane walks the same loop bounds)
    for k in ctx.thread_ids() {
        if k >= n {
            continue;
        }
        let mut v = vec![S::zero(); n];
        for i in (0..n).rev() {
            let mut acc = if i == k { S::one() } else { S::zero() };
            for (j, vj) in v.iter().enumerate().skip(i + 1) {
                acc -= shared[j * n + i] * *vj;
            }
            v[i] = acc / shared[i * n + i];
        }
        for (i, vi) in v.iter().enumerate().take(k + 1) {
            u.set(base + i, base + k, *vi);
        }
    }
}

/// `x_i := U_i^{-1} b_i` — one block of `n` threads; thread `r` computes
/// component `r` (the inverse is upper triangular, so columns `c ≥ r`).
pub fn multiply_inverse_block<S: MdScalar>(
    ctx: BlockCtx,
    u: &DeviceMat<S>,
    b: &DeviceBuf<S>,
    x: &DeviceBuf<S>,
    tile: usize,
    n: usize,
) {
    let base = tile * n;
    for r in ctx.thread_ids() {
        if r >= n {
            continue;
        }
        let mut acc = S::zero();
        for c in r..n {
            acc += u.get(base + r, base + c) * b.get(base + c);
        }
        x.set(base + r, acc);
    }
}

/// One update block: `b_j -= A_{j,i} x_i` where `j = ctx.block`.
/// Thread `r` owns component `r` of `b_j`.
pub fn update_rhs_block<S: MdScalar>(
    ctx: BlockCtx,
    u: &DeviceMat<S>,
    b: &DeviceBuf<S>,
    x: &DeviceBuf<S>,
    i: usize,
    n: usize,
) {
    let j = ctx.block;
    let row_base = j * n;
    let col_base = i * n;
    for r in ctx.thread_ids() {
        if r >= n {
            continue;
        }
        let mut acc = S::zero();
        for c in 0..n {
            acc += u.get(row_base + r, col_base + c) * x.get(col_base + c);
        }
        b.set(row_base + r, b.get(row_base + r) - acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::{ExecMode, Gpu, Sim};
    use mdls_matrix::HostMat;
    use multidouble::Qd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invert_block_produces_tile_inverse() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 8;
        let host = mdls_matrix::well_conditioned_upper::<Qd, _>(n, &mut rng);
        let sim = Sim::new(Gpu::v100(), ExecMode::Sequential);
        let dev = sim.alloc_mat::<Qd>(n, n);
        host.upload_to(&dev);

        invert_tile_block(
            BlockCtx {
                block: 0,
                grid: 1,
                threads: n,
            },
            &dev,
            n,
        );

        let inv = HostMat::download_from(&dev);
        let prod = host.matmul(&inv);
        let defect = prod.diff_frobenius(&HostMat::identity(n)).to_f64();
        assert!(defect < 1e-58, "U * U^-1 - I = {defect:e}");
    }

    #[test]
    fn multiply_block_applies_inverse() {
        let mut rng = StdRng::seed_from_u64(32);
        let n = 6;
        let host = mdls_matrix::well_conditioned_upper::<Qd, _>(n, &mut rng);
        let bh: Vec<Qd> = mdls_matrix::random_vector(n, &mut rng);
        let want = host.solve_upper(&bh);

        let sim = Sim::new(Gpu::v100(), ExecMode::Sequential);
        let dev = sim.alloc_mat::<Qd>(n, n);
        host.upload_to(&dev);
        let b = sim.alloc_vec::<Qd>(n);
        b.upload(&bh);
        let x = sim.alloc_vec::<Qd>(n);

        let ctx = BlockCtx {
            block: 0,
            grid: 1,
            threads: n,
        };
        invert_tile_block(ctx, &dev, n);
        multiply_inverse_block(ctx, &dev, &b, &x, 0, n);

        let got = x.download();
        let err = mdls_matrix::norms::vec_diff_norm2(&got, &want).to_f64();
        assert!(err < 1e-58, "solve error {err:e}");
    }
}
