//! The Algorithm 1 driver: issues the `1 + N(N+1)/2` launches against a
//! simulator session and reports the three-stage profile of the paper's
//! Tables 7–9.

use gpusim::{ExecMode, Gpu, Profile, Sim};
use mdls_matrix::HostMat;
use multidouble::MdScalar;

use crate::cost;
use crate::kernels;
use crate::{STAGE_INVERT, STAGE_MULTIPLY, STAGE_UPDATE};

/// Tiling of the upper triangular system.
#[derive(Clone, Copy, Debug)]
pub struct BacksubOptions {
    /// Number of tiles `N`.
    pub tiles: usize,
    /// Tile size `n` (threads per block).
    pub tile_size: usize,
}

impl BacksubOptions {
    /// Problem dimension `N · n`.
    pub fn dim(&self) -> usize {
        self.tiles * self.tile_size
    }
}

/// Outcome of a back substitution run.
pub struct BacksubRun<S> {
    /// The solution (present in functional modes, `None` in model-only).
    pub x: Option<Vec<S>>,
    /// Stage-resolved timing/flop profile.
    pub profile: Profile,
}

/// Run Algorithm 1 on an existing simulator session. The matrix and right
/// hand side must already be on the device; `x` receives the solution.
///
/// Launch sequence (matching the paper's count of `1 + N(N+1)/2`):
/// one inversion launch, then per step `i = N-1..0` one multiply launch
/// and (for `i > 0`) one update launch of `i` blocks.
pub fn backsub_on_sim<S: MdScalar>(
    sim: &Sim,
    u: &gpusim::DeviceMat<S>,
    b: &gpusim::DeviceBuf<S>,
    x: &gpusim::DeviceBuf<S>,
    opts: &BacksubOptions,
) {
    let (nt, n) = (opts.tiles, opts.tile_size);
    assert_eq!(u.rows, opts.dim(), "matrix does not match tiling");
    assert_eq!(u.rows, u.cols, "back substitution needs a square matrix");
    assert_eq!(b.len(), opts.dim());
    assert_eq!(x.len(), opts.dim());

    // 1. invert all diagonal tiles: N blocks of n threads
    sim.launch(STAGE_INVERT, nt, n, cost::invert_cost::<S>(nt, n), |ctx| {
        kernels::invert_tile_block(ctx, u, n)
    });

    // 2. alternate multiplies and updates
    for i in (0..nt).rev() {
        sim.launch(STAGE_MULTIPLY, 1, n, cost::multiply_cost::<S>(n), |ctx| {
            kernels::multiply_inverse_block(ctx, u, b, x, i, n)
        });
        if i > 0 {
            // the paper counts each b_j update as its own launch while
            // executing the i blocks of one step simultaneously
            sim.launch_counted(
                STAGE_UPDATE,
                i,
                n,
                cost::update_cost::<S>(i, n),
                i as u64,
                |ctx| kernels::update_rhs_block(ctx, u, b, x, i, n),
            );
        }
    }
}

/// Standalone back substitution: creates a session, uploads `u` and `b`
/// (recording the transfers, as the paper's wall clock does), runs
/// Algorithm 1 and downloads the solution.
pub fn backsub<S: MdScalar>(
    gpu: &Gpu,
    mode: ExecMode,
    u: &HostMat<S>,
    b: &[S],
    opts: &BacksubOptions,
) -> BacksubRun<S> {
    let sim = Sim::new(gpu.clone(), mode);
    let dim = opts.dim();
    let du = sim.alloc_mat::<S>(dim, dim);
    let db = sim.alloc_vec::<S>(dim);
    let dx = sim.alloc_vec::<S>(dim);

    sim.record_host_overhead();
    sim.record_transfer(((dim * dim + dim) * S::BYTES) as u64);
    if sim.is_functional() {
        u.upload_to(&du);
        db.upload(b);
    }

    backsub_on_sim(&sim, &du, &db, &dx, opts);

    sim.record_transfer((dim * S::BYTES) as u64);
    let x = if sim.is_functional() {
        Some(dx.download())
    } else {
        None
    };
    BacksubRun {
        x,
        profile: sim.profile(),
    }
}

/// Model-only back substitution profile: no host data, no device storage.
pub fn backsub_model_profile<S: MdScalar>(gpu: &Gpu, opts: &BacksubOptions) -> Profile {
    let sim = Sim::new(gpu.clone(), ExecMode::ModelOnly);
    let dim = opts.dim();
    let du = sim.alloc_mat::<S>(dim, dim);
    let db = sim.alloc_vec::<S>(dim);
    let dx = sim.alloc_vec::<S>(dim);
    sim.record_host_overhead();
    sim.record_transfer(((dim * dim + dim) * S::BYTES) as u64);
    backsub_on_sim(&sim, &du, &db, &dx, opts);
    sim.record_transfer((dim * S::BYTES) as u64);
    sim.profile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{Complex, Dd, MdReal, Od, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_case<S: MdScalar>(n_tiles: usize, tile: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = BacksubOptions {
            tiles: n_tiles,
            tile_size: tile,
        };
        let dim = opts.dim();
        let u = mdls_matrix::well_conditioned_upper::<S, _>(dim, &mut rng);
        let xs: Vec<S> = mdls_matrix::random_vector(dim, &mut rng);
        let b = u.matvec(&xs);
        let run = backsub(&Gpu::v100(), ExecMode::Sequential, &u, &b, &opts);
        let x = run.x.unwrap();
        // relative residual against the generating solution
        let num = mdls_matrix::norms::vec_diff_norm2(&x, &xs).to_f64();
        let den = mdls_matrix::norms::vec_norm2(&xs).to_f64();
        num / den
    }

    #[test]
    fn solves_dd_to_dd_accuracy() {
        let e = run_case::<Dd>(4, 8, 41);
        assert!(e < 1e-27, "dd error {e:e}");
    }

    #[test]
    fn solves_qd_to_qd_accuracy() {
        let e = run_case::<Qd>(3, 8, 42);
        assert!(e < 1e-55, "qd error {e:e}");
    }

    #[test]
    fn solves_od_to_od_accuracy() {
        let e = run_case::<Od>(2, 6, 43);
        assert!(e < 1e-115, "od error {e:e}");
    }

    #[test]
    fn solves_complex_dd() {
        let e = run_case::<Complex<Dd>>(3, 6, 44);
        assert!(e < 1e-26, "complex dd error {e:e}");
    }

    #[test]
    fn launch_count_matches_paper_formula() {
        let mut rng = StdRng::seed_from_u64(45);
        let opts = BacksubOptions {
            tiles: 5,
            tile_size: 4,
        };
        let u = mdls_matrix::well_conditioned_upper::<Dd, _>(20, &mut rng);
        let b: Vec<Dd> = mdls_matrix::random_vector(20, &mut rng);
        let run = backsub(&Gpu::v100(), ExecMode::Sequential, &u, &b, &opts);
        assert_eq!(run.profile.total_launches(), crate::cost::total_launches(5));
        // the three stages of the paper's tables are all present
        assert!(run.profile.stage(STAGE_INVERT).is_some());
        assert!(run.profile.stage(STAGE_MULTIPLY).is_some());
        assert!(run.profile.stage(STAGE_UPDATE).is_some());
    }

    #[test]
    fn model_only_gives_same_profile_as_functional() {
        let mut rng = StdRng::seed_from_u64(46);
        let opts = BacksubOptions {
            tiles: 4,
            tile_size: 8,
        };
        let dim = opts.dim();
        let u = mdls_matrix::well_conditioned_upper::<Qd, _>(dim, &mut rng);
        let b: Vec<Qd> = mdls_matrix::random_vector(dim, &mut rng);
        let f = backsub(&Gpu::v100(), ExecMode::Sequential, &u, &b, &opts);
        let m = backsub(&Gpu::v100(), ExecMode::ModelOnly, &u, &b, &opts);
        assert!(m.x.is_none());
        assert_eq!(
            f.profile.all_kernels_ms(),
            m.profile.all_kernels_ms(),
            "analytic model must not depend on execution"
        );
        assert_eq!(f.profile.total_flops_paper(), m.profile.total_flops_paper());
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(47);
        let opts = BacksubOptions {
            tiles: 6,
            tile_size: 8,
        };
        let dim = opts.dim();
        let u = mdls_matrix::well_conditioned_upper::<Dd, _>(dim, &mut rng);
        let xs: Vec<Dd> = mdls_matrix::random_vector(dim, &mut rng);
        let b = u.matvec(&xs);
        let s = backsub(&Gpu::v100(), ExecMode::Sequential, &u, &b, &opts);
        let p = backsub(&Gpu::v100(), ExecMode::Parallel, &u, &b, &opts);
        assert_eq!(s.x.unwrap(), p.x.unwrap());
    }

    #[test]
    #[should_panic(expected = "matrix does not match tiling")]
    fn dimension_mismatch_panics() {
        let sim = Sim::new(Gpu::v100(), ExecMode::ModelOnly);
        let u = sim.alloc_mat::<Dd>(8, 8);
        let b = sim.alloc_vec::<Dd>(8);
        let x = sim.alloc_vec::<Dd>(8);
        backsub_on_sim(
            &sim,
            &u,
            &b,
            &x,
            &BacksubOptions {
                tiles: 3,
                tile_size: 4,
            },
        );
    }
}
