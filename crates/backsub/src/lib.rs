//! Algorithm 1: tiled accelerated back substitution.
//!
//! To solve `U x = b` with `U` upper triangular of dimension `N·n`
//! (`N` tiles of size `n`):
//!
//! 1. **invert diagonal tiles** — one launch of `N` blocks of `n`
//!    threads; thread `k` of block `i` solves `U_i v = e_k`, writing
//!    column `k` of `U_i^{-1}` (the columns of a triangular inverse are
//!    independent);
//! 2. for `i = N-1, …, 0`:
//!    a. **multiply with inverses** — one block computes
//!       `x_i := U_i^{-1} b_i`;
//!    b. **back substitution** — `i` blocks simultaneously update
//!       `b_j := b_j − A_{j,i} x_i` for `j < i`.
//!
//! Total: `1 + N(N+1)/2` kernel launches, exactly as the paper counts.
//! The three stage names match the row legend of the paper's Tables 7–9.

#![forbid(unsafe_code)]

pub mod cost;
pub mod driver;
pub mod kernels;

pub use driver::{backsub, backsub_model_profile, backsub_on_sim, BacksubOptions, BacksubRun};

/// Stage label: inversion of the diagonal tiles.
pub const STAGE_INVERT: &str = "invert diagonal tiles";
/// Stage label: `x_i := U_i^{-1} b_i` products.
pub const STAGE_MULTIPLY: &str = "multiply with inverses";
/// Stage label: right-hand-side updates.
pub const STAGE_UPDATE: &str = "back substitution";
