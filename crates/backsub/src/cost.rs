//! Analytic operation and traffic counts for the three kernels of
//! Algorithm 1. These are the simulator's equivalent of the paper's
//! per-kernel accumulators, written as closed counts over the tile size.
//!
//! The functional kernels are instrumented by the device buffers; the
//! integration tests cross-check these analytic counts against the raw
//! traffic counters for small sizes.

use multidouble::{MdScalar, OpCounts};

use gpusim::KernelCost;

/// Kernel efficiency classes, calibrated against the V100 columns of the
/// paper's Table 9 (see DESIGN.md §6).
pub mod eff {
    /// Per-thread triangular back-solves (divergence-free full loops
    /// stream well).
    pub const INVERT: f64 = 1.05;
    /// Single-block `x_i := U_i^{-1} b_i` products.
    pub const MULTIPLY: f64 = 0.5;
    /// Dense right-hand-side update blocks (stream well).
    pub const UPDATE: f64 = 1.0;
}

/// Inversion of `tiles` diagonal tiles of size `n` (one launch).
///
/// Thread `k` solves `U v = e_k` with a divergence-free full back
/// substitution: every thread walks all `n` rows (`n(n−1)/2`
/// multiply-subtract pairs and `n` divisions per thread), rather than
/// exploiting the sparsity of the unit right hand side — branch-free
/// kernels keep the warps converged, and this is the operation count the
/// paper's accumulators tally.
pub fn invert_cost<S: MdScalar>(tiles: usize, n: usize) -> KernelCost {
    let (t, n64) = (tiles as u64, n as u64);
    let tri = n64 * (n64 + 1) / 2;
    let mulsub = n64 * n64 * (n64 - 1) / 2; // n threads x n(n-1)/2 each
    let ops = OpCounts {
        add: 0,
        sub: mulsub * t,
        mul: mulsub * t,
        div: n64 * n64 * t,
        sqrt: 0,
    };
    // each block reads its tile's upper triangle once (into shared
    // memory) and writes the inverse's upper triangle back
    KernelCost::of::<S>(ops, tri * t, tri * t).with_eff(eff::INVERT)
}

/// One `x_i := U_i^{-1} b_i` product (one block of `n` threads).
///
/// The inverse is upper triangular: thread `r` accumulates over columns
/// `c ≥ r`, so `n(n+1)/2` multiplications and `n(n−1)/2` additions.
pub fn multiply_cost<S: MdScalar>(n: usize) -> KernelCost {
    let n64 = n as u64;
    let ops = OpCounts {
        add: n64 * (n64 - 1) / 2,
        sub: 0,
        mul: n64 * (n64 + 1) / 2,
        div: 0,
        sqrt: 0,
    };
    KernelCost::of::<S>(ops, n64 * (n64 + 1) / 2 + n64, n64).with_eff(eff::MULTIPLY)
}

/// One right-hand-side update launch: `blocks` blocks each compute
/// `b_j -= A_{j,i} x_i` (dense `n × n` tile).
///
/// Per block: `n²` multiplications, `n(n−1)` additions, `n` subtractions.
/// Each block reads its tile and its slice of `b`, plus `x_i`
/// (broadcast per block, counted once per block as on hardware where the
/// warp-coalesced read is shared through L1).
pub fn update_cost<S: MdScalar>(blocks: usize, n: usize) -> KernelCost {
    let (bl, n64) = (blocks as u64, n as u64);
    let ops = OpCounts {
        add: bl * n64 * (n64 - 1),
        sub: bl * n64,
        mul: bl * n64 * n64,
        div: 0,
        sqrt: 0,
    };
    KernelCost::of::<S>(ops, bl * (n64 * n64 + 2 * n64), bl * n64).with_eff(eff::UPDATE)
}

/// Kernel launches issued by Algorithm 1: `1 + N(N+1)/2`.
pub fn total_launches(tiles: usize) -> u64 {
    1 + (tiles as u64) * (tiles as u64 + 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::Qd;

    #[test]
    fn launch_count_formula() {
        assert_eq!(total_launches(3), 1 + 6);
        assert_eq!(total_launches(80), 1 + 80 * 81 / 2);
    }

    #[test]
    fn invert_counts_small() {
        // n = 2, divergence-free: each of the 2 threads does 1 mul-sub
        // pair and 2 divisions
        let c = invert_cost::<Qd>(1, 2);
        assert_eq!(c.ops.mul, 2);
        assert_eq!(c.ops.sub, 2);
        assert_eq!(c.ops.div, 4);
    }

    #[test]
    fn update_scales_with_blocks() {
        let c1 = update_cost::<Qd>(1, 8);
        let c4 = update_cost::<Qd>(4, 8);
        assert_eq!(c4.ops.mul, 4 * c1.ops.mul);
        assert_eq!(c4.bytes, 4 * c1.bytes);
    }

    #[test]
    fn costs_use_scalar_bytes() {
        let c = multiply_cost::<Qd>(4);
        // reads 4*5/2 + 4 = 14 elems, writes 4 -> 18 * 32 bytes
        assert_eq!(c.bytes, 18 * 32);
    }
}
