//! The roofline model (Williams, Waterman, Patterson) as applied in the
//! paper's §4.8 / Figure 5 to the tiled back substitution on the V100.

use crate::device::Gpu;
use crate::profile::Profile;

/// One point of a roofline plot.
#[derive(Clone, Copy, Debug)]
pub struct RooflinePoint {
    /// Label (e.g. the tile size `n`).
    pub label: usize,
    /// Arithmetic intensity: Table 1 flops per byte of global traffic.
    pub intensity: f64,
    /// Attained performance in gigaflops (kernel-time convention).
    pub gflops: f64,
}

impl RooflinePoint {
    /// Build from a run profile.
    pub fn from_profile(label: usize, p: &Profile) -> Self {
        let bytes = p.total_bytes().max(1) as f64;
        RooflinePoint {
            label,
            intensity: p.total_flops_paper() / bytes,
            gflops: p.kernel_gflops(),
        }
    }

    /// The roof for this intensity on a device:
    /// `min(peak, intensity * bandwidth)`.
    pub fn roof(&self, gpu: &Gpu) -> f64 {
        (self.intensity * gpu.mem_bw_gbs).min(gpu.peak_dp_gflops)
    }

    /// Whether the point sits in the compute-bound region
    /// (intensity above the ridge point).
    pub fn compute_bound(&self, gpu: &Gpu) -> bool {
        self.intensity >= gpu.ridge_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::OpCounts;

    #[test]
    fn point_classification() {
        let v = Gpu::v100();
        let lo = RooflinePoint {
            label: 32,
            intensity: 2.0,
            gflops: 100.0,
        };
        let hi = RooflinePoint {
            label: 256,
            intensity: 50.0,
            gflops: 1000.0,
        };
        assert!(!lo.compute_bound(&v));
        assert!(hi.compute_bound(&v));
        assert!((lo.roof(&v) - 2.0 * 870.0).abs() < 1e-9);
        assert_eq!(hi.roof(&v), 7900.0);
    }

    #[test]
    fn from_profile_divides() {
        let mut p = Profile::new();
        p.record("k", 1000.0, OpCounts::ZERO, 8.0e12, 4.0e12, 1 << 30);
        let pt = RooflinePoint::from_profile(64, &p);
        assert!((pt.gflops - 8000.0).abs() < 1.0);
        assert!((pt.intensity - 8.0e12 / (1u64 << 30) as f64).abs() < 1e-6);
    }
}
