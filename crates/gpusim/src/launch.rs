//! Launch descriptors: what a kernel costs and how a block sees itself.

use multidouble::{MdScalar, OpCounts};

/// Analytic cost of one kernel launch, declared by the driver.
///
/// `ops` are *multiple double* operation counts (the paper's per-kernel
/// accumulators); the flop expansions under both conventions are attached
/// when the cost is bound to a scalar type.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelCost {
    /// Multiple double operations executed by the whole launch.
    pub ops: OpCounts,
    /// Scalars read from global memory (after block-level broadcast
    /// amortization — see the per-kernel cost functions).
    pub elems_read: u64,
    /// Scalars written to global memory.
    pub elems_written: u64,
    /// Table 1 flops (paper reporting convention).
    pub flops_paper: f64,
    /// Measured FMA-convention flops (what the hardware executes; used by
    /// the timing model).
    pub flops_measured: f64,
    /// Global memory traffic in bytes.
    pub bytes: u64,
    /// Limb planes per scalar (drives the ILP efficiency model).
    pub planes: usize,
    /// Kernel efficiency class relative to the device ILP base
    /// (1.0 = streaming default; reduction/dependency-chained kernels
    /// sit well below 1, register-blocked products above — calibrated
    /// once against the paper's V100 stage columns, see DESIGN.md).
    pub eff_scale: f64,
}

impl KernelCost {
    /// Bind multiple double op counts and element traffic to a scalar
    /// type, expanding flops under both conventions.
    pub fn of<S: MdScalar>(ops: OpCounts, elems_read: u64, elems_written: u64) -> Self {
        let paper = S::paper_cost();
        let measured = S::measured_cost();
        KernelCost {
            ops,
            elems_read,
            elems_written,
            flops_paper: ops.flops(&paper),
            flops_measured: ops.flops(&measured),
            bytes: (elems_read + elems_written) * S::BYTES as u64,
            planes: S::PLANES,
            eff_scale: 1.0,
        }
    }

    /// Set the kernel efficiency class.
    pub fn with_eff(mut self, eff_scale: f64) -> Self {
        self.eff_scale = eff_scale;
        self
    }

    /// The cost of `k` independent instances of this launch fused into
    /// one grid: all work and traffic scale by `k`, while the per-launch
    /// shape constants (limb planes, efficiency class) are instance
    /// counts and stay put. The timing win of fusion does not live here
    /// — it comes from pricing the scaled cost over the *fused* grid
    /// (see `model::fused_kernel_ms`), where the occupancy fill and the
    /// fixed kernel base are shared by all `k` instances.
    pub fn scaled(&self, k: u64) -> Self {
        KernelCost {
            ops: self.ops.scaled(k),
            elems_read: self.elems_read * k,
            elems_written: self.elems_written * k,
            flops_paper: self.flops_paper * k as f64,
            flops_measured: self.flops_measured * k as f64,
            bytes: self.bytes * k,
            planes: self.planes,
            eff_scale: self.eff_scale,
        }
    }
}

/// What one block knows about itself inside a kernel body.
#[derive(Clone, Copy, Debug)]
pub struct BlockCtx {
    /// Block index within the grid (`blockIdx.x`).
    pub block: usize,
    /// Number of blocks in the grid (`gridDim.x`).
    pub grid: usize,
    /// Threads per block (`blockDim.x`).
    pub threads: usize,
}

impl BlockCtx {
    /// Iterate over the thread indices of this block — the simulator's
    /// rendering of one barrier-free kernel phase.
    pub fn thread_ids(&self) -> core::ops::Range<usize> {
        0..self.threads
    }

    /// Global thread id of thread `t` in this block.
    pub fn global_tid(&self, t: usize) -> usize {
        self.block * self.threads + t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{Dd, Qd};

    #[test]
    fn cost_binding_expands_flops() {
        let ops = OpCounts {
            add: 100,
            sub: 0,
            mul: 100,
            div: 0,
            sqrt: 0,
        };
        let c = KernelCost::of::<Qd>(ops, 50, 10);
        assert_eq!(c.flops_paper, 100.0 * 89.0 + 100.0 * 336.0);
        assert!(c.flops_measured > 0.0 && c.flops_measured < c.flops_paper);
        assert_eq!(c.bytes, 60 * 32);
        assert_eq!(c.planes, 4);
    }

    #[test]
    fn dd_add_measured_equals_paper() {
        // the accurate dd addition costs 20 ops under both conventions
        let ops = OpCounts {
            add: 7,
            ..OpCounts::ZERO
        };
        let c = KernelCost::of::<Dd>(ops, 0, 0);
        assert_eq!(c.flops_paper, c.flops_measured);
    }

    #[test]
    fn block_ctx_indexing() {
        let b = BlockCtx {
            block: 3,
            grid: 8,
            threads: 128,
        };
        assert_eq!(b.global_tid(5), 3 * 128 + 5);
        assert_eq!(b.thread_ids().len(), 128);
    }
}
