//! The device registry: the five NVIDIA GPUs of the paper's Table 2,
//! extended with the public spec-sheet constants the timing model needs.
//!
//! | column | source |
//! |---|---|
//! | CUDA capability, #MP, cores/MP, GHz, host | paper, Table 2 |
//! | peak double precision gigaflops | vendor spec sheets (the paper quotes 4.7 TF for the P100 and 7.9 TF for the V100 in §4.3) |
//! | memory bandwidth | vendor spec sheets (the paper uses 870 GB/s for the V100's roofline ridge point in §4.8) |
//! | PCIe bandwidth, launch overheads, host RAM | calibrated against the paper's wall-clock columns; see DESIGN.md |
//! | ILP efficiency | calibrated against the paper's kernel-flops columns; see `model` |

/// Host operating system of the machine driving the GPU — the paper's
/// RTX 2080 lives in a Windows laptop where the WDDM driver adds
/// substantially more launch overhead than Linux.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostOs {
    /// CentOS workstations (C2050, K20C, P100, V100).
    Linux,
    /// Windows laptop (RTX 2080), WDDM driver model.
    Windows,
}

/// A simulated GPU: Table 2 characteristics plus timing-model constants.
#[derive(Clone, Debug)]
pub struct Gpu {
    /// Marketing name, e.g. `"V100"`.
    pub name: &'static str,
    /// CUDA compute capability, e.g. `"7.0"`.
    pub cuda_capability: &'static str,
    /// Number of streaming multiprocessors.
    pub multiprocessors: usize,
    /// CUDA cores per multiprocessor.
    pub cores_per_mp: usize,
    /// GPU clock in GHz.
    pub ghz: f64,
    /// Host CPU model.
    pub host_cpu: &'static str,
    /// Host CPU clock in GHz.
    pub host_ghz: f64,
    /// Host operating system.
    pub host_os: HostOs,
    /// Theoretical peak double precision performance in gigaflops.
    pub peak_dp_gflops: f64,
    /// Global memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Effective host<->device transfer bandwidth in GB/s (PCIe, after
    /// protocol overhead).
    pub pcie_gbs: f64,
    /// Host RAM in GB — transfers that exceed a fraction of this swap
    /// (reproduces the paper's 84-second octo double outlier in Table 7).
    pub host_ram_gb: f64,
    /// Wall-clock overhead per kernel launch in microseconds.
    pub launch_gap_us: f64,
    /// Minimum kernel duration in microseconds (scheduling granularity;
    /// contributes to the *kernel* clock, not just the wall clock).
    pub kernel_base_us: f64,
    /// Fraction of `mem_bw_gbs` streaming kernels actually sustain.
    pub mem_eff: f64,
    /// ILP efficiency of the multiple double instruction mix at one limb
    /// plane (see `model::ilp_efficiency`).
    pub ilp_base: f64,
    /// Per-plane slope of the ILP efficiency (positive on big-DP parts
    /// where deeper arithmetic exposes more instruction parallelism,
    /// negative on DP-starved parts where register pressure dominates).
    pub ilp_slope: f64,
    /// Fixed host-side wall overhead per solver invocation, ms.
    pub host_overhead_ms: f64,
    /// Seeded fault schedule for this device — quiet by default; see
    /// [`crate::fault::FaultPlan`]. The schedule is data, not behavior:
    /// the simulator never consults a clock or an entropy source, a
    /// driver (e.g. a pool's recovery loop) reads the plan and reacts.
    pub fault: crate::fault::FaultPlan,
}

impl Gpu {
    /// Total CUDA cores.
    pub fn cores(&self) -> usize {
        self.multiprocessors * self.cores_per_mp
    }

    /// This device with a fault schedule attached (builder style):
    /// `Gpu::v100().with_fault_plan(FaultPlan::seeded(7, 1e4, 2e3))`.
    pub fn with_fault_plan(mut self, plan: crate::fault::FaultPlan) -> Gpu {
        self.fault = plan;
        self
    }

    /// The roofline ridge point in flops/byte
    /// (the paper computes 7900 / 870 ≈ 9.08 for the V100).
    pub fn ridge_point(&self) -> f64 {
        self.peak_dp_gflops / self.mem_bw_gbs
    }

    /// Tesla C2050 (Fermi, 2011).
    pub fn c2050() -> Gpu {
        Gpu {
            name: "C2050",
            cuda_capability: "2.0",
            multiprocessors: 14,
            cores_per_mp: 32,
            ghz: 1.15,
            host_cpu: "Intel X5690",
            host_ghz: 3.47,
            host_os: HostOs::Linux,
            peak_dp_gflops: 515.0,
            mem_bw_gbs: 144.0,
            pcie_gbs: 1.0,
            host_ram_gb: 24.0,
            launch_gap_us: 10.0,
            kernel_base_us: 16.0,
            mem_eff: 0.72,
            ilp_base: 0.175,
            ilp_slope: 0.004,
            host_overhead_ms: 40.0,
            fault: crate::fault::FaultPlan::none(),
        }
    }

    /// Kepler K20C (2013).
    pub fn k20c() -> Gpu {
        Gpu {
            name: "K20C",
            cuda_capability: "3.5",
            multiprocessors: 13,
            cores_per_mp: 192,
            ghz: 0.71,
            host_cpu: "Intel E5-2670",
            host_ghz: 2.60,
            host_os: HostOs::Linux,
            peak_dp_gflops: 1170.0,
            mem_bw_gbs: 208.0,
            pcie_gbs: 1.2,
            host_ram_gb: 32.0,
            launch_gap_us: 8.0,
            kernel_base_us: 25.0,
            mem_eff: 0.72,
            // Kepler's 192-core SMX is notoriously hard to fill from a
            // 128-thread block; low base efficiency.
            ilp_base: 0.095,
            ilp_slope: 0.004,
            host_overhead_ms: 40.0,
            fault: crate::fault::FaultPlan::none(),
        }
    }

    /// Pascal P100 (2016). The paper quotes 4.7 TFLOPS peak.
    pub fn p100() -> Gpu {
        Gpu {
            name: "P100",
            cuda_capability: "6.0",
            multiprocessors: 56,
            cores_per_mp: 64,
            ghz: 1.33,
            host_cpu: "Intel E5-2699",
            host_ghz: 2.20,
            host_os: HostOs::Linux,
            peak_dp_gflops: 4700.0,
            mem_bw_gbs: 732.0,
            pcie_gbs: 1.5,
            host_ram_gb: 256.0,
            launch_gap_us: 6.0,
            kernel_base_us: 12.0,
            mem_eff: 0.78,
            ilp_base: 0.155,
            ilp_slope: 0.0045,
            host_overhead_ms: 30.0,
            fault: crate::fault::FaultPlan::none(),
        }
    }

    /// Volta V100 (2019). The paper quotes 7.9 TFLOPS peak and uses
    /// 870 GB/s for the roofline.
    pub fn v100() -> Gpu {
        Gpu {
            name: "V100",
            cuda_capability: "7.0",
            multiprocessors: 80,
            cores_per_mp: 64,
            ghz: 1.91,
            host_cpu: "Intel W2123",
            host_ghz: 3.60,
            host_os: HostOs::Linux,
            peak_dp_gflops: 7900.0,
            mem_bw_gbs: 870.0,
            pcie_gbs: 5.0,
            host_ram_gb: 32.0,
            launch_gap_us: 5.0,
            kernel_base_us: 8.0,
            mem_eff: 0.80,
            ilp_base: 0.145,
            ilp_slope: 0.0045,
            host_overhead_ms: 12.0,
            fault: crate::fault::FaultPlan::none(),
        }
    }

    /// GeForce RTX 2080 Max-Q (Turing consumer part, Windows laptop).
    /// Double precision throughput is 1/32 of single precision; the few
    /// FP64 units per SM are the bottleneck for the whole instruction
    /// mix, so the efficiency band is narrow and grows only mildly with
    /// the precision.
    pub fn rtx2080() -> Gpu {
        Gpu {
            name: "RTX 2080",
            cuda_capability: "7.5",
            multiprocessors: 46,
            cores_per_mp: 64,
            ghz: 1.10,
            host_cpu: "Intel i9-9880H",
            host_ghz: 2.30,
            host_os: HostOs::Windows,
            // nominal FP64 is 1/32 of single precision (~200 GF); boost
            // clocks and the FMA-heavy instruction mix sustain a little
            // more in practice, which the paper's counters confirm.
            peak_dp_gflops: 270.0,
            mem_bw_gbs: 368.0,
            pcie_gbs: 0.5,
            host_ram_gb: 32.0,
            launch_gap_us: 22.0,
            kernel_base_us: 18.0,
            mem_eff: 0.70,
            ilp_base: 0.19,
            ilp_slope: 0.012,
            host_overhead_ms: 80.0,
            fault: crate::fault::FaultPlan::none(),
        }
    }

    /// Ampere A100 (SXM4 40 GB) — not part of the paper's Table 2, but
    /// the natural next device for the batched pipeline's device pools.
    /// Spec-sheet constants: 9.7 TFLOPS FP64 (non-tensor), 1555 GB/s
    /// HBM2e; ILP/efficiency constants extrapolated from the V100 (same
    /// 64-core FP64-capable SM organisation, one generation newer).
    pub fn a100() -> Gpu {
        Gpu {
            name: "A100",
            cuda_capability: "8.0",
            multiprocessors: 108,
            cores_per_mp: 64,
            ghz: 1.41,
            host_cpu: "AMD EPYC 7742",
            host_ghz: 2.25,
            host_os: HostOs::Linux,
            peak_dp_gflops: 9700.0,
            mem_bw_gbs: 1555.0,
            pcie_gbs: 10.0,
            host_ram_gb: 256.0,
            launch_gap_us: 4.0,
            kernel_base_us: 6.0,
            mem_eff: 0.82,
            ilp_base: 0.145,
            ilp_slope: 0.0045,
            host_overhead_ms: 10.0,
            fault: crate::fault::FaultPlan::none(),
        }
    }

    /// All five devices, oldest first (the paper's Table 2 order).
    pub fn all() -> Vec<Gpu> {
        vec![
            Gpu::c2050(),
            Gpu::k20c(),
            Gpu::p100(),
            Gpu::v100(),
            Gpu::rtx2080(),
        ]
    }

    /// The three devices used in the precision-sweep tables (4, 9, 11).
    pub fn sweep_trio() -> Vec<Gpu> {
        vec![Gpu::rtx2080(), Gpu::p100(), Gpu::v100()]
    }

    /// Look up a device by (case-insensitive) name — the paper's five
    /// plus the pool-era A100.
    pub fn by_name(name: &str) -> Option<Gpu> {
        let lower = name.to_ascii_lowercase().replace(' ', "");
        Gpu::all()
            .into_iter()
            .chain([Gpu::a100()])
            .find(|g| g.name.to_ascii_lowercase().replace(' ', "") == lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_core_counts() {
        // the #cores column of Table 2 is #MP * cores/MP
        let want = [448, 2496, 3584, 5120, 2944];
        for (gpu, w) in Gpu::all().iter().zip(want) {
            assert_eq!(gpu.cores(), w, "{}", gpu.name);
        }
    }

    #[test]
    fn v100_ridge_point_matches_paper() {
        let v = Gpu::v100();
        assert!((v.ridge_point() - 9.08).abs() < 0.01);
    }

    #[test]
    fn peak_ratio_v100_over_p100() {
        // §4.3: "one may expect the V100 to be about 1.68 times faster"
        let r = Gpu::v100().peak_dp_gflops / Gpu::p100().peak_dp_gflops;
        assert!((r - 1.68).abs() < 0.01);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Gpu::by_name("v100").unwrap().name, "V100");
        assert_eq!(Gpu::by_name("RTX2080").unwrap().name, "RTX 2080");
        assert_eq!(Gpu::by_name("a100").unwrap().name, "A100");
        assert!(Gpu::by_name("H100").is_none());
    }

    #[test]
    fn a100_extends_but_does_not_join_table2() {
        // Table 2 stays the paper's five devices
        assert_eq!(Gpu::all().len(), 5);
        assert!(Gpu::all().iter().all(|g| g.name != "A100"));
        let a = Gpu::a100();
        assert_eq!(a.cores(), 6912);
        assert!(a.peak_dp_gflops > Gpu::v100().peak_dp_gflops);
    }
}
