//! Global device memory with the paper's staggered multiple double layout.
//!
//! A vector of `n` multiple doubles with `m` limb planes is stored as `m`
//! contiguous arrays of `n` doubles — "an array `U = [U1, U2, ..., Um]` of
//! `m` matrices, where `U1` holds the most significant doubles and `Um`
//! the least significant doubles" (paper, end of Algorithm 1). Complex
//! scalars add the imaginary planes after the real ones.
//!
//! Buffers are written through `&self` so that blocks of one kernel launch
//! can execute on parallel host threads, mirroring CUDA semantics: blocks
//! of a launch must write disjoint elements (this is upheld by every
//! kernel in this workspace and spot-checked by the sequential/parallel
//! equivalence tests).

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicU64, Ordering};

use multidouble::MdScalar;

/// One f64 cell that can be shared across block threads.
#[repr(transparent)]
struct Cell64(UnsafeCell<f64>);

// Safety: access discipline is the CUDA contract — concurrent writes to the
// same element within one launch are forbidden by kernel construction.
unsafe impl Sync for Cell64 {}

/// A device buffer of `len` scalars stored as `S::PLANES` limb planes.
pub struct DeviceBuf<S: MdScalar> {
    /// plane-major storage: `planes[p][i]` is plane `p` of element `i`.
    data: Vec<Cell64>,
    len: usize,
    /// Elements read through `get` (raw traffic counter).
    reads: AtomicU64,
    /// Elements written through `set`.
    writes: AtomicU64,
    _marker: core::marker::PhantomData<S>,
}

impl<S: MdScalar> DeviceBuf<S> {
    /// Allocate a zeroed buffer of `len` scalars.
    pub fn zeroed(len: usize) -> Self {
        let mut data = Vec::with_capacity(len * S::PLANES);
        data.resize_with(len * S::PLANES, || Cell64(UnsafeCell::new(0.0)));
        DeviceBuf {
            data,
            len,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            _marker: core::marker::PhantomData,
        }
    }

    /// An empty placeholder used in model-only simulations (holds no
    /// storage; any access panics).
    pub fn unmaterialized(len: usize) -> Self {
        DeviceBuf {
            data: Vec::new(),
            len,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            _marker: core::marker::PhantomData,
        }
    }

    /// Whether the buffer holds real storage.
    pub fn is_materialized(&self) -> bool {
        !self.data.is_empty() || self.len == 0
    }

    /// Number of scalars.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline(always)]
    fn plane_idx(&self, plane: usize, i: usize) -> usize {
        plane * self.len + i
    }

    /// Read scalar `i`, gathering all limb planes.
    #[inline]
    pub fn get(&self, i: usize) -> S {
        debug_assert!(i < self.len, "index {i} out of range {}", self.len);
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mut planes = [0.0f64; 16];
        for p in 0..S::PLANES {
            // Safety: in-bounds; concurrent reads are fine.
            planes[p] = unsafe { *self.data[self.plane_idx(p, i)].0.get() };
        }
        S::from_planes(&planes[..S::PLANES])
    }

    /// Write scalar `i`, scattering all limb planes.
    #[inline]
    pub fn set(&self, i: usize, v: S) {
        debug_assert!(i < self.len, "index {i} out of range {}", self.len);
        self.writes.fetch_add(1, Ordering::Relaxed);
        for p in 0..S::PLANES {
            // Safety: in-bounds; disjoint-write contract per launch.
            unsafe {
                *self.data[self.plane_idx(p, i)].0.get() = v.plane(p);
            }
        }
    }

    /// Host-to-device copy.
    pub fn upload(&self, host: &[S]) {
        assert_eq!(host.len(), self.len, "upload size mismatch");
        for (i, v) in host.iter().enumerate() {
            self.set(i, *v);
        }
        // uploads are not kernel traffic
        self.writes.fetch_sub(host.len() as u64, Ordering::Relaxed);
    }

    /// Device-to-host copy.
    pub fn download(&self) -> Vec<S> {
        let out: Vec<S> = (0..self.len).map(|i| self.get(i)).collect();
        self.reads.fetch_sub(self.len as u64, Ordering::Relaxed);
        out
    }

    /// Raw view of one limb plane (for layout tests).
    pub fn plane_snapshot(&self, plane: usize) -> Vec<f64> {
        assert!(plane < S::PLANES);
        (0..self.len)
            // Safety: plane_idx is in bounds (plane asserted above, i < len)
            // and no kernel is running while a layout test snapshots.
            .map(|i| unsafe { *self.data[self.plane_idx(plane, i)].0.get() })
            .collect()
    }

    /// Raw element traffic counters `(reads, writes)` accumulated by
    /// kernel accesses.
    pub fn traffic(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }

    /// Reset the traffic counters.
    pub fn reset_traffic(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

/// A device matrix in **column-major** order (LAPACK convention: a column
/// of a tile is contiguous, which is what the Householder kernels walk).
pub struct DeviceMat<S: MdScalar> {
    /// Backing buffer of `rows * cols` scalars.
    pub buf: DeviceBuf<S>,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl<S: MdScalar> DeviceMat<S> {
    /// Allocate a zeroed matrix.
    pub fn zeroed(rows: usize, cols: usize) -> Self {
        DeviceMat {
            buf: DeviceBuf::zeroed(rows * cols),
            rows,
            cols,
        }
    }

    /// Model-only placeholder.
    pub fn unmaterialized(rows: usize, cols: usize) -> Self {
        DeviceMat {
            buf: DeviceBuf::unmaterialized(rows * cols),
            rows,
            cols,
        }
    }

    /// Linear index of `(r, c)`.
    #[inline(always)]
    pub fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        c * self.rows + r
    }

    /// Read element `(r, c)`.
    #[inline(always)]
    pub fn get(&self, r: usize, c: usize) -> S {
        self.buf.get(self.idx(r, c))
    }

    /// Write element `(r, c)`.
    #[inline(always)]
    pub fn set(&self, r: usize, c: usize, v: S) {
        self.buf.set(self.idx(r, c), v)
    }

    /// Upload from a column-major host slice.
    pub fn upload_col_major(&self, host: &[S]) {
        self.buf.upload(host);
    }

    /// Download to a column-major vector.
    pub fn download_col_major(&self) -> Vec<S> {
        self.buf.download()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{Complex, Dd, Qd};

    #[test]
    fn staggered_layout_is_plane_major() {
        let buf = DeviceBuf::<Dd>::zeroed(3);
        buf.set(0, Dd::from_parts(1.0, 1e-20));
        buf.set(1, Dd::from_parts(2.0, 2e-20));
        buf.set(2, Dd::from_parts(3.0, 3e-20));
        // plane 0 holds all the most significant doubles, contiguously
        assert_eq!(buf.plane_snapshot(0), vec![1.0, 2.0, 3.0]);
        assert_eq!(buf.plane_snapshot(1), vec![1e-20, 2e-20, 3e-20]);
    }

    #[test]
    fn complex_planes_real_then_imag() {
        let buf = DeviceBuf::<Complex<Dd>>::zeroed(2);
        let z = Complex::new(Dd::from_f64(1.5), Dd::from_f64(-2.5));
        buf.set(1, z);
        assert_eq!(buf.plane_snapshot(0), vec![0.0, 1.5]); // re hi
        assert_eq!(buf.plane_snapshot(2), vec![0.0, -2.5]); // im hi
        assert_eq!(buf.get(1), z);
    }

    #[test]
    fn traffic_counters() {
        let buf = DeviceBuf::<Qd>::zeroed(4);
        buf.set(0, Qd::ONE);
        let _ = buf.get(0);
        let _ = buf.get(1);
        assert_eq!(buf.traffic(), (2, 1));
        buf.reset_traffic();
        assert_eq!(buf.traffic(), (0, 0));
    }

    #[test]
    fn upload_download_roundtrip() {
        let host = vec![Qd::from_f64(1.0), Qd::PI, Qd::from_f64(-3.25)];
        let buf = DeviceBuf::<Qd>::zeroed(3);
        buf.upload(&host);
        assert_eq!(buf.download(), host);
        // transfers do not count as kernel traffic
        assert_eq!(buf.traffic(), (0, 0));
    }

    #[test]
    fn matrix_is_column_major() {
        let m = DeviceMat::<f64>::zeroed(2, 3);
        m.set(0, 0, 1.0);
        m.set(1, 0, 2.0);
        m.set(0, 1, 3.0);
        assert_eq!(m.buf.plane_snapshot(0), vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "upload size mismatch")]
    fn upload_size_checked() {
        let buf = DeviceBuf::<f64>::zeroed(2);
        buf.upload(&[1.0]);
    }
}
