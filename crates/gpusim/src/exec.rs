//! The simulator session: allocation, kernel launch, transfer recording.
//!
//! [`Sim`] owns the device, the execution mode and the accumulating
//! [`Profile`]. Drivers (the back substitution and QR crates) allocate
//! buffers through it and issue launches; each launch carries its stage
//! label, grid/block geometry, analytic [`KernelCost`] and a functional
//! body closure.
//!
//! Execution modes:
//!
//! * [`ExecMode::Sequential`] — blocks run one after another on the host
//!   thread. Deterministic; the default for tests.
//! * [`ExecMode::Parallel`] — blocks of one launch run on host threads
//!   (the CUDA contract: disjoint writes per launch). Useful to cut the
//!   wall time of big functional runs.
//! * [`ExecMode::ModelOnly`] — bodies are skipped entirely; only the
//!   analytic cost flows into the profile. This is how the bench harness
//!   reproduces the paper's large dimensions (a 20,480² octo double
//!   matrix would not fit in this machine's RAM, let alone its patience).

use multidouble::MdScalar;
use parking_lot::Mutex;

use crate::buffer::{DeviceBuf, DeviceMat};
use crate::device::Gpu;
use crate::launch::{BlockCtx, KernelCost};
use crate::model;
use crate::profile::Profile;

/// How kernel bodies are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Run blocks sequentially (deterministic).
    Sequential,
    /// Run blocks of a launch on parallel host threads.
    Parallel,
    /// Skip functional execution; account costs only.
    ModelOnly,
}

/// A simulator session on one device.
pub struct Sim {
    gpu: Gpu,
    mode: ExecMode,
    profile: Mutex<Profile>,
    /// Total bytes allocated on the device (for the RAM-swap wall model).
    footprint: Mutex<u64>,
    /// Micro-batching factor: this session carries `instances`
    /// independent same-shaped problem instances. Every launch is
    /// priced as one fused grid of `instances × grid` blocks (see
    /// [`model::fused_kernel_ms`]), allocations and transfers account
    /// `instances ×` their bytes, and per-launch bookkeeping (launch
    /// counts, launch gaps) is paid once per fused launch instead of
    /// once per instance. 1 = the ordinary singleton session.
    instances: usize,
    /// When false this is a *shadow* session: kernel bodies still run
    /// (functional state for one secondary instance of a fused group),
    /// but nothing is accounted — the group's entire cost lives on the
    /// primary batched session.
    accounting: bool,
}

impl Sim {
    /// Open a session.
    pub fn new(gpu: Gpu, mode: ExecMode) -> Self {
        Sim::batched(gpu, mode, 1)
    }

    /// Open a micro-batched session: the accounting (primary) session
    /// of a fused group of `instances` same-shaped problem instances.
    /// Functional execution on this session carries instance 0; the
    /// analytic accounting covers all `instances` as fused launches.
    /// Secondary instances run on [`Sim::shadow`] sessions.
    pub fn batched(gpu: Gpu, mode: ExecMode, instances: usize) -> Self {
        assert!(instances > 0, "a fused group needs at least one instance");
        Sim {
            gpu,
            mode,
            profile: Mutex::new(Profile::new()),
            footprint: Mutex::new(0),
            instances,
            accounting: true,
        }
    }

    /// Open a shadow session: a secondary instance of a fused group.
    /// Kernel bodies execute (each instance's blocks of the fused grid
    /// must run for its functional state — block order across instances
    /// is free because fused instances are independent, exactly the
    /// CUDA contract within one launch), but launches, transfers and
    /// overheads record nothing: the whole group is accounted once, on
    /// the primary [`Sim::batched`] session.
    pub fn shadow(gpu: Gpu, mode: ExecMode) -> Self {
        Sim {
            accounting: false,
            ..Sim::new(gpu, mode)
        }
    }

    /// Number of fused problem instances this session accounts for.
    pub fn instances(&self) -> usize {
        self.instances
    }

    /// False for shadow sessions (secondary instances of a fused
    /// group), whose launches and transfers are accounted elsewhere.
    pub fn is_accounting(&self) -> bool {
        self.accounting
    }

    /// The device.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Whether kernel bodies actually run.
    pub fn is_functional(&self) -> bool {
        self.mode != ExecMode::ModelOnly
    }

    /// Allocate a device vector of `len` scalars. On a batched session
    /// the footprint charges every fused instance's copy (the group is
    /// device-resident together); the returned buffer holds the primary
    /// instance's data.
    pub fn alloc_vec<S: MdScalar>(&self, len: usize) -> DeviceBuf<S> {
        *self.footprint.lock() += (self.instances * len * S::BYTES) as u64;
        if self.is_functional() {
            DeviceBuf::zeroed(len)
        } else {
            DeviceBuf::unmaterialized(len)
        }
    }

    /// Allocate a device matrix (footprint rules as [`Sim::alloc_vec`]).
    pub fn alloc_mat<S: MdScalar>(&self, rows: usize, cols: usize) -> DeviceMat<S> {
        *self.footprint.lock() += (self.instances * rows * cols * S::BYTES) as u64;
        if self.is_functional() {
            DeviceMat::zeroed(rows, cols)
        } else {
            DeviceMat::unmaterialized(rows, cols)
        }
    }

    /// Launch a kernel: `grid` blocks of `threads` threads, attributed to
    /// `stage`, with analytic `cost`; `body` runs once per block.
    pub fn launch<F>(&self, stage: &str, grid: usize, threads: usize, cost: KernelCost, body: F)
    where
        F: Fn(BlockCtx) + Sync,
    {
        self.launch_counted(stage, grid, threads, cost, 1, body)
    }

    /// Like [`Sim::launch`], but counted as `count_as` kernel launches.
    ///
    /// The paper's Algorithm 1 counts every `b_j := b_j − A_{j,i} x_i`
    /// update as its own launch (`1 + N(N+1)/2` in total) while the
    /// updates of one step execute simultaneously; this method keeps the
    /// occupancy of the batched execution but attributes the per-launch
    /// bookkeeping (launch count, wall-clock launch gaps) `count_as`
    /// times.
    pub fn launch_counted<F>(
        &self,
        stage: &str,
        grid: usize,
        threads: usize,
        cost: KernelCost,
        count_as: u64,
        body: F,
    ) where
        F: Fn(BlockCtx) + Sync,
    {
        match self.mode {
            ExecMode::ModelOnly => {}
            ExecMode::Sequential => {
                for b in 0..grid {
                    body(BlockCtx {
                        block: b,
                        grid,
                        threads,
                    });
                }
            }
            ExecMode::Parallel => {
                let workers = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
                    .min(grid.max(1));
                if workers <= 1 || grid <= 1 {
                    for b in 0..grid {
                        body(BlockCtx {
                            block: b,
                            grid,
                            threads,
                        });
                    }
                } else {
                    let next = std::sync::atomic::AtomicUsize::new(0);
                    let body = &body;
                    let next = &next;
                    std::thread::scope(|scope| {
                        for _ in 0..workers {
                            scope.spawn(move || loop {
                                let b = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if b >= grid {
                                    break;
                                }
                                body(BlockCtx {
                                    block: b,
                                    grid,
                                    threads,
                                });
                            });
                        }
                    });
                }
            }
        }
        if !self.accounting {
            return; // shadow session: the primary accounts the group
        }
        // a batched session prices the launch as one fused grid over
        // all instances: work and traffic scale by the instance count,
        // occupancy is computed over the fused grid, and the kernel
        // base — like the launch count and gap below — is paid once per
        // fused launch, not once per instance
        let fused = cost.scaled(self.instances as u64);
        let ms = model::fused_kernel_ms(&self.gpu, self.instances, grid, threads, &cost);
        let mut p = self.profile.lock();
        p.record(
            stage,
            ms,
            fused.ops,
            fused.flops_paper,
            fused.flops_measured,
            fused.bytes,
        );
        if count_as > 1 {
            // the batched launch stands for `count_as` logical launches
            let s = p.stages_mut().iter_mut().find(|s| s.name == stage).unwrap();
            s.launches += count_as - 1;
        }
        p.launch_gap_ms += model::launch_gap_ms(&self.gpu, count_as);
    }

    /// Record a host-to-device or device-to-host transfer of `bytes`
    /// *per instance*: a batched session moves every fused instance's
    /// copy in one grouped transfer, so the recorded traffic scales by
    /// the instance count while the call — like the host-side
    /// bookkeeping it stands for — happens once per group. Shadow
    /// sessions record nothing.
    pub fn record_transfer(&self, bytes: u64) {
        if !self.accounting {
            return;
        }
        let bytes = bytes * self.instances as u64;
        let fp = *self.footprint.lock();
        let ms = model::transfer_ms(&self.gpu, bytes, fp);
        let mut p = self.profile.lock();
        p.transfer_ms += ms;
        p.transfer_bytes += bytes;
    }

    /// Record fixed host-side overhead once per driver invocation — on
    /// a batched session that is once per fused *group* (the
    /// amortization micro-batching exists for). Shadow sessions record
    /// nothing.
    pub fn record_host_overhead(&self) {
        if !self.accounting {
            return;
        }
        self.profile.lock().host_ms += self.gpu.host_overhead_ms;
    }

    /// Snapshot the accumulated profile.
    pub fn profile(&self) -> Profile {
        self.profile.lock().clone()
    }

    /// Clear the profile (keeps allocations and footprint).
    pub fn reset_profile(&self) {
        *self.profile.lock() = Profile::new();
    }

    /// Current device memory footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        *self.footprint.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{Dd, OpCounts};

    fn fill_kernel(sim: &Sim, buf: &DeviceBuf<Dd>, grid: usize, threads: usize) {
        let n = buf.len();
        sim.launch(
            "fill",
            grid,
            threads,
            KernelCost::of::<Dd>(
                OpCounts {
                    add: n as u64,
                    ..OpCounts::ZERO
                },
                0,
                n as u64,
            ),
            |ctx| {
                for t in ctx.thread_ids() {
                    let i = ctx.global_tid(t);
                    if i < n {
                        buf.set(i, Dd::from_f64(i as f64) + Dd::from_f64(0.5));
                    }
                }
            },
        );
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let n = 1000;
        let seq = Sim::new(Gpu::v100(), ExecMode::Sequential);
        let bs = seq.alloc_vec::<Dd>(n);
        fill_kernel(&seq, &bs, 8, 128);

        let par = Sim::new(Gpu::v100(), ExecMode::Parallel);
        let bp = par.alloc_vec::<Dd>(n);
        fill_kernel(&par, &bp, 8, 128);

        assert_eq!(bs.download(), bp.download());
        // identical analytic accounting regardless of execution mode
        assert_eq!(
            seq.profile().all_kernels_ms(),
            par.profile().all_kernels_ms()
        );
    }

    #[test]
    fn model_only_skips_bodies_but_counts() {
        let sim = Sim::new(Gpu::v100(), ExecMode::ModelOnly);
        let buf = sim.alloc_vec::<Dd>(10);
        assert!(!buf.is_materialized());
        let mut ran = false;
        // body must not run
        sim.launch(
            "noop",
            1,
            32,
            KernelCost::of::<Dd>(OpCounts::ZERO, 0, 0),
            |_| {
                // (would set `ran`, but the closure is Fn; use a panic)
                panic!("body executed in ModelOnly");
            },
        );
        ran |= false;
        assert!(!ran);
        assert_eq!(sim.profile().total_launches(), 1);
    }

    #[test]
    fn footprint_accumulates() {
        let sim = Sim::new(Gpu::v100(), ExecMode::ModelOnly);
        let _a = sim.alloc_vec::<Dd>(100); // 1600 bytes
        let _m = sim.alloc_mat::<Dd>(10, 10); // 1600 bytes
        assert_eq!(sim.footprint_bytes(), 3200);
    }

    #[test]
    fn transfer_recorded() {
        let sim = Sim::new(Gpu::v100(), ExecMode::ModelOnly);
        sim.record_transfer(10 * (1 << 30)); // 10 GB over 5 GB/s ~ 2000 ms
        let p = sim.profile();
        assert!(p.transfer_ms > 1900.0 && p.transfer_ms < 2400.0);
    }

    #[test]
    fn batched_session_prices_fused_launches() {
        let n = 64;
        let k = 16;
        let single = Sim::new(Gpu::v100(), ExecMode::ModelOnly);
        let bs = single.alloc_vec::<Dd>(n);
        fill_kernel(&single, &bs, 2, 32);
        let fused = Sim::batched(Gpu::v100(), ExecMode::ModelOnly, k);
        let bf = fused.alloc_vec::<Dd>(n);
        fill_kernel(&fused, &bf, 2, 32);

        let ps = single.profile();
        let pf = fused.profile();
        // all instances' work is accounted...
        assert_eq!(pf.total_flops_paper(), k as f64 * ps.total_flops_paper());
        assert_eq!(pf.total_bytes(), k as u64 * ps.total_bytes());
        // ...in ONE fused launch with one launch gap
        assert_eq!(pf.total_launches(), ps.total_launches());
        assert_eq!(pf.launch_gap_ms, ps.launch_gap_ms);
        // per-instance kernel time improves by far more than the
        // instance count alone would explain away: occupancy of the
        // 2-block singleton grid was 2/80 of a wave
        assert!(pf.all_kernels_ms() < ps.all_kernels_ms() * k as f64 / 2.0);
        // grouped allocations and transfers charge every instance
        assert_eq!(fused.footprint_bytes(), k as u64 * single.footprint_bytes());
        single.record_transfer(1 << 20);
        fused.record_transfer(1 << 20);
        assert_eq!(
            fused.profile().transfer_bytes,
            k as u64 * single.profile().transfer_bytes
        );
    }

    #[test]
    fn batched_of_one_is_the_ordinary_session() {
        let a = Sim::new(Gpu::v100(), ExecMode::Sequential);
        let b = Sim::batched(Gpu::v100(), ExecMode::Sequential, 1);
        let ba = a.alloc_vec::<Dd>(100);
        let bb = b.alloc_vec::<Dd>(100);
        fill_kernel(&a, &ba, 4, 32);
        fill_kernel(&b, &bb, 4, 32);
        assert_eq!(ba.download(), bb.download());
        assert_eq!(a.profile().all_kernels_ms(), b.profile().all_kernels_ms());
        assert_eq!(a.footprint_bytes(), b.footprint_bytes());
    }

    #[test]
    fn shadow_session_executes_but_records_nothing() {
        let sim = Sim::shadow(Gpu::v100(), ExecMode::Sequential);
        assert!(!sim.is_accounting());
        let buf = sim.alloc_vec::<Dd>(50);
        fill_kernel(&sim, &buf, 2, 32);
        // functional state is real...
        assert_eq!(buf.get(7), Dd::from_f64(7.0) + Dd::from_f64(0.5));
        // ...but the profile never saw the launch, transfer or overhead
        sim.record_transfer(1 << 20);
        sim.record_host_overhead();
        let p = sim.profile();
        assert_eq!(p.total_launches(), 0);
        assert_eq!(p.wall_ms(), 0.0);
        assert_eq!(p.transfer_bytes, 0);
    }
}
