//! Per-stage accounting: the simulator's rendering of the paper's tables.
//!
//! Every kernel launch is attributed to a named *stage* (the rows of the
//! paper's Tables 3–9, e.g. `"compute W"` or `"invert diagonal tiles"`).
//! A [`Profile`] accumulates kernel milliseconds, launch counts, multiple
//! double operation counts, Table 1 flops and bytes per stage, plus
//! transfer and host overhead for the wall clock.

use multidouble::OpCounts;

/// Accumulated statistics of one stage.
#[derive(Clone, Debug, Default)]
pub struct StageStats {
    /// Stage label (table row legend).
    pub name: String,
    /// Total kernel time attributed to this stage, ms.
    pub kernel_ms: f64,
    /// Number of kernel launches.
    pub launches: u64,
    /// Multiple double operation counts.
    pub ops: OpCounts,
    /// Table 1 flops (reporting convention).
    pub flops_paper: f64,
    /// Measured-convention flops (timing convention).
    pub flops_measured: f64,
    /// Global memory traffic, bytes.
    pub bytes: u64,
}

/// A full run profile.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    stages: Vec<StageStats>,
    /// Host<->device transfer time, ms.
    pub transfer_ms: f64,
    /// Bytes moved over PCIe.
    pub transfer_bytes: u64,
    /// Wall-clock launch-gap overhead, ms.
    pub launch_gap_ms: f64,
    /// Fixed host-side overhead, ms.
    pub host_ms: f64,
}

impl Profile {
    /// Empty profile.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Record a launch under `stage`.
    pub fn record(
        &mut self,
        stage: &str,
        kernel_ms: f64,
        ops: OpCounts,
        flops_paper: f64,
        flops_measured: f64,
        bytes: u64,
    ) {
        let s = match self.stages.iter_mut().find(|s| s.name == stage) {
            Some(s) => s,
            None => {
                self.stages.push(StageStats {
                    name: stage.to_string(),
                    ..Default::default()
                });
                self.stages.last_mut().unwrap()
            }
        };
        s.kernel_ms += kernel_ms;
        s.launches += 1;
        s.ops += ops;
        s.flops_paper += flops_paper;
        s.flops_measured += flops_measured;
        s.bytes += bytes;
    }

    /// Stages in first-recorded order.
    pub fn stages(&self) -> &[StageStats] {
        &self.stages
    }

    /// Mutable access to the stages (launch-count adjustments).
    pub fn stages_mut(&mut self) -> &mut [StageStats] {
        &mut self.stages
    }

    /// Look up one stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Sum of all kernel times, ms (the paper's "all kernels" row).
    pub fn all_kernels_ms(&self) -> f64 {
        self.stages.iter().map(|s| s.kernel_ms).sum()
    }

    /// Total kernel launches.
    pub fn total_launches(&self) -> u64 {
        self.stages.iter().map(|s| s.launches).sum()
    }

    /// Total Table 1 flops.
    pub fn total_flops_paper(&self) -> f64 {
        self.stages.iter().map(|s| s.flops_paper).sum()
    }

    /// Total bytes of kernel global memory traffic.
    pub fn total_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.bytes).sum()
    }

    /// Wall-clock time, ms: kernels + transfers + launch gaps + host.
    pub fn wall_ms(&self) -> f64 {
        self.all_kernels_ms() + self.transfer_ms + self.launch_gap_ms + self.host_ms
    }

    /// Two-lane attribution of the wall clock, ms: `(prep, compute)`.
    /// The prep lane is what a host core and the PCIe link spend (fixed
    /// host overhead + transfers); the compute lane is what the device
    /// itself spends (kernels + launch gaps). The shares sum to
    /// [`Profile::wall_ms`] exactly — this is the split the pipeline's
    /// stage timelines and trace tracks render as separate lanes.
    pub fn lane_split_ms(&self) -> (f64, f64) {
        (
            self.host_ms + self.transfer_ms,
            self.all_kernels_ms() + self.launch_gap_ms,
        )
    }

    /// Kernel-time gigaflops under the paper's reporting convention
    /// ("the kernel flops in the tables are the totals of the counts of
    /// the double precision operations over the sum of the times spent by
    /// the kernels").
    pub fn kernel_gflops(&self) -> f64 {
        let t = self.all_kernels_ms();
        if t <= 0.0 {
            return 0.0;
        }
        self.total_flops_paper() / (t * 1.0e-3) / 1.0e9
    }

    /// Wall-clock gigaflops.
    pub fn wall_gflops(&self) -> f64 {
        let t = self.wall_ms();
        if t <= 0.0 {
            return 0.0;
        }
        self.total_flops_paper() / (t * 1.0e-3) / 1.0e9
    }

    /// Merge another profile into this one (used by the solver to combine
    /// the QR and back substitution profiles).
    pub fn absorb(&mut self, other: &Profile) {
        for s in &other.stages {
            self.record(
                &s.name,
                s.kernel_ms,
                s.ops,
                s.flops_paper,
                s.flops_measured,
                s.bytes,
            );
            // `record` bumps launches by one; fix up to the true count.
            let mine = self.stages.iter_mut().find(|m| m.name == s.name).unwrap();
            mine.launches = mine.launches - 1 + s.launches;
        }
        self.transfer_ms += other.transfer_ms;
        self.transfer_bytes += other.transfer_bytes;
        self.launch_gap_ms += other.launch_gap_ms;
        self.host_ms += other.host_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(n: u64) -> OpCounts {
        OpCounts {
            add: n,
            mul: n,
            ..OpCounts::ZERO
        }
    }

    #[test]
    fn stages_accumulate_in_order() {
        let mut p = Profile::new();
        p.record("beta, v", 1.0, ops(10), 100.0, 40.0, 64);
        p.record("update R", 2.0, ops(20), 200.0, 80.0, 128);
        p.record("beta, v", 0.5, ops(5), 50.0, 20.0, 32);
        assert_eq!(p.stages().len(), 2);
        assert_eq!(p.stages()[0].name, "beta, v");
        assert_eq!(p.stages()[0].launches, 2);
        assert!((p.stages()[0].kernel_ms - 1.5).abs() < 1e-12);
        assert!((p.all_kernels_ms() - 3.5).abs() < 1e-12);
        assert_eq!(p.total_launches(), 3);
    }

    #[test]
    fn gflops_reporting() {
        let mut p = Profile::new();
        p.record("k", 1000.0, ops(1), 2.0e12, 1.0e12, 0);
        // 2e12 flops over 1 second = 2000 gigaflops
        assert!((p.kernel_gflops() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn wall_includes_overheads() {
        let mut p = Profile::new();
        p.record("k", 10.0, ops(1), 1.0, 1.0, 0);
        p.transfer_ms = 5.0;
        p.launch_gap_ms = 1.0;
        p.host_ms = 4.0;
        assert!((p.wall_ms() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn lane_split_partitions_the_wall_clock() {
        let mut p = Profile::new();
        p.record("k", 10.0, ops(1), 1.0, 1.0, 0);
        p.transfer_ms = 5.0;
        p.launch_gap_ms = 1.0;
        p.host_ms = 4.0;
        let (prep, compute) = p.lane_split_ms();
        assert!((prep - 9.0).abs() < 1e-12);
        assert!((compute - 11.0).abs() < 1e-12);
        assert!((prep + compute - p.wall_ms()).abs() < 1e-12);
    }

    #[test]
    fn absorb_merges_counts() {
        let mut a = Profile::new();
        a.record("x", 1.0, ops(1), 10.0, 5.0, 8);
        let mut b = Profile::new();
        b.record("x", 2.0, ops(2), 20.0, 10.0, 16);
        b.record("y", 3.0, ops(3), 30.0, 15.0, 24);
        b.transfer_ms = 7.0;
        a.absorb(&b);
        assert_eq!(a.stage("x").unwrap().launches, 2);
        assert!((a.stage("x").unwrap().kernel_ms - 3.0).abs() < 1e-12);
        assert_eq!(a.stages().len(), 2);
        assert!((a.transfer_ms - 7.0).abs() < 1e-12);
    }
}
