//! GPU execution simulator.
//!
//! The paper this workspace reproduces measures CUDA kernels on five NVIDIA
//! GPUs. No GPU is available here, so this crate substitutes a simulator
//! with two orthogonal halves:
//!
//! 1. **Functional execution** ([`exec`]): kernels are written at block
//!    granularity (CUDA's barrier phases become loops over the threads of
//!    a block) and run against [`buffer::DeviceBuf`] global memory with the
//!    paper's *staggered* multiple double layout (one `f64` plane per limb).
//!    Blocks of one launch may run on parallel host threads — the safety
//!    contract is CUDA's own: blocks of a launch must write disjoint
//!    locations.
//! 2. **Analytic timing** ([`model`]): every launch declares its multiple
//!    double operation counts and global memory traffic; a roofline model
//!    with occupancy and per-device ILP efficiency converts those into
//!    kernel milliseconds, using the device constants of [`device`]
//!    (the paper's Table 2 plus public spec-sheet peaks and bandwidths).
//!
//! Reported gigaflops divide *Table 1 flops* by modeled time — the paper's
//! own convention — while the time model charges the *measured* FMA-based
//! operation counts that the arithmetic actually executes. The difference
//! between those two tallies, together with the memory-bound/compute-bound
//! transition of the roofline, is what makes the observed precision
//! overhead factors land below the Table 1 predictions, as in the paper.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod buffer;
pub mod device;
pub mod exec;
pub mod fault;
pub mod launch;
pub mod model;
pub mod profile;
pub mod roofline;

pub use buffer::{DeviceBuf, DeviceMat};
pub use device::Gpu;
pub use exec::{ExecMode, Sim};
pub use fault::FaultPlan;
pub use launch::{BlockCtx, KernelCost};
pub use profile::{Profile, StageStats};
