//! Seeded, deterministic device-fault model.
//!
//! Real pools lose work two ways: **transient** kernel faults (an ECC
//! replay, a corrected-then-retried launch — the kernel reruns and the
//! device keeps going) and **sticky** device loss (Xid-class errors —
//! the device is gone for the rest of the run). Both are modeled here
//! as a [`FaultPlan`]: a per-device schedule of fault instants in
//! *simulated* milliseconds, derived entirely from a caller-provided
//! seed.
//!
//! Determinism is the whole point. The plan draws from an internal
//! splitmix64 generator — no global RNG, no entropy source, no wall
//! clock — so the same seed always yields the same fault schedule and
//! a "chaos" run is exactly as reproducible as a fault-free one. The
//! workspace lint `nondeterministic-fault-source` (see `mdls-analyze`)
//! enforces that fault scheduling everywhere else routes through this
//! type instead of reaching for `thread_rng` or `Instant::now`.
//!
//! A `FaultPlan` only *describes* faults; it never injects them itself.
//! The pipeline's recovery layer consumes the schedule: transient
//! instants that land inside a job's executed device spans become
//! bounded retries, and a sticky loss instant fails the device in the
//! pool (`DevicePool::fail_device`), refunding its unexecuted work.

/// One device's deterministic fault schedule: a sorted list of
/// transient-fault instants plus an optional sticky loss instant, all
/// in simulated ms. Constructed from a seed, never from entropy.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed the schedule was derived from (0 for [`FaultPlan::none`]).
    seed: u64,
    /// Transient kernel-fault instants, ms, sorted ascending.
    transients: Vec<f64>,
    /// Sticky loss instant, ms: the device dies here and stays dead.
    lost_at_ms: Option<f64>,
}

/// splitmix64: tiny, seedable, full-period — the sanctioned
/// deterministic source for fault schedules.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from one splitmix64 output (53 mantissa
/// bits, the standard bits-to-double construction).
fn u01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// A quiet plan: no transients, no loss. The fault-free baseline.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A seeded transient-fault schedule over `[0, horizon_ms)`:
    /// fault gaps are exponential with mean `mean_gap_ms` (a Poisson
    /// process, the textbook soft-error model), drawn from splitmix64
    /// seeded with `seed`. The same `(seed, horizon, gap)` triple
    /// always produces the same instants.
    pub fn seeded(seed: u64, horizon_ms: f64, mean_gap_ms: f64) -> FaultPlan {
        assert!(horizon_ms >= 0.0 && mean_gap_ms > 0.0, "degenerate plan");
        let mut state = seed;
        let mut transients = Vec::new();
        let mut t = 0.0;
        loop {
            // inverse-CDF exponential gap; u < 1 so ln(1-u) is finite
            let u = u01(&mut state);
            t += -mean_gap_ms * (1.0 - u).ln();
            if t >= horizon_ms {
                break;
            }
            transients.push(t);
        }
        FaultPlan {
            seed,
            transients,
            lost_at_ms: None,
        }
    }

    /// Add a sticky device loss at `at_ms`: the device executes
    /// nothing past this instant for the rest of the run.
    pub fn with_device_lost(mut self, at_ms: f64) -> FaultPlan {
        assert!(at_ms >= 0.0, "loss instant before t=0");
        self.lost_at_ms = Some(at_ms);
        self
    }

    /// Seed the schedule was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The transient instants, ms, sorted ascending.
    pub fn transients(&self) -> &[f64] {
        &self.transients
    }

    /// Number of transient faults striking inside `[start_ms, end_ms)`
    /// — the count of kernel replays a span executed over that window
    /// absorbs.
    pub fn transients_in(&self, start_ms: f64, end_ms: f64) -> usize {
        self.transients
            .iter()
            .filter(|&&t| t >= start_ms && t < end_ms)
            .count()
    }

    /// Sticky loss instant, if the plan has one.
    pub fn lost_at_ms(&self) -> Option<f64> {
        self.lost_at_ms
    }

    /// True once the device is lost at simulated time `t_ms`.
    pub fn lost_by(&self, t_ms: f64) -> bool {
        self.lost_at_ms.is_some_and(|at| t_ms >= at)
    }

    /// True when the plan schedules nothing at all.
    pub fn is_quiet(&self) -> bool {
        self.transients.is_empty() && self.lost_at_ms.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_is_quiet() {
        let p = FaultPlan::none();
        assert!(p.is_quiet());
        assert_eq!(p.transients_in(0.0, 1e9), 0);
        assert!(!p.lost_by(1e9));
    }

    #[test]
    fn seeded_schedule_is_reproducible() {
        let a = FaultPlan::seeded(42, 100.0, 7.0);
        let b = FaultPlan::seeded(42, 100.0, 7.0);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 100.0, 7.0);
        assert_ne!(a.transients(), c.transients(), "seed must matter");
    }

    #[test]
    fn transients_are_sorted_inside_horizon() {
        let p = FaultPlan::seeded(7, 500.0, 20.0);
        assert!(!p.transients().is_empty(), "500 ms at mean gap 20 ms");
        for w in p.transients().windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(p.transients().iter().all(|&t| (0.0..500.0).contains(&t)));
        assert_eq!(p.transients_in(0.0, 500.0), p.transients().len());
    }

    #[test]
    fn window_counts_partition() {
        let p = FaultPlan::seeded(11, 300.0, 9.0);
        let total = p.transients_in(0.0, 300.0);
        let split = p.transients_in(0.0, 100.0)
            + p.transients_in(100.0, 200.0)
            + p.transients_in(200.0, 300.0);
        assert_eq!(total, split, "half-open windows must tile");
    }

    #[test]
    fn mean_gap_tracks_the_request() {
        // law of large numbers, loose bound: 10k ms at mean gap 10 ms
        let p = FaultPlan::seeded(3, 10_000.0, 10.0);
        let n = p.transients().len() as f64;
        assert!((n - 1000.0).abs() < 200.0, "{n} faults for expected ~1000");
    }

    #[test]
    fn sticky_loss_is_a_threshold() {
        let p = FaultPlan::none().with_device_lost(50.0);
        assert!(!p.lost_by(49.9));
        assert!(p.lost_by(50.0));
        assert!(p.lost_by(1e9));
        assert_eq!(p.lost_at_ms(), Some(50.0));
        assert!(!p.is_quiet());
    }
}
