//! The analytic timing model: a roofline with occupancy, ILP efficiency
//! and launch overheads.
//!
//! For one kernel launch with measured flops `W`, global traffic `B`
//! bytes, `g` blocks of `t` threads on device `D`:
//!
//! ```text
//! compute_ms = W / (peak(D) * ilp_eff(D, planes) * occupancy(D, g, t))
//! memory_ms  = B / (bandwidth(D) * mem_eff(D))
//! kernel_ms  = kernel_base(D) + max(compute_ms, memory_ms)
//! ```
//!
//! * `occupancy` captures wave quantization across multiprocessors and
//!   the threads-per-block fill of one multiprocessor (the paper's
//!   "at n = 32 the V100 is only half occupied", §4.8, and the N = 80
//!   V100-vs-P100 effect of Table 9).
//! * `ilp_eff` captures how well the dependency-chained error-free
//!   transformations fill the double precision pipelines. It grows with
//!   the limb count on big-DP parts (deeper arithmetic exposes more
//!   independent operations per datum — the paper's CGMA argument) and
//!   shrinks on the DP-starved RTX 2080 (register pressure).
//!
//! Wall-clock time adds per-launch gaps, PCIe transfers and a fixed host
//! overhead; transfers beyond the host's RAM capacity incur a swap
//! penalty (Table 7's 84-second octo double outlier).

use crate::device::Gpu;
use crate::launch::KernelCost;

/// Latency-hiding oversubscription: how many resident threads per core a
/// multiprocessor wants before the DP pipeline is considered fully fed.
const LATENCY_FACTOR: f64 = 1.0;

/// Fraction of host RAM that device transfers may use before the model
/// charges swap thrashing.
const RAM_SOFT_LIMIT: f64 = 0.55;

/// Slowdown applied to transfer traffic beyond the RAM soft limit.
const SWAP_FACTOR: f64 = 40.0;

/// Occupancy in `[0, 1]`: wave quantization times per-MP thread fill.
pub fn occupancy(gpu: &Gpu, grid: usize, threads_per_block: usize) -> f64 {
    if grid == 0 || threads_per_block == 0 {
        return 1.0;
    }
    let mps = gpu.multiprocessors as f64;
    let waves = (grid as f64 / mps).ceil();
    let mp_fill = grid as f64 / (waves * mps);
    let core_fill =
        (threads_per_block as f64 / (gpu.cores_per_mp as f64 * LATENCY_FACTOR)).min(1.0);
    mp_fill * core_fill
}

/// ILP efficiency of the multiple double instruction mix, per device.
pub fn ilp_efficiency(gpu: &Gpu, planes: usize) -> f64 {
    // complex scalars double the planes but expose the same per-limb
    // dependency depth; cap the ILP argument at 8 limbs.
    let p = planes.min(8) as f64;
    (gpu.ilp_base + gpu.ilp_slope * p).clamp(0.02, 0.98)
}

/// Latency-hiding bonus for dependency-chained (latency-class) kernels:
/// deeper multiple double arithmetic performs more work per global load
/// (the paper's CGMA argument), so the stalls of reduction-style kernels
/// shrink as the precision grows.
pub fn latency_bonus(planes: usize) -> f64 {
    1.0 + 0.08 * (planes.min(8).saturating_sub(2)) as f64
}

/// Kernel time in milliseconds for one launch.
pub fn kernel_ms(gpu: &Gpu, grid: usize, threads_per_block: usize, cost: &KernelCost) -> f64 {
    let occ = occupancy(gpu, grid, threads_per_block);
    let scale = if cost.eff_scale < 1.0 {
        cost.eff_scale * latency_bonus(cost.planes)
    } else {
        cost.eff_scale
    };
    let eff = (ilp_efficiency(gpu, cost.planes) * scale).clamp(0.002, 0.98);
    let compute_ms = cost.flops_measured / (gpu.peak_dp_gflops * 1.0e9 * eff * occ) * 1.0e3;
    let memory_ms = cost.bytes as f64 / (gpu.mem_bw_gbs * 1.0e9 * gpu.mem_eff) * 1.0e3;
    gpu.kernel_base_us * 1.0e-3 + compute_ms.max(memory_ms)
}

/// Kernel time in milliseconds for one *fused* launch carrying
/// `instances` independent copies of a per-instance launch shape: the
/// grid grows to `instances × grid` blocks (occupancy — wave
/// quantization and per-MP fill — is computed over the fused grid),
/// the per-instance work and traffic scale by `instances`, and the
/// fixed kernel base is paid once for the whole group instead of once
/// per instance. This is the device-level micro-batching model: one
/// small QR leaves most multiprocessors idle (the paper's "at n = 32
/// the V100 is only half occupied" effect, compounded by wave
/// quantization at single-digit grids), while `k` fused instances fill
/// the waves and amortize every per-launch constant.
pub fn fused_kernel_ms(
    gpu: &Gpu,
    instances: usize,
    grid: usize,
    threads_per_block: usize,
    cost: &KernelCost,
) -> f64 {
    kernel_ms(
        gpu,
        instances.max(1) * grid,
        threads_per_block,
        &cost.scaled(instances.max(1) as u64),
    )
}

/// Host<->device transfer time in milliseconds for `bytes`, given the
/// total device-resident footprint (for the RAM swap penalty).
pub fn transfer_ms(gpu: &Gpu, bytes: u64, footprint_bytes: u64) -> f64 {
    let base = bytes as f64 / (gpu.pcie_gbs * 1.0e9) * 1.0e3;
    let ram = gpu.host_ram_gb * 1.0e9;
    if footprint_bytes as f64 > RAM_SOFT_LIMIT * ram {
        base * SWAP_FACTOR
    } else {
        base
    }
}

/// Wall-clock launch gap in milliseconds for `launches` kernel launches.
pub fn launch_gap_ms(gpu: &Gpu, launches: u64) -> f64 {
    launches as f64 * gpu.launch_gap_us * 1.0e-3
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{OpCounts, Qd};

    fn qd_cost(mul_add_pairs: u64, elems: u64) -> KernelCost {
        crate::launch::KernelCost::of::<Qd>(
            OpCounts {
                add: mul_add_pairs,
                mul: mul_add_pairs,
                ..OpCounts::ZERO
            },
            elems,
            elems / 16,
        )
    }

    #[test]
    fn occupancy_full_when_matched() {
        let v = Gpu::v100();
        assert_eq!(occupancy(&v, 80, 64), 1.0);
        // 32 threads fill half of the V100's 64 cores per MP (§4.8)
        assert!((occupancy(&v, 80, 32) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn occupancy_wave_quantization_p100() {
        // 80 blocks on 56 MPs take two waves: 80 / 112 fill
        let p = Gpu::p100();
        assert!((occupancy(&p, 80, 64) - 80.0 / 112.0).abs() < 1e-12);
    }

    #[test]
    fn compute_bound_scales_with_flops() {
        let v = Gpu::v100();
        let t1 = kernel_ms(&v, 80, 128, &qd_cost(1 << 20, 1 << 10));
        let t2 = kernel_ms(&v, 80, 128, &qd_cost(1 << 21, 1 << 10));
        assert!(t2 > 1.8 * t1 && t2 < 2.2 * t1);
    }

    #[test]
    fn memory_bound_floor() {
        let v = Gpu::v100();
        // almost no flops, lots of traffic
        let c = crate::launch::KernelCost::of::<Qd>(OpCounts::ZERO, 1 << 24, 0);
        let t = kernel_ms(&v, 80, 128, &c);
        let expect = (1u64 << 24) as f64 * 32.0 / (870.0e9 * v.mem_eff) * 1e3;
        assert!((t - expect - v.kernel_base_us * 1e-3).abs() < 1e-6);
    }

    #[test]
    fn swap_penalty_kicks_in() {
        let v = Gpu::v100(); // 32 GB host
        let small = transfer_ms(&v, 1 << 30, 1 << 30);
        let big = transfer_ms(&v, 1 << 30, 28 * (1 << 30)); // 28 GB footprint
        assert!(big > 10.0 * small);
    }

    #[test]
    fn efficiency_grows_with_planes() {
        for g in [Gpu::rtx2080(), Gpu::v100()] {
            assert!(ilp_efficiency(&g, 8) > ilp_efficiency(&g, 2), "{}", g.name);
        }
    }

    #[test]
    fn fused_grids_quantize_to_waves_per_device() {
        // the fused grid obeys the same wave quantization as any grid:
        // k instances of a g-block launch fill k*g/MPs of a wave, and
        // the per-job compute share is best exactly when k*g lands on a
        // wave boundary of the device
        for gpu in [Gpu::v100(), Gpu::p100(), Gpu::a100()] {
            let mps = gpu.multiprocessors;
            // 4-block instances: a full wave needs mps/4 instances
            let fill = mps / 4;
            assert!(
                (occupancy(&gpu, fill * 4, 64) - 1.0).abs() < 1e-12,
                "{}",
                gpu.name
            );
            // one instance past the boundary starts a second, nearly
            // empty wave: occupancy drops to (mps+4)/(2*mps)
            let spill = occupancy(&gpu, fill * 4 + 4, 64);
            let expect = (mps + 4) as f64 / (2 * mps) as f64;
            assert!((spill - expect).abs() < 1e-12, "{}: {spill}", gpu.name);
        }
    }

    #[test]
    fn fused_per_instance_cost_beats_singletons_on_small_grids() {
        // a 2-block qd launch badly underfills every device; fusing 40
        // instances must cut the per-instance kernel time by far more
        // than 2x (occupancy up, kernel base amortized)
        let cost = qd_cost(1 << 14, 1 << 8);
        for gpu in [Gpu::v100(), Gpu::p100(), Gpu::a100()] {
            let single = kernel_ms(&gpu, 2, 64, &cost);
            let fused = fused_kernel_ms(&gpu, 40, 2, 64, &cost) / 40.0;
            assert!(
                fused < single / 2.0,
                "{}: fused per-instance {fused} ms vs single {single} ms",
                gpu.name
            );
        }
    }

    #[test]
    fn fused_of_one_is_exactly_a_single_launch() {
        let v = Gpu::v100();
        let cost = qd_cost(1 << 12, 1 << 6);
        assert_eq!(
            fused_kernel_ms(&v, 1, 8, 128, &cost),
            kernel_ms(&v, 8, 128, &cost)
        );
    }

    #[test]
    fn fused_cost_scales_work_not_shape() {
        let cost = qd_cost(1000, 100);
        let s = cost.scaled(8);
        assert_eq!(s.flops_measured, 8.0 * cost.flops_measured);
        assert_eq!(s.flops_paper, 8.0 * cost.flops_paper);
        assert_eq!(s.bytes, 8 * cost.bytes);
        assert_eq!(s.planes, cost.planes);
        assert_eq!(s.eff_scale, cost.eff_scale);
    }
}
