//! The [`Fp`] abstraction: "a thing that behaves like an IEEE double".
//!
//! Every multiple double algorithm in this crate is written once, generically
//! over `Fp`, and instantiated twice:
//!
//! * with [`f64`] — the production code path, fully inlined, zero overhead;
//! * with the counting floats of [`crate::count`] — the instrumentation path
//!   that measures how many double precision operations each multiple double
//!   operation performs (the reproduction of the paper's Table 1).
//!
//! `Fp` also owns the choice of `two_prod` implementation: the default uses
//! a fused multiply-add, while [`crate::count::SplitF64`] overrides it with
//! the Dekker split used by the paper's operation tallies (CAMPARY's counts
//! predate the ubiquitous use of FMA on GPUs).

use core::ops::{Add, Div, Mul, Neg, Sub};

/// A double-precision-like floating point value.
///
/// The arithmetic operator bounds are the five IEEE operations; the
/// remaining methods are the few non-arithmetic primitives the multiple
/// double algorithms need (comparisons come from `PartialOrd`).
pub trait Fp:
    Copy
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;

    /// Wrap a raw double.
    fn from_f64(x: f64) -> Self;
    /// Unwrap to a raw double (no counting).
    fn to_f64(self) -> f64;

    /// Fused multiply-add `self * a + b`, rounded once.
    fn mul_add(self, a: Self, b: Self) -> Self;

    /// Absolute value (sign manipulation; not counted as a flop).
    fn fabs(self) -> Self;

    /// Hardware square root of the leading double. Used only to seed
    /// Newton iterations; counted as a single operation.
    fn fsqrt(self) -> Self;

    /// Exact product with error: `(p, e)` with `p + e == self * b` exactly.
    ///
    /// The default uses one multiply and one FMA. Implementations may
    /// override it (e.g. with the Dekker split) to model other hardware.
    #[inline(always)]
    fn two_prod(self, b: Self) -> (Self, Self) {
        let p = self * b;
        let e = self.mul_add(b, -p);
        (p, e)
    }
}

impl Fp for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline(always)]
    fn fabs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn fsqrt(self) -> Self {
        f64::sqrt(self)
    }
}

/// Splits `a` into `hi + lo` with both halves representable in 26 bits,
/// so that products of halves are exact (Dekker's split).
///
/// `QD_SPLITTER` is `2^27 + 1`; overflow guards are omitted because the
/// linear algebra in this workspace operates far from the overflow range.
#[inline(always)]
pub fn split<F: Fp>(a: F) -> (F, F) {
    let splitter = F::from_f64(134217729.0); // 2^27 + 1
    let t = splitter * a;
    let hi = t - (t - a);
    let lo = a - hi;
    (hi, lo)
}

/// `two_prod` via the Dekker split: 17 double operations, no FMA.
///
/// This is the variant assumed by the paper's Table 1 operation tallies.
#[inline(always)]
pub fn two_prod_split<F: Fp>(a: F, b: F) -> (F, F) {
    let p = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let e = ((ahi * bhi - p) + ahi * blo + alo * bhi) + alo * blo;
    (p, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_prod_fma_is_exact() {
        let a = 1.0 + f64::EPSILON;
        let b = 1.0 - f64::EPSILON;
        let (p, e) = Fp::two_prod(a, b);
        // a*b = 1 - eps^2 exactly; p = 1.0, e = -eps^2.
        assert_eq!(p, 1.0);
        assert_eq!(e, -(f64::EPSILON * f64::EPSILON));
    }

    #[test]
    fn two_prod_split_matches_fma() {
        let cases = [
            (std::f64::consts::PI, std::f64::consts::E),
            (1.0e8 + 7.0, 1.0e-8 + 3.0e-17),
            (-123456.789, 0.000123456789),
        ];
        for (a, b) in cases {
            let (p1, e1) = Fp::two_prod(a, b);
            let (p2, e2) = two_prod_split(a, b);
            assert_eq!(p1, p2);
            assert_eq!(e1, e2, "split error term differs for {a} * {b}");
        }
    }

    #[test]
    fn split_halves_recombine() {
        let a = 9.87654321e12_f64;
        let (hi, lo) = split(a);
        assert_eq!(hi + lo, a);
        // both halves fit in 26 bits of mantissa
        assert_eq!(hi, (hi as f32 as f64 * 0.0) + hi); // hi is a valid f64; structural check below
        assert!(lo.abs() <= a.abs() * 2f64.powi(-26));
    }
}
