//! Instrumented operation counting (the Table 1 reproduction).
//!
//! [`Cf64`] is an [`Fp`] whose arithmetic operators bump thread-local
//! counters; running any multiple double algorithm on `Cf64` therefore
//! measures exactly how many double precision operations it performs —
//! on the same generic code that production `f64` uses. [`SplitF64`]
//! additionally replaces the FMA `two_prod` by the Dekker split, which is
//! the convention behind the CAMPARY tallies in the paper's Table 1.

use core::cell::Cell;
use core::ops::{Add, Div, Mul, Neg, Sub};

use crate::cost::OpCost;
use crate::fp::{two_prod_split, Fp};
use crate::{dd, od, qd};

thread_local! {
    static ADDS: Cell<u64> = const { Cell::new(0) };
    static MULS: Cell<u64> = const { Cell::new(0) };
    static DIVS: Cell<u64> = const { Cell::new(0) };
    static FMAS: Cell<u64> = const { Cell::new(0) };
    static SQRTS: Cell<u64> = const { Cell::new(0) };
}

/// A tally of raw double precision operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlopTally {
    /// Additions and subtractions.
    pub adds: u64,
    /// Multiplications.
    pub muls: u64,
    /// Divisions.
    pub divs: u64,
    /// Fused multiply-adds (each counted once).
    pub fmas: u64,
    /// Square roots.
    pub sqrts: u64,
}

impl FlopTally {
    /// Total operation count, counting an FMA as one operation.
    pub fn total(&self) -> u64 {
        self.adds + self.muls + self.divs + self.fmas + self.sqrts
    }
}

fn reset() {
    ADDS.with(|c| c.set(0));
    MULS.with(|c| c.set(0));
    DIVS.with(|c| c.set(0));
    FMAS.with(|c| c.set(0));
    SQRTS.with(|c| c.set(0));
}

fn snapshot() -> FlopTally {
    FlopTally {
        adds: ADDS.with(Cell::get),
        muls: MULS.with(Cell::get),
        divs: DIVS.with(Cell::get),
        fmas: FMAS.with(Cell::get),
        sqrts: SQRTS.with(Cell::get),
    }
}

/// Run `f` with fresh counters and return what it tallied.
pub fn tally<R>(f: impl FnOnce() -> R) -> (R, FlopTally) {
    reset();
    let r = f();
    (r, snapshot())
}

macro_rules! counting_float {
    ($name:ident, $doc:literal) => {
        #[doc = $doc]
        #[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
        pub struct $name(pub f64);

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, r: Self) -> Self {
                ADDS.with(|c| c.set(c.get() + 1));
                $name(self.0 + r.0)
            }
        }
        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, r: Self) -> Self {
                ADDS.with(|c| c.set(c.get() + 1));
                $name(self.0 - r.0)
            }
        }
        impl Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, r: Self) -> Self {
                MULS.with(|c| c.set(c.get() + 1));
                $name(self.0 * r.0)
            }
        }
        impl Div for $name {
            type Output = Self;
            #[inline]
            fn div(self, r: Self) -> Self {
                DIVS.with(|c| c.set(c.get() + 1));
                $name(self.0 / r.0)
            }
        }
        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                $name(-self.0)
            }
        }
    };
}

counting_float!(
    Cf64,
    "Counting double with FMA `two_prod` (what this crate executes)."
);
counting_float!(
    SplitF64,
    "Counting double with Dekker-split `two_prod` (the Table 1 convention)."
);

impl Fp for Cf64 {
    const ZERO: Self = Cf64(0.0);
    const ONE: Self = Cf64(1.0);
    #[inline]
    fn from_f64(x: f64) -> Self {
        Cf64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self.0
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        FMAS.with(|c| c.set(c.get() + 1));
        Cf64(f64::mul_add(self.0, a.0, b.0))
    }
    #[inline]
    fn fabs(self) -> Self {
        Cf64(self.0.abs())
    }
    #[inline]
    fn fsqrt(self) -> Self {
        SQRTS.with(|c| c.set(c.get() + 1));
        Cf64(self.0.sqrt())
    }
}

impl Fp for SplitF64 {
    const ZERO: Self = SplitF64(0.0);
    const ONE: Self = SplitF64(1.0);
    #[inline]
    fn from_f64(x: f64) -> Self {
        SplitF64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self.0
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // An FMA *used as an FMA* would not appear under the split
        // convention; only `two_prod` is overridden, so a direct call is
        // modelled as mul + add.
        MULS.with(|c| c.set(c.get() + 1));
        ADDS.with(|c| c.set(c.get() + 1));
        SplitF64(f64::mul_add(self.0, a.0, b.0))
    }
    #[inline]
    fn fabs(self) -> Self {
        SplitF64(self.0.abs())
    }
    #[inline]
    fn fsqrt(self) -> Self {
        SQRTS.with(|c| c.set(c.get() + 1));
        SplitF64(self.0.sqrt())
    }
    #[inline]
    fn two_prod(self, b: Self) -> (Self, Self) {
        two_prod_split(self, b)
    }
}

/// Measured double-operation counts for one real multiple double
/// operation, for both `two_prod` conventions.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeasuredOp {
    /// Total ops with FMA `two_prod` (FMA counted as one op).
    pub fma: u64,
    /// Total ops with Dekker-split `two_prod` (the Table 1 convention).
    pub split: u64,
}

/// Measured counts for add/sub/mul/div/sqrt of one precision.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeasuredCosts {
    /// Limbs of the measured precision.
    pub limbs: usize,
    /// Addition.
    pub add: MeasuredOp,
    /// Subtraction.
    pub sub: MeasuredOp,
    /// Multiplication.
    pub mul: MeasuredOp,
    /// Division.
    pub div: MeasuredOp,
    /// Square root.
    pub sqrt: MeasuredOp,
}

macro_rules! measure_type {
    ($limbs:expr, $addf:path, $subf:path, $mulf:path, $divf:path, $sqrtf:path, $mk:expr) => {{
        fn count_one<F: Fp>(op: impl Fn([F; $limbs], [F; $limbs]) -> [F; $limbs]) -> u64 {
            let a: [F; $limbs] = $mk(1.0 / 3.0);
            let b: [F; $limbs] = $mk(1.0 / 7.0);
            let (_, t) = tally(|| op(a, b));
            t.total()
        }
        fn mk_op(fma: u64, split: u64) -> MeasuredOp {
            MeasuredOp { fma, split }
        }
        MeasuredCosts {
            limbs: $limbs,
            add: mk_op(
                count_one::<Cf64>(|a, b| $addf(a, b)),
                count_one::<SplitF64>(|a, b| $addf(a, b)),
            ),
            sub: mk_op(
                count_one::<Cf64>(|a, b| $subf(a, b)),
                count_one::<SplitF64>(|a, b| $subf(a, b)),
            ),
            mul: mk_op(
                count_one::<Cf64>(|a, b| $mulf(a, b)),
                count_one::<SplitF64>(|a, b| $mulf(a, b)),
            ),
            div: mk_op(
                count_one::<Cf64>(|a, b| $divf(a, b)),
                count_one::<SplitF64>(|a, b| $divf(a, b)),
            ),
            sqrt: mk_op(
                count_one::<Cf64>(|a, _| $sqrtf(a)),
                count_one::<SplitF64>(|a, _| $sqrtf(a)),
            ),
        }
    }};
}

fn seed_limbs<F: Fp, const M: usize>(x: f64) -> [F; M] {
    // a value with all limbs populated so no branch shortcuts fire
    let mut out = [F::ZERO; M];
    let mut v = x;
    for o in out.iter_mut() {
        *o = F::from_f64(v);
        v *= 2f64.powi(-53);
    }
    out
}

/// Measure dd counts by instrumented execution.
pub fn measure_dd() -> MeasuredCosts {
    measure_type!(
        2,
        dd::dd_add,
        dd::dd_sub,
        dd::dd_mul,
        dd::dd_div,
        dd::dd_sqrt,
        seed_limbs
    )
}

/// Measure qd counts by instrumented execution.
pub fn measure_qd() -> MeasuredCosts {
    measure_type!(
        4,
        qd::qd_add,
        qd::qd_sub,
        qd::qd_mul,
        qd::qd_div,
        qd::qd_sqrt,
        seed_limbs
    )
}

/// Measure od counts by instrumented execution.
pub fn measure_od() -> MeasuredCosts {
    measure_type!(
        8,
        od::od_add,
        od::od_sub,
        od::od_mul,
        od::od_div,
        od::od_sqrt,
        seed_limbs
    )
}

/// The measured cost table (FMA convention) for a real precision; falls
/// back to ideal 1.0 for plain doubles.
pub fn measured_real_cost(limbs: usize) -> OpCost {
    let m = match limbs {
        1 => {
            return OpCost {
                add: 1.0,
                sub: 1.0,
                mul: 1.0,
                div: 1.0,
                sqrt: 1.0,
            }
        }
        2 => measure_dd(),
        4 => measure_qd(),
        8 => measure_od(),
        _ => panic!("unsupported limb count {limbs}"),
    };
    OpCost {
        add: m.add.fma as f64,
        sub: m.sub.fma as f64,
        mul: m.mul.fma as f64,
        div: m.div.fma as f64,
        sqrt: m.sqrt.fma as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_result_matches_plain_f64() {
        let a = seed_limbs::<Cf64, 4>(1.0 / 3.0);
        let b = seed_limbs::<Cf64, 4>(1.0 / 7.0);
        let (r, _) = tally(|| qd::qd_mul(a, b));
        let ap = seed_limbs::<f64, 4>(1.0 / 3.0);
        let bp = seed_limbs::<f64, 4>(1.0 / 7.0);
        let rp = qd::qd_mul(ap, bp);
        for i in 0..4 {
            assert_eq!(r[i].0, rp[i], "limb {i} diverged under counting");
        }
    }

    #[test]
    fn dd_add_measures_twenty_ops() {
        // the accurate ieee_add is exactly the Table 1 "add" Σ = 20
        let m = measure_dd();
        assert_eq!(m.add.fma, 20);
        assert_eq!(m.add.split, 20); // no products in addition
    }

    #[test]
    fn split_mul_costs_more_than_fma_mul() {
        for m in [measure_dd(), measure_qd(), measure_od()] {
            assert!(
                m.mul.split > m.mul.fma,
                "{} limbs: split {} <= fma {}",
                m.limbs,
                m.mul.split,
                m.mul.fma
            );
        }
    }

    #[test]
    fn costs_grow_with_precision() {
        let (d, q, o) = (measure_dd(), measure_qd(), measure_od());
        assert!(d.add.fma < q.add.fma && q.add.fma < o.add.fma);
        assert!(d.mul.fma < q.mul.fma && q.mul.fma < o.mul.fma);
        assert!(d.div.fma < q.div.fma && q.div.fma < o.div.fma);
    }

    #[test]
    fn dd_split_mul_is_near_table1() {
        // Table 1 says dd mul = 23 ops under the split convention;
        // our algorithm is QDlib's, whose tally is close but not identical.
        let m = measure_dd();
        assert!(
            (m.mul.split as i64 - 23).unsigned_abs() <= 8,
            "dd split mul = {}",
            m.mul.split
        );
    }
}
