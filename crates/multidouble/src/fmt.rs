//! Decimal conversion for multiple double values: digit-by-digit
//! extraction for printing, digit accumulation for parsing.
//!
//! The conversions are accurate to a few units in the last place of the
//! working precision — enough to round-trip values and to define
//! high-precision constants from decimal literals (see [`crate::Od::pi`]).

use crate::dd::Dd;
use crate::od::Od;
use crate::qd::Qd;
use crate::real::MdReal;

/// `10^e` in precision `T` by repeated squaring (exact for small `e`).
pub fn pow10<T: MdReal>(e: i32) -> T {
    let mut base = T::from_f64(10.0);
    let mut n = e.unsigned_abs();
    let mut acc = T::one();
    while n > 0 {
        if n & 1 == 1 {
            acc *= base;
        }
        base = base * base;
        n >>= 1;
    }
    if e < 0 {
        T::one() / acc
    } else {
        acc
    }
}

/// Render `x` with `ndigits` significant decimal digits in scientific
/// notation (`-d.dddde±xx`).
pub fn to_decimal<T: MdReal>(x: T, ndigits: usize) -> String {
    let hi = x.hi();
    if hi.is_nan() {
        return "NaN".into();
    }
    if hi.is_infinite() {
        return if hi > 0.0 {
            "inf".into()
        } else {
            "-inf".into()
        };
    }
    if x == T::zero() {
        return format!("{:.*}e+00", ndigits.saturating_sub(1), 0.0);
    }
    let neg = hi < 0.0 || (hi == 0.0 && x < T::zero());
    let mut r = x.abs();
    let mut e10 = hi.abs().log10().floor() as i32;
    // normalize r into [1, 10)
    r *= pow10::<T>(-e10);
    let ten = T::from_f64(10.0);
    let one = T::one();
    while r >= ten {
        r /= ten;
        e10 += 1;
    }
    while r < one {
        r *= ten;
        e10 -= 1;
    }

    // extract ndigits + 1 digits, the last for rounding
    let mut digits = Vec::with_capacity(ndigits + 1);
    for _ in 0..=ndigits {
        let d = r.floor().to_f64() as i32;
        let d = d.clamp(0, 9);
        digits.push(d as u8);
        r = (r - T::from_f64(d as f64)) * ten;
    }
    // round
    if digits[ndigits] >= 5 {
        let mut i = ndigits;
        loop {
            if i == 0 {
                // overflow 9.99 -> 10.0
                digits.insert(0, 1);
                for d in digits.iter_mut().skip(1) {
                    *d = 0;
                }
                e10 += 1;
                break;
            }
            i -= 1;
            if digits[i] == 9 {
                digits[i] = 0;
            } else {
                digits[i] += 1;
                break;
            }
        }
    }
    digits.truncate(ndigits);

    let mut s = String::with_capacity(ndigits + 8);
    if neg {
        s.push('-');
    }
    s.push((b'0' + digits[0]) as char);
    if ndigits > 1 {
        s.push('.');
        for &d in &digits[1..] {
            s.push((b'0' + d) as char);
        }
    }
    s.push('e');
    if e10 < 0 {
        s.push('-');
    } else {
        s.push('+');
    }
    s.push_str(&format!("{:02}", e10.abs()));
    s
}

/// Parse a decimal literal (`[+-]ddd[.ddd][e±xx]`) into precision `T`.
pub fn parse_md<T: MdReal>(s: &str) -> Option<T> {
    let s = s.trim();
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return None;
    }
    let mut i = 0;
    let neg = match bytes[0] {
        b'-' => {
            i += 1;
            true
        }
        b'+' => {
            i += 1;
            false
        }
        _ => false,
    };
    let mut acc = T::zero();
    let ten = T::from_f64(10.0);
    let mut frac_digits: i32 = 0;
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut exp: i32 = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => {
                acc = acc * ten + T::from_f64((bytes[i] - b'0') as f64);
                if seen_dot {
                    frac_digits += 1;
                }
                seen_digit = true;
            }
            b'.' if !seen_dot => seen_dot = true,
            b'e' | b'E' => {
                let tail = &s[i + 1..];
                exp = tail.parse::<i32>().ok()?;
                i = bytes.len();
                continue;
            }
            _ => return None,
        }
        i += 1;
    }
    if !seen_digit {
        return None;
    }
    let scale = exp - frac_digits;
    let mut v = if scale != 0 {
        acc * pow10::<T>(scale)
    } else {
        acc
    };
    if neg {
        v = -v;
    }
    Some(v)
}

/// Parse into octo double (used for high-precision constants).
pub fn parse_od(s: &str) -> Option<Od> {
    parse_md::<Od>(s)
}

macro_rules! display_impl {
    ($T:ty, $digits:expr) => {
        impl core::fmt::Display for $T {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                let nd = f.precision().unwrap_or($digits);
                f.write_str(&to_decimal(*self, nd))
            }
        }
    };
}
display_impl!(Dd, 32);
display_impl!(Qd, 64);
display_impl!(Od, 128);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_simple_values() {
        assert_eq!(to_decimal(Dd::from_f64(1.0), 5), "1.0000e+00");
        assert_eq!(to_decimal(Dd::from_f64(-0.5), 4), "-5.000e-01");
        assert_eq!(to_decimal(Qd::ZERO, 3), "0.00e+00");
    }

    #[test]
    fn rounding_carries() {
        let x = Dd::from_f64(0.9999999);
        assert_eq!(to_decimal(x, 4), "1.000e+00");
    }

    #[test]
    fn parse_then_print_pi_dd() {
        let s = "3.14159265358979323846264338327950288";
        let x: Dd = parse_md(s).unwrap();
        let err = (x - Dd::PI).abs().to_f64();
        assert!(err < 10.0 * Dd::EPSILON, "err = {err:e}");
    }

    #[test]
    fn parse_then_print_pi_qd() {
        let s = "3.1415926535897932384626433832795028841971693993751058209749445923078164";
        let x: Qd = parse_md(s).unwrap();
        let err = (x - Qd::PI).abs().to_f64();
        assert!(err < 100.0 * Qd::EPSILON, "err = {err:e}");
    }

    #[test]
    fn roundtrip_qd() {
        let x = Qd::PI / Qd::from_f64(7.0);
        let s = to_decimal(x, 66);
        let y: Qd = parse_md(&s).unwrap();
        let err = (x - y).abs().to_f64() / x.to_f64().abs();
        assert!(err < 1e-62, "err = {err:e}, s = {s}");
    }

    #[test]
    fn roundtrip_od() {
        let x = Od::pi() / Od::from_f64(3.0);
        let s = to_decimal(x, 132);
        let y: Od = parse_md(&s).unwrap();
        let err = (x - y).abs().to_f64() / x.to_f64().abs();
        assert!(err < 1e-125, "err = {err:e}");
    }

    #[test]
    fn parse_exponent_forms() {
        let x: Dd = parse_md("2.5e3").unwrap();
        assert_eq!(x.to_f64(), 2500.0);
        let y: Dd = parse_md("-1.25e-2").unwrap();
        assert_eq!(y.to_f64(), -0.0125);
        assert!(parse_md::<Dd>("abc").is_none());
        assert!(parse_md::<Dd>("").is_none());
    }
}
