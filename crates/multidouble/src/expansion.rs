//! Generalized floating-point expansion algorithms (CAMPARY style).
//!
//! An *expansion* is a slice of doubles, decreasing in magnitude, whose
//! unevaluated sum is the represented value. Quad and octo double
//! multiplication and octo double addition are implemented by forming a
//! longer intermediate expansion and *renormalizing* it to the target
//! length, following CAMPARY's `VecSum` / `VecSumErrBranch` pair
//! (Joldes, Muller, Popescu; the paper's reference \[12\]).

use crate::eft::two_sum;
use crate::fp::Fp;

/// Maximum intermediate expansion length used anywhere in this crate
/// (octo double multiplication produces at most 64 partial terms).
pub const MAX_TERMS: usize = 80;

/// A fixed-capacity scratch expansion, so renormalization never allocates.
pub struct Scratch<F: Fp> {
    buf: [F; MAX_TERMS],
    len: usize,
}

impl<F: Fp> Default for Scratch<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Fp> Scratch<F> {
    /// An empty scratch expansion.
    #[inline]
    pub fn new() -> Self {
        Scratch {
            buf: [F::ZERO; MAX_TERMS],
            len: 0,
        }
    }

    /// Append a term (terms should be pushed roughly in decreasing
    /// magnitude order — diagonal by diagonal for products).
    #[inline(always)]
    pub fn push(&mut self, x: F) {
        debug_assert!(self.len < MAX_TERMS);
        self.buf[self.len] = x;
        self.len += 1;
    }

    /// The current terms.
    #[inline]
    pub fn terms(&self) -> &[F] {
        &self.buf[..self.len]
    }

    #[inline]
    fn terms_mut(&mut self) -> &mut [F] {
        &mut self.buf[..self.len]
    }
}

/// `VecSum`: an exact backward sweep of `two_sum`s. On return `x[0]` holds
/// the (rounded) total and `x[1..]` the cascading error terms; the total
/// unevaluated sum is unchanged.
#[inline]
pub fn vec_sum<F: Fp>(x: &mut [F]) {
    let n = x.len();
    if n < 2 {
        return;
    }
    let mut s = x[n - 1];
    for i in (0..n - 1).rev() {
        let (si, ei) = two_sum(x[i], s);
        s = si;
        x[i + 1] = ei;
    }
    x[0] = s;
}

/// `VecSumErrBranch`: compress a `VecSum`-ed expansion into at most `out.len()`
/// ulp-nonoverlapping components, most significant first, zero padded.
#[inline]
pub fn vec_sum_err_branch<F: Fp>(e: &[F], out: &mut [F]) {
    for o in out.iter_mut() {
        *o = F::ZERO;
    }
    let m = out.len();
    if e.is_empty() || m == 0 {
        return;
    }
    let mut j = 0usize;
    let mut eps = e[0];
    for &next in &e[1..] {
        // two_sum rather than quick_two_sum: after heavy cancellation the
        // error cascade is not guaranteed to be magnitude ordered.
        let (r, new_eps) = two_sum(eps, next);
        if new_eps != F::ZERO {
            if j >= m {
                return;
            }
            out[j] = r;
            j += 1;
            eps = new_eps;
        } else {
            eps = r;
        }
    }
    if j < m && eps != F::ZERO {
        out[j] = eps;
    }
}

/// Renormalize an intermediate expansion into `out.len()` components.
///
/// The scratch terms are first sorted by decreasing magnitude — producers
/// push terms in roughly that order already, but sparse operands (limbs
/// separated by more than 53 bits) break the diagonal-order heuristic,
/// and the `VecSum`/branch pair is only certified on sorted input. The
/// sort costs comparisons, not flops, so it does not disturb the
/// operation tallies. A second pass over the compact result tightens
/// components that may still overlap after heavy cancellation.
#[inline]
pub fn renormalize<F: Fp>(scratch: &mut Scratch<F>, out: &mut [F]) {
    sort_by_magnitude(scratch.terms_mut());
    vec_sum(scratch.terms_mut());
    vec_sum_err_branch(scratch.terms(), out);
    // Second normalization pass over the compact result: cheap (out is
    // short) and makes the output provably ulp-nonoverlapping.
    vec_sum(out);
    let mut tmp = [F::ZERO; 16];
    debug_assert!(out.len() <= 16);
    let n = out.len();
    tmp[..n].copy_from_slice_fp(out);
    vec_sum_err_branch(&tmp[..n], out);
}

/// Insertion sort by decreasing `|value|` (branch-efficient for the
/// nearly sorted sequences the producers push; comparisons only).
#[inline]
pub fn sort_by_magnitude<F: Fp>(x: &mut [F]) {
    for i in 1..x.len() {
        let v = x[i];
        let key = v.fabs();
        let mut j = i;
        while j > 0 && x[j - 1].fabs() < key {
            x[j] = x[j - 1];
            j -= 1;
        }
        x[j] = v;
    }
}

/// Helper trait: `copy_from_slice` for `F: Fp` without `Copy` slice bounds
/// noise at call sites.
trait CopySliceExt<F: Fp> {
    fn copy_from_slice_fp(&mut self, src: &[F]);
}
impl<F: Fp> CopySliceExt<F> for [F] {
    #[inline]
    fn copy_from_slice_fp(&mut self, src: &[F]) {
        for (d, s) in self.iter_mut().zip(src.iter()) {
            *d = *s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact sum of a short expansion through octo double arithmetic.
    fn exact_total(x: &[f64]) -> crate::od::Od {
        let mut s = crate::od::Od::ZERO;
        for &v in x {
            s += crate::od::Od::from_f64(v);
        }
        s
    }

    #[test]
    fn vec_sum_preserves_total_exactly() {
        let mut x = [1.0e16, 3.0, -1.0e16, 2f64.powi(-40)];
        let before = exact_total(&x);
        vec_sum(&mut x);
        // vec_sum is an exact transformation: the unevaluated sum of the
        // components is unchanged (the leading term is only the
        // sequentially rounded sum, not necessarily the global one).
        assert_eq!(exact_total(&x), before);
    }

    #[test]
    fn renormalize_compacts_to_nonoverlapping() {
        let mut s = Scratch::<f64>::new();
        // a deliberately overlapping pile of terms
        for t in [
            1.0,
            2f64.powi(-30),
            2f64.powi(-31),
            2f64.powi(-90),
            2f64.powi(-140),
        ] {
            s.push(t);
        }
        let mut out = [0.0; 4];
        renormalize(&mut s, &mut out);
        // components are ulp-nonoverlapping: adding a lower one to a higher
        // one must not change the higher one
        for i in 0..3 {
            if out[i] != 0.0 && out[i + 1] != 0.0 {
                assert_eq!(out[i] + out[i + 1], out[i], "overlap at {i}: {out:?}");
            }
        }
        // total preserved to quad-double accuracy
        let got: f64 = out.iter().sum();
        let want = 1.0 + 2f64.powi(-30) + 2f64.powi(-31) + 2f64.powi(-90) + 2f64.powi(-140);
        assert!((got - want).abs() <= want * f64::EPSILON);
    }

    #[test]
    fn renormalize_handles_zeros_and_cancellation() {
        let mut s = Scratch::<f64>::new();
        for t in [1.0, -1.0, 0.0, 2f64.powi(-60), 0.0, -2f64.powi(-61)] {
            s.push(t);
        }
        let mut out = [0.0; 4];
        renormalize(&mut s, &mut out);
        let want = 2f64.powi(-61);
        assert_eq!(out[0], want, "{out:?}");
        assert_eq!(out[1], 0.0);
    }
}
