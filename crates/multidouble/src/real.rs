//! [`MdReal`]: the unifying trait over the four real precisions
//! `f64` (the paper's `1d`), [`Dd`] (`2d`), [`Qd`] (`4d`) and [`Od`] (`8d`).

use core::fmt::{Debug, Display};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::dd::Dd;
use crate::od::Od;
use crate::qd::Qd;

/// A real multiple double scalar.
///
/// Implemented by `f64`, [`Dd`], [`Qd`] and [`Od`]. The linear algebra
/// crates are generic over [`crate::MdScalar`], which is implemented for
/// every `MdReal` and for [`crate::Complex`] over every `MdReal`.
pub trait MdReal:
    Copy
    + Clone
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Number of doubles in the representation (1, 2, 4 or 8).
    const LIMBS: usize;
    /// Unit roundoff: `2^(-53 * LIMBS)` (approximately).
    const EPS: f64;
    /// The paper's shorthand: `"1d"`, `"2d"`, `"4d"`, `"8d"`.
    const TAG: &'static str;

    /// Exact conversion from a double.
    fn from_f64(x: f64) -> Self;
    /// Nearest double.
    fn to_f64(self) -> f64;
    /// The most significant limb.
    fn hi(self) -> f64;
    /// Limb `i` (0 = most significant); `i < LIMBS`.
    fn limb(self, i: usize) -> f64;
    /// Rebuild from limbs, most significant first (`l.len() == LIMBS`).
    fn from_limbs(l: &[f64]) -> Self;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    // NOTE: `is_zero` lives on `MdScalar` (implemented for every `MdReal`
    // through the blanket impl) so that method resolution stays
    // unambiguous for types carrying both traits.

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Reciprocal.
    fn recip(self) -> Self {
        Self::one() / self
    }
    /// Exact multiplication by a power of two.
    fn mul_pwr2(self, p: f64) -> Self;
    /// Largest integer not above `self` (exact, limb-cascading).
    fn floor(self) -> Self;
}

impl MdReal for f64 {
    const LIMBS: usize = 1;
    const EPS: f64 = f64::EPSILON * 0.5; // unit roundoff 2^-53
    const TAG: &'static str = "1d";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn hi(self) -> f64 {
        self
    }
    #[inline(always)]
    fn limb(self, i: usize) -> f64 {
        debug_assert_eq!(i, 0);
        self
    }
    #[inline(always)]
    fn from_limbs(l: &[f64]) -> Self {
        l[0]
    }
    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn one() -> Self {
        1.0
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn mul_pwr2(self, p: f64) -> Self {
        self * p
    }
    #[inline(always)]
    fn floor(self) -> Self {
        f64::floor(self)
    }
}

/// Limb-cascading floor shared by the multi-limb types: floor the leading
/// limb; when it is already integral, recurse into the next limb.
macro_rules! md_floor {
    ($x:expr, $T:ty) => {{
        let l = $x.limbs();
        let mut out = [0.0f64; <$T as MdReal>::LIMBS];
        let f0 = l[0].floor();
        out[0] = f0;
        if f0 == l[0] {
            for i in 1..<$T as MdReal>::LIMBS {
                let fi = l[i].floor();
                out[i] = fi;
                if fi != l[i] {
                    break;
                }
            }
        }
        // re-normalize via the type's own addition with zero
        <$T as MdReal>::from_limbs(&out) + <$T as MdReal>::zero()
    }};
}

impl MdReal for Dd {
    const LIMBS: usize = 2;
    const EPS: f64 = Dd::EPSILON;
    const TAG: &'static str = "2d";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        Dd::from_f64(x)
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        Dd::to_f64(self)
    }
    #[inline(always)]
    fn hi(self) -> f64 {
        self.hi
    }
    #[inline(always)]
    fn limb(self, i: usize) -> f64 {
        self.limbs()[i]
    }
    #[inline(always)]
    fn from_limbs(l: &[f64]) -> Self {
        Dd::from_parts(l[0], l[1])
    }
    #[inline(always)]
    fn zero() -> Self {
        Dd::ZERO
    }
    #[inline(always)]
    fn one() -> Self {
        Dd::ONE
    }
    #[inline(always)]
    fn abs(self) -> Self {
        Dd::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        Dd::sqrt(self)
    }
    #[inline(always)]
    fn mul_pwr2(self, p: f64) -> Self {
        Dd::from_parts(self.hi * p, self.lo * p)
    }
    #[inline]
    fn floor(self) -> Self {
        md_floor!(self, Dd)
    }
}

impl MdReal for Qd {
    const LIMBS: usize = 4;
    const EPS: f64 = Qd::EPSILON;
    const TAG: &'static str = "4d";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        Qd::from_f64(x)
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        Qd::to_f64(self)
    }
    #[inline(always)]
    fn hi(self) -> f64 {
        self.0[0]
    }
    #[inline(always)]
    fn limb(self, i: usize) -> f64 {
        self.0[i]
    }
    #[inline(always)]
    fn from_limbs(l: &[f64]) -> Self {
        Qd([l[0], l[1], l[2], l[3]])
    }
    #[inline(always)]
    fn zero() -> Self {
        Qd::ZERO
    }
    #[inline(always)]
    fn one() -> Self {
        Qd::ONE
    }
    #[inline(always)]
    fn abs(self) -> Self {
        Qd::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        Qd::sqrt(self)
    }
    #[inline(always)]
    fn mul_pwr2(self, p: f64) -> Self {
        Qd([self.0[0] * p, self.0[1] * p, self.0[2] * p, self.0[3] * p])
    }
    #[inline]
    fn floor(self) -> Self {
        md_floor!(self, Qd)
    }
}

impl MdReal for Od {
    const LIMBS: usize = 8;
    const EPS: f64 = Od::EPSILON;
    const TAG: &'static str = "8d";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        Od::from_f64(x)
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        Od::to_f64(self)
    }
    #[inline(always)]
    fn hi(self) -> f64 {
        self.0[0]
    }
    #[inline(always)]
    fn limb(self, i: usize) -> f64 {
        self.0[i]
    }
    #[inline(always)]
    fn from_limbs(l: &[f64]) -> Self {
        let mut a = [0.0; 8];
        a.copy_from_slice(&l[..8]);
        Od(a)
    }
    #[inline(always)]
    fn zero() -> Self {
        Od::ZERO
    }
    #[inline(always)]
    fn one() -> Self {
        Od::ONE
    }
    #[inline(always)]
    fn abs(self) -> Self {
        Od::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        Od::sqrt(self)
    }
    #[inline(always)]
    fn mul_pwr2(self, p: f64) -> Self {
        let mut a = self.0;
        for x in &mut a {
            *x *= p;
        }
        Od(a)
    }
    #[inline]
    fn floor(self) -> Self {
        md_floor!(self, Od)
    }
}

/// Convert between precision rungs by limb transfer.
///
/// Widening (`B::LIMBS >= A::LIMBS`) is **exact**: the source limbs are
/// copied most-significant-first and the tail is zero, so a `Dd` promoted
/// to `Qd` represents the identical real number — the property the
/// mixed-precision refinement pipeline relies on when it accumulates a
/// low-rung correction into a high-rung iterate. Narrowing truncates the
/// trailing limbs (round toward the leading expansion), which is all the
/// refinement loop needs when it demotes a high-rung residual to the
/// factorization rung. The result is renormalized through the target
/// type's own addition, so non-canonical limb patterns cannot escape.
pub fn convert_real<A: MdReal, B: MdReal>(x: A) -> B {
    let mut limbs = [0.0f64; 8];
    let n = A::LIMBS.min(B::LIMBS);
    for (i, l) in limbs.iter_mut().enumerate().take(n) {
        *l = x.limb(i);
    }
    B::from_limbs(&limbs[..B::LIMBS]) + B::zero()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn floor_cases<T: MdReal>() {
        assert_eq!(T::from_f64(2.75).floor(), T::from_f64(2.0));
        assert_eq!(T::from_f64(-2.25).floor(), T::from_f64(-3.0));
        assert_eq!(T::from_f64(5.0).floor(), T::from_f64(5.0));
        // integral leading limb, fractional second limb
        let x = T::from_f64(3.0) + T::from_f64(1e-20);
        if T::LIMBS > 1 {
            assert_eq!(x.floor(), T::from_f64(3.0));
        }
    }

    #[test]
    fn floor_all_types() {
        floor_cases::<f64>();
        floor_cases::<Dd>();
        floor_cases::<Qd>();
        floor_cases::<Od>();
    }

    #[test]
    fn widening_is_exact_and_roundtrips() {
        let d = Dd::PI;
        let q: Qd = convert_real(d);
        let o: Od = convert_real(d);
        // exact embedding: leading limbs agree, tail is zero
        assert_eq!(q.limb(0), d.limb(0));
        assert_eq!(q.limb(1), d.limb(1));
        assert_eq!(q.limb(2), 0.0);
        assert_eq!(convert_real::<Od, Dd>(o), d);
        // narrowing back recovers the original exactly
        assert_eq!(convert_real::<Qd, Dd>(q), d);
        // f64 both ways
        let x = 1.0 / 3.0f64;
        let xq: Qd = convert_real(x);
        assert_eq!(xq.to_f64(), x);
        assert_eq!(convert_real::<Qd, f64>(Qd::PI), Qd::PI.to_f64());
    }

    #[test]
    fn narrowing_truncates_toward_leading_limbs() {
        let q = Qd::PI;
        let d: Dd = convert_real(q);
        // the narrowed value is the leading two-limb expansion
        assert_eq!(d.limb(0), q.limb(0));
        assert_eq!(d.limb(1), q.limb(1));
        let err = (convert_real::<Dd, Qd>(d) - q).abs().to_f64().abs();
        assert!(err < 1e-30, "truncation error {err:e} beyond dd roundoff");
    }

    #[test]
    fn limb_roundtrip() {
        let q = Qd::PI;
        let l: Vec<f64> = (0..4).map(|i| q.limb(i)).collect();
        assert_eq!(Qd::from_limbs(&l), q);
    }

    #[test]
    fn mul_pwr2_is_exact() {
        let x = Qd::PI;
        let y = x.mul_pwr2(8.0);
        assert_eq!(y.mul_pwr2(0.125), x);
    }

    #[test]
    fn tags_and_limbs() {
        assert_eq!(f64::TAG, "1d");
        assert_eq!(Dd::TAG, "2d");
        assert_eq!(Qd::TAG, "4d");
        assert_eq!(Od::TAG, "8d");
        assert_eq!(f64::LIMBS + Dd::LIMBS + Qd::LIMBS + Od::LIMBS, 15);
    }
}
