//! Octo double arithmetic (the paper's `8d`, ~128 decimal digits).
//!
//! QDlib stops at quad double; the paper extends the definitions to octo
//! double with CAMPARY-generated code. Here the extension uses the
//! certified expansion algorithms of [`crate::expansion`]:
//!
//! * **addition** — merge the two 8-term expansions by magnitude (a pure
//!   comparison merge, both inputs are already ulp-nonoverlapping), then
//!   renormalize 16 → 8 (CAMPARY's `certifiedAdd`);
//! * **multiplication** — accumulate the partial-product diagonals
//!   `i + j = k` for `k < 8` with error terms for `k <= 6`, then
//!   renormalize (CAMPARY's truncated certified multiplication);
//! * **division** — nine-digit long division with exact remainder updates;
//! * **square root** — Newton on the reciprocal square root.

use crate::dd::Dd;
use crate::eft::{two_prod, two_sum};
use crate::expansion::{renormalize, Scratch};
use crate::fp::Fp;
use crate::qd::Qd;

/// Generic octo double value, most significant limb first.
pub type Od8<F> = [F; 8];

const N: usize = 8;

/// Merge two expansions by decreasing magnitude (comparisons only).
#[inline]
fn merge<F: Fp>(a: &Od8<F>, b: &Od8<F>, s: &mut Scratch<F>) {
    let (mut i, mut j) = (0, 0);
    while i < N && j < N {
        if a[i].fabs() >= b[j].fabs() {
            s.push(a[i]);
            i += 1;
        } else {
            s.push(b[j]);
            j += 1;
        }
    }
    while i < N {
        s.push(a[i]);
        i += 1;
    }
    while j < N {
        s.push(b[j]);
        j += 1;
    }
}

/// Certified addition: merge + renormalize.
#[inline]
pub fn od_add<F: Fp>(a: Od8<F>, b: Od8<F>) -> Od8<F> {
    let mut s = Scratch::new();
    merge(&a, &b, &mut s);
    let mut out = [F::ZERO; N];
    renormalize(&mut s, &mut out);
    out
}

/// Subtraction as addition of the negation.
#[inline]
pub fn od_sub<F: Fp>(a: Od8<F>, b: Od8<F>) -> Od8<F> {
    od_add(a, od_neg(b))
}

/// Add a double to an octo double: a cascading `two_sum` sweep followed by
/// renormalization.
#[inline]
pub fn od_add_f<F: Fp>(a: Od8<F>, b: F) -> Od8<F> {
    let mut s = Scratch::new();
    let mut e = b;
    for limb in a.iter().take(N) {
        let (si, ei) = two_sum(*limb, e);
        s.push(si);
        e = ei;
    }
    s.push(e);
    let mut out = [F::ZERO; N];
    renormalize(&mut s, &mut out);
    out
}

/// Certified truncated multiplication.
#[inline]
pub fn od_mul<F: Fp>(a: Od8<F>, b: Od8<F>) -> Od8<F> {
    let mut s = Scratch::new();
    // errors of diagonal k belong to magnitude class k+1, so push
    // diagonal k's products followed by diagonal (k-1)'s errors.
    let mut prev_err: [F; N] = [F::ZERO; N];
    let mut prev_err_len = 0usize;
    for k in 0..N {
        let mut err: [F; N] = [F::ZERO; N];
        let mut err_len = 0usize;
        for i in 0..=k {
            let j = k - i;
            if k == N - 1 {
                // last diagonal: plain products, errors below target eps
                s.push(a[i] * b[j]);
            } else {
                let (p, e) = two_prod(a[i], b[j]);
                s.push(p);
                err[err_len] = e;
                err_len += 1;
            }
        }
        for e in prev_err.iter().take(prev_err_len) {
            s.push(*e);
        }
        prev_err = err;
        prev_err_len = err_len;
    }
    // errors of the second-to-last diagonal still matter (class N)
    for e in prev_err.iter().take(prev_err_len) {
        s.push(*e);
    }
    let mut out = [F::ZERO; N];
    renormalize(&mut s, &mut out);
    out
}

/// Multiply an octo double by a double. Terms are pushed in magnitude
/// class order: `p_0, [p_1, e_0], [p_2, e_1], ..., [p_7, e_6]` where `e_i`
/// is the error of the exact product `p_i`.
#[inline]
pub fn od_mul_f<F: Fp>(a: Od8<F>, b: F) -> Od8<F> {
    let mut s = Scratch::new();
    let mut prev_err: Option<F> = None;
    for (i, limb) in a.iter().enumerate() {
        if i < N - 1 {
            let (p, e) = two_prod(*limb, b);
            s.push(p);
            if let Some(pe) = prev_err {
                s.push(pe);
            }
            prev_err = Some(e);
        } else {
            s.push(*limb * b);
            if let Some(pe) = prev_err {
                s.push(pe);
            }
        }
    }
    let mut out = [F::ZERO; N];
    renormalize(&mut s, &mut out);
    out
}

/// Long division: nine quotient digits with exact remainder updates,
/// then renormalization.
#[inline]
pub fn od_div<F: Fp>(a: Od8<F>, b: Od8<F>) -> Od8<F> {
    let mut s = Scratch::new();
    let mut r = a;
    for _ in 0..N + 1 {
        let q = r[0] / b[0];
        s.push(q);
        r = od_sub(r, od_mul_f(b, q));
    }
    let mut out = [F::ZERO; N];
    renormalize(&mut s, &mut out);
    out
}

/// Negate.
#[inline(always)]
pub fn od_neg<F: Fp>(a: Od8<F>) -> Od8<F> {
    [-a[0], -a[1], -a[2], -a[3], -a[4], -a[5], -a[6], -a[7]]
}

/// Square root: Newton on the reciprocal square root, seeded by the
/// hardware square root; four iterations exceed octo double's 424 bits.
#[inline]
pub fn od_sqrt<F: Fp>(a: Od8<F>) -> Od8<F> {
    if a.iter().all(|&x| x == F::ZERO) {
        return [F::ZERO; N];
    }
    let half = F::from_f64(0.5);
    let one: Od8<F> = {
        let mut o = [F::ZERO; N];
        o[0] = F::ONE;
        o
    };
    let x0 = F::ONE / a[0].fsqrt();
    let mut x: Od8<F> = {
        let mut o = [F::ZERO; N];
        o[0] = x0;
        o
    };
    for _ in 0..4 {
        let ax2 = od_mul(a, od_mul(x, x));
        let corr = od_mul_f(od_mul(x, od_sub(one, ax2)), half);
        x = od_add(x, corr);
    }
    od_mul(a, x)
}

// ---------------------------------------------------------------------------
// Public type
// ---------------------------------------------------------------------------

/// An octo double number: eight-term expansion, ~128 significant decimal
/// digits (424 bits). The paper's `8d` precision.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Od(pub [f64; 8]);

impl Od {
    /// Unit roundoff of octo double: `2^-424`.
    pub const EPSILON: f64 = 1.443_722_900_443_09e-128;

    /// The value zero.
    pub const ZERO: Od = Od([0.0; 8]);
    /// The value one.
    pub const ONE: Od = Od([1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);

    /// Convert a double exactly.
    #[inline]
    pub const fn from_f64(x: f64) -> Self {
        Od([x, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
    }

    /// Widen a double double exactly.
    #[inline]
    pub const fn from_dd(x: Dd) -> Self {
        Od([x.hi, x.lo, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
    }

    /// Widen a quad double exactly.
    #[inline]
    pub const fn from_qd(x: Qd) -> Self {
        Od([x.0[0], x.0[1], x.0[2], x.0[3], 0.0, 0.0, 0.0, 0.0])
    }

    /// π to octo double accuracy (parsed from 135 decimal digits; see
    /// `fmt` tests for the round trip).
    pub fn pi() -> Self {
        crate::fmt::parse_od(
            "3.141592653589793238462643383279502884197169399375105820974944592307816406286208998628034825342117067982148086513282306647093844609550582",
        )
        .expect("pi literal parses")
    }

    /// The limbs, most significant first.
    #[inline]
    pub const fn limbs(self) -> [f64; 8] {
        self.0
    }

    /// Square root (NaN for negative input).
    #[inline]
    pub fn sqrt(self) -> Self {
        if self.0[0] < 0.0 {
            return Od([f64::NAN; 8]);
        }
        Od(od_sqrt(self.0))
    }

    /// Square.
    #[inline]
    pub fn sqr(self) -> Self {
        self * self
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        if self.0[0] < 0.0 || (self.0[0] == 0.0 && self.0[1] < 0.0) {
            -self
        } else {
            self
        }
    }

    /// Reciprocal.
    #[inline]
    pub fn recip(self) -> Self {
        Od::ONE / self
    }

    /// Nearest double.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0[0] + self.0[1]
    }

    /// Truncate to quad double.
    #[inline]
    pub fn to_qd(self) -> Qd {
        Qd([self.0[0], self.0[1], self.0[2], self.0[3]])
    }
}

macro_rules! od_binop {
    ($trait:ident, $method:ident, $fn:path) => {
        impl core::ops::$trait for Od {
            type Output = Od;
            #[inline(always)]
            fn $method(self, rhs: Od) -> Od {
                Od($fn(self.0, rhs.0))
            }
        }
    };
}
od_binop!(Add, add, od_add);
od_binop!(Sub, sub, od_sub);
od_binop!(Mul, mul, od_mul);
od_binop!(Div, div, od_div);

impl core::ops::Neg for Od {
    type Output = Od;
    #[inline(always)]
    fn neg(self) -> Od {
        Od(od_neg(self.0))
    }
}

macro_rules! od_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl core::ops::$trait for Od {
            #[inline(always)]
            fn $method(&mut self, rhs: Od) {
                *self = *self $op rhs;
            }
        }
    };
}
od_assign!(AddAssign, add_assign, +);
od_assign!(SubAssign, sub_assign, -);
od_assign!(MulAssign, mul_assign, *);
od_assign!(DivAssign, div_assign, /);

impl PartialOrd for Od {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        for i in 0..8 {
            match self.0[i].partial_cmp(&other.0[i]) {
                Some(core::cmp::Ordering::Equal) => continue,
                ord => return ord,
            }
        }
        Some(core::cmp::Ordering::Equal)
    }
}

impl From<f64> for Od {
    #[inline]
    fn from(x: f64) -> Self {
        Od::from_f64(x)
    }
}
impl From<Dd> for Od {
    #[inline]
    fn from(x: Dd) -> Self {
        Od::from_dd(x)
    }
}
impl From<Qd> for Od {
    #[inline]
    fn from(x: Qd) -> Self {
        Od::from_qd(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Od, b: Od, ulps: f64) -> bool {
        let d = (a - b).abs().to_f64();
        let scale = b.abs().to_f64().max(1.0);
        d <= ulps * Od::EPSILON * scale
    }

    #[test]
    fn add_captures_eight_limbs() {
        let mut s = Od::ZERO;
        let mut want = [0.0; 8];
        for i in 0..8 {
            let p = 2f64.powi(-(60 * i as i32));
            want[i] = p;
            s += Od::from_f64(p);
        }
        assert_eq!(s.0, want);
    }

    #[test]
    fn mul_matches_qd_at_qd_precision() {
        let a = Qd::PI;
        let b = Qd([
            1.0 / 7.0,
            7.93016446160826e-18,
            9.154059786546312e-35,
            -9.434636863305835e-52,
        ]);
        let od_prod = Od::from_qd(a) * Od::from_qd(b);
        let qd_prod = a * b;
        let diff = (od_prod - Od::from_qd(qd_prod)).abs().to_f64();
        assert!(diff <= 8.0 * Qd::EPSILON, "diff = {diff:e}");
    }

    #[test]
    fn mul_div_roundtrip() {
        let a = Od::pi();
        let b = Od::ONE / Od::from_f64(3.0);
        let q = (a * b) / b;
        assert!(close(q, a, 64.0), "q = {q:?}");
    }

    #[test]
    fn sqrt_squares_back() {
        let a = Od::from_f64(2.0);
        let r = a.sqrt();
        assert!(close(r * r, a, 64.0), "r^2 = {:?}", r * r);
    }

    #[test]
    fn distributivity_within_eps() {
        let a = Od::pi();
        let b = Od::ONE / Od::from_f64(7.0);
        let c = Od::ONE / Od::from_f64(11.0);
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        assert!(close(lhs, rhs, 64.0));
    }

    #[test]
    fn normalization_invariant() {
        let x = Od::pi() * Od::pi();
        for i in 0..7 {
            if x.0[i + 1] != 0.0 {
                assert_eq!(x.0[i] + x.0[i + 1], x.0[i], "limb {i} overlaps: {x:?}");
            }
        }
    }

    #[test]
    fn cancellation_keeps_deep_limbs() {
        let tiny = 2f64.powi(-400);
        let a = Od::from_f64(1.0) + Od::from_f64(tiny);
        let d = a - Od::from_f64(1.0);
        assert_eq!(d.to_f64(), tiny);
    }

    #[test]
    fn div_by_self_is_one() {
        let a = Od::pi();
        assert!(close(a / a, Od::ONE, 16.0));
    }
}
