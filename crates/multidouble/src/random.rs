//! Random multiple double generation for workload construction.
//!
//! The paper's experiments use random input matrices (§4.1). A random
//! multiple double is built limb by limb so all `m` doubles carry entropy,
//! not just the leading one.

use rand::Rng;

use crate::complex::Complex;
use crate::real::MdReal;

/// Uniform value in `[-1, 1]` with entropy in every limb.
pub fn rand_real<T: MdReal, R: Rng + ?Sized>(rng: &mut R) -> T {
    let mut acc = T::zero();
    let mut scale = 1.0f64;
    for _ in 0..T::LIMBS {
        let u: f64 = rng.random_range(-1.0..1.0);
        acc += T::from_f64(u).mul_pwr2(scale);
        scale *= 2f64.powi(-53);
    }
    acc
}

/// Uniform complex value with both components in `[-1, 1]`.
pub fn rand_complex<T: MdReal, R: Rng + ?Sized>(rng: &mut R) -> Complex<T> {
    Complex::new(rand_real(rng), rand_real(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qd::Qd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rand_real_in_range_with_deep_limbs() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut any_deep = false;
        for _ in 0..64 {
            let x: Qd = rand_real(&mut rng);
            assert!(x.to_f64().abs() <= 1.0 + 1e-15);
            if x.limb(2) != 0.0 || x.limb(3) != 0.0 {
                any_deep = true;
            }
        }
        assert!(any_deep, "no entropy below the second limb");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Qd = rand_real(&mut StdRng::seed_from_u64(7));
        let b: Qd = rand_real(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
