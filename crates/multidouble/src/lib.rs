//! Multiple double precision arithmetic.
//!
//! A *multiple double* number is an unevaluated sum of `m` hardware doubles
//! (`m` = 2: double double, `m` = 4: quad double, `m` = 8: octo double),
//! giving roughly 32, 64 and 128 decimal digits of working precision. All
//! operations are expressed in double precision arithmetic through
//! *error-free transformations* (Knuth's `two_sum`, Dekker/FMA `two_prod`)
//! followed by renormalization, exactly as in the QDlib and CAMPARY
//! libraries used by the paper this workspace reproduces:
//!
//! > J. Verschelde, *Least Squares on GPUs in Multiple Double Precision*,
//! > IPDPS Workshops 2022 (arXiv:2110.08375).
//!
//! The crate provides
//! * [`Dd`], [`Qd`], [`Od`] — the three multiple double real types, plus
//!   plain `f64` through the same [`MdReal`] trait (the paper's `1d`);
//! * [`Complex`] — complex numbers over any real scalar;
//! * [`MdScalar`] — the unifying trait the linear algebra crates are
//!   generic over ({`f64`, `Dd`, `Qd`, `Od`} × {real, complex});
//! * [`cost`] — per-operation double-precision flop tallies: the paper's
//!   Table 1 numbers and this crate's *measured* numbers;
//! * [`count`] — instrumented re-execution of every algorithm on a
//!   counting float, used to *measure* the tallies (Table 1 reproduction).
//!
//! All algorithms are written once, generically over the [`fp::Fp`] trait,
//! and instantiated with plain `f64` for production use and with counting
//! floats for instrumentation, so the measured counts are guaranteed to
//! describe the very code that runs.

pub mod complex;
pub mod cost;
pub mod count;
pub mod dd;
pub mod eft;
pub mod expansion;
pub mod fmt;
pub mod fp;
pub mod od;
pub mod qd;
pub mod random;
pub mod real;
pub mod scalar;

pub use complex::Complex;
pub use cost::{CostModel, OpCounts, ScalarCost};
pub use dd::Dd;
pub use od::Od;
pub use qd::Qd;
pub use real::{convert_real, MdReal};
pub use scalar::MdScalar;

/// Complex double (the paper's complex `1d`).
pub type C64 = Complex<f64>;
/// Complex double double.
pub type Cdd = Complex<Dd>;
/// Complex quad double.
pub type Cqd = Complex<Qd>;
/// Complex octo double.
pub type Cod = Complex<Od>;
