//! Quad double arithmetic (the paper's `4d`, ~64 decimal digits).
//!
//! Addition, renormalization and division follow QDlib's accurate
//! (`ieee`) algorithms; multiplication uses the certified
//! diagonal-accumulation + renormalize scheme of CAMPARY (all partial
//! products of order `eps^3` or larger, with their error terms).

use crate::dd::Dd;
use crate::eft::{quick_two_sum, three_sum, three_sum2, two_diff, two_prod, two_sum};
use crate::expansion::{renormalize, Scratch};
use crate::fp::Fp;

/// Generic quad double value, most significant limb first.
pub type Qd4<F> = [F; 4];

/// QDlib's five-term renormalization: fold `(c0..c4)` into a normalized
/// four-term quad double.
#[inline(always)]
pub fn qd_renorm5<F: Fp>(c0: F, c1: F, c2: F, c3: F, c4: F) -> Qd4<F> {
    let (s, c4) = quick_two_sum(c3, c4);
    let (s, c3) = quick_two_sum(c2, s);
    let (s, c2) = quick_two_sum(c1, s);
    let (c0, c1) = quick_two_sum(c0, s);

    let mut s0 = c0;
    let mut s1 = c1;
    let mut s2 = F::ZERO;
    let mut s3 = F::ZERO;
    if s1 != F::ZERO {
        let (a, b) = quick_two_sum(s1, c2);
        s1 = a;
        s2 = b;
        if s2 != F::ZERO {
            let (a, b) = quick_two_sum(s2, c3);
            s2 = a;
            s3 = b;
            if s3 != F::ZERO {
                s3 = s3 + c4;
            } else {
                let (a, b) = quick_two_sum(s2, c4);
                s2 = a;
                s3 = b;
            }
        } else {
            let (a, b) = quick_two_sum(s1, c3);
            s1 = a;
            s2 = b;
            if s2 != F::ZERO {
                let (a, b) = quick_two_sum(s2, c4);
                s2 = a;
                s3 = b;
            } else {
                let (a, b) = quick_two_sum(s1, c4);
                s1 = a;
                s2 = b;
            }
        }
    } else {
        let (a, b) = quick_two_sum(s0, c2);
        s0 = a;
        s1 = b;
        if s1 != F::ZERO {
            let (a, b) = quick_two_sum(s1, c3);
            s1 = a;
            s2 = b;
            if s2 != F::ZERO {
                let (a, b) = quick_two_sum(s2, c4);
                s2 = a;
                s3 = b;
            } else {
                let (a, b) = quick_two_sum(s1, c4);
                s1 = a;
                s2 = b;
            }
        } else {
            let (a, b) = quick_two_sum(s0, c3);
            s0 = a;
            s1 = b;
            if s1 != F::ZERO {
                let (a, b) = quick_two_sum(s1, c4);
                s1 = a;
                s2 = b;
            } else {
                let (a, b) = quick_two_sum(s0, c4);
                s0 = a;
                s1 = b;
            }
        }
    }
    [s0, s1, s2, s3]
}

/// Accurate addition (QDlib `ieee_add`).
#[inline(always)]
pub fn qd_add<F: Fp>(a: Qd4<F>, b: Qd4<F>) -> Qd4<F> {
    let (s0, t0) = two_sum(a[0], b[0]);
    let (s1, t1) = two_sum(a[1], b[1]);
    let (s2, t2) = two_sum(a[2], b[2]);
    let (s3, t3) = two_sum(a[3], b[3]);

    let (s1, t0) = two_sum(s1, t0);
    let (s2, t0, t1) = three_sum(s2, t0, t1);
    let (s3, t0) = three_sum2(s3, t0, t2);
    let t0 = t0 + t1 + t3;

    qd_renorm5(s0, s1, s2, s3, t0)
}

/// Subtraction via the same scheme on exact differences.
#[inline(always)]
pub fn qd_sub<F: Fp>(a: Qd4<F>, b: Qd4<F>) -> Qd4<F> {
    let (s0, t0) = two_diff(a[0], b[0]);
    let (s1, t1) = two_diff(a[1], b[1]);
    let (s2, t2) = two_diff(a[2], b[2]);
    let (s3, t3) = two_diff(a[3], b[3]);

    let (s1, t0) = two_sum(s1, t0);
    let (s2, t0, t1) = three_sum(s2, t0, t1);
    let (s3, t0) = three_sum2(s3, t0, t2);
    let t0 = t0 + t1 + t3;

    qd_renorm5(s0, s1, s2, s3, t0)
}

/// Add a double to a quad double.
#[inline(always)]
pub fn qd_add_f<F: Fp>(a: Qd4<F>, b: F) -> Qd4<F> {
    let (s0, e) = two_sum(a[0], b);
    let (s1, e) = two_sum(a[1], e);
    let (s2, e) = two_sum(a[2], e);
    let (s3, e) = two_sum(a[3], e);
    qd_renorm5(s0, s1, s2, s3, e)
}

/// Certified multiplication: all partial products `a_i * b_j` with
/// `i + j <= 2` carry their error terms; the `i + j == 3` diagonal
/// contributes plain products (their errors are below `eps^4`).
#[inline]
pub fn qd_mul<F: Fp>(a: Qd4<F>, b: Qd4<F>) -> Qd4<F> {
    let mut s = Scratch::new();
    // diagonal 0
    let (p00, e00) = two_prod(a[0], b[0]);
    s.push(p00);
    // diagonal 1 (+ errors of diagonal 0)
    let (p01, e01) = two_prod(a[0], b[1]);
    let (p10, e10) = two_prod(a[1], b[0]);
    s.push(p01);
    s.push(p10);
    s.push(e00);
    // diagonal 2 (+ errors of diagonal 1)
    let (p02, e02) = two_prod(a[0], b[2]);
    let (p11, e11) = two_prod(a[1], b[1]);
    let (p20, e20) = two_prod(a[2], b[0]);
    s.push(p02);
    s.push(p11);
    s.push(p20);
    s.push(e01);
    s.push(e10);
    // diagonal 3 (+ errors of diagonal 2)
    s.push(a[0] * b[3]);
    s.push(a[1] * b[2]);
    s.push(a[2] * b[1]);
    s.push(a[3] * b[0]);
    s.push(e02);
    s.push(e11);
    s.push(e20);

    let mut out = [F::ZERO; 4];
    renormalize(&mut s, &mut out);
    out
}

/// Multiply a quad double by a double.
#[inline]
pub fn qd_mul_f<F: Fp>(a: Qd4<F>, b: F) -> Qd4<F> {
    let mut s = Scratch::new();
    let (p0, e0) = two_prod(a[0], b);
    let (p1, e1) = two_prod(a[1], b);
    let (p2, e2) = two_prod(a[2], b);
    let p3 = a[3] * b;
    s.push(p0);
    s.push(p1);
    s.push(e0);
    s.push(p2);
    s.push(e1);
    s.push(p3);
    s.push(e2);
    let mut out = [F::ZERO; 4];
    renormalize(&mut s, &mut out);
    out
}

/// Accurate division: five quotient digits by exact remainder updates
/// (QDlib `ieee_div`).
#[inline]
pub fn qd_div<F: Fp>(a: Qd4<F>, b: Qd4<F>) -> Qd4<F> {
    let q0 = a[0] / b[0];
    let r = qd_sub(a, qd_mul_f(b, q0));
    let q1 = r[0] / b[0];
    let r = qd_sub(r, qd_mul_f(b, q1));
    let q2 = r[0] / b[0];
    let r = qd_sub(r, qd_mul_f(b, q2));
    let q3 = r[0] / b[0];
    let r = qd_sub(r, qd_mul_f(b, q3));
    let q4 = r[0] / b[0];
    qd_renorm5(q0, q1, q2, q3, q4)
}

/// Negate.
#[inline(always)]
pub fn qd_neg<F: Fp>(a: Qd4<F>) -> Qd4<F> {
    [-a[0], -a[1], -a[2], -a[3]]
}

/// Square root: Newton iteration on the reciprocal square root
/// (`x <- x + x*(1 - a*x^2)/2`, quadratically convergent), seeded from the
/// hardware square root, finished with `sqrt(a) = a * x`.
#[inline]
pub fn qd_sqrt<F: Fp>(a: Qd4<F>) -> Qd4<F> {
    if a[0] == F::ZERO && a[1] == F::ZERO && a[2] == F::ZERO && a[3] == F::ZERO {
        return [F::ZERO; 4];
    }
    let half = F::from_f64(0.5);
    let x0 = F::ONE / a[0].fsqrt();
    let mut x: Qd4<F> = [x0, F::ZERO, F::ZERO, F::ZERO];
    // 53 -> 106 -> 212 -> 424 bits; three iterations exceed qd's 212.
    for _ in 0..3 {
        let ax2 = qd_mul(a, qd_mul(x, x));
        let one_minus = qd_sub([F::ONE, F::ZERO, F::ZERO, F::ZERO], ax2);
        let corr = qd_mul(x, one_minus);
        let corr = qd_mul_f(corr, half);
        x = qd_add(x, corr);
    }
    qd_mul(a, x)
}

// ---------------------------------------------------------------------------
// Public type
// ---------------------------------------------------------------------------

/// A quad double number: four-term expansion, ~64 significant decimal digits
/// (212 bits). The paper's `4d` precision.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Qd(pub [f64; 4]);

impl Qd {
    /// Unit roundoff of quad double: `2^-212`.
    pub const EPSILON: f64 = 1.215432671457254e-64;

    /// The value zero.
    pub const ZERO: Qd = Qd([0.0; 4]);
    /// The value one.
    pub const ONE: Qd = Qd([1.0, 0.0, 0.0, 0.0]);
    /// π to quad double accuracy (QDlib constant).
    #[allow(clippy::approx_constant)]
    pub const PI: Qd = Qd([
        3.141_592_653_589_793,
        1.224_646_799_147_353_2e-16,
        -2.994_769_809_718_339_7e-33,
        1.112_454_220_863_365_3e-49,
    ]);

    /// Convert a double exactly.
    #[inline]
    pub const fn from_f64(x: f64) -> Self {
        Qd([x, 0.0, 0.0, 0.0])
    }

    /// Widen a double double exactly.
    #[inline]
    pub const fn from_dd(x: Dd) -> Self {
        Qd([x.hi, x.lo, 0.0, 0.0])
    }

    /// The limbs, most significant first.
    #[inline]
    pub const fn limbs(self) -> [f64; 4] {
        self.0
    }

    /// Square root (NaN for negative input).
    #[inline]
    pub fn sqrt(self) -> Self {
        if self.0[0] < 0.0 {
            return Qd([f64::NAN; 4]);
        }
        Qd(qd_sqrt(self.0))
    }

    /// Square.
    #[inline]
    pub fn sqr(self) -> Self {
        self * self
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        if self.0[0] < 0.0 || (self.0[0] == 0.0 && self.0[1] < 0.0) {
            -self
        } else {
            self
        }
    }

    /// Reciprocal.
    #[inline]
    pub fn recip(self) -> Self {
        Qd::ONE / self
    }

    /// Nearest double.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0[0] + self.0[1]
    }

    /// Truncate to double double.
    #[inline]
    pub fn to_dd(self) -> Dd {
        Dd::from_parts(self.0[0], self.0[1])
    }
}

macro_rules! qd_binop {
    ($trait:ident, $method:ident, $fn:path) => {
        impl core::ops::$trait for Qd {
            type Output = Qd;
            #[inline(always)]
            fn $method(self, rhs: Qd) -> Qd {
                Qd($fn(self.0, rhs.0))
            }
        }
    };
}
qd_binop!(Add, add, qd_add);
qd_binop!(Sub, sub, qd_sub);
qd_binop!(Mul, mul, qd_mul);
qd_binop!(Div, div, qd_div);

impl core::ops::Neg for Qd {
    type Output = Qd;
    #[inline(always)]
    fn neg(self) -> Qd {
        Qd(qd_neg(self.0))
    }
}

macro_rules! qd_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl core::ops::$trait for Qd {
            #[inline(always)]
            fn $method(&mut self, rhs: Qd) {
                *self = *self $op rhs;
            }
        }
    };
}
qd_assign!(AddAssign, add_assign, +);
qd_assign!(SubAssign, sub_assign, -);
qd_assign!(MulAssign, mul_assign, *);
qd_assign!(DivAssign, div_assign, /);

impl PartialOrd for Qd {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        for i in 0..4 {
            match self.0[i].partial_cmp(&other.0[i]) {
                Some(core::cmp::Ordering::Equal) => continue,
                ord => return ord,
            }
        }
        Some(core::cmp::Ordering::Equal)
    }
}

impl From<f64> for Qd {
    #[inline]
    fn from(x: f64) -> Self {
        Qd::from_f64(x)
    }
}
impl From<Dd> for Qd {
    #[inline]
    fn from(x: Dd) -> Self {
        Qd::from_dd(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Qd, b: Qd, ulps: f64) -> bool {
        let d = (a - b).abs().to_f64();
        let scale = b.abs().to_f64().max(1.0);
        d <= ulps * Qd::EPSILON * scale
    }

    #[test]
    fn add_captures_four_limbs() {
        let parts = [1.0, 2f64.powi(-60), 2f64.powi(-120), 2f64.powi(-180)];
        let mut s = Qd::ZERO;
        for p in parts {
            s += Qd::from_f64(p);
        }
        assert_eq!(s.0, parts);
    }

    #[test]
    fn mul_matches_dd_at_dd_precision() {
        let a = Dd::PI;
        let b = Dd::new(1.0 / 7.0, 7.93016446160826e-18);
        let qd_prod = Qd::from_dd(a) * Qd::from_dd(b);
        let dd_prod = a * b;
        let diff = (qd_prod - Qd::from_dd(dd_prod)).abs().to_f64();
        assert!(diff <= 4.0 * Dd::EPSILON, "diff = {diff:e}");
    }

    #[test]
    fn mul_div_roundtrip() {
        let a = Qd::PI;
        let b = Qd([
            1.0 / 3.0,
            -1.850371707708594e-17,
            1.0271626370065257e-33,
            -5.700_574_853_771_496e-50,
        ]);
        let q = (a * b) / b;
        assert!(close(q, a, 16.0), "q = {q:?}");
    }

    #[test]
    fn sqrt_of_two_squares_back() {
        let a = Qd::from_f64(2.0);
        let r = a.sqrt();
        assert!(close(r * r, a, 16.0), "r^2 = {:?}", r * r);
    }

    #[test]
    fn normalization_invariant() {
        let a = Qd::PI * Qd::PI + Qd::from_f64(1e-40);
        for i in 0..3 {
            assert_eq!(a.0[i] + a.0[i + 1], a.0[i], "limb {i} overlaps: {a:?}");
        }
    }

    #[test]
    fn cancellation_keeps_low_limbs() {
        let tiny = 2f64.powi(-200);
        let a = Qd::from_f64(1.0) + Qd::from_f64(tiny);
        let d = a - Qd::from_f64(1.0);
        assert_eq!(d.to_f64(), tiny);
    }

    #[test]
    fn div_by_self_is_one() {
        let a = Qd::PI;
        assert!(close(a / a, Qd::ONE, 4.0));
    }

    #[test]
    fn renorm5_handles_zero_components() {
        let r = qd_renorm5(1.0, 0.0, 2f64.powi(-110), 0.0, 2f64.powi(-170));
        assert_eq!(r[0], 1.0);
        assert_eq!(r[1], 2f64.powi(-110));
        assert_eq!(r[2], 2f64.powi(-170));
    }
}
