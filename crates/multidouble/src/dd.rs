//! Double double arithmetic (the paper's `2d`, ~32 decimal digits).
//!
//! The algorithms are the *accurate* (IEEE-style) variants of QDlib
//! [Hida, Li, Bailey 2001], the library the paper extends; the *sloppy*
//! addition is also provided because the ablation benches compare the two.
//!
//! Every algorithm lives in a generic `dd_*` function over [`Fp`] so the
//! counting instrumentation of [`crate::count`] measures exactly the
//! production code. The public [`Dd`] type instantiates them with `f64`.

use crate::eft::{quick_two_sum, two_diff, two_prod, two_sqr, two_sum};
use crate::fp::Fp;

/// Generic double double value: an unevaluated sum `x[0] + x[1]` with
/// `|x[1]| <= ulp(x[0]) / 2`.
pub type Dd2<F> = [F; 2];

/// Accurate addition (QDlib `ieee_add`): 20 double operations, the same
/// count as the paper's Table 1 row "add" for double double.
#[inline(always)]
pub fn dd_add<F: Fp>(a: Dd2<F>, b: Dd2<F>) -> Dd2<F> {
    let (s1, s2) = two_sum(a[0], b[0]);
    let (t1, t2) = two_sum(a[1], b[1]);
    let s2 = s2 + t1;
    let (s1, s2) = quick_two_sum(s1, s2);
    let s2 = s2 + t2;
    let (hi, lo) = quick_two_sum(s1, s2);
    [hi, lo]
}

/// Sloppy addition (QDlib default): 11 operations, error not bounded for
/// badly cancelling operands. Kept for the ablation benchmark only.
#[inline(always)]
pub fn dd_add_sloppy<F: Fp>(a: Dd2<F>, b: Dd2<F>) -> Dd2<F> {
    let (s, e) = two_sum(a[0], b[0]);
    let e = e + a[1] + b[1];
    let (hi, lo) = quick_two_sum(s, e);
    [hi, lo]
}

/// Accurate subtraction (mirrors `dd_add` on `two_diff`).
#[inline(always)]
pub fn dd_sub<F: Fp>(a: Dd2<F>, b: Dd2<F>) -> Dd2<F> {
    let (s1, s2) = two_diff(a[0], b[0]);
    let (t1, t2) = two_diff(a[1], b[1]);
    let s2 = s2 + t1;
    let (s1, s2) = quick_two_sum(s1, s2);
    let s2 = s2 + t2;
    let (hi, lo) = quick_two_sum(s1, s2);
    [hi, lo]
}

/// Add a double to a double double.
#[inline(always)]
pub fn dd_add_f<F: Fp>(a: Dd2<F>, b: F) -> Dd2<F> {
    let (s1, s2) = two_sum(a[0], b);
    let s2 = s2 + a[1];
    let (hi, lo) = quick_two_sum(s1, s2);
    [hi, lo]
}

/// Multiplication: one exact product plus the two cross terms.
#[inline(always)]
pub fn dd_mul<F: Fp>(a: Dd2<F>, b: Dd2<F>) -> Dd2<F> {
    let (p, e) = two_prod(a[0], b[0]);
    let e = e + (a[0] * b[1] + a[1] * b[0]);
    let (hi, lo) = quick_two_sum(p, e);
    [hi, lo]
}

/// Multiply a double double by a double.
#[inline(always)]
pub fn dd_mul_f<F: Fp>(a: Dd2<F>, b: F) -> Dd2<F> {
    let (p, e) = two_prod(a[0], b);
    let e = e + a[1] * b;
    let (hi, lo) = quick_two_sum(p, e);
    [hi, lo]
}

/// Square (saves one cross multiply relative to `dd_mul`).
#[inline(always)]
pub fn dd_sqr<F: Fp>(a: Dd2<F>) -> Dd2<F> {
    let (p, e) = two_sqr(a[0]);
    let t = a[0] * a[1];
    let e = e + (t + t);
    let (hi, lo) = quick_two_sum(p, e);
    [hi, lo]
}

/// Accurate division (QDlib `ieee_div`): three quotient digits with exact
/// remainder updates.
#[inline(always)]
pub fn dd_div<F: Fp>(a: Dd2<F>, b: Dd2<F>) -> Dd2<F> {
    let q1 = a[0] / b[0];
    let r = dd_sub(a, dd_mul_f(b, q1));
    let q2 = r[0] / b[0];
    let r = dd_sub(r, dd_mul_f(b, q2));
    let q3 = r[0] / b[0];
    let (q1, q2) = quick_two_sum(q1, q2);
    dd_add_f([q1, q2], q3)
}

/// Square root by Karp's high-precision trick:
/// `sqrt(a) ≈ a*x + (a - (a*x)^2) * x / 2` with `x = 1/sqrt(a0)`.
/// One double-precision seed plus one correction reaches full dd accuracy.
#[inline(always)]
pub fn dd_sqrt<F: Fp>(a: Dd2<F>) -> Dd2<F> {
    if a[0] == F::ZERO && a[1] == F::ZERO {
        return [F::ZERO, F::ZERO];
    }
    let x = F::ONE / a[0].fsqrt();
    let ax = a[0] * x;
    let ax2 = dd_sqr([ax, F::ZERO]);
    let diff = dd_sub(a, ax2);
    let half = F::from_f64(0.5);
    dd_add_f([ax, F::ZERO], diff[0] * x * half)
}

/// Negation (sign flips are free on the accounting model, as in Table 1
/// which has no negation row).
#[inline(always)]
pub fn dd_neg<F: Fp>(a: Dd2<F>) -> Dd2<F> {
    [-a[0], -a[1]]
}

// ---------------------------------------------------------------------------
// Public type
// ---------------------------------------------------------------------------

/// A double double number: the unevaluated sum `hi + lo` of two doubles,
/// with about 32 significant decimal digits (106 bits).
///
/// This is the paper's `2d` precision. Stored as two named fields — the
/// paper customizes the CAMPARY code so an *m*-double is *m* separate
/// variables rather than an array; the named fields mirror that layout.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Dd {
    /// Most significant double.
    pub hi: f64,
    /// Least significant double, `|lo| <= ulp(hi)/2`.
    pub lo: f64,
}

impl Dd {
    /// Unit roundoff of double double: `2^-106`.
    pub const EPSILON: f64 = 1.232595164407831e-32;

    /// The value zero.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };
    /// The value one.
    pub const ONE: Dd = Dd { hi: 1.0, lo: 0.0 };
    /// π to double double accuracy (QDlib constant).
    #[allow(clippy::approx_constant)]
    pub const PI: Dd = Dd {
        hi: 3.141_592_653_589_793,
        lo: 1.224_646_799_147_353_2e-16,
    };

    /// Build from a pair of doubles, renormalizing.
    #[inline]
    pub fn new(hi: f64, lo: f64) -> Self {
        let (h, l) = quick_two_sum(hi, lo);
        Dd { hi: h, lo: l }
    }

    /// Build from the raw components without renormalizing.
    #[inline]
    pub const fn from_parts(hi: f64, lo: f64) -> Self {
        Dd { hi, lo }
    }

    /// Convert a double exactly.
    #[inline]
    pub const fn from_f64(x: f64) -> Self {
        Dd { hi: x, lo: 0.0 }
    }

    /// The limbs as an array, most significant first.
    #[inline]
    pub const fn limbs(self) -> [f64; 2] {
        [self.hi, self.lo]
    }

    /// Square.
    #[inline]
    pub fn sqr(self) -> Self {
        let r = dd_sqr(self.limbs());
        Dd { hi: r[0], lo: r[1] }
    }

    /// Square root (NaN limbs for negative input, like `f64::sqrt`).
    #[inline]
    pub fn sqrt(self) -> Self {
        if self.hi < 0.0 {
            return Dd {
                hi: f64::NAN,
                lo: f64::NAN,
            };
        }
        let r = dd_sqrt(self.limbs());
        Dd { hi: r[0], lo: r[1] }
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            -self
        } else {
            self
        }
    }

    /// Reciprocal.
    #[inline]
    pub fn recip(self) -> Self {
        Dd::ONE / self
    }

    /// Sloppy addition — see [`dd_add_sloppy`].
    #[inline]
    pub fn sloppy_add(self, rhs: Self) -> Self {
        let r = dd_add_sloppy(self.limbs(), rhs.limbs());
        Dd { hi: r[0], lo: r[1] }
    }

    /// Nearest double.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.hi + self.lo
    }
}

macro_rules! dd_binop {
    ($trait:ident, $method:ident, $fn:path) => {
        impl core::ops::$trait for Dd {
            type Output = Dd;
            #[inline(always)]
            fn $method(self, rhs: Dd) -> Dd {
                let r = $fn(self.limbs(), rhs.limbs());
                Dd { hi: r[0], lo: r[1] }
            }
        }
    };
}
dd_binop!(Add, add, dd_add);
dd_binop!(Sub, sub, dd_sub);
dd_binop!(Mul, mul, dd_mul);
dd_binop!(Div, div, dd_div);

impl core::ops::Neg for Dd {
    type Output = Dd;
    #[inline(always)]
    fn neg(self) -> Dd {
        Dd {
            hi: -self.hi,
            lo: -self.lo,
        }
    }
}

macro_rules! dd_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl core::ops::$trait for Dd {
            #[inline(always)]
            fn $method(&mut self, rhs: Dd) {
                *self = *self $op rhs;
            }
        }
    };
}
dd_assign!(AddAssign, add_assign, +);
dd_assign!(SubAssign, sub_assign, -);
dd_assign!(MulAssign, mul_assign, *);
dd_assign!(DivAssign, div_assign, /);

impl PartialOrd for Dd {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        match self.hi.partial_cmp(&other.hi) {
            Some(core::cmp::Ordering::Equal) => self.lo.partial_cmp(&other.lo),
            ord => ord,
        }
    }
}

impl From<f64> for Dd {
    #[inline]
    fn from(x: f64) -> Self {
        Dd::from_f64(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ulp_close(a: Dd, b: Dd, ulps: f64) -> bool {
        let d = (a - b).abs();
        let scale = b.abs().to_f64().max(1.0);
        d.to_f64() <= ulps * Dd::EPSILON * scale
    }

    #[test]
    fn add_exact_small_integers() {
        let a = Dd::from_f64(3.0);
        let b = Dd::from_f64(4.0);
        assert_eq!((a + b).hi, 7.0);
        assert_eq!((a + b).lo, 0.0);
    }

    #[test]
    fn add_captures_low_order_bits() {
        // 1 + 2^-80 is not representable in f64 but is in dd
        let tiny = 2f64.powi(-80);
        let s = Dd::from_f64(1.0) + Dd::from_f64(tiny);
        assert_eq!(s.hi, 1.0);
        assert_eq!(s.lo, tiny);
        let back = s - Dd::from_f64(1.0);
        assert_eq!(back.hi, tiny);
    }

    #[test]
    fn mul_div_roundtrip() {
        let a = Dd::new(core::f64::consts::PI, 1.2246467991473532e-16);
        let b = Dd::new(core::f64::consts::E, 1.4456468917292502e-16);
        let q = (a * b) / b;
        assert!(ulp_close(q, a, 4.0), "q = {q:?}");
    }

    #[test]
    fn sqrt_squares_back() {
        let a = Dd::from_f64(2.0);
        let r = a.sqrt();
        assert!(ulp_close(r.sqr(), a, 4.0), "r^2 = {:?}", r.sqr());
    }

    #[test]
    fn division_by_self_is_one() {
        let a = Dd::new(1.0 / 3.0, -1.850371707708594e-17);
        let one = a / a;
        assert!(ulp_close(one, Dd::ONE, 2.0));
    }

    #[test]
    fn normalization_invariant_after_ops() {
        let a = Dd::PI;
        let b = Dd::new(1.0e-10, 3.0e-27);
        for r in [a + b, a - b, a * b, a / b] {
            // |lo| <= ulp(hi)/2  <=>  hi + lo rounds to hi
            assert_eq!(r.hi + r.lo, r.hi, "not normalized: {r:?}");
        }
    }

    #[test]
    fn sloppy_add_agrees_on_same_sign_operands() {
        let a = Dd::PI;
        let b = Dd::new(2.5e-5, 1.0e-22);
        let exact = a + b;
        let sloppy = a.sloppy_add(b);
        assert!(ulp_close(exact, sloppy, 2.0));
    }

    #[test]
    fn neg_and_abs() {
        let a = Dd::new(-2.0, 1e-20);
        assert!(a.abs().hi > 0.0);
        assert_eq!((-a).hi, 2.0);
    }

    #[test]
    fn ordering_uses_both_limbs() {
        let a = Dd::from_parts(1.0, 1e-20);
        let b = Dd::from_parts(1.0, 2e-20);
        assert!(a < b);
        assert!(b > a);
    }
}
